// Package stats provides the small statistical toolkit the experiments
// use: Pearson correlation (the R values of Figures 4 and 10), 1-D and
// 2-D histograms (Figures 6 and the heatmaps), and mean / confidence
// interval summaries (the error bars of the timing figures).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Pearson returns the linear correlation coefficient of the paired
// samples. It returns 0 when either side has zero variance.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var v float64
	for _, x := range xs {
		v += (x - m) * (x - m)
	}
	return math.Sqrt(v / float64(len(xs)-1))
}

// CI95 returns the half-width of the 95% confidence interval of the
// mean under the normal approximation (the paper repeats runs and
// reports 95% CIs).
func CI95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	return 1.96 * StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// Median returns the middle value (average of the two middles for even
// counts).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// GeoMean returns the geometric mean of positive values; non-positive
// entries are skipped.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Histogram is a fixed-range 1-D histogram.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	Total  int64
}

// NewHistogram builds a histogram with the given number of bins over
// [lo, hi].
func NewHistogram(lo, hi float64, bins int) *Histogram {
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, bins)}
}

// Add records a sample; values outside the range clamp to the edge
// bins.
func (h *Histogram) Add(x float64) {
	h.Counts[h.bin(x)]++
	h.Total++
}

func (h *Histogram) bin(x float64) int {
	if h.Hi <= h.Lo {
		return 0
	}
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	return i
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Heatmap is a fixed-range 2-D histogram, the structure behind the
// paper's Figures 4 and 10 (similarity x alignment-ratio density).
type Heatmap struct {
	XLo, XHi, YLo, YHi float64
	NX, NY             int
	Counts             []int64
	Total              int64
}

// NewHeatmap builds an nx-by-ny heatmap over the given ranges.
func NewHeatmap(xlo, xhi float64, nx int, ylo, yhi float64, ny int) *Heatmap {
	return &Heatmap{XLo: xlo, XHi: xhi, YLo: ylo, YHi: yhi, NX: nx, NY: ny, Counts: make([]int64, nx*ny)}
}

// Add records a point.
func (m *Heatmap) Add(x, y float64) {
	ix := clampBin(x, m.XLo, m.XHi, m.NX)
	iy := clampBin(y, m.YLo, m.YHi, m.NY)
	m.Counts[iy*m.NX+ix]++
	m.Total++
}

// At returns the count of cell (ix, iy).
func (m *Heatmap) At(ix, iy int) int64 { return m.Counts[iy*m.NX+ix] }

func clampBin(v, lo, hi float64, n int) int {
	if hi <= lo {
		return 0
	}
	i := int(float64(n) * (v - lo) / (hi - lo))
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Render draws the heatmap as rows of density characters (top row =
// highest y), a terminal stand-in for the paper's color plots.
func (m *Heatmap) Render() string {
	shades := []byte(" .:-=+*#%@")
	var max int64
	for _, c := range m.Counts {
		if c > max {
			max = c
		}
	}
	var b strings.Builder
	for iy := m.NY - 1; iy >= 0; iy-- {
		for ix := 0; ix < m.NX; ix++ {
			c := m.At(ix, iy)
			s := 0
			if max > 0 && c > 0 {
				// Log scale: heatmaps of pair densities span many
				// orders of magnitude.
				s = 1 + int(float64(len(shades)-2)*math.Log1p(float64(c))/math.Log1p(float64(max)))
				if s >= len(shades) {
					s = len(shades) - 1
				}
			}
			b.WriteByte(shades[s])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary formats a mean ± CI pair.
func Summary(xs []float64) string {
	return fmt.Sprintf("%.4g ± %.2g", Mean(xs), CI95(xs))
}
