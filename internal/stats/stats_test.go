package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); math.Abs(r-1) > 1e-12 {
		t.Errorf("perfect positive R = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("perfect negative R = %v", r)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if r := Pearson(xs, flat); r != 0 {
		t.Errorf("zero-variance R = %v", r)
	}
	if r := Pearson(nil, nil); r != 0 {
		t.Errorf("empty R = %v", r)
	}
}

func TestPearsonNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var xs, ys, zs []float64
	for i := 0; i < 2000; i++ {
		x := rng.NormFloat64()
		xs = append(xs, x)
		ys = append(ys, 2*x+0.5*rng.NormFloat64()) // strong correlation
		zs = append(zs, rng.NormFloat64())         // none
	}
	if r := Pearson(xs, ys); r < 0.9 {
		t.Errorf("correlated R = %v, want > 0.9", r)
	}
	if r := Pearson(xs, zs); math.Abs(r) > 0.1 {
		t.Errorf("uncorrelated R = %v, want ≈ 0", r)
	}
}

func TestPearsonBounds(t *testing.T) {
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		cnt := int(n%50) + 2
		xs := make([]float64, cnt)
		ys := make([]float64, cnt)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r := Pearson(xs, ys)
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMeanMedianStd(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Errorf("mean = %v", m)
	}
	if m := Median(xs); m != 2.5 {
		t.Errorf("median = %v", m)
	}
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if s := StdDev(xs); math.Abs(s-1.2909944) > 1e-6 {
		t.Errorf("stddev = %v", s)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || StdDev(nil) != 0 || CI95(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); math.Abs(g-10) > 1e-9 {
		t.Errorf("geomean = %v, want 10", g)
	}
	if g := GeoMean([]float64{2, 0, 8}); math.Abs(g-4) > 1e-9 {
		t.Errorf("geomean skipping zero = %v, want 4", g)
	}
}

func TestCI95ShrinksWithSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	small := make([]float64, 10)
	big := make([]float64, 1000)
	for i := range small {
		small[i] = rng.NormFloat64()
	}
	for i := range big {
		big[i] = rng.NormFloat64()
	}
	if CI95(big) >= CI95(small) {
		t.Errorf("CI95 should shrink: %v vs %v", CI95(big), CI95(small))
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 10)
	for _, v := range []float64{0.05, 0.15, 0.15, 0.95, 1.5, -1} {
		h.Add(v)
	}
	if h.Total != 6 {
		t.Errorf("total = %d", h.Total)
	}
	if h.Counts[0] != 2 { // 0.05 and clamped -1
		t.Errorf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 2 {
		t.Errorf("bin1 = %d, want 2", h.Counts[1])
	}
	if h.Counts[9] != 2 { // 0.95 and clamped 1.5
		t.Errorf("bin9 = %d, want 2", h.Counts[9])
	}
	if c := h.BinCenter(0); math.Abs(c-0.05) > 1e-12 {
		t.Errorf("center = %v", c)
	}
}

func TestHeatmap(t *testing.T) {
	m := NewHeatmap(0, 1, 10, 0, 1, 10)
	m.Add(0.05, 0.05)
	m.Add(0.05, 0.05)
	m.Add(0.95, 0.95)
	if m.At(0, 0) != 2 {
		t.Errorf("cell(0,0) = %d", m.At(0, 0))
	}
	if m.At(9, 9) != 1 {
		t.Errorf("cell(9,9) = %d", m.At(9, 9))
	}
	r := m.Render()
	lines := 0
	for _, c := range r {
		if c == '\n' {
			lines++
		}
	}
	if lines != 10 {
		t.Errorf("render lines = %d", lines)
	}
}
