// Package interp is a definitional interpreter for the IR in
// internal/ir. It exists for two reasons: differential testing that
// merged functions preserve the semantics of the originals, and the
// paper's Figure 17 experiment, which measures the runtime cost merged
// code adds as extra dynamic instructions.
//
// Memory is modelled as typed objects of scalar slots; pointers are
// (object, slot) pairs, so wild pointer arithmetic is detected rather
// than silently misinterpreted.
package interp

import (
	"errors"
	"fmt"
	"math"

	"f3m/internal/ir"
)

// Pointer references a slot within a memory object. The nil object is
// the null pointer.
type Pointer struct {
	Obj *Object
	Off int
}

// IsNull reports whether the pointer is null.
func (p Pointer) IsNull() bool { return p.Obj == nil }

// Object is an allocated memory region holding scalar slots.
type Object struct {
	// Slots hold scalar values; aggregates are flattened leaf-by-leaf.
	Slots []Val
}

// Val is a runtime scalar value.
type Val struct {
	Ty *ir.Type
	I  int64
	F  float64
	P  Pointer
	Fn *ir.Function
}

// IntVal returns an integer value of the given type.
func IntVal(ty *ir.Type, v int64) Val { return Val{Ty: ty, I: trunc(v, ty.Bits)} }

// FloatVal returns a floating-point value of the given type.
func FloatVal(ty *ir.Type, v float64) Val {
	if ty.Bits == 32 {
		v = float64(float32(v))
	}
	return Val{Ty: ty, F: v}
}

// String renders the value for diagnostics.
func (v Val) String() string {
	switch {
	case v.Ty == nil:
		return "<void>"
	case v.Ty.IsInt():
		return fmt.Sprintf("%s %d", v.Ty, v.I)
	case v.Ty.IsFloat():
		return fmt.Sprintf("%s %g", v.Ty, v.F)
	case v.Fn != nil:
		return "@" + v.Fn.Name()
	case v.P.IsNull():
		return v.Ty.String() + " null"
	default:
		return fmt.Sprintf("%s obj+%d", v.Ty, v.P.Off)
	}
}

// Equal reports whether two values are observably identical. Pointers
// compare by identity of object and offset.
func (v Val) Equal(o Val) bool {
	if v.Ty != o.Ty {
		return false
	}
	switch {
	case v.Ty == nil:
		return true
	case v.Ty.IsInt():
		return v.I == o.I
	case v.Ty.IsFloat():
		return v.F == o.F || (math.IsNaN(v.F) && math.IsNaN(o.F))
	default:
		return v.P == o.P && v.Fn == o.Fn
	}
}

// Builtin is a host implementation for a declared (bodyless) function.
type Builtin func(m *Machine, args []Val) (Val, error)

// Machine executes IR. A Machine is single-threaded and reusable across
// calls; global state persists between calls.
type Machine struct {
	Mod      *ir.Module
	Builtins map[string]Builtin

	// StepLimit bounds the total executed instructions per Machine (not
	// per call); zero means DefaultStepLimit.
	StepLimit int64

	// Steps is the number of instructions executed so far; it is the
	// dynamic instruction counter used by the Fig. 17 experiment.
	Steps int64

	// OpCounts tallies executed instructions by opcode.
	OpCounts [ir.NumOpcodes]int64

	// CallCounts tallies invocations per function name — the profile
	// the profile-guided merging extension consumes.
	CallCounts map[string]int64

	globals map[*ir.GlobalVar]*Object
	depth   int
}

// DefaultStepLimit is the per-Machine instruction budget when StepLimit
// is left zero.
const DefaultStepLimit = 50_000_000

// maxCallDepth bounds recursion so runaway IR fails fast instead of
// exhausting the host stack.
const maxCallDepth = 10_000

// ErrStepLimit is returned when execution exceeds the step budget.
var ErrStepLimit = errors.New("interp: step limit exceeded")

// NewMachine returns a machine for the module with globals initialized.
func NewMachine(m *ir.Module) *Machine {
	mach := &Machine{
		Mod:        m,
		Builtins:   make(map[string]Builtin),
		CallCounts: make(map[string]int64),
		globals:    make(map[*ir.GlobalVar]*Object),
	}
	for _, g := range m.Globs {
		obj := &Object{Slots: make([]Val, slotCount(g.Elem))}
		initObject(obj, g.Elem, 0, g.Init)
		mach.globals[g] = obj
	}
	return mach
}

// GlobalObject returns the memory object backing a global.
func (m *Machine) GlobalObject(g *ir.GlobalVar) *Object { return m.globals[g] }

// slotCount returns how many scalar slots a type occupies.
func slotCount(t *ir.Type) int {
	switch t.Kind {
	case ir.ArrayKind:
		return t.Len * slotCount(t.Elem)
	case ir.StructKind:
		n := 0
		for _, f := range t.Fields {
			n += slotCount(f)
		}
		return n
	default:
		return 1
	}
}

// initObject fills slots from base with the zero (or given scalar)
// value of type t.
func initObject(obj *Object, t *ir.Type, base int, init *ir.Const) {
	switch t.Kind {
	case ir.ArrayKind:
		sz := slotCount(t.Elem)
		for i := 0; i < t.Len; i++ {
			initObject(obj, t.Elem, base+i*sz, nil)
		}
	case ir.StructKind:
		off := base
		for _, f := range t.Fields {
			initObject(obj, f, off, nil)
			off += slotCount(f)
		}
	default:
		v := Val{Ty: t}
		if init != nil {
			v = constVal(init)
		}
		obj.Slots[base] = v
	}
}

func constVal(c *ir.Const) Val {
	switch {
	case c.Ty.IsInt():
		return Val{Ty: c.Ty, I: c.IntVal}
	case c.Ty.IsFloat():
		return Val{Ty: c.Ty, F: c.FloatVal}
	default:
		return Val{Ty: c.Ty} // null / undef pointer
	}
}

// Call executes function f with the given arguments.
func (m *Machine) Call(f *ir.Function, args ...Val) (Val, error) {
	if m.StepLimit == 0 {
		m.StepLimit = DefaultStepLimit
	}
	return m.call(f, args)
}

func (m *Machine) call(f *ir.Function, args []Val) (Val, error) {
	m.CallCounts[f.Name()]++
	if f.IsDecl() {
		bi, ok := m.Builtins[f.Name()]
		if !ok {
			return Val{}, fmt.Errorf("interp: call to undefined @%s", f.Name())
		}
		return bi(m, args)
	}
	if len(args) != len(f.Params) {
		return Val{}, fmt.Errorf("interp: @%s: %d args, want %d", f.Name(), len(args), len(f.Params))
	}
	m.depth++
	defer func() { m.depth-- }()
	if m.depth > maxCallDepth {
		return Val{}, fmt.Errorf("interp: call depth limit in @%s", f.Name())
	}

	env := make(map[ir.Value]Val, f.NumInstrs())
	for i, p := range f.Params {
		if args[i].Ty != p.Ty {
			return Val{}, fmt.Errorf("interp: @%s: arg %d type %s, want %s", f.Name(), i, args[i].Ty, p.Ty)
		}
		env[p] = args[i]
	}

	block := f.Entry()
	var prev *ir.Block
	for {
		// Phi nodes evaluate in parallel against the incoming edge.
		phis := block.Phis()
		if len(phis) > 0 {
			tmp := make([]Val, len(phis))
			for i, phi := range phis {
				v := phi.PhiIncoming(prev)
				if v == nil {
					return Val{}, fmt.Errorf("interp: @%s: phi %%%s has no edge from %%%s", f.Name(), phi.Name(), prev.Name())
				}
				ev, err := m.operand(env, v)
				if err != nil {
					return Val{}, err
				}
				tmp[i] = ev
			}
			for i, phi := range phis {
				env[phi] = tmp[i]
				m.Steps++
				m.OpCounts[ir.OpPhi]++
			}
			if m.Steps > m.StepLimit {
				return Val{}, ErrStepLimit
			}
		}

		for _, in := range block.Instrs[block.FirstNonPhi():] {
			m.Steps++
			m.OpCounts[in.Op]++
			if m.Steps > m.StepLimit {
				return Val{}, ErrStepLimit
			}
			switch in.Op {
			case ir.OpRet:
				if len(in.Operands) == 0 {
					return Val{}, nil
				}
				return m.operand(env, in.Operands[0])
			case ir.OpBr:
				prev, block = block, in.Operands[0].(*ir.Block)
			case ir.OpCondBr:
				c, err := m.operand(env, in.Operands[0])
				if err != nil {
					return Val{}, err
				}
				if c.I&1 != 0 {
					prev, block = block, in.Operands[1].(*ir.Block)
				} else {
					prev, block = block, in.Operands[2].(*ir.Block)
				}
			case ir.OpSwitch:
				v, err := m.operand(env, in.Operands[0])
				if err != nil {
					return Val{}, err
				}
				dst := in.Operands[1].(*ir.Block)
				for i := 2; i < len(in.Operands); i += 2 {
					cv := in.Operands[i].(*ir.Const)
					if cv.IntVal == v.I {
						dst = in.Operands[i+1].(*ir.Block)
						break
					}
				}
				prev, block = block, dst
			case ir.OpUnreachable:
				return Val{}, fmt.Errorf("interp: @%s: reached unreachable", f.Name())
			case ir.OpInvoke:
				// No exception model: an invoke behaves as a call that
				// always continues to the normal destination.
				v, err := m.execCall(env, in)
				if err != nil {
					return Val{}, err
				}
				if !in.Ty.IsVoid() {
					env[in] = v
				}
				n := len(in.Operands)
				prev, block = block, in.Operands[n-2].(*ir.Block)
			case ir.OpCall:
				v, err := m.execCall(env, in)
				if err != nil {
					return Val{}, err
				}
				if !in.Ty.IsVoid() {
					env[in] = v
				}
				continue
			default:
				v, err := m.exec(env, in)
				if err != nil {
					return Val{}, fmt.Errorf("@%s: %%%s: %w", f.Name(), in.Name(), err)
				}
				if !in.Ty.IsVoid() {
					env[in] = v
				}
				continue
			}
			break // executed a terminator: continue with next block
		}
	}
}

// operand evaluates an operand in the environment.
func (m *Machine) operand(env map[ir.Value]Val, v ir.Value) (Val, error) {
	switch x := v.(type) {
	case *ir.Const:
		return constVal(x), nil
	case *ir.GlobalVar:
		return Val{Ty: x.Type(), P: Pointer{Obj: m.globals[x]}}, nil
	case *ir.Function:
		return Val{Ty: x.Type(), Fn: x}, nil
	default:
		val, ok := env[v]
		if !ok {
			return Val{}, fmt.Errorf("interp: unbound value %s", v.Ident())
		}
		return val, nil
	}
}

func (m *Machine) execCall(env map[ir.Value]Val, in *ir.Instr) (Val, error) {
	calleeV, err := m.operand(env, in.Operands[0])
	if err != nil {
		return Val{}, err
	}
	callee := calleeV.Fn
	if callee == nil {
		if f, ok := in.Operands[0].(*ir.Function); ok {
			callee = f
		} else {
			return Val{}, errors.New("interp: indirect call through non-function value")
		}
	}
	args := in.CallArgs()
	vals := make([]Val, len(args))
	for i, a := range args {
		vals[i], err = m.operand(env, a)
		if err != nil {
			return Val{}, err
		}
	}
	return m.call(callee, vals)
}

func (m *Machine) exec(env map[ir.Value]Val, in *ir.Instr) (Val, error) {
	op2 := func() (Val, Val, error) {
		a, err := m.operand(env, in.Operands[0])
		if err != nil {
			return Val{}, Val{}, err
		}
		b, err := m.operand(env, in.Operands[1])
		if err != nil {
			return Val{}, Val{}, err
		}
		return a, b, nil
	}

	switch {
	case in.Op.IsBinary():
		a, b, err := op2()
		if err != nil {
			return Val{}, err
		}
		return binary(in.Op, in.Ty, a, b)
	case in.Op.IsCast():
		v, err := m.operand(env, in.Operands[0])
		if err != nil {
			return Val{}, err
		}
		return cast(in.Op, in.Ty, v)
	}

	switch in.Op {
	case ir.OpAlloca:
		obj := &Object{Slots: make([]Val, slotCount(in.AllocTy))}
		initObject(obj, in.AllocTy, 0, nil)
		return Val{Ty: in.Ty, P: Pointer{Obj: obj}}, nil

	case ir.OpLoad:
		p, err := m.operand(env, in.Operands[0])
		if err != nil {
			return Val{}, err
		}
		if p.P.IsNull() {
			return Val{}, errors.New("load through null pointer")
		}
		if p.P.Off < 0 || p.P.Off >= len(p.P.Obj.Slots) {
			return Val{}, fmt.Errorf("load out of bounds: slot %d of %d", p.P.Off, len(p.P.Obj.Slots))
		}
		v := p.P.Obj.Slots[p.P.Off]
		if v.Ty != in.Ty {
			// Loading through a differently-typed pointer view: accept
			// same-width scalars, as linked C code commonly does.
			if v.Ty != nil && v.Ty.Kind == in.Ty.Kind && v.Ty.Bits == in.Ty.Bits {
				v.Ty = in.Ty
			} else if v.Ty == nil {
				v.Ty = in.Ty // uninitialized slot reads as zero
			} else {
				return Val{}, fmt.Errorf("load type %s from slot of type %s", in.Ty, v.Ty)
			}
		}
		return v, nil

	case ir.OpStore:
		v, p, err := op2()
		if err != nil {
			return Val{}, err
		}
		if p.P.IsNull() {
			return Val{}, errors.New("store through null pointer")
		}
		if p.P.Off < 0 || p.P.Off >= len(p.P.Obj.Slots) {
			return Val{}, fmt.Errorf("store out of bounds: slot %d of %d", p.P.Off, len(p.P.Obj.Slots))
		}
		p.P.Obj.Slots[p.P.Off] = v
		return Val{}, nil

	case ir.OpGEP:
		base, err := m.operand(env, in.Operands[0])
		if err != nil {
			return Val{}, err
		}
		off := base.P.Off
		cur := in.Operands[0].Type().Elem
		for i, idxOp := range in.Operands[1:] {
			idx, err := m.operand(env, idxOp)
			if err != nil {
				return Val{}, err
			}
			if i == 0 {
				off += int(idx.I) * slotCount(cur)
				continue
			}
			switch cur.Kind {
			case ir.ArrayKind:
				off += int(idx.I) * slotCount(cur.Elem)
				cur = cur.Elem
			case ir.StructKind:
				for k := 0; k < int(idx.I); k++ {
					off += slotCount(cur.Fields[k])
				}
				cur = cur.Fields[idx.I]
			default:
				return Val{}, fmt.Errorf("gep through scalar %s", cur)
			}
		}
		return Val{Ty: in.Ty, P: Pointer{Obj: base.P.Obj, Off: off}}, nil

	case ir.OpICmp:
		a, b, err := op2()
		if err != nil {
			return Val{}, err
		}
		return icmp(m.Mod.Ctx, in.Predicate, a, b)

	case ir.OpFCmp:
		a, b, err := op2()
		if err != nil {
			return Val{}, err
		}
		return fcmp(m.Mod.Ctx, in.Predicate, a, b)

	case ir.OpSelect:
		c, err := m.operand(env, in.Operands[0])
		if err != nil {
			return Val{}, err
		}
		if c.I&1 != 0 {
			return m.operand(env, in.Operands[1])
		}
		return m.operand(env, in.Operands[2])
	}
	return Val{}, fmt.Errorf("interp: cannot execute %s", in.Op)
}

// FoldBinary evaluates a binary opcode over constant operands with
// exactly the interpreter's semantics. ok is false when folding is
// unsafe (division by zero) or unsupported.
func FoldBinary(op ir.Opcode, ty *ir.Type, a, b *ir.Const) (*ir.Const, bool) {
	av, bv := constVal(a), constVal(b)
	if a.Undef || b.Undef || a.Null || b.Null {
		return nil, false
	}
	out, err := binary(op, ty, av, bv)
	if err != nil {
		return nil, false
	}
	if ty.IsFloat() {
		return ir.ConstFloat(ty, out.F), true
	}
	return ir.ConstInt(ty, out.I), true
}

// FoldCast evaluates a cast of a constant with the interpreter's
// semantics.
func FoldCast(op ir.Opcode, to *ir.Type, v *ir.Const) (*ir.Const, bool) {
	if v.Undef || v.Null || to.IsPointer() || v.Ty.IsPointer() {
		return nil, false
	}
	out, err := cast(op, to, constVal(v))
	if err != nil {
		return nil, false
	}
	if to.IsFloat() {
		return ir.ConstFloat(to, out.F), true
	}
	return ir.ConstInt(to, out.I), true
}

// FoldCmp evaluates an icmp/fcmp of constants, returning the i1 result.
func FoldCmp(ctx *ir.TypeContext, op ir.Opcode, p ir.Pred, a, b *ir.Const) (*ir.Const, bool) {
	if a.Undef || b.Undef || a.Null || b.Null {
		return nil, false
	}
	var out Val
	var err error
	if op == ir.OpICmp {
		out, err = icmp(ctx, p, constVal(a), constVal(b))
	} else {
		out, err = fcmp(ctx, p, constVal(a), constVal(b))
	}
	if err != nil {
		return nil, false
	}
	return ir.ConstInt(ctx.I1, out.I), true
}

func trunc(v int64, bits int) int64 {
	if bits >= 64 {
		return v
	}
	sh := uint(64 - bits)
	return v << sh >> sh
}

func uns(v int64, bits int) uint64 {
	if bits >= 64 {
		return uint64(v)
	}
	return uint64(v) & (1<<uint(bits) - 1)
}

func binary(op ir.Opcode, ty *ir.Type, a, b Val) (Val, error) {
	if ty.IsFloat() {
		var r float64
		switch op {
		case ir.OpFAdd:
			r = a.F + b.F
		case ir.OpFSub:
			r = a.F - b.F
		case ir.OpFMul:
			r = a.F * b.F
		case ir.OpFDiv:
			r = a.F / b.F
		case ir.OpFRem:
			r = math.Mod(a.F, b.F)
		default:
			return Val{}, fmt.Errorf("%s on float type", op)
		}
		return FloatVal(ty, r), nil
	}
	bits := ty.Bits
	var r int64
	switch op {
	case ir.OpAdd:
		r = a.I + b.I
	case ir.OpSub:
		r = a.I - b.I
	case ir.OpMul:
		r = a.I * b.I
	case ir.OpSDiv:
		if b.I == 0 {
			return Val{}, errors.New("sdiv by zero")
		}
		r = a.I / b.I
	case ir.OpUDiv:
		if b.I == 0 {
			return Val{}, errors.New("udiv by zero")
		}
		r = int64(uns(a.I, bits) / uns(b.I, bits))
	case ir.OpSRem:
		if b.I == 0 {
			return Val{}, errors.New("srem by zero")
		}
		r = a.I % b.I
	case ir.OpURem:
		if b.I == 0 {
			return Val{}, errors.New("urem by zero")
		}
		r = int64(uns(a.I, bits) % uns(b.I, bits))
	case ir.OpShl:
		r = a.I << (uns(b.I, bits) % uint64(bits))
	case ir.OpLShr:
		r = int64(uns(a.I, bits) >> (uns(b.I, bits) % uint64(bits)))
	case ir.OpAShr:
		r = a.I >> (uns(b.I, bits) % uint64(bits))
	case ir.OpAnd:
		r = a.I & b.I
	case ir.OpOr:
		r = a.I | b.I
	case ir.OpXor:
		r = a.I ^ b.I
	default:
		return Val{}, fmt.Errorf("%s on int type", op)
	}
	return IntVal(ty, r), nil
}

func cast(op ir.Opcode, to *ir.Type, v Val) (Val, error) {
	switch op {
	case ir.OpTrunc:
		return IntVal(to, v.I), nil
	case ir.OpZExt:
		return IntVal(to, int64(uns(v.I, v.Ty.Bits))), nil
	case ir.OpSExt:
		return IntVal(to, v.I), nil
	case ir.OpFPTrunc, ir.OpFPExt:
		return FloatVal(to, v.F), nil
	case ir.OpFPToSI:
		if math.IsNaN(v.F) || math.IsInf(v.F, 0) {
			return IntVal(to, 0), nil
		}
		return IntVal(to, int64(v.F)), nil
	case ir.OpSIToFP:
		return FloatVal(to, float64(v.I)), nil
	case ir.OpPtrToInt:
		// Model pointer identity, not addresses: only null maps to 0.
		if v.P.IsNull() && v.Fn == nil {
			return IntVal(to, 0), nil
		}
		return IntVal(to, 1), nil
	case ir.OpIntToPtr:
		if v.I == 0 {
			return Val{Ty: to}, nil
		}
		return Val{}, errors.New("inttoptr of non-zero integer is not supported")
	case ir.OpBitcast:
		out := v
		out.Ty = to
		return out, nil
	}
	return Val{}, fmt.Errorf("bad cast %s", op)
}

func icmp(ctx *ir.TypeContext, p ir.Pred, a, b Val) (Val, error) {
	var r bool
	if a.Ty.IsPointer() {
		eq := a.P == b.P && a.Fn == b.Fn
		switch p {
		case ir.PredEQ:
			r = eq
		case ir.PredNE:
			r = !eq
		default:
			return Val{}, fmt.Errorf("pointer icmp %s not supported", p)
		}
		return boolVal(ctx, r), nil
	}
	bits := a.Ty.Bits
	switch p {
	case ir.PredEQ:
		r = a.I == b.I
	case ir.PredNE:
		r = a.I != b.I
	case ir.PredSLT:
		r = a.I < b.I
	case ir.PredSLE:
		r = a.I <= b.I
	case ir.PredSGT:
		r = a.I > b.I
	case ir.PredSGE:
		r = a.I >= b.I
	case ir.PredULT:
		r = uns(a.I, bits) < uns(b.I, bits)
	case ir.PredULE:
		r = uns(a.I, bits) <= uns(b.I, bits)
	case ir.PredUGT:
		r = uns(a.I, bits) > uns(b.I, bits)
	case ir.PredUGE:
		r = uns(a.I, bits) >= uns(b.I, bits)
	default:
		return Val{}, fmt.Errorf("icmp with float predicate %s", p)
	}
	return boolVal(ctx, r), nil
}

func fcmp(ctx *ir.TypeContext, p ir.Pred, a, b Val) (Val, error) {
	if math.IsNaN(a.F) || math.IsNaN(b.F) {
		// All our predicates are ordered: NaN compares false.
		return boolVal(ctx, false), nil
	}
	var r bool
	switch p {
	case ir.PredOEQ:
		r = a.F == b.F
	case ir.PredONE:
		r = a.F != b.F
	case ir.PredOLT:
		r = a.F < b.F
	case ir.PredOLE:
		r = a.F <= b.F
	case ir.PredOGT:
		r = a.F > b.F
	case ir.PredOGE:
		r = a.F >= b.F
	default:
		return Val{}, fmt.Errorf("fcmp with int predicate %s", p)
	}
	return boolVal(ctx, r), nil
}

func boolVal(ctx *ir.TypeContext, b bool) Val {
	if b {
		return Val{Ty: ctx.I1, I: -1} // canonical i1 true (two's complement)
	}
	return Val{Ty: ctx.I1}
}
