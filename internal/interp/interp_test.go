package interp

import (
	"errors"
	"strings"
	"testing"

	"f3m/internal/ir"
)

func mustParse(t testing.TB, src string) *ir.Module {
	t.Helper()
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func callInt(t *testing.T, m *ir.Module, fn string, args ...int64) int64 {
	t.Helper()
	f := m.Func(fn)
	if f == nil {
		t.Fatalf("no function @%s", fn)
	}
	mach := NewMachine(m)
	vals := make([]Val, len(args))
	for i, a := range args {
		vals[i] = IntVal(f.Params[i].Ty, a)
	}
	out, err := mach.Call(f, vals...)
	if err != nil {
		t.Fatalf("@%s: %v", fn, err)
	}
	return out.I
}

func TestArithmetic(t *testing.T) {
	m := mustParse(t, `
define i32 @f(i32 %a, i32 %b) {
entry:
  %s = add i32 %a, %b
  %d = sub i32 %s, 3
  %p = mul i32 %d, %b
  %q = sdiv i32 %p, 2
  %r = srem i32 %q, 100
  ret i32 %r
}`)
	// ((7+5-3)*5)/2 % 100 = (9*5)/2 % 100 = 22 % 100 = 22
	if got := callInt(t, m, "f", 7, 5); got != 22 {
		t.Errorf("f(7,5) = %d, want 22", got)
	}
}

func TestUnsignedOps(t *testing.T) {
	m := mustParse(t, `
define i8 @f(i8 %a, i8 %b) {
entry:
  %q = udiv i8 %a, %b
  ret i8 %q
}`)
	// 200/3 unsigned in i8 = 66
	if got := callInt(t, m, "f", 200, 3); got != 66 {
		t.Errorf("udiv(200,3) = %d, want 66", got)
	}
}

func TestShifts(t *testing.T) {
	m := mustParse(t, `
define i32 @f(i32 %a, i32 %n) {
entry:
  %l = shl i32 %a, %n
  %r = lshr i32 %l, %n
  %s = ashr i32 %a, %n
  %x = add i32 %r, %s
  ret i32 %x
}`)
	// a=-16,n=2: shl=-64, lshr(-64,2)=0x3FFFFFF0=1073741808, ashr=-4 -> 1073741804
	if got := callInt(t, m, "f", -16, 2); got != 1073741804 {
		t.Errorf("f(-16,2) = %d", got)
	}
}

func TestControlFlowLoop(t *testing.T) {
	m := mustParse(t, `
define i32 @sumto(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [0, %entry], [%i2, %body]
  %acc = phi i32 [0, %entry], [%acc2, %body]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  br label %head
exit:
  ret i32 %acc
}`)
	if got := callInt(t, m, "sumto", 10); got != 45 {
		t.Errorf("sumto(10) = %d, want 45", got)
	}
	if got := callInt(t, m, "sumto", 0); got != 0 {
		t.Errorf("sumto(0) = %d, want 0", got)
	}
}

func TestMemoryAndGEP(t *testing.T) {
	m := mustParse(t, `
define i32 @f(i32 %n) {
entry:
  %buf = alloca [8 x i32]
  %p0 = getelementptr [8 x i32]* %buf, i64 0, i64 3
  store i32 %n, i32* %p0
  %v = load i32, i32* %p0
  %p1 = getelementptr [8 x i32]* %buf, i64 0, i64 4
  %w = load i32, i32* %p1
  %r = add i32 %v, %w
  ret i32 %r
}`)
	if got := callInt(t, m, "f", 41); got != 41 {
		t.Errorf("f(41) = %d, want 41 (uninitialized slot reads 0)", got)
	}
}

func TestStructGEP(t *testing.T) {
	m := mustParse(t, `
define i64 @f(i64 %x) {
entry:
  %s = alloca {i32, i64, i32}
  %p = getelementptr {i32, i64, i32}* %s, i64 0, i32 1
  store i64 %x, i64* %p
  %v = load i64, i64* %p
  ret i64 %v
}`)
	if got := callInt(t, m, "f", 123456789); got != 123456789 {
		t.Errorf("f = %d", got)
	}
}

func TestGlobals(t *testing.T) {
	m := mustParse(t, `
global @g i64 = 7
define i64 @bump(i64 %d) {
entry:
  %v = load i64, i64* @g
  %v2 = add i64 %v, %d
  store i64 %v2, i64* @g
  ret i64 %v2
}`)
	f := m.Func("bump")
	mach := NewMachine(m)
	for want := int64(8); want <= 10; want++ {
		out, err := mach.Call(f, IntVal(m.Ctx.I64, 1))
		if err != nil {
			t.Fatal(err)
		}
		if out.I != want {
			t.Fatalf("bump = %d, want %d", out.I, want)
		}
	}
}

func TestCalls(t *testing.T) {
	m := mustParse(t, `
define i32 @double(i32 %x) {
entry:
  %r = add i32 %x, %x
  ret i32 %r
}
define i32 @quad(i32 %x) {
entry:
  %a = call i32 @double(i32 %x)
  %b = call i32 @double(i32 %a)
  ret i32 %b
}`)
	if got := callInt(t, m, "quad", 3); got != 12 {
		t.Errorf("quad(3) = %d, want 12", got)
	}
}

func TestRecursion(t *testing.T) {
	m := mustParse(t, `
define i64 @fact(i64 %n) {
entry:
  %c = icmp sle i64 %n, 1
  br i1 %c, label %base, label %rec
base:
  ret i64 1
rec:
  %n1 = sub i64 %n, 1
  %f = call i64 @fact(i64 %n1)
  %r = mul i64 %n, %f
  ret i64 %r
}`)
	if got := callInt(t, m, "fact", 10); got != 3628800 {
		t.Errorf("fact(10) = %d", got)
	}
}

func TestBuiltins(t *testing.T) {
	m := mustParse(t, `
declare i32 @host(i32)
define i32 @f(i32 %x) {
entry:
  %r = call i32 @host(i32 %x)
  ret i32 %r
}`)
	mach := NewMachine(m)
	mach.Builtins["host"] = func(_ *Machine, args []Val) (Val, error) {
		return IntVal(args[0].Ty, args[0].I*100), nil
	}
	out, err := mach.Call(m.Func("f"), IntVal(m.Ctx.I32, 7))
	if err != nil {
		t.Fatal(err)
	}
	if out.I != 700 {
		t.Errorf("f(7) = %d, want 700", out.I)
	}
}

func TestIndirectCall(t *testing.T) {
	m := mustParse(t, `
define i32 @inc(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}
define i32 @apply(i32(i32)* %fp, i32 %x) {
entry:
  %r = call i32 %fp(i32 %x)
  ret i32 %r
}
define i32 @main(i32 %x) {
entry:
  %r = call i32 @apply(i32(i32)* @inc, i32 %x)
  ret i32 %r
}`)
	if got := callInt(t, m, "main", 41); got != 42 {
		t.Errorf("main(41) = %d, want 42", got)
	}
}

func TestSwitchExec(t *testing.T) {
	m := mustParse(t, `
define i32 @f(i32 %x) {
entry:
  switch i32 %x, label %def [0: label %zero, 9: label %nine]
zero:
  ret i32 100
nine:
  ret i32 900
def:
  ret i32 -1
}`)
	for _, tc := range []struct{ in, want int64 }{{0, 100}, {9, 900}, {5, -1}} {
		if got := callInt(t, m, "f", tc.in); got != tc.want {
			t.Errorf("f(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestInvokeTakesNormalPath(t *testing.T) {
	m := mustParse(t, `
define i32 @inner(i32 %x) {
entry:
  ret i32 %x
}
define i32 @f(i32 %x) {
entry:
  %r = invoke i32 @inner(i32 %x) to label %ok unwind label %bad
ok:
  ret i32 %r
bad:
  ret i32 -999
}`)
	if got := callInt(t, m, "f", 5); got != 5 {
		t.Errorf("f(5) = %d, want 5", got)
	}
}

func TestCasts(t *testing.T) {
	m := mustParse(t, `
define i64 @f(i8 %x) {
entry:
  %z = zext i8 %x to i64
  %s = sext i8 %x to i64
  %r = add i64 %z, %s
  ret i64 %r
}`)
	// x = -1 (0xFF): zext=255, sext=-1 => 254
	if got := callInt(t, m, "f", -1); got != 254 {
		t.Errorf("f(-1) = %d, want 254", got)
	}
}

func TestFloat(t *testing.T) {
	m := mustParse(t, `
define double @f(double %a, double %b) {
entry:
  %m = fmul double %a, %b
  %s = fadd double %m, 1.5
  ret double %s
}`)
	mach := NewMachine(m)
	out, err := mach.Call(m.Func("f"), FloatVal(m.Ctx.F64, 2.0), FloatVal(m.Ctx.F64, 3.0))
	if err != nil {
		t.Fatal(err)
	}
	if out.F != 7.5 {
		t.Errorf("f = %g, want 7.5", out.F)
	}
}

func TestFCmpAndSelect(t *testing.T) {
	m := mustParse(t, `
define double @max(double %a, double %b) {
entry:
  %c = fcmp ogt double %a, %b
  %r = select i1 %c, double %a, double %b
  ret double %r
}`)
	mach := NewMachine(m)
	out, err := mach.Call(m.Func("max"), FloatVal(m.Ctx.F64, 2.5), FloatVal(m.Ctx.F64, 3.5))
	if err != nil {
		t.Fatal(err)
	}
	if out.F != 3.5 {
		t.Errorf("max = %g", out.F)
	}
}

func TestDivByZero(t *testing.T) {
	m := mustParse(t, `
define i32 @f(i32 %a) {
entry:
  %q = sdiv i32 %a, 0
  ret i32 %q
}`)
	mach := NewMachine(m)
	_, err := mach.Call(m.Func("f"), IntVal(m.Ctx.I32, 1))
	if err == nil || !strings.Contains(err.Error(), "zero") {
		t.Errorf("want div-by-zero error, got %v", err)
	}
}

func TestNullDeref(t *testing.T) {
	m := mustParse(t, `
define i32 @f() {
entry:
  %v = load i32, i32* null
  ret i32 %v
}`)
	mach := NewMachine(m)
	_, err := mach.Call(m.Func("f"))
	if err == nil || !strings.Contains(err.Error(), "null") {
		t.Errorf("want null-deref error, got %v", err)
	}
}

func TestOutOfBounds(t *testing.T) {
	m := mustParse(t, `
define i32 @f() {
entry:
  %buf = alloca [2 x i32]
  %p = getelementptr [2 x i32]* %buf, i64 0, i64 5
  %v = load i32, i32* %p
  ret i32 %v
}`)
	mach := NewMachine(m)
	_, err := mach.Call(m.Func("f"))
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("want bounds error, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	m := mustParse(t, `
define void @spin() {
entry:
  br label %loop
loop:
  br label %loop
}`)
	mach := NewMachine(m)
	mach.StepLimit = 1000
	_, err := mach.Call(m.Func("spin"))
	if !errors.Is(err, ErrStepLimit) {
		t.Errorf("want ErrStepLimit, got %v", err)
	}
}

func TestStepCounting(t *testing.T) {
	m := mustParse(t, `
define i32 @f(i32 %a) {
entry:
  %x = add i32 %a, 1
  %y = mul i32 %x, 2
  ret i32 %y
}`)
	mach := NewMachine(m)
	if _, err := mach.Call(m.Func("f"), IntVal(m.Ctx.I32, 1)); err != nil {
		t.Fatal(err)
	}
	if mach.Steps != 3 {
		t.Errorf("Steps = %d, want 3", mach.Steps)
	}
	if mach.OpCounts[ir.OpAdd] != 1 || mach.OpCounts[ir.OpMul] != 1 || mach.OpCounts[ir.OpRet] != 1 {
		t.Errorf("OpCounts wrong: add=%d mul=%d ret=%d",
			mach.OpCounts[ir.OpAdd], mach.OpCounts[ir.OpMul], mach.OpCounts[ir.OpRet])
	}
}

func TestPhiParallelEvaluation(t *testing.T) {
	// Swapping phis: %a and %b exchange values each iteration; a
	// sequential (non-parallel) phi evaluation would corrupt them.
	m := mustParse(t, `
define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [0, %entry], [%i2, %body]
  %a = phi i32 [1, %entry], [%b, %body]
  %b = phi i32 [2, %entry], [%a, %body]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %i2 = add i32 %i, 1
  br label %head
exit:
  %r = mul i32 %a, 10
  %r2 = add i32 %r, %b
  ret i32 %r2
}`)
	// After 1 iteration: a=2,b=1 => 21. After 2: a=1,b=2 => 12.
	if got := callInt(t, m, "f", 1); got != 21 {
		t.Errorf("f(1) = %d, want 21", got)
	}
	if got := callInt(t, m, "f", 2); got != 12 {
		t.Errorf("f(2) = %d, want 12", got)
	}
}
