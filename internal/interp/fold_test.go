package interp

import (
	"math/rand"
	"testing"

	"f3m/internal/ir"
)

// TestFoldMatchesExecution: for every foldable binary op and random
// constant operands, FoldBinary must produce exactly what executing the
// instruction produces.
func TestFoldMatchesExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ctx := ir.NewTypeContext()
	intOps := []ir.Opcode{
		ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem,
		ir.OpShl, ir.OpLShr, ir.OpAShr, ir.OpAnd, ir.OpOr, ir.OpXor,
	}
	intTys := []*ir.Type{ctx.I8, ctx.I16, ctx.I32, ctx.I64}
	for trial := 0; trial < 2000; trial++ {
		ty := intTys[rng.Intn(len(intTys))]
		op := intOps[rng.Intn(len(intOps))]
		a := ir.ConstInt(ty, rng.Int63()-rng.Int63())
		b := ir.ConstInt(ty, int64(rng.Intn(64))-8)

		folded, ok := FoldBinary(op, ty, a, b)
		got, err := binary(op, ty, constVal(a), constVal(b))
		if (err == nil) != ok {
			t.Fatalf("%s %s: fold ok=%v but exec err=%v", op, ty, ok, err)
		}
		if ok && folded.IntVal != got.I {
			t.Fatalf("%s %s %d,%d: fold %d exec %d", op, ty, a.IntVal, b.IntVal, folded.IntVal, got.I)
		}
	}

	fltOps := []ir.Opcode{ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFRem}
	for trial := 0; trial < 500; trial++ {
		ty := ctx.F64
		if rng.Intn(2) == 0 {
			ty = ctx.F32
		}
		op := fltOps[rng.Intn(len(fltOps))]
		a := ir.ConstFloat(ty, rng.NormFloat64()*100)
		b := ir.ConstFloat(ty, rng.NormFloat64()*10)
		folded, ok := FoldBinary(op, ty, a, b)
		got, err := binary(op, ty, constVal(a), constVal(b))
		if (err == nil) != ok {
			t.Fatalf("%s: fold ok=%v exec err=%v", op, ok, err)
		}
		if ok && folded.FloatVal != got.F && !(folded.FloatVal != folded.FloatVal && got.F != got.F) {
			t.Fatalf("%s %g,%g: fold %g exec %g", op, a.FloatVal, b.FloatVal, folded.FloatVal, got.F)
		}
	}
}

func TestFoldCastMatchesExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ctx := ir.NewTypeContext()
	cases := []struct {
		op       ir.Opcode
		from, to *ir.Type
	}{
		{ir.OpTrunc, ctx.I64, ctx.I16},
		{ir.OpZExt, ctx.I8, ctx.I32},
		{ir.OpSExt, ctx.I8, ctx.I64},
		{ir.OpSIToFP, ctx.I32, ctx.F64},
		{ir.OpFPToSI, ctx.F64, ctx.I32},
		{ir.OpFPTrunc, ctx.F64, ctx.F32},
		{ir.OpFPExt, ctx.F32, ctx.F64},
	}
	for trial := 0; trial < 1000; trial++ {
		tc := cases[rng.Intn(len(cases))]
		var c *ir.Const
		if tc.from.IsFloat() {
			c = ir.ConstFloat(tc.from, rng.NormFloat64()*1000)
		} else {
			c = ir.ConstInt(tc.from, rng.Int63()-rng.Int63())
		}
		folded, ok := FoldCast(tc.op, tc.to, c)
		got, err := cast(tc.op, tc.to, constVal(c))
		if (err == nil) != ok {
			t.Fatalf("%s: fold ok=%v exec err=%v", tc.op, ok, err)
		}
		if !ok {
			continue
		}
		if tc.to.IsFloat() {
			if folded.FloatVal != got.F {
				t.Fatalf("%s: fold %g exec %g", tc.op, folded.FloatVal, got.F)
			}
		} else if folded.IntVal != got.I {
			t.Fatalf("%s: fold %d exec %d", tc.op, folded.IntVal, got.I)
		}
	}
}

func TestFoldCmpMatchesExecution(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ctx := ir.NewTypeContext()
	ipreds := []ir.Pred{ir.PredEQ, ir.PredNE, ir.PredSLT, ir.PredSLE, ir.PredSGT, ir.PredSGE, ir.PredULT, ir.PredUGE}
	for trial := 0; trial < 1000; trial++ {
		p := ipreds[rng.Intn(len(ipreds))]
		a := ir.ConstInt(ctx.I32, int64(rng.Intn(20)-10))
		b := ir.ConstInt(ctx.I32, int64(rng.Intn(20)-10))
		folded, ok := FoldCmp(ctx, ir.OpICmp, p, a, b)
		got, err := icmp(ctx, p, constVal(a), constVal(b))
		if err != nil || !ok {
			t.Fatalf("icmp %s: fold ok=%v err=%v", p, ok, err)
		}
		if folded.IntVal != got.I {
			t.Fatalf("icmp %s %d,%d: fold %d exec %d", p, a.IntVal, b.IntVal, folded.IntVal, got.I)
		}
	}
}

func TestFoldRefusesUnsafe(t *testing.T) {
	ctx := ir.NewTypeContext()
	zero := ir.ConstInt(ctx.I32, 0)
	one := ir.ConstInt(ctx.I32, 1)
	for _, op := range []ir.Opcode{ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem} {
		if _, ok := FoldBinary(op, ctx.I32, one, zero); ok {
			t.Errorf("%s by zero folded", op)
		}
	}
	undef := ir.ConstUndef(ctx.I32)
	if _, ok := FoldBinary(ir.OpAdd, ctx.I32, undef, one); ok {
		t.Error("undef operand folded")
	}
}
