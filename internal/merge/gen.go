package merge

import (
	"fmt"
	"sync"
	"time"

	"f3m/internal/align"
	"f3m/internal/fingerprint"
	"f3m/internal/ir"
	"f3m/internal/passes"
)

// mergeGen holds the state of one merged-function construction. It
// works on phi-free clones ca (side A) and cb (side B).
type mergeGen struct {
	m      *ir.Module
	ca, cb *ir.Function
	opts   Options

	// arena supplies block/instruction storage for the merged function.
	// Discarded attempts — the overwhelming majority — hand it back via
	// Discard, so codegen mostly reuses prior attempts' objects.
	arena *ir.CloneArena

	fm  *ir.Function
	fid ir.Value // i1 function identifier: true selects side A

	valA, valB map[ir.Value]ir.Value
	blkA, blkB map[*ir.Block]*ir.Block
	dispatch   map[[2]*ir.Block]*ir.Block

	paramMapA, paramMapB map[int]int

	// pend defers operand resolution until every definition is mapped.
	pend []pendInstr

	// encA/encB/cols are emitPair's per-block scratch, reused across
	// blocks. The cache interns what it keeps, so the encode buffers
	// never escape the call.
	encA, encB []fingerprint.Encoded
	cols       []column

	// alignDur and codegenDur split the run's wall time into the
	// alignment and code-generation stages for the paper's breakdowns.
	alignDur, codegenDur time.Duration

	// alignScore is the instruction-weighted matched ratio of the
	// accepted block pairs (see Result.AlignScore).
	alignScore float64

	// blockMoves is the reorder count of the CFG-aware block pairing,
	// -1 under the sequence matcher (see Result.BlockMoves).
	blockMoves int
}

// pendInstr links an emitted instruction to its originals; origB is nil
// for side-A-only code and vice versa.
type pendInstr struct {
	merged       *ir.Instr
	origA, origB *ir.Instr
}

// genPool recycles mergeGen state across Pair calls. The value/block
// remap tables are cleared per use; paramMapA/B escape into the Result
// and are allocated fresh each time.
var genPool = sync.Pool{New: func() any {
	return &mergeGen{
		valA:     make(map[ir.Value]ir.Value, 256),
		valB:     make(map[ir.Value]ir.Value, 256),
		blkA:     make(map[*ir.Block]*ir.Block, 32),
		blkB:     make(map[*ir.Block]*ir.Block, 32),
		dispatch: make(map[[2]*ir.Block]*ir.Block, 16),
	}
}}

func newMergeGen(m *ir.Module, ca, cb *ir.Function, ar *ir.CloneArena, opts Options) *mergeGen {
	g := genPool.Get().(*mergeGen)
	g.m, g.ca, g.cb, g.opts, g.arena = m, ca, cb, opts, ar
	g.paramMapA = make(map[int]int)
	g.paramMapB = make(map[int]int)
	g.alignDur, g.codegenDur, g.alignScore = 0, 0, 0
	g.blockMoves = -1
	return g
}

// release returns a mergeGen to the pool, clearing everything that
// would otherwise pin the attempt's IR until the next Get.
func (g *mergeGen) release() {
	g.m, g.ca, g.cb, g.fm, g.fid, g.arena = nil, nil, nil, nil, nil, nil
	g.opts = Options{}
	g.paramMapA, g.paramMapB = nil, nil
	clear(g.valA)
	clear(g.valB)
	clear(g.blkA)
	clear(g.blkB)
	clear(g.dispatch)
	for i := range g.pend {
		g.pend[i] = pendInstr{}
	}
	g.pend = g.pend[:0]
	genPool.Put(g)
}

// alignScoreOf converts the accepted block pairs into the
// instruction-weighted matched ratio over both functions — the
// align.MergeRatio metric, recovered from the pairing this attempt
// already computed instead of a second alignment pass: each pair's
// Ratio is 2*matches/(lenA+lenB), so matches = Ratio*(lenA+lenB)/2,
// and block encoding is one word per instruction.
func alignScoreOf(pairs []align.BlockPair, ca, cb *ir.Function) float64 {
	total := ca.NumInstrs() + cb.NumInstrs()
	if total == 0 {
		return 1
	}
	matched := 0.0
	for _, p := range pairs {
		matched += p.Ratio * float64(len(p.A.Instrs)+len(p.B.Instrs)) / 2
	}
	return 2 * matched / float64(total)
}

func (g *mergeGen) run(name string) (*ir.Function, error) {
	ctx := g.m.Ctx

	// Merged signature: i1 identifier plus type-paired parameters.
	ptys := []*ir.Type{ctx.I1}
	pnames := []string{"fid"}
	usedB := make([]bool, len(g.cb.Params))
	type pairing struct{ ai, bi int }
	var paired []pairing
	for ai, pa := range g.ca.Params {
		found := -1
		for bi, pb := range g.cb.Params {
			if !usedB[bi] && pa.Ty == pb.Ty {
				found = bi
				usedB[bi] = true
				break
			}
		}
		paired = append(paired, pairing{ai, found})
	}
	for _, pr := range paired {
		mi := len(ptys)
		g.paramMapA[mi] = pr.ai
		if pr.bi >= 0 {
			g.paramMapB[mi] = pr.bi
		}
		ptys = append(ptys, g.ca.Params[pr.ai].Ty)
		pnames = append(pnames, g.ca.Params[pr.ai].Nam)
	}
	for bi, pb := range g.cb.Params {
		if usedB[bi] {
			continue
		}
		mi := len(ptys)
		g.paramMapB[mi] = bi
		ptys = append(ptys, pb.Ty)
		pnames = append(pnames, pb.Nam+".b")
	}

	g.fm = g.m.NewFunc(name, ctx.Func(g.ca.ReturnType(), ptys...), pnames...)
	g.fid = g.fm.Params[0]
	for mi, ai := range g.paramMapA {
		g.valA[g.ca.Params[ai]] = g.fm.Params[mi]
	}
	for mi, bi := range g.paramMapB {
		g.valB[g.cb.Params[bi]] = g.fm.Params[mi]
	}

	entry := g.arena.NewBlock(g.fm, "entry")

	// Pair blocks and pre-create every merged head so terminators can
	// resolve successors in one pass.
	alignStart := time.Now()
	var pairs []align.BlockPair
	var unA, unB []*ir.Block
	if g.opts.CFGAlign {
		pairs, unA, unB, g.blockMoves = align.MatchBlocksCFG(g.ca, g.cb, g.opts.MinBlockRatio, g.opts.AlignCache)
	} else {
		pairs, unA, unB = align.MatchBlocksCached(g.ca, g.cb, g.opts.MinBlockRatio, g.opts.AlignCache)
	}
	g.alignScore = alignScoreOf(pairs, g.ca, g.cb)
	g.alignDur = time.Since(alignStart)
	codegenStart := time.Now()
	defer func() { g.codegenDur = time.Since(codegenStart) }()
	for _, p := range pairs {
		head := g.arena.NewBlock(g.fm, p.A.Name()+"."+p.B.Name())
		g.blkA[p.A] = head
		g.blkB[p.B] = head
	}
	for _, b := range unA {
		g.blkA[b] = g.arena.NewBlock(g.fm, b.Name()+".a")
	}
	for _, b := range unB {
		g.blkB[b] = g.arena.NewBlock(g.fm, b.Name()+".b")
	}

	// Entry dispatch.
	eb := ir.NewBuilder(entry)
	eA, eB := g.blkA[g.ca.Entry()], g.blkB[g.cb.Entry()]
	if eA == eB {
		eb.Br(eA)
	} else {
		eb.CondBr(g.fid, eA, eB)
	}

	for _, b := range unA {
		g.emitSingle(sideA, b, g.blkA[b])
	}
	for _, b := range unB {
		g.emitSingle(sideB, b, g.blkB[b])
	}
	for _, p := range pairs {
		g.emitPair(p)
	}

	g.resolveOperands()

	passes.RepairSSAIn(g.fm, g.arena)
	passes.HoistAllocas(g.fm)
	if !g.opts.SkipCleanup {
		passes.Mem2RegIn(g.fm, g.arena)
		passes.ElimRedundantPhis(g.fm) // minimal-SSA phis that select nothing
		passes.ConstFold(g.fm)         // selects over equal values, degenerate conds
		passes.SimplifyCFG(g.fm)
		passes.DCE(g.fm)
	}
	if err := ir.VerifyFunc(g.fm); err != nil {
		return g.fm, fmt.Errorf("merge: generated function is invalid: %w", err)
	}
	return g.fm, nil
}

// emitSingle copies one original block into dst, remapping successor
// labels through the side's block map. Value operands resolve later.
func (g *mergeGen) emitSingle(s side, src, dst *ir.Block) {
	for _, in := range src.Instrs {
		ni := g.rawCopy(in)
		for i, op := range ni.Operands {
			if b, ok := op.(*ir.Block); ok {
				ni.Operands[i] = g.blk(s, b)
			}
		}
		dst.Append(ni)
		g.setVal(s, in, ni)
		pe := pendInstr{merged: ni}
		if s == sideA {
			pe.origA = in
		} else {
			pe.origB = in
		}
		g.pend = append(g.pend, pe)
	}
}

// rawCopy duplicates an instruction shell with original operands,
// drawing the object from the arena freelist.
func (g *mergeGen) rawCopy(in *ir.Instr) *ir.Instr {
	ni := g.arena.NewInstr()
	ni.Op = in.Op
	ni.Ty = in.Ty
	ni.Nam = g.freshName(in)
	ni.Predicate = in.Predicate
	ni.AllocTy = in.AllocTy
	ni.Operands = append(ni.Operands[:0], in.Operands...)
	return ni
}

func (g *mergeGen) freshName(in *ir.Instr) string {
	if in.Ty.IsVoid() {
		return ""
	}
	return g.fm.FreshName(in.Nam)
}

func (g *mergeGen) blk(s side, b *ir.Block) *ir.Block {
	if s == sideA {
		return g.blkA[b]
	}
	return g.blkB[b]
}

func (g *mergeGen) setVal(s side, orig *ir.Instr, merged *ir.Instr) {
	if orig.Ty.IsVoid() {
		return
	}
	if s == sideA {
		g.valA[orig] = merged
	} else {
		g.valB[orig] = merged
	}
}

// column is one unit of work when emitting a paired block: either a
// merged instruction pair or a one-sided instruction.
type column struct {
	a, b *ir.Instr
}

// emitPair generates the merged body for one paired block.
func (g *mergeGen) emitPair(p align.BlockPair) {
	cur := g.blkA[p.A] // == blkB[p.B]

	aIns, bIns := p.A.Instrs, p.B.Instrs
	ta, tb := aIns[len(aIns)-1], bIns[len(bIns)-1]
	aBody, bBody := aIns[:len(aIns)-1], bIns[:len(bIns)-1]

	// Align the bodies (terminators are handled explicitly below).
	encA := g.encA
	if cap(encA) < len(aBody) {
		encA = make([]fingerprint.Encoded, len(aBody))
	}
	encA = encA[:len(aBody)]
	for i, in := range aBody {
		encA[i] = fingerprint.EncodeInstr(in)
	}
	encB := g.encB
	if cap(encB) < len(bBody) {
		encB = make([]fingerprint.Encoded, len(bBody))
	}
	encB = encB[:len(bBody)]
	for i, in := range bBody {
		encB[i] = fingerprint.EncodeInstr(in)
	}
	g.encA, g.encB = encA, encB
	entries := g.opts.AlignCache.NW(encA, encB)

	cols := g.cols[:0]
	for _, e := range entries {
		switch {
		case e.Matched() && g.compatible(aBody[e.A], bBody[e.B]):
			cols = append(cols, column{a: aBody[e.A], b: bBody[e.B]})
		case e.Matched():
			// Encoding collision on incompatible instructions: fall
			// back to guarded copies.
			cols = append(cols, column{a: aBody[e.A]}, column{b: bBody[e.B]})
		case e.A >= 0:
			cols = append(cols, column{a: aBody[e.A]})
		default:
			cols = append(cols, column{b: bBody[e.B]})
		}
	}
	g.cols = cols

	var gA, gB []*ir.Instr
	flushGuard := func() {
		if len(gA) == 0 && len(gB) == 0 {
			return
		}
		cont := g.arena.NewBlock(g.fm, "")
		tgtA, tgtB := cont, cont
		if len(gA) > 0 {
			blkGA := g.arena.NewBlock(g.fm, "")
			g.emitGuardedList(sideA, gA, blkGA, cont)
			tgtA = blkGA
		}
		if len(gB) > 0 {
			blkGB := g.arena.NewBlock(g.fm, "")
			g.emitGuardedList(sideB, gB, blkGB, cont)
			tgtB = blkGB
		}
		bd := ir.NewBuilder(cur)
		bd.CondBr(g.fid, tgtA, tgtB)
		cur = cont
		gA, gB = nil, nil
	}

	for _, c := range cols {
		switch {
		case c.a != nil && c.b != nil:
			flushGuard()
			g.emitMerged(cur, c.a, c.b)
		case c.a != nil:
			gA = append(gA, c.a)
		default:
			gB = append(gB, c.b)
		}
	}

	// Terminators.
	if g.compatible(ta, tb) {
		flushGuard()
		g.emitMergedTerminator(cur, ta, tb)
		return
	}
	// Guarded terminators absorb any pending guarded runs.
	blkTA := g.arena.NewBlock(g.fm, "")
	blkTB := g.arena.NewBlock(g.fm, "")
	g.emitGuardedList(sideA, append(gA, ta), blkTA, nil)
	g.emitGuardedList(sideB, append(gB, tb), blkTB, nil)
	bd := ir.NewBuilder(cur)
	bd.CondBr(g.fid, blkTA, blkTB)
}

// emitGuardedList copies one side's instructions into dst; when cont is
// non-nil the block is closed with a branch to it (the list then holds
// no terminator).
func (g *mergeGen) emitGuardedList(s side, list []*ir.Instr, dst *ir.Block, cont *ir.Block) {
	for _, in := range list {
		ni := g.rawCopy(in)
		for i, op := range ni.Operands {
			if b, ok := op.(*ir.Block); ok {
				ni.Operands[i] = g.blk(s, b)
			}
		}
		dst.Append(ni)
		g.setVal(s, in, ni)
		pe := pendInstr{merged: ni}
		if s == sideA {
			pe.origA = in
		} else {
			pe.origB = in
		}
		g.pend = append(g.pend, pe)
	}
	if cont != nil {
		bd := ir.NewBuilder(dst)
		bd.Br(cont)
	}
}

// emitMerged emits a single shared instruction for a compatible pair.
func (g *mergeGen) emitMerged(cur *ir.Block, ia, ib *ir.Instr) {
	ni := g.rawCopy(ia)
	cur.Append(ni)
	g.setVal(sideA, ia, ni)
	g.setVal(sideB, ib, ni)
	g.pend = append(g.pend, pendInstr{merged: ni, origA: ia, origB: ib})
}

// emitMergedTerminator emits one terminator covering both sides,
// routing differing successors through identifier dispatch blocks.
func (g *mergeGen) emitMergedTerminator(cur *ir.Block, ta, tb *ir.Instr) {
	ni := g.rawCopy(ta)
	for i, op := range ni.Operands {
		ba, ok := op.(*ir.Block)
		if !ok {
			continue
		}
		bb := tb.Operands[i].(*ir.Block)
		ni.Operands[i] = g.route(g.blkA[ba], g.blkB[bb])
	}
	cur.Append(ni)
	g.setVal(sideA, ta, ni)
	g.setVal(sideB, tb, ni)
	g.pend = append(g.pend, pendInstr{merged: ni, origA: ta, origB: tb})
}

// route returns the merged successor for the pair of targets, creating
// an identifier dispatch block when the sides diverge.
func (g *mergeGen) route(ta, tb *ir.Block) *ir.Block {
	if ta == tb {
		return ta
	}
	key := [2]*ir.Block{ta, tb}
	if d, ok := g.dispatch[key]; ok {
		return d
	}
	d := g.arena.NewBlock(g.fm, "")
	bd := ir.NewBuilder(d)
	bd.CondBr(g.fid, ta, tb)
	g.dispatch[key] = d
	return d
}

// compatible decides whether two instructions can share one merged
// instruction. It re-verifies everything the 32-bit encoding promises
// (the encoding can collide) plus the cases the encoding cannot see:
// GEP struct indices and switch case constants must be literally equal.
func (g *mergeGen) compatible(ia, ib *ir.Instr) bool {
	if ia.Op != ib.Op || ia.Ty != ib.Ty || len(ia.Operands) != len(ib.Operands) {
		return false
	}
	if ia.Predicate != ib.Predicate || ia.AllocTy != ib.AllocTy {
		return false
	}
	for i := range ia.Operands {
		oa, ob := ia.Operands[i], ib.Operands[i]
		_, aBlk := oa.(*ir.Block)
		_, bBlk := ob.(*ir.Block)
		if aBlk != bBlk {
			return false
		}
		if aBlk {
			continue
		}
		if oa.Type() != ob.Type() {
			return false
		}
	}
	switch ia.Op {
	case ir.OpGEP:
		// Struct-indexing steps demand constant indices; merging
		// different constants would need a select, which is illegal
		// there. Walk the indexed type and compare those steps.
		cur := ia.Operands[0].Type().Elem
		for i := 2; i < len(ia.Operands); i++ {
			if cur.Kind == ir.StructKind {
				ca, ok1 := ia.Operands[i].(*ir.Const)
				cb, ok2 := ib.Operands[i].(*ir.Const)
				if !ok1 || !ok2 || !ir.ConstEqual(ca, cb) {
					return false
				}
				cur = cur.Fields[ca.IntVal]
			} else if cur.Kind == ir.ArrayKind {
				cur = cur.Elem
			} else {
				return false
			}
		}
	case ir.OpSwitch:
		for i := 2; i < len(ia.Operands); i += 2 {
			ca, ok1 := ia.Operands[i].(*ir.Const)
			cb, ok2 := ib.Operands[i].(*ir.Const)
			if !ok1 || !ok2 || !ir.ConstEqual(ca, cb) {
				return false
			}
		}
	}
	return true
}

// resolveOperands is phase two: every pending instruction's value
// operands are remapped into the merged function; pairs whose sides
// disagree receive a select on the function identifier.
func (g *mergeGen) resolveOperands() {
	for _, pe := range g.pend {
		ni := pe.merged
		for i, op := range ni.Operands {
			if _, isBlock := op.(*ir.Block); isBlock {
				continue
			}
			switch {
			case pe.origA != nil && pe.origB != nil:
				va := g.mapVal(sideA, pe.origA.Operands[i])
				vb := g.mapVal(sideB, pe.origB.Operands[i])
				if valuesEqual(va, vb) {
					ni.Operands[i] = va
					continue
				}
				sel := g.arena.NewInstr()
				sel.Op = ir.OpSelect
				sel.Ty = va.Type()
				sel.Nam = g.fm.FreshName("sel")
				sel.Operands = append(sel.Operands[:0], g.fid, va, vb)
				b := ni.Parent
				b.InsertAt(b.IndexOf(ni), sel)
				ni.Operands[i] = sel
			case pe.origA != nil:
				ni.Operands[i] = g.mapVal(sideA, pe.origA.Operands[i])
			default:
				ni.Operands[i] = g.mapVal(sideB, pe.origB.Operands[i])
			}
		}
	}
}

// mapVal translates an original (clone-side) value into the merged
// function.
func (g *mergeGen) mapVal(s side, v ir.Value) ir.Value {
	switch v.(type) {
	case *ir.Const, *ir.GlobalVar, *ir.Function:
		return v
	}
	var mv ir.Value
	var ok bool
	if s == sideA {
		mv, ok = g.valA[v]
	} else {
		mv, ok = g.valB[v]
	}
	if !ok {
		panic(fmt.Sprintf("merge: unmapped value %s on side %d", v.Ident(), s))
	}
	return mv
}

// valuesEqual treats identical constants as equal even across distinct
// constant objects.
func valuesEqual(a, b ir.Value) bool {
	if a == b {
		return true
	}
	ca, ok1 := a.(*ir.Const)
	cb, ok2 := b.(*ir.Const)
	return ok1 && ok2 && ir.ConstEqual(ca, cb)
}
