package merge

import (
	"errors"
	"strings"
	"testing"

	"f3m/internal/interp"
	"f3m/internal/ir"
)

func mustParse(t testing.TB, src string) *ir.Module {
	t.Helper()
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	return m
}

// runFn executes fn(args...) with int args and returns the integer
// result.
func runFn(t *testing.T, m *ir.Module, fn string, args ...int64) int64 {
	t.Helper()
	f := m.Func(fn)
	if f == nil {
		t.Fatalf("no function @%s", fn)
	}
	mach := interp.NewMachine(m)
	vals := make([]interp.Val, len(args))
	for i, a := range args {
		vals[i] = interp.IntVal(f.Params[i].Ty, a)
	}
	out, err := mach.Call(f, vals...)
	if err != nil {
		t.Fatalf("@%s%v: %v", fn, args, err)
	}
	return out.I
}

// checkMergeEndToEnd parses src (which must define @fa, @fb and wrapper
// callers @callA/@callB of the same arities), merges fa with fb,
// commits, and verifies the wrappers behave identically before and
// after on the given argument tuples. It returns the committed module
// and result for extra assertions.
func checkMergeEndToEnd(t *testing.T, src string, argTuples [][]int64) (*ir.Module, *Result) {
	t.Helper()
	ref := mustParse(t, src)
	work := mustParse(t, src)

	res, err := Pair(work, work.Func("fa"), work.Func("fb"), DefaultOptions())
	if err != nil {
		t.Fatalf("Pair: %v", err)
	}
	if err := ir.VerifyFunc(res.Merged); err != nil {
		t.Fatalf("merged invalid: %v\n%s", err, ir.FuncString(res.Merged))
	}
	Commit(work, res)
	if err := ir.VerifyModule(work); err != nil {
		t.Fatalf("module invalid after commit: %v", err)
	}
	for _, args := range argTuples {
		for _, wrapper := range []string{"callA", "callB"} {
			want := runFn(t, ref, wrapper, args...)
			got := runFn(t, work, wrapper, args...)
			if got != want {
				t.Errorf("%s%v = %d, want %d\nmerged:\n%s",
					wrapper, args, got, want, ir.FuncString(res.Merged))
			}
		}
	}
	return work, res
}

var tuples = [][]int64{{0}, {1}, {-1}, {7}, {42}, {-100}}

const identicalSrc = `
define i32 @fa(i32 %x) {
entry:
  %a = add i32 %x, 10
  %b = mul i32 %a, 3
  %c = icmp sgt i32 %b, 50
  br i1 %c, label %hi, label %lo
hi:
  %h = sub i32 %b, 50
  br label %done
lo:
  br label %done
done:
  %r = phi i32 [%h, %hi], [%b, %lo]
  ret i32 %r
}
define i32 @fb(i32 %x) {
entry:
  %a = add i32 %x, 10
  %b = mul i32 %a, 3
  %c = icmp sgt i32 %b, 50
  br i1 %c, label %hi, label %lo
hi:
  %h = sub i32 %b, 50
  br label %done
lo:
  br label %done
done:
  %r = phi i32 [%h, %hi], [%b, %lo]
  ret i32 %r
}
define i32 @callA(i32 %x) {
entry:
  %r = call i32 @fa(i32 %x)
  ret i32 %r
}
define i32 @callB(i32 %x) {
entry:
  %r = call i32 @fb(i32 %x)
  ret i32 %r
}`

func TestMergeIdenticalFunctions(t *testing.T) {
	work, res := checkMergeEndToEnd(t, identicalSrc, tuples)
	if !res.Profitable {
		t.Errorf("identical functions should be profitable: A=%d B=%d merged=%d",
			res.CostA, res.CostB, res.CostMerged)
	}
	// Identical bodies should merge with almost no overhead.
	if res.CostMerged > res.CostA+3 {
		t.Errorf("merged cost %d too high vs single %d\n%s",
			res.CostMerged, res.CostA, ir.FuncString(res.Merged))
	}
	if work.Func("fa") != nil || work.Func("fb") != nil {
		t.Error("originals should be removed after Commit")
	}
}

const constDiffSrc = `
define i32 @fa(i32 %x) {
entry:
  %a = add i32 %x, 10
  %b = mul i32 %a, 3
  ret i32 %b
}
define i32 @fb(i32 %x) {
entry:
  %a = add i32 %x, 20
  %b = mul i32 %a, 5
  ret i32 %b
}
define i32 @callA(i32 %x) {
entry:
  %r = call i32 @fa(i32 %x)
  ret i32 %r
}
define i32 @callB(i32 %x) {
entry:
  %r = call i32 @fb(i32 %x)
  ret i32 %r
}`

func TestMergeConstantDifferences(t *testing.T) {
	_, res := checkMergeEndToEnd(t, constDiffSrc, tuples)
	// Differing constants must be reconciled with selects on the id.
	selects := 0
	res.Merged.Instructions(func(in *ir.Instr) {
		if in.Op == ir.OpSelect {
			selects++
		}
	})
	if selects != 2 {
		t.Errorf("selects = %d, want 2\n%s", selects, ir.FuncString(res.Merged))
	}
}

const guardedSrc = `
define i32 @fa(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  %c = sub i32 %b, 3
  ret i32 %c
}
define i32 @fb(i32 %x) {
entry:
  %a = add i32 %x, 1
  %s = shl i32 %a, 2
  %y = xor i32 %s, 9
  %b = mul i32 %y, 2
  %c = sub i32 %b, 3
  ret i32 %c
}
define i32 @callA(i32 %x) {
entry:
  %r = call i32 @fa(i32 %x)
  ret i32 %r
}
define i32 @callB(i32 %x) {
entry:
  %r = call i32 @fb(i32 %x)
  ret i32 %r
}`

func TestMergeGuardedRegion(t *testing.T) {
	_, res := checkMergeEndToEnd(t, guardedSrc, tuples)
	// fb's extra shl/xor must execute only under the B identifier, so
	// the merged function needs at least one conditional branch on it.
	condbrs := 0
	res.Merged.Instructions(func(in *ir.Instr) {
		if in.Op == ir.OpCondBr {
			condbrs++
		}
	})
	if condbrs == 0 {
		t.Errorf("expected guarded control flow\n%s", ir.FuncString(res.Merged))
	}
}

const loopSrc = `
define i32 @fa(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [0, %entry], [%i2, %body]
  %acc = phi i32 [0, %entry], [%acc2, %body]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  br label %head
exit:
  ret i32 %acc
}
define i32 @fb(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [0, %entry], [%i2, %body]
  %acc = phi i32 [1, %entry], [%acc2, %body]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %acc2 = mul i32 %acc, 2
  %i2 = add i32 %i, 1
  br label %head
exit:
  ret i32 %acc
}
define i32 @callA(i32 %x) {
entry:
  %r = call i32 @fa(i32 %x)
  ret i32 %r
}
define i32 @callB(i32 %x) {
entry:
  %r = call i32 @fb(i32 %x)
  ret i32 %r
}`

func TestMergeLoops(t *testing.T) {
	checkMergeEndToEnd(t, loopSrc, [][]int64{{0}, {1}, {3}, {10}})
}

const divergentSrc = `
define i32 @fa(i32 %x) {
entry:
  %c = icmp eq i32 %x, 0
  br i1 %c, label %zero, label %nz
zero:
  ret i32 -7
nz:
  %d = sdiv i32 100, %x
  ret i32 %d
}
define i32 @fb(i32 %x) {
entry:
  %y = shl i32 %x, 1
  %z = xor i32 %y, 1234
  %w = ashr i32 %z, 2
  ret i32 %w
}
define i32 @callA(i32 %x) {
entry:
  %r = call i32 @fa(i32 %x)
  ret i32 %r
}
define i32 @callB(i32 %x) {
entry:
  %r = call i32 @fb(i32 %x)
  ret i32 %r
}`

func TestMergeDivergentFunctions(t *testing.T) {
	// Correctness must hold even for a hopeless pair; profitability
	// should reject it.
	_, res := checkMergeEndToEnd(t, divergentSrc, tuples)
	if res.Profitable {
		t.Errorf("divergent pair reported profitable: A=%d B=%d merged=%d",
			res.CostA, res.CostB, res.CostMerged)
	}
}

const paramShuffleSrc = `
define i32 @fa(i32 %x, i64 %y) {
entry:
  %yt = trunc i64 %y to i32
  %r = add i32 %x, %yt
  ret i32 %r
}
define i32 @fb(i64 %p, i32 %q) {
entry:
  %pt = trunc i64 %p to i32
  %r = add i32 %q, %pt
  ret i32 %r
}
define i32 @callA(i32 %x) {
entry:
  %w = sext i32 %x to i64
  %r = call i32 @fa(i32 %x, i64 %w)
  ret i32 %r
}
define i32 @callB(i32 %x) {
entry:
  %w = sext i32 %x to i64
  %r = call i32 @fb(i64 %w, i32 %x)
  ret i32 %r
}`

func TestMergeParamShuffle(t *testing.T) {
	_, res := checkMergeEndToEnd(t, paramShuffleSrc, tuples)
	// i32+i64 pairs on both sides: merged should have fid + 2 params.
	if len(res.Merged.Params) != 3 {
		t.Errorf("merged params = %d, want 3", len(res.Merged.Params))
	}
}

const arityDiffSrc = `
define i32 @fa(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}
define i32 @fb(i32 %x, i32 %y) {
entry:
  %s = add i32 %x, %y
  %r = add i32 %s, 1
  ret i32 %r
}
define i32 @callA(i32 %x) {
entry:
  %r = call i32 @fa(i32 %x)
  ret i32 %r
}
define i32 @callB(i32 %x) {
entry:
  %r = call i32 @fb(i32 %x, i32 5)
  ret i32 %r
}`

func TestMergeArityDifference(t *testing.T) {
	_, res := checkMergeEndToEnd(t, arityDiffSrc, tuples)
	if len(res.Merged.Params) != 3 {
		t.Errorf("merged params = %d, want 3 (fid, x, y)", len(res.Merged.Params))
	}
}

const recursionSrc = `
define i32 @fa(i32 %n) {
entry:
  %c = icmp sle i32 %n, 0
  br i1 %c, label %base, label %rec
base:
  ret i32 0
rec:
  %n1 = sub i32 %n, 1
  %r = call i32 @fa(i32 %n1)
  %s = add i32 %r, %n
  ret i32 %s
}
define i32 @fb(i32 %n) {
entry:
  %c = icmp sle i32 %n, 0
  br i1 %c, label %base, label %rec
base:
  ret i32 1
rec:
  %n1 = sub i32 %n, 1
  %r = call i32 @fb(i32 %n1)
  %s = mul i32 %r, 2
  ret i32 %s
}
define i32 @callA(i32 %x) {
entry:
  %r = call i32 @fa(i32 %x)
  ret i32 %r
}
define i32 @callB(i32 %x) {
entry:
  %r = call i32 @fb(i32 %x)
  ret i32 %r
}`

func TestMergeRecursive(t *testing.T) {
	// Self-calls inside the merged body must be rewritten by Commit to
	// call the merged function with the proper identifier.
	checkMergeEndToEnd(t, recursionSrc, [][]int64{{0}, {1}, {5}, {8}})
}

const addrTakenSrc = `
define i32 @fa(i32 %x) {
entry:
  %r = add i32 %x, 7
  ret i32 %r
}
define i32 @fb(i32 %x) {
entry:
  %r = add i32 %x, 9
  ret i32 %r
}
define i32 @apply(i32(i32)* %fp, i32 %x) {
entry:
  %r = call i32 %fp(i32 %x)
  ret i32 %r
}
define i32 @callA(i32 %x) {
entry:
  %r = call i32 @apply(i32(i32)* @fa, i32 %x)
  ret i32 %r
}
define i32 @callB(i32 %x) {
entry:
  %r = call i32 @fb(i32 %x)
  ret i32 %r
}`

func TestMergeAddressTakenBecomesThunk(t *testing.T) {
	work, res := checkMergeEndToEnd(t, addrTakenSrc, tuples)
	// fa is address-taken: it must survive as a thunk delegating to
	// the merged function.
	fa := work.Func("fa")
	if fa == nil {
		t.Fatal("address-taken fa was removed")
	}
	if fa.NumInstrs() > 2 {
		t.Errorf("fa should be a 2-instruction thunk, has %d:\n%s", fa.NumInstrs(), ir.FuncString(fa))
	}
	foundCall := false
	fa.Instructions(func(in *ir.Instr) {
		if in.Op == ir.OpCall && in.Operands[0] == ir.Value(res.Merged) {
			foundCall = true
		}
	})
	if !foundCall {
		t.Error("thunk does not call the merged function")
	}
	if work.Func("fb") != nil {
		t.Error("non-address-taken fb should be removed")
	}
}

func TestMergeIncompatiblePairs(t *testing.T) {
	src := `
define i32 @reti(i32 %x) {
entry:
  ret i32 %x
}
define double @retd(double %x) {
entry:
  ret double %x
}
declare i32 @decl(i32)
define i32 @vararg(i32 %x, ...) {
entry:
  ret i32 %x
}`
	m := mustParse(t, src)
	cases := []struct{ a, b string }{
		{"reti", "retd"},
		{"reti", "decl"},
		{"reti", "vararg"},
		{"reti", "reti"},
	}
	for _, tc := range cases {
		if _, err := Pair(m, m.Func(tc.a), m.Func(tc.b), DefaultOptions()); !errors.Is(err, ErrIncompatible) {
			t.Errorf("Pair(%s,%s) error = %v, want ErrIncompatible", tc.a, tc.b, err)
		}
	}
	// Temporary clones must not leak into the module.
	for _, f := range m.Funcs {
		if strings.Contains(f.Name(), ".tmp") || strings.HasPrefix(f.Name(), "merged.") {
			t.Errorf("leaked temporary @%s", f.Name())
		}
	}
}

func TestDiscard(t *testing.T) {
	m := mustParse(t, constDiffSrc)
	before := len(m.Funcs)
	res, err := Pair(m, m.Func("fa"), m.Func("fb"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	Discard(m, res)
	if len(m.Funcs) != before {
		t.Errorf("function count %d after discard, want %d", len(m.Funcs), before)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestMergeMemoryFunctions(t *testing.T) {
	src := `
global @gtab [8 x i32]
define i32 @fa(i32 %i) {
entry:
  %i64 = sext i32 %i to i64
  %p = getelementptr [8 x i32]* @gtab, i64 0, i64 %i64
  store i32 %i, i32* %p
  %v = load i32, i32* %p
  %r = add i32 %v, 1
  ret i32 %r
}
define i32 @fb(i32 %i) {
entry:
  %i64 = sext i32 %i to i64
  %p = getelementptr [8 x i32]* @gtab, i64 0, i64 %i64
  store i32 %i, i32* %p
  %v = load i32, i32* %p
  %r = add i32 %v, 2
  ret i32 %r
}
define i32 @callA(i32 %x) {
entry:
  %r = call i32 @fa(i32 %x)
  ret i32 %r
}
define i32 @callB(i32 %x) {
entry:
  %r = call i32 @fb(i32 %x)
  ret i32 %r
}`
	checkMergeEndToEnd(t, src, [][]int64{{0}, {3}, {7}})
}

func TestMergedNameIsFresh(t *testing.T) {
	m := mustParse(t, constDiffSrc)
	res1, err := Pair(m, m.Func("fa"), m.Func("fb"), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.Func(res1.Merged.Name()) != res1.Merged {
		t.Error("merged function not registered under its name")
	}
}
