package merge

import (
	"testing"

	"f3m/internal/ir"
)

// Invoke-bearing functions exercise the terminator-merging and
// dispatch-block paths that regular calls do not (invoke is a
// terminator with two successors).
const invokeSrc = `
define i32 @risky(i32 %x) {
entry:
  ret i32 %x
}
define i32 @fa(i32 %x) {
entry:
  %r = invoke i32 @risky(i32 %x) to label %ok unwind label %bad
ok:
  %s = add i32 %r, 10
  ret i32 %s
bad:
  ret i32 -1
}
define i32 @fb(i32 %x) {
entry:
  %r = invoke i32 @risky(i32 %x) to label %ok unwind label %bad
ok:
  %s = add i32 %r, 20
  ret i32 %s
bad:
  ret i32 -2
}
define i32 @callA(i32 %x) {
entry:
  %r = call i32 @fa(i32 %x)
  ret i32 %r
}
define i32 @callB(i32 %x) {
entry:
  %r = call i32 @fb(i32 %x)
  ret i32 %r
}`

func TestMergeInvokeFunctions(t *testing.T) {
	_, res := checkMergeEndToEnd(t, invokeSrc, tuples)
	// Both invokes should have merged into one.
	invokes := 0
	res.Merged.Instructions(func(in *ir.Instr) {
		if in.Op == ir.OpInvoke {
			invokes++
		}
	})
	if invokes != 1 {
		t.Errorf("merged function has %d invokes, want 1\n%s", invokes, ir.FuncString(res.Merged))
	}
	if !res.Profitable {
		t.Errorf("near-identical invoke functions should merge profitably (A=%d B=%d merged=%d)",
			res.CostA, res.CostB, res.CostMerged)
	}
}

// TestMergeInvokeAtCallSites checks Commit rewrites invoke call sites
// of the merged originals correctly (the invoke's successor operands
// must be preserved through the operand surgery).
func TestMergeInvokeAtCallSites(t *testing.T) {
	src := `
define i32 @fa(i32 %x) {
entry:
  %r = mul i32 %x, 3
  ret i32 %r
}
define i32 @fb(i32 %x) {
entry:
  %r = mul i32 %x, 5
  ret i32 %r
}
define i32 @callA(i32 %x) {
entry:
  %r = invoke i32 @fa(i32 %x) to label %ok unwind label %bad
ok:
  ret i32 %r
bad:
  ret i32 -7
}
define i32 @callB(i32 %x) {
entry:
  %r = invoke i32 @fb(i32 %x) to label %ok unwind label %bad
ok:
  ret i32 %r
bad:
  ret i32 -8
}`
	work, res := checkMergeEndToEnd(t, src, tuples)
	// The rewritten invoke must now target the merged function and
	// keep its successors.
	callA := work.Func("callA")
	var inv *ir.Instr
	callA.Instructions(func(in *ir.Instr) {
		if in.Op == ir.OpInvoke {
			inv = in
		}
	})
	if inv == nil {
		t.Fatal("callA lost its invoke")
	}
	if inv.Operands[0] != ir.Value(res.Merged) {
		t.Errorf("invoke callee = %v, want merged", inv.Operands[0].Ident())
	}
	if len(inv.Successors()) != 2 {
		t.Errorf("invoke successors = %d, want 2", len(inv.Successors()))
	}
}

// TestMergeGuardedTerminators exercises the path where the two
// functions' terminators cannot merge (different return structure).
func TestMergeGuardedTerminators(t *testing.T) {
	src := `
define i32 @fa(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  ret i32 %b
}
define i32 @fb(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 2
  %c = icmp sgt i32 %b, 10
  br i1 %c, label %hi, label %lo
hi:
  ret i32 %b
lo:
  ret i32 0
}
define i32 @callA(i32 %x) {
entry:
  %r = call i32 @fa(i32 %x)
  ret i32 %r
}
define i32 @callB(i32 %x) {
entry:
  %r = call i32 @fb(i32 %x)
  ret i32 %r
}`
	checkMergeEndToEnd(t, src, tuples)
}

// TestMergeGlobalsAndCalls: bodies referencing globals and calling
// other functions must keep those references identical post-merge.
func TestMergeGlobalsAndCalls(t *testing.T) {
	src := `
global @acc i32 = 0
define i32 @helper(i32 %x) {
entry:
  %r = ashr i32 %x, 1
  ret i32 %r
}
define i32 @fa(i32 %x) {
entry:
  %h = call i32 @helper(i32 %x)
  %g = load i32, i32* @acc
  %s = add i32 %h, %g
  store i32 %s, i32* @acc
  ret i32 %s
}
define i32 @fb(i32 %x) {
entry:
  %h = call i32 @helper(i32 %x)
  %g = load i32, i32* @acc
  %s = sub i32 %h, %g
  store i32 %s, i32* @acc
  ret i32 %s
}
define i32 @callA(i32 %x) {
entry:
  %r = call i32 @fa(i32 %x)
  ret i32 %r
}
define i32 @callB(i32 %x) {
entry:
  %r = call i32 @fb(i32 %x)
  ret i32 %r
}`
	checkMergeEndToEnd(t, src, tuples)
}
