// Package merge generates merged functions from aligned pairs, the
// code-generation stage F3M inherits from HyFM (Section III-E). Given
// two functions it:
//
//  1. clones and demotes them to phi-free form (RegToMem), the shape
//     the block-level merger consumes;
//  2. pairs similar basic blocks and aligns each pair's instructions;
//  3. emits one function parameterized by a function identifier:
//     matched instructions become shared code whose differing operands
//     are reconciled with selects on the identifier, mismatched runs
//     become guarded diamonds, and differing control-flow targets
//     become identifier dispatch blocks;
//  4. repairs any SSA dominance violations through stack demotion with
//     the Section III-E placement fixes, then re-promotes and cleans
//     up (Mem2Reg, SimplifyCFG, DCE);
//  5. prices the result with a code-size model deciding profitability.
//
// Committing a profitable merge rewrites every call site and replaces
// address-taken originals with thunks.
package merge

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"f3m/internal/align"
	"f3m/internal/ir"
	"f3m/internal/passes"
)

// arenaPool recycles clone arenas across Pair calls. The two working
// copies Pair makes are discarded before it returns, so their blocks
// and instructions go straight back to the arena instead of the heap.
var arenaPool = sync.Pool{New: func() any { return ir.NewCloneArena() }}

// Options configures code generation and the profitability model.
type Options struct {
	// MinBlockRatio is the alignment ratio a block pair must reach to
	// be merged as a unit (blocks below it are emitted separately).
	MinBlockRatio float64

	// SkipCleanup disables the post-merge Mem2Reg/SimplifyCFG/DCE
	// passes; useful for inspecting raw merger output in tests.
	SkipCleanup bool

	// CallSiteCount, when set, reports how many direct call sites
	// reference a function. Profitability then charges the argument
	// growth Commit would cause at those sites (the function
	// identifier plus undef placeholders for unshared parameters).
	CallSiteCount func(*ir.Function) int

	// Index, when set, supplies live call-site and address-taken
	// information and lets Commit rewrite call sites without walking
	// the whole module (essential for large-module runs). It takes
	// precedence over CallSiteCount.
	Index *CallIndex

	// AlignCache, when set, memoizes the Needleman–Wunsch alignments
	// the code generator performs (block pairing and paired-block
	// bodies). The cache is exact — identical results with or without
	// it — and safe to share across goroutines; the pipeline uses one
	// per run so speculative workers can pre-warm the alignments the
	// committer will need. Nil disables caching.
	AlignCache *align.Cache

	// SnapshotOriginals makes Commit clone the pre-merge bodies of both
	// originals into CommitSide.Snapshot before rewriting anything. The
	// translation validator needs the original semantics to compare
	// against after the originals have been thunked or deleted.
	SnapshotOriginals bool

	// CFGAlign switches block pairing from the greedy sequence matcher
	// to the CFG-aware canonical-order matcher (align.MatchBlocksCFG),
	// which tolerates block-layout permutation and swapped branch arms
	// between the two functions. Result.BlockMoves then reports how
	// much reordering the pairing absorbed. Set by the f3m-cfg pipeline
	// strategy.
	CFGAlign bool
}

// DefaultOptions mirror the defaults used by the pipeline.
func DefaultOptions() Options {
	return Options{MinBlockRatio: 0.5}
}

// ErrIncompatible marks function pairs the merger does not support.
var ErrIncompatible = errors.New("merge: incompatible function pair")

// Result describes one attempted merge.
type Result struct {
	// Merged is the generated function, already inserted in the module
	// under a fresh name. The caller either Commits it or Discards it.
	Merged *ir.Function

	// Profitable reports whether replacing the originals with Merged
	// shrinks the size model.
	Profitable bool

	// CostA, CostB and CostMerged are size-model values.
	CostA, CostB, CostMerged int

	// CallOverhead is the size-model cost the call-site rewrite adds
	// (0 when Options.CallSiteCount is unset).
	CallOverhead int

	// AlignDur and CodegenDur break the merge attempt into the two
	// stages the paper's Figures 3 and 13 report.
	AlignDur, CodegenDur time.Duration

	// BlockMoves is the number of accepted block pairs whose two blocks
	// sit at different layout positions — the reordering the CFG-aware
	// matcher absorbed. It is -1 when the sequence matcher ran
	// (Options.CFGAlign off), so the pipeline can publish CFG histograms
	// only for CFG-aligned attempts.
	BlockMoves int

	// AlignScore is the block-level alignment quality of the pair: the
	// fraction of instructions (of both functions) landing in matched
	// alignment columns of accepted block pairs — the same metric as
	// align.MergeRatio, derived from this attempt's own block pairing
	// instead of a second alignment pass. It feeds the observability
	// layer's alignment-score histogram.
	AlignScore float64

	fa, fb *ir.Function

	// paramMapA/B map merged-parameter index (>= 1; 0 is the function
	// identifier) to the original argument index on each side.
	paramMapA, paramMapB map[int]int

	// idx is the optional live call index Commit maintains.
	idx *CallIndex

	// snapshot carries Options.SnapshotOriginals to Commit.
	snapshot bool
}

// SizeSaving is the size-model benefit of committing (positive =
// smaller binary).
func (r *Result) SizeSaving() int { return r.CostA + r.CostB - r.CostMerged - r.CallOverhead }

// Cost is the code-size model: a weighted instruction count. Every
// instruction costs one unit; calls cost an extra unit per argument
// (they lower to argument-passing code).
func Cost(f *ir.Function) int {
	c := 0
	f.Instructions(func(in *ir.Instr) {
		c++
		if in.Op == ir.OpCall || in.Op == ir.OpInvoke {
			c += len(in.CallArgs())
		}
	})
	return c
}

// Pair merges functions fa and fb of module m. The returned Result
// holds the merged function regardless of profitability; on failure an
// error is returned and the module is left unchanged.
func Pair(m *ir.Module, fa, fb *ir.Function, opts Options) (*Result, error) {
	if fa == fb {
		return nil, fmt.Errorf("%w: cannot merge a function with itself", ErrIncompatible)
	}
	if fa.IsDecl() || fb.IsDecl() {
		return nil, fmt.Errorf("%w: declarations", ErrIncompatible)
	}
	if fa.ReturnType() != fb.ReturnType() {
		return nil, fmt.Errorf("%w: return types %s vs %s", ErrIncompatible, fa.ReturnType(), fb.ReturnType())
	}
	if fa.Sig.Variadic || fb.Sig.Variadic {
		return nil, fmt.Errorf("%w: variadic", ErrIncompatible)
	}

	// Phi-free working copies, drawn from (and returned to) a pooled
	// arena: the merged function is fully remapped by codegen, so the
	// copies are dead the moment Pair returns.
	ar := arenaPool.Get().(*ir.CloneArena)
	defer arenaPool.Put(ar)
	ca := ar.CloneFunc(m, fa, m.UniqueFuncName(fa.Name()+".tmpA"))
	cb := ar.CloneFunc(m, fb, m.UniqueFuncName(fb.Name()+".tmpB"))
	passes.RegToMemIn(ca, ar)
	passes.RegToMemIn(cb, ar)
	defer func() {
		m.RemoveFunc(ca)
		m.RemoveFunc(cb)
		ar.Recycle(ca)
		ar.Recycle(cb)
	}()

	g := newMergeGen(m, ca, cb, ar, opts)
	defer g.release()
	merged, err := g.run(m.UniqueFuncName(mergedName(fa, fb)))
	if err != nil {
		if merged != nil {
			m.RemoveFunc(merged)
			ar.Recycle(merged)
		}
		return nil, err
	}

	res := &Result{
		Merged:     merged,
		CostA:      Cost(fa),
		CostB:      Cost(fb),
		CostMerged: Cost(merged),
		fa:         fa,
		fb:         fb,
		paramMapA:  g.paramMapA,
		paramMapB:  g.paramMapB,
		AlignDur:   g.alignDur,
		CodegenDur: g.codegenDur,
		AlignScore: g.alignScore,
		BlockMoves: g.blockMoves,
	}
	countSites := opts.CallSiteCount
	if opts.Index != nil {
		countSites = opts.Index.NumCallSites
	}
	if countSites != nil {
		extraA := len(merged.Params) - len(fa.Params)
		extraB := len(merged.Params) - len(fb.Params)
		res.CallOverhead = countSites(fa)*extraA + countSites(fb)*extraB
	}
	res.idx = opts.Index
	res.snapshot = opts.SnapshotOriginals
	res.Profitable = res.CostMerged+res.CallOverhead < res.CostA+res.CostB
	return res, nil
}

func mergedName(fa, fb *ir.Function) string {
	return "merged." + fa.Name() + "." + fb.Name()
}

// Discard removes an uncommitted merged function from the module and
// recycles its storage: the function was built from (and is returned
// to) the pooled clone arenas, so the ~90% of attempts the
// profitability model rejects cost no retained allocations.
func Discard(m *ir.Module, r *Result) {
	m.RemoveFunc(r.Merged)
	ar := arenaPool.Get().(*ir.CloneArena)
	ar.Recycle(r.Merged)
	arenaPool.Put(ar)
}

// CommitInfo records what one Commit actually did to the module. The
// analysis package's merge auditor replays these facts against the
// module to prove the commit left no dangling or mis-wired state; tests
// corrupt them to exercise that proof.
type CommitInfo struct {
	// Merged is the function the originals were folded into.
	Merged *ir.Function

	// A and B describe the two replaced originals; A is the side
	// selected by a true function identifier.
	A, B CommitSide

	// Callers lists, without duplicates and in rewrite order, the
	// functions that contained at least one rewritten call site. Their
	// bodies changed, so any cached analysis facts about them are stale.
	Callers []*ir.Function
}

// CommitSide is the commit outcome for one replaced original.
type CommitSide struct {
	// Name is the original function's name (still its name if thunked).
	Name string

	// Fn is the original function object. When Thunked it remains in
	// the module with its body rewritten to forward into Merged;
	// otherwise it has been removed from the module.
	Fn *ir.Function

	// Sig is the original signature, which thunking must preserve.
	Sig *ir.Type

	// ParamMap maps merged-parameter index (>= 1; 0 is the function
	// identifier) to the original argument index on this side.
	ParamMap map[int]int

	// Thunked reports whether the original survives as a thunk
	// (address-taken functions must).
	Thunked bool

	// RewrittenCalls counts the direct call sites redirected to Merged.
	RewrittenCalls int

	// Snapshot is a clone of the original body taken before the commit
	// rewrote anything, or nil unless Options.SnapshotOriginals was set.
	// It lives in a detached scratch module (sharing the type context)
	// so pipeline stages walking the real module never observe it; its
	// call operands still reference the pre-commit function objects.
	Snapshot *ir.Function
}

// Commit replaces fa and fb with the merged function: direct calls are
// rewritten to pass the function identifier and remapped arguments;
// address-taken originals are kept as thunks; otherwise the originals
// are deleted. The returned CommitInfo describes the outcome for
// post-commit auditing.
func Commit(m *ir.Module, r *Result) *CommitInfo {
	g := r.Merged
	if r.idx != nil {
		r.idx.AddFunction(g)
	}
	info := &CommitInfo{Merged: g}
	var snapA, snapB *ir.Function
	if r.snapshot {
		// Clone before any rewriting: the snapshots must capture the
		// pre-commit semantics, and they live outside the real module so
		// no pipeline stage (or speculative worker) ever walks into them.
		scratch := ir.NewModuleInCtx("tv.ref", m.Ctx)
		snapA = ir.CloneFunc(scratch, r.fa, r.fa.Name())
		snapB = ir.CloneFunc(scratch, r.fb, r.fb.Name())
	}
	seenCaller := make(map[*ir.Function]bool)
	rewrite := func(orig *ir.Function, id bool) CommitSide {
		paramMap := r.paramMapB
		if id {
			paramMap = r.paramMapA
		}
		side := CommitSide{Name: orig.Name(), Fn: orig, Sig: orig.Sig, ParamMap: paramMap}
		rewriteCall := func(call *ir.Instr) {
			if caller := call.Parent.Parent; !seenCaller[caller] {
				seenCaller[caller] = true
				info.Callers = append(info.Callers, caller)
			}
			args := call.CallArgs()
			newArgs := make([]ir.Value, len(g.Params))
			newArgs[0] = ir.ConstBool(m.Ctx, id)
			for i := 1; i < len(g.Params); i++ {
				if oi, ok := paramMap[i]; ok {
					newArgs[i] = args[oi]
				} else {
					newArgs[i] = ir.ConstUndef(g.Params[i].Ty)
				}
			}
			rest := call.Operands[1+len(args):] // invoke successors, if any
			call.Operands = append(append([]ir.Value{g}, newArgs...), rest...)
		}
		if r.idx != nil {
			side.RewrittenCalls = r.idx.rewriteCalls(orig, rewriteCall)
			addrTaken := r.idx.HasNonCallUses(orig)
			r.idx.RemoveFunction(orig)
			if addrTaken {
				makeThunk(m, orig, g, id, paramMap)
				r.idx.AddFunction(orig)
				side.Thunked = true
			} else {
				m.RemoveFunc(orig)
			}
			return side
		}
		side.RewrittenCalls = m.ReplaceAllCalls(orig, rewriteCall)
		if hasNonCallUses(m, orig) {
			makeThunk(m, orig, g, id, paramMap)
			side.Thunked = true
		} else {
			m.RemoveFunc(orig)
		}
		return side
	}
	info.A = rewrite(r.fa, true)
	info.B = rewrite(r.fb, false)
	info.A.Snapshot = snapA
	info.B.Snapshot = snapB
	return info
}

// hasNonCallUses reports whether f appears as an operand anywhere other
// than the callee slot of a call/invoke.
func hasNonCallUses(m *ir.Module, f *ir.Function) bool {
	found := false
	for _, fn := range m.Funcs {
		fn.Instructions(func(in *ir.Instr) {
			for i, op := range in.Operands {
				if op != ir.Value(f) {
					continue
				}
				isCallee := (in.Op == ir.OpCall || in.Op == ir.OpInvoke) && i == 0
				if !isCallee {
					found = true
				}
			}
		})
	}
	return found
}

// makeThunk rewrites orig's body into a tail call of the merged
// function so remaining address-taken references stay valid.
func makeThunk(m *ir.Module, orig, g *ir.Function, id bool, paramMap map[int]int) {
	orig.Blocks = nil
	entry := orig.NewBlock("entry")
	bd := ir.NewBuilder(entry)
	args := make([]ir.Value, len(g.Params))
	args[0] = ir.ConstBool(m.Ctx, id)
	for i := 1; i < len(g.Params); i++ {
		if oi, ok := paramMap[i]; ok {
			args[i] = orig.Params[oi]
		} else {
			args[i] = ir.ConstUndef(g.Params[i].Ty)
		}
	}
	call := bd.Call(g, args...)
	if orig.ReturnType().IsVoid() {
		bd.Ret(nil)
	} else {
		bd.Ret(call)
	}
}

// side selects which original function a value mapping refers to.
type side int

const (
	sideA side = iota
	sideB
)

// ParamMapForTest exposes the merged-parameter provenance for
// differential tests.
func (r *Result) ParamMapForTest(first bool) map[int]int {
	if first {
		return r.paramMapA
	}
	return r.paramMapB
}
