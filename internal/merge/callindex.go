package merge

import "f3m/internal/ir"

// CallIndex tracks, for every function in a module, the direct call and
// invoke sites that reference it and the number of non-callee
// (address-taken) uses. Commit consults the module-wide structures on
// every committed merge; without an index that is a full module walk
// per commit, which turns whole-module merging quadratic — exactly the
// kind of cost this paper is about. The pipeline builds one index per
// run and keeps it current across commits.
type CallIndex struct {
	sites   map[*ir.Function]map[*ir.Instr]struct{}
	nonCall map[*ir.Function]int
}

// NewCallIndex scans the module once.
func NewCallIndex(m *ir.Module) *CallIndex {
	ci := &CallIndex{
		sites:   make(map[*ir.Function]map[*ir.Instr]struct{}),
		nonCall: make(map[*ir.Function]int),
	}
	for _, f := range m.Funcs {
		ci.AddFunction(f)
	}
	return ci
}

// AddFunction indexes every reference made by f's body.
func (ci *CallIndex) AddFunction(f *ir.Function) {
	f.Instructions(func(in *ir.Instr) { ci.addInstr(in) })
}

// RemoveFunction drops every reference made by f's body (call before
// deleting f from the module).
func (ci *CallIndex) RemoveFunction(f *ir.Function) {
	f.Instructions(func(in *ir.Instr) { ci.removeInstr(in) })
}

func (ci *CallIndex) addInstr(in *ir.Instr) {
	for i, op := range in.Operands {
		callee, ok := op.(*ir.Function)
		if !ok {
			continue
		}
		if (in.Op == ir.OpCall || in.Op == ir.OpInvoke) && i == 0 {
			set := ci.sites[callee]
			if set == nil {
				set = make(map[*ir.Instr]struct{})
				ci.sites[callee] = set
			}
			set[in] = struct{}{}
		} else {
			ci.nonCall[callee]++
		}
	}
}

func (ci *CallIndex) removeInstr(in *ir.Instr) {
	for i, op := range in.Operands {
		callee, ok := op.(*ir.Function)
		if !ok {
			continue
		}
		if (in.Op == ir.OpCall || in.Op == ir.OpInvoke) && i == 0 {
			if set := ci.sites[callee]; set != nil {
				delete(set, in)
			}
		} else if ci.nonCall[callee] > 0 {
			ci.nonCall[callee]--
		}
	}
}

// CallSites returns the current direct call sites of f.
func (ci *CallIndex) CallSites(f *ir.Function) []*ir.Instr {
	set := ci.sites[f]
	out := make([]*ir.Instr, 0, len(set))
	for in := range set {
		out = append(out, in)
	}
	return out
}

// NumCallSites reports how many direct call sites reference f (the
// profitability model's input).
func (ci *CallIndex) NumCallSites(f *ir.Function) int { return len(ci.sites[f]) }

// CallerFuncs returns the distinct functions containing direct call
// sites of f, in no particular order. The speculative merge stage uses
// it to invalidate speculations over functions whose bodies a commit
// just rewrote.
func (ci *CallIndex) CallerFuncs(f *ir.Function) []*ir.Function {
	seen := make(map[*ir.Function]bool, len(ci.sites[f]))
	out := make([]*ir.Function, 0, len(ci.sites[f]))
	for in := range ci.sites[f] {
		blk := in.Parent
		if blk == nil || blk.Parent == nil || seen[blk.Parent] {
			continue
		}
		seen[blk.Parent] = true
		out = append(out, blk.Parent)
	}
	return out
}

// HasNonCallUses reports whether f's address is taken anywhere.
func (ci *CallIndex) HasNonCallUses(f *ir.Function) bool { return ci.nonCall[f] > 0 }

// rewriteCalls applies rewrite to every call site of old and re-indexes
// each rewritten instruction (the callee operand changes).
func (ci *CallIndex) rewriteCalls(old *ir.Function, rewrite func(*ir.Instr)) int {
	sites := ci.CallSites(old)
	for _, in := range sites {
		ci.removeInstr(in)
		rewrite(in)
		ci.addInstr(in)
	}
	return len(sites)
}
