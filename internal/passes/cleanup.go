package passes

import (
	"f3m/internal/ir"
)

// DCE removes instructions that have no side effects and no uses, plus
// stack slots whose only uses are stores into them. It iterates to a
// fixed point and returns the number of instructions removed.
//
// The use counts and the "only stored to" bit live in the Instr
// scratch fields keyed by a fresh mark generation per iteration, so the
// pass allocates nothing: a pooled map here would grow to the largest
// function ever cleaned and then charge every later call an O(capacity)
// clear.
func DCE(f *ir.Function) int {
	removed := 0
	for {
		gen := ir.NextMarkGen()
		f.Instructions(func(in *ir.Instr) {
			if in.Op == ir.OpAlloca {
				in.ScratchSetFlag(gen, true)
			}
		})
		f.Instructions(func(in *ir.Instr) {
			for i, op := range in.Operands {
				def, ok := op.(*ir.Instr)
				if !ok {
					continue
				}
				def.ScratchAdd(gen, 1)
				if def.Op == ir.OpAlloca {
					if !(in.Op == ir.OpStore && i == 1) {
						def.ScratchSetFlag(gen, false)
					}
				}
			}
		})
		n := 0
		for _, b := range f.Blocks {
			keep := b.Instrs[:0]
			for _, in := range b.Instrs {
				dead := false
				switch {
				case in.Op == ir.OpAlloca && in.ScratchFlag(gen):
					dead = true
				case in.Op == ir.OpStore:
					if slot, ok := in.Operands[1].(*ir.Instr); ok && slot.Op == ir.OpAlloca && slot.ScratchFlag(gen) {
						dead = true
					}
				case !in.Op.HasSideEffects() && in.Op != ir.OpAlloca:
					dead = in.ScratchCount(gen) == 0 && !in.Ty.IsVoid()
				}
				if dead {
					n++
					continue
				}
				keep = append(keep, in)
			}
			clearTail(b.Instrs, len(keep))
			b.Instrs = keep
		}
		removed += n
		if n == 0 {
			return removed
		}
	}
}

// ElimRedundantPhis removes phis that do not select anything: a phi
// whose incoming values are all one value v (ignoring self-references)
// is replaced by v. Minimal-SSA construction (Mem2Reg's dominance
// frontiers) legitimately produces these, and the analysis linter
// treats surviving ones as cleanup failures, so the merger runs this to
// a fixed point after re-promotion. Returns the number of phis removed.
func ElimRedundantPhis(f *ir.Function) int {
	removed := 0
	for {
		n := 0
		for _, b := range f.Blocks {
			phis := append([]*ir.Instr(nil), b.Phis()...)
			for _, phi := range phis {
				var only ir.Value
				trivial := true
				for _, v := range phi.Operands {
					if v == ir.Value(phi) {
						continue
					}
					if only == nil || sameValue(only, v) {
						only = v
						continue
					}
					trivial = false
					break
				}
				if !trivial || only == nil {
					continue
				}
				replaceAllUses(f, phi, only)
				idx := b.IndexOf(phi)
				b.Instrs = append(b.Instrs[:idx], b.Instrs[idx+1:]...)
				n++
			}
		}
		removed += n
		if n == 0 {
			return removed
		}
	}
}

// SimplifyCFG performs the clean-ups the merger's dispatch blocks make
// profitable: removing unreachable blocks, folding conditional branches
// with identical targets, forwarding through empty blocks, and merging
// straight-line block pairs. Returns the number of rewrites applied.
func SimplifyCFG(f *ir.Function) int {
	total := 0
	for {
		n := removeUnreachable(f)
		n += foldSameTargetCondBr(f)
		n += forwardEmptyBlocks(f)
		n += mergeStraightLine(f)
		// Edge removal can leave single-edge (hence redundant) phis.
		n += ElimRedundantPhis(f)
		total += n
		if n == 0 {
			return total
		}
	}
}

func removeUnreachable(f *ir.Function) int {
	dt := ir.NewDomTree(f)
	var dead []*ir.Block
	for _, b := range f.Blocks {
		if !dt.Reachable(b) {
			dead = append(dead, b)
		}
	}
	dt.Release()
	if len(dead) == 0 {
		return 0
	}
	deadSet := make(map[*ir.Block]bool, len(dead))
	for _, b := range dead {
		deadSet[b] = true
	}
	// Drop phi edges coming from removed blocks.
	for _, b := range f.Blocks {
		if deadSet[b] {
			continue
		}
		for _, phi := range b.Phis() {
			for i := 0; i < len(phi.IncomingBlocks); {
				if deadSet[phi.IncomingBlocks[i]] {
					phi.Operands = append(phi.Operands[:i], phi.Operands[i+1:]...)
					phi.IncomingBlocks = append(phi.IncomingBlocks[:i], phi.IncomingBlocks[i+1:]...)
					continue
				}
				i++
			}
		}
	}
	for _, b := range dead {
		f.RemoveBlock(b)
	}
	return len(dead)
}

func foldSameTargetCondBr(f *ir.Function) int {
	n := 0
	ctx := f.Parent.Ctx
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		if t.Operands[1] != t.Operands[2] {
			continue
		}
		dst := t.Operands[1].(*ir.Block)
		// A phi in dst distinguishing the two edges would block this,
		// but verifier rules forbid duplicate phi edges, so folding is
		// always safe here.
		br := &ir.Instr{Op: ir.OpBr, Ty: ctx.Void, Operands: []ir.Value{dst}, Parent: b}
		b.Instrs[len(b.Instrs)-1] = br
		n++
	}
	return n
}

// forwardEmptyBlocks retargets edges that go through a block containing
// only an unconditional branch, when the final destination has no phis
// (phis would need their incoming edges rewritten across two hops).
func forwardEmptyBlocks(f *ir.Function) int {
	n := 0
	for _, mid := range f.Blocks {
		if mid == f.Entry() || len(mid.Instrs) != 1 {
			continue
		}
		t := mid.Term()
		if t == nil || t.Op != ir.OpBr {
			continue
		}
		dst := t.Operands[0].(*ir.Block)
		if dst == mid || len(dst.Phis()) > 0 {
			continue
		}
		for _, b := range f.Blocks {
			if b == mid {
				continue
			}
			if bt := b.Term(); bt != nil {
				for i, op := range bt.Operands {
					if op == ir.Value(mid) {
						bt.Operands[i] = dst
						n++
					}
				}
			}
		}
	}
	return n
}

// mergeStraightLine merges b into its unique predecessor when that
// predecessor unconditionally branches to b and has no other successor.
func mergeStraightLine(f *ir.Function) int {
	for _, b := range f.Blocks {
		if b == f.Entry() {
			continue
		}
		p := uniquePredEdge(f, b)
		if p == nil {
			continue
		}
		t := p.Term()
		if t == nil || t.Op != ir.OpBr || p == b {
			continue
		}
		// Single-pred phis become copies.
		for _, phi := range b.Phis() {
			replaceAllUses(f, phi, phi.Operands[0])
		}
		body := b.Instrs[b.FirstNonPhi():]
		p.Instrs = p.Instrs[:len(p.Instrs)-1] // drop the br
		for _, in := range body {
			p.Append(in)
		}
		// Successor phis referencing b now come from p.
		for _, s := range b.Succs() {
			for _, phi := range s.Phis() {
				for i, ib := range phi.IncomingBlocks {
					if ib == b {
						phi.IncomingBlocks[i] = p
					}
				}
			}
		}
		f.RemoveBlock(b)
		return 1 // block list changed; restart scan
	}
	return 0
}

// uniquePredEdge returns the source of b's single incoming edge, or nil
// when b has zero or multiple incoming edges. Duplicate edges from one
// predecessor (a cond-br with both targets on b) count separately,
// matching len(f.Preds()[b]) — without building the pred map.
// predEdgeCount counts b's incoming CFG edges, with the same duplicate-
// edge multiplicity as len(f.Preds()[b]) but no pred-map allocation.
func predEdgeCount(f *ir.Function, b *ir.Block) int {
	n := 0
	for _, p := range f.Blocks {
		t := p.Term()
		if t == nil {
			continue
		}
		for i, ns := 0, t.NumSuccessors(); i < ns; i++ {
			if t.Successor(i) == b {
				n++
			}
		}
	}
	return n
}

func uniquePredEdge(f *ir.Function, b *ir.Block) *ir.Block {
	var src *ir.Block
	for _, p := range f.Blocks {
		t := p.Term()
		if t == nil {
			continue
		}
		for i, ns := 0, t.NumSuccessors(); i < ns; i++ {
			if t.Successor(i) != b {
				continue
			}
			if src != nil {
				return nil // second incoming edge
			}
			src = p
		}
	}
	return src
}
