package passes

import "f3m/internal/ir"

// HoistAllocas moves every alloca to the head of the entry block, the
// canonical position Mem2Reg expects. Merged code places allocas in
// dispatch arms and guarded regions; hoisting them is safe because an
// alloca has no operands and our slots are always written before read
// on any path that reads them.
func HoistAllocas(f *ir.Function) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	var hoisted []*ir.Instr
	for _, b := range f.Blocks {
		keep := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				hoisted = append(hoisted, in)
				continue
			}
			keep = append(keep, in)
		}
		clearTail(b.Instrs, len(keep))
		b.Instrs = keep
	}
	entry := f.Entry()
	for i := len(hoisted) - 1; i >= 0; i-- {
		entry.InsertAt(0, hoisted[i])
	}
	return len(hoisted)
}
