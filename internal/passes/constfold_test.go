package passes

import (
	"testing"

	"f3m/internal/ir"
)

func TestConstFoldArithmetic(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  %a = add i32 6, 7
  %b = mul i32 %a, 2
  %r = add i32 %x, %b
  ret i32 %r
}`
	m := mustParse(t, src)
	f := m.Func("f")
	n := ConstFold(f)
	DCE(f)
	if n != 2 {
		t.Errorf("folded %d, want 2 (a then b)", n)
	}
	if f.NumInstrs() != 2 {
		t.Errorf("instrs = %d, want 2\n%s", f.NumInstrs(), ir.FuncString(f))
	}
	if got := run(t, m, "f", 10); got != 36 {
		t.Errorf("f(10) = %d, want 36", got)
	}
}

func TestConstFoldRespectsWrapping(t *testing.T) {
	src := `
define i8 @f() {
entry:
  %a = add i8 100, 100
  ret i8 %a
}`
	m := mustParse(t, src)
	f := m.Func("f")
	ConstFold(f)
	DCE(f)
	// 200 wraps to -56 in i8 — must match the interpreter.
	ret := f.Entry().Term()
	c, ok := ret.Operands[0].(*ir.Const)
	if !ok {
		t.Fatalf("ret not folded:\n%s", ir.FuncString(f))
	}
	if c.IntVal != -56 {
		t.Errorf("folded value = %d, want -56 (i8 wrap)", c.IntVal)
	}
}

func TestConstFoldSkipsDivByZero(t *testing.T) {
	src := `
define i32 @f() {
entry:
  %a = sdiv i32 5, 0
  ret i32 %a
}`
	m := mustParse(t, src)
	f := m.Func("f")
	if n := ConstFold(f); n != 0 {
		t.Errorf("folded %d, want 0 (division by zero must stay)", n)
	}
}

func TestConstFoldCmpSelectCast(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  %c = icmp slt i32 3, 5
  %s = select i1 %c, i32 10, i32 20
  %w = sext i8 -1 to i32
  %r1 = add i32 %s, %w
  %same = select i1 %c, i32 %x, i32 %x
  %r2 = add i32 %r1, %same
  ret i32 %r2
}`
	m := mustParse(t, src)
	f := m.Func("f")
	ConstFold(f)
	DCE(f)
	// 10 + (-1) + x = 9 + x
	if got := run(t, m, "f", 1); got != 10 {
		t.Errorf("f(1) = %d, want 10", got)
	}
	// The compare, both selects and the cast should all be gone.
	for _, in := range f.Entry().Instrs {
		switch in.Op {
		case ir.OpICmp, ir.OpSelect, ir.OpSExt:
			t.Errorf("unfolded %s survived:\n%s", in.Op, ir.FuncString(f))
		}
	}
}

func TestConstFoldShiftSemantics(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  %a = shl i32 1, 35
  ret i32 %a
}`
	m := mustParse(t, src)
	f := m.Func("f")
	want := run(t, m, "f", 0) // interpreter semantics (shift mod width)
	ConstFold(f)
	DCE(f)
	if got := run(t, m, "f", 0); got != want {
		t.Errorf("fold changed semantics: %d vs %d", got, want)
	}
}
