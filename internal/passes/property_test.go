package passes_test

import (
	"testing"

	"f3m/internal/interp"
	"f3m/internal/ir"
	"f3m/internal/irgen"
	"f3m/internal/passes"
)

func mustParseX(t testing.TB, src string) *ir.Module {
	t.Helper()
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func runX(t *testing.T, m *ir.Module, fn string, arg int64) int64 {
	t.Helper()
	f := m.Func(fn)
	mach := interp.NewMachine(m)
	out, err := mach.Call(f, interp.IntVal(f.Params[0].Ty, arg))
	if err != nil {
		t.Fatalf("run @%s(%d): %v", fn, arg, err)
	}
	return out.I
}

// TestPassesPreserveGeneratedSemantics runs RegToMem → Mem2Reg →
// SimplifyCFG → DCE over whole generated modules and interprets every
// function before and after: the strongest whole-population statement
// that the scalar passes are semantics-preserving.
func TestPassesPreserveGeneratedSemantics(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := irgen.Config{
			Seed: seed, Families: 8, FamilySizeMin: 2, FamilySizeMax: 3,
			Singletons: 8, BlocksMin: 2, BlocksMax: 7, InstrsMin: 3, InstrsMax: 10,
			MutationMin: 0, MutationMax: 0.5, ConfuserFraction: 0.4,
		}
		ref := irgen.Generate(cfg).Module
		work := irgen.Generate(cfg).Module

		for _, f := range work.Funcs {
			if f.IsDecl() {
				continue
			}
			passes.RegToMem(f)
			passes.Mem2Reg(f)
			passes.SimplifyCFG(f)
			passes.DCE(f)
		}
		if err := ir.VerifyModule(work); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		for _, rf := range ref.Funcs {
			if rf.IsDecl() {
				continue
			}
			wf := work.Func(rf.Name())
			for _, salt := range []int64{0, 3, -11, 100} {
				want, err1 := callWith(ref, rf, salt)
				got, err2 := callWith(work, wf, salt)
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("seed %d @%s salt %d: errors differ: %v vs %v",
						seed, rf.Name(), salt, err1, err2)
				}
				if err1 == nil && (want.I != got.I || want.F != got.F) {
					t.Fatalf("seed %d @%s salt %d: %v vs %v\nafter passes:\n%s",
						seed, rf.Name(), salt, want, got, ir.FuncString(wf))
				}
			}
		}
	}
}

func callWith(m *ir.Module, f *ir.Function, salt int64) (interp.Val, error) {
	mach := interp.NewMachine(m)
	mach.StepLimit = 5_000_000
	args := make([]interp.Val, len(f.Params))
	for i, p := range f.Params {
		if p.Ty.IsFloat() {
			args[i] = interp.FloatVal(p.Ty, float64(salt)+0.25)
		} else {
			args[i] = interp.IntVal(p.Ty, salt+int64(i))
		}
	}
	return mach.Call(f, args...)
}

// TestHoistAllocas verifies allocas migrate to the entry head and
// semantics hold.
func TestHoistAllocas(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  %slot = alloca i32
  store i32 %x, i32* %slot
  %v = load i32, i32* %slot
  ret i32 %v
b:
  ret i32 -1
}`
	m := mustParseX(t, src)
	f := m.Func("f")
	if n := passes.HoistAllocas(f); n != 1 {
		t.Fatalf("hoisted %d, want 1", n)
	}
	if f.Entry().Instrs[0].Op != ir.OpAlloca {
		t.Fatalf("alloca not at entry head:\n%s", ir.FuncString(f))
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatal(err)
	}
	if got := runX(t, m, "f", 7); got != 7 {
		t.Errorf("f(7) = %d", got)
	}
	if got := runX(t, m, "f", -7); got != -1 {
		t.Errorf("f(-7) = %d", got)
	}
	// Now the alloca is promotable.
	if n := passes.Mem2Reg(f); n != 1 {
		t.Errorf("Mem2Reg promoted %d, want 1", n)
	}
}

// TestRepairSSAIsIdempotent: a second repair pass must find nothing.
func TestRepairSSAIsIdempotent(t *testing.T) {
	m := ir.NewModule("t")
	c := m.Ctx
	f := m.NewFunc("f", c.Func(c.I32, c.I32, c.I1), "x", "cond")
	entry := f.NewBlock("entry")
	armA := f.NewBlock("armA")
	armB := f.NewBlock("armB")
	join := f.NewBlock("join")

	be := ir.NewBuilder(entry)
	be.CondBr(f.Params[1], armA, armB)
	ba := ir.NewBuilder(armA)
	va := ba.Add(f.Params[0], ir.ConstInt(c.I32, 1))
	ba.Br(join)
	bb := ir.NewBuilder(armB)
	vb := bb.Mul(f.Params[0], ir.ConstInt(c.I32, 3))
	bb.Br(join)
	bj := ir.NewBuilder(join)
	use := bj.Add(va, vb) // both operands violate dominance
	bj.Ret(use)

	if n := passes.RepairSSA(f); n != 2 {
		t.Errorf("first repair fixed %d values, want 2", n)
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("verify: %v\n%s", err, ir.FuncString(f))
	}
	if n := passes.RepairSSA(f); n != 0 {
		t.Errorf("second repair fixed %d values, want 0", n)
	}
}
