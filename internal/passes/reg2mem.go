// Package passes implements the scalar IR transformations the merging
// pipeline depends on:
//
//   - RegToMem demotes phi nodes to stack slots, producing the phi-free
//     form the merged-code generator consumes;
//   - DemoteValue breaks a single SSA use-def chain through memory,
//     implementing the Section III-E dominance-repair rules (including
//     the two cases HyFM originally got wrong);
//   - Mem2Reg promotes stack slots back to SSA with standard iterated
//     dominance-frontier phi placement;
//   - SimplifyCFG and DCE clean up the merged function.
package passes

import (
	"sync"

	"f3m/internal/ir"
)

// scePool recycles the per-call pred-edge counter of
// SplitCriticalEdges; the pass runs once per clone in the merge loop.
var scePool = sync.Pool{New: func() any { return make(map[*ir.Block]int, 32) }}

// SplitCriticalEdges splits every CFG edge whose source has multiple
// successors and whose destination has multiple predecessors, inserting
// a forwarding block. Phi incoming-block lists in destinations are
// rewritten to the new blocks. Returns the number of edges split.
func SplitCriticalEdges(f *ir.Function) int {
	// Count incoming CFG edges (with duplicate-edge multiplicity, like
	// len(f.Preds()[b])) without building predecessor lists.
	npreds := scePool.Get().(map[*ir.Block]int)
	defer scePool.Put(npreds)
	clear(npreds)
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil {
			continue
		}
		for i, ns := 0, t.NumSuccessors(); i < ns; i++ {
			npreds[t.Successor(i)]++
		}
	}
	split := 0
	// Collect first: we mutate the block list while iterating.
	type edge struct {
		from *ir.Block
		to   *ir.Block
	}
	var edges []edge
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.NumSuccessors() < 2 {
			continue
		}
		for i, ns := 0, t.NumSuccessors(); i < ns; i++ {
			if s := t.Successor(i); npreds[s] >= 2 {
				edges = append(edges, edge{b, s})
			}
		}
	}
	if len(edges) == 0 {
		return 0
	}
	done := make(map[edge]bool, len(edges))
	for _, e := range edges {
		if done[e] {
			continue // duplicate edge (e.g. condbr with same target twice)
		}
		done[e] = true
		mid := f.NewBlock(e.from.Name() + "." + e.to.Name())
		bd := ir.NewBuilder(mid)
		bd.Br(e.to)
		e.from.Term().ReplaceSuccessor(e.to, mid)
		for _, phi := range e.to.Phis() {
			for i, ib := range phi.IncomingBlocks {
				if ib == e.from {
					phi.IncomingBlocks[i] = mid
				}
			}
		}
		split++
	}
	return split
}

// newInstr draws a zeroed instruction from ar, or the heap when ar is
// nil. The merge pipeline passes its clone arena so the slots, stores
// and loads these passes insert into short-lived clones recycle with
// the clone instead of churning the allocator.
func newInstr(ar *ir.CloneArena) *ir.Instr {
	if ar != nil {
		return ar.NewInstr()
	}
	return &ir.Instr{}
}

// RegToMem demotes every phi node of f to a stack slot: each incoming
// edge stores its value at the end of the (possibly split) predecessor,
// and the phi is replaced by a load. After RegToMem the function is
// phi-free, the precondition of merge code generation.
func RegToMem(f *ir.Function) int { return RegToMemIn(f, nil) }

// RegToMemIn is RegToMem drawing inserted instructions from ar (which
// may be nil).
func RegToMemIn(f *ir.Function, ar *ir.CloneArena) int {
	// Splitting critical edges first guarantees each incoming edge has
	// a predecessor block ending in an unconditional branch, so stores
	// always have a legal insertion point after any terminator-defined
	// incoming value.
	SplitCriticalEdges(f)

	var phis []*ir.Instr
	for _, b := range f.Blocks {
		phis = append(phis, b.Phis()...)
	}
	if len(phis) == 0 {
		return 0
	}
	entry := f.Entry()
	ctx := f.Parent.Ctx
	for _, phi := range phis {
		if len(phi.Operands) == 1 {
			// Single-edge phi: a plain copy. Replacing it directly also
			// sidesteps the only store placement with no legal point
			// (an invoke in the sole predecessor's terminator).
			b := phi.Parent
			idx := b.IndexOf(phi)
			b.Instrs = append(b.Instrs[:idx], b.Instrs[idx+1:]...)
			replaceAllUses(f, phi, phi.Operands[0])
			continue
		}
		slot := newInstr(ar)
		slot.Op, slot.Ty, slot.AllocTy = ir.OpAlloca, ctx.Pointer(phi.Ty), phi.Ty
		slot.Nam = f.FreshName(phi.Nam + ".slot")
		entry.InsertAt(0, slot)

		for i, v := range phi.Operands {
			pred := phi.IncomingBlocks[i]
			st := newInstr(ar)
			st.Op, st.Ty = ir.OpStore, ctx.Void
			st.Operands = append(st.Operands[:0], v, slot)
			insertStoreForEdge(pred, v, st)
		}

		// Replace the phi with a load at its position.
		b := phi.Parent
		idx := b.IndexOf(phi)
		ld := newInstr(ar)
		ld.Op, ld.Ty, ld.Nam = ir.OpLoad, phi.Ty, phi.Nam
		ld.Operands = append(ld.Operands[:0], slot)
		ld.Parent = b
		b.Instrs[idx] = ld
		replaceAllUses(f, phi, ld)
	}
	return len(phis)
}

// insertStoreForEdge places a store at the end of pred (before the
// terminator), but never before the definition of the stored value:
// if the value is defined by pred's own terminator (an invoke), the
// edge must have been split so this cannot occur after
// SplitCriticalEdges unless the invoke's destination has one
// predecessor, in which case the store goes at the top of that block —
// which is where the phi being demoted lives, so storing before the
// load position is handled by the caller ordering.
func insertStoreForEdge(pred *ir.Block, v ir.Value, st *ir.Instr) {
	at := len(pred.Instrs)
	if t := pred.Term(); t != nil {
		at = pred.IndexOf(t)
		if t == v {
			// Value produced by the terminator itself (invoke). With
			// critical edges split, pred has a single successor here;
			// the successor's head is the only legal point.
			succ := t.Successors()[0]
			succ.InsertAt(succ.FirstNonPhi(), st)
			return
		}
	}
	pred.InsertAt(at, st)
}

// replaceAllUses substitutes new for old in every instruction of f.
func replaceAllUses(f *ir.Function, old, new ir.Value) {
	f.Instructions(func(in *ir.Instr) {
		if in == new {
			return
		}
		in.ReplaceUsesOfWith(old, new)
	})
}

// DemoteValue breaks the SSA def-use chains of value def through a
// stack slot, restoring the dominance property for uses the definition
// does not dominate. It implements the Section III-E placement rules:
//
//   - the store goes immediately after the definition; if the
//     definition is a phi node, after the block's last phi (HyFM bug
//     fix #1: storing at the end of the block while loads in the same
//     block read the slot earlier produced undefined behaviour);
//   - if the definition is an invoke, the store goes at the head of the
//     normal destination; when the use is a phi of that same successor
//     consuming the invoke's value along that edge, no store/load pair
//     is inserted at all (HyFM bug fix #2: there is no legal placement,
//     and none is needed because the SSA edge was never broken);
//   - loads are inserted immediately before each use, or before the
//     terminator of the incoming block when the use is a phi.
//
// Only the uses listed in `uses` are rewritten; pass nil to rewrite
// every use in the function.
func DemoteValue(f *ir.Function, def *ir.Instr, uses []*ir.Instr) *ir.Instr {
	return DemoteValueIn(f, nil, def, uses)
}

// DemoteValueIn is DemoteValue drawing the slot, store and load
// instructions from ar (which may be nil).
func DemoteValueIn(f *ir.Function, ar *ir.CloneArena, def *ir.Instr, uses []*ir.Instr) *ir.Instr {
	ctx := f.Parent.Ctx
	if uses == nil {
		f.Instructions(func(in *ir.Instr) {
			for _, op := range in.Operands {
				if op == ir.Value(def) {
					uses = append(uses, in)
					break
				}
			}
		})
	}

	// Plan the loads first: fix #2 can eliminate every rewrite, in
	// which case neither the slot nor the store must be emitted.
	type loadPlan struct {
		use *ir.Instr
		// opIdx >= 0 rewrites a single phi edge; -1 rewrites all
		// operands of a non-phi use.
		opIdx int
		block *ir.Block
	}
	var plans []loadPlan
	for _, use := range uses {
		if use.Op == ir.OpPhi {
			for i, op := range use.Operands {
				if op != ir.Value(def) {
					continue
				}
				in := use.IncomingBlocks[i]
				if def.Op == ir.OpInvoke && def.Parent == in {
					// Fix #2: invoke feeding a phi over its own normal
					// edge. The load would have to precede the invoke;
					// but the SSA edge is already legal — leave it.
					continue
				}
				plans = append(plans, loadPlan{use: use, opIdx: i, block: in})
			}
			continue
		}
		plans = append(plans, loadPlan{use: use, opIdx: -1, block: use.Parent})
	}
	if len(plans) == 0 {
		return nil
	}

	slot := newInstr(ar)
	slot.Op, slot.Ty, slot.AllocTy = ir.OpAlloca, ctx.Pointer(def.Ty), def.Ty
	slot.Nam = f.FreshName(def.Nam + ".demoted")
	f.Entry().InsertAt(0, slot)
	st := newInstr(ar)
	st.Op, st.Ty = ir.OpStore, ctx.Void
	st.Operands = append(st.Operands[:0], def, slot)

	// Place the store at the first point dominated by the definition.
	switch {
	case def.Op == ir.OpPhi:
		// Fix #1: first legal point after the definition is after the
		// phi run, not the end of the block.
		b := def.Parent
		b.InsertAt(b.FirstNonPhi(), st)
	case def.Op == ir.OpInvoke:
		// The result only exists on the normal edge. If the normal
		// destination has other predecessors, storing there would use
		// the result on paths where it does not exist; split the edge.
		normal := def.Successors()[0]
		if predEdgeCount(f, normal) > 1 {
			mid := f.NewBlock(f.FreshName(def.Parent.Name() + ".store"))
			bd := ir.NewBuilder(mid)
			bd.Br(normal)
			def.ReplaceSuccessor(normal, mid)
			for _, phi := range normal.Phis() {
				for i, ib := range phi.IncomingBlocks {
					if ib == def.Parent {
						phi.IncomingBlocks[i] = mid
					}
				}
			}
			normal = mid
		}
		normal.InsertAt(normal.FirstNonPhi(), st)
	default:
		b := def.Parent
		b.InsertAt(b.IndexOf(def)+1, st)
	}

	for _, pl := range plans {
		ld := newInstr(ar)
		ld.Op, ld.Ty, ld.Nam = ir.OpLoad, def.Ty, f.FreshName(def.Nam+".reload")
		ld.Operands = append(ld.Operands[:0], slot)
		if pl.opIdx >= 0 {
			at := len(pl.block.Instrs)
			if t := pl.block.Term(); t != nil {
				at = pl.block.IndexOf(t)
			}
			pl.block.InsertAt(at, ld)
			pl.use.Operands[pl.opIdx] = ld
			continue
		}
		pl.block.InsertAt(pl.block.IndexOf(pl.use), ld)
		pl.use.ReplaceUsesOfWith(def, ld)
	}
	return slot
}

// RepairSSA finds every use that its definition does not dominate and
// demotes the offending values to memory. It returns the number of
// values demoted. Merged-code generation relies on this as the final
// legality net, exactly as HyFM does.
func RepairSSA(f *ir.Function) int { return RepairSSAIn(f, nil) }

// RepairSSAIn is RepairSSA drawing demotion instructions from ar (which
// may be nil).
func RepairSSAIn(f *ir.Function, ar *ir.CloneArena) int {
	demoted := 0
	for {
		dt := ir.NewDomTree(f)
		gen := f.MarkInstrs()

		// def -> offending uses; allocated lazily, since the common case
		// (especially on re-check iterations) finds no violations.
		var bad map[*ir.Instr][]*ir.Instr
		var order []*ir.Instr
		for _, b := range f.Blocks {
			if !dt.Reachable(b) {
				continue
			}
			for _, in := range b.Instrs {
				for idx, op := range in.Operands {
					def, ok := op.(*ir.Instr)
					if !ok || !def.Marked(gen) {
						continue
					}
					if !dt.DominatesInstr(def, in, idx) {
						if bad == nil {
							bad = make(map[*ir.Instr][]*ir.Instr)
						}
						if _, seen := bad[def]; !seen {
							order = append(order, def)
						}
						bad[def] = appendInstrUnique(bad[def], in)
					}
				}
			}
		}
		dt.Release()
		if len(bad) == 0 {
			return demoted
		}
		for _, def := range order {
			DemoteValueIn(f, ar, def, bad[def])
			demoted++
		}
		// Demotion inserts loads whose own placement could, in corner
		// cases, introduce new violations; iterate to a fixed point.
	}
}

func appendInstrUnique(list []*ir.Instr, in *ir.Instr) []*ir.Instr {
	for _, x := range list {
		if x == in {
			return list
		}
	}
	return append(list, in)
}
