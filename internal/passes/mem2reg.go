package passes

import (
	"sync"

	"f3m/internal/ir"
)

// m2rScratch holds every map and slice Mem2Reg needs, pooled because
// the merge pipeline runs the pass once per attempted merge. All
// containers are cleared on release so pooled storage pins no IR.
type m2rScratch struct {
	cand      map[*ir.Instr]int
	candList  []*ir.Instr
	ok        []bool
	defBlocks [][]*ir.Block
	slotList  []*ir.Instr
	slotDefs  [][]*ir.Block
	slots     map[*ir.Instr]bool
	slotIdx   map[*ir.Instr]int
	phiFor    map[*ir.Instr]*ir.Instr
	repl      map[ir.Value]ir.Value
	seenDef   map[*ir.Block]bool
	placed    map[*ir.Block]bool
	work      []*ir.Block
	kids      []*ir.Block
	stk       [][]ir.Value
	undo      []int
}

var m2rPool = sync.Pool{New: func() any {
	return &m2rScratch{
		cand:    make(map[*ir.Instr]int, 32),
		slots:   make(map[*ir.Instr]bool, 32),
		slotIdx: make(map[*ir.Instr]int, 32),
		phiFor:  make(map[*ir.Instr]*ir.Instr, 32),
		repl:    make(map[ir.Value]ir.Value, 64),
		seenDef: make(map[*ir.Block]bool, 16),
		placed:  make(map[*ir.Block]bool, 16),
	}
}}

func (s *m2rScratch) release() {
	clear(s.cand)
	clear(s.slots)
	clear(s.slotIdx)
	clear(s.phiFor)
	clear(s.repl)
	clear(s.seenDef)
	clear(s.placed)
	s.candList = wipe(s.candList)
	s.slotList = wipe(s.slotList)
	s.slotDefs = wipe(s.slotDefs)
	s.work = wipe(s.work)
	s.kids = wipe(s.kids)
	s.undo = s.undo[:0]
	for i := range s.defBlocks {
		s.defBlocks[i] = wipe(s.defBlocks[i])
	}
	for i := range s.stk {
		s.stk[i] = wipe(s.stk[i])
	}
	m2rPool.Put(s)
}

// wipe zeroes a slice's elements (so recycled storage pins nothing) and
// returns it truncated to zero length, capacity intact.
func wipe[T any](s []T) []T {
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s[:0]
}

// Mem2Reg promotes entry-block stack slots whose only uses are
// same-typed loads and stores back into SSA values, inserting phi nodes
// on the iterated dominance frontier of the stores. It undoes RegToMem
// and the demotions performed by RepairSSA, recovering the code size
// that memory round-trips would otherwise cost the merged function.
// It returns the number of slots promoted.
func Mem2Reg(f *ir.Function) int { return Mem2RegIn(f, nil) }

// Mem2RegIn is Mem2Reg drawing inserted phi instructions from ar
// (which may be nil).
func Mem2RegIn(f *ir.Function, ar *ir.CloneArena) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	entry := f.Entry()
	s := m2rPool.Get().(*m2rScratch)
	defer s.release()

	// Candidate slots in entry-block order. One pass over the function
	// then settles promotability and collects def blocks for all of them
	// at once, instead of re-scanning the function per slot.
	cand := s.cand
	candList := s.candList
	for _, in := range entry.Instrs {
		if in.Op == ir.OpAlloca && !in.AllocTy.IsAggregate() {
			cand[in] = len(candList)
			candList = append(candList, in)
		}
	}
	s.candList = candList
	if len(candList) == 0 {
		return 0
	}
	for len(s.ok) < len(candList) {
		s.ok = append(s.ok, false)
	}
	ok := s.ok[:len(candList)]
	for i := range ok {
		ok[i] = true
	}
	for len(s.defBlocks) < len(candList) {
		s.defBlocks = append(s.defBlocks, nil)
	}
	defBlocks := s.defBlocks[:len(candList)]
	for i := range defBlocks {
		defBlocks[i] = defBlocks[i][:0]
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for oi, op := range in.Operands {
				def, isInstr := op.(*ir.Instr)
				if !isInstr {
					continue
				}
				ci, isCand := cand[def]
				if !isCand {
					continue
				}
				// A use is fine only as a whole-slot load or a store
				// *through* (not of) the slot; anything else (GEP, cast,
				// call, escaping store) blocks promotion.
				switch in.Op {
				case ir.OpLoad:
					if in.Ty != def.AllocTy {
						ok[ci] = false
					}
				case ir.OpStore:
					if in.Operands[0] == op || in.Operands[1] != op {
						ok[ci] = false
					} else if oi == 1 {
						// All stores in block b are seen consecutively
						// (the scan is block-major), so deduplication is
						// a tail check.
						if n := len(defBlocks[ci]); n == 0 || defBlocks[ci][n-1] != b {
							defBlocks[ci] = append(defBlocks[ci], b)
						}
					}
				default:
					ok[ci] = false
				}
			}
		}
	}

	// slotList keeps the entry-block order: phi placement iterates it so
	// the phi run of any join block is ordered by slot, not by map
	// iteration — checkers compare IR structurally and need the output
	// to be a pure function of the input.
	slots := s.slots
	slotList := s.slotList
	slotDefs := s.slotDefs
	for i, in := range candList {
		if !ok[i] {
			continue
		}
		slots[in] = true
		slotList = append(slotList, in)
		slotDefs = append(slotDefs, defBlocks[i])
	}
	s.slotList, s.slotDefs = slotList, slotDefs
	if len(slots) == 0 {
		return 0
	}

	dt := ir.NewDomTree(f)
	df := dt.Frontier()

	// Phi placement. phiFor[phi] identifies which slot a synthetic phi
	// belongs to during renaming. seenDef/placed are reused across
	// slots, reseeded per slot.
	phiFor := s.phiFor
	for si, slot := range slotList {
		seenDef := s.seenDef
		clear(seenDef)
		for _, b := range slotDefs[si] {
			seenDef[b] = true
		}
		placed := s.placed
		clear(placed)
		work := append(s.work[:0], slotDefs[si]...)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fr := range df[b] {
				if placed[fr] {
					continue
				}
				placed[fr] = true
				phi := newInstr(ar)
				phi.Op, phi.Ty, phi.Nam = ir.OpPhi, slot.AllocTy, f.FreshName(slot.Nam+".phi")
				fr.InsertAt(0, phi)
				phiFor[phi] = slot
				if !seenDef[fr] {
					seenDef[fr] = true
					work = append(work, fr)
				}
			}
		}
		s.work = work
	}

	// repl maps eliminated loads to their replacement values; resolve
	// follows chains lazily so elimination order does not matter.
	repl := s.repl
	var resolve func(v ir.Value) ir.Value
	resolve = func(v ir.Value) ir.Value {
		for {
			r, ok := repl[v]
			if !ok {
				return v
			}
			v = r
		}
	}

	// Rename walk over the dominator tree. Instead of copying a
	// slot->value map into every block (the original formulation), each
	// slot keeps a stack of definitions: the top is the value of the
	// nearest dominating definition — identical semantics, since pushes
	// made in a block stay visible exactly while its dominator subtree
	// is being walked and are undone before a sibling starts.
	slotIdx := s.slotIdx
	for i, sl := range slotList {
		slotIdx[sl] = i
	}
	for len(s.stk) < len(slotList) {
		s.stk = append(s.stk, nil)
	}
	stk := s.stk[:len(slotList)]
	for i := range stk {
		stk[i] = stk[i][:0]
	}
	undo := s.undo[:0] // slot indices in push order, unwound per block
	top := func(si int, slot *ir.Instr) ir.Value {
		if n := len(stk[si]); n > 0 {
			return stk[si][n-1]
		}
		return ir.ConstUndef(slot.AllocTy)
	}
	kids := s.kids[:0]
	var rename func(b *ir.Block)
	rename = func(b *ir.Block) {
		mark := len(undo)
		keep := b.Instrs[:0]
		for _, in := range b.Instrs {
			switch {
			case in.Op == ir.OpPhi && phiFor[in] != nil:
				si := slotIdx[phiFor[in]]
				stk[si] = append(stk[si], in)
				undo = append(undo, si)
				keep = append(keep, in)
			case in.Op == ir.OpLoad && slotOf(in.Operands[0], slots) != nil:
				slot := slotOf(in.Operands[0], slots)
				repl[in] = resolve(top(slotIdx[slot], slot))
				// dropped from keep: load eliminated
			case in.Op == ir.OpStore && slotOf(in.Operands[1], slots) != nil:
				si := slotIdx[slotOf(in.Operands[1], slots)]
				stk[si] = append(stk[si], resolve(in.Operands[0]))
				undo = append(undo, si)
				// dropped from keep: store eliminated
			case in.Op == ir.OpAlloca && slots[in]:
				// dropped: the slot itself disappears
			default:
				keep = append(keep, in)
			}
		}
		clearTail(b.Instrs, len(keep))
		b.Instrs = keep

		// Feed phi nodes of CFG successors.
		if term := b.Term(); term != nil {
			for i, ns := 0, term.NumSuccessors(); i < ns; i++ {
				for _, phi := range term.Successor(i).Phis() {
					slot := phiFor[phi]
					if slot == nil {
						continue
					}
					phi.AddIncoming(resolve(top(slotIdx[slot], slot)), b)
				}
			}
		}
		// Recurse into the dominator-tree children, sharing one kid
		// buffer: each frame appends its children, walks them, then
		// truncates back.
		base := len(kids)
		kids = dt.Children(b, kids)
		end := len(kids)
		for i := base; i < end; i++ {
			rename(kids[i])
		}
		kids = kids[:base]
		for len(undo) > mark {
			si := undo[len(undo)-1]
			undo = undo[:len(undo)-1]
			stk[si] = stk[si][:len(stk[si])-1]
		}
	}
	rename(entry)
	s.undo, s.kids = undo, kids

	// Unreachable blocks were never renamed; scrub residual slot uses.
	for _, b := range f.Blocks {
		if dt.Reachable(b) {
			continue
		}
		keep := b.Instrs[:0]
		for _, in := range b.Instrs {
			switch {
			case in.Op == ir.OpStore && slotOf(in.Operands[1], slots) != nil:
				continue
			case in.Op == ir.OpLoad && slotOf(in.Operands[0], slots) != nil:
				repl[in] = ir.ConstUndef(in.Ty)
				continue
			case in.Op == ir.OpAlloca && slots[in]:
				continue
			}
			keep = append(keep, in)
		}
		clearTail(b.Instrs, len(keep))
		b.Instrs = keep
	}

	// Apply replacements everywhere in one pass.
	f.Instructions(func(in *ir.Instr) {
		for i, op := range in.Operands {
			in.Operands[i] = resolve(op)
		}
	})
	dt.Release()
	return len(slots)
}

// clearTail nils out the now-unused tail of a truncated instruction
// slice so removed instructions can be collected.
func clearTail(s []*ir.Instr, from int) {
	for i := from; i < len(s); i++ {
		s[i] = nil
	}
}

// slotOf returns the promotable slot a pointer operand refers to, or
// nil.
func slotOf(v ir.Value, slots map[*ir.Instr]bool) *ir.Instr {
	in, ok := v.(*ir.Instr)
	if ok && slots[in] {
		return in
	}
	return nil
}
