package passes

import (
	"f3m/internal/ir"
)

// Mem2Reg promotes entry-block stack slots whose only uses are
// same-typed loads and stores back into SSA values, inserting phi nodes
// on the iterated dominance frontier of the stores. It undoes RegToMem
// and the demotions performed by RepairSSA, recovering the code size
// that memory round-trips would otherwise cost the merged function.
// It returns the number of slots promoted.
func Mem2Reg(f *ir.Function) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	entry := f.Entry()

	// slotList keeps the entry-block order: phi placement iterates it so
	// the phi run of any join block is ordered by slot, not by map
	// iteration — checkers compare IR structurally and need the output
	// to be a pure function of the input.
	slots := make(map[*ir.Instr]bool)
	var slotList []*ir.Instr
	for _, in := range entry.Instrs {
		if in.Op == ir.OpAlloca && promotable(f, in) {
			slots[in] = true
			slotList = append(slotList, in)
		}
	}
	if len(slots) == 0 {
		return 0
	}

	dt := ir.NewDomTree(f)
	df := dt.Frontier()

	// children of the dominator tree, for the rename walk.
	children := make(map[*ir.Block][]*ir.Block)
	for _, b := range f.Blocks {
		if id := dt.IDom(b); id != nil {
			children[id] = append(children[id], b)
		}
	}

	// Phi placement. phiFor[phi] identifies which slot a synthetic phi
	// belongs to during renaming.
	phiFor := make(map[*ir.Instr]*ir.Instr)
	for _, slot := range slotList {
		var defBlocks []*ir.Block
		seenDef := make(map[*ir.Block]bool)
		f.Instructions(func(in *ir.Instr) {
			if in.Op == ir.OpStore && in.Operands[1] == ir.Value(slot) && !seenDef[in.Parent] {
				seenDef[in.Parent] = true
				defBlocks = append(defBlocks, in.Parent)
			}
		})
		placed := make(map[*ir.Block]bool)
		work := append([]*ir.Block(nil), defBlocks...)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fr := range df[b] {
				if placed[fr] {
					continue
				}
				placed[fr] = true
				phi := &ir.Instr{Op: ir.OpPhi, Ty: slot.AllocTy, Nam: f.FreshName(slot.Nam + ".phi")}
				fr.InsertAt(0, phi)
				phiFor[phi] = slot
				if !seenDef[fr] {
					seenDef[fr] = true
					work = append(work, fr)
				}
			}
		}
	}

	// repl maps eliminated loads to their replacement values; resolve
	// follows chains lazily so elimination order does not matter.
	repl := make(map[ir.Value]ir.Value)
	var resolve func(v ir.Value) ir.Value
	resolve = func(v ir.Value) ir.Value {
		for {
			r, ok := repl[v]
			if !ok {
				return v
			}
			v = r
		}
	}

	// Rename walk over the dominator tree.
	type state map[*ir.Instr]ir.Value // slot -> current value
	var rename func(b *ir.Block, cur state)
	rename = func(b *ir.Block, cur state) {
		local := make(state, len(cur))
		for k, v := range cur {
			local[k] = v
		}
		keep := b.Instrs[:0]
		for _, in := range b.Instrs {
			switch {
			case in.Op == ir.OpPhi && phiFor[in] != nil:
				local[phiFor[in]] = in
				keep = append(keep, in)
			case in.Op == ir.OpLoad && slotOf(in.Operands[0], slots) != nil:
				slot := slotOf(in.Operands[0], slots)
				v, ok := local[slot]
				if !ok {
					v = ir.ConstUndef(slot.AllocTy)
				}
				repl[in] = resolve(v)
				// dropped from keep: load eliminated
			case in.Op == ir.OpStore && slotOf(in.Operands[1], slots) != nil:
				local[slotOf(in.Operands[1], slots)] = resolve(in.Operands[0])
				// dropped from keep: store eliminated
			case in.Op == ir.OpAlloca && slots[in]:
				// dropped: the slot itself disappears
			default:
				keep = append(keep, in)
			}
		}
		clearTail(b.Instrs, len(keep))
		b.Instrs = keep

		// Feed phi nodes of CFG successors.
		for _, s := range b.Succs() {
			for _, phi := range s.Phis() {
				slot := phiFor[phi]
				if slot == nil {
					continue
				}
				v, ok := local[slot]
				if !ok {
					v = ir.ConstUndef(slot.AllocTy)
				}
				phi.AddIncoming(resolve(v), b)
			}
		}
		for _, c := range children[b] {
			rename(c, local)
		}
	}
	rename(entry, make(state))

	// Unreachable blocks were never renamed; scrub residual slot uses.
	for _, b := range f.Blocks {
		if dt.Reachable(b) {
			continue
		}
		keep := b.Instrs[:0]
		for _, in := range b.Instrs {
			switch {
			case in.Op == ir.OpStore && slotOf(in.Operands[1], slots) != nil:
				continue
			case in.Op == ir.OpLoad && slotOf(in.Operands[0], slots) != nil:
				repl[in] = ir.ConstUndef(in.Ty)
				continue
			case in.Op == ir.OpAlloca && slots[in]:
				continue
			}
			keep = append(keep, in)
		}
		clearTail(b.Instrs, len(keep))
		b.Instrs = keep
	}

	// Apply replacements everywhere in one pass.
	f.Instructions(func(in *ir.Instr) {
		for i, op := range in.Operands {
			in.Operands[i] = resolve(op)
		}
	})
	return len(slots)
}

// clearTail nils out the now-unused tail of a truncated instruction
// slice so removed instructions can be collected.
func clearTail(s []*ir.Instr, from int) {
	for i := from; i < len(s); i++ {
		s[i] = nil
	}
}

// promotable reports whether a slot is used only by whole-slot loads
// and stores (no GEPs, casts, calls or stores *of* the pointer).
func promotable(f *ir.Function, slot *ir.Instr) bool {
	if slot.AllocTy.IsAggregate() {
		return false
	}
	ok := true
	f.Instructions(func(in *ir.Instr) {
		if !ok || in == slot {
			return
		}
		uses := false
		for _, op := range in.Operands {
			if op == ir.Value(slot) {
				uses = true
			}
		}
		if !uses {
			return
		}
		switch in.Op {
		case ir.OpLoad:
			if in.Ty != slot.AllocTy {
				ok = false
			}
		case ir.OpStore:
			// Must store *through* the slot, not store the pointer.
			if in.Operands[0] == ir.Value(slot) || in.Operands[1] != ir.Value(slot) {
				ok = false
			}
		default:
			ok = false
		}
	})
	return ok
}

// slotOf returns the promotable slot a pointer operand refers to, or
// nil.
func slotOf(v ir.Value, slots map[*ir.Instr]bool) *ir.Instr {
	in, ok := v.(*ir.Instr)
	if ok && slots[in] {
		return in
	}
	return nil
}
