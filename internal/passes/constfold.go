package passes

import (
	"f3m/internal/interp"
	"f3m/internal/ir"
)

// ConstFold evaluates instructions whose operands are constants,
// replacing their uses with the folded constant, and simplifies selects
// with constant or degenerate conditions. Folding semantics are the
// interpreter's own (interp.FoldBinary et al.), so folding can never
// change observable behaviour. Folded instructions become dead; run DCE
// afterwards to drop them. Returns the number of folds.
func ConstFold(f *ir.Function) int {
	ctx := f.Parent.Ctx
	total := 0
	for {
		repl := make(map[ir.Value]ir.Value)
		f.Instructions(func(in *ir.Instr) {
			if in.Ty.IsVoid() || in.Op == ir.OpPhi {
				return
			}
			switch {
			case in.Op.IsBinary():
				a, ok1 := in.Operands[0].(*ir.Const)
				b, ok2 := in.Operands[1].(*ir.Const)
				if ok1 && ok2 {
					if c, ok := interp.FoldBinary(in.Op, in.Ty, a, b); ok {
						repl[in] = c
					}
				}
			case in.Op.IsCast():
				if v, ok := in.Operands[0].(*ir.Const); ok {
					if c, ok := interp.FoldCast(in.Op, in.Ty, v); ok {
						repl[in] = c
					}
				}
			case in.Op == ir.OpICmp || in.Op == ir.OpFCmp:
				a, ok1 := in.Operands[0].(*ir.Const)
				b, ok2 := in.Operands[1].(*ir.Const)
				if ok1 && ok2 {
					if c, ok := interp.FoldCmp(ctx, in.Op, in.Predicate, a, b); ok {
						repl[in] = c
					}
				}
			case in.Op == ir.OpSelect:
				if c, ok := in.Operands[0].(*ir.Const); ok && !c.Undef {
					if c.IntVal&1 != 0 {
						repl[in] = in.Operands[1]
					} else {
						repl[in] = in.Operands[2]
					}
					return
				}
				// select %c, x, x == x
				if sameValue(in.Operands[1], in.Operands[2]) {
					repl[in] = in.Operands[1]
				}
			}
		})
		if len(repl) == 0 {
			return total
		}
		total += len(repl)
		f.Instructions(func(in *ir.Instr) {
			for i, op := range in.Operands {
				for {
					nv, ok := repl[op]
					if !ok {
						break
					}
					op = nv
				}
				in.Operands[i] = op
			}
		})
		// Physically drop the folded instructions: every use has been
		// rewritten, and leaving them in place would make the next
		// iteration rediscover the same folds forever.
		for _, b := range f.Blocks {
			keep := b.Instrs[:0]
			for _, in := range b.Instrs {
				if _, dead := repl[in]; dead {
					continue
				}
				keep = append(keep, in)
			}
			clearTail(b.Instrs, len(keep))
			b.Instrs = keep
		}
	}
}

// sameValue reports definite value equality (identity, or equal
// constants).
func sameValue(a, b ir.Value) bool {
	if a == b {
		return true
	}
	ca, ok1 := a.(*ir.Const)
	cb, ok2 := b.(*ir.Const)
	return ok1 && ok2 && ir.ConstEqual(ca, cb)
}
