package passes

import (
	"math/rand"
	"strings"
	"testing"

	"f3m/internal/interp"
	"f3m/internal/ir"
)

func mustParse(t testing.TB, src string) *ir.Module {
	t.Helper()
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	return m
}

const loopSrc = `
define i32 @sumto(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [0, %entry], [%i2, %body]
  %acc = phi i32 [0, %entry], [%acc2, %body]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  br label %head
exit:
  ret i32 %acc
}`

const diamondSrc = `
define i32 @f(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 10
  br i1 %c, label %big, label %small
big:
  %b = mul i32 %x, 2
  br label %join
small:
  %s = add i32 %x, 100
  br label %join
join:
  %r = phi i32 [%b, %big], [%s, %small]
  ret i32 %r
}`

// run evaluates fn(arg) and returns the result.
func run(t *testing.T, m *ir.Module, fn string, arg int64) int64 {
	t.Helper()
	f := m.Func(fn)
	mach := interp.NewMachine(m)
	out, err := mach.Call(f, interp.IntVal(f.Params[0].Ty, arg))
	if err != nil {
		t.Fatalf("run @%s(%d): %v", fn, arg, err)
	}
	return out.I
}

// checkSameBehaviour verifies fn computes the same results before and
// after transform on a spread of inputs.
func checkSameBehaviour(t *testing.T, src, fn string, transform func(*ir.Function)) {
	t.Helper()
	ref := mustParse(t, src)
	mod := mustParse(t, src)
	transform(mod.Func(fn))
	if err := ir.VerifyModule(mod); err != nil {
		t.Fatalf("verify after transform: %v\n%s", err, ir.FuncString(mod.Func(fn)))
	}
	for _, x := range []int64{-7, 0, 1, 5, 10, 11, 42} {
		want := run(t, ref, fn, x)
		got := run(t, mod, fn, x)
		if got != want {
			t.Errorf("%s(%d) = %d, want %d", fn, x, got, want)
		}
	}
}

func TestRegToMemLoop(t *testing.T) {
	checkSameBehaviour(t, loopSrc, "sumto", func(f *ir.Function) {
		if n := RegToMem(f); n == 0 {
			t.Error("RegToMem demoted nothing")
		}
		// Phi-free afterwards.
		f.Instructions(func(in *ir.Instr) {
			if in.Op == ir.OpPhi {
				t.Errorf("phi survived RegToMem: %s", ir.InstrString(in))
			}
		})
	})
}

func TestRegToMemDiamond(t *testing.T) {
	checkSameBehaviour(t, diamondSrc, "f", func(f *ir.Function) {
		RegToMem(f)
	})
}

func TestRegToMemSwappingPhis(t *testing.T) {
	// Parallel phi semantics must survive demotion.
	src := `
define i32 @f(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [0, %entry], [%i2, %body]
  %a = phi i32 [1, %entry], [%b, %body]
  %b = phi i32 [2, %entry], [%a, %body]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %i2 = add i32 %i, 1
  br label %head
exit:
  %r = mul i32 %a, 10
  %r2 = add i32 %r, %b
  ret i32 %r2
}`
	checkSameBehaviour(t, src, "f", func(f *ir.Function) { RegToMem(f) })
}

func TestSplitCriticalEdges(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %a, label %join
a:
  br label %join
join:
  %r = phi i32 [1, %entry], [2, %a]
  ret i32 %r
}`
	m := mustParse(t, src)
	f := m.Func("f")
	// entry->join is critical (entry: 2 succs, join: 2 preds).
	if n := SplitCriticalEdges(f); n != 1 {
		t.Errorf("split %d edges, want 1", n)
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("verify: %v\n%s", err, ir.FuncString(f))
	}
	if got := run(t, m, "f", 5); got != 2 {
		t.Errorf("f(5) = %d, want 2 (via %%a)", got)
	}
	if got := run(t, m, "f", -5); got != 1 {
		t.Errorf("f(-5) = %d, want 1 (direct edge)", got)
	}
}

func TestMem2RegRoundTrip(t *testing.T) {
	for _, src := range []string{loopSrc, diamondSrc} {
		fnName := "sumto"
		if strings.Contains(src, "@f(") {
			fnName = "f"
		}
		checkSameBehaviour(t, src, fnName, func(f *ir.Function) {
			RegToMem(f)
			if n := Mem2Reg(f); n == 0 {
				t.Error("Mem2Reg promoted nothing")
			}
			// All demotion slots should be gone.
			f.Instructions(func(in *ir.Instr) {
				if in.Op == ir.OpAlloca {
					t.Errorf("alloca survived Mem2Reg: %s", ir.InstrString(in))
				}
			})
		})
	}
}

func TestMem2RegPreservesUnrelatedAllocas(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  %arr = alloca [4 x i32]
  %p = getelementptr [4 x i32]* %arr, i64 0, i64 0
  store i32 %x, i32* %p
  %v = load i32, i32* %p
  ret i32 %v
}`
	m := mustParse(t, src)
	f := m.Func("f")
	if n := Mem2Reg(f); n != 0 {
		t.Errorf("promoted %d aggregate slots, want 0", n)
	}
	if got := run(t, m, "f", 9); got != 9 {
		t.Errorf("f(9) = %d", got)
	}
}

func TestMem2RegUndefOnNoStorePath(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  %slot = alloca i32
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %yes, label %no
yes:
  store i32 %x, i32* %slot
  br label %join
no:
  br label %join
join:
  %v = load i32, i32* %slot
  ret i32 %v
}`
	m := mustParse(t, src)
	f := m.Func("f")
	if n := Mem2Reg(f); n != 1 {
		t.Fatalf("promoted %d, want 1", n)
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("verify: %v\n%s", err, ir.FuncString(f))
	}
	// Positive path must still produce x.
	if got := run(t, m, "f", 7); got != 7 {
		t.Errorf("f(7) = %d, want 7", got)
	}
}

func TestRepairSSAFixesViolation(t *testing.T) {
	// Build IR where a value defined in one arm of a diamond is used
	// after the join: a dominance violation the merger can produce.
	m := ir.NewModule("t")
	c := m.Ctx
	f := m.NewFunc("f", c.Func(c.I32, c.I32, c.I1), "x", "cond")
	entry := f.NewBlock("entry")
	armA := f.NewBlock("armA")
	armB := f.NewBlock("armB")
	join := f.NewBlock("join")

	be := ir.NewBuilder(entry)
	be.CondBr(f.Params[1], armA, armB)

	ba := ir.NewBuilder(armA)
	va := ba.Add(f.Params[0], ir.ConstInt(c.I32, 1))
	ba.Br(join)

	bb := ir.NewBuilder(armB)
	bb.Br(join)

	bj := ir.NewBuilder(join)
	use := bj.Mul(va, ir.ConstInt(c.I32, 2)) // violates dominance
	bj.Ret(use)

	if err := ir.VerifyFunc(f); err == nil {
		t.Fatal("expected dominance violation before repair")
	}
	if n := RepairSSA(f); n != 1 {
		t.Errorf("repaired %d values, want 1", n)
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("verify after repair: %v\n%s", err, ir.FuncString(f))
	}
	// Behaviour on the defined path (cond=true) is preserved.
	mach := interp.NewMachine(m)
	out, err := mach.Call(f, interp.IntVal(c.I32, 20), interp.IntVal(c.I1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if out.I != 42 {
		t.Errorf("f(20,true) = %d, want 42", out.I)
	}
}

// TestDemotePhiDef reproduces HyFM bug #1 from Section III-E: the
// demoted definition is a phi followed by other phis. The store must be
// placed after the whole phi run (the first legal point), not at the
// end of the block where same-block loads would read a stale slot.
func TestDemotePhiDef(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i32 [1, %a], [2, %b]
  %q = phi i32 [3, %a], [4, %b]
  %u = add i32 %p, %q
  ret i32 %u
}`
	m := mustParse(t, src)
	f := m.Func("f")
	var phi *ir.Instr
	f.Instructions(func(in *ir.Instr) {
		if in.Op == ir.OpPhi && in.Name() == "p" {
			phi = in
		}
	})
	DemoteValue(f, phi, nil)
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("verify: %v\n%s", err, ir.FuncString(f))
	}
	// The store must sit after the last phi and before the load feeding
	// the use.
	join := f.Blocks[len(f.Blocks)-1]
	storeIdx, loadIdx := -1, -1
	for i, in := range join.Instrs {
		if in.Op == ir.OpStore {
			storeIdx = i
		}
		if in.Op == ir.OpLoad && loadIdx < 0 {
			loadIdx = i
		}
	}
	if storeIdx < 0 || loadIdx < 0 || storeIdx > loadIdx {
		t.Fatalf("store@%d load@%d: wrong placement\n%s", storeIdx, loadIdx, ir.FuncString(f))
	}
	if storeIdx < join.FirstNonPhi() {
		t.Fatal("store placed inside the phi run")
	}
	// Semantics: f(1)=4, f(-1)=6.
	if got := run(t, m, "f", 1); got != 4 {
		t.Errorf("f(1) = %d, want 4", got)
	}
	if got := run(t, m, "f", -1); got != 6 {
		t.Errorf("f(-1) = %d, want 6", got)
	}
}

// TestBuggyPhiDemotionMiscompiles demonstrates *why* Section III-E's
// first fix matters: emulating HyFM's original behaviour — storing the
// demoted phi at the END of its block while same-block uses already
// load from the slot — yields code that is structurally valid but
// computes the wrong value (the loads see a stale slot). This is the
// undefined behaviour the paper traced broken binaries to.
func TestBuggyPhiDemotionMiscompiles(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i32 [1, %a], [2, %b]
  %u = add i32 %p, 100
  ret i32 %u
}`
	m := mustParse(t, src)
	f := m.Func("f")
	c := m.Ctx
	var phi, use *ir.Instr
	f.Instructions(func(in *ir.Instr) {
		if in.Op == ir.OpPhi {
			phi = in
		}
		if in.Op == ir.OpAdd {
			use = in
		}
	})
	// Emulate the bug by hand: slot alloca; store placed at the end of
	// the block (before ret) instead of right after the phi run; load
	// inserted before the use.
	slot := &ir.Instr{Op: ir.OpAlloca, Ty: c.Pointer(c.I32), AllocTy: c.I32, Nam: "slot"}
	f.Entry().InsertAt(0, slot)
	join := phi.Parent
	ld := &ir.Instr{Op: ir.OpLoad, Ty: c.I32, Nam: "reload", Operands: []ir.Value{slot}}
	join.InsertAt(join.IndexOf(use), ld)
	use.ReplaceUsesOfWith(phi, ld)
	st := &ir.Instr{Op: ir.OpStore, Ty: c.Void, Operands: []ir.Value{phi, slot}}
	join.InsertAt(join.IndexOf(join.Term()), st) // BUG: after the load

	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("the buggy form is structurally valid SSA, but got: %v", err)
	}
	// f(5) should be 101; the buggy code loads the uninitialized slot
	// (0) and returns 100.
	if got := run(t, m, "f", 5); got == 101 {
		t.Fatal("expected the emulated bug to miscompile; it did not")
	} else if got != 100 {
		t.Logf("buggy result f(5) = %d (stale slot)", got)
	}

	// The correct placement (DemoteValue) gives the right answer.
	m2 := mustParse(t, src)
	f2 := m2.Func("f")
	var phi2 *ir.Instr
	f2.Instructions(func(in *ir.Instr) {
		if in.Op == ir.OpPhi {
			phi2 = in
		}
	})
	DemoteValue(f2, phi2, nil)
	if got := run(t, m2, "f", 5); got != 101 {
		t.Errorf("fixed placement: f(5) = %d, want 101", got)
	}
}

// TestDemoteInvokeFeedingPhi reproduces HyFM bug #2 from Section III-E:
// the definition is an invoke whose use is a phi in the successor
// block. There is no legal store/load placement, and none is needed —
// the demotion must leave that edge untouched.
func TestDemoteInvokeFeedingPhi(t *testing.T) {
	src := `
define i32 @callee(i32 %x) {
entry:
  ret i32 %x
}
define i32 @f(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %try, label %other
try:
  %r = invoke i32 @callee(i32 %x) to label %join unwind label %bad
other:
  br label %join
join:
  %p = phi i32 [%r, %try], [0, %other]
  ret i32 %p
bad:
  ret i32 -1
}`
	m := mustParse(t, src)
	f := m.Func("f")
	var inv *ir.Instr
	f.Instructions(func(in *ir.Instr) {
		if in.Op == ir.OpInvoke {
			inv = in
		}
	})
	DemoteValue(f, inv, nil)
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("verify: %v\n%s", err, ir.FuncString(f))
	}
	// The phi must still reference the invoke directly on that edge.
	var phi *ir.Instr
	f.Instructions(func(in *ir.Instr) {
		if in.Op == ir.OpPhi {
			phi = in
		}
	})
	foundDirect := false
	for _, op := range phi.Operands {
		if op == ir.Value(inv) {
			foundDirect = true
		}
	}
	if !foundDirect {
		t.Fatalf("phi no longer uses the invoke directly:\n%s", ir.FuncString(f))
	}
	if got := run(t, m, "f", 5); got != 5 {
		t.Errorf("f(5) = %d, want 5", got)
	}
	if got := run(t, m, "f", -5); got != 0 {
		t.Errorf("f(-5) = %d, want 0", got)
	}
}

func TestDCE(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  %dead1 = add i32 %x, 1
  %dead2 = mul i32 %dead1, 2
  %slot = alloca i32
  store i32 %x, i32* %slot
  %live = sub i32 %x, 3
  ret i32 %live
}`
	m := mustParse(t, src)
	f := m.Func("f")
	if n := DCE(f); n != 4 {
		t.Errorf("removed %d, want 4 (2 dead values, dead slot, its store)", n)
	}
	if f.NumInstrs() != 2 {
		t.Errorf("instrs = %d, want 2\n%s", f.NumInstrs(), ir.FuncString(f))
	}
	if got := run(t, m, "f", 10); got != 7 {
		t.Errorf("f(10) = %d", got)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	src := `
global @g i32 = 0
define void @callee() {
entry:
  store i32 1, i32* @g
  ret void
}
define i32 @f(i32 %x) {
entry:
  %unused = call i32 @pure(i32 %x)
  call void @callee()
  ret i32 %x
}
define i32 @pure(i32 %x) {
entry:
  ret i32 %x
}`
	m := mustParse(t, src)
	f := m.Func("f")
	DCE(f)
	// Calls must survive (they may have side effects).
	calls := 0
	f.Instructions(func(in *ir.Instr) {
		if in.Op == ir.OpCall {
			calls++
		}
	})
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
}

func TestSimplifyCFG(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  br label %mid
mid:
  br label %tail
tail:
  %c = icmp eq i32 %x, 0
  br i1 %c, label %same, label %same
same:
  ret i32 %x
dead:
  br label %dead2
dead2:
  br label %dead
}`
	m := mustParse(t, src)
	f := m.Func("f")
	if n := SimplifyCFG(f); n == 0 {
		t.Fatal("SimplifyCFG did nothing")
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("verify: %v\n%s", err, ir.FuncString(f))
	}
	if len(f.Blocks) != 1 {
		t.Errorf("blocks = %d, want 1\n%s", len(f.Blocks), ir.FuncString(f))
	}
	if got := run(t, m, "f", 3); got != 3 {
		t.Errorf("f(3) = %d", got)
	}
}

func TestSimplifyCFGKeepsPhiCorrectness(t *testing.T) {
	checkSameBehaviour(t, diamondSrc, "f", func(f *ir.Function) {
		SimplifyCFG(f)
	})
}

// TestFullPipelineRandomized: RegToMem then Mem2Reg then cleanups on a
// randomized CFG must preserve semantics. The CFGs are generated from a
// seeded template family.
func TestFullPipelineRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		// Random chain of diamonds over an accumulator.
		var sb strings.Builder
		sb.WriteString("define i32 @f(i32 %x) {\nentry:\n  br label %b0h\n")
		depth := 1 + rng.Intn(4)
		prev := "%x"
		for d := 0; d < depth; d++ {
			k1, k2 := rng.Intn(20)-10, rng.Intn(20)-10
			ph := "b" + itoa(d)
			nxt := "%v" + itoa(d)
			sb.WriteString(ph + "h:\n")
			sb.WriteString("  %c" + itoa(d) + " = icmp sgt i32 " + prev + ", " + itoa(rng.Intn(10)) + "\n")
			sb.WriteString("  br i1 %c" + itoa(d) + ", label %" + ph + "a, label %" + ph + "b\n")
			sb.WriteString(ph + "a:\n  %l" + itoa(d) + " = add i32 " + prev + ", " + itoa(k1) + "\n  br label %" + ph + "j\n")
			sb.WriteString(ph + "b:\n  %r" + itoa(d) + " = mul i32 " + prev + ", " + itoa(k2) + "\n  br label %" + ph + "j\n")
			sb.WriteString(ph + "j:\n  " + nxt + " = phi i32 [%l" + itoa(d) + ", %" + ph + "a], [%r" + itoa(d) + ", %" + ph + "b]\n")
			if d+1 < depth {
				sb.WriteString("  br label %b" + itoa(d+1) + "h\n")
			} else {
				sb.WriteString("  ret i32 " + nxt + "\n")
			}
			prev = nxt
		}
		sb.WriteString("}\n")
		src := sb.String()
		checkSameBehaviour(t, src, "f", func(f *ir.Function) {
			RegToMem(f)
			Mem2Reg(f)
			SimplifyCFG(f)
			DCE(f)
		})
	}
}

func itoa(n int) string {
	if n < 0 {
		return "-" + itoa(-n)
	}
	if n < 10 {
		return string(rune('0' + n))
	}
	return itoa(n/10) + string(rune('0'+n%10))
}
