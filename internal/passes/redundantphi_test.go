package passes

import (
	"strings"
	"testing"

	"f3m/internal/ir"
)

func TestElimRedundantPhisSameValue(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i32 [%x, %a], [%x, %b]
  %r = add i32 %p, 1
  ret i32 %r
}`
	m := mustParse(t, src)
	f := m.Func("f")
	if n := ElimRedundantPhis(f); n != 1 {
		t.Errorf("removed %d phis, want 1", n)
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("invalid after elimination: %v\n%s", err, ir.FuncString(f))
	}
	out := ir.FuncString(f)
	if strings.Contains(out, "phi") {
		t.Errorf("redundant phi survived:\n%s", out)
	}
	if !strings.Contains(out, "add i32 %x, 1") {
		t.Errorf("use not rewritten to the unique incoming:\n%s", out)
	}
}

func TestElimRedundantPhisChain(t *testing.T) {
	// %q is trivial only after %p folds: elimination must iterate to a
	// fixed point.
	src := `
define i32 @f(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  br label %mid
b:
  br label %mid
mid:
  %p = phi i32 [%x, %a], [%x, %b]
  %d = icmp slt i32 %x, 10
  br i1 %d, label %m2, label %m3
m2:
  br label %join
m3:
  br label %join
join:
  %q = phi i32 [%p, %m2], [%x, %m3]
  ret i32 %q
}`
	m := mustParse(t, src)
	f := m.Func("f")
	if n := ElimRedundantPhis(f); n != 2 {
		t.Errorf("removed %d phis, want 2", n)
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("invalid after elimination: %v\n%s", err, ir.FuncString(f))
	}
	if strings.Contains(ir.FuncString(f), "phi") {
		t.Errorf("chained redundant phis survived:\n%s", ir.FuncString(f))
	}
}

func TestElimRedundantPhisKeepsRealPhis(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  %ai = add i32 %x, 1
  br label %join
b:
  %bi = add i32 %x, 2
  br label %join
join:
  %p = phi i32 [%ai, %a], [%bi, %b]
  ret i32 %p
}`
	m := mustParse(t, src)
	f := m.Func("f")
	if n := ElimRedundantPhis(f); n != 0 {
		t.Errorf("removed %d phis from a function with a genuine merge, want 0", n)
	}
	if !strings.Contains(ir.FuncString(f), "phi") {
		t.Error("genuine phi was eliminated")
	}
}

func TestElimRedundantPhisEqualConstants(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  %p = phi i32 [7, %a], [7, %b]
  %r = add i32 %p, %x
  ret i32 %r
}`
	m := mustParse(t, src)
	f := m.Func("f")
	if n := ElimRedundantPhis(f); n != 1 {
		t.Errorf("removed %d phis, want 1 (equal constants)", n)
	}
	if !strings.Contains(ir.FuncString(f), "add i32 7, %x") {
		t.Errorf("constant not propagated to the use:\n%s", ir.FuncString(f))
	}
}
