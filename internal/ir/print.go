package ir

import (
	"fmt"
	"io"
	"strings"
)

// WriteModule renders the module in the textual IR syntax understood by
// ParseModule.
func WriteModule(w io.Writer, m *Module) error {
	pw := &errWriter{w: w}
	fmt.Fprintf(pw, "module %q\n", m.Name)
	for _, g := range m.Globs {
		if g.Init != nil {
			fmt.Fprintf(pw, "global @%s %s = %s\n", g.Nam, g.Elem, g.Init.Ident())
		} else {
			fmt.Fprintf(pw, "global @%s %s\n", g.Nam, g.Elem)
		}
	}
	for _, f := range m.Funcs {
		pw.WriteByte('\n')
		writeFunc(pw, f)
	}
	return pw.err
}

// ModuleString renders the module to a string.
func ModuleString(m *Module) string {
	var b strings.Builder
	_ = WriteModule(&b, m)
	return b.String()
}

// FuncString renders one function to a string.
func FuncString(f *Function) string {
	var b strings.Builder
	pw := &errWriter{w: &b}
	writeFunc(pw, f)
	return b.String()
}

func writeFunc(w *errWriter, f *Function) {
	params := make([]string, len(f.Params))
	for i, p := range f.Params {
		params[i] = p.Ty.String() + " %" + p.Nam
	}
	if f.Sig.Variadic {
		params = append(params, "...")
	}
	head := fmt.Sprintf("%s @%s(%s)", f.ReturnType(), f.Nam, strings.Join(params, ", "))
	if f.IsDecl() {
		fmt.Fprintf(w, "declare %s\n", head)
		return
	}
	fmt.Fprintf(w, "define %s {\n", head)
	for _, b := range f.Blocks {
		fmt.Fprintf(w, "%s:\n", b.Nam)
		for _, in := range b.Instrs {
			fmt.Fprintf(w, "  %s\n", InstrString(in))
		}
	}
	fmt.Fprintln(w, "}")
}

// operand renders a typed operand reference.
func operand(v Value) string {
	if b, ok := v.(*Block); ok {
		return "label %" + b.Nam
	}
	return v.Type().String() + " " + v.Ident()
}

// InstrString renders a single instruction in the textual syntax.
func InstrString(in *Instr) string {
	var b strings.Builder
	if !in.Ty.IsVoid() && in.Op != OpStore {
		fmt.Fprintf(&b, "%%%s = ", in.Nam)
	}
	switch in.Op {
	case OpRet:
		if len(in.Operands) == 0 {
			b.WriteString("ret void")
		} else {
			fmt.Fprintf(&b, "ret %s", operand(in.Operands[0]))
		}
	case OpBr:
		fmt.Fprintf(&b, "br %s", operand(in.Operands[0]))
	case OpCondBr:
		fmt.Fprintf(&b, "br %s, %s, %s", operand(in.Operands[0]), operand(in.Operands[1]), operand(in.Operands[2]))
	case OpSwitch:
		fmt.Fprintf(&b, "switch %s, %s [", operand(in.Operands[0]), operand(in.Operands[1]))
		for i := 2; i < len(in.Operands); i += 2 {
			if i > 2 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s: %s", in.Operands[i].Ident(), operand(in.Operands[i+1]))
		}
		b.WriteString("]")
	case OpUnreachable:
		b.WriteString("unreachable")
	case OpAlloca:
		fmt.Fprintf(&b, "alloca %s", in.AllocTy)
	case OpLoad:
		fmt.Fprintf(&b, "load %s, %s", in.Ty, operand(in.Operands[0]))
	case OpStore:
		fmt.Fprintf(&b, "store %s, %s", operand(in.Operands[0]), operand(in.Operands[1]))
	case OpGEP:
		fmt.Fprintf(&b, "getelementptr %s", operand(in.Operands[0]))
		for _, idx := range in.Operands[1:] {
			fmt.Fprintf(&b, ", %s", operand(idx))
		}
	case OpICmp:
		fmt.Fprintf(&b, "icmp %s %s, %s", in.Predicate, operand(in.Operands[0]), in.Operands[1].Ident())
	case OpFCmp:
		fmt.Fprintf(&b, "fcmp %s %s, %s", in.Predicate, operand(in.Operands[0]), in.Operands[1].Ident())
	case OpSelect:
		fmt.Fprintf(&b, "select %s, %s, %s", operand(in.Operands[0]), operand(in.Operands[1]), operand(in.Operands[2]))
	case OpPhi:
		fmt.Fprintf(&b, "phi %s ", in.Ty)
		for i, v := range in.Operands {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "[%s, %%%s]", v.Ident(), in.IncomingBlocks[i].Nam)
		}
	case OpCall:
		fmt.Fprintf(&b, "call %s %s(", in.Ty, in.Operands[0].Ident())
		for i, a := range in.CallArgs() {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(operand(a))
		}
		b.WriteString(")")
	case OpInvoke:
		fmt.Fprintf(&b, "invoke %s %s(", in.Ty, in.Operands[0].Ident())
		for i, a := range in.CallArgs() {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(operand(a))
		}
		n := len(in.Operands)
		fmt.Fprintf(&b, ") to %s unwind %s", operand(in.Operands[n-2]), operand(in.Operands[n-1]))
	default:
		if in.Op.IsCast() {
			fmt.Fprintf(&b, "%s %s to %s", in.Op, operand(in.Operands[0]), in.Ty)
		} else if in.Op.IsBinary() {
			fmt.Fprintf(&b, "%s %s, %s", in.Op, operand(in.Operands[0]), in.Operands[1].Ident())
		} else {
			fmt.Fprintf(&b, "<%s?>", in.Op)
		}
	}
	return b.String()
}

// errWriter latches the first write error so formatting code can skip
// per-call checks.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

func (e *errWriter) WriteByte(c byte) error {
	_, err := e.Write([]byte{c})
	return err
}
