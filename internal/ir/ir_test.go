package ir

import (
	"strings"
	"testing"
)

// buildAbs builds: define i32 @abs(i32 %x) { |x| via condbr + phi }.
func buildAbs(t testing.TB) (*Module, *Function) {
	t.Helper()
	m := NewModule("test")
	c := m.Ctx
	f := m.NewFunc("abs", c.Func(c.I32, c.I32), "x")
	entry := f.NewBlock("entry")
	neg := f.NewBlock("neg")
	done := f.NewBlock("done")

	b := NewBuilder(entry)
	x := f.Params[0]
	cmp := b.ICmp(PredSLT, x, ConstInt(c.I32, 0))
	b.CondBr(cmp, neg, done)

	b.SetBlock(neg)
	negx := b.Sub(ConstInt(c.I32, 0), x)
	b.Br(done)

	b.SetBlock(done)
	phi := b.Phi(c.I32)
	phi.AddIncoming(x, entry)
	phi.AddIncoming(negx, neg)
	b.Ret(phi)

	if err := VerifyFunc(f); err != nil {
		t.Fatalf("verify: %v", err)
	}
	return m, f
}

func TestBuilderAndVerify(t *testing.T) {
	_, f := buildAbs(t)
	if got := f.NumInstrs(); got != 6 {
		t.Errorf("NumInstrs = %d, want 6", got)
	}
	if f.Entry().Nam != "entry" {
		t.Errorf("entry block = %q", f.Entry().Nam)
	}
}

func TestTypeInterning(t *testing.T) {
	c := NewTypeContext()
	if c.Int(32) != c.I32 {
		t.Error("i32 not interned")
	}
	p1 := c.Pointer(c.I32)
	p2 := c.Pointer(c.Int(32))
	if p1 != p2 {
		t.Error("i32* not interned")
	}
	s1 := c.Struct(c.I32, c.F64)
	s2 := c.Struct(c.I32, c.F64)
	if s1 != s2 {
		t.Error("struct not interned")
	}
	if s1 == c.Struct(c.F64, c.I32) {
		t.Error("field order ignored")
	}
	f1 := c.Func(c.Void, c.I32)
	f2 := c.VariadicFunc(c.Void, c.I32)
	if f1 == f2 {
		t.Error("variadic flag ignored")
	}
	// Array and struct with same content must differ from each other.
	if c.Array(2, c.I32) == c.Struct(c.I32, c.I32) {
		t.Error("array conflated with struct")
	}
}

func TestTypeString(t *testing.T) {
	c := NewTypeContext()
	cases := []struct {
		ty   *Type
		want string
	}{
		{c.Void, "void"},
		{c.I1, "i1"},
		{c.I64, "i64"},
		{c.F32, "float"},
		{c.F64, "double"},
		{c.Pointer(c.I8), "i8*"},
		{c.Array(4, c.I32), "[4 x i32]"},
		{c.Struct(c.I32, c.Pointer(c.I8)), "{i32, i8*}"},
		{c.Func(c.I32, c.I64), "i32(i64)"},
		{c.Pointer(c.Func(c.Void)), "void()*"},
	}
	for _, tc := range cases {
		if got := tc.ty.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestSizeOf(t *testing.T) {
	c := NewTypeContext()
	cases := []struct {
		ty   *Type
		want int
	}{
		{c.I1, 1},
		{c.I8, 1},
		{c.I32, 4},
		{c.I64, 8},
		{c.F32, 4},
		{c.F64, 8},
		{c.Pointer(c.I8), 8},
		{c.Array(3, c.I32), 12},
		{c.Struct(c.I32, c.F64), 12},
	}
	for _, tc := range cases {
		if got := SizeOf(tc.ty); got != tc.want {
			t.Errorf("SizeOf(%s) = %d, want %d", tc.ty, got, tc.want)
		}
	}
}

func TestConstTruncation(t *testing.T) {
	c := NewTypeContext()
	if v := ConstInt(c.I8, 200).IntVal; v != -56 {
		t.Errorf("i8 200 = %d, want -56", v)
	}
	if v := ConstInt(c.I8, -1).IntVal; v != -1 {
		t.Errorf("i8 -1 = %d, want -1", v)
	}
	if v := ConstInt(c.I1, 3).IntVal; v != -1 {
		t.Errorf("i1 3 = %d, want -1 (two's complement)", v)
	}
	if !ConstEqual(ConstInt(c.I8, 200), ConstInt(c.I8, -56)) {
		t.Error("truncated constants should compare equal")
	}
	if ConstEqual(ConstInt(c.I8, 1), ConstInt(c.I16, 1)) {
		t.Error("constants of different types compare equal")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	m, _ := buildAbs(t)
	text := ModuleString(m)
	m2, err := ParseModule(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if err := VerifyModule(m2); err != nil {
		t.Fatalf("verify reparsed: %v", err)
	}
	text2 := ModuleString(m2)
	if text != text2 {
		t.Errorf("round trip not stable:\n--- first\n%s\n--- second\n%s", text, text2)
	}
}

const fixtureIR = `
module "fixture"
global @counter i64 = 0
global @table [4 x i32]

declare i32 @ext(i32, ...)

define i32 @sum(i32* %p, i32 %n) {
entry:
  %cmp0 = icmp sgt i32 %n, 0
  br i1 %cmp0, label %loop, label %exit
loop:
  %i = phi i32 [0, %entry], [%inext, %loop]
  %acc = phi i32 [0, %entry], [%accnext, %loop]
  %i64v = sext i32 %i to i64
  %addr = getelementptr i32* %p, i64 %i64v
  %v = load i32, i32* %addr
  %accnext = add i32 %acc, %v
  %inext = add i32 %i, 1
  %more = icmp slt i32 %inext, %n
  br i1 %more, label %loop, label %exit
exit:
  %res = phi i32 [0, %entry], [%accnext, %loop]
  ret i32 %res
}

define void @bump() {
entry:
  %c = load i64, i64* @counter
  %c2 = add i64 %c, 1
  store i64 %c2, i64* @counter
  ret void
}
`

func TestParseFixture(t *testing.T) {
	m, err := ParseModule(fixtureIR)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	sum := m.Func("sum")
	if sum == nil {
		t.Fatal("missing @sum")
	}
	if len(sum.Blocks) != 3 {
		t.Fatalf("sum has %d blocks, want 3", len(sum.Blocks))
	}
	if got := []string{sum.Blocks[0].Nam, sum.Blocks[1].Nam, sum.Blocks[2].Nam}; got[0] != "entry" || got[1] != "loop" || got[2] != "exit" {
		t.Errorf("block order = %v", got)
	}
	ext := m.Func("ext")
	if ext == nil || !ext.IsDecl() || !ext.Sig.Variadic {
		t.Error("@ext should be a variadic declaration")
	}
	// Round-trip the fixture too.
	text := ModuleString(m)
	if _, err := ParseModule(text); err != nil {
		t.Fatalf("round trip: %v\n%s", err, text)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`define i32 @f() { entry: ret i32 %undefined }`,
		`define i32 @f() { entry: %x = add i32 1, }`,
		`define i32 @f( { }`,
		`global i32`,
		`define i32 @f() { entry: %x = call i32 @nosuch() ret i32 %x }`,
	}
	for _, src := range cases {
		if _, err := ParseModule(src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestVerifyCatchesBrokenIR(t *testing.T) {
	m := NewModule("bad")
	c := m.Ctx
	f := m.NewFunc("f", c.Func(c.I32, c.I32))
	entry := f.NewBlock("entry")
	other := f.NewBlock("other")

	// Use-before-def across blocks violating dominance: value defined in
	// 'other' (not dominating entry) used in entry.
	bad := &Instr{Op: OpAdd, Ty: c.I32, Nam: "bad", Operands: []Value{f.Params[0], f.Params[0]}}
	other.Append(bad)
	bo := NewBuilder(other)
	bo.Ret(bad)

	be := NewBuilder(entry)
	use := be.Add(bad, f.Params[0])
	be.Ret(use)

	err := VerifyFunc(f)
	if err == nil {
		t.Fatal("verifier accepted dominance violation")
	}
	if !strings.Contains(err.Error(), "dominance") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestVerifyPhiEdges(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  br label %exit
exit:
  %r = phi i32 [1, %entry], [2, %nopred]
  ret i32 %r
nopred:
  br label %exit
}`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	// nopred IS a predecessor here; remove its branch to make the edge bogus.
	f := m.Func("f")
	var nopred *Block
	for _, b := range f.Blocks {
		if b.Nam == "nopred" {
			nopred = b
		}
	}
	nopred.Instrs = nil
	nb := NewBuilder(nopred)
	nb.Ret(ConstInt(m.Ctx.I32, 0))
	if err := VerifyFunc(f); err == nil {
		t.Fatal("verifier accepted phi edge from non-predecessor")
	}
}

func TestDomTree(t *testing.T) {
	src := `
define void @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %join
b:
  br label %join
join:
  ret void
}`
	m := MustParseModule(src)
	f := m.Func("f")
	dt := NewDomTree(f)
	byName := map[string]*Block{}
	for _, b := range f.Blocks {
		byName[b.Nam] = b
	}
	if !dt.Dominates(byName["entry"], byName["join"]) {
		t.Error("entry should dominate join")
	}
	if dt.Dominates(byName["a"], byName["join"]) {
		t.Error("a should not dominate join")
	}
	if !dt.Dominates(byName["a"], byName["a"]) {
		t.Error("dominance should be reflexive")
	}
	if dt.IDom(byName["join"]) != byName["entry"] {
		t.Errorf("idom(join) = %v, want entry", dt.IDom(byName["join"]))
	}
	if dt.IDom(byName["entry"]) != nil {
		t.Error("entry should have no idom")
	}
}

func TestDomTreeUnreachable(t *testing.T) {
	src := `
define void @f() {
entry:
  ret void
dead:
  br label %dead
}`
	m := MustParseModule(src)
	f := m.Func("f")
	dt := NewDomTree(f)
	var dead *Block
	for _, b := range f.Blocks {
		if b.Nam == "dead" {
			dead = b
		}
	}
	if dt.Reachable(dead) {
		t.Error("dead block should be unreachable")
	}
	if dt.Dominates(f.Entry(), dead) {
		t.Error("Dominates must be false for unreachable blocks")
	}
}

func TestCloneFunc(t *testing.T) {
	m, f := buildAbs(t)
	clone := CloneFunc(m, f, "abs.clone")
	if err := VerifyFunc(clone); err != nil {
		t.Fatalf("clone verify: %v", err)
	}
	// Same shape...
	if clone.NumInstrs() != f.NumInstrs() || len(clone.Blocks) != len(f.Blocks) {
		t.Fatal("clone shape differs")
	}
	// ...but fully distinct storage.
	for i := range f.Blocks {
		if f.Blocks[i] == clone.Blocks[i] {
			t.Fatal("clone shares blocks with original")
		}
		for j := range f.Blocks[i].Instrs {
			if f.Blocks[i].Instrs[j] == clone.Blocks[i].Instrs[j] {
				t.Fatal("clone shares instructions with original")
			}
		}
	}
	// Operand remapping: no clone instruction refers to an original one.
	origSet := make(map[Value]bool)
	f.Instructions(func(in *Instr) { origSet[in] = true })
	for _, p := range f.Params {
		origSet[p] = true
	}
	clone.Instructions(func(in *Instr) {
		for _, op := range in.Operands {
			if origSet[op] {
				t.Fatalf("clone instruction %s refers to original value %s", InstrString(in), op.Ident())
			}
		}
	})
	// Textual equality modulo the name line.
	a := strings.Replace(FuncString(f), "@abs", "@X", 1)
	b := strings.Replace(FuncString(clone), "@abs.clone", "@X", 1)
	if a != b {
		t.Errorf("clone body differs:\n%s\nvs\n%s", a, b)
	}
}

func TestReplaceAllCalls(t *testing.T) {
	src := `
define i32 @callee(i32 %x) {
entry:
  ret i32 %x
}
define i32 @caller(i32 %x) {
entry:
  %a = call i32 @callee(i32 %x)
  %b = call i32 @callee(i32 %a)
  ret i32 %b
}`
	m := MustParseModule(src)
	callee := m.Func("callee")
	caller := m.Func("caller")
	n := m.ReplaceAllCalls(callee, func(in *Instr) {
		in.Operands[0] = caller
	})
	if n != 2 {
		t.Fatalf("rewrote %d call sites, want 2", n)
	}
}

func TestSuccessorsAndPreds(t *testing.T) {
	m, f := buildAbs(t)
	_ = m
	entry := f.Blocks[0]
	succs := entry.Succs()
	if len(succs) != 2 {
		t.Fatalf("entry successors = %d, want 2", len(succs))
	}
	preds := f.Preds()
	done := f.Blocks[2]
	if len(preds[done]) != 2 {
		t.Fatalf("done predecessors = %d, want 2", len(preds[done]))
	}
}

func TestSwitchRoundTrip(t *testing.T) {
	src := `
define i32 @f(i32 %x) {
entry:
  switch i32 %x, label %def [0: label %zero, 5: label %five]
zero:
  ret i32 100
five:
  ret i32 500
def:
  ret i32 -1
}`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	f := m.Func("f")
	term := f.Entry().Term()
	if term.Op != OpSwitch {
		t.Fatalf("terminator = %s", term.Op)
	}
	if got := len(term.Successors()); got != 3 {
		t.Fatalf("switch successors = %d, want 3", got)
	}
	if _, err := ParseModule(ModuleString(m)); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestInvokeRoundTrip(t *testing.T) {
	src := `
declare i32 @mayThrow(i32)

define i32 @f(i32 %x) {
entry:
  %r = invoke i32 @mayThrow(i32 %x) to label %ok unwind label %bad
ok:
  ret i32 %r
bad:
  ret i32 -1
}`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	f := m.Func("f")
	inv := f.Entry().Term()
	if inv.Op != OpInvoke {
		t.Fatalf("terminator = %s", inv.Op)
	}
	if len(inv.CallArgs()) != 1 {
		t.Fatalf("invoke args = %d, want 1", len(inv.CallArgs()))
	}
	succs := inv.Successors()
	if len(succs) != 2 || succs[0].Nam != "ok" || succs[1].Nam != "bad" {
		t.Fatalf("invoke successors = %v", succs)
	}
	if _, err := ParseModule(ModuleString(m)); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestUniqueFuncName(t *testing.T) {
	m := NewModule("t")
	c := m.Ctx
	m.NewFunc("f", c.Func(c.Void))
	if got := m.UniqueFuncName("g"); got != "g" {
		t.Errorf("fresh name = %q", got)
	}
	if got := m.UniqueFuncName("f"); got != "f.1" {
		t.Errorf("collision name = %q", got)
	}
	m.NewFunc("f.1", c.Func(c.Void))
	if got := m.UniqueFuncName("f"); got != "f.2" {
		t.Errorf("second collision name = %q", got)
	}
}

func TestLinkedModuleMergesEndToEnd(t *testing.T) {
	// Linking two units that each define near-identical handlers must
	// produce a module in which those handlers are mergeable — the
	// paper's whole-program setup in miniature.
	unitA := MustParseModule(`
define i32 @handler_a(i32 %x) {
entry:
  %a = add i32 %x, 7
  %b = mul i32 %a, 3
  ret i32 %b
}`)
	unitB := MustParseModule(`
define i32 @handler_b(i32 %x) {
entry:
  %a = add i32 %x, 9
  %b = mul i32 %a, 5
  ret i32 %b
}`)
	linked, err := LinkModules("prog", unitA, unitB)
	if err != nil {
		t.Fatal(err)
	}
	if len(linked.Funcs) != 2 {
		t.Fatalf("linked %d functions, want 2", len(linked.Funcs))
	}
	if err := VerifyModule(linked); err != nil {
		t.Fatal(err)
	}
}

func TestLinearize(t *testing.T) {
	_, f := buildAbs(t)
	seq := f.Linearize()
	if len(seq) != f.NumInstrs() {
		t.Fatalf("linearize length %d, want %d", len(seq), f.NumInstrs())
	}
	// Order must follow blocks.
	if seq[0].Op != OpICmp || seq[len(seq)-1].Op != OpRet {
		t.Errorf("unexpected linearization: first=%s last=%s", seq[0].Op, seq[len(seq)-1].Op)
	}
}
