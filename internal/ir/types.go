// Package ir implements a typed SSA intermediate representation modelled
// after LLVM IR, providing exactly the surface that function merging
// inspects: instruction opcodes, result and operand types, control-flow
// structure, and SSA use-def relations.
//
// A Module owns functions and globals. Types are interned in a
// TypeContext so that identical types are pointer-identical, mirroring
// LLVM's uniqued types; the F3M instruction encoding relies on this to
// assign a stable small integer to every distinct type.
package ir

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// TypeKind discriminates the structural kind of a Type.
type TypeKind uint8

// Type kinds.
const (
	VoidKind TypeKind = iota
	IntKind
	FloatKind
	PointerKind
	ArrayKind
	StructKind
	FuncKind
	LabelKind
)

// Type is an interned IR type. Two types in the same TypeContext are
// structurally equal if and only if they are pointer-identical.
type Type struct {
	Kind TypeKind

	// Bits is the width of an integer type (1, 8, 16, 32, 64) or of a
	// floating-point type (32 or 64).
	Bits int

	// Elem is the element type of a pointer or array type, and the
	// return type of a function type.
	Elem *Type

	// Len is the element count of an array type.
	Len int

	// Fields are the field types of a struct type, or the parameter
	// types of a function type.
	Fields []*Type

	// Variadic marks a variadic function type.
	Variadic bool

	// id is a dense identifier unique within the owning TypeContext,
	// assigned in interning order. It feeds the instruction encoding.
	id int

	// ptrTo caches the interned pointer-to-this type, guarded by the
	// owning context's mutex. Pointer lookups are the hottest interning
	// path (every EncodeInstr of a call operand, every phi demotion);
	// the cache turns them into a single pointer read under the lock.
	ptrTo *Type
}

// ID returns the dense per-context identifier of the type.
func (t *Type) ID() int { return t.id }

// IsInt reports whether t is an integer type.
func (t *Type) IsInt() bool { return t.Kind == IntKind }

// IsFloat reports whether t is a floating-point type.
func (t *Type) IsFloat() bool { return t.Kind == FloatKind }

// IsPointer reports whether t is a pointer type.
func (t *Type) IsPointer() bool { return t.Kind == PointerKind }

// IsVoid reports whether t is the void type.
func (t *Type) IsVoid() bool { return t.Kind == VoidKind }

// IsAggregate reports whether t is an array or struct type.
func (t *Type) IsAggregate() bool { return t.Kind == ArrayKind || t.Kind == StructKind }

// IsFirstClass reports whether values of type t can be produced by
// instructions and passed as operands.
func (t *Type) IsFirstClass() bool {
	return t.Kind != VoidKind && t.Kind != FuncKind && t.Kind != LabelKind
}

// String renders the type in the textual IR syntax.
func (t *Type) String() string {
	switch t.Kind {
	case VoidKind:
		return "void"
	case IntKind:
		return fmt.Sprintf("i%d", t.Bits)
	case FloatKind:
		if t.Bits == 32 {
			return "float"
		}
		return "double"
	case PointerKind:
		return t.Elem.String() + "*"
	case ArrayKind:
		return fmt.Sprintf("[%d x %s]", t.Len, t.Elem)
	case StructKind:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case FuncKind:
		parts := make([]string, len(t.Fields))
		for i, f := range t.Fields {
			parts[i] = f.String()
		}
		if t.Variadic {
			parts = append(parts, "...")
		}
		return t.Elem.String() + "(" + strings.Join(parts, ", ") + ")"
	case LabelKind:
		return "label"
	}
	return "<badtype>"
}

// TypeContext interns types. All types used in one Module must come from
// the Module's context; mixing contexts breaks pointer-equality checks.
//
// Interning is guarded by a mutex, so looking up (or creating) types is
// safe from concurrent goroutines — the speculative merge stage clones
// and encodes functions while the committer generates code against the
// same context. Note that thread-safety is not the same as ID
// determinism: dense type IDs are assigned in interning order, so any
// code that must keep IDs schedule-independent (the pipeline) has to
// ensure concurrent readers only ever re-intern types that already
// exist (see core's type pre-warm).
type TypeContext struct {
	mu    sync.Mutex
	byKey map[string]*Type
	next  int

	// Pre-interned common types.
	Void  *Type
	I1    *Type
	I8    *Type
	I16   *Type
	I32   *Type
	I64   *Type
	F32   *Type
	F64   *Type
	Label *Type
}

// NewTypeContext returns a context with the common primitive types
// pre-interned.
func NewTypeContext() *TypeContext {
	c := &TypeContext{byKey: make(map[string]*Type)}
	c.Void = c.intern(&Type{Kind: VoidKind})
	c.I1 = c.Int(1)
	c.I8 = c.Int(8)
	c.I16 = c.Int(16)
	c.I32 = c.Int(32)
	c.I64 = c.Int(64)
	c.F32 = c.intern(&Type{Kind: FloatKind, Bits: 32})
	c.F64 = c.intern(&Type{Kind: FloatKind, Bits: 64})
	c.Label = c.intern(&Type{Kind: LabelKind})
	return c
}

func (c *TypeContext) intern(t *Type) *Type {
	// typeKey reads only immutable fields of already-interned element
	// types, so it can run outside the lock.
	key := typeKey(t)
	c.mu.Lock()
	defer c.mu.Unlock()
	if got, ok := c.byKey[key]; ok {
		return got
	}
	t.id = c.next
	c.next++
	c.byKey[key] = t
	return t
}

// typeKey builds a structural hash key. Element types are already
// interned so their ids identify them. Built with strconv appends into
// a stack buffer — interning runs on the merge hot path (each merged
// signature, each demotion's pointer type) and must not pay fmt.
func typeKey(t *Type) string {
	var stack [64]byte
	b := stack[:0]
	b = strconv.AppendInt(b, int64(t.Kind), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(t.Bits), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(t.Len), 10)
	if t.Elem != nil {
		b = append(b, ':', 'e')
		b = strconv.AppendInt(b, int64(t.Elem.id), 10)
	}
	for _, f := range t.Fields {
		b = append(b, ':', 'f')
		b = strconv.AppendInt(b, int64(f.id), 10)
	}
	if t.Variadic {
		b = append(b, ':', 'v')
	}
	return string(b)
}

// NumTypes returns how many distinct types have been interned.
func (c *TypeContext) NumTypes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.next
}

// Int returns the integer type of the given bit width.
func (c *TypeContext) Int(bits int) *Type {
	return c.intern(&Type{Kind: IntKind, Bits: bits})
}

// Float returns the floating-point type of the given width (32 or 64).
func (c *TypeContext) Float(bits int) *Type {
	if bits != 32 && bits != 64 {
		panic(fmt.Sprintf("ir: invalid float width %d", bits))
	}
	return c.intern(&Type{Kind: FloatKind, Bits: bits})
}

// Pointer returns the pointer type to elem. The first lookup per
// element interns and caches; later lookups are a pointer read, with
// no probe allocation and no key construction.
func (c *TypeContext) Pointer(elem *Type) *Type {
	c.mu.Lock()
	if p := elem.ptrTo; p != nil {
		c.mu.Unlock()
		return p
	}
	c.mu.Unlock()
	p := c.intern(&Type{Kind: PointerKind, Elem: elem})
	c.mu.Lock()
	elem.ptrTo = p
	c.mu.Unlock()
	return p
}

// Array returns the array type [n x elem].
func (c *TypeContext) Array(n int, elem *Type) *Type {
	return c.intern(&Type{Kind: ArrayKind, Len: n, Elem: elem})
}

// Struct returns the struct type with the given field types.
func (c *TypeContext) Struct(fields ...*Type) *Type {
	return c.intern(&Type{Kind: StructKind, Fields: append([]*Type(nil), fields...)})
}

// Func returns the function type ret(params...).
func (c *TypeContext) Func(ret *Type, params ...*Type) *Type {
	return c.intern(&Type{Kind: FuncKind, Elem: ret, Fields: append([]*Type(nil), params...)})
}

// VariadicFunc returns the variadic function type ret(params..., ...).
func (c *TypeContext) VariadicFunc(ret *Type, params ...*Type) *Type {
	return c.intern(&Type{Kind: FuncKind, Elem: ret, Fields: append([]*Type(nil), params...), Variadic: true})
}

// SizeOf returns the size model of a type in abstract bytes. It is the
// unit used by the code-size and profitability models; pointers count as
// 8 bytes, matching a 64-bit target.
func SizeOf(t *Type) int {
	switch t.Kind {
	case VoidKind, LabelKind, FuncKind:
		return 0
	case IntKind:
		if t.Bits <= 8 {
			return 1
		}
		return t.Bits / 8
	case FloatKind:
		return t.Bits / 8
	case PointerKind:
		return 8
	case ArrayKind:
		return t.Len * SizeOf(t.Elem)
	case StructKind:
		n := 0
		for _, f := range t.Fields {
			n += SizeOf(f)
		}
		return n
	}
	return 0
}
