package ir

import "fmt"

// LinkModules combines translation units into one module, the setup the
// paper's evaluation uses ("we compiled and linked all their source
// files to a monolithic LLVM bitcode file", Section IV-A). Symbol
// resolution follows the usual linker rules:
//
//   - a definition satisfies any number of declarations of the same
//     signature;
//   - duplicate definitions of one function are an error;
//   - globals unify by name and type, keeping the initializer (two
//     different initializers conflict).
//
// Inputs are not modified. Modules whose TypeContext differs from the
// first input's are renormalized through the textual form so the
// result has one coherent context.
func LinkModules(name string, mods ...*Module) (*Module, error) {
	if len(mods) == 0 {
		return nil, fmt.Errorf("ir: link: no input modules")
	}
	ctx := mods[0].Ctx
	var inputs []*Module
	for _, m := range mods {
		if m.Ctx == ctx {
			inputs = append(inputs, m)
			continue
		}
		re, err := reparseInto(ctx, m)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, re)
	}

	out := &Module{
		Name:       name,
		Ctx:        ctx,
		funcByName: make(map[string]*Function),
		globByName: make(map[string]*GlobalVar),
	}

	// Globals: unify by name.
	for _, m := range inputs {
		for _, g := range m.Globs {
			prev := out.Global(g.Nam)
			if prev == nil {
				out.NewGlobal(g.Nam, g.Elem, g.Init)
				continue
			}
			if prev.Elem != g.Elem {
				return nil, fmt.Errorf("ir: link: global @%s has conflicting types %s and %s", g.Nam, prev.Elem, g.Elem)
			}
			if g.Init != nil {
				if prev.Init != nil && !ConstEqual(prev.Init, g.Init) {
					return nil, fmt.Errorf("ir: link: global @%s multiply initialized", g.Nam)
				}
				prev.Init = g.Init
			}
		}
	}

	// Function headers: declarations merge into definitions.
	defined := make(map[string]bool)
	var bodies []*Function
	for _, m := range inputs {
		for _, f := range m.Funcs {
			prev := out.Func(f.Nam)
			if prev == nil {
				nf := out.NewFunc(f.Nam, f.Sig)
				for i, p := range f.Params {
					nf.Params[i].Nam = p.Nam
				}
			} else if prev.Sig != f.Sig {
				return nil, fmt.Errorf("ir: link: function @%s has conflicting signatures %s and %s", f.Nam, prev.Sig, f.Sig)
			}
			if f.IsDecl() {
				continue
			}
			if defined[f.Nam] {
				return nil, fmt.Errorf("ir: link: function @%s multiply defined", f.Nam)
			}
			defined[f.Nam] = true
			bodies = append(bodies, f)
		}
	}

	// Copy bodies, remapping references into the output module, and
	// verify each linked body so a failure names the function that was
	// being linked rather than just the output module.
	for _, src := range bodies {
		dst := out.Func(src.Nam)
		cloneBodyInto(out, dst, src)
		if err := VerifyFunc(dst); err != nil {
			return nil, fmt.Errorf("ir: link: function @%s: %w", src.Nam, err)
		}
	}
	// Module-level rules (duplicate symbols, dangling references) span
	// functions, so they are checked once over the finished module.
	if err := VerifyModule(out); err != nil {
		return nil, fmt.Errorf("ir: link: %w", err)
	}
	return out, nil
}

// reparseInto round-trips a module through its textual form into the
// given type context.
func reparseInto(ctx *TypeContext, m *Module) (*Module, error) {
	text := ModuleString(m)
	re := &Module{
		Name:       m.Name,
		Ctx:        ctx,
		funcByName: make(map[string]*Function),
		globByName: make(map[string]*GlobalVar),
	}
	p := &parser{lex: newLexer(text), mod: re, headerOnly: true}
	if _, err := p.parseModule(); err != nil {
		return nil, fmt.Errorf("ir: link: renormalize %s: %w", m.Name, err)
	}
	p2 := &parser{lex: newLexer(text), mod: re}
	if _, err := p2.parseModule(); err != nil {
		return nil, fmt.Errorf("ir: link: renormalize %s: %w", m.Name, err)
	}
	return re, nil
}

// cloneBodyInto copies src's body into dst (same signature, lives in
// module out), remapping function and global references by name.
func cloneBodyInto(out *Module, dst *Function, src *Function) {
	vmap := make(map[Value]Value, src.NumInstrs()+len(src.Params))
	for i, p := range src.Params {
		dst.Params[i].Nam = p.Nam
		vmap[p] = dst.Params[i]
	}
	bmap := make(map[*Block]*Block, len(src.Blocks))
	for _, b := range src.Blocks {
		nb := dst.NewBlock(b.Nam)
		bmap[b] = nb
		vmap[b] = nb
	}
	for _, b := range src.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				Op:        in.Op,
				Ty:        in.Ty,
				Nam:       in.Nam,
				Predicate: in.Predicate,
				AllocTy:   in.AllocTy,
				Operands:  append([]Value(nil), in.Operands...),
			}
			if len(in.IncomingBlocks) > 0 {
				ni.IncomingBlocks = make([]*Block, len(in.IncomingBlocks))
				for i, ib := range in.IncomingBlocks {
					ni.IncomingBlocks[i] = bmap[ib]
				}
			}
			nb.Append(ni)
			vmap[in] = ni
		}
	}
	dst.Instructions(func(in *Instr) {
		for i, op := range in.Operands {
			switch v := op.(type) {
			case *Function:
				in.Operands[i] = out.Func(v.Nam)
			case *GlobalVar:
				in.Operands[i] = out.Global(v.Nam)
			default:
				if nv, ok := vmap[op]; ok {
					in.Operands[i] = nv
				}
			}
		}
	})
}
