package ir

import (
	"errors"
	"fmt"
	"sync"
)

// verifyPool recycles FuncIssues' block set; the instruction set uses
// MarkInstrs stamps and needs no map at all.
var verifyPool = sync.Pool{New: func() any {
	return make(map[*Block]bool, 32)
}}

// VerifyModule checks every function definition in the module plus the
// module-level invariants (unique function names, no references to
// functions outside the module), returning all violations joined into a
// single error.
func VerifyModule(m *Module) error {
	return errors.Join(ModuleIssues(m)...)
}

// ModuleIssues returns every verification failure in the module, one
// error per violation: the per-function issues of each definition
// (prefixed with the function name) plus the module-level rules:
//
//   - function names must be unique across the module;
//   - every *Function operand — in particular the callee of a call or
//     invoke — must be a function currently present in the module, so
//     no instruction can reference a deleted or foreign function.
func ModuleIssues(m *Module) []error {
	var errs []error

	seen := make(map[string]int, len(m.Funcs))
	present := make(map[*Function]bool, len(m.Funcs))
	for _, f := range m.Funcs {
		seen[f.Nam]++
		present[f] = true
	}
	for _, f := range m.Funcs {
		if seen[f.Nam] > 1 {
			errs = append(errs, fmt.Errorf("@%s: function defined %d times in the module", f.Nam, seen[f.Nam]))
			seen[f.Nam] = 1 // report each duplicate name once
		}
	}

	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		for _, e := range FuncIssues(f) {
			errs = append(errs, fmt.Errorf("@%s: %w", f.Nam, e))
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for i, op := range in.Operands {
					callee, ok := op.(*Function)
					if !ok || present[callee] {
						continue
					}
					if (in.Op == OpCall || in.Op == OpInvoke) && i == 0 {
						errs = append(errs, fmt.Errorf("@%s: %%%s: call to @%s which is not a function in the module", f.Nam, b.Nam, callee.Nam))
					} else {
						errs = append(errs, fmt.Errorf("@%s: %%%s: reference to @%s which is not a function in the module", f.Nam, b.Nam, callee.Nam))
					}
				}
			}
		}
	}
	return errs
}

// VerifyFunc checks the structural and SSA well-formedness rules of one
// function definition:
//
//   - every block is non-empty and ends with exactly one terminator;
//   - phis appear only in a leading run and cover each predecessor
//     exactly once;
//   - instruction operand counts and types are consistent;
//   - every SSA definition dominates all of its uses (the property the
//     Sec. III-E merge bug fixes protect).
func VerifyFunc(f *Function) error {
	return errors.Join(FuncIssues(f)...)
}

// FuncIssues returns every verification failure in one function
// definition, one error per violation, in deterministic block order.
func FuncIssues(f *Function) []error {
	var errs []error
	errf := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	if len(f.Blocks) == 0 {
		return []error{errors.New("definition has no blocks")}
	}

	blockSet := verifyPool.Get().(map[*Block]bool)
	defer verifyPool.Put(blockSet)
	clear(blockSet)
	for _, b := range f.Blocks {
		blockSet[b] = true
	}
	gen := f.MarkInstrs()

	// Predecessors are only needed for blocks that contain phis, so they
	// are gathered per such block into a reusable buffer instead of
	// building the full f.Preds() map for every verification.
	var predBuf []*Block
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			errf("block %%%s is empty", b.Nam)
			continue
		}
		for i, in := range b.Instrs {
			last := i == len(b.Instrs)-1
			if in.IsTerminator() != last {
				if in.IsTerminator() {
					errf("%%%s: terminator %s mid-block", b.Nam, in.Op)
				} else {
					errf("%%%s: block does not end in a terminator", b.Nam)
				}
			}
			if in.Op == OpPhi && i > b.FirstNonPhi() {
				errf("%%%s: phi %%%s after non-phi instruction", b.Nam, in.Nam)
			}
			if in.Parent != b {
				errf("%%%s: instruction %s has wrong parent", b.Nam, in.Op)
			}
			if err := checkOperands(in); err != nil {
				errf("%%%s: %s: %v", b.Nam, InstrString(in), err)
			}
			for _, op := range in.Operands {
				if sb, ok := op.(*Block); ok && !blockSet[sb] {
					errf("%%%s: reference to block %%%s outside function", b.Nam, sb.Nam)
				}
			}
		}
		// Phi edges must match predecessors exactly. Edge multiplicity is
		// counted by scanning the incoming list directly — phi fan-in is
		// small — which also makes the error order deterministic where
		// the old per-phi map left it to map iteration.
		phis := b.Phis()
		if len(phis) > 0 {
			predBuf = predsInto(f, b, predBuf[:0])
		}
		for _, phi := range phis {
			for _, p := range predBuf {
				n := 0
				for _, ib := range phi.IncomingBlocks {
					if ib == p {
						n++
					}
				}
				if n == 0 {
					errf("%%%s: phi %%%s missing incoming edge from %%%s", b.Nam, phi.Nam, p.Nam)
				}
			}
			for i, ib := range phi.IncomingBlocks {
				first := true
				for _, prev := range phi.IncomingBlocks[:i] {
					if prev == ib {
						first = false
						break
					}
				}
				if !first {
					continue // report each distinct incoming block once
				}
				n := 0
				for _, x := range phi.IncomingBlocks {
					if x == ib {
						n++
					}
				}
				if n > 1 {
					errf("%%%s: phi %%%s has %d edges from %%%s", b.Nam, phi.Nam, n, ib.Nam)
				}
				found := false
				for _, p := range predBuf {
					if p == ib {
						found = true
						break
					}
				}
				if !found {
					errf("%%%s: phi %%%s edge from non-predecessor %%%s", b.Nam, phi.Nam, ib.Nam)
				}
			}
		}
	}

	// SSA dominance: each def dominates each use.
	dt := NewDomTree(f)
	defer dt.Release()
	for _, b := range f.Blocks {
		if !dt.Reachable(b) {
			continue // uses in dead code are not checked, as in LLVM
		}
		for _, in := range b.Instrs {
			for idx, op := range in.Operands {
				def, ok := op.(*Instr)
				if !ok {
					continue
				}
				if !def.Marked(gen) {
					errf("%%%s: operand %%%s defined outside function", b.Nam, def.Nam)
					continue
				}
				if !dt.DominatesInstr(def, in, idx) {
					errf("%%%s: use of %%%s in %s does not satisfy dominance", b.Nam, def.Nam, InstrString(in))
				}
			}
		}
	}
	return errs
}

// checkOperands validates per-opcode operand arity and types.
func checkOperands(in *Instr) error {
	n := len(in.Operands)
	need := func(want int) error {
		if n != want {
			return fmt.Errorf("want %d operands, have %d", want, n)
		}
		return nil
	}
	switch {
	case in.Op.IsBinary():
		if err := need(2); err != nil {
			return err
		}
		if in.Operands[0].Type() != in.Operands[1].Type() || in.Operands[0].Type() != in.Ty {
			return fmt.Errorf("binary operand/result type mismatch")
		}
	case in.Op.IsCast():
		if err := need(1); err != nil {
			return err
		}
		return checkCast(in.Op, in.Operands[0].Type(), in.Ty)
	}
	switch in.Op {
	case OpAlloca:
		if err := need(0); err != nil {
			return err
		}
		if in.AllocTy == nil {
			return fmt.Errorf("alloca has no allocated type")
		}
		if !in.Ty.IsPointer() || in.Ty.Elem != in.AllocTy {
			return fmt.Errorf("alloca result %s, want %s*", in.Ty, in.AllocTy)
		}
	case OpGEP:
		return checkGEP(in)
	case OpRet:
		if n > 1 {
			return fmt.Errorf("ret takes 0 or 1 operand")
		}
	case OpBr:
		return need(1)
	case OpCondBr:
		if err := need(3); err != nil {
			return err
		}
		if in.Operands[0].Type().Kind != IntKind || in.Operands[0].Type().Bits != 1 {
			return fmt.Errorf("condbr condition must be i1")
		}
	case OpLoad:
		if err := need(1); err != nil {
			return err
		}
		pt := in.Operands[0].Type()
		if !pt.IsPointer() || pt.Elem != in.Ty {
			return fmt.Errorf("load type mismatch: %s via %s", in.Ty, pt)
		}
	case OpStore:
		if err := need(2); err != nil {
			return err
		}
		pt := in.Operands[1].Type()
		if !pt.IsPointer() || pt.Elem != in.Operands[0].Type() {
			return fmt.Errorf("store type mismatch: %s via %s", in.Operands[0].Type(), pt)
		}
	case OpICmp, OpFCmp:
		if err := need(2); err != nil {
			return err
		}
		if in.Operands[0].Type() != in.Operands[1].Type() {
			return fmt.Errorf("cmp operand types differ")
		}
	case OpSelect:
		if err := need(3); err != nil {
			return err
		}
		if in.Operands[1].Type() != in.Operands[2].Type() {
			return fmt.Errorf("select arm types differ")
		}
	case OpPhi:
		if len(in.Operands) != len(in.IncomingBlocks) {
			return fmt.Errorf("phi operand/block count mismatch")
		}
		for _, v := range in.Operands {
			if v.Type() != in.Ty {
				return fmt.Errorf("phi incoming type %s, want %s", v.Type(), in.Ty)
			}
		}
	case OpCall, OpInvoke:
		if n < 1 {
			return fmt.Errorf("call needs a callee")
		}
		sig := calleeSig(in.Operands[0])
		args := in.CallArgs()
		if !sig.Variadic && len(args) != len(sig.Fields) {
			return fmt.Errorf("call arity %d, want %d", len(args), len(sig.Fields))
		}
		for i, a := range args {
			if i < len(sig.Fields) && a.Type() != sig.Fields[i] {
				return fmt.Errorf("call arg %d type %s, want %s", i, a.Type(), sig.Fields[i])
			}
		}
		if sig.Elem != in.Ty {
			return fmt.Errorf("call result type %s, want %s", in.Ty, sig.Elem)
		}
	}
	return nil
}

// checkCast validates operand/result kinds and the bit-width direction
// of a conversion: truncations must narrow, extensions must widen, and
// the pointer conversions must connect a pointer with an integer.
func checkCast(op Opcode, from, to *Type) error {
	intBoth := from.IsInt() && to.IsInt()
	floatBoth := from.IsFloat() && to.IsFloat()
	switch op {
	case OpTrunc:
		if !intBoth || from.Bits <= to.Bits {
			return fmt.Errorf("trunc must narrow an integer: %s to %s", from, to)
		}
	case OpZExt, OpSExt:
		if !intBoth || from.Bits >= to.Bits {
			return fmt.Errorf("%s must widen an integer: %s to %s", op, from, to)
		}
	case OpFPTrunc:
		if !floatBoth || from.Bits <= to.Bits {
			return fmt.Errorf("fptrunc must narrow a float: %s to %s", from, to)
		}
	case OpFPExt:
		if !floatBoth || from.Bits >= to.Bits {
			return fmt.Errorf("fpext must widen a float: %s to %s", from, to)
		}
	case OpFPToSI:
		if !from.IsFloat() || !to.IsInt() {
			return fmt.Errorf("fptosi wants float to integer, have %s to %s", from, to)
		}
	case OpSIToFP:
		if !from.IsInt() || !to.IsFloat() {
			return fmt.Errorf("sitofp wants integer to float, have %s to %s", from, to)
		}
	case OpPtrToInt:
		if !from.IsPointer() || !to.IsInt() {
			return fmt.Errorf("ptrtoint wants pointer to integer, have %s to %s", from, to)
		}
	case OpIntToPtr:
		if !from.IsInt() || !to.IsPointer() {
			return fmt.Errorf("inttoptr wants integer to pointer, have %s to %s", from, to)
		}
	case OpBitcast:
		// Pointers convert among themselves; scalars must keep their
		// exact bit width (pointer<->integer is ptrtoint/inttoptr's job).
		switch {
		case from.IsPointer() && to.IsPointer():
		case (from.IsInt() || from.IsFloat()) && (to.IsInt() || to.IsFloat()) && from.Bits == to.Bits:
		default:
			return fmt.Errorf("bitcast between incompatible types %s and %s", from, to)
		}
	}
	return nil
}

// checkGEP validates a getelementptr: a pointer base, integer indices
// (struct steps constant and in range), and a result type matching the
// walk over the indexed aggregate.
func checkGEP(in *Instr) error {
	if len(in.Operands) < 2 {
		return fmt.Errorf("gep wants a base pointer and at least one index")
	}
	base := in.Operands[0].Type()
	if !base.IsPointer() {
		return fmt.Errorf("gep base must be a pointer, have %s", base)
	}
	cur := base.Elem
	for i, idx := range in.Operands[1:] {
		if !idx.Type().IsInt() {
			return fmt.Errorf("gep index %d must be an integer, have %s", i, idx.Type())
		}
		if i == 0 {
			continue // the first index steps over the pointee itself
		}
		switch cur.Kind {
		case ArrayKind:
			cur = cur.Elem
		case StructKind:
			c, ok := idx.(*Const)
			if !ok {
				return fmt.Errorf("gep struct index %d must be a constant", i)
			}
			if c.IntVal < 0 || int(c.IntVal) >= len(cur.Fields) {
				return fmt.Errorf("gep struct index %d out of range [0,%d)", c.IntVal, len(cur.Fields))
			}
			cur = cur.Fields[c.IntVal]
		default:
			return fmt.Errorf("gep index %d steps through non-aggregate %s", i, cur)
		}
	}
	if !in.Ty.IsPointer() || in.Ty.Elem != cur {
		return fmt.Errorf("gep result %s, want %s*", in.Ty, cur)
	}
	return nil
}
