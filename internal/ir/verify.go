package ir

import (
	"errors"
	"fmt"
)

// VerifyModule checks every function definition in the module, returning
// all violations joined into a single error.
func VerifyModule(m *Module) error {
	var errs []error
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		if err := VerifyFunc(f); err != nil {
			errs = append(errs, fmt.Errorf("@%s: %w", f.Nam, err))
		}
	}
	return errors.Join(errs...)
}

// VerifyFunc checks the structural and SSA well-formedness rules of one
// function definition:
//
//   - every block is non-empty and ends with exactly one terminator;
//   - phis appear only in a leading run and cover each predecessor
//     exactly once;
//   - instruction operand counts and types are consistent;
//   - every SSA definition dominates all of its uses (the property the
//     Sec. III-E merge bug fixes protect).
func VerifyFunc(f *Function) error {
	var errs []error
	errf := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	if len(f.Blocks) == 0 {
		return errors.New("definition has no blocks")
	}

	inFunc := make(map[*Instr]bool, f.NumInstrs())
	blockSet := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		blockSet[b] = true
		for _, in := range b.Instrs {
			inFunc[in] = true
		}
	}

	preds := f.Preds()
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			errf("block %%%s is empty", b.Nam)
			continue
		}
		for i, in := range b.Instrs {
			last := i == len(b.Instrs)-1
			if in.IsTerminator() != last {
				if in.IsTerminator() {
					errf("%%%s: terminator %s mid-block", b.Nam, in.Op)
				} else {
					errf("%%%s: block does not end in a terminator", b.Nam)
				}
			}
			if in.Op == OpPhi && i > b.FirstNonPhi() {
				errf("%%%s: phi %%%s after non-phi instruction", b.Nam, in.Nam)
			}
			if in.Parent != b {
				errf("%%%s: instruction %s has wrong parent", b.Nam, in.Op)
			}
			if err := checkOperands(in); err != nil {
				errf("%%%s: %s: %v", b.Nam, InstrString(in), err)
			}
			for _, op := range in.Operands {
				if sb, ok := op.(*Block); ok && !blockSet[sb] {
					errf("%%%s: reference to block %%%s outside function", b.Nam, sb.Nam)
				}
			}
		}
		// Phi edges must match predecessors exactly.
		for _, phi := range b.Phis() {
			have := make(map[*Block]int)
			for _, ib := range phi.IncomingBlocks {
				have[ib]++
			}
			for _, p := range preds[b] {
				if have[p] == 0 {
					errf("%%%s: phi %%%s missing incoming edge from %%%s", b.Nam, phi.Nam, p.Nam)
				}
			}
			for ib, n := range have {
				if n > 1 {
					errf("%%%s: phi %%%s has %d edges from %%%s", b.Nam, phi.Nam, n, ib.Nam)
				}
				found := false
				for _, p := range preds[b] {
					if p == ib {
						found = true
						break
					}
				}
				if !found {
					errf("%%%s: phi %%%s edge from non-predecessor %%%s", b.Nam, phi.Nam, ib.Nam)
				}
			}
		}
	}

	// SSA dominance: each def dominates each use.
	dt := NewDomTree(f)
	for _, b := range f.Blocks {
		if !dt.Reachable(b) {
			continue // uses in dead code are not checked, as in LLVM
		}
		for _, in := range b.Instrs {
			for idx, op := range in.Operands {
				def, ok := op.(*Instr)
				if !ok {
					continue
				}
				if !inFunc[def] {
					errf("%%%s: operand %%%s defined outside function", b.Nam, def.Nam)
					continue
				}
				if !dt.DominatesInstr(def, in, idx) {
					errf("%%%s: use of %%%s in %s does not satisfy dominance", b.Nam, def.Nam, InstrString(in))
				}
			}
		}
	}
	return errors.Join(errs...)
}

// checkOperands validates per-opcode operand arity and types.
func checkOperands(in *Instr) error {
	n := len(in.Operands)
	need := func(want int) error {
		if n != want {
			return fmt.Errorf("want %d operands, have %d", want, n)
		}
		return nil
	}
	switch {
	case in.Op.IsBinary():
		if err := need(2); err != nil {
			return err
		}
		if in.Operands[0].Type() != in.Operands[1].Type() || in.Operands[0].Type() != in.Ty {
			return fmt.Errorf("binary operand/result type mismatch")
		}
	case in.Op.IsCast():
		return need(1)
	}
	switch in.Op {
	case OpRet:
		if n > 1 {
			return fmt.Errorf("ret takes 0 or 1 operand")
		}
	case OpBr:
		return need(1)
	case OpCondBr:
		if err := need(3); err != nil {
			return err
		}
		if in.Operands[0].Type().Kind != IntKind || in.Operands[0].Type().Bits != 1 {
			return fmt.Errorf("condbr condition must be i1")
		}
	case OpLoad:
		if err := need(1); err != nil {
			return err
		}
		pt := in.Operands[0].Type()
		if !pt.IsPointer() || pt.Elem != in.Ty {
			return fmt.Errorf("load type mismatch: %s via %s", in.Ty, pt)
		}
	case OpStore:
		if err := need(2); err != nil {
			return err
		}
		pt := in.Operands[1].Type()
		if !pt.IsPointer() || pt.Elem != in.Operands[0].Type() {
			return fmt.Errorf("store type mismatch: %s via %s", in.Operands[0].Type(), pt)
		}
	case OpICmp, OpFCmp:
		if err := need(2); err != nil {
			return err
		}
		if in.Operands[0].Type() != in.Operands[1].Type() {
			return fmt.Errorf("cmp operand types differ")
		}
	case OpSelect:
		if err := need(3); err != nil {
			return err
		}
		if in.Operands[1].Type() != in.Operands[2].Type() {
			return fmt.Errorf("select arm types differ")
		}
	case OpPhi:
		if len(in.Operands) != len(in.IncomingBlocks) {
			return fmt.Errorf("phi operand/block count mismatch")
		}
		for _, v := range in.Operands {
			if v.Type() != in.Ty {
				return fmt.Errorf("phi incoming type %s, want %s", v.Type(), in.Ty)
			}
		}
	case OpCall, OpInvoke:
		if n < 1 {
			return fmt.Errorf("call needs a callee")
		}
		sig := calleeSig(in.Operands[0])
		args := in.CallArgs()
		if !sig.Variadic && len(args) != len(sig.Fields) {
			return fmt.Errorf("call arity %d, want %d", len(args), len(sig.Fields))
		}
		for i, a := range args {
			if i < len(sig.Fields) && a.Type() != sig.Fields[i] {
				return fmt.Errorf("call arg %d type %s, want %s", i, a.Type(), sig.Fields[i])
			}
		}
		if sig.Elem != in.Ty {
			return fmt.Errorf("call result type %s, want %s", in.Ty, sig.Elem)
		}
	}
	return nil
}
