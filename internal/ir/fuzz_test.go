package ir

import (
	"strings"
	"testing"
)

// FuzzIRParseRoundTrip checks the printer/parser fixpoint: any source
// the parser accepts must print to text the parser accepts again, and
// that second parse must print identically (print ∘ parse is idempotent
// after one round). Parser rejections are fine — only panics and
// fixpoint violations count.
func FuzzIRParseRoundTrip(f *testing.F) {
	f.Add(`define i32 @id(i32 %x) {
entry:
  ret i32 %x
}`)
	f.Add(`@g = global i32 7
define i32 @ld() {
entry:
  %p = load i32, ptr @g
  ret i32 %p
}`)
	f.Add(`define i32 @max(i32 %a, i32 %b) {
entry:
  %c = icmp sgt i32 %a, %b
  br i1 %c, label %t, label %f
t:
  br label %join
f:
  br label %join
join:
  %m = phi i32 [ %a, %t ], [ %b, %f ]
  ret i32 %m
}`)
	f.Add(`define void @loop(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %i2 = add i32 %i, 1
  br label %head
exit:
  ret void
}`)
	f.Add("define i32 @f() {\nentry:\n  ret i32 -2147483648\n}")
	f.Add("declare i32 @ext(i32, ...)")

	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseModule(src)
		if err != nil {
			return // rejection is fine; panics are the bug
		}
		var first strings.Builder
		if err := WriteModule(&first, m); err != nil {
			t.Fatalf("print of parsed module failed: %v", err)
		}
		m2, err := ParseModule(first.String())
		if err != nil {
			t.Fatalf("printed module does not re-parse: %v\n%s", err, first.String())
		}
		var second strings.Builder
		if err := WriteModule(&second, m2); err != nil {
			t.Fatalf("second print failed: %v", err)
		}
		if first.String() != second.String() {
			t.Fatalf("print/parse not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", first.String(), second.String())
		}
	})
}
