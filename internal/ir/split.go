package ir

import "fmt"

// SplitModule partitions a module into n translation units, each in
// its own fresh TypeContext, as a whole-program workload would look if
// it had been compiled as n separate files: partition i keeps the
// bodies of every i-th function definition (round-robin over the
// definition order) and demotes the rest to declarations, so every
// cross-partition call resolves at link time. Globals are replicated
// into every partition that could need them (the linker unifies by
// name). LinkModules over the result reconstructs a module equivalent
// to the input; the cross-module merge tests and the scripts/check.sh
// corpus gate are the consumers.
//
// The input is not modified. n < 1 or a module with fewer definitions
// than partitions is an error (an empty partition would be pointless
// and masks miscounted test corpora).
func SplitModule(m *Module, n int) ([]*Module, error) {
	if n < 1 {
		return nil, fmt.Errorf("ir: split: %d partitions", n)
	}
	defs := 0
	for _, f := range m.Funcs {
		if !f.IsDecl() {
			defs++
		}
	}
	if defs < n {
		return nil, fmt.Errorf("ir: split: %d definitions cannot fill %d partitions", defs, n)
	}

	text := ModuleString(m)
	out := make([]*Module, n)
	for i := 0; i < n; i++ {
		part, err := ParseModule(text)
		if err != nil {
			return nil, fmt.Errorf("ir: split: round-trip: %w", err)
		}
		part.Name = fmt.Sprintf("%s.part%d", m.Name, i)
		di := 0
		for _, f := range part.Funcs {
			if f.IsDecl() {
				continue
			}
			if di%n != i {
				f.Blocks = nil // demote to declaration
			}
			di++
		}
		if err := VerifyModule(part); err != nil {
			return nil, fmt.Errorf("ir: split: partition %d: %w", i, err)
		}
		out[i] = part
	}
	return out, nil
}
