package ir_test

import (
	"testing"

	"f3m/internal/ir"
	"f3m/internal/irgen"
)

func TestSplitModuleRoundTrip(t *testing.T) {
	m := irgen.Generate(irgen.DefaultConfig(5)).Module
	want := ir.ModuleString(m)
	for _, n := range []int{1, 2, 4, 8} {
		parts, err := ir.SplitModule(m, n)
		if err != nil {
			t.Fatalf("split %d: %v", n, err)
		}
		if len(parts) != n {
			t.Fatalf("split %d: got %d parts", n, len(parts))
		}
		defs := 0
		for i, p := range parts {
			if err := ir.VerifyModule(p); err != nil {
				t.Fatalf("split %d: partition %d invalid: %v", n, i, err)
			}
			for _, f := range p.Funcs {
				if !f.IsDecl() {
					defs++
				}
			}
		}
		wantDefs := 0
		for _, f := range m.Funcs {
			if !f.IsDecl() {
				wantDefs++
			}
		}
		if defs != wantDefs {
			t.Fatalf("split %d: %d definitions across parts, want %d", n, defs, wantDefs)
		}
		linked, err := ir.LinkModules(m.Name, parts...)
		if err != nil {
			t.Fatalf("split %d: relink: %v", n, err)
		}
		if got := ir.ModuleString(linked); got != want {
			t.Fatalf("split %d: relinked module differs from the original", n)
		}
	}
	// The input must be untouched.
	if got := ir.ModuleString(m); got != want {
		t.Fatal("SplitModule mutated its input")
	}
}

func TestSplitModuleErrors(t *testing.T) {
	m := irgen.Generate(irgen.DefaultConfig(5)).Module
	if _, err := ir.SplitModule(m, 0); err == nil {
		t.Error("0 partitions accepted")
	}
	if _, err := ir.SplitModule(m, len(m.Funcs)+1); err == nil {
		t.Error("more partitions than definitions accepted")
	}
}
