package ir

import "strconv"

// CloneModule deep-copies a module: globals, function definitions and
// all cross-references (calls, global operands) are remapped into the
// copy. The clone shares the TypeContext with the original, which is
// safe because contexts only intern immutable types. Experiments use
// this to run several strategies on identical populations without
// regenerating them.
func CloneModule(src *Module) *Module {
	dst := &Module{
		Name:       src.Name,
		Ctx:        src.Ctx,
		funcByName: make(map[string]*Function, len(src.Funcs)),
		globByName: make(map[string]*GlobalVar, len(src.Globs)),
	}
	for _, g := range src.Globs {
		dst.NewGlobal(g.Nam, g.Elem, g.Init)
	}
	// Create all functions first so call operands can remap.
	clones := make(map[*Function]*Function, len(src.Funcs))
	for _, f := range src.Funcs {
		clones[f] = CloneFunc(dst, f, f.Nam)
	}
	// Remap cross-function and global references.
	for _, f := range dst.Funcs {
		f.Instructions(func(in *Instr) {
			for i, op := range in.Operands {
				switch v := op.(type) {
				case *Function:
					if nf, ok := clones[v]; ok {
						in.Operands[i] = nf
					}
				case *GlobalVar:
					in.Operands[i] = dst.Global(v.Nam)
				}
			}
		})
	}
	return dst
}

// CloneFunc deep-copies function src into module dst under the given
// name. Both modules must share the same TypeContext (cloning within one
// module satisfies this trivially). References to other functions and
// globals are preserved as-is, so cross-module cloning requires dst to
// contain the same referents.
func CloneFunc(dst *Module, src *Function, name string) *Function {
	out := dst.NewFunc(name, src.Sig)
	for i, p := range src.Params {
		out.Params[i].Nam = p.Nam
	}
	if src.IsDecl() {
		return out
	}

	vmap := make(map[Value]Value, src.NumInstrs()+len(src.Params))
	for i, p := range src.Params {
		vmap[p] = out.Params[i]
	}
	bmap := make(map[*Block]*Block, len(src.Blocks))
	for _, b := range src.Blocks {
		nb := out.NewBlock(b.Nam)
		bmap[b] = nb
		vmap[b] = nb
	}

	// First pass: copy instructions with operands still pointing at the
	// source values.
	for _, b := range src.Blocks {
		nb := bmap[b]
		nb.Instrs = make([]*Instr, 0, len(b.Instrs))
		for _, in := range b.Instrs {
			ni := &Instr{
				Op:        in.Op,
				Ty:        in.Ty,
				Nam:       in.Nam,
				Predicate: in.Predicate,
				AllocTy:   in.AllocTy,
				Operands:  append([]Value(nil), in.Operands...),
			}
			if len(in.IncomingBlocks) > 0 {
				ni.IncomingBlocks = make([]*Block, len(in.IncomingBlocks))
				for i, ib := range in.IncomingBlocks {
					ni.IncomingBlocks[i] = bmap[ib]
				}
			}
			nb.Append(ni)
			vmap[in] = ni
		}
	}

	// Second pass: remap operands into the clone.
	out.Instructions(func(in *Instr) {
		for i, op := range in.Operands {
			if nv, ok := vmap[op]; ok {
				in.Operands[i] = nv
			}
		}
	})
	out.nextID = src.nextID
	return out
}

// CloneArena recycles the block and instruction objects of short-lived
// function clones. The merger and the speculative workers clone a pair,
// demote it, align it and throw the clone away — thousands of times per
// run — so the arena keeps freelists of dead blocks/instructions (with
// their operand-slice capacity) plus reusable remap tables, turning the
// per-clone allocation storm into a handful of appends.
//
// An arena is not safe for concurrent use; each worker owns one.
type CloneArena struct {
	instrs []*Instr
	blocks []*Block
	vmap   map[Value]Value
	bmap   map[*Block]*Block
}

// NewCloneArena returns an empty arena.
func NewCloneArena() *CloneArena {
	return &CloneArena{
		vmap: make(map[Value]Value, 64),
		bmap: make(map[*Block]*Block, 16),
	}
}

func (ar *CloneArena) instr() *Instr {
	if n := len(ar.instrs); n > 0 {
		in := ar.instrs[n-1]
		ar.instrs[n-1] = nil
		ar.instrs = ar.instrs[:n-1]
		return in
	}
	return &Instr{}
}

func (ar *CloneArena) block() *Block {
	if n := len(ar.blocks); n > 0 {
		b := ar.blocks[n-1]
		ar.blocks[n-1] = nil
		ar.blocks = ar.blocks[:n-1]
		return b
	}
	return &Block{}
}

// NewInstr returns a zeroed instruction from the freelist (or a fresh
// one), for callers that build short-lived functions instruction by
// instruction and Recycle them afterwards. Its Operands and
// IncomingBlocks are empty but may keep recycled capacity.
func (ar *CloneArena) NewInstr() *Instr { return ar.instr() }

// NewBlock is Function.NewBlock drawing the block from the arena's
// freelist: it appends a new block named name (or a fresh "bb<n>" name
// when empty) to f and returns it.
func (ar *CloneArena) NewBlock(f *Function, name string) *Block {
	b := ar.block()
	if name == "" {
		name = "bb" + strconv.Itoa(f.nextID)
		f.nextID++
	}
	b.Nam = name
	b.Parent = f
	if f.Parent != nil {
		b.labelType = f.Parent.Ctx.Label
	}
	f.Blocks = append(f.Blocks, b)
	return b
}

// CloneFunc is CloneFunc drawing blocks and instructions from the
// arena's freelists. The clone is indistinguishable from a fresh one;
// pass it to Recycle when done to return its storage.
func (ar *CloneArena) CloneFunc(dst *Module, src *Function, name string) *Function {
	out := dst.NewFunc(name, src.Sig)
	for i, p := range src.Params {
		out.Params[i].Nam = p.Nam
	}
	if src.IsDecl() {
		return out
	}

	clear(ar.vmap)
	clear(ar.bmap)
	vmap, bmap := ar.vmap, ar.bmap
	for i, p := range src.Params {
		vmap[p] = out.Params[i]
	}
	if cap(out.Blocks) < len(src.Blocks) {
		out.Blocks = make([]*Block, 0, len(src.Blocks))
	}
	for _, b := range src.Blocks {
		nb := ar.block()
		nb.Nam = b.Nam
		nb.Parent = out
		nb.labelType = dst.Ctx.Label
		out.Blocks = append(out.Blocks, nb)
		bmap[b] = nb
		vmap[b] = nb
	}

	for _, b := range src.Blocks {
		nb := bmap[b]
		if cap(nb.Instrs) < len(b.Instrs) {
			nb.Instrs = make([]*Instr, 0, len(b.Instrs))
		}
		for _, in := range b.Instrs {
			ni := ar.instr()
			ni.Op = in.Op
			ni.Ty = in.Ty
			ni.Nam = in.Nam
			ni.Predicate = in.Predicate
			ni.AllocTy = in.AllocTy
			ni.Operands = append(ni.Operands[:0], in.Operands...)
			if len(in.IncomingBlocks) > 0 {
				ni.IncomingBlocks = ni.IncomingBlocks[:0]
				for _, ib := range in.IncomingBlocks {
					ni.IncomingBlocks = append(ni.IncomingBlocks, bmap[ib])
				}
			}
			ni.Parent = nb
			nb.Instrs = append(nb.Instrs, ni)
			vmap[in] = ni
		}
	}

	out.Instructions(func(in *Instr) {
		for i, op := range in.Operands {
			if nv, ok := vmap[op]; ok {
				in.Operands[i] = nv
			}
		}
	})
	out.nextID = src.nextID
	return out
}

// Recycle returns the blocks and instructions of a dead clone to the
// arena. The function must already be out of circulation: removed from
// its module (or the module about to be Reset) and unreferenced by any
// live IR — passes may have detached some of its original objects, so
// only what is still attached comes back. Operand and incoming lists
// are cleared (keeping capacity) so recycled storage pins no values.
func (ar *CloneArena) Recycle(f *Function) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i := range in.Operands {
				in.Operands[i] = nil
			}
			in.Operands = in.Operands[:0]
			for i := range in.IncomingBlocks {
				in.IncomingBlocks[i] = nil
			}
			in.IncomingBlocks = in.IncomingBlocks[:0]
			in.Op = OpInvalid
			in.Ty = nil
			in.AllocTy = nil
			in.Nam = ""
			in.Predicate = 0
			in.Parent = nil
			ar.instrs = append(ar.instrs, in)
		}
		for i := range b.Instrs {
			b.Instrs[i] = nil
		}
		b.Instrs = b.Instrs[:0]
		b.Parent = nil
		b.Nam = ""
		b.labelType = nil
		ar.blocks = append(ar.blocks, b)
	}
	for i := range f.Blocks {
		f.Blocks[i] = nil
	}
	f.Blocks = f.Blocks[:0]
}
