package ir

// CloneModule deep-copies a module: globals, function definitions and
// all cross-references (calls, global operands) are remapped into the
// copy. The clone shares the TypeContext with the original, which is
// safe because contexts only intern immutable types. Experiments use
// this to run several strategies on identical populations without
// regenerating them.
func CloneModule(src *Module) *Module {
	dst := &Module{
		Name:       src.Name,
		Ctx:        src.Ctx,
		funcByName: make(map[string]*Function, len(src.Funcs)),
		globByName: make(map[string]*GlobalVar, len(src.Globs)),
	}
	for _, g := range src.Globs {
		dst.NewGlobal(g.Nam, g.Elem, g.Init)
	}
	// Create all functions first so call operands can remap.
	clones := make(map[*Function]*Function, len(src.Funcs))
	for _, f := range src.Funcs {
		clones[f] = CloneFunc(dst, f, f.Nam)
	}
	// Remap cross-function and global references.
	for _, f := range dst.Funcs {
		f.Instructions(func(in *Instr) {
			for i, op := range in.Operands {
				switch v := op.(type) {
				case *Function:
					if nf, ok := clones[v]; ok {
						in.Operands[i] = nf
					}
				case *GlobalVar:
					in.Operands[i] = dst.Global(v.Nam)
				}
			}
		})
	}
	return dst
}

// CloneFunc deep-copies function src into module dst under the given
// name. Both modules must share the same TypeContext (cloning within one
// module satisfies this trivially). References to other functions and
// globals are preserved as-is, so cross-module cloning requires dst to
// contain the same referents.
func CloneFunc(dst *Module, src *Function, name string) *Function {
	out := dst.NewFunc(name, src.Sig)
	for i, p := range src.Params {
		out.Params[i].Nam = p.Nam
	}
	if src.IsDecl() {
		return out
	}

	vmap := make(map[Value]Value, src.NumInstrs()+len(src.Params))
	for i, p := range src.Params {
		vmap[p] = out.Params[i]
	}
	bmap := make(map[*Block]*Block, len(src.Blocks))
	for _, b := range src.Blocks {
		nb := out.NewBlock(b.Nam)
		bmap[b] = nb
		vmap[b] = nb
	}

	// First pass: copy instructions with operands still pointing at the
	// source values.
	for _, b := range src.Blocks {
		nb := bmap[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				Op:        in.Op,
				Ty:        in.Ty,
				Nam:       in.Nam,
				Predicate: in.Predicate,
				AllocTy:   in.AllocTy,
				Operands:  append([]Value(nil), in.Operands...),
			}
			if len(in.IncomingBlocks) > 0 {
				ni.IncomingBlocks = make([]*Block, len(in.IncomingBlocks))
				for i, ib := range in.IncomingBlocks {
					ni.IncomingBlocks[i] = bmap[ib]
				}
			}
			nb.Append(ni)
			vmap[in] = ni
		}
	}

	// Second pass: remap operands into the clone.
	out.Instructions(func(in *Instr) {
		for i, op := range in.Operands {
			if nv, ok := vmap[op]; ok {
				in.Operands[i] = nv
			}
		}
	})
	out.nextID = src.nextID
	return out
}
