package ir

import (
	"sync"
	"sync/atomic"
)

// DomTree is a dominator tree over a function's CFG, built with the
// Cooper–Harvey–Kennedy iterative algorithm. Blocks unreachable from the
// entry have no dominator information and Dominates reports false for
// them.
//
// Internally every block gets a dense index and all per-block state
// lives in int32 slices; the merge pipeline rebuilds dominator trees
// constantly (RepairSSA iterates to a fixed point, SimplifyCFG per
// round), so the representation avoids the per-block map and slice
// allocations a pointer-keyed layout would pay. Block indices are
// cached on the blocks themselves under a global generation stamp, so
// queries do not hash pointers either; transient trees should be
// returned with Release so their slices are reused by the next build.
type DomTree struct {
	fn     *Function
	gen    uint64   // stamp identifying this tree's block indices
	blocks []*Block // dense index -> block (function block order)

	rpoNum []int32 // reverse-postorder number; -1 for unreachable blocks
	idom   []int32 // immediate dominator index; -1 for unreachable, self for entry

	// num/last give each block an interval in a preorder walk of the
	// dominator tree, making Dominates O(1).
	num, last []int32

	// Predecessor lists in CSR form (offsets into predList), shared by
	// the CHK iteration and Frontier.
	predOff  []int32
	predList []int32

	// Construction scratch, kept so Release/NewDomTree cycles reuse it.
	flat      []int32
	rpo       []int32
	state     []int8
	stack     []domFrame
	fill      []int32
	childList []int32
	childFill []int32
}

type domFrame struct {
	b    int32
	succ int
}

// domGenCounter hands out one fresh generation per tree, never reused,
// so a stale stamp on a block can never alias a live tree's index.
var domGenCounter atomic.Uint64

var domPool = sync.Pool{New: func() any { return new(DomTree) }}

// Release returns a tree's storage to the build pool. The tree must not
// be used afterwards. Long-lived trees (analysis caches) simply skip
// this; only the per-pass transient trees bother.
func (t *DomTree) Release() {
	t.fn = nil
	t.blocks = nil
	domPool.Put(t)
}

// grow returns s resized to n, reallocating only when capacity is
// short; contents are unspecified.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// indexOf resolves a block to its dense index, or -1 when the block is
// not part of the tree. The stamp fast path is pure cache: when a newer
// tree has restamped the block, the slow scan recovers the answer.
func (t *DomTree) indexOf(b *Block) int32 {
	if b.domGen == t.gen {
		return b.domIdx
	}
	for i, blk := range t.blocks {
		if blk == b {
			return int32(i)
		}
	}
	return -1
}

// NewDomTree computes the dominator tree of f.
func NewDomTree(f *Function) *DomTree {
	nb := len(f.Blocks)
	t := domPool.Get().(*DomTree)
	t.fn = f
	t.gen = domGenCounter.Add(1)
	t.blocks = f.Blocks
	if nb == 0 {
		return t
	}
	for i, b := range f.Blocks {
		b.domIdx = int32(i)
		b.domGen = t.gen
	}
	t.flat = grow(t.flat, 4*nb)
	flat := t.flat
	t.rpoNum, t.idom = flat[:nb:nb], flat[nb:2*nb:2*nb]
	t.num, t.last = flat[2*nb:3*nb:3*nb], flat[3*nb:4*nb:4*nb]
	for i := range t.rpoNum {
		t.rpoNum[i] = -1
		t.idom[i] = -1
	}

	// Iterative postorder DFS from the entry; rpo holds block indices in
	// reverse postorder when done.
	rpo := grow(t.rpo, nb)[:0]
	state := grow(t.state, nb)
	for i := range state {
		state[i] = 0 // 0 unvisited, 1 on stack, 2 done
	}
	stack := grow(t.stack, nb)[:0]
	stack = append(stack, domFrame{b: 0})
	state[0] = 1
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		term := t.blocks[fr.b].Term()
		advanced := false
		for term != nil && fr.succ < term.NumSuccessors() {
			s := term.Successor(fr.succ).domIdx
			fr.succ++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, domFrame{b: s})
				advanced = true
				break
			}
		}
		if advanced {
			continue
		}
		state[fr.b] = 2
		rpo = append(rpo, fr.b)
		stack = stack[:len(stack)-1]
	}
	t.rpo, t.state, t.stack = rpo, state, stack
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	for i, b := range rpo {
		t.rpoNum[b] = int32(i)
	}

	// Predecessor lists in CSR layout, filled in function block order so
	// the per-block pred order matches what Function.Preds produces (the
	// frontier walk order, and with it phi placement order, depends on
	// it). Edges from unreachable blocks are included here and filtered
	// by the consumers, again matching the map-based implementation.
	t.predOff = grow(t.predOff, nb+1)
	for i := range t.predOff {
		t.predOff[i] = 0
	}
	for _, blk := range t.blocks {
		term := blk.Term()
		if term == nil {
			continue
		}
		for i, ns := 0, term.NumSuccessors(); i < ns; i++ {
			t.predOff[term.Successor(i).domIdx+1]++
		}
	}
	for i := 0; i < nb; i++ {
		t.predOff[i+1] += t.predOff[i]
	}
	t.predList = grow(t.predList, int(t.predOff[nb]))
	fill := grow(t.fill, nb)
	copy(fill, t.predOff[:nb])
	for bi, blk := range t.blocks {
		term := blk.Term()
		if term == nil {
			continue
		}
		for i, ns := 0, term.NumSuccessors(); i < ns; i++ {
			s := term.Successor(i).domIdx
			t.predList[fill[s]] = int32(bi)
			fill[s]++
		}
	}
	t.fill = fill

	t.idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			newIdom := int32(-1)
			for _, p := range t.predList[t.predOff[b]:t.predOff[b+1]] {
				if t.idom[p] < 0 {
					continue // not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && t.idom[b] != newIdom {
				t.idom[b] = newIdom
				changed = true
			}
		}
	}

	// Number the dominator tree for O(1) queries. Children lists reuse
	// the CSR trick: count, prefix-sum, fill — all in rpo order, which
	// matches the recursive walk the map-based implementation did.
	childOff := fill // recycle: fill's job is done
	for i := range childOff {
		childOff[i] = 0
	}
	for _, b := range rpo[1:] {
		childOff[t.idom[b]]++
	}
	sum := int32(0)
	for i := 0; i < nb; i++ {
		c := childOff[i]
		childOff[i] = sum
		sum += c
	}
	childList := grow(t.childList, int(sum))
	childFill := grow(t.childFill, nb)
	copy(childFill, childOff)
	for _, b := range rpo[1:] {
		d := t.idom[b]
		childList[childFill[d]] = b
		childFill[d]++
	}
	t.childList, t.childFill = childList, childFill
	childEnd := func(i int32) int32 {
		if int(i) == nb-1 {
			return sum
		}
		return childOff[i+1]
	}
	// Preorder walk, iterative.
	n := int32(0)
	walk := stack[:0]
	walk = append(walk, domFrame{b: 0})
	t.num[0] = n
	n++
	for len(walk) > 0 {
		fr := &walk[len(walk)-1]
		kids := childList[childOff[fr.b]:childEnd(fr.b)]
		if fr.succ < len(kids) {
			c := kids[fr.succ]
			fr.succ++
			t.num[c] = n
			n++
			walk = append(walk, domFrame{b: c})
			continue
		}
		t.last[fr.b] = n
		walk = walk[:len(walk)-1]
	}
	t.stack = walk
	// Unreachable blocks keep num == 0 only if they were never walked;
	// mark them invalid explicitly so Dominates rejects them.
	for i := range t.num {
		if t.rpoNum[i] < 0 {
			t.num[i] = -1
			t.last[i] = -1
		}
	}
	return t
}

func (t *DomTree) intersect(a, b int32) int32 {
	for a != b {
		for t.rpoNum[a] > t.rpoNum[b] {
			a = t.idom[a]
		}
		for t.rpoNum[b] > t.rpoNum[a] {
			b = t.idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator of b (nil for the entry block or
// unreachable blocks).
func (t *DomTree) IDom(b *Block) *Block {
	i := t.indexOf(b)
	if i < 0 || t.idom[i] < 0 || t.idom[i] == i {
		return nil
	}
	return t.blocks[t.idom[i]]
}

// Reachable reports whether b is reachable from the entry.
func (t *DomTree) Reachable(b *Block) bool {
	i := t.indexOf(b)
	return i >= 0 && t.rpoNum[i] >= 0
}

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *Block) bool {
	ia := t.indexOf(a)
	ib := t.indexOf(b)
	if ia < 0 || ib < 0 || t.num[ia] < 0 || t.num[ib] < 0 {
		return false
	}
	return t.num[ia] <= t.num[ib] && t.num[ib] < t.last[ia]
}

// Frontier computes the dominance frontier of every reachable block:
// DF(b) is the set of blocks where b's dominance ends — exactly where
// SSA construction must place phi nodes for definitions in b. It reuses
// the predecessor lists the tree construction already built.
func (t *DomTree) Frontier() map[*Block][]*Block {
	df := make(map[*Block][]*Block)
	for ib := range t.blocks {
		b := int32(ib)
		if t.rpoNum[b] < 0 {
			continue
		}
		preds := t.predList[t.predOff[b]:t.predOff[b+1]]
		if len(preds) < 2 {
			continue
		}
		for _, p := range preds {
			if t.rpoNum[p] < 0 {
				continue // edge from an unreachable block
			}
			for runner := p; runner != t.idom[b] && runner >= 0; {
				rb := t.blocks[runner]
				df[rb] = appendUnique(df[rb], t.blocks[b])
				next := t.idom[runner]
				if next == runner {
					break // entry dominates itself; stop
				}
				runner = next
			}
		}
	}
	return df
}

func appendUnique(list []*Block, b *Block) []*Block {
	for _, x := range list {
		if x == b {
			return list
		}
	}
	return append(list, b)
}

// Children appends the dominator-tree children of b (in reverse
// postorder of the CFG) to buf and returns it. The result aliases the
// tree's internal storage only through buf; it stays valid until the
// tree is Released.
func (t *DomTree) Children(b *Block, buf []*Block) []*Block {
	i := t.indexOf(b)
	if i < 0 || t.rpoNum[i] < 0 {
		return buf
	}
	// After construction t.fill holds the child-list start offsets (it
	// was recycled as childOff) and t.childFill the end offsets.
	for _, c := range t.childList[t.fill[i]:t.childFill[i]] {
		buf = append(buf, t.blocks[c])
	}
	return buf
}

// DominatesInstr reports whether the definition site of def dominates
// the use at instruction user (operand index gives phi edges special
// treatment: a phi use must be dominated at the end of the incoming
// block, not at the phi itself).
func (t *DomTree) DominatesInstr(def, user *Instr, operandIdx int) bool {
	db, ub := def.Parent, user.Parent
	if user.Op == OpPhi {
		// The incoming value must dominate the terminator of the edge's
		// predecessor block.
		in := user.IncomingBlocks[operandIdx]
		if db == in {
			return true // defined somewhere in the predecessor block
		}
		return t.Dominates(db, in)
	}
	if db == ub {
		return db.IndexOf(def) < ub.IndexOf(user)
	}
	// Invoke results are only usable in the normal destination, which
	// the invoke's block dominates if the result is used legally; the
	// block-level test below covers it.
	return t.Dominates(db, ub)
}
