package ir

// DomTree is a dominator tree over a function's CFG, built with the
// Cooper–Harvey–Kennedy iterative algorithm. Blocks unreachable from the
// entry have no dominator information and Dominates reports false for
// them.
type DomTree struct {
	fn    *Function
	idom  map[*Block]*Block
	order map[*Block]int // reverse postorder number

	// num/last give each block an interval in a preorder walk of the
	// dominator tree, making Dominates O(1).
	num  map[*Block]int
	last map[*Block]int
}

// NewDomTree computes the dominator tree of f.
func NewDomTree(f *Function) *DomTree {
	t := &DomTree{
		fn:    f,
		idom:  make(map[*Block]*Block),
		order: make(map[*Block]int),
		num:   make(map[*Block]int),
		last:  make(map[*Block]int),
	}
	if len(f.Blocks) == 0 {
		return t
	}
	entry := f.Entry()

	// Reverse postorder over reachable blocks.
	var rpo []*Block
	seen := make(map[*Block]bool)
	var dfs func(*Block)
	dfs = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		rpo = append(rpo, b)
	}
	dfs(entry)
	for i, j := 0, len(rpo)-1; i < j; i, j = i+1, j-1 {
		rpo[i], rpo[j] = rpo[j], rpo[i]
	}
	for i, b := range rpo {
		t.order[b] = i
	}

	preds := f.Preds()
	t.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom *Block
			for _, p := range preds[b] {
				if t.idom[p] == nil {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != nil && t.idom[b] != newIdom {
				t.idom[b] = newIdom
				changed = true
			}
		}
	}

	// Number the dominator tree for O(1) queries.
	children := make(map[*Block][]*Block)
	for _, b := range rpo[1:] {
		children[t.idom[b]] = append(children[t.idom[b]], b)
	}
	n := 0
	var walk func(*Block)
	walk = func(b *Block) {
		t.num[b] = n
		n++
		for _, c := range children[b] {
			walk(c)
		}
		t.last[b] = n
	}
	walk(entry)
	return t
}

func (t *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for t.order[a] > t.order[b] {
			a = t.idom[a]
		}
		for t.order[b] > t.order[a] {
			b = t.idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator of b (nil for the entry block or
// unreachable blocks).
func (t *DomTree) IDom(b *Block) *Block {
	d := t.idom[b]
	if d == b {
		return nil
	}
	return d
}

// Reachable reports whether b is reachable from the entry.
func (t *DomTree) Reachable(b *Block) bool {
	_, ok := t.idom[b]
	return ok
}

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *Block) bool {
	na, oka := t.num[a]
	nb, okb := t.num[b]
	if !oka || !okb {
		return false
	}
	return na <= nb && nb < t.last[a]
}

// Frontier computes the dominance frontier of every reachable block:
// DF(b) is the set of blocks where b's dominance ends — exactly where
// SSA construction must place phi nodes for definitions in b.
func (t *DomTree) Frontier() map[*Block][]*Block {
	df := make(map[*Block][]*Block)
	preds := t.fn.Preds()
	for _, b := range t.fn.Blocks {
		if !t.Reachable(b) || len(preds[b]) < 2 {
			continue
		}
		for _, p := range preds[b] {
			if !t.Reachable(p) {
				continue
			}
			for runner := p; runner != t.idom[b] && runner != nil; runner = t.IDom(runner) {
				df[runner] = appendUnique(df[runner], b)
			}
		}
	}
	return df
}

func appendUnique(list []*Block, b *Block) []*Block {
	for _, x := range list {
		if x == b {
			return list
		}
	}
	return append(list, b)
}

// DominatesInstr reports whether the definition site of def dominates
// the use at instruction user (operand index gives phi edges special
// treatment: a phi use must be dominated at the end of the incoming
// block, not at the phi itself).
func (t *DomTree) DominatesInstr(def, user *Instr, operandIdx int) bool {
	db, ub := def.Parent, user.Parent
	if user.Op == OpPhi {
		// The incoming value must dominate the terminator of the edge's
		// predecessor block.
		in := user.IncomingBlocks[operandIdx]
		if db == in {
			return true // defined somewhere in the predecessor block
		}
		return t.Dominates(db, in)
	}
	if db == ub {
		return db.IndexOf(def) < ub.IndexOf(user)
	}
	// Invoke results are only usable in the normal destination, which
	// the invoke's block dominates if the result is used legally; the
	// block-level test below covers it.
	return t.Dominates(db, ub)
}
