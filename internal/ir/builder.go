package ir

import "fmt"

// Builder constructs instructions at the end of a current block,
// auto-naming results and checking operand types as it goes. It is the
// intended way to build IR programmatically; the parser uses the same
// constructors so both paths validate identically.
type Builder struct {
	Func *Function
	Cur  *Block
}

// NewBuilder returns a builder positioned at the end of block b.
func NewBuilder(b *Block) *Builder {
	return &Builder{Func: b.Parent, Cur: b}
}

// SetBlock repositions the builder at the end of block b.
func (bd *Builder) SetBlock(b *Block) {
	bd.Func = b.Parent
	bd.Cur = b
}

func (bd *Builder) emit(in *Instr) *Instr {
	if in.Nam == "" && !in.Ty.IsVoid() {
		in.Nam = bd.Func.nextName()
	}
	bd.Cur.Append(in)
	return in
}

func (bd *Builder) ctx() *TypeContext { return bd.Func.Parent.Ctx }

// Binary emits a two-operand arithmetic or bitwise instruction.
func (bd *Builder) Binary(op Opcode, lhs, rhs Value) *Instr {
	if !op.IsBinary() {
		panic("ir: Binary with opcode " + op.String())
	}
	if lhs.Type() != rhs.Type() {
		panic(fmt.Sprintf("ir: %s operand types differ: %s vs %s", op, lhs.Type(), rhs.Type()))
	}
	return bd.emit(&Instr{Op: op, Ty: lhs.Type(), Operands: []Value{lhs, rhs}})
}

// Add emits an integer add.
func (bd *Builder) Add(l, r Value) *Instr { return bd.Binary(OpAdd, l, r) }

// Sub emits an integer sub.
func (bd *Builder) Sub(l, r Value) *Instr { return bd.Binary(OpSub, l, r) }

// Mul emits an integer mul.
func (bd *Builder) Mul(l, r Value) *Instr { return bd.Binary(OpMul, l, r) }

// Alloca emits a stack allocation of elem, yielding elem*.
func (bd *Builder) Alloca(elem *Type) *Instr {
	return bd.emit(&Instr{Op: OpAlloca, Ty: bd.ctx().Pointer(elem), AllocTy: elem})
}

// Load emits a load through ptr.
func (bd *Builder) Load(ptr Value) *Instr {
	pt := ptr.Type()
	if !pt.IsPointer() {
		panic("ir: load of non-pointer " + pt.String())
	}
	return bd.emit(&Instr{Op: OpLoad, Ty: pt.Elem, Operands: []Value{ptr}})
}

// Store emits a store of v through ptr.
func (bd *Builder) Store(v, ptr Value) *Instr {
	pt := ptr.Type()
	if !pt.IsPointer() || pt.Elem != v.Type() {
		panic(fmt.Sprintf("ir: store %s through %s", v.Type(), pt))
	}
	return bd.emit(&Instr{Op: OpStore, Ty: bd.ctx().Void, Operands: []Value{v, ptr}})
}

// GEP emits a getelementptr with the given base pointer and indices and
// computes the result pointer type by walking the indexed types.
func (bd *Builder) GEP(ptr Value, indices ...Value) *Instr {
	t := ptr.Type()
	if !t.IsPointer() {
		panic("ir: gep of non-pointer " + t.String())
	}
	cur := t.Elem
	for i, idx := range indices {
		if i == 0 {
			continue // first index steps over the pointee itself
		}
		switch cur.Kind {
		case ArrayKind:
			cur = cur.Elem
		case StructKind:
			c, ok := idx.(*Const)
			if !ok {
				panic("ir: gep struct index must be constant")
			}
			cur = cur.Fields[c.IntVal]
		default:
			panic("ir: gep through non-aggregate " + cur.String())
		}
	}
	ops := append([]Value{ptr}, indices...)
	return bd.emit(&Instr{Op: OpGEP, Ty: bd.ctx().Pointer(cur), Operands: ops})
}

// Cast emits a conversion to the destination type.
func (bd *Builder) Cast(op Opcode, v Value, to *Type) *Instr {
	if !op.IsCast() {
		panic("ir: Cast with opcode " + op.String())
	}
	return bd.emit(&Instr{Op: op, Ty: to, Operands: []Value{v}})
}

// ICmp emits an integer comparison yielding i1.
func (bd *Builder) ICmp(p Pred, l, r Value) *Instr {
	if l.Type() != r.Type() {
		panic(fmt.Sprintf("ir: icmp operand types differ: %s vs %s", l.Type(), r.Type()))
	}
	return bd.emit(&Instr{Op: OpICmp, Ty: bd.ctx().I1, Predicate: p, Operands: []Value{l, r}})
}

// FCmp emits a floating-point comparison yielding i1.
func (bd *Builder) FCmp(p Pred, l, r Value) *Instr {
	if l.Type() != r.Type() {
		panic(fmt.Sprintf("ir: fcmp operand types differ: %s vs %s", l.Type(), r.Type()))
	}
	return bd.emit(&Instr{Op: OpFCmp, Ty: bd.ctx().I1, Predicate: p, Operands: []Value{l, r}})
}

// Select emits select cond, ifTrue, ifFalse.
func (bd *Builder) Select(cond, t, f Value) *Instr {
	if t.Type() != f.Type() {
		panic("ir: select arm types differ")
	}
	return bd.emit(&Instr{Op: OpSelect, Ty: t.Type(), Operands: []Value{cond, t, f}})
}

// Phi emits an empty phi of type ty; add edges with AddIncoming.
func (bd *Builder) Phi(ty *Type) *Instr {
	in := &Instr{Op: OpPhi, Ty: ty}
	if in.Nam == "" {
		in.Nam = bd.Func.nextName()
	}
	// Phis go before any non-phi instruction already in the block.
	bd.Cur.InsertAt(bd.Cur.FirstNonPhi(), in)
	return in
}

// Call emits a direct or indirect call.
func (bd *Builder) Call(callee Value, args ...Value) *Instr {
	sig := calleeSig(callee)
	checkArgs(sig, args)
	ops := append([]Value{callee}, args...)
	return bd.emit(&Instr{Op: OpCall, Ty: sig.Elem, Operands: ops})
}

// Invoke emits a call with explicit normal and unwind successors; it
// terminates the current block.
func (bd *Builder) Invoke(callee Value, args []Value, normal, unwind *Block) *Instr {
	sig := calleeSig(callee)
	checkArgs(sig, args)
	ops := append([]Value{callee}, args...)
	ops = append(ops, normal, unwind)
	return bd.emit(&Instr{Op: OpInvoke, Ty: sig.Elem, Operands: ops})
}

// Ret emits a return. Pass nil for void returns.
func (bd *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, Ty: bd.ctx().Void}
	if v != nil {
		in.Operands = []Value{v}
	}
	return bd.emit(in)
}

// Br emits an unconditional branch.
func (bd *Builder) Br(dst *Block) *Instr {
	return bd.emit(&Instr{Op: OpBr, Ty: bd.ctx().Void, Operands: []Value{dst}})
}

// CondBr emits a conditional branch on an i1 condition.
func (bd *Builder) CondBr(cond Value, t, f *Block) *Instr {
	return bd.emit(&Instr{Op: OpCondBr, Ty: bd.ctx().Void, Operands: []Value{cond, t, f}})
}

// Switch emits a switch terminator. cases alternate constant values and
// destination blocks.
func (bd *Builder) Switch(v Value, def *Block, cases ...Value) *Instr {
	if len(cases)%2 != 0 {
		panic("ir: switch cases must be value/block pairs")
	}
	ops := append([]Value{v, def}, cases...)
	return bd.emit(&Instr{Op: OpSwitch, Ty: bd.ctx().Void, Operands: ops})
}

// Unreachable emits an unreachable terminator.
func (bd *Builder) Unreachable() *Instr {
	return bd.emit(&Instr{Op: OpUnreachable, Ty: bd.ctx().Void})
}

// calleeSig extracts the function signature from a callee operand.
func calleeSig(callee Value) *Type {
	t := callee.Type()
	if t.Kind == FuncKind {
		return t
	}
	if t.IsPointer() && t.Elem.Kind == FuncKind {
		return t.Elem
	}
	panic("ir: callee is not a function: " + t.String())
}

func checkArgs(sig *Type, args []Value) {
	if !sig.Variadic && len(args) != len(sig.Fields) {
		panic(fmt.Sprintf("ir: call arity %d, want %d", len(args), len(sig.Fields)))
	}
	for i, a := range args {
		if i < len(sig.Fields) && a.Type() != sig.Fields[i] {
			panic(fmt.Sprintf("ir: call arg %d has type %s, want %s", i, a.Type(), sig.Fields[i]))
		}
	}
}
