package ir

import (
	"testing"
)

// TestPrintParseIdempotent: for modules built programmatically, print →
// parse → print must be a fixed point (stability implies the parser and
// printer agree on the whole surface syntax).
func TestPrintParseIdempotent(t *testing.T) {
	m := NewModule("fixed")
	c := m.Ctx
	m.NewGlobal("g64", c.I64, ConstInt(c.I64, -5))
	m.NewGlobal("tab", c.Array(3, c.F64), nil)

	// A function exercising every instruction category.
	f := m.NewFunc("all", c.Func(c.I32, c.I32, c.Pointer(c.I32), c.F64), "n", "p", "d")
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	body := f.NewBlock("body")
	other := f.NewBlock("other")
	exit := f.NewBlock("exit")

	bd := NewBuilder(entry)
	slot := bd.Alloca(c.Struct(c.I32, c.I64))
	fld := bd.GEP(slot, ConstInt(c.I64, 0), ConstInt(c.I32, 1))
	bd.Store(bd.Cast(OpSExt, f.Params[0], c.I64), fld)
	bd.Br(loop)

	bd.SetBlock(loop)
	i := bd.Phi(c.I32)
	cond := bd.ICmp(PredSLT, i, f.Params[0])
	bd.CondBr(cond, body, exit)

	bd.SetBlock(body)
	v := bd.Load(f.Params[1])
	sum := bd.Add(v, i)
	fv := bd.Cast(OpSIToFP, sum, c.F64)
	fc := bd.FCmp(PredOGT, fv, f.Params[2])
	sel := bd.Select(fc, sum, i)
	inext := bd.Add(sel, ConstInt(c.I32, 1))
	bd.Switch(inext, loop, ConstInt(c.I32, 7), other)

	bd.SetBlock(other)
	bd.Br(loop)

	i.AddIncoming(ConstInt(c.I32, 0), entry)
	i.AddIncoming(inext, body)
	i.AddIncoming(ConstInt(c.I32, 8), other)

	bd.SetBlock(exit)
	ld := bd.Load(fld)
	bd.Ret(bd.Cast(OpTrunc, ld, c.I32))

	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}

	s1 := ModuleString(m)
	m2, err := ParseModule(s1)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, s1)
	}
	if err := VerifyModule(m2); err != nil {
		t.Fatal(err)
	}
	s2 := ModuleString(m2)
	if s1 != s2 {
		t.Errorf("print/parse not idempotent:\n--- 1\n%s\n--- 2\n%s", s1, s2)
	}
}

func TestParseNegativeAndFloatConstants(t *testing.T) {
	src := `
define double @f(double %x) {
entry:
  %a = fadd double %x, -2.5
  %b = fmul double %a, 1.0
  %c = fadd double %b, 0.001
  ret double %c
}`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseModule(ModuleString(m)); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestCloneModulePreservesEverything(t *testing.T) {
	src := `
global @g i32 = 3
define i32 @callee(i32 %x) {
entry:
  %v = load i32, i32* @g
  %r = add i32 %x, %v
  ret i32 %r
}
define i32 @caller(i32 %x) {
entry:
  %r = call i32 @callee(i32 %x)
  ret i32 %r
}`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	cl := CloneModule(m)
	if err := VerifyModule(cl); err != nil {
		t.Fatal(err)
	}
	if ModuleString(cl) != ModuleString(m) {
		t.Errorf("clone renders differently:\n%s\nvs\n%s", ModuleString(cl), ModuleString(m))
	}
	// The clone must reference its own entities, not the original's.
	clCaller := cl.Func("caller")
	clCaller.Instructions(func(in *Instr) {
		for _, op := range in.Operands {
			if f, ok := op.(*Function); ok && f == m.Func("callee") {
				t.Fatal("clone call references original module's function")
			}
			if g, ok := op.(*GlobalVar); ok && g == m.Global("g") {
				t.Fatal("clone references original module's global")
			}
		}
	})
	// Mutating the clone must not affect the original.
	cl.RemoveFunc(cl.Func("callee"))
	if m.Func("callee") == nil {
		t.Fatal("removing from clone affected original")
	}
}
