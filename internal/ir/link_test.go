package ir

import (
	"strings"
	"testing"
)

func TestLinkDeclarationToDefinition(t *testing.T) {
	unitA := MustParseModule(`
declare i32 @helper(i32)
define i32 @main(i32 %x) {
entry:
  %r = call i32 @helper(i32 %x)
  ret i32 %r
}`)
	unitB := MustParseModule(`
define i32 @helper(i32 %v) {
entry:
  %r = mul i32 %v, 3
  ret i32 %r
}`)
	linked, err := LinkModules("prog", unitA, unitB)
	if err != nil {
		t.Fatal(err)
	}
	h := linked.Func("helper")
	if h == nil || h.IsDecl() {
		t.Fatal("helper not resolved to its definition")
	}
	// main's call must reference the LINKED helper, not unitA's decl.
	var callee Value
	linked.Func("main").Instructions(func(in *Instr) {
		if in.Op == OpCall {
			callee = in.Operands[0]
		}
	})
	if callee != Value(h) {
		t.Fatal("call site not remapped to linked definition")
	}
}

func TestLinkGlobals(t *testing.T) {
	a := MustParseModule(`
global @shared i64
define void @touch() {
entry:
  store i64 1, i64* @shared
  ret void
}`)
	b := MustParseModule(`
global @shared i64 = 42
global @own i32 = 7
`)
	linked, err := LinkModules("prog", a, b)
	if err != nil {
		t.Fatal(err)
	}
	g := linked.Global("shared")
	if g == nil || g.Init == nil || g.Init.IntVal != 42 {
		t.Fatalf("shared global not unified with initializer: %+v", g)
	}
	if linked.Global("own") == nil {
		t.Fatal("own global missing")
	}
	// touch's store must reference the linked global.
	linked.Func("touch").Instructions(func(in *Instr) {
		if in.Op == OpStore && in.Operands[1] != Value(g) {
			t.Fatal("store not remapped to linked global")
		}
	})
}

func TestLinkConflicts(t *testing.T) {
	def1 := `define i32 @f(i32 %x) {
entry:
  ret i32 %x
}`
	def2 := `define i32 @f(i32 %x) {
entry:
  %r = add i32 %x, 1
  ret i32 %r
}`
	if _, err := LinkModules("p", MustParseModule(def1), MustParseModule(def2)); err == nil || !strings.Contains(err.Error(), "multiply defined") {
		t.Errorf("duplicate definition: err = %v", err)
	}

	sigA := `declare i32 @g(i32)`
	sigB := `declare i64 @g(i32)`
	if _, err := LinkModules("p", MustParseModule(sigA), MustParseModule(sigB)); err == nil || !strings.Contains(err.Error(), "conflicting signatures") {
		t.Errorf("signature conflict: err = %v", err)
	}

	gA := `global @x i32 = 1`
	gB := `global @x i32 = 2`
	if _, err := LinkModules("p", MustParseModule(gA), MustParseModule(gB)); err == nil || !strings.Contains(err.Error(), "multiply initialized") {
		t.Errorf("initializer conflict: err = %v", err)
	}

	tA := `global @y i32`
	tB := `global @y i64`
	if _, err := LinkModules("p", MustParseModule(tA), MustParseModule(tB)); err == nil || !strings.Contains(err.Error(), "conflicting types") {
		t.Errorf("type conflict: err = %v", err)
	}
}

func TestLinkAcrossTypeContexts(t *testing.T) {
	// Each ParseModule creates its own context; LinkModules must
	// renormalize the second unit.
	a := MustParseModule(`
define i32 @a(i32 %x) {
entry:
  ret i32 %x
}`)
	b := MustParseModule(`
define i32 @b(i32 %x) {
entry:
  %r = call i32 @b(i32 %x)
  ret i32 %r
}`)
	linked, err := LinkModules("prog", a, b)
	if err != nil {
		t.Fatal(err)
	}
	if linked.Ctx != a.Ctx {
		t.Fatal("linked module should share the first input's context")
	}
	fb := linked.Func("b")
	// All types in the linked module must come from the shared context.
	if fb.ReturnType() != linked.Ctx.I32 {
		t.Fatal("types not renormalized into the shared context")
	}
}

func TestLinkEmpty(t *testing.T) {
	if _, err := LinkModules("p"); err == nil {
		t.Error("expected error for zero inputs")
	}
}
