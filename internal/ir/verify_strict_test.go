package ir

import (
	"strings"
	"testing"
)

// buildFunc assembles a single-block i32 f(i32, i32*) definition whose
// body is produced by fill, which returns the instructions preceding
// the final ret (the tests splice invalid instructions in by hand,
// bypassing the Builder's constructor checks).
func buildFunc(t *testing.T, fill func(m *Module, f *Function, b *Block) []*Instr) (*Module, *Function) {
	t.Helper()
	m := NewModule("strict")
	c := m.Ctx
	f := m.NewFunc("f", c.Func(c.I32, c.I32, c.Pointer(c.I32)))
	b := f.NewBlock("entry")
	for _, in := range fill(m, f, b) {
		b.Append(in)
	}
	b.Append(&Instr{Op: OpRet, Ty: c.Void, Operands: []Value{ConstInt(c.I32, 0)}, Parent: b})
	return m, f
}

// wantReject asserts VerifyFunc fails with a message containing frag.
func wantReject(t *testing.T, f *Function, frag string) {
	t.Helper()
	err := VerifyFunc(f)
	if err == nil {
		t.Fatalf("VerifyFunc accepted invalid IR, want error containing %q", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("VerifyFunc error %q does not mention %q", err, frag)
	}
}

func TestVerifyRejectsGEPNonPointerBase(t *testing.T) {
	_, f := buildFunc(t, func(m *Module, f *Function, b *Block) []*Instr {
		c := m.Ctx
		return []*Instr{{
			Op: OpGEP, Ty: c.Pointer(c.I32), Nam: "g",
			Operands: []Value{f.Params[0], ConstInt(c.I64, 0)},
		}}
	})
	wantReject(t, f, "gep base must be a pointer")
}

func TestVerifyRejectsGEPNonIntegerIndex(t *testing.T) {
	_, f := buildFunc(t, func(m *Module, f *Function, b *Block) []*Instr {
		c := m.Ctx
		return []*Instr{{
			Op: OpGEP, Ty: c.Pointer(c.I32), Nam: "g",
			Operands: []Value{f.Params[1], ConstFloat(c.F64, 0)},
		}}
	})
	wantReject(t, f, "must be an integer")
}

func TestVerifyRejectsGEPWrongResultType(t *testing.T) {
	_, f := buildFunc(t, func(m *Module, f *Function, b *Block) []*Instr {
		c := m.Ctx
		return []*Instr{{
			Op: OpGEP, Ty: c.Pointer(c.I64), Nam: "g", // walk yields i32*
			Operands: []Value{f.Params[1], ConstInt(c.I64, 1)},
		}}
	})
	wantReject(t, f, "gep result")
}

func TestVerifyRejectsGEPStructIndexOutOfRange(t *testing.T) {
	_, f := buildFunc(t, func(m *Module, f *Function, b *Block) []*Instr {
		c := m.Ctx
		st := c.Struct(c.I32, c.I64)
		slot := &Instr{Op: OpAlloca, Ty: c.Pointer(st), AllocTy: st, Nam: "s"}
		return []*Instr{slot, {
			Op: OpGEP, Ty: c.Pointer(c.I32), Nam: "g",
			Operands: []Value{slot, ConstInt(c.I64, 0), ConstInt(c.I32, 5)},
		}}
	})
	wantReject(t, f, "out of range")
}

func TestVerifyRejectsAllocaNonPointerResult(t *testing.T) {
	_, f := buildFunc(t, func(m *Module, f *Function, b *Block) []*Instr {
		c := m.Ctx
		return []*Instr{{Op: OpAlloca, Ty: c.I32, AllocTy: c.I32, Nam: "a"}}
	})
	wantReject(t, f, "alloca result")
}

func TestVerifyRejectsAllocaMissingAllocTy(t *testing.T) {
	_, f := buildFunc(t, func(m *Module, f *Function, b *Block) []*Instr {
		c := m.Ctx
		return []*Instr{{Op: OpAlloca, Ty: c.Pointer(c.I32), Nam: "a"}}
	})
	wantReject(t, f, "no allocated type")
}

func TestVerifyRejectsWideningTrunc(t *testing.T) {
	_, f := buildFunc(t, func(m *Module, f *Function, b *Block) []*Instr {
		c := m.Ctx
		return []*Instr{{Op: OpTrunc, Ty: c.I64, Nam: "t", Operands: []Value{f.Params[0]}}}
	})
	wantReject(t, f, "trunc must narrow")
}

func TestVerifyRejectsNarrowingExt(t *testing.T) {
	for _, op := range []Opcode{OpZExt, OpSExt} {
		_, f := buildFunc(t, func(m *Module, f *Function, b *Block) []*Instr {
			c := m.Ctx
			return []*Instr{{Op: op, Ty: c.I16, Nam: "x", Operands: []Value{f.Params[0]}}}
		})
		wantReject(t, f, "must widen an integer")
	}
}

func TestVerifyRejectsFloatCastWrongDirection(t *testing.T) {
	_, f := buildFunc(t, func(m *Module, f *Function, b *Block) []*Instr {
		c := m.Ctx
		wide := &Instr{Op: OpSIToFP, Ty: c.F32, Nam: "w", Operands: []Value{f.Params[0]}}
		bad := &Instr{Op: OpFPExt, Ty: c.F32, Nam: "e", Operands: []Value{wide}}
		return []*Instr{wide, bad}
	})
	wantReject(t, f, "fpext must widen")
}

func TestVerifyRejectsCrossKindPointerCast(t *testing.T) {
	_, f := buildFunc(t, func(m *Module, f *Function, b *Block) []*Instr {
		c := m.Ctx
		return []*Instr{{Op: OpPtrToInt, Ty: c.I64, Nam: "p", Operands: []Value{f.Params[0]}}}
	})
	wantReject(t, f, "ptrtoint wants pointer")
}

func TestVerifyRejectsMismatchedBitcast(t *testing.T) {
	_, f := buildFunc(t, func(m *Module, f *Function, b *Block) []*Instr {
		c := m.Ctx
		return []*Instr{{Op: OpBitcast, Ty: c.I64, Nam: "b", Operands: []Value{f.Params[0]}}}
	})
	wantReject(t, f, "bitcast between incompatible types")
}

func TestVerifyModuleRejectsDuplicateNames(t *testing.T) {
	m := NewModule("dup")
	c := m.Ctx
	mk := func() *Function {
		f := &Function{Nam: "twin", Sig: c.Func(c.Void), Parent: m}
		b := f.NewBlock("entry")
		b.Append(&Instr{Op: OpRet, Ty: c.Void, Parent: b})
		m.Funcs = append(m.Funcs, f)
		return f
	}
	mk()
	mk()
	err := VerifyModule(m)
	if err == nil || !strings.Contains(err.Error(), "defined 2 times") {
		t.Fatalf("VerifyModule = %v, want duplicate-name error", err)
	}
}

func TestVerifyModuleRejectsDanglingCallee(t *testing.T) {
	m := NewModule("dangling")
	c := m.Ctx
	ghost := m.NewFunc("ghost", c.Func(c.Void))
	gb := ghost.NewBlock("entry")
	gb.Append(&Instr{Op: OpRet, Ty: c.Void, Parent: gb})

	caller := m.NewFunc("caller", c.Func(c.Void))
	b := caller.NewBlock("entry")
	b.Append(&Instr{Op: OpCall, Ty: c.Void, Operands: []Value{ghost}, Parent: b})
	b.Append(&Instr{Op: OpRet, Ty: c.Void, Parent: b})

	if err := VerifyModule(m); err != nil {
		t.Fatalf("module should verify before deletion: %v", err)
	}
	m.RemoveFunc(ghost)
	err := VerifyModule(m)
	if err == nil || !strings.Contains(err.Error(), "call to @ghost which is not a function in the module") {
		t.Fatalf("VerifyModule = %v, want dangling-callee error", err)
	}
}

func TestVerifyModuleRejectsDanglingReference(t *testing.T) {
	m := NewModule("dangling-ref")
	c := m.Ctx
	ghost := m.NewFunc("ghost", c.Func(c.I32))
	gb := ghost.NewBlock("entry")
	gb.Append(&Instr{Op: OpRet, Ty: c.Void, Operands: []Value{ConstInt(c.I32, 0)}, Parent: gb})

	user := m.NewFunc("user", c.Func(c.Void))
	b := user.NewBlock("entry")
	cast := &Instr{Op: OpPtrToInt, Ty: c.I64, Nam: "addr", Operands: []Value{ghost}}
	b.Append(cast)
	b.Append(&Instr{Op: OpRet, Ty: c.Void, Parent: b})

	m.RemoveFunc(ghost)
	err := VerifyModule(m)
	if err == nil || !strings.Contains(err.Error(), "reference to @ghost") {
		t.Fatalf("VerifyModule = %v, want dangling-reference error", err)
	}
}
