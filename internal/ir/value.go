package ir

import (
	"math"
	"strconv"
)

// Value is anything that can appear as an instruction operand: constants,
// parameters, instructions, globals, functions and block labels.
type Value interface {
	// Type returns the value's type.
	Type() *Type
	// Ident renders the operand reference (e.g. "%x", "@f", "42").
	Ident() string
}

// Const is a constant value: an integer, a float, a null pointer, or an
// undef of any first-class type.
type Const struct {
	Ty *Type

	// IntVal holds the value of integer constants, interpreted in the
	// two's-complement domain of the type's width.
	IntVal int64

	// FloatVal holds the value of floating-point constants.
	FloatVal float64

	// Undef marks an undef constant.
	Undef bool

	// Null marks a null pointer constant.
	Null bool
}

// Type returns the constant's type.
func (c *Const) Type() *Type { return c.Ty }

// Ident renders the constant in operand position.
func (c *Const) Ident() string {
	switch {
	case c.Undef:
		return "undef"
	case c.Null:
		return "null"
	case c.Ty.IsFloat():
		if c.FloatVal == math.Trunc(c.FloatVal) && !math.IsInf(c.FloatVal, 0) {
			return strconv.FormatFloat(c.FloatVal, 'f', 1, 64)
		}
		return strconv.FormatFloat(c.FloatVal, 'g', -1, 64)
	default:
		return strconv.FormatInt(c.IntVal, 10)
	}
}

// ConstInt returns an integer constant of type ty, truncated to the
// type's width.
func ConstInt(ty *Type, v int64) *Const {
	if !ty.IsInt() {
		panic("ir: ConstInt on non-integer type " + ty.String())
	}
	return &Const{Ty: ty, IntVal: truncInt(v, ty.Bits)}
}

// ConstFloat returns a floating-point constant of type ty.
func ConstFloat(ty *Type, v float64) *Const {
	if !ty.IsFloat() {
		panic("ir: ConstFloat on non-float type " + ty.String())
	}
	if ty.Bits == 32 {
		v = float64(float32(v))
	}
	return &Const{Ty: ty, FloatVal: v}
}

// ConstNull returns the null constant of pointer type ty.
func ConstNull(ty *Type) *Const {
	if !ty.IsPointer() {
		panic("ir: ConstNull on non-pointer type " + ty.String())
	}
	return &Const{Ty: ty, Null: true}
}

// ConstUndef returns the undef constant of type ty.
func ConstUndef(ty *Type) *Const { return &Const{Ty: ty, Undef: true} }

// ConstBool returns an i1 constant in the given context.
func ConstBool(c *TypeContext, v bool) *Const {
	n := int64(0)
	if v {
		n = 1
	}
	return ConstInt(c.I1, n)
}

// truncInt sign-truncates v to the given bit width, keeping the stored
// representation canonical so equal constants compare equal.
func truncInt(v int64, bits int) int64 {
	if bits >= 64 {
		return v
	}
	shift := uint(64 - bits)
	return v << shift >> shift
}

// ConstEqual reports whether two constants are the same value of the
// same type.
func ConstEqual(a, b *Const) bool {
	if a.Ty != b.Ty {
		return false
	}
	switch {
	case a.Undef || b.Undef:
		return a.Undef == b.Undef
	case a.Null || b.Null:
		return a.Null == b.Null
	case a.Ty.IsFloat():
		return a.FloatVal == b.FloatVal || (math.IsNaN(a.FloatVal) && math.IsNaN(b.FloatVal))
	default:
		return a.IntVal == b.IntVal
	}
}

// Param is a function parameter.
type Param struct {
	Nam    string
	Ty     *Type
	Parent *Function
	Index  int
}

// Type returns the parameter's type.
func (p *Param) Type() *Type { return p.Ty }

// Ident renders the parameter reference.
func (p *Param) Ident() string { return "%" + p.Nam }

// Name returns the parameter's name without the sigil.
func (p *Param) Name() string { return p.Nam }

// GlobalVar is a module-level variable. Its value type is Elem; the
// global itself has pointer-to-Elem type, as in LLVM.
type GlobalVar struct {
	Nam  string
	Elem *Type
	// PtrTy caches the pointer type of the global.
	PtrTy *Type
	// Init is the optional scalar initializer (nil means zeroinitializer).
	Init *Const
}

// Type returns the pointer type of the global.
func (g *GlobalVar) Type() *Type { return g.PtrTy }

// Ident renders the global reference.
func (g *GlobalVar) Ident() string { return "@" + g.Nam }

// Name returns the global's name without the sigil.
func (g *GlobalVar) Name() string { return g.Nam }

// blockValue adapts a *Block to the Value interface for label operands.
func (b *Block) Type() *Type { return b.labelType }

// Ident renders the block label in operand position.
func (b *Block) Ident() string { return "%" + b.Nam }
