package ir

import "fmt"

// Opcode identifies an instruction operation. The numeric values are
// stable and dense; the fingerprint encodings use them directly.
type Opcode uint8

// Instruction opcodes. The set mirrors the LLVM instructions that appear
// in -Os-optimized scalar code, which is the population function merging
// operates on.
const (
	OpInvalid Opcode = iota

	// Terminators.
	OpRet
	OpBr     // unconditional: br label %dst
	OpCondBr // conditional:   br i1 %c, label %t, label %f
	OpSwitch
	OpUnreachable

	// Integer arithmetic.
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpUDiv
	OpSRem
	OpURem

	// Bitwise.
	OpShl
	OpLShr
	OpAShr
	OpAnd
	OpOr
	OpXor

	// Floating-point arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFRem

	// Memory.
	OpAlloca
	OpLoad
	OpStore
	OpGEP // getelementptr

	// Casts.
	OpTrunc
	OpZExt
	OpSExt
	OpFPTrunc
	OpFPExt
	OpFPToSI
	OpSIToFP
	OpPtrToInt
	OpIntToPtr
	OpBitcast

	// Comparisons and selection.
	OpICmp
	OpFCmp
	OpSelect

	// Other.
	OpPhi
	OpCall
	OpInvoke // call with normal/unwind successors; a terminator

	numOpcodes
)

// NumOpcodes is the number of distinct opcodes; opcode-frequency
// fingerprints have this dimensionality.
const NumOpcodes = int(numOpcodes)

var opcodeNames = [...]string{
	OpInvalid:     "invalid",
	OpRet:         "ret",
	OpBr:          "br",
	OpCondBr:      "condbr",
	OpSwitch:      "switch",
	OpUnreachable: "unreachable",
	OpAdd:         "add",
	OpSub:         "sub",
	OpMul:         "mul",
	OpSDiv:        "sdiv",
	OpUDiv:        "udiv",
	OpSRem:        "srem",
	OpURem:        "urem",
	OpShl:         "shl",
	OpLShr:        "lshr",
	OpAShr:        "ashr",
	OpAnd:         "and",
	OpOr:          "or",
	OpXor:         "xor",
	OpFAdd:        "fadd",
	OpFSub:        "fsub",
	OpFMul:        "fmul",
	OpFDiv:        "fdiv",
	OpFRem:        "frem",
	OpAlloca:      "alloca",
	OpLoad:        "load",
	OpStore:       "store",
	OpGEP:         "getelementptr",
	OpTrunc:       "trunc",
	OpZExt:        "zext",
	OpSExt:        "sext",
	OpFPTrunc:     "fptrunc",
	OpFPExt:       "fpext",
	OpFPToSI:      "fptosi",
	OpSIToFP:      "sitofp",
	OpPtrToInt:    "ptrtoint",
	OpIntToPtr:    "inttoptr",
	OpBitcast:     "bitcast",
	OpICmp:        "icmp",
	OpFCmp:        "fcmp",
	OpSelect:      "select",
	OpPhi:         "phi",
	OpCall:        "call",
	OpInvoke:      "invoke",
}

// String returns the mnemonic of the opcode.
func (op Opcode) String() string {
	if int(op) < len(opcodeNames) {
		return opcodeNames[op]
	}
	return fmt.Sprintf("opcode(%d)", uint8(op))
}

// IsTerminator reports whether instructions with this opcode end a block.
func (op Opcode) IsTerminator() bool {
	switch op {
	case OpRet, OpBr, OpCondBr, OpSwitch, OpUnreachable, OpInvoke:
		return true
	}
	return false
}

// IsBinary reports whether the opcode is a two-operand arithmetic or
// bitwise operation.
func (op Opcode) IsBinary() bool {
	return op >= OpAdd && op <= OpFRem
}

// IsCast reports whether the opcode is a conversion.
func (op Opcode) IsCast() bool {
	return op >= OpTrunc && op <= OpBitcast
}

// IsCommutative reports whether operand order is semantically
// irrelevant for the opcode.
func (op Opcode) IsCommutative() bool {
	switch op {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpFAdd, OpFMul:
		return true
	}
	return false
}

// HasSideEffects reports whether the instruction may write memory or
// transfer control, making it ineligible for dead-code removal.
func (op Opcode) HasSideEffects() bool {
	switch op {
	case OpStore, OpCall, OpInvoke:
		return true
	}
	return op.IsTerminator()
}

// Pred is a comparison predicate for icmp and fcmp.
type Pred uint8

// Comparison predicates. Integer predicates come first, then the ordered
// floating-point ones.
const (
	PredEQ Pred = iota
	PredNE
	PredSLT
	PredSLE
	PredSGT
	PredSGE
	PredULT
	PredULE
	PredUGT
	PredUGE

	PredOEQ
	PredONE
	PredOLT
	PredOLE
	PredOGT
	PredOGE

	numPreds
)

var predNames = [...]string{
	PredEQ:  "eq",
	PredNE:  "ne",
	PredSLT: "slt",
	PredSLE: "sle",
	PredSGT: "sgt",
	PredSGE: "sge",
	PredULT: "ult",
	PredULE: "ule",
	PredUGT: "ugt",
	PredUGE: "uge",
	PredOEQ: "oeq",
	PredONE: "one",
	PredOLT: "olt",
	PredOLE: "ole",
	PredOGT: "ogt",
	PredOGE: "oge",
}

// String returns the predicate mnemonic.
func (p Pred) String() string {
	if int(p) < len(predNames) {
		return predNames[p]
	}
	return fmt.Sprintf("pred(%d)", uint8(p))
}

// predByName maps mnemonics back to predicates for the parser.
var predByName = func() map[string]Pred {
	m := make(map[string]Pred, numPreds)
	for p, n := range predNames {
		m[n] = Pred(p)
	}
	return m
}()

// Instr is a single SSA instruction. Operand layout by opcode:
//
//	ret            [] or [value]
//	br             [destBlock]
//	condbr         [cond, trueBlock, falseBlock]
//	switch         [value, defaultBlock, case0Val, case0Block, ...]
//	invoke         [callee, args..., normalBlock, unwindBlock]
//	binary ops     [lhs, rhs]
//	alloca         []                     (allocated type in AllocTy)
//	load           [ptr]
//	store          [value, ptr]
//	getelementptr  [ptr, indices...]
//	casts          [value]
//	icmp/fcmp      [lhs, rhs]             (predicate in Predicate)
//	select         [cond, ifTrue, ifFalse]
//	phi            [incoming values...]   (blocks in IncomingBlocks)
//	call           [callee, args...]
type Instr struct {
	Op  Opcode
	Ty  *Type // result type; Void for instructions with no result
	Nam string

	Operands []Value

	// Predicate applies to icmp/fcmp.
	Predicate Pred

	// AllocTy is the allocated element type of an alloca.
	AllocTy *Type

	// IncomingBlocks parallels Operands for phi instructions.
	IncomingBlocks []*Block

	// Parent is the containing block.
	Parent *Block

	// mark caches membership in the instruction set most recently
	// stamped by Function.MarkInstrs (see Marked). Like Block.domGen,
	// a stale stamp can never match a live generation.
	mark uint64

	// scratchGen guards scratchCnt and scratchFlag: per-pass scratch
	// storage addressed by a mark generation, so analyses like DCE can
	// keep a use counter per instruction without allocating (or
	// clearing) a map per call. A stale generation reads as zero/false;
	// writers lazily reset on the first touch of a new generation.
	scratchGen  uint64
	scratchCnt  int32
	scratchFlag bool
}

// Marked reports whether the instruction carries the mark gen, i.e.
// was attached to the function when MarkInstrs returned gen and has
// not been restamped since. Marks are process-global and never
// reused, so a stale stamp never aliases a newer generation.
func (in *Instr) Marked(gen uint64) bool { return in.mark == gen }

// scratchReset lazily zeroes the scratch fields when gen is newer than
// the one they were last written under.
func (in *Instr) scratchReset(gen uint64) {
	if in.scratchGen != gen {
		in.scratchGen = gen
		in.scratchCnt = 0
		in.scratchFlag = false
	}
}

// ScratchAdd adds d to the instruction's scratch counter for
// generation gen and returns the new total. The counter starts at zero
// the first time any scratch accessor touches the instruction under
// gen, so callers never clear between passes.
func (in *Instr) ScratchAdd(gen uint64, d int32) int32 {
	in.scratchReset(gen)
	in.scratchCnt += d
	return in.scratchCnt
}

// ScratchCount reads the scratch counter for generation gen; an
// instruction never touched under gen reads as zero.
func (in *Instr) ScratchCount(gen uint64) int32 {
	if in.scratchGen != gen {
		return 0
	}
	return in.scratchCnt
}

// ScratchSetFlag sets the scratch flag for generation gen.
func (in *Instr) ScratchSetFlag(gen uint64, v bool) {
	in.scratchReset(gen)
	in.scratchFlag = v
}

// ScratchFlag reads the scratch flag for generation gen; an
// instruction never touched under gen reads as false.
func (in *Instr) ScratchFlag(gen uint64) bool {
	return in.scratchGen == gen && in.scratchFlag
}

// Type returns the result type.
func (in *Instr) Type() *Type { return in.Ty }

// Ident renders the instruction result reference.
func (in *Instr) Ident() string { return "%" + in.Nam }

// Name returns the instruction result name without the sigil.
func (in *Instr) Name() string { return in.Nam }

// IsTerminator reports whether the instruction ends its block.
func (in *Instr) IsTerminator() bool { return in.Op.IsTerminator() }

// Callee returns the called function operand of a call or invoke, which
// may be a *Function or any pointer-typed value for indirect calls.
func (in *Instr) Callee() Value {
	if in.Op != OpCall && in.Op != OpInvoke {
		panic("ir: Callee on " + in.Op.String())
	}
	return in.Operands[0]
}

// CallArgs returns the argument operands of a call or invoke.
func (in *Instr) CallArgs() []Value {
	switch in.Op {
	case OpCall:
		return in.Operands[1:]
	case OpInvoke:
		return in.Operands[1 : len(in.Operands)-2]
	}
	panic("ir: CallArgs on " + in.Op.String())
}

// Successors returns the successor blocks of a terminator, in operand
// order. It returns nil for non-terminators. The slice is freshly
// allocated; hot paths (the dominator tree, the CFG cleanups) iterate
// with NumSuccessors/Successor instead.
func (in *Instr) Successors() []*Block {
	n := in.NumSuccessors()
	if n == 0 {
		return nil
	}
	succs := make([]*Block, n)
	for i := 0; i < n; i++ {
		succs[i] = in.Successor(i)
	}
	return succs
}

// NumSuccessors returns how many successor blocks a terminator has
// (zero for non-terminators, ret and unreachable).
func (in *Instr) NumSuccessors() int {
	switch in.Op {
	case OpBr:
		return 1
	case OpCondBr:
		return 2
	case OpSwitch:
		return 1 + (len(in.Operands)-2)/2
	case OpInvoke:
		return 2
	}
	return 0
}

// Successor returns the i'th successor block, in the same operand
// order Successors uses.
func (in *Instr) Successor(i int) *Block {
	switch in.Op {
	case OpBr:
		return in.Operands[0].(*Block)
	case OpCondBr:
		return in.Operands[i+1].(*Block)
	case OpSwitch:
		if i == 0 {
			return in.Operands[1].(*Block)
		}
		return in.Operands[1+2*i].(*Block)
	case OpInvoke:
		n := len(in.Operands)
		return in.Operands[n-2+i].(*Block)
	}
	panic("ir: Successor on " + in.Op.String())
}

// ReplaceSuccessor rewrites every successor edge from old to new.
func (in *Instr) ReplaceSuccessor(old, new *Block) {
	for i, op := range in.Operands {
		if b, ok := op.(*Block); ok && b == old {
			in.Operands[i] = new
		}
	}
}

// PhiIncoming returns the incoming value for the given predecessor block
// of a phi, or nil if the block is not an incoming edge.
func (in *Instr) PhiIncoming(pred *Block) Value {
	for i, b := range in.IncomingBlocks {
		if b == pred {
			return in.Operands[i]
		}
	}
	return nil
}

// AddIncoming appends an incoming (value, block) edge to a phi.
func (in *Instr) AddIncoming(v Value, b *Block) {
	if in.Op != OpPhi {
		panic("ir: AddIncoming on " + in.Op.String())
	}
	in.Operands = append(in.Operands, v)
	in.IncomingBlocks = append(in.IncomingBlocks, b)
}

// ReplaceUsesOfWith substitutes new for every operand equal to old.
func (in *Instr) ReplaceUsesOfWith(old, new Value) {
	for i, op := range in.Operands {
		if op == old {
			in.Operands[i] = new
		}
	}
}
