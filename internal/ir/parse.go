package ir

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// ParseModule parses the textual IR syntax produced by WriteModule.
// Parsing is two-pass so functions and globals may reference entities
// defined later in the file.
func ParseModule(src string) (*Module, error) {
	p := &parser{lex: newLexer(src), headerOnly: true}
	m, err := p.parseModule()
	if err != nil {
		return nil, fmt.Errorf("ir: parse: line %d: %w", p.lex.line, err)
	}
	p2 := &parser{lex: newLexer(src), mod: m}
	if _, err := p2.parseModule(); err != nil {
		return nil, fmt.Errorf("ir: parse: line %d: %w", p2.lex.line, err)
	}
	return m, nil
}

// MustParseModule is ParseModule that panics on error; intended for
// tests and examples with literal IR.
func MustParseModule(src string) *Module {
	m, err := ParseModule(src)
	if err != nil {
		panic(err)
	}
	return m
}

// --- lexer ---

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokLocal  // %name
	tokGlobal // @name
	tokNumber
	tokString
	tokPunct
)

type token struct {
	kind tokKind
	text string
}

type lexer struct {
	src  string
	pos  int
	line int
	tok  token
}

func newLexer(src string) *lexer {
	l := &lexer{src: src, line: 1}
	l.next()
	return l
}

func (l *lexer) next() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == ';': // comment to end of line
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.src) {
		l.tok = token{kind: tokEOF}
		return
	}
	c := l.src[l.pos]
	switch {
	case c == '%' || c == '@':
		start := l.pos
		l.pos++
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.pos++
		}
		kind := tokLocal
		if c == '@' {
			kind = tokGlobal
		}
		l.tok = token{kind: kind, text: l.src[start+1 : l.pos]}
	case c == '"':
		start := l.pos
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		l.pos++ // closing quote
		l.tok = token{kind: tokString, text: l.src[start+1 : l.pos-1]}
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
			l.pos++
		}
		l.tok = token{kind: tokIdent, text: l.src[start:l.pos]}
	case c == '-' || isDigit(c):
		start := l.pos
		l.pos++
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
			l.src[l.pos] == 'e' || l.src[l.pos] == 'E' ||
			((l.src[l.pos] == '+' || l.src[l.pos] == '-') && (l.src[l.pos-1] == 'e' || l.src[l.pos-1] == 'E'))) {
			l.pos++
		}
		l.tok = token{kind: tokNumber, text: l.src[start:l.pos]}
	case strings.IndexByte("(){}[]=,:*.", c) >= 0:
		// "..." is one token.
		if c == '.' && strings.HasPrefix(l.src[l.pos:], "...") {
			l.pos += 3
			l.tok = token{kind: tokPunct, text: "..."}
			return
		}
		l.pos++
		l.tok = token{kind: tokPunct, text: string(c)}
	default:
		l.tok = token{kind: tokPunct, text: string(c)}
		l.pos++
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || unicode.IsLetter(rune(c))
}

func isIdentByte(c byte) bool {
	return c == '_' || c == '$' || c == '.' || c == '-' || unicode.IsLetter(rune(c)) || isDigit(c)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// --- parser ---

type parser struct {
	lex *lexer
	mod *Module
	fn  *Function

	// headerOnly marks the first pass: declare globals and function
	// signatures, skipping bodies, so later passes resolve forward
	// references between top-level entities.
	headerOnly bool

	locals map[string]Value
	blocks map[string]*Block

	// fwds tracks unresolved forward references by name.
	fwds map[string][]*fwdRef
}

// fwdRef is a placeholder operand for a local value referenced before
// its definition (legal through phis and cross-block uses).
type fwdRef struct {
	name string
	ty   *Type
}

func (f *fwdRef) Type() *Type   { return f.ty }
func (f *fwdRef) Ident() string { return "%" + f.name }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

func (p *parser) tok() token { return p.lex.tok }
func (p *parser) advance()   { p.lex.next() }
func (p *parser) at(text string) bool {
	return p.lex.tok.kind == tokPunct && p.lex.tok.text == text ||
		p.lex.tok.kind == tokIdent && p.lex.tok.text == text
}

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return p.errf("expected %q, got %q", text, p.lex.tok.text)
	}
	return nil
}

func (p *parser) parseModule() (*Module, error) {
	name := "module"
	if p.accept("module") {
		if p.tok().kind != tokString {
			return nil, p.errf("expected module name string")
		}
		name = p.tok().text
		p.advance()
	}
	if p.mod == nil {
		p.mod = NewModule(name)
	}
	for {
		switch {
		case p.tok().kind == tokEOF:
			if err := p.resolveFwds(); err != nil {
				return nil, err
			}
			return p.mod, nil
		case p.at("global"):
			if err := p.parseGlobal(); err != nil {
				return nil, err
			}
		case p.at("define"):
			if err := p.parseFunc(false); err != nil {
				return nil, err
			}
		case p.at("declare"):
			if err := p.parseFunc(true); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected token %q at top level", p.tok().text)
		}
	}
}

func (p *parser) parseGlobal() error {
	p.advance() // global
	if p.tok().kind != tokGlobal {
		return p.errf("expected @name after global")
	}
	name := p.tok().text
	p.advance()
	ty, err := p.parseType()
	if err != nil {
		return err
	}
	var init *Const
	if p.accept("=") {
		v, err := p.parseConstOfType(ty)
		if err != nil {
			return err
		}
		init = v
	}
	if p.headerOnly {
		if p.mod.Global(name) != nil {
			return p.errf("duplicate global @%s", name)
		}
		p.mod.NewGlobal(name, ty, init)
	}
	return nil
}

func (p *parser) parseFunc(decl bool) error {
	p.advance() // define / declare
	ret, err := p.parseType()
	if err != nil {
		return err
	}
	if p.tok().kind != tokGlobal {
		return p.errf("expected function name")
	}
	name := p.tok().text
	p.advance()
	if err := p.expect("("); err != nil {
		return err
	}
	var ptys []*Type
	var pnames []string
	variadic := false
	for !p.accept(")") {
		if len(ptys) > 0 {
			if err := p.expect(","); err != nil {
				return err
			}
		}
		if p.accept("...") {
			variadic = true
			continue
		}
		pt, err := p.parseType()
		if err != nil {
			return err
		}
		pn := ""
		if p.tok().kind == tokLocal {
			pn = p.tok().text
			p.advance()
		}
		ptys = append(ptys, pt)
		pnames = append(pnames, pn)
	}
	var sig *Type
	if variadic {
		sig = p.mod.Ctx.VariadicFunc(ret, ptys...)
	} else {
		sig = p.mod.Ctx.Func(ret, ptys...)
	}
	var f *Function
	if p.headerOnly {
		if p.mod.Func(name) != nil {
			return p.errf("duplicate function @%s", name)
		}
		f = p.mod.NewFunc(name, sig, pnames...)
	} else {
		f = p.mod.Func(name)
		if f == nil {
			return p.errf("internal: function @%s missing in second pass", name)
		}
	}
	if decl {
		return nil
	}
	if err := p.expect("{"); err != nil {
		return err
	}
	if p.headerOnly {
		// Skip the body; it parses in the second pass.
		depth := 1
		for depth > 0 {
			switch {
			case p.tok().kind == tokEOF:
				return p.errf("unterminated function body for @%s", name)
			case p.at("{"):
				depth++
			case p.at("}"):
				depth--
			}
			p.advance()
		}
		return nil
	}
	p.fn = f
	p.locals = make(map[string]Value)
	p.blocks = make(map[string]*Block)
	if p.fwds == nil {
		p.fwds = make(map[string][]*fwdRef)
	}
	for _, prm := range f.Params {
		p.locals[prm.Nam] = prm
	}
	defCount := 0
	defined := make(map[string]bool)
	for !p.accept("}") {
		if p.tok().kind != tokIdent {
			return p.errf("expected block label, got %q", p.tok().text)
		}
		label := p.tok().text
		p.advance()
		if err := p.expect(":"); err != nil {
			return err
		}
		if defined[label] {
			return p.errf("duplicate block label %s in @%s", label, name)
		}
		defined[label] = true
		b, err := p.getBlock(label)
		if err != nil {
			return err
		}
		// Blocks may be created early by forward branch references; keep
		// f.Blocks in textual definition order.
		f.RemoveBlock(b)
		f.Blocks = append(f.Blocks, nil)
		copy(f.Blocks[defCount+1:], f.Blocks[defCount:])
		f.Blocks[defCount] = b
		defCount++
		for !p.at("}") && !(p.tok().kind == tokIdent && p.peekIsLabel()) {
			in, err := p.parseInstr()
			if err != nil {
				return err
			}
			b.Append(in)
			if in.Nam != "" && !in.Ty.IsVoid() {
				p.locals[in.Nam] = in
			}
		}
	}
	if err := p.resolveFwds(); err != nil {
		return err
	}
	p.fn = nil
	return nil
}

// peekIsLabel reports whether the current ident token is a block label
// (followed by ':'). The lexer has one-token lookahead only, so peek at
// the raw input.
func (p *parser) peekIsLabel() bool {
	i := p.lex.pos
	for i < len(p.lex.src) && (p.lex.src[i] == ' ' || p.lex.src[i] == '\t') {
		i++
	}
	return i < len(p.lex.src) && p.lex.src[i] == ':'
}

// getBlock returns the block with the given label, creating it lazily so
// branches may reference blocks textually defined later. Labels must be
// printable as bare identifiers (block definitions print without a '%'
// sigil), so names that would re-lex as numbers are rejected.
func (p *parser) getBlock(label string) (*Block, error) {
	if b, ok := p.blocks[label]; ok {
		return b, nil
	}
	if label == "" || !isIdentStart(label[0]) {
		return nil, p.errf("bad block label %%%s", label)
	}
	b := p.fn.NewBlock(label)
	p.blocks[label] = b
	return b, nil
}

func (p *parser) parseType() (*Type, error) {
	t, err := p.parsePrimaryType()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at("*"):
			p.advance()
			t = p.mod.Ctx.Pointer(t)
		case p.at("("):
			p.advance()
			var params []*Type
			variadic := false
			for !p.accept(")") {
				if len(params) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				if p.accept("...") {
					variadic = true
					continue
				}
				pt, err := p.parseType()
				if err != nil {
					return nil, err
				}
				params = append(params, pt)
			}
			if variadic {
				t = p.mod.Ctx.VariadicFunc(t, params...)
			} else {
				t = p.mod.Ctx.Func(t, params...)
			}
		default:
			return t, nil
		}
	}
}

func (p *parser) parsePrimaryType() (*Type, error) {
	tk := p.tok()
	switch {
	case tk.kind == tokIdent && tk.text == "void":
		p.advance()
		return p.mod.Ctx.Void, nil
	case tk.kind == tokIdent && tk.text == "float":
		p.advance()
		return p.mod.Ctx.F32, nil
	case tk.kind == tokIdent && tk.text == "double":
		p.advance()
		return p.mod.Ctx.F64, nil
	case tk.kind == tokIdent && tk.text == "label":
		p.advance()
		return p.mod.Ctx.Label, nil
	case tk.kind == tokIdent && len(tk.text) > 1 && tk.text[0] == 'i':
		bits, err := strconv.Atoi(tk.text[1:])
		if err != nil {
			return nil, p.errf("bad integer type %q", tk.text)
		}
		p.advance()
		return p.mod.Ctx.Int(bits), nil
	case p.at("["):
		p.advance()
		if p.tok().kind != tokNumber {
			return nil, p.errf("expected array length")
		}
		n, err := strconv.Atoi(p.tok().text)
		if err != nil {
			return nil, err
		}
		p.advance()
		if err := p.expect("x"); err != nil {
			return nil, err
		}
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		return p.mod.Ctx.Array(n, elem), nil
	case p.at("{"):
		p.advance()
		var fields []*Type
		for !p.accept("}") {
			if len(fields) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			ft, err := p.parseType()
			if err != nil {
				return nil, err
			}
			fields = append(fields, ft)
		}
		return p.mod.Ctx.Struct(fields...), nil
	}
	return nil, p.errf("expected type, got %q", tk.text)
}

// parseConstOfType parses a literal constant of a known type.
func (p *parser) parseConstOfType(ty *Type) (*Const, error) {
	tk := p.tok()
	switch {
	case tk.kind == tokIdent && tk.text == "null":
		if !ty.IsPointer() {
			return nil, p.errf("null literal of non-pointer type %s", ty)
		}
		p.advance()
		return ConstNull(ty), nil
	case tk.kind == tokIdent && tk.text == "undef":
		p.advance()
		return ConstUndef(ty), nil
	case tk.kind == tokNumber:
		p.advance()
		if ty.IsFloat() {
			v, err := strconv.ParseFloat(tk.text, 64)
			if err != nil {
				return nil, err
			}
			return ConstFloat(ty, v), nil
		}
		if !ty.IsInt() {
			return nil, p.errf("integer literal of non-integer type %s", ty)
		}
		v, err := strconv.ParseInt(tk.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return ConstInt(ty, v), nil
	}
	return nil, p.errf("expected constant of type %s, got %q", ty, tk.text)
}

// parseRefOfType parses an operand reference whose type is already
// known: a local, a global, or a literal constant.
func (p *parser) parseRefOfType(ty *Type) (Value, error) {
	tk := p.tok()
	switch tk.kind {
	case tokLocal:
		p.advance()
		return p.lookupLocal(tk.text, ty), nil
	case tokGlobal:
		p.advance()
		if f := p.mod.Func(tk.text); f != nil {
			return f, nil
		}
		if g := p.mod.Global(tk.text); g != nil {
			return g, nil
		}
		return nil, p.errf("unknown global @%s", tk.text)
	default:
		return p.parseConstOfType(ty)
	}
}

// lookupLocal resolves a local name, returning a forward-reference
// placeholder if the name is not yet defined.
func (p *parser) lookupLocal(name string, ty *Type) Value {
	if v, ok := p.locals[name]; ok {
		return v
	}
	fw := &fwdRef{name: name, ty: ty}
	p.fwds[name] = append(p.fwds[name], fw)
	return fw
}

// resolveFwds patches all forward references recorded for the current
// function and fails on any that remain undefined.
func (p *parser) resolveFwds() error {
	if len(p.fwds) == 0 {
		return nil
	}
	byRef := make(map[*fwdRef]Value)
	for name, refs := range p.fwds {
		v, ok := p.locals[name]
		if !ok {
			return p.errf("undefined local %%%s", name)
		}
		for _, r := range refs {
			byRef[r] = v
		}
	}
	if p.fn != nil {
		p.fn.Instructions(func(in *Instr) {
			for i, op := range in.Operands {
				if fw, ok := op.(*fwdRef); ok {
					in.Operands[i] = byRef[fw]
				}
			}
		})
	}
	p.fwds = make(map[string][]*fwdRef)
	return nil
}

// parseTypedOperand parses "type ref" or "label %name".
func (p *parser) parseTypedOperand() (Value, error) {
	if p.at("label") {
		p.advance()
		if p.tok().kind != tokLocal {
			return nil, p.errf("expected label name")
		}
		b, err := p.getBlock(p.tok().text)
		if err != nil {
			return nil, err
		}
		p.advance()
		return b, nil
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	return p.parseRefOfType(ty)
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode)
	for op := OpRet; op < numOpcodes; op++ {
		m[op.String()] = op
	}
	return m
}()

func (p *parser) parseInstr() (*Instr, error) {
	name := ""
	if p.tok().kind == tokLocal {
		name = p.tok().text
		p.advance()
		if err := p.expect("="); err != nil {
			return nil, err
		}
	}
	if p.tok().kind != tokIdent {
		return nil, p.errf("expected opcode, got %q", p.tok().text)
	}
	mnemonic := p.tok().text
	p.advance()
	ctx := p.mod.Ctx

	switch mnemonic {
	case "ret":
		if p.accept("void") {
			return &Instr{Op: OpRet, Ty: ctx.Void}, nil
		}
		v, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpRet, Ty: ctx.Void, Operands: []Value{v}}, nil

	case "br":
		if p.at("label") {
			dst, err := p.parseTypedOperand()
			if err != nil {
				return nil, err
			}
			return &Instr{Op: OpBr, Ty: ctx.Void, Operands: []Value{dst}}, nil
		}
		cond, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		t, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		f, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpCondBr, Ty: ctx.Void, Operands: []Value{cond, t, f}}, nil

	case "switch":
		v, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		def, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		ops := []Value{v, def}
		if err := p.expect("["); err != nil {
			return nil, err
		}
		for !p.accept("]") {
			if len(ops) > 2 {
				p.accept(",")
			}
			cv, err := p.parseConstOfType(v.Type())
			if err != nil {
				return nil, err
			}
			if err := p.expect(":"); err != nil {
				return nil, err
			}
			dst, err := p.parseTypedOperand()
			if err != nil {
				return nil, err
			}
			ops = append(ops, cv, dst)
		}
		return &Instr{Op: OpSwitch, Ty: ctx.Void, Operands: ops}, nil

	case "unreachable":
		return &Instr{Op: OpUnreachable, Ty: ctx.Void}, nil

	case "alloca":
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpAlloca, Ty: ctx.Pointer(elem), AllocTy: elem, Nam: name}, nil

	case "load":
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		ptr, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpLoad, Ty: ty, Operands: []Value{ptr}, Nam: name}, nil

	case "store":
		v, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		ptr, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpStore, Ty: ctx.Void, Operands: []Value{v, ptr}}, nil

	case "getelementptr":
		ptr, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		ops := []Value{ptr}
		for p.accept(",") {
			idx, err := p.parseTypedOperand()
			if err != nil {
				return nil, err
			}
			ops = append(ops, idx)
		}
		rt, err := gepResultType(ctx, ptr.Type(), ops[1:])
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpGEP, Ty: rt, Operands: ops, Nam: name}, nil

	case "icmp", "fcmp":
		op := OpICmp
		if mnemonic == "fcmp" {
			op = OpFCmp
		}
		if p.tok().kind != tokIdent {
			return nil, p.errf("expected predicate")
		}
		pred, ok := predByName[p.tok().text]
		if !ok {
			return nil, p.errf("unknown predicate %q", p.tok().text)
		}
		p.advance()
		lhs, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		rhs, err := p.parseRefOfType(lhs.Type())
		if err != nil {
			return nil, err
		}
		return &Instr{Op: op, Ty: ctx.I1, Predicate: pred, Operands: []Value{lhs, rhs}, Nam: name}, nil

	case "select":
		cond, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		tv, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		fv, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		return &Instr{Op: OpSelect, Ty: tv.Type(), Operands: []Value{cond, tv, fv}, Nam: name}, nil

	case "phi":
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		in := &Instr{Op: OpPhi, Ty: ty, Nam: name}
		for {
			if err := p.expect("["); err != nil {
				return nil, err
			}
			v, err := p.parseRefOfType(ty)
			if err != nil {
				return nil, err
			}
			if err := p.expect(","); err != nil {
				return nil, err
			}
			if p.tok().kind != tokLocal {
				return nil, p.errf("expected incoming block")
			}
			b, err := p.getBlock(p.tok().text)
			if err != nil {
				return nil, err
			}
			p.advance()
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			in.Operands = append(in.Operands, v)
			in.IncomingBlocks = append(in.IncomingBlocks, b)
			if !p.accept(",") {
				break
			}
		}
		return in, nil

	case "call", "invoke":
		retTy, err := p.parseType()
		if err != nil {
			return nil, err
		}
		var callee Value
		switch p.tok().kind {
		case tokGlobal:
			f := p.mod.Func(p.tok().text)
			if f == nil {
				return nil, p.errf("call of unknown function @%s", p.tok().text)
			}
			callee = f
			p.advance()
		case tokLocal:
			nm := p.tok().text
			p.advance()
			v, ok := p.locals[nm]
			if !ok {
				return nil, p.errf("indirect call through undefined %%%s", nm)
			}
			callee = v
		default:
			return nil, p.errf("expected callee")
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		ops := []Value{callee}
		for !p.accept(")") {
			if len(ops) > 1 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			a, err := p.parseTypedOperand()
			if err != nil {
				return nil, err
			}
			ops = append(ops, a)
		}
		if mnemonic == "call" {
			return &Instr{Op: OpCall, Ty: retTy, Operands: ops, Nam: name}, nil
		}
		if err := p.expect("to"); err != nil {
			return nil, err
		}
		normal, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expect("unwind"); err != nil {
			return nil, err
		}
		unwind, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		ops = append(ops, normal, unwind)
		return &Instr{Op: OpInvoke, Ty: retTy, Operands: ops, Nam: name}, nil
	}

	op, ok := opByName[mnemonic]
	if !ok {
		return nil, p.errf("unknown opcode %q", mnemonic)
	}
	switch {
	case op.IsBinary():
		lhs, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		rhs, err := p.parseRefOfType(lhs.Type())
		if err != nil {
			return nil, err
		}
		return &Instr{Op: op, Ty: lhs.Type(), Operands: []Value{lhs, rhs}, Nam: name}, nil
	case op.IsCast():
		v, err := p.parseTypedOperand()
		if err != nil {
			return nil, err
		}
		if err := p.expect("to"); err != nil {
			return nil, err
		}
		to, err := p.parseType()
		if err != nil {
			return nil, err
		}
		return &Instr{Op: op, Ty: to, Operands: []Value{v}, Nam: name}, nil
	}
	return nil, p.errf("cannot parse opcode %q", mnemonic)
}

// gepResultType computes the pointer type produced by a GEP.
func gepResultType(ctx *TypeContext, ptrTy *Type, indices []Value) (*Type, error) {
	if !ptrTy.IsPointer() {
		return nil, fmt.Errorf("gep of non-pointer %s", ptrTy)
	}
	cur := ptrTy.Elem
	for i, idx := range indices {
		if i == 0 {
			continue
		}
		switch cur.Kind {
		case ArrayKind:
			cur = cur.Elem
		case StructKind:
			c, ok := idx.(*Const)
			if !ok {
				return nil, fmt.Errorf("gep struct index must be constant")
			}
			cur = cur.Fields[c.IntVal]
		default:
			return nil, fmt.Errorf("gep through non-aggregate %s", cur)
		}
	}
	return ctx.Pointer(cur), nil
}
