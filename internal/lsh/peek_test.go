package lsh

import (
	"math/rand"
	"sync"
	"testing"

	"f3m/internal/fingerprint"
)

// peekFixture builds an index over a clone-rich random population and
// returns it with the inserted signatures.
func peekFixture(seed int64, n int) (*Index, []fingerprint.MinHash) {
	rng := rand.New(rand.NewSource(seed))
	cfg := fingerprint.DefaultConfig()
	var sigs []fingerprint.MinHash
	for i := 0; i < n/2; i++ {
		base := randSeq(rng, 80+rng.Intn(60), 64)
		sigs = append(sigs, cfg.New(base), cfg.New(mutate(rng, base, 3, 64)))
	}
	ix := NewIndex(DefaultParams())
	for i, s := range sigs {
		ix.Insert(i, s)
	}
	return ix, sigs
}

// TestPeekCandidatesMatchesQuery: the read-only speculative lookup must
// see exactly the candidate set Query sees at the same index state —
// the whole determinism argument rests on Peek being pure accounting
// savings, not a different ranking.
func TestPeekCandidatesMatchesQuery(t *testing.T) {
	ix, sigs := peekFixture(3, 60)
	for id := range sigs {
		peeked := ix.PeekCandidates(id, sigs[id], 0.05, nil, 0)
		queried := ix.Query(id, sigs[id], 0.05)
		if len(peeked) != len(queried) {
			t.Fatalf("id %d: peek found %d candidates, query %d", id, len(peeked), len(queried))
		}
		for i := range peeked {
			if peeked[i] != queried[i] {
				t.Fatalf("id %d candidate %d: peek %+v != query %+v", id, i, peeked[i], queried[i])
			}
		}
	}
}

// TestPeekCandidatesLeavesStatsAlone: peeks must not move any index
// statistic — those counters belong to the sequential schedule.
func TestPeekCandidatesLeavesStatsAlone(t *testing.T) {
	ix, sigs := peekFixture(4, 40)
	before := ix.Stats()
	for id := range sigs {
		ix.PeekCandidates(id, sigs[id], 0.0, func(int) bool { return true }, 3)
	}
	if after := ix.Stats(); after != before {
		t.Errorf("stats moved under peeks: %+v -> %+v", before, after)
	}
}

// TestPeekCandidatesFilterAndTruncate: the accept filter excludes
// candidates before scoring and k truncates after the deterministic
// sort, mirroring how the speculation engine consumes it.
func TestPeekCandidatesFilterAndTruncate(t *testing.T) {
	ix, sigs := peekFixture(5, 40)
	for id := range sigs {
		all := ix.PeekCandidates(id, sigs[id], 0.0, nil, 0)
		if len(all) < 2 {
			continue
		}
		banned := all[0].ID
		filtered := ix.PeekCandidates(id, sigs[id], 0.0, func(c int) bool { return c != banned }, 0)
		for _, c := range filtered {
			if c.ID == banned {
				t.Fatalf("id %d: rejected candidate %d still returned", id, banned)
			}
		}
		if len(filtered) != len(all)-1 {
			t.Fatalf("id %d: filter removed %d candidates, want 1", id, len(all)-len(filtered))
		}
		if topk := ix.PeekCandidates(id, sigs[id], 0.0, nil, 2); len(topk) != 2 || topk[0] != all[0] || topk[1] != all[1] {
			t.Fatalf("id %d: top-2 peek %+v does not prefix full ranking", id, topk)
		}
		return
	}
	t.Skip("fixture produced no multi-candidate query")
}

// TestPeekCandidatesConcurrent: concurrent peeks against concurrent
// serialized authoritative queries (run under -race by check.sh).
func TestPeekCandidatesConcurrent(t *testing.T) {
	ix, sigs := peekFixture(6, 60)
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 30; it++ {
				id := (g*11 + it) % len(sigs)
				ix.PeekCandidates(id, sigs[id], 0.05, nil, 4)
			}
		}(g)
	}
	// The authoritative side stays serialized (one goroutine), as in
	// the pipeline.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for id := range sigs {
			ix.BestWhereN(id, sigs[id], 0.05, nil, 1)
		}
	}()
	wg.Wait()
}
