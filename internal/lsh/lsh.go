// Package lsh implements the Locality Sensitive Hashing index F3M uses
// to find merge candidates in just-above-linear time, plus the adaptive
// policy (Section III-D of the paper) that chooses the similarity
// threshold and band count from the program's function count.
//
// A MinHash fingerprint of k lanes is split into b non-overlapping
// bands of r rows (k = b*r). Each band is hashed into a bucket map;
// functions sharing at least one bucket are candidate pairs. The
// probability that two functions with MinHash similarity s share a
// bucket is 1-(1-s^r)^b (Equation 2), an S-curve that filters out
// dissimilar pairs without ever comparing them.
package lsh

import (
	"math"
	"sort"

	"f3m/internal/fingerprint"
)

// Params fixes the banding geometry and search limits.
type Params struct {
	// Rows per band (r). The adaptive policy always uses 2.
	Rows int

	// Bands (b). Fingerprint size k must be >= Rows*Bands; extra lanes
	// are ignored.
	Bands int

	// BucketCap limits fingerprint comparisons drawn from one bucket
	// (Section III-C). Overpopulated buckets come from ubiquitous
	// instruction shingles; capping them bounds the quadratic blowup
	// while highly similar pairs still meet in other buckets. Zero
	// means DefaultBucketCap; negative means unlimited.
	BucketCap int
}

// DefaultBucketCap is the paper's per-bucket comparison cap.
const DefaultBucketCap = 100

// DefaultParams returns the paper's static configuration: r=2, b=100
// (with k=200).
func DefaultParams() Params {
	return Params{Rows: 2, Bands: 100, BucketCap: DefaultBucketCap}
}

func (p Params) bucketCap() int {
	switch {
	case p.BucketCap == 0:
		return DefaultBucketCap
	case p.BucketCap < 0:
		return math.MaxInt
	default:
		return p.BucketCap
	}
}

// MatchProbability evaluates Equation 2: the chance that two items with
// MinHash similarity s collide in at least one band.
func (p Params) MatchProbability(s float64) float64 {
	return 1 - math.Pow(1-math.Pow(s, float64(p.Rows)), float64(p.Bands))
}

// Index is the bucket structure. It is not safe for concurrent writes.
type Index struct {
	params Params

	// buckets[band][bandHash] lists ids inserted with that band value.
	buckets []map[uint32][]int32

	// sigs keeps the inserted fingerprints for candidate scoring.
	sigs map[int32]fingerprint.MinHash

	// stamp/gen implement allocation-free per-query dedup for ids in
	// [0, len(stamp)); other ids fall back to a map.
	stamp []uint32
	gen   uint32

	// Stats accumulated since construction.
	stats IndexStats
}

// IndexStats reports search-behaviour counters used by the Fig. 16
// bucket-cap experiment.
type IndexStats struct {
	Inserted        int
	BucketsUsed     int
	MaxBucketLoad   int
	Comparisons     int64 // fingerprint comparisons performed by Query
	CapSkips        int64 // candidates skipped due to the bucket cap
	CandidatesFound int64
}

// NewIndex returns an empty index with the given parameters.
func NewIndex(params Params) *Index {
	if params.Rows <= 0 || params.Bands <= 0 {
		panic("lsh: non-positive banding parameters")
	}
	buckets := make([]map[uint32][]int32, params.Bands)
	for i := range buckets {
		buckets[i] = make(map[uint32][]int32)
	}
	return &Index{
		params:  params,
		buckets: buckets,
		sigs:    make(map[int32]fingerprint.MinHash),
	}
}

// Params returns the index parameters.
func (ix *Index) Params() Params { return ix.params }

// bandHashes slices the fingerprint into bands and hashes each.
func (ix *Index) bandHashes(mh fingerprint.MinHash) []uint32 {
	r, b := ix.params.Rows, ix.params.Bands
	if len(mh) < r*b {
		b = len(mh) / r
	}
	out := make([]uint32, b)
	buf := make([]uint32, r)
	for i := 0; i < b; i++ {
		for j := 0; j < r; j++ {
			buf[j] = mh[i*r+j]
		}
		out[i] = fingerprint.Hash32(buf)
	}
	return out
}

// Insert registers fingerprint mh under id.
func (ix *Index) Insert(id int, mh fingerprint.MinHash) {
	ix.sigs[int32(id)] = mh
	for band, h := range ix.bandHashes(mh) {
		lst := ix.buckets[band][h]
		if len(lst) == 0 {
			ix.stats.BucketsUsed++
		}
		lst = append(lst, int32(id))
		ix.buckets[band][h] = lst
		if len(lst) > ix.stats.MaxBucketLoad {
			ix.stats.MaxBucketLoad = len(lst)
		}
	}
	ix.stats.Inserted++
}

// Remove deletes id from the index so already-merged functions stop
// surfacing as candidates.
func (ix *Index) Remove(id int, mh fingerprint.MinHash) {
	delete(ix.sigs, int32(id))
	for band, h := range ix.bandHashes(mh) {
		lst := ix.buckets[band][h]
		for i, v := range lst {
			if v == int32(id) {
				ix.buckets[band][h] = append(lst[:i], lst[i+1:]...)
				break
			}
		}
	}
}

// Candidate is a scored match returned by Query.
type Candidate struct {
	ID         int
	Similarity float64
}

// Query returns candidates sharing at least one bucket with mh whose
// MinHash similarity is at least minSim, best first. The id given is
// excluded. Per bucket, at most BucketCap candidates are considered.
func (ix *Index) Query(id int, mh fingerprint.MinHash, minSim float64) []Candidate {
	cap_ := ix.params.bucketCap()
	ix.beginQuery(id)
	var out []Candidate
	for band, h := range ix.bandHashes(mh) {
		lst := ix.buckets[band][h]
		checked := 0
		for _, cand := range lst {
			if ix.seen(cand) {
				continue
			}
			if checked >= cap_ {
				ix.stats.CapSkips += int64(len(lst) - checked)
				break
			}
			checked++
			ix.mark(cand)
			sig := ix.sigs[cand]
			ix.stats.Comparisons++
			s := mh.Jaccard(sig)
			if s >= minSim {
				out = append(out, Candidate{ID: int(cand), Similarity: s})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].ID < out[j].ID
	})
	ix.stats.CandidatesFound += int64(len(out))
	return out
}

// Best returns the single most similar candidate, or ok=false when no
// bucket-sharing candidate reaches minSim.
func (ix *Index) Best(id int, mh fingerprint.MinHash, minSim float64) (Candidate, bool) {
	return ix.BestWhere(id, mh, minSim, nil)
}

// BestWhere returns the most similar candidate accepted by the filter
// (nil accepts all). Unlike Query it neither materializes nor sorts the
// candidate list, which is what makes per-function ranking cheap even
// when buckets are crowded.
func (ix *Index) BestWhere(id int, mh fingerprint.MinHash, minSim float64, accept func(int) bool) (Candidate, bool) {
	cap_ := ix.params.bucketCap()
	ix.beginQuery(id)
	best := Candidate{Similarity: -1}
	found := false
	for band, h := range ix.bandHashes(mh) {
		lst := ix.buckets[band][h]
		checked := 0
		for _, cand := range lst {
			if ix.seen(cand) {
				continue
			}
			if checked >= cap_ {
				ix.stats.CapSkips += int64(len(lst) - checked)
				break
			}
			checked++
			ix.mark(cand)
			if accept != nil && !accept(int(cand)) {
				continue
			}
			ix.stats.Comparisons++
			s := mh.Jaccard(ix.sigs[cand])
			if s < minSim {
				continue
			}
			if !found || s > best.Similarity || (s == best.Similarity && int(cand) < best.ID) {
				best = Candidate{ID: int(cand), Similarity: s}
				found = true
				if s == 1 {
					// A perfect match cannot be beaten; stop early.
					ix.stats.CandidatesFound++
					return best, true
				}
			}
		}
	}
	if found {
		ix.stats.CandidatesFound++
	}
	return best, found
}

// beginQuery resets the per-query dedup state and marks id itself.
func (ix *Index) beginQuery(id int) {
	ix.gen++
	if ix.gen == 0 { // wrapped: clear stamps
		for i := range ix.stamp {
			ix.stamp[i] = 0
		}
		ix.gen = 1
	}
	ix.mark(int32(id))
}

func (ix *Index) seen(id int32) bool {
	if int(id) < len(ix.stamp) {
		return ix.stamp[id] == ix.gen
	}
	ix.growStamp(int(id))
	return ix.stamp[id] == ix.gen
}

func (ix *Index) mark(id int32) {
	if int(id) >= len(ix.stamp) {
		ix.growStamp(int(id))
	}
	ix.stamp[id] = ix.gen
}

func (ix *Index) growStamp(id int) {
	n := len(ix.stamp)*2 + 16
	if n <= id {
		n = id + 1
	}
	grown := make([]uint32, n)
	copy(grown, ix.stamp)
	ix.stamp = grown
}

// Stats returns the accumulated counters.
func (ix *Index) Stats() IndexStats { return ix.stats }

// BucketLoadHistogram returns bucket populations sorted descending,
// feeding the Fig. 16 analysis of overpopulated buckets.
func (ix *Index) BucketLoadHistogram() []int {
	var loads []int
	for _, bm := range ix.buckets {
		for _, lst := range bm {
			loads = append(loads, len(lst))
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(loads)))
	return loads
}

// AdaptiveThreshold implements Equation 3: the similarity threshold as
// a function of the number of functions x in the program. Small
// programs keep a permissive 0.05; past 10^3.5 functions the threshold
// rises logarithmically, saturating at 0.4 for 10^7 and above.
func AdaptiveThreshold(numFuncs int) float64 {
	x := float64(numFuncs)
	switch {
	case x <= 0:
		return 0.05
	case x < math.Pow(10, 3.5):
		return 0.05
	case x > 1e7:
		return 0.4
	default:
		return (math.Log10(x) - 3.0) / 10
	}
}

// AdaptiveBands implements Equation 4: the smallest band count giving
// at least 90% discovery probability for pairs slightly above the
// threshold t, with r fixed at 2. Programs under 5000 functions use
// exactly 100 bands (the paper's static default).
func AdaptiveBands(t float64, numFuncs int) int {
	if numFuncs < 5000 {
		return 100
	}
	p := math.Pow(t+0.1, 2)
	b := int(math.Ceil(math.Log(0.1) / math.Log(1.0-p)))
	if b < 1 {
		b = 1
	}
	return b
}

// AdaptiveParams bundles Equations 3 and 4: threshold, bands, and the
// fingerprint size k = 2b implied by r=2.
func AdaptiveParams(numFuncs int) (t float64, params Params, k int) {
	t = AdaptiveThreshold(numFuncs)
	b := AdaptiveBands(t, numFuncs)
	params = Params{Rows: 2, Bands: b, BucketCap: DefaultBucketCap}
	return t, params, 2 * b
}
