// Package lsh implements the Locality Sensitive Hashing index F3M uses
// to find merge candidates in just-above-linear time, plus the adaptive
// policy (Section III-D of the paper) that chooses the similarity
// threshold and band count from the program's function count.
//
// A MinHash fingerprint of k lanes is split into b non-overlapping
// bands of r rows (k = b*r). Each band is hashed into a bucket map;
// functions sharing at least one bucket are candidate pairs. The
// probability that two functions with MinHash similarity s share a
// bucket is 1-(1-s^r)^b (Equation 2), an S-curve that filters out
// dissimilar pairs without ever comparing them.
//
// An Index is single-writer: Insert and Remove must not run
// concurrently with anything else, while PeekCandidates is read-only
// and safe for any number of concurrent callers between mutations.
// Both in-process consumers build on that split — the speculative
// merge stage's read-only speculators (internal/core), and the serving
// layer's sharded similarity store, which places one Index behind each
// shard's RWMutex (internal/serve).
package lsh

import (
	"math"
	"sort"
	"sync"

	"f3m/internal/fingerprint"
)

// Params fixes the banding geometry and search limits.
type Params struct {
	// Rows per band (r). The adaptive policy always uses 2.
	Rows int

	// Bands (b). Fingerprint size k must be >= Rows*Bands; extra lanes
	// are ignored.
	Bands int

	// BucketCap limits fingerprint comparisons drawn from one bucket
	// (Section III-C). Overpopulated buckets come from ubiquitous
	// instruction shingles; capping them bounds the quadratic blowup
	// while highly similar pairs still meet in other buckets. Zero
	// means DefaultBucketCap; negative means unlimited.
	BucketCap int
}

// DefaultBucketCap is the paper's per-bucket comparison cap.
const DefaultBucketCap = 100

// DefaultParams returns the paper's static configuration: r=2, b=100
// (with k=200).
func DefaultParams() Params {
	return Params{Rows: 2, Bands: 100, BucketCap: DefaultBucketCap}
}

func (p Params) bucketCap() int {
	switch {
	case p.BucketCap == 0:
		return DefaultBucketCap
	case p.BucketCap < 0:
		return math.MaxInt
	default:
		return p.BucketCap
	}
}

// MatchProbability evaluates Equation 2: the chance that two items with
// MinHash similarity s collide in at least one band.
func (p Params) MatchProbability(s float64) float64 {
	return 1 - math.Pow(1-math.Pow(s, float64(p.Rows)), float64(p.Bands))
}

// Index is the bucket structure. Its methods are not safe for
// concurrent use; BatchInsert parallelizes the build internally while
// keeping that single-threaded external contract.
type Index struct {
	params Params

	// buckets[band][bandHash] lists ids inserted with that band value.
	buckets []map[uint32][]int32

	// sigsDense keeps the inserted fingerprints for candidate scoring,
	// indexed by id for the dense ids the pipeline uses; out-of-range
	// ids fall back to sigsSparse. A nil entry means "not inserted".
	// Candidate ranking reads one fingerprint per comparison, so the
	// dense path avoids a map probe in the hottest loop of the search.
	sigsDense  []fingerprint.MinHash
	sigsSparse map[int32]fingerprint.MinHash

	// stamp/gen implement allocation-free per-query dedup for ids in
	// [0, len(stamp)); other ids fall back to a map.
	stamp []uint32
	gen   uint32

	// hashScratch is the reusable band-hash buffer of the sequential
	// entry points (Insert, Query, Best, BestWhereN). PeekCandidates is
	// documented safe to run concurrently with itself, so it must not
	// touch this and hashes into a per-call buffer instead.
	hashScratch []uint32

	// candScratch/simScratch are BestWhereN's reusable candidate and
	// similarity buffers; same sequential-only contract as hashScratch.
	candScratch []int32
	simScratch  []float64

	// Stats accumulated since construction.
	stats IndexStats
}

// IndexStats reports search-behaviour counters used by the Fig. 16
// bucket-cap experiment.
type IndexStats struct {
	Inserted        int
	BucketsUsed     int
	MaxBucketLoad   int
	Comparisons     int64 // fingerprint comparisons performed by Query
	CapSkips        int64 // candidates skipped due to the bucket cap
	CandidatesFound int64
}

// NewIndex returns an empty index with the given parameters.
func NewIndex(params Params) *Index {
	if params.Rows <= 0 || params.Bands <= 0 {
		panic("lsh: non-positive banding parameters")
	}
	buckets := make([]map[uint32][]int32, params.Bands)
	for i := range buckets {
		buckets[i] = make(map[uint32][]int32)
	}
	return &Index{
		params:     params,
		buckets:    buckets,
		sigsSparse: make(map[int32]fingerprint.MinHash),
	}
}

// Params returns the index parameters.
func (ix *Index) Params() Params { return ix.params }

// bandHashes slices the fingerprint into bands and hashes each, using
// the index's scratch buffer. Only the single-threaded entry points may
// call it; concurrent paths use bandHashesInto with their own buffer.
func (ix *Index) bandHashes(mh fingerprint.MinHash) []uint32 {
	ix.hashScratch = ix.bandHashesInto(mh, ix.hashScratch)
	return ix.hashScratch
}

// bandHashesInto hashes each band of mh into out (grown as needed) and
// returns it. Bands are hashed directly over the fingerprint slice, so
// the call allocates only when out is too small.
func (ix *Index) bandHashesInto(mh fingerprint.MinHash, out []uint32) []uint32 {
	r, b := ix.params.Rows, ix.params.Bands
	if len(mh) < r*b {
		b = len(mh) / r
	}
	if cap(out) < b {
		out = make([]uint32, b)
	}
	out = out[:b]
	for i := 0; i < b; i++ {
		out[i] = fingerprint.Hash32(mh[i*r : (i+1)*r])
	}
	return out
}

// sig returns the fingerprint inserted under id (nil if absent).
func (ix *Index) sig(id int32) fingerprint.MinHash {
	if int(id) < len(ix.sigsDense) && id >= 0 {
		return ix.sigsDense[id]
	}
	return ix.sigsSparse[id]
}

// setSig records mh under id, growing the dense table for small
// non-negative ids and falling back to the sparse map otherwise.
func (ix *Index) setSig(id int32, mh fingerprint.MinHash) {
	if id >= 0 {
		for int(id) >= len(ix.sigsDense) {
			ix.sigsDense = append(ix.sigsDense, nil)
		}
		ix.sigsDense[id] = mh
		return
	}
	ix.sigsSparse[id] = mh
}

// Insert registers fingerprint mh under id.
func (ix *Index) Insert(id int, mh fingerprint.MinHash) {
	ix.setSig(int32(id), mh)
	for band, h := range ix.bandHashes(mh) {
		lst := ix.buckets[band][h]
		if len(lst) == 0 {
			ix.stats.BucketsUsed++
		}
		lst = append(lst, int32(id))
		ix.buckets[band][h] = lst
		if len(lst) > ix.stats.MaxBucketLoad {
			ix.stats.MaxBucketLoad = len(lst)
		}
	}
	ix.stats.Inserted++
}

// BatchInsert inserts sigs[i] under id base+i for every i, using up to
// workers goroutines. The resulting index — bucket contents, the order
// of ids within each bucket, and the stats counters — is byte-identical
// to calling Insert sequentially in ascending id order, because the
// build is sharded by band: band hashes are computed in parallel over
// signatures, then each band map is populated by exactly one worker
// scanning ids in ascending order. Per-worker stat partials are merged
// deterministically at the end.
//
// BatchInsert must not run concurrently with other Index methods; once
// it returns the index is ready for (sequential) queries as usual.
func (ix *Index) BatchInsert(base int, sigs []fingerprint.MinHash, workers int) {
	if len(sigs) == 0 {
		return
	}
	if workers > len(sigs) {
		workers = len(sigs)
	}
	if base >= 0 && base+len(sigs) > len(ix.sigsDense) && cap(ix.sigsDense) < base+len(sigs) {
		grown := make([]fingerprint.MinHash, len(ix.sigsDense), base+len(sigs))
		copy(grown, ix.sigsDense)
		ix.sigsDense = grown
	}

	// Phase 1: band hashes, parallel over signatures. All per-signature
	// buffers are carved from one flat backing array (disjoint regions,
	// so the parallel writes never touch the same slot).
	hashes := make([][]uint32, len(sigs))
	nb := ix.params.Bands
	flatH := make([]uint32, len(sigs)*nb)
	hashSlot := func(i int) []uint32 {
		return ix.bandHashesInto(sigs[i], flatH[i*nb:i*nb:(i+1)*nb])
	}
	if workers <= 1 {
		for i := range sigs {
			hashes[i] = hashSlot(i)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(sigs); i += workers {
					hashes[i] = hashSlot(i)
				}
			}(w)
		}
		wg.Wait()
	}

	// Phase 2: bucket population, sharded by band so no band map is
	// touched by two goroutines and each scans ids in ascending order —
	// the result is byte-identical to sequential Inserts. Each band is
	// filled in two passes: count the batch's load per bucket, then
	// carve exact-capacity bucket lists out of one flat array instead of
	// growing thousands of small slices through append doubling. Lists
	// are carved with cap == final length, so a later Insert that
	// appends to one copies out rather than clobbering a neighbour.
	type partial struct {
		bucketsUsed, maxLoad int
	}
	fillBand := func(band int, cnt map[uint32]int32, p *partial) {
		clear(cnt)
		total := int32(0)
		for _, hs := range hashes {
			if band >= len(hs) {
				continue // short fingerprint: fewer bands
			}
			cnt[hs[band]]++
			total++
		}
		if total == 0 {
			return
		}
		bm := ix.buckets[band]
		if len(bm) == 0 {
			bm = make(map[uint32][]int32, len(cnt))
			ix.buckets[band] = bm
		}
		flat := make([]int32, total)
		off := int32(0)
		for i, hs := range hashes {
			if band >= len(hs) {
				continue
			}
			h := hs[band]
			lst, ok := bm[h]
			if !ok {
				c := cnt[h]
				lst = flat[off : off : off+c]
				off += c
				p.bucketsUsed++
			}
			lst = append(lst, int32(base+i))
			bm[h] = lst
			if len(lst) > p.maxLoad {
				p.maxLoad = len(lst)
			}
		}
	}

	parts := make([]partial, workers)
	if workers <= 1 {
		cnt := make(map[uint32]int32, len(sigs))
		for band := range ix.buckets {
			fillBand(band, cnt, &parts[0])
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				cnt := make(map[uint32]int32, len(sigs))
				for band := w; band < len(ix.buckets); band += workers {
					fillBand(band, cnt, &parts[w])
				}
			}(w)
		}
		wg.Wait()
	}

	for i, mh := range sigs {
		ix.setSig(int32(base+i), mh)
	}
	ix.stats.Inserted += len(sigs)
	for _, p := range parts {
		ix.stats.BucketsUsed += p.bucketsUsed
		if p.maxLoad > ix.stats.MaxBucketLoad {
			ix.stats.MaxBucketLoad = p.maxLoad
		}
	}
}

// Remove deletes id from the index so already-merged functions stop
// surfacing as candidates. Buckets emptied by the removal are deleted
// from the band maps (large-module runs would otherwise accumulate
// empty slices forever) and BucketsUsed is reconciled.
func (ix *Index) Remove(id int, mh fingerprint.MinHash) {
	if id >= 0 && id < len(ix.sigsDense) {
		ix.sigsDense[id] = nil
	} else {
		delete(ix.sigsSparse, int32(id))
	}
	for band, h := range ix.bandHashes(mh) {
		lst := ix.buckets[band][h]
		for i, v := range lst {
			if v == int32(id) {
				lst = append(lst[:i], lst[i+1:]...)
				if len(lst) == 0 {
					delete(ix.buckets[band], h)
					ix.stats.BucketsUsed--
				} else {
					ix.buckets[band][h] = lst
				}
				break
			}
		}
	}
}

// Candidate is a scored match returned by Query.
type Candidate struct {
	ID         int
	Similarity float64
}

// Query returns candidates sharing at least one bucket with mh whose
// MinHash similarity is at least minSim, best first. The id given is
// excluded. Per bucket, at most BucketCap candidates are considered.
func (ix *Index) Query(id int, mh fingerprint.MinHash, minSim float64) []Candidate {
	cap_ := ix.params.bucketCap()
	ix.beginQuery(id)
	var out []Candidate
	// Per-call buffer: PeekCandidates runs concurrently with itself and
	// with sequential queries, so the index scratch is off-limits.
	for band, h := range ix.bandHashesInto(mh, nil) {
		lst := ix.buckets[band][h]
		checked := 0
		for ci, cand := range lst {
			if ix.seen(cand) {
				continue
			}
			if checked >= cap_ {
				ix.stats.CapSkips += ix.cappedSkips(lst[ci:])
				break
			}
			checked++
			ix.mark(cand)
			sig := ix.sig(cand)
			ix.stats.Comparisons++
			s := mh.Jaccard(sig)
			if s >= minSim {
				out = append(out, Candidate{ID: int(cand), Similarity: s})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].ID < out[j].ID
	})
	ix.stats.CandidatesFound += int64(len(out))
	return out
}

// PeekCandidates is a read-only variant of Query for speculative
// lookups: it returns up to k accepted candidates (best first, k <= 0
// meaning unlimited) without touching the index's stats counters or
// the per-query dedup stamps — deduplication uses a local set instead.
// Because it mutates nothing, any number of PeekCandidates calls may
// run concurrently with each other and with the (externally
// serialized) authoritative Query/BestWhereN calls, which write only
// the stats and stamp state that Peek never reads. Callers must still
// prevent concurrent Insert/Remove/BatchInsert — the pipeline holds
// its commit lock across those.
//
// The candidate set matches what Query would see at the same index
// state; only the accounting differs, which is exactly why speculation
// uses this entry point (the authoritative counters must reflect the
// sequential schedule alone).
func (ix *Index) PeekCandidates(id int, mh fingerprint.MinHash, minSim float64, accept func(int) bool, k int) []Candidate {
	cap_ := ix.params.bucketCap()
	seen := make(map[int32]struct{}, 64)
	seen[int32(id)] = struct{}{}
	var out []Candidate
	// Per-call buffer: PeekCandidates runs concurrently with itself and
	// with sequential queries, so the index scratch is off-limits.
	for band, h := range ix.bandHashesInto(mh, nil) {
		lst := ix.buckets[band][h]
		checked := 0
		for _, cand := range lst {
			if _, dup := seen[cand]; dup {
				continue
			}
			if checked >= cap_ {
				break
			}
			checked++
			seen[cand] = struct{}{}
			if accept != nil && !accept(int(cand)) {
				continue
			}
			s := mh.Jaccard(ix.sig(cand))
			if s >= minSim {
				out = append(out, Candidate{ID: int(cand), Similarity: s})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		return out[i].ID < out[j].ID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Best returns the single most similar candidate, or ok=false when no
// bucket-sharing candidate reaches minSim.
func (ix *Index) Best(id int, mh fingerprint.MinHash, minSim float64) (Candidate, bool) {
	return ix.BestWhere(id, mh, minSim, nil)
}

// BestWhere returns the most similar candidate accepted by the filter
// (nil accepts all). Unlike Query it neither materializes nor sorts the
// full scored candidate list, which is what makes per-function ranking
// cheap even when buckets are crowded.
func (ix *Index) BestWhere(id int, mh fingerprint.MinHash, minSim float64, accept func(int) bool) (Candidate, bool) {
	return ix.BestWhereN(id, mh, minSim, accept, 1)
}

// minParallelCompares is the candidate count below which fanning the
// Jaccard comparisons out is not worth the goroutine startup. Purely a
// performance threshold: results and stats are identical either way.
const minParallelCompares = 128

// BestWhereN is BestWhere with the fingerprint comparisons — the bulk
// of the ranking cost — spread across up to workers goroutines. The
// result and every stats counter are byte-identical for any worker
// count: a sequential pass performs the order-dependent accounting
// (per-query dedup, cap skips, comparison counts) and fixes the
// candidate list, the parallel pass only evaluates the pure Jaccard
// similarities, and a final sequential fold applies the first-best
// tie-break exactly as a plain loop would.
func (ix *Index) BestWhereN(id int, mh fingerprint.MinHash, minSim float64, accept func(int) bool, workers int) (Candidate, bool) {
	cap_ := ix.params.bucketCap()
	ix.beginQuery(id)

	// Pass 1 (sequential): dedup and cap accounting select which
	// candidates get compared, in band order.
	cands := ix.candScratch[:0]
	for band, h := range ix.bandHashes(mh) {
		lst := ix.buckets[band][h]
		checked := 0
		for ci, cand := range lst {
			if ix.seen(cand) {
				continue
			}
			if checked >= cap_ {
				ix.stats.CapSkips += ix.cappedSkips(lst[ci:])
				break
			}
			checked++
			ix.mark(cand)
			if accept != nil && !accept(int(cand)) {
				continue
			}
			cands = append(cands, cand)
		}
	}
	ix.candScratch = cands
	ix.stats.Comparisons += int64(len(cands))

	// Pass 2: similarity per candidate; pure reads, so freely parallel.
	if cap(ix.simScratch) < len(cands) {
		ix.simScratch = make([]float64, len(cands))
	}
	sims := ix.simScratch[:len(cands)]
	if workers <= 1 || len(cands) < minParallelCompares {
		for i, cand := range cands {
			sims[i] = mh.Jaccard(ix.sig(cand))
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(cands); i += workers {
					sims[i] = mh.Jaccard(ix.sig(cands[i]))
				}
			}(w)
		}
		wg.Wait()
	}

	// Pass 3 (sequential): first-best fold with the lowest-id tie-break.
	best := Candidate{Similarity: -1}
	found := false
	for i, cand := range cands {
		s := sims[i]
		if s < minSim {
			continue
		}
		if !found || s > best.Similarity || (s == best.Similarity && int(cand) < best.ID) {
			best = Candidate{ID: int(cand), Similarity: s}
			found = true
		}
	}
	if found {
		ix.stats.CandidatesFound++
	}
	return best, found
}

// beginQuery resets the per-query dedup state and marks id itself.
func (ix *Index) beginQuery(id int) {
	ix.gen++
	if ix.gen == 0 { // wrapped: clear stamps
		for i := range ix.stamp {
			ix.stamp[i] = 0
		}
		ix.gen = 1
	}
	ix.mark(int32(id))
}

func (ix *Index) seen(id int32) bool {
	// Lookups never grow the stamp slice: an id beyond it has not been
	// marked this query (only mark allocates).
	if int(id) < len(ix.stamp) {
		return ix.stamp[id] == ix.gen
	}
	return false
}

// cappedSkips counts the candidates in rest that the bucket cap
// actually prevented from being checked. Ids already deduplicated by an
// earlier bucket of the same query were never going to be compared, so
// they do not count (naively charging len(rest) inflated the Fig. 16
// counters).
func (ix *Index) cappedSkips(rest []int32) int64 {
	n := int64(0)
	for _, cand := range rest {
		if !ix.seen(cand) {
			n++
		}
	}
	return n
}

func (ix *Index) mark(id int32) {
	if int(id) >= len(ix.stamp) {
		ix.growStamp(int(id))
	}
	ix.stamp[id] = ix.gen
}

func (ix *Index) growStamp(id int) {
	n := len(ix.stamp)*2 + 16
	if n <= id {
		n = id + 1
	}
	grown := make([]uint32, n)
	copy(grown, ix.stamp)
	ix.stamp = grown
}

// Stats returns the accumulated counters.
func (ix *Index) Stats() IndexStats { return ix.stats }

// BucketLoadHistogram returns bucket populations sorted descending,
// feeding the Fig. 16 analysis of overpopulated buckets.
func (ix *Index) BucketLoadHistogram() []int {
	var loads []int
	for _, bm := range ix.buckets {
		for _, lst := range bm {
			loads = append(loads, len(lst))
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(loads)))
	return loads
}

// AdaptiveThreshold implements Equation 3: the similarity threshold as
// a function of the number of functions x in the program. Small
// programs keep a permissive 0.05; past 10^3.5 functions the threshold
// rises logarithmically, saturating at 0.4 for 10^7 and above.
func AdaptiveThreshold(numFuncs int) float64 {
	x := float64(numFuncs)
	switch {
	case x <= 0:
		return 0.05
	case x < math.Pow(10, 3.5):
		return 0.05
	case x > 1e7:
		return 0.4
	default:
		return (math.Log10(x) - 3.0) / 10
	}
}

// AdaptiveBands implements Equation 4: the smallest band count giving
// at least 90% discovery probability for pairs slightly above the
// threshold t, with r fixed at 2. Programs under 5000 functions use
// exactly 100 bands (the paper's static default).
func AdaptiveBands(t float64, numFuncs int) int {
	if numFuncs < 5000 {
		return 100
	}
	p := math.Pow(t+0.1, 2)
	b := int(math.Ceil(math.Log(0.1) / math.Log(1.0-p)))
	if b < 1 {
		b = 1
	}
	return b
}

// AdaptiveParams bundles Equations 3 and 4: threshold, bands, and the
// fingerprint size k = 2b implied by r=2.
func AdaptiveParams(numFuncs int) (t float64, params Params, k int) {
	t = AdaptiveThreshold(numFuncs)
	b := AdaptiveBands(t, numFuncs)
	params = Params{Rows: 2, Bands: b, BucketCap: DefaultBucketCap}
	return t, params, 2 * b
}
