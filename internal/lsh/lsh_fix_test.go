package lsh

// Regression tests for the accounting and memory bugs fixed alongside
// the parallel pipeline, plus equivalence tests for the sharded
// BatchInsert build.

import (
	"math/rand"
	"reflect"
	"testing"

	"f3m/internal/fingerprint"
)

// capSig builds a K=4 fingerprint whose first band (lanes 0-1 under
// r=2) is shared while the remaining lanes vary per id, so every id
// collides in band 0 without being a perfect match (perfect matches
// would trigger BestWhere's early exit before the cap).
func capSig(id int) fingerprint.MinHash {
	return fingerprint.MinHash{1, 2, uint32(100 + id), uint32(200 + id)}
}

// TestCapSkipsCountsOnlySkipped: with cap 2 and six colliding ids, the
// query checks two candidates and the cap skips exactly the three
// unchecked others — not the already-deduplicated remainder the old
// `len(lst)-checked` accounting charged.
func TestCapSkipsCountsOnlySkipped(t *testing.T) {
	build := func() *Index {
		ix := NewIndex(Params{Rows: 2, Bands: 1, BucketCap: 2})
		for id := 0; id < 6; id++ {
			ix.Insert(id, capSig(id))
		}
		return ix
	}

	ix := build()
	ix.Query(0, capSig(0), 0)
	if got := ix.Stats().CapSkips; got != 3 {
		t.Errorf("Query CapSkips = %d, want 3 (ids 3,4,5)", got)
	}

	ix = build()
	ix.BestWhere(0, capSig(0), 0, nil)
	if got := ix.Stats().CapSkips; got != 3 {
		t.Errorf("BestWhere CapSkips = %d, want 3 (ids 3,4,5)", got)
	}
}

// TestCapSkipsIgnoresSeenInRemainder: with two identical bands, the
// second band's bucket holds only ids the first band already checked or
// skipped; candidates the dedup filter would have dropped anyway must
// not count as cap skips.
func TestCapSkipsIgnoresSeenInRemainder(t *testing.T) {
	ix := NewIndex(Params{Rows: 2, Bands: 2, BucketCap: 2})
	sig := fingerprint.MinHash{1, 2, 1, 2}
	for id := 0; id < 6; id++ {
		ix.Insert(id, sig)
	}
	// Band 0: ids 1,2 checked, unseen remainder {3,4,5} -> 3 skips.
	// Band 1: ids 0,1,2 seen, ids 3,4 checked, remainder {5} -> 1 skip.
	ix.Query(0, sig, 0)
	if got := ix.Stats().CapSkips; got != 4 {
		t.Errorf("CapSkips = %d, want 4 (3 in band 0, 1 in band 1)", got)
	}
}

// TestRemoveReclaimsBuckets: removing every id must delete the emptied
// bucket entries (no empty slices pinned in the band maps) and return
// BucketsUsed to its pre-insert value.
func TestRemoveReclaimsBuckets(t *testing.T) {
	cfg := fingerprint.DefaultConfig()
	rng := rand.New(rand.NewSource(17))
	ix := NewIndex(DefaultParams())
	sigs := make([]fingerprint.MinHash, 20)
	for i := range sigs {
		sigs[i] = cfg.New(randSeq(rng, 30, 50))
		ix.Insert(i, sigs[i])
	}
	if ix.Stats().BucketsUsed == 0 {
		t.Fatal("no buckets used after inserts")
	}
	for i := range sigs {
		ix.Remove(i, sigs[i])
	}
	if got := ix.Stats().BucketsUsed; got != 0 {
		t.Errorf("BucketsUsed = %d after removing everything, want 0", got)
	}
	if loads := ix.BucketLoadHistogram(); len(loads) != 0 {
		t.Errorf("%d bucket entries linger after removing everything", len(loads))
	}
}

// TestRemoveKeepsPopulatedBuckets: removing one of two co-bucketed ids
// must keep the bucket alive and findable.
func TestRemoveKeepsPopulatedBuckets(t *testing.T) {
	ix := NewIndex(Params{Rows: 2, Bands: 1})
	a := fingerprint.MinHash{1, 2, 7, 8}
	b := fingerprint.MinHash{1, 2, 7, 9}
	c := fingerprint.MinHash{1, 2, 7, 10}
	ix.Insert(0, a)
	ix.Insert(1, b)
	ix.Insert(2, c)
	ix.Remove(1, b)
	if got := ix.Stats().BucketsUsed; got != 1 {
		t.Errorf("BucketsUsed = %d, want 1 (bucket still holds ids 0,2)", got)
	}
	if _, ok := ix.Best(0, a, 0); !ok {
		t.Error("surviving co-bucketed candidate not found after Remove")
	}
}

// TestSeenDoesNotGrowStamp: the read path of the per-query dedup filter
// must not allocate; only mark may grow the stamp slice.
func TestSeenDoesNotGrowStamp(t *testing.T) {
	ix := NewIndex(DefaultParams())
	ix.beginQuery(0)
	n := len(ix.stamp)
	far := int32(n + 1000)
	if ix.seen(far) {
		t.Error("unmarked id reported seen")
	}
	if len(ix.stamp) != n {
		t.Errorf("seen grew stamp: %d -> %d", n, len(ix.stamp))
	}
	ix.mark(far)
	if !ix.seen(far) {
		t.Error("marked id not reported seen")
	}
	if len(ix.stamp) <= int(far) {
		t.Errorf("mark did not grow stamp to cover id %d", far)
	}
}

// TestBatchInsertMatchesSequential: for any worker count the sharded
// build must leave the index byte-identical to sequential insertion —
// bucket contents and order, stats, and every query answer.
func TestBatchInsertMatchesSequential(t *testing.T) {
	cfg := fingerprint.DefaultConfig()
	rng := rand.New(rand.NewSource(5))
	sigs := make([]fingerprint.MinHash, 300)
	base := randSeq(rng, 40, 30)
	for i := range sigs {
		// A mix of near-clones and unrelated sequences so buckets have
		// realistic crowding.
		if i%3 == 0 {
			sigs[i] = cfg.New(mutate(rng, base, 3, 30))
		} else {
			sigs[i] = cfg.New(randSeq(rng, 40, 30))
		}
	}

	seq := NewIndex(DefaultParams())
	for i, s := range sigs {
		seq.Insert(i, s)
	}
	buildStats := seq.stats
	answers := make([][]Candidate, len(sigs))
	for i := range sigs {
		answers[i] = seq.Query(i, sigs[i], 0.2)
	}
	queryStats := seq.stats

	for _, w := range []int{1, 2, 3, 8, 64} {
		par := NewIndex(DefaultParams())
		par.BatchInsert(0, sigs, w)
		if !reflect.DeepEqual(seq.buckets, par.buckets) {
			t.Fatalf("workers=%d: bucket maps differ from sequential build", w)
		}
		if par.stats != buildStats {
			t.Fatalf("workers=%d: build stats %+v differ from sequential %+v", w, par.stats, buildStats)
		}
		for i := range sigs {
			if got := par.Query(i, sigs[i], 0.2); !reflect.DeepEqual(got, answers[i]) {
				t.Fatalf("workers=%d: query %d differs: %v vs %v", w, i, got, answers[i])
			}
		}
		if par.stats != queryStats {
			t.Fatalf("workers=%d: post-query stats %+v diverge from %+v", w, par.stats, queryStats)
		}
	}
}

// TestBestWhereNMatchesSequential: the fanned-out ranking query must
// return the same winner and accumulate the same stats as the
// sequential BestWhere for every worker count, including under an
// accept filter.
func TestBestWhereNMatchesSequential(t *testing.T) {
	cfg := fingerprint.DefaultConfig()
	rng := rand.New(rand.NewSource(23))
	sigs := make([]fingerprint.MinHash, 400)
	base := randSeq(rng, 40, 12) // small alphabet: crowded buckets
	for i := range sigs {
		sigs[i] = cfg.New(mutate(rng, base, rng.Intn(20), 12))
	}
	reject := func(id int) bool { return id%5 != 0 }

	type outcome struct {
		best  Candidate
		found bool
		stats IndexStats
	}
	runAll := func(workers int) []outcome {
		ix := NewIndex(Params{Rows: 2, Bands: 100, BucketCap: 10})
		ix.BatchInsert(0, sigs, workers)
		out := make([]outcome, 0, 2*len(sigs))
		for i := range sigs {
			best, found := ix.BestWhereN(i, sigs[i], 0.3, nil, workers)
			out = append(out, outcome{best, found, ix.stats})
			best, found = ix.BestWhereN(i, sigs[i], 0.3, reject, workers)
			out = append(out, outcome{best, found, ix.stats})
		}
		return out
	}

	want := runAll(1)
	for _, w := range []int{2, 4, 9} {
		got := runAll(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: query %d: %+v, want %+v", w, i, got[i], want[i])
			}
		}
	}
}

// TestBatchInsertAppendsToExistingIndex: sharded insertion into a
// non-empty index must extend buckets exactly like sequential Inserts.
func TestBatchInsertAppendsToExistingIndex(t *testing.T) {
	cfg := fingerprint.DefaultConfig()
	rng := rand.New(rand.NewSource(9))
	first := make([]fingerprint.MinHash, 50)
	second := make([]fingerprint.MinHash, 50)
	for i := range first {
		first[i] = cfg.New(randSeq(rng, 30, 20))
		second[i] = cfg.New(randSeq(rng, 30, 20))
	}

	seq := NewIndex(DefaultParams())
	par := NewIndex(DefaultParams())
	for i, s := range first {
		seq.Insert(i, s)
		par.Insert(i, s)
	}
	for i, s := range second {
		seq.Insert(len(first)+i, s)
	}
	par.BatchInsert(len(first), second, 4)

	if !reflect.DeepEqual(seq.buckets, par.buckets) {
		t.Fatal("bucket maps differ after appending batch")
	}
	if seq.stats != par.stats {
		t.Fatalf("stats differ: %+v vs %+v", par.stats, seq.stats)
	}
}
