package lsh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"f3m/internal/fingerprint"
)

// randSeq produces a random encoded-instruction sequence.
func randSeq(rng *rand.Rand, n, alphabet int) []fingerprint.Encoded {
	seq := make([]fingerprint.Encoded, n)
	for i := range seq {
		seq[i] = fingerprint.Encoded(rng.Intn(alphabet))
	}
	return seq
}

// mutate returns a copy with the given number of point mutations.
func mutate(rng *rand.Rand, seq []fingerprint.Encoded, edits, alphabet int) []fingerprint.Encoded {
	out := append([]fingerprint.Encoded(nil), seq...)
	for i := 0; i < edits; i++ {
		out[rng.Intn(len(out))] = fingerprint.Encoded(rng.Intn(alphabet))
	}
	return out
}

func TestQueryFindsNearClone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cfg := fingerprint.DefaultConfig()
	ix := NewIndex(DefaultParams())

	base := randSeq(rng, 120, 64)
	clone := mutate(rng, base, 4, 64)
	sigs := []fingerprint.MinHash{cfg.New(base), cfg.New(clone)}
	// Plus unrelated noise functions.
	for i := 0; i < 50; i++ {
		sigs = append(sigs, cfg.New(randSeq(rng, 100+rng.Intn(60), 64)))
	}
	for i, s := range sigs {
		ix.Insert(i, s)
	}

	best, ok := ix.Best(0, sigs[0], 0.0)
	if !ok {
		t.Fatal("no candidate found for near-clone")
	}
	if best.ID != 1 {
		t.Errorf("best candidate = %d (sim %.2f), want 1", best.ID, best.Similarity)
	}
	if best.Similarity < 0.5 {
		t.Errorf("near-clone similarity %.2f too low", best.Similarity)
	}
}

func TestQueryExcludesSelfAndRespectsThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cfg := fingerprint.DefaultConfig()
	ix := NewIndex(DefaultParams())
	var sigs []fingerprint.MinHash
	for i := 0; i < 20; i++ {
		sigs = append(sigs, cfg.New(randSeq(rng, 80, 16)))
	}
	for i, s := range sigs {
		ix.Insert(i, s)
	}
	for i, s := range sigs {
		for _, c := range ix.Query(i, s, 0.3) {
			if c.ID == i {
				t.Fatal("query returned the queried id")
			}
			if c.Similarity < 0.3 {
				t.Fatalf("candidate below threshold: %v", c.Similarity)
			}
		}
	}
}

func TestRemove(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := fingerprint.DefaultConfig()
	ix := NewIndex(DefaultParams())
	base := randSeq(rng, 100, 32)
	a := cfg.New(base)
	b := cfg.New(mutate(rng, base, 2, 32))
	ix.Insert(0, a)
	ix.Insert(1, b)
	if _, ok := ix.Best(0, a, 0.0); !ok {
		t.Fatal("expected candidate before removal")
	}
	ix.Remove(1, b)
	if c, ok := ix.Best(0, a, 0.0); ok {
		t.Fatalf("candidate %d survived removal", c.ID)
	}
}

func TestBucketCapLimitsComparisons(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	cfg := fingerprint.DefaultConfig()

	// All-identical fingerprints land in the same buckets, creating the
	// pathological overpopulated-bucket case from Sec. III-C.
	seq := randSeq(rng, 50, 8)
	sig := cfg.New(seq)

	capped := NewIndex(Params{Rows: 2, Bands: 2, BucketCap: 10})
	uncapped := NewIndex(Params{Rows: 2, Bands: 2, BucketCap: -1})
	const n = 200
	for i := 0; i < n; i++ {
		capped.Insert(i, sig)
		uncapped.Insert(i, sig)
	}
	capped.Query(0, sig, 0.0)
	uncapped.Query(0, sig, 0.0)

	cs, us := capped.Stats(), uncapped.Stats()
	if cs.Comparisons >= us.Comparisons {
		t.Errorf("cap did not reduce comparisons: %d vs %d", cs.Comparisons, us.Comparisons)
	}
	if cs.CapSkips == 0 {
		t.Error("expected cap skips on overpopulated bucket")
	}
	// Even capped, identical items are still found via the first bucket.
	if got := capped.Query(0, sig, 0.9); len(got) == 0 {
		t.Error("cap prevented finding identical fingerprints")
	}
}

func TestMatchProbability(t *testing.T) {
	p := DefaultParams() // r=2, b=100
	if got := p.MatchProbability(0); got != 0 {
		t.Errorf("P(0) = %v", got)
	}
	if got := p.MatchProbability(1); math.Abs(got-1) > 1e-12 {
		t.Errorf("P(1) = %v", got)
	}
	// Equation 2 at s=0.3: 1-(1-0.09)^100 ≈ 0.99992.
	if got := p.MatchProbability(0.3); math.Abs(got-0.99992) > 1e-4 {
		t.Errorf("P(0.3) = %v", got)
	}
	// Monotonic in s.
	prev := -1.0
	for s := 0.0; s <= 1.0; s += 0.05 {
		cur := p.MatchProbability(s)
		if cur < prev {
			t.Fatalf("MatchProbability not monotonic at %v", s)
		}
		prev = cur
	}
}

// TestCollisionRateMatchesEquation2 validates the implementation
// empirically: generate pairs with known MinHash similarity and check
// the bucket-collision rate tracks 1-(1-s^r)^b.
func TestCollisionRateMatchesEquation2(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	cfg := &fingerprint.Config{K: 200, ShingleSize: 2, Seed: 11}
	params := Params{Rows: 2, Bands: 25} // fewer bands so the curve has slack
	const pairs = 300

	var lowSimCollide, lowSimTotal, highSimCollide, highSimTotal int
	for i := 0; i < pairs; i++ {
		base := randSeq(rng, 150, 48)
		far := mutate(rng, base, 120, 48) // heavily mutated
		near := mutate(rng, base, 10, 48) // lightly mutated
		sb, sf, sn := cfg.New(base), cfg.New(far), cfg.New(near)

		ix := NewIndex(params)
		ix.Insert(0, sb)
		ix.Insert(1, sf)
		ix.Insert(2, sn)

		if sb.Jaccard(sf) < 0.2 {
			lowSimTotal++
			if hasCandidate(ix.Query(0, sb, 0), 1) {
				lowSimCollide++
			}
		}
		if sb.Jaccard(sn) > 0.6 {
			highSimTotal++
			if hasCandidate(ix.Query(0, sb, 0), 2) {
				highSimCollide++
			}
		}
	}
	if highSimTotal > 20 {
		rate := float64(highSimCollide) / float64(highSimTotal)
		if rate < 0.95 {
			t.Errorf("high-similarity collision rate %.2f, want >= 0.95", rate)
		}
	}
	if lowSimTotal > 20 {
		rate := float64(lowSimCollide) / float64(lowSimTotal)
		// At s<0.2, Eq. 2 gives P < 1-(1-0.04)^25 ≈ 0.64; most trials
		// are far below s=0.2 so the empirical rate should be modest.
		if rate > 0.8 {
			t.Errorf("low-similarity collision rate %.2f unexpectedly high", rate)
		}
	}
}

func hasCandidate(cands []Candidate, id int) bool {
	for _, c := range cands {
		if c.ID == id {
			return true
		}
	}
	return false
}

func TestAdaptiveThreshold(t *testing.T) {
	cases := []struct {
		funcs int
		want  float64
	}{
		{0, 0.05},
		{100, 0.05},
		{1837, 0.05},    // 400.perlbench
		{3000, 0.05},    // below 10^3.5 ≈ 3162
		{10000, 0.1},    // (4-3)/10
		{45000, 0.3653}, // Linux: (log10(45000)-3)/10
		{100000, 0.2},
		{1200000, 0.3079}, // Chrome ≈ 0.31 (paper: "raising the similarity threshold to 0.31")
		{20000000, 0.4},
	}
	for _, tc := range cases {
		got := AdaptiveThreshold(tc.funcs)
		want := tc.want
		if tc.funcs == 45000 {
			want = (math.Log10(45000) - 3) / 10
		}
		if tc.funcs == 100000 {
			want = 0.2
		}
		if math.Abs(got-want) > 5e-3 {
			t.Errorf("AdaptiveThreshold(%d) = %.4f, want %.4f", tc.funcs, got, want)
		}
	}
	// Continuity at the knees.
	lo := AdaptiveThreshold(3161)
	hi := AdaptiveThreshold(3163)
	if math.Abs(lo-hi) > 0.01 {
		t.Errorf("threshold discontinuous at 10^3.5: %v vs %v", lo, hi)
	}
}

func TestAdaptiveBands(t *testing.T) {
	// Paper's quoted values: ~100 small, 57 @ 10k, 25 @ 100k, 14 @ 1m,
	// 13 for Chrome (1.2m).
	cases := []struct {
		funcs int
		want  int
	}{
		{100, 100},
		{4999, 100},
		{10000, 57},
		{100000, 25},
		{1000000, 14},
		{1200000, 13},
	}
	for _, tc := range cases {
		tt := AdaptiveThreshold(tc.funcs)
		if got := AdaptiveBands(tt, tc.funcs); got != tc.want {
			t.Errorf("AdaptiveBands(%d funcs, t=%.3f) = %d, want %d", tc.funcs, tt, got, tc.want)
		}
	}
}

func TestAdaptiveParams(t *testing.T) {
	tt, p, k := AdaptiveParams(1200000)
	if p.Rows != 2 {
		t.Errorf("rows = %d, want 2", p.Rows)
	}
	if k != 2*p.Bands {
		t.Errorf("k = %d, want %d", k, 2*p.Bands)
	}
	if tt < 0.30 || tt > 0.32 {
		t.Errorf("chrome threshold = %v, want ≈0.31", tt)
	}
}

func TestQueryProperties(t *testing.T) {
	cfg := &fingerprint.Config{K: 40, ShingleSize: 2, Seed: 21}
	prop := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ix := NewIndex(Params{Rows: 2, Bands: 20})
		count := int(n%20) + 2
		sigs := make([]fingerprint.MinHash, count)
		for i := range sigs {
			sigs[i] = cfg.New(randSeq(rng, 30+rng.Intn(40), 12))
			ix.Insert(i, sigs[i])
		}
		// Results sorted by similarity, no duplicates, no self.
		for i, s := range sigs {
			cands := ix.Query(i, s, 0)
			seen := map[int]bool{}
			last := 2.0
			for _, c := range cands {
				if c.ID == i || seen[c.ID] || c.Similarity > last {
					return false
				}
				seen[c.ID] = true
				last = c.Similarity
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBestWhereAgreesWithQuery: the sort-free scan must return exactly
// the head of the sorted Query result under the same filter.
func TestBestWhereAgreesWithQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cfg := &fingerprint.Config{K: 60, ShingleSize: 2, Seed: 4}
	ix := NewIndex(Params{Rows: 2, Bands: 30})
	var sigs []fingerprint.MinHash
	for i := 0; i < 60; i++ {
		base := randSeq(rng, 40+rng.Intn(40), 10)
		sigs = append(sigs, cfg.New(base))
		ix.Insert(i, sigs[i])
	}
	reject := map[int]bool{3: true, 7: true, 20: true}
	accept := func(id int) bool { return !reject[id] }
	for i, s := range sigs {
		want, wantOK := lshBestFromQuery(ix, i, s, 0.1, accept)
		got, gotOK := ix.BestWhere(i, s, 0.1, accept)
		if wantOK != gotOK {
			t.Fatalf("id %d: found mismatch %v vs %v", i, wantOK, gotOK)
		}
		if !wantOK {
			continue
		}
		if got.Similarity != want.Similarity {
			t.Fatalf("id %d: BestWhere=%+v Query-head=%+v", i, got, want)
		}
		// On perfect ties BestWhere may return any of the 1.0 matches
		// (it stops early); otherwise the IDs must agree.
		if got.Similarity < 1 && got.ID != want.ID {
			t.Fatalf("id %d: BestWhere=%+v Query-head=%+v", i, got, want)
		}
	}
}

func lshBestFromQuery(ix *Index, id int, mh fingerprint.MinHash, minSim float64, accept func(int) bool) (Candidate, bool) {
	for _, c := range ix.Query(id, mh, minSim) {
		if accept(c.ID) {
			return c, true
		}
	}
	return Candidate{}, false
}

func TestBucketLoadHistogram(t *testing.T) {
	cfg := fingerprint.DefaultConfig()
	rng := rand.New(rand.NewSource(9))
	ix := NewIndex(DefaultParams())
	seq := randSeq(rng, 60, 8)
	sig := cfg.New(seq)
	for i := 0; i < 10; i++ {
		ix.Insert(i, sig)
	}
	loads := ix.BucketLoadHistogram()
	if len(loads) == 0 || loads[0] != 10 {
		t.Errorf("histogram head = %v, want bucket of 10", loads[:min(3, len(loads))])
	}
	for i := 1; i < len(loads); i++ {
		if loads[i] > loads[i-1] {
			t.Fatal("histogram not sorted descending")
		}
	}
}
