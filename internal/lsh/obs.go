package lsh

import "f3m/internal/obs"

// Histogram bounds for the index's occupancy exports. Powers of two:
// the paper's Fig. 16 point is that the occupancy distribution is
// extremely long-tailed (a handful of buckets host most comparisons),
// and log-spaced buckets expose exactly that tail.
var (
	occupancyBounds = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	bandFillBounds  = []float64{16, 64, 256, 1024, 4096, 16384, 65536}
)

// PublishMetrics records the index's accumulated counters and
// occupancy distributions into the registry under the "lsh." prefix:
//
//	lsh.inserted          signatures inserted (counter)
//	lsh.buckets_used      distinct non-empty buckets (counter)
//	lsh.comparisons       fingerprint comparisons performed (counter)
//	lsh.bucket_cap_skips  candidates skipped by the bucket cap — the
//	                      Fig. 16 observable (counter)
//	lsh.candidates_found  candidates returned at/above threshold (counter)
//	lsh.bands             configured band count (gauge)
//	lsh.max_bucket_load   largest bucket population seen (gauge)
//	lsh.bucket_occupancy  histogram of current bucket populations
//	lsh.band_fill         histogram of distinct buckets per band
//
// The occupancy histograms reflect the index's current state (after
// any Removes), while the counters are totals since construction.
// Publishing is deterministic for identical index state: histogram
// bucket counts are order-independent and all values are integers, so
// the deterministic JSON export stays byte-identical across worker
// counts. Call it from sequential code once querying is done. No-op
// when m is nil.
func (ix *Index) PublishMetrics(m *obs.Metrics) {
	if m == nil {
		return
	}
	m.Counter("lsh.inserted").Add(int64(ix.stats.Inserted))
	m.Counter("lsh.buckets_used").Add(int64(ix.stats.BucketsUsed))
	m.Counter("lsh.comparisons").Add(ix.stats.Comparisons)
	m.Counter("lsh.bucket_cap_skips").Add(ix.stats.CapSkips)
	m.Counter("lsh.candidates_found").Add(ix.stats.CandidatesFound)
	m.Gauge("lsh.bands").Set(float64(len(ix.buckets)))
	m.Gauge("lsh.max_bucket_load").Set(float64(ix.stats.MaxBucketLoad))

	occ := m.Histogram("lsh.bucket_occupancy", occupancyBounds)
	fill := m.Histogram("lsh.band_fill", bandFillBounds)
	for _, bm := range ix.buckets {
		fill.Observe(float64(len(bm)))
		for _, lst := range bm {
			occ.Observe(float64(len(lst)))
		}
	}
}
