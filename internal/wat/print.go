package wat

import (
	"math"
	"strconv"
	"strings"
)

// ModuleText renders the module in canonical flat form: one
// instruction per line, folded expressions already desugared,
// numeric immediates in canonical decimal. Parse(ModuleText(m)) is
// the identity on the AST — the round-trip fuzzer holds the printer
// and parser to that contract.
func ModuleText(m *Module) string {
	var b strings.Builder
	b.WriteString("(module")
	if m.Name != "" {
		b.WriteString(" $")
		b.WriteString(m.Name)
	}
	b.WriteByte('\n')
	for _, fn := range m.Funcs {
		writeFunc(&b, fn)
	}
	b.WriteString(")\n")
	return b.String()
}

func writeFunc(b *strings.Builder, fn *Func) {
	b.WriteString("  (func")
	if fn.Name != "" {
		b.WriteString(" $")
		b.WriteString(fn.Name)
	}
	for _, p := range fn.Params {
		writeLocal(b, "param", p)
	}
	if len(fn.Results) > 0 {
		b.WriteString(" (result")
		for _, r := range fn.Results {
			b.WriteByte(' ')
			b.WriteString(r.String())
		}
		b.WriteByte(')')
	}
	for _, l := range fn.Locals {
		writeLocal(b, "local", l)
	}
	b.WriteByte('\n')
	depth := 2
	for _, in := range fn.Body {
		switch in.Op {
		case "end":
			if depth > 2 {
				depth--
			}
		case "else":
			if depth > 2 {
				b.WriteString(strings.Repeat("  ", depth))
				writeInstr(b, in)
				continue
			}
		}
		b.WriteString(strings.Repeat("  ", depth+1))
		writeInstr(b, in)
		switch in.Op {
		case "block", "loop", "if":
			depth++
		case "else":
			depth++
		}
	}
	b.WriteString("  )\n")
}

func writeLocal(b *strings.Builder, kw string, l Local) {
	b.WriteString(" (")
	b.WriteString(kw)
	if l.Name != "" {
		b.WriteString(" $")
		b.WriteString(l.Name)
	}
	b.WriteByte(' ')
	b.WriteString(l.Type.String())
	b.WriteByte(')')
}

func writeInstr(b *strings.Builder, in Instr) {
	b.WriteString(in.Op)
	switch in.Op {
	case "block", "loop", "if":
		if in.Sym != "" {
			b.WriteString(" $")
			b.WriteString(in.Sym)
		}
		if in.HasResult {
			b.WriteString(" (result ")
			b.WriteString(in.Result.String())
			b.WriteByte(')')
		}
	case "else", "end":
		if in.Sym != "" {
			b.WriteString(" $")
			b.WriteString(in.Sym)
		}
	case "br", "br_if", "call", "local.get", "local.set", "local.tee":
		b.WriteByte(' ')
		if in.Sym != "" {
			b.WriteByte('$')
			b.WriteString(in.Sym)
		} else {
			b.WriteString(strconv.Itoa(in.Idx))
		}
	case "i32.const", "i64.const":
		b.WriteByte(' ')
		b.WriteString(strconv.FormatInt(in.IntVal, 10))
	case "f32.const", "f64.const":
		b.WriteByte(' ')
		b.WriteString(formatFloat(in.FloatVal, in.Op == "f32.const"))
	}
	b.WriteByte('\n')
}

// formatFloat renders a float immediate in the shortest decimal form
// that reparses to the same value, with the wat spellings for the
// non-finite values.
func formatFloat(v float64, f32 bool) string {
	switch {
	case math.IsNaN(v):
		return "nan"
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	}
	bits := 64
	if f32 {
		bits = 32
	}
	s := strconv.FormatFloat(v, 'g', -1, bits)
	// The wat grammar requires a fraction or exponent to distinguish a
	// float literal; plain "1" is also fine for fNN.const, but keep the
	// canonical form self-describing.
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
