package wat

import (
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	m, err := Parse(`
(module $demo
  (func $add (param $a i32) (param $b i32) (result i32)
    local.get $a
    local.get $b
    i32.add)
  (func (param i64 i64) (local $tmp f64))
)`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "demo" {
		t.Errorf("module name %q, want demo", m.Name)
	}
	if len(m.Funcs) != 2 {
		t.Fatalf("%d funcs, want 2", len(m.Funcs))
	}
	f := m.Funcs[0]
	if f.Name != "add" || len(f.Params) != 2 || f.Params[0].Name != "a" || f.Params[1].Type != I32 {
		t.Errorf("bad first func header: %+v", f)
	}
	if len(f.Results) != 1 || f.Results[0] != I32 {
		t.Errorf("bad results: %v", f.Results)
	}
	if len(f.Body) != 3 || f.Body[2].Op != "i32.add" {
		t.Errorf("bad body: %+v", f.Body)
	}
	g := m.Funcs[1]
	if g.Name != "" || len(g.Params) != 2 || g.Params[0].Type != I64 ||
		len(g.Locals) != 1 || g.Locals[0].Name != "tmp" || g.Locals[0].Type != F64 {
		t.Errorf("bad second func header: %+v", g)
	}
}

func TestParseWrapperlessModule(t *testing.T) {
	m, err := Parse(`(func $f (result i32) i32.const 3)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) != 1 || m.Funcs[0].Name != "f" {
		t.Fatalf("bad module: %+v", m)
	}
}

// TestParseFoldedDesugar checks that the folded s-expression notation
// parses to the same flat instruction sequence as the handwritten
// flat form, including folded if/then/else and nested operands.
func TestParseFoldedDesugar(t *testing.T) {
	folded := `
(module
  (func $clamp (param $x i32) (result i32)
    (if (result i32) (i32.gt_s (local.get $x) (i32.const 100))
      (then (i32.const 100))
      (else (local.get $x)))))
`
	flat := `
(module
  (func $clamp (param $x i32) (result i32)
    local.get $x
    i32.const 100
    i32.gt_s
    if (result i32)
      i32.const 100
    else
      local.get $x
    end))
`
	fm, err := Parse(folded)
	if err != nil {
		t.Fatalf("folded: %v", err)
	}
	lm, err := Parse(flat)
	if err != nil {
		t.Fatalf("flat: %v", err)
	}
	if got, want := ModuleText(fm), ModuleText(lm); got != want {
		t.Errorf("folded and flat disagree:\n--- folded ---\n%s--- flat ---\n%s", got, want)
	}
}

func TestParseNumericImmediates(t *testing.T) {
	m, err := Parse(`
(func
  i32.const -2147483648
  i32.const 4294967295
  i32.const 0x7fff_ffff
  i64.const -0x8000000000000000
  f32.const 1.5
  f64.const -2.5e3
  f64.const inf
  f64.const nan:0x400
  drop drop drop drop drop drop drop drop)`)
	if err != nil {
		t.Fatal(err)
	}
	b := m.Funcs[0].Body
	wantInts := []int64{-2147483648, -1, 0x7fffffff, -0x8000000000000000}
	for i, w := range wantInts {
		if b[i].IntVal != w {
			t.Errorf("const %d = %d, want %d", i, b[i].IntVal, w)
		}
	}
	if b[4].FloatVal != 1.5 || b[5].FloatVal != -2500 {
		t.Errorf("float consts: %v %v", b[4].FloatVal, b[5].FloatVal)
	}
}

func TestParseComments(t *testing.T) {
	_, err := Parse(`
;; line comment
(module (; inner (; nested ;) block ;)
  (func) ;; trailing
)`)
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unclosed module", `(module (func)`, "unclosed"},
		{"bad field", `(module (memory 1))`, "unsupported module field"},
		{"bad type", `(func (param intt))`, "unknown value type"},
		{"param after result", `(func (result i32) (param i32))`, "must precede"},
		{"param after local", `(func (local i32) (param i32))`, "must precede"},
		{"multi result blocktype", `(func block (result i32 i32) end)`, "arity"},
		{"int range", `(func i32.const 4294967296 drop)`, "out of i32 range"},
		{"bad int", `(func i32.const 12x drop)`, "invalid integer"},
		{"bad float", `(func f64.const 1..5 drop)`, "invalid float"},
		{"folded if no then", `(func (if (i32.const 1) (i32.const 2)))`, "(then"},
		{"folded end", `(func (end))`, "cannot be folded"},
		{"stray rparen", `(module ))`, "trailing input"},
		{"unterminated comment", `(module (; oops`, "unterminated block comment"},
		{"unterminated string", `(module "oops`, "unterminated string"},
		{"stray char", "(module \x01)", "unexpected character"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestPrintRoundTrip pins the printer/parser fixpoint on handwritten
// sources: print(parse(src)) must reparse, and printing again must be
// byte-identical.
func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{
		`(module $m (func $f (param $x i32) (result i32) local.get $x))`,
		`(func (local i64) block $out (result i32) i32.const 1 br $out end drop)`,
		`(func loop $l block i32.const 0 br_if 1 end br $l end)`,
		`(func (result f64) f64.const -0.0)`,
		`(func (result f32) f32.const 3.4028235e38)`,
		`(func (result f64) f64.const nan)`,
		`(func i64.const -9223372036854775808 drop)`,
		`(func (if (then nop) (else unreachable)))`,
	}
	for _, src := range srcs {
		m, err := Parse(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		text := ModuleText(m)
		m2, err := Parse(text)
		if err != nil {
			t.Errorf("reparse of printed form failed: %v\n%s", err, text)
			continue
		}
		if text2 := ModuleText(m2); text2 != text {
			t.Errorf("print not a fixpoint:\n--- first ---\n%s--- second ---\n%s", text, text2)
		}
	}
}
