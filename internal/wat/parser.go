package wat

import (
	"math"
	"strconv"
	"strings"
)

// Parse parses wat source into a Module AST. The grammar is the
// WebAssembly text format restricted to the subset internal/wat
// lowers (see the package comment): one module of plain functions.
// Both the flat instruction form (block … end) and the folded
// s-expression form ((i32.add (local.get 0) …), (if … (then …)
// (else …))) are accepted; folded bodies are desugared into the flat
// sequence during parsing. The module wrapper is optional, matching
// the spec's top-level abbreviation.
func Parse(src string) (*Module, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseModule()
}

func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == tokEOF {
			return toks, nil
		}
	}
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { // second token of lookahead (EOF-safe)
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token {
	t := p.toks[p.i]
	if t.Kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %s, found %s %q", k, t.Kind, t.Text)
	}
	return p.advance(), nil
}

// parseModule parses `(module $id? field*)` or the wrapperless
// abbreviation `field*`.
func (p *parser) parseModule() (*Module, error) {
	m := &Module{}
	wrapped := false
	if p.cur().Kind == tokLParen && p.peek().Kind == tokAtom && p.peek().Text == "module" {
		wrapped = true
		p.advance() // (
		p.advance() // module
		if p.cur().Kind == tokID {
			m.Name = p.advance().Text
		}
	}
	for {
		t := p.cur()
		if wrapped && t.Kind == tokRParen {
			p.advance()
			break
		}
		if t.Kind == tokEOF {
			if wrapped {
				return nil, errf(t.Pos, "unexpected end of input: unclosed (module")
			}
			break
		}
		if t.Kind != tokLParen {
			return nil, errf(t.Pos, "expected a (func …) field, found %s %q", t.Kind, t.Text)
		}
		fn, err := p.parseFunc()
		if err != nil {
			return nil, err
		}
		m.Funcs = append(m.Funcs, fn)
	}
	if t := p.cur(); t.Kind != tokEOF {
		return nil, errf(t.Pos, "trailing input after module: %s %q", t.Kind, t.Text)
	}
	return m, nil
}

// parseFunc parses one `(func $id? (param …)* (result …)* (local …)*
// instr*)` definition, the opening paren still pending.
func (p *parser) parseFunc() (*Func, error) {
	open, err := p.expect(tokLParen)
	if err != nil {
		return nil, err
	}
	kw := p.cur()
	if kw.Kind != tokAtom || kw.Text != "func" {
		return nil, errf(kw.Pos, "unsupported module field %q (the subset has only func)", kw.Text)
	}
	p.advance()
	fn := &Func{Pos: open.Pos}
	if p.cur().Kind == tokID {
		fn.Name = p.advance().Text
	}

	// Header groups in grammar order: params, then results, then locals.
	stage := 0 // 0=params, 1=results, 2=locals
	for p.cur().Kind == tokLParen && p.peek().Kind == tokAtom {
		var err error
		switch p.peek().Text {
		case "param":
			if stage > 0 {
				return nil, errf(p.peek().Pos, "(param …) must precede results and locals")
			}
			fn.Params, err = p.parseLocalGroup("param", fn.Params)
		case "result":
			if stage > 1 {
				return nil, errf(p.peek().Pos, "(result …) must precede locals")
			}
			stage = 1
			fn.Results, err = p.parseResultGroup(fn.Results)
		case "local":
			stage = 2
			fn.Locals, err = p.parseLocalGroup("local", fn.Locals)
		default:
			err = errStopHeader
		}
		if err == errStopHeader {
			break
		}
		if err != nil {
			return nil, err
		}
	}

	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return fn, nil
}

// errStopHeader is an internal sentinel: the next paren group is not a
// header field, so function-body parsing takes over.
var errStopHeader = errf(Pos{}, "not a header group")

// parseLocalGroup parses `(param $x i32)` / `(param i32 i64 …)` (and
// the same shapes for local), appending to list.
func (p *parser) parseLocalGroup(kw string, list []Local) ([]Local, error) {
	p.advance() // (
	p.advance() // kw
	if p.cur().Kind == tokID {
		name := p.advance().Text
		ty, err := p.parseValType(kw)
		if err != nil {
			return nil, err
		}
		list = append(list, Local{Name: name, Type: ty})
		_, err = p.expect(tokRParen)
		return list, err
	}
	for p.cur().Kind == tokAtom {
		ty, err := p.parseValType(kw)
		if err != nil {
			return nil, err
		}
		list = append(list, Local{Type: ty})
	}
	_, err := p.expect(tokRParen)
	return list, err
}

// parseResultGroup parses `(result t*)`, appending to list.
func (p *parser) parseResultGroup(list []ValType) ([]ValType, error) {
	p.advance() // (
	p.advance() // result
	for p.cur().Kind == tokAtom {
		ty, err := p.parseValType("result")
		if err != nil {
			return nil, err
		}
		list = append(list, ty)
	}
	_, err := p.expect(tokRParen)
	return list, err
}

func (p *parser) parseValType(ctx string) (ValType, error) {
	t := p.cur()
	if t.Kind != tokAtom {
		return 0, errf(t.Pos, "expected a value type in %s, found %s %q", ctx, t.Kind, t.Text)
	}
	ty, ok := valTypeByName[t.Text]
	if !ok {
		return 0, errf(t.Pos, "unknown value type %q (want i32, i64, f32 or f64)", t.Text)
	}
	p.advance()
	return ty, nil
}

// parseBody parses a flat/folded instruction sequence up to (but not
// consuming) the closing right paren of the enclosing group.
func (p *parser) parseBody() ([]Instr, error) {
	var out []Instr
	for {
		switch t := p.cur(); t.Kind {
		case tokRParen:
			return out, nil
		case tokAtom:
			in, err := p.parsePlainInstr()
			if err != nil {
				return nil, err
			}
			out = append(out, in)
		case tokLParen:
			var err error
			out, err = p.parseFolded(out)
			if err != nil {
				return nil, err
			}
		default:
			return nil, errf(t.Pos, "expected an instruction, found %s %q", t.Kind, t.Text)
		}
	}
}

// parsePlainInstr parses one flat instruction: a mnemonic atom plus
// its immediates. Unknown mnemonics with no immediates are accepted
// here and rejected with a positioned error during lowering, keeping
// the parser's job purely syntactic.
func (p *parser) parsePlainInstr() (Instr, error) {
	t := p.advance()
	in := Instr{Op: t.Text, Pos: t.Pos}
	switch t.Text {
	case "block", "loop", "if":
		if p.cur().Kind == tokID {
			in.Sym = p.advance().Text
		}
		// Blocktype: `(result t)` — but a left paren may also open a
		// folded instruction of the body, so look two tokens ahead.
		if p.cur().Kind == tokLParen && p.peek().Kind == tokAtom && p.peek().Text == "result" {
			res, err := p.parseResultGroup(nil)
			if err != nil {
				return in, err
			}
			if len(res) != 1 {
				return in, errf(t.Pos, "%s result arity %d unsupported (0 or 1)", t.Text, len(res))
			}
			in.Result, in.HasResult = res[0], true
		}
	case "else", "end":
		// The text format allows repeating the label on else/end.
		if p.cur().Kind == tokID {
			in.Sym = p.advance().Text
		}
	case "br", "br_if", "call", "local.get", "local.set", "local.tee":
		if err := p.parseIndexImm(&in); err != nil {
			return in, err
		}
	case "i32.const", "i64.const":
		bits := 32
		if t.Text == "i64.const" {
			bits = 64
		}
		v, err := p.parseIntImm(bits)
		if err != nil {
			return in, err
		}
		in.IntVal = v
	case "f32.const", "f64.const":
		bits := 32
		if t.Text == "f64.const" {
			bits = 64
		}
		v, err := p.parseFloatImm(bits)
		if err != nil {
			return in, err
		}
		in.FloatVal = v
	}
	return in, nil
}

// parseIndexImm parses a $id or numeric index immediate.
func (p *parser) parseIndexImm(in *Instr) error {
	t := p.cur()
	switch t.Kind {
	case tokID:
		in.Sym = p.advance().Text
		return nil
	case tokAtom:
		n, err := strconv.ParseUint(stripSeps(t.Text), 10, 31)
		if err != nil {
			return errf(t.Pos, "%s: invalid index %q", in.Op, t.Text)
		}
		p.advance()
		in.Idx, in.HasIdx = int(n), true
		return nil
	}
	return errf(t.Pos, "%s: expected an index or $name, found %s %q", in.Op, t.Kind, t.Text)
}

// parseIntImm parses an integer literal for iNN.const, accepting the
// signed and unsigned ranges of the width and canonicalizing to the
// sign-extended value.
func (p *parser) parseIntImm(bits int) (int64, error) {
	t := p.cur()
	if t.Kind != tokAtom {
		return 0, errf(t.Pos, "expected an integer literal, found %s %q", t.Kind, t.Text)
	}
	s := stripSeps(t.Text)
	neg := false
	if strings.HasPrefix(s, "+") {
		s = s[1:]
	} else if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	base := 10
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		base = 16
		s = s[2:]
	}
	u, err := strconv.ParseUint(s, base, 64)
	if err != nil {
		return 0, errf(t.Pos, "invalid integer literal %q", t.Text)
	}
	var v int64
	if neg {
		if u > 1<<(bits-1) {
			return 0, errf(t.Pos, "integer literal %q out of i%d range", t.Text, bits)
		}
		v = -int64(u)
	} else {
		if bits < 64 && u >= 1<<bits {
			return 0, errf(t.Pos, "integer literal %q out of i%d range", t.Text, bits)
		}
		v = int64(u)
	}
	if bits < 64 {
		v = v << (64 - bits) >> (64 - bits) // canonical sign-extended form
	}
	p.advance()
	return v, nil
}

// parseFloatImm parses a float literal for fNN.const, including the
// inf/nan keywords, canonicalizing NaN payloads and rounding f32
// immediates to float32 precision.
func (p *parser) parseFloatImm(bits int) (float64, error) {
	t := p.cur()
	if t.Kind != tokAtom {
		return 0, errf(t.Pos, "expected a float literal, found %s %q", t.Kind, t.Text)
	}
	s := stripSeps(t.Text)
	var v float64
	switch {
	case s == "inf" || s == "+inf":
		v = math.Inf(1)
	case s == "-inf":
		v = math.Inf(-1)
	case s == "nan" || s == "+nan" || s == "-nan" ||
		strings.HasPrefix(s, "nan:") || strings.HasPrefix(s, "-nan:") || strings.HasPrefix(s, "+nan:"):
		v = math.NaN() // payloads canonicalized
	default:
		var err error
		v, err = strconv.ParseFloat(s, bits)
		if err != nil {
			return 0, errf(t.Pos, "invalid float literal %q", t.Text)
		}
	}
	if bits == 32 {
		v = float64(float32(v))
	}
	p.advance()
	return v, nil
}

// stripSeps drops the optional `_` digit separators the text format
// allows in numeric literals.
func stripSeps(s string) string {
	if !strings.Contains(s, "_") {
		return s
	}
	return strings.ReplaceAll(s, "_", "")
}

// parseFolded desugars one folded expression `(op …)` into flat form,
// appending to out: operand subexpressions first, then the operator.
// Folded block/loop append their body then `end`; folded if appends
// condition, `if`, then-branch, optional `else` branch and `end`.
func (p *parser) parseFolded(out []Instr) ([]Instr, error) {
	p.advance() // (
	t := p.cur()
	if t.Kind != tokAtom {
		return nil, errf(t.Pos, "expected a mnemonic after '(', found %s %q", t.Kind, t.Text)
	}
	head, err := p.parsePlainInstr()
	if err != nil {
		return nil, err
	}
	switch head.Op {
	case "block", "loop":
		body, err := p.parseBody()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		out = append(out, head)
		out = append(out, body...)
		return append(out, Instr{Op: "end", Pos: head.Pos}), nil
	case "if":
		// Condition: folded expressions until the (then …) clause.
		for p.cur().Kind == tokLParen && !(p.peek().Kind == tokAtom && p.peek().Text == "then") {
			var err error
			out, err = p.parseFolded(out)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, head)
		if p.cur().Kind != tokLParen || p.peek().Text != "then" {
			return nil, errf(head.Pos, "folded if requires a (then …) clause")
		}
		p.advance() // (
		p.advance() // then
		thenBody, err := p.parseBody()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		out = append(out, thenBody...)
		if p.cur().Kind == tokLParen && p.peek().Kind == tokAtom && p.peek().Text == "else" {
			p.advance() // (
			p.advance() // else
			elseBody, err := p.parseBody()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			out = append(out, Instr{Op: "else", Pos: head.Pos})
			out = append(out, elseBody...)
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return append(out, Instr{Op: "end", Pos: head.Pos}), nil
	case "else", "end":
		return nil, errf(head.Pos, "%s cannot be folded", head.Op)
	default:
		for p.cur().Kind == tokLParen {
			var err error
			out, err = p.parseFolded(out)
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return append(out, head), nil
	}
}
