package wat

import (
	"fmt"
	"strconv"

	"f3m/internal/ir"
	"f3m/internal/passes"
)

// Lower translates a parsed wat module into an IR module. Every
// function is fully validated during lowering — operand-stack typing,
// label resolution, local and call signatures — so malformed input
// yields a positioned error, never a panic, and every module produced
// passes ir.VerifyModule.
func Lower(name string, m *Module) (*ir.Module, error) {
	if m.Name != "" {
		name = m.Name
	}
	lw := &lowerer{
		ast:     m,
		mod:     ir.NewModule(name),
		fnIndex: make(map[string]int, len(m.Funcs)),
	}
	return lw.lowerModule()
}

// lowerer carries the module- and function-level lowering state.
type lowerer struct {
	ast     *Module
	mod     *ir.Module
	irFuncs []*ir.Function
	fnIndex map[string]int // $name -> function index

	// Per-function state.
	fn     *ir.Function
	decl   *Func
	bd     *ir.Builder
	slots  []localSlot
	locIdx map[string]int // $name -> slot index
	stack  []ir.Value
	frames []*frame
}

// localSlot binds a param or local to its stack slot.
type localSlot struct {
	ty   *ir.Type
	addr ir.Value
}

// frame is one entry of the wasm control stack.
type frame struct {
	kind  byte   // 'F' function body, 'b' block, 'i' if, 'l' loop
	label string // $label, or ""

	// branchTarget is where br jumps: the end block for block/if/
	// function frames, the loop header for loops.
	branchTarget *ir.Block
	end          *ir.Block
	elseB        *ir.Block // if only
	seenElse     bool

	// resultSlot spills the single block result; branches store into
	// it and the end block reloads it, so Mem2Reg turns the join into
	// a phi.
	resultSlot ir.Value
	resultTy   *ir.Type // nil when the frame has no result

	stackBase int
	dead      bool // the current position is unreachable
	deadNest  int  // nested block/loop/if depth inside skipped dead code
}

func (lw *lowerer) irType(t ValType) *ir.Type {
	c := lw.mod.Ctx
	switch t {
	case I32:
		return c.I32
	case I64:
		return c.I64
	case F32:
		return c.F32
	}
	return c.F64
}

func (lw *lowerer) lowerModule() (*ir.Module, error) {
	// Declare every function first so calls resolve forward references.
	for i, fn := range lw.ast.Funcs {
		name := fn.Name
		if name == "" {
			name = "f" + strconv.Itoa(i)
		}
		if _, dup := lw.fnIndex[name]; dup || lw.mod.Func(name) != nil {
			return nil, errf(fn.Pos, "duplicate function $%s", name)
		}
		if fn.Name != "" {
			lw.fnIndex[fn.Name] = i
		}
		if len(fn.Results) > 1 {
			return nil, errf(fn.Pos, "multi-value results unsupported (function has %d)", len(fn.Results))
		}
		ret := lw.mod.Ctx.Void
		if len(fn.Results) == 1 {
			ret = lw.irType(fn.Results[0])
		}
		ptys := make([]*ir.Type, len(fn.Params))
		pnames := make([]string, len(fn.Params))
		for pi, p := range fn.Params {
			ptys[pi] = lw.irType(p.Type)
			pnames[pi] = p.Name
		}
		lw.irFuncs = append(lw.irFuncs, lw.mod.NewFunc(name, lw.mod.Ctx.Func(ret, ptys...), pnames...))
	}
	for i, fn := range lw.ast.Funcs {
		if err := lw.lowerFunc(lw.irFuncs[i], fn); err != nil {
			return nil, err
		}
	}
	if err := ir.VerifyModule(lw.mod); err != nil {
		return nil, fmt.Errorf("wat: internal error: lowered module invalid: %w", err)
	}
	return lw.mod, nil
}

func (lw *lowerer) lowerFunc(f *ir.Function, decl *Func) error {
	lw.fn, lw.decl = f, decl
	entry := f.NewBlock("entry")
	lw.bd = ir.NewBuilder(entry)
	lw.slots = lw.slots[:0]
	lw.locIdx = make(map[string]int, len(decl.Params)+len(decl.Locals))
	lw.stack = lw.stack[:0]
	lw.frames = lw.frames[:0]

	// Params and locals live in stack slots (re-promoted by Mem2Reg);
	// wasm zero-initializes locals.
	for i, p := range decl.Params {
		ty := lw.irType(p.Type)
		slot := lw.bd.Alloca(ty)
		lw.bd.Store(f.Params[i], slot)
		if err := lw.bindLocal(p.Name, decl.Pos); err != nil {
			return err
		}
		lw.slots = append(lw.slots, localSlot{ty: ty, addr: slot})
	}
	for _, l := range decl.Locals {
		ty := lw.irType(l.Type)
		slot := lw.bd.Alloca(ty)
		lw.bd.Store(zeroOf(ty), slot)
		if err := lw.bindLocal(l.Name, decl.Pos); err != nil {
			return err
		}
		lw.slots = append(lw.slots, localSlot{ty: ty, addr: slot})
	}

	// The function body is itself a control frame: br to the outermost
	// label returns, and fall-through at the end of the body yields the
	// result.
	ff := &frame{kind: 'F', end: f.NewBlock("")}
	ff.branchTarget = ff.end
	if len(decl.Results) == 1 {
		ff.resultTy = lw.irType(decl.Results[0])
		ff.resultSlot = lw.allocaEntry(ff.resultTy)
	}
	lw.frames = append(lw.frames, ff)

	for i := range decl.Body {
		if err := lw.lowerInstr(&decl.Body[i]); err != nil {
			return err
		}
	}
	if len(lw.frames) != 1 {
		return errf(decl.Pos, "function body ends inside a %s (missing end)", kindName(lw.frames[len(lw.frames)-1].kind))
	}
	// Implicit end of the function frame.
	if !ff.dead {
		if ff.resultTy != nil {
			v, err := lw.pop(decl.Pos, ff.resultTy, "function result")
			if err != nil {
				return err
			}
			lw.bd.Store(v, ff.resultSlot)
		}
		if len(lw.stack) != ff.stackBase {
			return errf(decl.Pos, "%d values left on the stack at function end", len(lw.stack)-ff.stackBase)
		}
		lw.bd.Br(ff.end)
	}
	lw.bd.SetBlock(ff.end)
	if ff.resultTy != nil {
		lw.bd.Ret(lw.bd.Load(ff.resultSlot))
	} else {
		lw.bd.Ret(nil)
	}

	// Dangling blocks (e.g. the untaken arm of a dead if) terminate as
	// unreachable before cleanup, as in the mini-C front end.
	for _, b := range f.Blocks {
		if b.Term() == nil {
			ir.NewBuilder(b).Unreachable()
		}
	}
	passes.Mem2Reg(f)
	passes.ConstFold(f)
	passes.SimplifyCFG(f)
	passes.DCE(f)
	if err := ir.VerifyFunc(f); err != nil {
		return fmt.Errorf("wat: internal error: lowered @%s invalid: %w\n%s", f.Name(), err, ir.FuncString(f))
	}
	return nil
}

func (lw *lowerer) bindLocal(name string, pos Pos) error {
	if name == "" {
		return nil
	}
	if _, dup := lw.locIdx[name]; dup {
		return errf(pos, "duplicate local $%s", name)
	}
	lw.locIdx[name] = len(lw.slots)
	return nil
}

func zeroOf(t *ir.Type) ir.Value {
	if t.IsFloat() {
		return ir.ConstFloat(t, 0)
	}
	return ir.ConstInt(t, 0)
}

// allocaEntry places a result slot at the entry block head, the
// canonical position Mem2Reg promotes from.
func (lw *lowerer) allocaEntry(ty *ir.Type) ir.Value {
	slot := &ir.Instr{
		Op:      ir.OpAlloca,
		Ty:      lw.mod.Ctx.Pointer(ty),
		AllocTy: ty,
		Nam:     lw.fn.FreshName("s"),
	}
	lw.fn.Entry().InsertAt(0, slot)
	return slot
}

func kindName(k byte) string {
	switch k {
	case 'b':
		return "block"
	case 'l':
		return "loop"
	case 'i':
		return "if"
	}
	return "function body"
}

// --- operand stack ---

func (lw *lowerer) top() *frame { return lw.frames[len(lw.frames)-1] }

func (lw *lowerer) popAny(pos Pos, ctx string) (ir.Value, error) {
	if len(lw.stack) <= lw.top().stackBase {
		return nil, errf(pos, "%s: operand stack underflow", ctx)
	}
	v := lw.stack[len(lw.stack)-1]
	lw.stack = lw.stack[:len(lw.stack)-1]
	return v, nil
}

func (lw *lowerer) pop(pos Pos, want *ir.Type, ctx string) (ir.Value, error) {
	v, err := lw.popAny(pos, ctx)
	if err != nil {
		return nil, err
	}
	if v.Type() != want {
		return nil, errf(pos, "%s: operand is %s, want %s", ctx, v.Type(), want)
	}
	return v, nil
}

func (lw *lowerer) push(v ir.Value) { lw.stack = append(lw.stack, v) }

// condToBool pops a wasm i32 condition and materializes the i1 the IR
// branch instructions take.
func (lw *lowerer) condToBool(pos Pos, ctx string) (ir.Value, error) {
	c, err := lw.pop(pos, lw.mod.Ctx.I32, ctx)
	if err != nil {
		return nil, err
	}
	return lw.bd.ICmp(ir.PredNE, c, ir.ConstInt(lw.mod.Ctx.I32, 0)), nil
}

// markDead records that the instruction just lowered transferred
// control unconditionally: the frame continues as skipped dead code.
func (lw *lowerer) markDead() {
	top := lw.top()
	top.dead = true
	lw.stack = lw.stack[:top.stackBase]
}

// --- label and index resolution ---

// resolveLabel maps a br/br_if immediate to its target frame:
// numeric immediates count outward from the innermost frame, symbolic
// ones find the innermost frame carrying the label. The function
// frame is addressable by depth only, like the spec's implicit
// outermost label.
func (lw *lowerer) resolveLabel(in *Instr) (*frame, error) {
	if in.Sym != "" {
		for i := len(lw.frames) - 1; i >= 1; i-- {
			if lw.frames[i].label == in.Sym {
				return lw.frames[i], nil
			}
		}
		return nil, errf(in.Pos, "%s: unknown label $%s", in.Op, in.Sym)
	}
	if in.Idx >= len(lw.frames) {
		return nil, errf(in.Pos, "%s: label depth %d exceeds nesting %d", in.Op, in.Idx, len(lw.frames)-1)
	}
	return lw.frames[len(lw.frames)-1-in.Idx], nil
}

func (lw *lowerer) resolveLocal(in *Instr) (localSlot, error) {
	idx := in.Idx
	if in.Sym != "" {
		i, ok := lw.locIdx[in.Sym]
		if !ok {
			return localSlot{}, errf(in.Pos, "%s: unknown local $%s", in.Op, in.Sym)
		}
		idx = i
	}
	if idx >= len(lw.slots) {
		return localSlot{}, errf(in.Pos, "%s: local index %d out of range (%d locals)", in.Op, idx, len(lw.slots))
	}
	return lw.slots[idx], nil
}

func (lw *lowerer) resolveFunc(in *Instr) (*ir.Function, *Func, error) {
	idx := in.Idx
	if in.Sym != "" {
		i, ok := lw.fnIndex[in.Sym]
		if !ok {
			return nil, nil, errf(in.Pos, "call: unknown function $%s", in.Sym)
		}
		idx = i
	}
	if idx >= len(lw.irFuncs) {
		return nil, nil, errf(in.Pos, "call: function index %d out of range (%d functions)", idx, len(lw.irFuncs))
	}
	return lw.irFuncs[idx], lw.ast.Funcs[idx], nil
}

// --- instruction lowering ---

func (lw *lowerer) lowerInstr(in *Instr) error {
	top := lw.top()
	if top.dead {
		return lw.lowerDead(in)
	}
	switch in.Op {
	case "nop":
		return nil
	case "drop":
		_, err := lw.popAny(in.Pos, "drop")
		return err
	case "unreachable":
		lw.bd.Unreachable()
		lw.markDead()
		return nil
	case "block", "loop":
		fr := &frame{kind: 'b', label: in.Sym, stackBase: len(lw.stack)}
		if in.Op == "loop" {
			fr.kind = 'l'
			head := lw.fn.NewBlock("")
			lw.bd.Br(head)
			lw.bd.SetBlock(head)
			fr.branchTarget = head
		}
		fr.end = lw.fn.NewBlock("")
		if fr.branchTarget == nil {
			fr.branchTarget = fr.end
		}
		if in.HasResult {
			fr.resultTy = lw.irType(in.Result)
			fr.resultSlot = lw.allocaEntry(fr.resultTy)
		}
		lw.frames = append(lw.frames, fr)
		return nil
	case "if":
		cond, err := lw.condToBool(in.Pos, "if condition")
		if err != nil {
			return err
		}
		fr := &frame{kind: 'i', label: in.Sym, stackBase: len(lw.stack)}
		thenB := lw.fn.NewBlock("")
		fr.elseB = lw.fn.NewBlock("")
		fr.end = lw.fn.NewBlock("")
		fr.branchTarget = fr.end
		if in.HasResult {
			fr.resultTy = lw.irType(in.Result)
			fr.resultSlot = lw.allocaEntry(fr.resultTy)
		}
		lw.bd.CondBr(cond, thenB, fr.elseB)
		lw.bd.SetBlock(thenB)
		lw.frames = append(lw.frames, fr)
		return nil
	case "else":
		return lw.lowerElse(in, false)
	case "end":
		return lw.lowerEnd(in, false)
	case "br":
		fr, err := lw.resolveLabel(in)
		if err != nil {
			return err
		}
		if err := lw.spillBranchResult(in, fr); err != nil {
			return err
		}
		lw.bd.Br(fr.branchTarget)
		lw.markDead()
		return nil
	case "br_if":
		cond, err := lw.condToBool(in.Pos, "br_if condition")
		if err != nil {
			return err
		}
		fr, err := lw.resolveLabel(in)
		if err != nil {
			return err
		}
		cont := lw.fn.NewBlock("")
		if fr.kind != 'l' && fr.resultTy != nil {
			// The branch carries the frame result but the value stays
			// on the stack for fall-through, so the spill happens on a
			// little taken-edge trampoline.
			if len(lw.stack) <= lw.top().stackBase {
				return errf(in.Pos, "br_if: operand stack underflow")
			}
			v := lw.stack[len(lw.stack)-1]
			if v.Type() != fr.resultTy {
				return errf(in.Pos, "br_if: branch result is %s, want %s", v.Type(), fr.resultTy)
			}
			taken := lw.fn.NewBlock("")
			lw.bd.CondBr(cond, taken, cont)
			lw.bd.SetBlock(taken)
			lw.bd.Store(v, fr.resultSlot)
			lw.bd.Br(fr.branchTarget)
		} else {
			lw.bd.CondBr(cond, fr.branchTarget, cont)
		}
		lw.bd.SetBlock(cont)
		return nil
	case "return":
		ret := lw.fn.ReturnType()
		if ret.IsVoid() {
			lw.bd.Ret(nil)
		} else {
			v, err := lw.pop(in.Pos, ret, "return")
			if err != nil {
				return err
			}
			lw.bd.Ret(v)
		}
		lw.markDead()
		return nil
	case "call":
		callee, decl, err := lw.resolveFunc(in)
		if err != nil {
			return err
		}
		n := len(decl.Params)
		args := make([]ir.Value, n)
		for i := n - 1; i >= 0; i-- {
			v, err := lw.pop(in.Pos, lw.irType(decl.Params[i].Type), "call argument")
			if err != nil {
				return err
			}
			args[i] = v
		}
		res := lw.bd.Call(callee, args...)
		if !callee.ReturnType().IsVoid() {
			lw.push(res)
		}
		return nil
	case "local.get":
		slot, err := lw.resolveLocal(in)
		if err != nil {
			return err
		}
		lw.push(lw.bd.Load(slot.addr))
		return nil
	case "local.set", "local.tee":
		slot, err := lw.resolveLocal(in)
		if err != nil {
			return err
		}
		v, err := lw.pop(in.Pos, slot.ty, in.Op)
		if err != nil {
			return err
		}
		lw.bd.Store(v, slot.addr)
		if in.Op == "local.tee" {
			lw.push(v)
		}
		return nil
	case "i32.const":
		lw.push(ir.ConstInt(lw.mod.Ctx.I32, in.IntVal))
		return nil
	case "i64.const":
		lw.push(ir.ConstInt(lw.mod.Ctx.I64, in.IntVal))
		return nil
	case "f32.const":
		lw.push(ir.ConstFloat(lw.mod.Ctx.F32, in.FloatVal))
		return nil
	case "f64.const":
		lw.push(ir.ConstFloat(lw.mod.Ctx.F64, in.FloatVal))
		return nil
	}
	return lw.lowerOperator(in)
}

// spillBranchResult stores the branch-carried result value into the
// target frame's slot (branches to loop headers carry nothing).
func (lw *lowerer) spillBranchResult(in *Instr, fr *frame) error {
	if fr.kind == 'l' || fr.resultTy == nil {
		return nil
	}
	v, err := lw.pop(in.Pos, fr.resultTy, in.Op+" result")
	if err != nil {
		return err
	}
	lw.bd.Store(v, fr.resultSlot)
	return nil
}

// lowerElse switches an if frame to its else arm. fromDead marks that
// the then arm ended in dead code.
func (lw *lowerer) lowerElse(in *Instr, fromDead bool) error {
	fr := lw.top()
	if fr.kind != 'i' || fr.seenElse {
		return errf(in.Pos, "else without a matching if")
	}
	if in.Sym != "" && in.Sym != fr.label {
		return errf(in.Pos, "else label $%s does not match if label", in.Sym)
	}
	if !fromDead {
		if fr.resultTy != nil {
			v, err := lw.pop(in.Pos, fr.resultTy, "if result")
			if err != nil {
				return err
			}
			lw.bd.Store(v, fr.resultSlot)
		}
		if len(lw.stack) != fr.stackBase {
			return errf(in.Pos, "%d extra values on the stack at else", len(lw.stack)-fr.stackBase)
		}
		lw.bd.Br(fr.end)
	}
	lw.stack = lw.stack[:fr.stackBase]
	lw.bd.SetBlock(fr.elseB)
	fr.seenElse = true
	fr.dead = false
	return nil
}

// lowerEnd closes the innermost frame. fromDead marks that the frame
// position was unreachable, so no fall-through edge is emitted.
func (lw *lowerer) lowerEnd(in *Instr, fromDead bool) error {
	if len(lw.frames) <= 1 {
		return errf(in.Pos, "end without a matching block")
	}
	fr := lw.top()
	if in.Sym != "" && in.Sym != fr.label {
		return errf(in.Pos, "end label $%s does not match %s label", in.Sym, kindName(fr.kind))
	}
	if fr.kind == 'i' && !fr.seenElse {
		if fr.resultTy != nil {
			return errf(in.Pos, "if with a result requires an else arm")
		}
		// The empty else arm of a one-armed if just falls through.
		ir.NewBuilder(fr.elseB).Br(fr.end)
	}
	if !fromDead {
		if fr.resultTy != nil {
			v, err := lw.pop(in.Pos, fr.resultTy, kindName(fr.kind)+" result")
			if err != nil {
				return err
			}
			lw.bd.Store(v, fr.resultSlot)
		}
		if len(lw.stack) != fr.stackBase {
			return errf(in.Pos, "%d extra values on the stack at end", len(lw.stack)-fr.stackBase)
		}
		lw.bd.Br(fr.end)
	}
	lw.frames = lw.frames[:len(lw.frames)-1]
	lw.stack = lw.stack[:fr.stackBase]
	lw.bd.SetBlock(fr.end)
	if fr.resultTy != nil {
		lw.push(lw.bd.Load(fr.resultSlot))
	}
	return nil
}

// lowerDead skips instructions in unreachable positions, tracking
// nesting so the matching else/end still close the frame. Skipped
// code is not validated beyond structure, mirroring the spec's
// stack-polymorphic typing of dead code.
func (lw *lowerer) lowerDead(in *Instr) error {
	top := lw.top()
	switch in.Op {
	case "block", "loop", "if":
		top.deadNest++
	case "else":
		if top.deadNest == 0 {
			return lw.lowerElse(in, true)
		}
	case "end":
		if top.deadNest == 0 {
			return lw.lowerEnd(in, true)
		}
		top.deadNest--
	}
	return nil
}

// --- operators ---

// intBinOps maps iNN mnemonic suffixes to IR opcodes.
var intBinOps = map[string]ir.Opcode{
	"add": ir.OpAdd, "sub": ir.OpSub, "mul": ir.OpMul,
	"div_s": ir.OpSDiv, "div_u": ir.OpUDiv,
	"rem_s": ir.OpSRem, "rem_u": ir.OpURem,
	"and": ir.OpAnd, "or": ir.OpOr, "xor": ir.OpXor,
	"shl": ir.OpShl, "shr_s": ir.OpAShr, "shr_u": ir.OpLShr,
}

// floatBinOps maps fNN mnemonic suffixes to IR opcodes.
var floatBinOps = map[string]ir.Opcode{
	"add": ir.OpFAdd, "sub": ir.OpFSub, "mul": ir.OpFMul, "div": ir.OpFDiv,
}

// intCmpPreds maps iNN comparison suffixes to IR predicates.
var intCmpPreds = map[string]ir.Pred{
	"eq": ir.PredEQ, "ne": ir.PredNE,
	"lt_s": ir.PredSLT, "lt_u": ir.PredULT,
	"gt_s": ir.PredSGT, "gt_u": ir.PredUGT,
	"le_s": ir.PredSLE, "le_u": ir.PredULE,
	"ge_s": ir.PredSGE, "ge_u": ir.PredUGE,
}

// floatCmpPreds maps fNN comparison suffixes to IR predicates
// (ordered comparisons, as in wasm).
var floatCmpPreds = map[string]ir.Pred{
	"eq": ir.PredOEQ, "ne": ir.PredONE,
	"lt": ir.PredOLT, "gt": ir.PredOGT,
	"le": ir.PredOLE, "ge": ir.PredOGE,
}

// convOps maps full conversion mnemonics to cast opcodes with their
// operand and result types.
var convOps = map[string]struct {
	op       ir.Opcode
	from, to ValType
}{
	"i32.wrap_i64":      {ir.OpTrunc, I64, I32},
	"i64.extend_i32_s":  {ir.OpSExt, I32, I64},
	"i64.extend_i32_u":  {ir.OpZExt, I32, I64},
	"f32.convert_i32_s": {ir.OpSIToFP, I32, F32},
	"f64.convert_i32_s": {ir.OpSIToFP, I32, F64},
	"f64.convert_i64_s": {ir.OpSIToFP, I64, F64},
	"i32.trunc_f32_s":   {ir.OpFPToSI, F32, I32},
	"i32.trunc_f64_s":   {ir.OpFPToSI, F64, I32},
	"i64.trunc_f64_s":   {ir.OpFPToSI, F64, I64},
	"f32.demote_f64":    {ir.OpFPTrunc, F64, F32},
	"f64.promote_f32":   {ir.OpFPExt, F32, F64},
}

// lowerOperator lowers the typed operator mnemonics: binary
// arithmetic/logic, comparisons (materializing the wasm i32 boolean
// with a zext), eqz and conversions.
func (lw *lowerer) lowerOperator(in *Instr) error {
	if cv, ok := convOps[in.Op]; ok {
		v, err := lw.pop(in.Pos, lw.irType(cv.from), in.Op)
		if err != nil {
			return err
		}
		lw.push(lw.bd.Cast(cv.op, v, lw.irType(cv.to)))
		return nil
	}
	dot := -1
	for i := 0; i < len(in.Op); i++ {
		if in.Op[i] == '.' {
			dot = i
			break
		}
	}
	if dot < 0 {
		return errf(in.Pos, "unsupported instruction %q", in.Op)
	}
	ty, ok := valTypeByName[in.Op[:dot]]
	if !ok {
		return errf(in.Pos, "unsupported instruction %q", in.Op)
	}
	irTy := lw.irType(ty)
	suffix := in.Op[dot+1:]
	isInt := ty == I32 || ty == I64

	if suffix == "eqz" && isInt {
		v, err := lw.pop(in.Pos, irTy, in.Op)
		if err != nil {
			return err
		}
		c := lw.bd.ICmp(ir.PredEQ, v, ir.ConstInt(irTy, 0))
		lw.push(lw.bd.Cast(ir.OpZExt, c, lw.mod.Ctx.I32))
		return nil
	}
	if op, ok := intBinOps[suffix]; ok && isInt {
		r, err := lw.pop(in.Pos, irTy, in.Op)
		if err != nil {
			return err
		}
		l, err := lw.pop(in.Pos, irTy, in.Op)
		if err != nil {
			return err
		}
		lw.push(lw.bd.Binary(op, l, r))
		return nil
	}
	if op, ok := floatBinOps[suffix]; ok && !isInt {
		r, err := lw.pop(in.Pos, irTy, in.Op)
		if err != nil {
			return err
		}
		l, err := lw.pop(in.Pos, irTy, in.Op)
		if err != nil {
			return err
		}
		lw.push(lw.bd.Binary(op, l, r))
		return nil
	}
	if p, ok := intCmpPreds[suffix]; ok && isInt {
		return lw.lowerCmp(in, irTy, p, true)
	}
	if p, ok := floatCmpPreds[suffix]; ok && !isInt {
		return lw.lowerCmp(in, irTy, p, false)
	}
	return errf(in.Pos, "unsupported instruction %q", in.Op)
}

func (lw *lowerer) lowerCmp(in *Instr, irTy *ir.Type, p ir.Pred, isInt bool) error {
	r, err := lw.pop(in.Pos, irTy, in.Op)
	if err != nil {
		return err
	}
	l, err := lw.pop(in.Pos, irTy, in.Op)
	if err != nil {
		return err
	}
	var c ir.Value
	if isInt {
		c = lw.bd.ICmp(p, l, r)
	} else {
		c = lw.bd.FCmp(p, l, r)
	}
	lw.push(lw.bd.Cast(ir.OpZExt, c, lw.mod.Ctx.I32))
	return nil
}
