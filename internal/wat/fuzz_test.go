package wat

import (
	"testing"

	"f3m/internal/ir"
)

// FuzzWatParseRoundTrip feeds arbitrary text through the wat front
// end. Three contracts hold under fuzzing: the parser and lowerer
// never panic; any module that parses survives a print → reparse →
// print round trip byte-identically (ModuleText is a fixpoint and the
// canonical form loses nothing the parser cares about); and any
// module the lowerer accepts passes the strict IR verifier.
func FuzzWatParseRoundTrip(f *testing.F) {
	f.Add(`(module $m (func $add (param $a i32) (param $b i32) (result i32)
  local.get $a local.get $b i32.add))`)
	f.Add(`(func $sum (param $n i32) (result i32) (local $i i32) (local $acc i32)
  block $done
    loop $head
      local.get $i local.get $n i32.ge_s
      br_if $done
      local.get $acc local.get $i i32.add local.set $acc
      local.get $i i32.const 1 i32.add local.set $i
      br $head
    end
  end
  local.get $acc)`)
	f.Add(`(func $clamp (param $x i32) (result i32)
  (if (result i32) (i32.gt_s (local.get $x) (i32.const 100))
    (then (i32.const 100))
    (else (local.get $x))))`)
	f.Add(`(func (result f64) f64.const -2.5e3 f64.const nan:0x400 f64.mul)`)
	f.Add(`(func i64.const -0x8000000000000000 i32.wrap_i64 drop)`)
	f.Add(`(func block block br 2 end end) ;; br to the function label`)
	f.Add(`(module (; nested (; comment ;) ;) (func $f unreachable))`)
	f.Add(`(func (param i32) (result i32) local.get 0 if (result i32)`)
	f.Add(`(func i32.add)`)

	f.Fuzz(func(t *testing.T, src string) {
		m, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are the bug
		}
		text := ModuleText(m)
		m2, err := Parse(text)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\nprinted:\n%s\nsource:\n%s", err, text, src)
		}
		if text2 := ModuleText(m2); text2 != text {
			t.Fatalf("print is not a fixpoint:\n--- first ---\n%s--- second ---\n%s\nsource:\n%s", text, text2, src)
		}
		lowered, err := Lower("fuzz.wat", m)
		if err != nil {
			return // type errors are fine; panics and bad IR are the bug
		}
		if err := ir.VerifyModule(lowered); err != nil {
			t.Fatalf("accepted source lowered to invalid IR: %v\nsource:\n%s", err, src)
		}
	})
}
