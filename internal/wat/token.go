package wat

import "fmt"

// Pos is a line/column source position (1-based), carried on tokens,
// AST nodes and errors.
type Pos struct {
	Line, Col int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// errf builds a positioned front-end error.
func errf(p Pos, format string, args ...any) error {
	return fmt.Errorf("wat:%s: %s", p, fmt.Sprintf(format, args...))
}

// tokKind discriminates lexical token classes. The lexer is
// deliberately coarse: every non-paren, non-id word — keywords,
// mnemonics, integers, floats — lexes as one tokAtom and is
// interpreted by the parser, mirroring how the wat grammar treats
// numbers as reserved words.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokLParen
	tokRParen
	tokAtom   // keyword, mnemonic or number: idchar run
	tokID     // $name (Text holds the name without the sigil)
	tokString // "…" (lexed for error quality; the subset rejects it)
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokAtom:
		return "atom"
	case tokID:
		return "identifier"
	case tokString:
		return "string"
	}
	return "token"
}

// token is one lexical element.
type token struct {
	Kind tokKind
	Text string
	Pos  Pos
}

// lexer scans wat source into tokens, handling line comments (;; …),
// nested block comments ((; … ;)) and whitespace.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) pos() Pos { return Pos{lx.line, lx.col} }

func (lx *lexer) peekByte() (byte, bool) {
	if lx.off >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.off], true
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// isIDChar reports whether c may appear in a wat identifier or
// reserved word. This is the spec's idchar set.
func isIDChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	}
	switch c {
	case '!', '#', '$', '%', '&', '\'', '*', '+', '-', '.', '/',
		':', '<', '=', '>', '?', '@', '\\', '^', '_', '`', '|', '~':
		return true
	}
	return false
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

// skipTrivia consumes whitespace and comments. It returns an error on
// an unterminated block comment.
func (lx *lexer) skipTrivia() error {
	for {
		c, ok := lx.peekByte()
		if !ok {
			return nil
		}
		switch {
		case isSpace(c):
			lx.advance()
		case c == ';' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == ';':
			for {
				c, ok := lx.peekByte()
				if !ok || c == '\n' {
					break
				}
				lx.advance()
			}
		case c == '(' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == ';':
			start := lx.pos()
			lx.advance()
			lx.advance()
			depth := 1
			for depth > 0 {
				c, ok := lx.peekByte()
				if !ok {
					return errf(start, "unterminated block comment")
				}
				if c == '(' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == ';' {
					lx.advance()
					lx.advance()
					depth++
					continue
				}
				if c == ';' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == ')' {
					lx.advance()
					lx.advance()
					depth--
					continue
				}
				lx.advance()
			}
		default:
			return nil
		}
	}
}

// next scans the next token.
func (lx *lexer) next() (token, error) {
	if err := lx.skipTrivia(); err != nil {
		return token{}, err
	}
	p := lx.pos()
	c, ok := lx.peekByte()
	if !ok {
		return token{Kind: tokEOF, Pos: p}, nil
	}
	switch {
	case c == '(':
		lx.advance()
		return token{Kind: tokLParen, Text: "(", Pos: p}, nil
	case c == ')':
		lx.advance()
		return token{Kind: tokRParen, Text: ")", Pos: p}, nil
	case c == '"':
		lx.advance()
		start := lx.off
		for {
			c, ok := lx.peekByte()
			if !ok || c == '\n' {
				return token{}, errf(p, "unterminated string")
			}
			if c == '\\' {
				lx.advance()
				if _, ok := lx.peekByte(); !ok {
					return token{}, errf(p, "unterminated string")
				}
				lx.advance()
				continue
			}
			if c == '"' {
				text := lx.src[start:lx.off]
				lx.advance()
				return token{Kind: tokString, Text: text, Pos: p}, nil
			}
			lx.advance()
		}
	case c == '$':
		lx.advance()
		start := lx.off
		for {
			c, ok := lx.peekByte()
			if !ok || !isIDChar(c) {
				break
			}
			lx.advance()
		}
		if lx.off == start {
			return token{}, errf(p, "empty identifier")
		}
		return token{Kind: tokID, Text: lx.src[start:lx.off], Pos: p}, nil
	case isIDChar(c):
		start := lx.off
		for {
			c, ok := lx.peekByte()
			if !ok || !isIDChar(c) {
				break
			}
			lx.advance()
		}
		return token{Kind: tokAtom, Text: lx.src[start:lx.off], Pos: p}, nil
	}
	return token{}, errf(p, "unexpected character %q", string(c))
}
