// Package wat is a front end for a useful subset of the WebAssembly
// text format, lowering real wasm-shaped modules onto the internal/ir
// SSA form the merging pipeline operates on.
//
// The subset covers plain function modules: module/func/param/result/
// local declarations; i32/i64/f32/f64 arithmetic, logic and comparison
// operators plus a family of conversions; structured control flow
// (block, loop, if..else..end) with br/br_if to labels; direct call;
// local.get/set/tee; iNN/fNN const; drop, nop, return and unreachable.
// Both the flat and the folded instruction notations parse; the
// canonical printer (ModuleText) emits flat form.
//
// Lowering simulates the wasm operand stack per basic block: locals
// and block results become entry-block stack slots (alloca), branches
// store into their target's result slot, and Mem2Reg then re-promotes
// every slot so block-argument joins become phi nodes placed by the
// usual dominance-frontier machinery. The result goes through the same
// cleanup pipeline as the mini-C front end (ConstFold, SimplifyCFG,
// DCE), approximating the -Os shape the merging paper targets.
package wat

import "f3m/internal/ir"

// Compile parses and lowers wat source into a verified IR module in
// SSA form. The name argument is the module name to use when the
// source has no $id on its module (the CLI passes the file name, so
// cross-module summary naming works like the other front ends).
func Compile(name, src string) (*ir.Module, error) {
	m, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(name, m)
}

// MustCompile is Compile panicking on error, for tests and examples.
func MustCompile(name, src string) *ir.Module {
	m, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return m
}
