package wat

// ValType is a WebAssembly value type. The subset covers the four MVP
// number types.
type ValType uint8

// The wat number types.
const (
	I32 ValType = iota
	I64
	F32
	F64
)

// String returns the textual name of the value type.
func (t ValType) String() string {
	switch t {
	case I32:
		return "i32"
	case I64:
		return "i64"
	case F32:
		return "f32"
	case F64:
		return "f64"
	}
	return "valtype?"
}

// valTypeByName maps type names back to ValType for the parser.
var valTypeByName = map[string]ValType{
	"i32": I32, "i64": I64, "f32": F32, "f64": F64,
}

// Module is a parsed wat module: an optional $id and a function list.
// The subset has no imports, tables, memories or globals; anything
// else in the module field list is a parse error.
type Module struct {
	Name  string // $id without the sigil, or ""
	Funcs []*Func
}

// Func is one (func …) definition.
type Func struct {
	Name    string // $id without the sigil, or ""
	Params  []Local
	Results []ValType
	Locals  []Local
	Body    []Instr
	Pos     Pos
}

// Local is a parameter or local declaration: an optional name and a
// value type.
type Local struct {
	Name string
	Type ValType
}

// Instr is one body instruction in flat (linear) form. Folded
// expressions are desugared by the parser, so the AST carries the
// plain instruction sequence the wasm spec defines block/loop/if
// nesting over.
type Instr struct {
	// Op is the mnemonic exactly as the grammar spells it, e.g.
	// "i32.add", "local.get", "block", "else", "end".
	Op string

	// Sym is a symbolic immediate ($label, $local or $func reference,
	// without the sigil). When empty and HasIdx is set, Idx carries the
	// numeric form instead.
	Sym    string
	Idx    int
	HasIdx bool

	// IntVal holds the canonicalized immediate of i32.const/i64.const
	// (sign-extended from the type's width); FloatVal that of
	// f32.const/f64.const (already rounded to float32 for f32).
	IntVal   int64
	FloatVal float64

	// Result is the block result type of block/loop/if when HasResult
	// is set; the subset supports arity 0 or 1.
	Result    ValType
	HasResult bool

	Pos Pos
}
