package wat

import (
	"os"
	"path/filepath"
	"testing"

	"f3m/internal/core"
	"f3m/internal/interp"
	"f3m/internal/ir"
)

// loadScannerCorpus compiles and links the checked-in two-revision
// scanner corpus the CLI golden tests run over, so the differential
// test exercises the exact module that merges in cmd/f3m.
func loadScannerCorpus(t *testing.T) *ir.Module {
	t.Helper()
	var units []*ir.Module
	for _, name := range []string{"scanner_v1.wat", "scanner_v2.wat"} {
		src, err := os.ReadFile(filepath.Join("..", "..", "cmd", "f3m", "testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		m, err := Compile(name, string(src))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		units = append(units, m)
	}
	linked, err := ir.LinkModules("scanner", units...)
	if err != nil {
		t.Fatal(err)
	}
	return linked
}

// TestMergeDifferential is the end-to-end semantic gate for the wat
// front end: every function in the linked scanner corpus must compute
// the same results before and after F3M merging under full
// translation validation, observed through the interpreter.
func TestMergeDifferential(t *testing.T) {
	ref := loadScannerCorpus(t)

	// Two-i32-argument functions only in this corpus; probe a grid that
	// hits every branch arm (token kinds 0..5, spaces, id chars, loop
	// trip counts 0..4).
	args := [][2]int64{}
	for _, a := range []int64{0, 1, 2, 3, 4, 5, 9, 10, 12, 13, 32, 36, 46, 95, 97, 122, 999, -7} {
		for _, b := range []int64{0, 1, 2, 3, 4, 64, -1} {
			args = append(args, [2]int64{a, b})
		}
	}
	type key struct {
		fn   string
		a, b int64
	}
	// Merged helpers are deleted at commit (their call sites are
	// rewritten), so the observable API is the two revision drivers —
	// each calls every helper of its revision.
	drivers := []string{"next_token_v1", "scan_line_v2"}
	eval := func(m *ir.Module) map[key]int64 {
		t.Helper()
		mach := interp.NewMachine(m)
		out := map[key]int64{}
		for _, name := range drivers {
			f := m.Func(name)
			if f == nil {
				t.Fatalf("driver @%s missing", name)
			}
			for _, in := range args {
				vals := []interp.Val{
					interp.IntVal(f.Params[0].Ty, in[0]),
					interp.IntVal(f.Params[1].Ty, in[1]),
				}
				got, err := mach.Call(f, vals...)
				if err != nil {
					t.Fatalf("interp @%s(%d, %d): %v", f.Nam, in[0], in[1], err)
				}
				out[key{f.Nam, in[0], in[1]}] = got.I
			}
		}
		return out
	}
	want := eval(ref)
	if len(want) == 0 {
		t.Fatal("corpus produced no evaluable functions")
	}

	merged := loadScannerCorpus(t)
	cfg := core.DefaultConfig(core.F3MStatic)
	cfg.Check = core.CheckValidate
	rep, err := core.Run(merged, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Merges == 0 {
		t.Fatal("corpus produced no merges; the differential test needs merged thunks to exercise")
	}
	for _, d := range rep.Diagnostics {
		t.Logf("diagnostic: %+v", d)
	}

	got := eval(merged)
	mismatches := 0
	for k, w := range want {
		if g, ok := got[k]; !ok {
			t.Errorf("@%s missing after merge", k.fn)
			mismatches++
		} else if g != w {
			t.Errorf("@%s(%d, %d) = %d after merge, want %d", k.fn, k.a, k.b, g, w)
			mismatches++
		}
		if mismatches > 10 {
			t.Fatal("too many mismatches, stopping")
		}
	}
}
