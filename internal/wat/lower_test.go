package wat

import (
	"strings"
	"testing"

	"f3m/internal/interp"
	"f3m/internal/ir"
)

// run lowers src and interprets fn over int args, returning the
// result value.
func run(t *testing.T, src, fn string, args ...int64) interp.Val {
	t.Helper()
	m, err := Compile("test.wat", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := m.Func(fn)
	if f == nil {
		t.Fatalf("no function @%s", fn)
	}
	vals := make([]interp.Val, len(args))
	for i, a := range args {
		vals[i] = interp.IntVal(f.Params[i].Ty, a)
	}
	out, err := interp.NewMachine(m).Call(f, vals...)
	if err != nil {
		t.Fatalf("interp @%s: %v", fn, err)
	}
	return out
}

// TestLowerSemantics drives lowered functions through the interpreter
// against fixed inputs — the executable definition of the subset.
func TestLowerSemantics(t *testing.T) {
	cases := []struct {
		name, src, fn string
		args          []int64
		want          int64
	}{
		{"add", `(func $add (param i32 i32) (result i32) local.get 0 local.get 1 i32.add)`,
			"add", []int64{2, 3}, 5},
		{"arith chain", `(func $f (param $x i32) (result i32)
			local.get $x i32.const 7 i32.mul
			i32.const 3 i32.sub
			i32.const 2 i32.div_s)`,
			"f", []int64{10}, 33},
		{"unsigned div", `(func $f (param i32) (result i32) local.get 0 i32.const 2 i32.div_u)`,
			"f", []int64{-2}, 0x7fffffff},
		{"bitops", `(func $f (param $x i32) (result i32)
			local.get $x i32.const 12 i32.and
			local.get $x i32.const 3 i32.shl i32.or
			i32.const 255 i32.xor)`,
			"f", []int64{6}, (6&12 | 6<<3) ^ 255},
		{"shr_s vs shr_u", `(func $f (param i32) (result i32)
			local.get 0 i32.const 1 i32.shr_s
			local.get 0 i32.const 1 i32.shr_u
			i32.sub)`,
			"f", []int64{-8}, -4 - 0x7ffffffc},
		{"eqz", `(func $f (param i32) (result i32) local.get 0 i32.eqz)`,
			"f", []int64{0}, 1},
		{"cmp", `(func $f (param i32 i32) (result i32)
			local.get 0 local.get 1 i32.lt_s
			local.get 0 local.get 1 i32.gt_u
			i32.add)`,
			"f", []int64{-1, 1}, 1 + 1}, // -1 < 1 signed; 0xffffffff > 1 unsigned
		{"if else result", `(func $max (param $a i32) (param $b i32) (result i32)
			local.get $a local.get $b i32.gt_s
			if (result i32) local.get $a else local.get $b end)`,
			"max", []int64{4, 9}, 9},
		{"one armed if", `(func $f (param $x i32) (result i32) (local $r i32)
			i32.const 1 local.set $r
			local.get $x
			if local.get $x local.set $r end
			local.get $r)`,
			"f", []int64{5}, 5},
		{"block br result", `(func $f (param $x i32) (result i32)
			block $out (result i32)
				local.get $x
				br $out
			end)`,
			"f", []int64{11}, 11},
		{"br_if keeps value", `(func $f (param $p i32) (result i32)
			block (result i32)
				i32.const 1
				local.get $p
				br_if 0
				drop
				i32.const 2
			end)`,
			"f", []int64{0}, 2},
		{"br_if taken", `(func $f (param $p i32) (result i32)
			block (result i32)
				i32.const 1
				local.get $p
				br_if 0
				drop
				i32.const 2
			end)`,
			"f", []int64{7}, 1},
		{"loop sum", `(func $sum (param $n i32) (result i32) (local $i i32) (local $acc i32)
			block $done
				loop $head
					local.get $i local.get $n i32.ge_s
					br_if $done
					local.get $acc local.get $i i32.add local.set $acc
					local.get $i i32.const 1 i32.add local.set $i
					br $head
				end
			end
			local.get $acc)`,
			"sum", []int64{5}, 10},
		{"local tee", `(func $f (param $x i32) (result i32) (local $t i32)
			local.get $x i32.const 2 i32.mul local.tee $t
			local.get $t i32.add)`,
			"f", []int64{3}, 12},
		{"early return", `(func $f (param $x i32) (result i32)
			local.get $x i32.eqz
			if i32.const -1 return end
			local.get $x)`,
			"f", []int64{0}, -1},
		{"dead code after br", `(func $f (result i32)
			block (result i32)
				i32.const 3
				br 0
				i32.const 4
				i32.add
				unreachable
			end)`,
			"f", nil, 3},
		{"call", `(module
			(func $twice (param $x i32) (result i32) local.get $x local.get $x i32.add)
			(func $f (param $x i32) (result i32) local.get $x call $twice i32.const 1 i32.add))`,
			"f", []int64{5}, 11},
		{"call by index", `(module
			(func (param i32) (result i32) local.get 0 i32.const 10 i32.mul)
			(func $f (param i32) (result i32) local.get 0 call 0))`,
			"f", []int64{4}, 40},
		{"i64 ops", `(func $f (param $x i64) (result i64)
			local.get $x i64.const 1000000000000 i64.add
			i64.const 3 i64.rem_s)`,
			"f", []int64{2}, (2 + 1000000000000) % 3},
		{"wrap and extend", `(func $f (param $x i64) (result i32)
			local.get $x i32.wrap_i64
			i64.extend_i32_s
			i64.const 1 i64.add
			i32.wrap_i64)`,
			"f", []int64{0x1_0000_0005}, 6},
		{"nested blocks br", `(func $f (param $x i32) (result i32)
			block $a (result i32)
				block $b
					local.get $x
					br_if $b
					i32.const 100
					br $a
				end
				i32.const 200
			end)`,
			"f", []int64{1}, 200},
		{"br to function label", `(func $f (param $x i32) (result i32)
			block
				local.get $x
				br_if 0
				i32.const 5
				br 1
			end
			i32.const 6)`,
			"f", []int64{0}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := run(t, tc.src, tc.fn, tc.args...); got.I != tc.want {
				t.Errorf("got %d, want %d", got.I, tc.want)
			}
		})
	}
}

func TestLowerFloatSemantics(t *testing.T) {
	src := `(module
	  (func $fma (param $a f64) (param $b f64) (result f64)
	    local.get $a local.get $b f64.mul
	    local.get $a f64.add)
	  (func $cvt (param $x i32) (result f64)
	    local.get $x f64.convert_i32_s
	    f64.const 0.5 f64.add)
	  (func $cmp (param $a f32) (param $b f32) (result i32)
	    local.get $a local.get $b f32.lt
	    local.get $a local.get $b f32.ge
	    i32.add))`
	m, err := Compile("t.wat", src)
	if err != nil {
		t.Fatal(err)
	}
	mach := interp.NewMachine(m)
	out, err := mach.Call(m.Func("fma"), interp.FloatVal(m.Ctx.F64, 2.5), interp.FloatVal(m.Ctx.F64, 4))
	if err != nil {
		t.Fatal(err)
	}
	if out.F != 2.5*4+2.5 {
		t.Errorf("fma = %v", out.F)
	}
	out, err = mach.Call(m.Func("cvt"), interp.IntVal(m.Ctx.I32, 7))
	if err != nil {
		t.Fatal(err)
	}
	if out.F != 7.5 {
		t.Errorf("cvt = %v", out.F)
	}
	out, err = mach.Call(m.Func("cmp"), interp.FloatVal(m.Ctx.F32, 1), interp.FloatVal(m.Ctx.F32, 2))
	if err != nil {
		t.Fatal(err)
	}
	if out.I != 1 {
		t.Errorf("cmp = %v", out.I)
	}
}

// TestLowerStackJoinPhi pins the central lowering mechanism: a block
// result reached from two paths must become a phi at the join after
// Mem2Reg, not a memory round-trip.
func TestLowerStackJoinPhi(t *testing.T) {
	m := MustCompile("t.wat", `(func $pick (param $p i32) (param $a i32) (param $b i32) (result i32)
		local.get $p
		if (result i32) local.get $a else local.get $b end
		i32.const 1
		i32.add)`)
	f := m.Func("pick")
	phis, allocas := 0, 0
	f.Instructions(func(in *ir.Instr) {
		switch in.Op {
		case ir.OpPhi:
			phis++
		case ir.OpAlloca:
			allocas++
		}
	})
	if phis != 1 {
		t.Errorf("%d phis, want exactly 1 (the if/else join)\n%s", phis, ir.FuncString(f))
	}
	if allocas != 0 {
		t.Errorf("%d allocas survived Mem2Reg\n%s", allocas, ir.FuncString(f))
	}
}

// TestLowerBrIfTargets checks branch wiring: the br_if lowers to a
// condbr whose taken edge reaches the loop header (a backedge) and
// whose other edge falls through.
func TestLowerBrIfTargets(t *testing.T) {
	m := MustCompile("t.wat", `(func $spin (param $n i32) (local $i i32)
		loop $head
			local.get $i i32.const 1 i32.add local.tee $i
			local.get $n i32.lt_s
			br_if $head
		end)`)
	f := m.Func("spin")
	idx := make(map[*ir.Block]int, len(f.Blocks))
	for i, b := range f.Blocks {
		idx[b] = i
	}
	// The loop header is the phi-bearing block; the br_if taken edge
	// must be the lone backedge into it.
	backedges := 0
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if len(s.Phis()) > 0 && idx[s] <= idx[b] {
				backedges++
			}
		}
	}
	if backedges != 1 {
		t.Errorf("%d backedges into the loop header, want 1 (br_if to loop head)\n%s", backedges, ir.FuncString(f))
	}
}

// TestLowerIfElseReconverge checks that both arms of an if/else
// reconverge on a single join block that dominates the return.
func TestLowerIfElseReconverge(t *testing.T) {
	m := MustCompile("t.wat", `(func $f (param $p i32) (param $a i32) (result i32)
		local.get $p
		if (result i32)
			local.get $a i32.const 3 i32.mul
		else
			local.get $a i32.const 5 i32.add
		end)`)
	f := m.Func("f")
	preds := f.Preds()
	joins := 0
	for _, b := range f.Blocks {
		if len(preds[b]) == 2 && len(b.Phis()) == 1 {
			joins++
		}
	}
	if joins != 1 {
		t.Errorf("%d two-way phi joins, want 1\n%s", joins, ir.FuncString(f))
	}
}

// TestLowerVerifies runs every lowering output through the strict
// module verifier (Compile already does; this pins it for a corpus of
// shapes including degenerate ones).
func TestLowerVerifies(t *testing.T) {
	srcs := []string{
		`(func)`,
		`(func (result i32) i32.const 0)`,
		`(func unreachable)`,
		`(func (result i32) i32.const 1 return i32.const 2 i32.add)`,
		`(func block block block br 2 end end end)`,
		`(func loop end)`,
		`(func (param i32) local.get 0 if nop else nop end)`,
		`(func (result f32) f32.const nan)`,
	}
	for _, src := range srcs {
		m, err := Compile("v.wat", src)
		if err != nil {
			t.Errorf("compile %q: %v", src, err)
			continue
		}
		if err := ir.VerifyModule(m); err != nil {
			t.Errorf("verify %q: %v", src, err)
		}
	}
}

func TestLowerErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"stack underflow", `(func i32.add drop)`, "underflow"},
		{"type mismatch", `(func (result i32) i32.const 1 i64.const 2 i32.add)`, "want"},
		{"wrong result type", `(func (result i64) i32.const 1)`, "function result"},
		{"leftover values", `(func i32.const 1)`, "left on the stack"},
		{"missing end", `(func block)`, "missing end"},
		{"stray end", `(func end)`, "end without a matching block"},
		{"stray else", `(func else end)`, "else without a matching if"},
		{"unknown label", `(func br $nope)`, "unknown label"},
		{"label depth", `(func br 3)`, "exceeds nesting"},
		{"unknown local", `(func local.get $x drop)`, "unknown local"},
		{"local index", `(func local.get 2 drop)`, "out of range"},
		{"unknown func", `(func call $g)`, "unknown function"},
		{"func index", `(func call 9)`, "out of range"},
		{"unknown op", `(func i32.popcnt drop)`, "unsupported instruction"},
		{"bare word", `(func frobnicate)`, "unsupported instruction"},
		{"multi result", `(func (result i32 i32) i32.const 1 i32.const 2)`, "multi-value"},
		{"if result no else", `(func (param i32) (result i32) local.get 0 if (result i32) i32.const 1 end)`, "requires an else"},
		{"duplicate local", `(func (param $x i32) (local $x i32))`, "duplicate local"},
		{"duplicate func", `(module (func $f) (func $f))`, "duplicate function"},
		{"float into int op", `(func f64.const 1.0 f64.const 2.0 i32.add drop)`, "operand is"},
		{"end label mismatch", `(func block $a end $b)`, "does not match"},
		{"extra at else", `(func (param i32) local.get 0 if i32.const 1 else end)`, "extra values"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Compile("e.wat", tc.src)
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestModuleNaming pins the naming contract the CLI relies on: the
// module $id wins, the caller-provided fallback otherwise.
func TestModuleNaming(t *testing.T) {
	m := MustCompile("file", `(module $named (func))`)
	if m.Name != "named" {
		t.Errorf("module name %q, want named", m.Name)
	}
	m = MustCompile("file", `(module (func))`)
	if m.Name != "file" {
		t.Errorf("module name %q, want file", m.Name)
	}
}
