package minic

import (
	"fmt"

	"f3m/internal/ir"
	"f3m/internal/passes"
)

// Compile parses, checks and lowers a translation unit into an IR
// module in SSA form (locals are promoted with Mem2Reg and the CFG
// cleaned up, approximating -Os shape).
func Compile(name, src string) (*ir.Module, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return Lower(name, file)
}

// MustCompile is Compile panicking on error, for tests and examples.
func MustCompile(name, src string) *ir.Module {
	m, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return m
}

// Lower translates a parsed file into an IR module.
func Lower(name string, file *File) (*ir.Module, error) {
	lw := &lowerer{
		mod:     ir.NewModule(name),
		funcs:   make(map[string]*FuncDecl),
		globals: make(map[string]*GlobalDecl),
	}
	return lw.lowerFile(file)
}

type lowerer struct {
	mod     *ir.Module
	funcs   map[string]*FuncDecl
	globals map[string]*GlobalDecl

	// per-function state
	fn     *ir.Function
	decl   *FuncDecl
	bd     *ir.Builder
	scopes []map[string]*local
	// loop stack for break/continue targets
	breaks    []*ir.Block
	continues []*ir.Block
}

// local is a scoped variable bound to a stack slot.
type local struct {
	ty       CType
	slot     ir.Value
	arrayLen int // >0 marks a local array
}

func (lw *lowerer) irType(t CType, pos Pos) (*ir.Type, error) {
	c := lw.mod.Ctx
	var base *ir.Type
	switch t.Base {
	case "int":
		base = c.I32
	case "long":
		base = c.I64
	case "char":
		base = c.I8
	case "double":
		base = c.F64
	case "void":
		base = c.Void
	default:
		return nil, errf(pos, "unknown type %q", t.Base)
	}
	for i := 0; i < t.Ptr; i++ {
		base = c.Pointer(base)
	}
	return base, nil
}

func (lw *lowerer) lowerFile(file *File) (*ir.Module, error) {
	// Declare globals and function signatures first so bodies can
	// reference anything in the unit.
	for _, g := range file.Globals {
		if lw.mod.Global(g.Name) != nil {
			return nil, errf(g.Pos, "global %q redefined", g.Name)
		}
		lw.globals[g.Name] = g
		ty, err := lw.irType(g.Type, g.Pos)
		if err != nil {
			return nil, err
		}
		var init *ir.Const
		if g.ArrayLen > 0 {
			ty = lw.mod.Ctx.Array(g.ArrayLen, ty)
		} else if g.Init != nil {
			c, err := constInit(ty, g.Init)
			if err != nil {
				return nil, err
			}
			init = c
		}
		lw.mod.NewGlobal(g.Name, ty, init)
	}
	for _, fn := range file.Funcs {
		if prev, dup := lw.funcs[fn.Name]; dup && prev.Body != nil && fn.Body != nil {
			return nil, errf(fn.Pos, "function %q redefined", fn.Name)
		}
		if _, dup := lw.funcs[fn.Name]; !dup {
			lw.funcs[fn.Name] = fn
			ret, err := lw.irType(fn.Ret, fn.Pos)
			if err != nil {
				return nil, err
			}
			var ptys []*ir.Type
			var pnames []string
			for _, prm := range fn.Params {
				pt, err := lw.irType(prm.Type, prm.Pos)
				if err != nil {
					return nil, err
				}
				ptys = append(ptys, pt)
				pnames = append(pnames, prm.Name)
			}
			lw.mod.NewFunc(fn.Name, lw.mod.Ctx.Func(ret, ptys...), pnames...)
		} else if fn.Body != nil {
			lw.funcs[fn.Name] = fn
		}
	}
	for _, fn := range file.Funcs {
		if fn.Body == nil {
			continue
		}
		if err := lw.lowerFunc(fn); err != nil {
			return nil, err
		}
	}
	if err := ir.VerifyModule(lw.mod); err != nil {
		return nil, fmt.Errorf("minic: internal error: lowered module invalid: %w", err)
	}
	return lw.mod, nil
}

func constInit(ty *ir.Type, e Expr) (*ir.Const, error) {
	switch v := e.(type) {
	case *IntLit:
		if ty.IsFloat() {
			return ir.ConstFloat(ty, float64(v.Value)), nil
		}
		return ir.ConstInt(ty, v.Value), nil
	case *FloatLit:
		if !ty.IsFloat() {
			return nil, errf(v.Pos, "float initializer for integer global")
		}
		return ir.ConstFloat(ty, v.Value), nil
	}
	return nil, errf(e.P(), "global initializer must be a literal")
}

func (lw *lowerer) lowerFunc(fn *FuncDecl) error {
	f := lw.mod.Func(fn.Name)
	lw.fn, lw.decl = f, fn
	entry := f.NewBlock("entry")
	lw.bd = ir.NewBuilder(entry)
	lw.scopes = []map[string]*local{{}}
	lw.breaks, lw.continues = nil, nil

	// Parameters are demoted to slots; Mem2Reg re-promotes.
	for i, prm := range fn.Params {
		ty, err := lw.irType(prm.Type, prm.Pos)
		if err != nil {
			return err
		}
		slot := lw.bd.Alloca(ty)
		lw.bd.Store(f.Params[i], slot)
		lw.scopes[0][prm.Name] = &local{ty: prm.Type, slot: slot}
	}

	// The body shares the parameter scope (as in C, where redeclaring a
	// parameter in the outermost block is an error).
	if err := lw.lowerStmts(fn.Body.Stmts); err != nil {
		return err
	}
	// Implicit return on fallthrough.
	if lw.bd.Cur.Term() == nil {
		if fn.Ret.IsVoid() {
			lw.bd.Ret(nil)
		} else {
			rt, _ := lw.irType(fn.Ret, fn.Pos)
			lw.bd.Ret(zeroOf(rt))
		}
	}
	// Unterminated blocks can remain when break/return leave dangling
	// join blocks; terminate them as unreachable before cleanup.
	for _, b := range f.Blocks {
		if b.Term() == nil {
			tb := ir.NewBuilder(b)
			tb.Unreachable()
		}
	}

	passes.Mem2Reg(f)
	passes.ConstFold(f)
	passes.SimplifyCFG(f)
	passes.DCE(f)
	if err := ir.VerifyFunc(f); err != nil {
		return fmt.Errorf("minic: internal error: lowered @%s invalid: %w\n%s", fn.Name, err, ir.FuncString(f))
	}
	return nil
}

func zeroOf(t *ir.Type) ir.Value {
	switch {
	case t.IsFloat():
		return ir.ConstFloat(t, 0)
	case t.IsPointer():
		return ir.ConstNull(t)
	default:
		return ir.ConstInt(t, 0)
	}
}

// --- scopes ---

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]*local{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) lookup(name string) *local {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if v, ok := lw.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

// --- statements ---

func (lw *lowerer) lowerBlock(b *BlockStmt) error {
	lw.pushScope()
	defer lw.popScope()
	return lw.lowerStmts(b.Stmts)
}

// lowerStmts lowers a statement list into the current scope.
func (lw *lowerer) lowerStmts(stmts []Stmt) error {
	for _, s := range stmts {
		if err := lw.lowerStmt(s); err != nil {
			return err
		}
		if lw.bd.Cur.Term() != nil {
			// Statements after return/break are unreachable; stop
			// emitting into a terminated block.
			nb := lw.fn.NewBlock("")
			lw.bd.SetBlock(nb)
		}
	}
	return nil
}

func (lw *lowerer) lowerStmt(s Stmt) error {
	switch st := s.(type) {
	case *BlockStmt:
		return lw.lowerBlock(st)
	case *DeclStmt:
		return lw.lowerDecl(st)
	case *AssignStmt:
		return lw.lowerAssign(st)
	case *IfStmt:
		return lw.lowerIf(st)
	case *WhileStmt:
		return lw.lowerWhile(st)
	case *DoWhileStmt:
		return lw.lowerDoWhile(st)
	case *ForStmt:
		return lw.lowerFor(st)
	case *ReturnStmt:
		return lw.lowerReturn(st)
	case *BreakStmt:
		if len(lw.breaks) == 0 {
			return errf(st.Pos, "break outside loop")
		}
		lw.bd.Br(lw.breaks[len(lw.breaks)-1])
		return nil
	case *ContinueStmt:
		if len(lw.continues) == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		lw.bd.Br(lw.continues[len(lw.continues)-1])
		return nil
	case *ExprStmt:
		_, _, err := lw.lowerExpr(st.X)
		return err
	}
	return errf(Pos{}, "unhandled statement %T", s)
}

func (lw *lowerer) lowerDecl(d *DeclStmt) error {
	if lw.scopes[len(lw.scopes)-1][d.Name] != nil {
		return errf(d.Pos, "variable %q redeclared", d.Name)
	}
	ty, err := lw.irType(d.Type, d.Pos)
	if err != nil {
		return err
	}
	if d.Type.IsVoid() {
		return errf(d.Pos, "cannot declare void variable")
	}
	lv := &local{ty: d.Type}
	if d.ArrayLen > 0 {
		// Arrays of pointers are not supported; base scalars only.
		lv.arrayLen = d.ArrayLen
		lv.slot = allocaIn(lw.fn, lw.mod.Ctx.Array(d.ArrayLen, ty))
	} else {
		lv.slot = allocaIn(lw.fn, ty)
	}
	lw.scopes[len(lw.scopes)-1][d.Name] = lv
	if d.Init != nil {
		if d.ArrayLen > 0 {
			return errf(d.Pos, "cannot initialize array declaration")
		}
		v, vt, err := lw.lowerExpr(d.Init)
		if err != nil {
			return err
		}
		v, err = lw.convert(v, vt, d.Type, d.Init.P())
		if err != nil {
			return err
		}
		lw.bd.Store(v, lv.slot)
	}
	return nil
}

// allocaIn places an alloca at the entry block head, the canonical
// position for Mem2Reg.
func allocaIn(f *ir.Function, ty *ir.Type) ir.Value {
	slot := &ir.Instr{
		Op:      ir.OpAlloca,
		Ty:      f.Parent.Ctx.Pointer(ty),
		AllocTy: ty,
		Nam:     f.FreshName("v"),
	}
	f.Entry().InsertAt(0, slot)
	return slot
}

func (lw *lowerer) lowerAssign(a *AssignStmt) error {
	addr, elemTy, err := lw.lvalue(a.Target)
	if err != nil {
		return err
	}
	v, vt, err := lw.lowerExpr(a.Value)
	if err != nil {
		return err
	}
	if a.Op != "" {
		// Compound assignment: the target address is evaluated once
		// (as in C), loaded, combined, stored back.
		cur := ir.Value(lw.bd.Load(addr))
		nv, nt, err := lw.applyBinOp(a.Op, cur, elemTy, v, vt, a.Pos)
		if err != nil {
			return err
		}
		v, vt = nv, nt
	}
	v, err = lw.convert(v, vt, elemTy, a.Value.P())
	if err != nil {
		return err
	}
	lw.bd.Store(v, addr)
	return nil
}

// lowerDoWhile lowers do { body } while (cond); — the body runs before
// the first condition check.
func (lw *lowerer) lowerDoWhile(s *DoWhileStmt) error {
	body := lw.fn.NewBlock("")
	check := lw.fn.NewBlock("")
	exit := lw.fn.NewBlock("")
	lw.bd.Br(body)

	lw.breaks = append(lw.breaks, exit)
	lw.continues = append(lw.continues, check)
	lw.bd.SetBlock(body)
	if err := lw.lowerBlock(s.Body); err != nil {
		return err
	}
	if lw.bd.Cur.Term() == nil {
		lw.bd.Br(check)
	}
	lw.breaks = lw.breaks[:len(lw.breaks)-1]
	lw.continues = lw.continues[:len(lw.continues)-1]

	lw.bd.SetBlock(check)
	cond, err := lw.condValue(s.Cond)
	if err != nil {
		return err
	}
	lw.bd.CondBr(cond, body, exit)

	lw.bd.SetBlock(exit)
	return nil
}

func (lw *lowerer) lowerIf(s *IfStmt) error {
	cond, err := lw.condValue(s.Cond)
	if err != nil {
		return err
	}
	thenB := lw.fn.NewBlock("")
	joinB := lw.fn.NewBlock("")
	elseB := joinB
	if s.Else != nil {
		elseB = lw.fn.NewBlock("")
	}
	lw.bd.CondBr(cond, thenB, elseB)

	lw.bd.SetBlock(thenB)
	if err := lw.lowerBlock(s.Then); err != nil {
		return err
	}
	if lw.bd.Cur.Term() == nil {
		lw.bd.Br(joinB)
	}
	if s.Else != nil {
		lw.bd.SetBlock(elseB)
		if err := lw.lowerStmt(s.Else); err != nil {
			return err
		}
		if lw.bd.Cur.Term() == nil {
			lw.bd.Br(joinB)
		}
	}
	lw.bd.SetBlock(joinB)
	return nil
}

func (lw *lowerer) lowerWhile(s *WhileStmt) error {
	head := lw.fn.NewBlock("")
	body := lw.fn.NewBlock("")
	exit := lw.fn.NewBlock("")
	lw.bd.Br(head)

	lw.bd.SetBlock(head)
	cond, err := lw.condValue(s.Cond)
	if err != nil {
		return err
	}
	lw.bd.CondBr(cond, body, exit)

	lw.breaks = append(lw.breaks, exit)
	lw.continues = append(lw.continues, head)
	lw.bd.SetBlock(body)
	if err := lw.lowerBlock(s.Body); err != nil {
		return err
	}
	if lw.bd.Cur.Term() == nil {
		lw.bd.Br(head)
	}
	lw.breaks = lw.breaks[:len(lw.breaks)-1]
	lw.continues = lw.continues[:len(lw.continues)-1]

	lw.bd.SetBlock(exit)
	return nil
}

func (lw *lowerer) lowerFor(s *ForStmt) error {
	lw.pushScope() // the init declaration scopes over the loop
	defer lw.popScope()
	if s.Init != nil {
		if err := lw.lowerStmt(s.Init); err != nil {
			return err
		}
	}
	head := lw.fn.NewBlock("")
	body := lw.fn.NewBlock("")
	post := lw.fn.NewBlock("")
	exit := lw.fn.NewBlock("")
	lw.bd.Br(head)

	lw.bd.SetBlock(head)
	if s.Cond != nil {
		cond, err := lw.condValue(s.Cond)
		if err != nil {
			return err
		}
		lw.bd.CondBr(cond, body, exit)
	} else {
		lw.bd.Br(body)
	}

	lw.breaks = append(lw.breaks, exit)
	lw.continues = append(lw.continues, post)
	lw.bd.SetBlock(body)
	if err := lw.lowerBlock(s.Body); err != nil {
		return err
	}
	if lw.bd.Cur.Term() == nil {
		lw.bd.Br(post)
	}
	lw.breaks = lw.breaks[:len(lw.breaks)-1]
	lw.continues = lw.continues[:len(lw.continues)-1]

	lw.bd.SetBlock(post)
	if s.Post != nil {
		if err := lw.lowerStmt(s.Post); err != nil {
			return err
		}
	}
	lw.bd.Br(head)

	lw.bd.SetBlock(exit)
	return nil
}

func (lw *lowerer) lowerReturn(s *ReturnStmt) error {
	if lw.decl.Ret.IsVoid() {
		if s.Value != nil {
			return errf(s.Pos, "void function returns a value")
		}
		lw.bd.Ret(nil)
		return nil
	}
	if s.Value == nil {
		return errf(s.Pos, "non-void function returns nothing")
	}
	v, vt, err := lw.lowerExpr(s.Value)
	if err != nil {
		return err
	}
	v, err = lw.convert(v, vt, lw.decl.Ret, s.Value.P())
	if err != nil {
		return err
	}
	lw.bd.Ret(v)
	return nil
}
