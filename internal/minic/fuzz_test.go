package minic

import (
	"testing"

	"f3m/internal/ir"
)

// FuzzMinicParser feeds arbitrary source through the whole mini-C
// front end. The contract under fuzzing: no panics ever, and every
// module the front end does produce must pass the IR verifier — the
// lowering has no license to emit malformed IR just because the input
// was strange.
func FuzzMinicParser(f *testing.F) {
	f.Add("int main() { return 0; }")
	f.Add(`int add(int a, int b) { return a + b; }
int twice(int x) { return add(x, x); }`)
	f.Add(`int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}`)
	f.Add(`int stats[8];
int bump(int i) {
  stats[i] = stats[i] + 1;
  return stats[i];
}`)
	f.Add(`int loopy(int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) { acc = acc ^ i * 31; }
  while (acc > 100) { acc = acc / 2; }
  return acc;
}`)
	f.Add("int broken( { return; }")
	f.Add("intx;; /* comment */ int f() { return 'a'; }")

	f.Fuzz(func(t *testing.T, src string) {
		m, err := Compile("fuzz.c", src)
		if err != nil {
			return // rejection is fine; panics are the bug
		}
		if err := ir.VerifyModule(m); err != nil {
			t.Fatalf("accepted source lowered to invalid IR: %v\nsource:\n%s", err, src)
		}
	})
}
