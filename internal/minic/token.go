// Package minic is a small C-like frontend producing IR modules: a
// lexer, recursive-descent parser, type checker and SSA-constructing
// lowerer. It exists so the examples and tests can exercise function
// merging on realistically shaped, human-written code instead of only
// synthetic populations.
//
// The language: int (i32), long (i64), char (i8), double (f64), void,
// pointers and local arrays; functions, globals; if/else, while, for,
// break/continue, return; the usual C operators including
// short-circuit && and ||; calls, indexing, address-of and dereference.
package minic

import "fmt"

// TokKind classifies tokens.
type TokKind uint8

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokPunct   // operators and delimiters
	TokKeyword // reserved words
)

// Token is one lexeme with its source position.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// Pos is a line/column source position.
type Pos struct {
	Line, Col int
}

// String renders the position for diagnostics.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Error is a positioned frontend diagnostic.
type Error struct {
	Pos Pos
	Msg string
}

// Error formats the diagnostic as "minic: line:col: message".
func (e *Error) Error() string { return fmt.Sprintf("minic: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

var keywords = map[string]bool{
	"int": true, "long": true, "char": true, "double": true, "void": true,
	"if": true, "else": true, "while": true, "do": true, "for": true,
	"return": true, "break": true, "continue": true,
}

// multiCharOps lists operators longer than one byte, longest first.
var multiCharOps = []string{
	"<<=", ">>=",
	"<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
	"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
}

// Lex tokenizes the source. It returns a positioned error on any byte
// it cannot interpret.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	adv := func(n int) {
		for k := 0; k < n; k++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				adv(1)
			}
		case c == '/' && i+1 < len(src) && src[i+1] == '*':
			adv(2)
			for i+1 < len(src) && !(src[i] == '*' && src[i+1] == '/') {
				adv(1)
			}
			if i+1 >= len(src) {
				return nil, errf(Pos{line, col}, "unterminated block comment")
			}
			adv(2)
		case isAlpha(c):
			pos := Pos{line, col}
			start := i
			for i < len(src) && isAlnum(src[i]) {
				adv(1)
			}
			text := src[start:i]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Pos: pos})
		case isDigit(c):
			pos := Pos{line, col}
			start := i
			isFloat := false
			for i < len(src) && (isDigit(src[i]) || src[i] == '.') {
				if src[i] == '.' {
					isFloat = true
				}
				adv(1)
			}
			kind := TokInt
			if isFloat {
				kind = TokFloat
			}
			toks = append(toks, Token{Kind: kind, Text: src[start:i], Pos: pos})
		case c == '\'':
			pos := Pos{line, col}
			if i+2 < len(src) && src[i+2] == '\'' {
				toks = append(toks, Token{Kind: TokInt, Text: fmt.Sprint(int(src[i+1])), Pos: pos})
				adv(3)
				break
			}
			return nil, errf(pos, "bad character literal")
		default:
			pos := Pos{line, col}
			matched := false
			for _, op := range multiCharOps {
				if len(src)-i >= len(op) && src[i:i+len(op)] == op {
					toks = append(toks, Token{Kind: TokPunct, Text: op, Pos: pos})
					adv(len(op))
					matched = true
					break
				}
			}
			if matched {
				break
			}
			if isPunct(c) {
				toks = append(toks, Token{Kind: TokPunct, Text: string(c), Pos: pos})
				adv(1)
				break
			}
			return nil, errf(pos, "unexpected character %q", c)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: Pos{line, col}})
	return toks, nil
}

func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlnum(c byte) bool { return isAlpha(c) || isDigit(c) }
func isPunct(c byte) bool {
	switch c {
	case '+', '-', '*', '/', '%', '<', '>', '=', '!', '&', '|', '^', '~',
		'(', ')', '{', '}', '[', ']', ';', ',', '?', ':':
		return true
	}
	return false
}
