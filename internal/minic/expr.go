package minic

import (
	"f3m/internal/ir"
)

// rank orders the numeric conversion ladder char < int < long < double.
func rank(t CType) int {
	switch t.Base {
	case "char":
		return 1
	case "int":
		return 2
	case "long":
		return 3
	case "double":
		return 4
	}
	return 0
}

// convert coerces v (of type from) to type to, inserting the numeric
// conversion instructions. Pointer types must match exactly.
func (lw *lowerer) convert(v ir.Value, from, to CType, pos Pos) (ir.Value, error) {
	if from == to {
		return v, nil
	}
	if from.IsPointer() || to.IsPointer() {
		return nil, errf(pos, "cannot convert %s to %s", from, to)
	}
	if from.IsVoid() || to.IsVoid() {
		return nil, errf(pos, "cannot use void value")
	}
	toTy, err := lw.irType(to, pos)
	if err != nil {
		return nil, err
	}
	switch {
	case from.IsFloat() && to.IsInt():
		return lw.bd.Cast(ir.OpFPToSI, v, toTy), nil
	case from.IsInt() && to.IsFloat():
		return lw.bd.Cast(ir.OpSIToFP, v, toTy), nil
	case rank(from) < rank(to):
		return lw.bd.Cast(ir.OpSExt, v, toTy), nil
	default:
		return lw.bd.Cast(ir.OpTrunc, v, toTy), nil
	}
}

// promote widens both operands of a binary operator to the common type.
func (lw *lowerer) promote(l ir.Value, lt CType, r ir.Value, rt CType, pos Pos) (ir.Value, ir.Value, CType, error) {
	if lt == rt {
		return l, r, lt, nil
	}
	var common CType
	if rank(lt) >= rank(rt) {
		common = lt
	} else {
		common = rt
	}
	lc, err := lw.convert(l, lt, common, pos)
	if err != nil {
		return nil, nil, CType{}, err
	}
	rc, err := lw.convert(r, rt, common, pos)
	if err != nil {
		return nil, nil, CType{}, err
	}
	return lc, rc, common, nil
}

// condValue lowers an expression as a branch condition (compare != 0).
func (lw *lowerer) condValue(e Expr) (ir.Value, error) {
	v, vt, err := lw.lowerExpr(e)
	if err != nil {
		return nil, err
	}
	return lw.truthy(v, vt, e.P())
}

func (lw *lowerer) truthy(v ir.Value, vt CType, pos Pos) (ir.Value, error) {
	if v.Type() == lw.mod.Ctx.I1 {
		return v, nil
	}
	switch {
	case vt.IsPointer():
		return lw.bd.ICmp(ir.PredNE, v, ir.ConstNull(v.Type())), nil
	case vt.IsFloat():
		return lw.bd.FCmp(ir.PredONE, v, ir.ConstFloat(v.Type(), 0)), nil
	case vt.IsInt():
		return lw.bd.ICmp(ir.PredNE, v, ir.ConstInt(v.Type(), 0)), nil
	}
	return nil, errf(pos, "value of type %s is not a condition", vt)
}

// boolToInt widens an i1 to the C int type.
func (lw *lowerer) boolToInt(v ir.Value) ir.Value {
	return lw.bd.Cast(ir.OpZExt, v, lw.mod.Ctx.I32)
}

// lvalue computes the address of an assignable expression and its
// element type.
func (lw *lowerer) lvalue(e Expr) (ir.Value, CType, error) {
	switch x := e.(type) {
	case *Ident:
		if lv := lw.lookup(x.Name); lv != nil {
			if lv.arrayLen > 0 {
				return nil, CType{}, errf(x.Pos, "cannot assign to array %q", x.Name)
			}
			return lv.slot, lv.ty, nil
		}
		if g := lw.globals[x.Name]; g != nil {
			if g.ArrayLen > 0 {
				return nil, CType{}, errf(x.Pos, "cannot assign to array %q", x.Name)
			}
			return lw.mod.Global(x.Name), g.Type, nil
		}
		return nil, CType{}, errf(x.Pos, "undefined variable %q", x.Name)
	case *Index:
		return lw.indexAddr(x)
	case *Unary:
		if x.Op == "*" {
			v, vt, err := lw.lowerExpr(x.X)
			if err != nil {
				return nil, CType{}, err
			}
			if !vt.IsPointer() {
				return nil, CType{}, errf(x.Pos, "dereference of non-pointer %s", vt)
			}
			return v, vt.Elem(), nil
		}
	}
	return nil, CType{}, errf(e.P(), "expression is not assignable")
}

// indexAddr computes &a[i] for pointers, local arrays and global
// arrays.
func (lw *lowerer) indexAddr(x *Index) (ir.Value, CType, error) {
	c := lw.mod.Ctx
	idxV, idxT, err := lw.lowerExpr(x.Idx)
	if err != nil {
		return nil, CType{}, err
	}
	if !idxT.IsInt() {
		return nil, CType{}, errf(x.Idx.P(), "index must be an integer, got %s", idxT)
	}
	idx64, err := lw.convert(idxV, idxT, CType{Base: "long"}, x.Idx.P())
	if err != nil {
		return nil, CType{}, err
	}

	// Local or global arrays index through their aggregate slot.
	if id, ok := x.Arr.(*Ident); ok {
		if lv := lw.lookup(id.Name); lv != nil && lv.arrayLen > 0 {
			addr := lw.bd.GEP(lv.slot, ir.ConstInt(c.I64, 0), idx64)
			return addr, lv.ty, nil
		}
		if lv := lw.lookup(id.Name); lv == nil {
			if g := lw.globals[id.Name]; g != nil && g.ArrayLen > 0 {
				addr := lw.bd.GEP(lw.mod.Global(id.Name), ir.ConstInt(c.I64, 0), idx64)
				return addr, g.Type, nil
			}
		}
	}
	arrV, arrT, err := lw.lowerExpr(x.Arr)
	if err != nil {
		return nil, CType{}, err
	}
	if !arrT.IsPointer() {
		return nil, CType{}, errf(x.Arr.P(), "cannot index %s", arrT)
	}
	addr := lw.bd.GEP(arrV, idx64)
	return addr, arrT.Elem(), nil
}

// lowerExpr lowers an rvalue expression, returning the IR value and
// its C type.
func (lw *lowerer) lowerExpr(e Expr) (ir.Value, CType, error) {
	c := lw.mod.Ctx
	switch x := e.(type) {
	case *IntLit:
		// Literals that do not fit in int are long, as in C.
		if x.Value > 1<<31-1 || x.Value < -(1<<31) {
			return ir.ConstInt(c.I64, x.Value), CType{Base: "long"}, nil
		}
		return ir.ConstInt(c.I32, x.Value), CType{Base: "int"}, nil
	case *FloatLit:
		return ir.ConstFloat(c.F64, x.Value), CType{Base: "double"}, nil

	case *Ident:
		if lv := lw.lookup(x.Name); lv != nil {
			if lv.arrayLen > 0 {
				// Array decays to pointer to first element.
				addr := lw.bd.GEP(lv.slot, ir.ConstInt(c.I64, 0), ir.ConstInt(c.I64, 0))
				return addr, CType{Base: lv.ty.Base, Ptr: lv.ty.Ptr + 1}, nil
			}
			return lw.bd.Load(lv.slot), lv.ty, nil
		}
		if g := lw.globals[x.Name]; g != nil {
			gv := lw.mod.Global(x.Name)
			if g.ArrayLen > 0 {
				addr := lw.bd.GEP(gv, ir.ConstInt(c.I64, 0), ir.ConstInt(c.I64, 0))
				return addr, CType{Base: g.Type.Base, Ptr: g.Type.Ptr + 1}, nil
			}
			return lw.bd.Load(gv), g.Type, nil
		}
		return nil, CType{}, errf(x.Pos, "undefined variable %q", x.Name)

	case *Unary:
		return lw.lowerUnary(x)

	case *Binary:
		return lw.lowerBinary(x)

	case *Call:
		fd := lw.funcs[x.Name]
		if fd == nil {
			return nil, CType{}, errf(x.Pos, "call of undefined function %q", x.Name)
		}
		if len(x.Args) != len(fd.Params) {
			return nil, CType{}, errf(x.Pos, "%q takes %d arguments, got %d", x.Name, len(fd.Params), len(x.Args))
		}
		args := make([]ir.Value, len(x.Args))
		for i, a := range x.Args {
			v, vt, err := lw.lowerExpr(a)
			if err != nil {
				return nil, CType{}, err
			}
			v, err = lw.convert(v, vt, fd.Params[i].Type, a.P())
			if err != nil {
				return nil, CType{}, err
			}
			args[i] = v
		}
		call := lw.bd.Call(lw.mod.Func(x.Name), args...)
		return call, fd.Ret, nil

	case *Index:
		addr, elemT, err := lw.indexAddr(x)
		if err != nil {
			return nil, CType{}, err
		}
		return lw.bd.Load(addr), elemT, nil

	case *Ternary:
		return lw.lowerTernary(x)

	case *Cast:
		v, vt, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, CType{}, err
		}
		cv, err := lw.convert(v, vt, x.Ty, x.Pos)
		return cv, x.Ty, err
	}
	return nil, CType{}, errf(e.P(), "unhandled expression %T", e)
}

func (lw *lowerer) lowerUnary(x *Unary) (ir.Value, CType, error) {
	c := lw.mod.Ctx
	switch x.Op {
	case "-":
		v, vt, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, CType{}, err
		}
		if vt.IsFloat() {
			return lw.bd.Binary(ir.OpFSub, ir.ConstFloat(v.Type(), 0), v), vt, nil
		}
		if !vt.IsInt() {
			return nil, CType{}, errf(x.Pos, "cannot negate %s", vt)
		}
		return lw.bd.Sub(ir.ConstInt(v.Type(), 0), v), vt, nil
	case "!":
		cond, err := lw.condValue(x.X)
		if err != nil {
			return nil, CType{}, err
		}
		inv := lw.bd.ICmp(ir.PredEQ, cond, ir.ConstBool(c, false))
		return lw.boolToInt(inv), CType{Base: "int"}, nil
	case "~":
		v, vt, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, CType{}, err
		}
		if !vt.IsInt() {
			return nil, CType{}, errf(x.Pos, "cannot complement %s", vt)
		}
		return lw.bd.Binary(ir.OpXor, v, ir.ConstInt(v.Type(), -1)), vt, nil
	case "*":
		v, vt, err := lw.lowerExpr(x.X)
		if err != nil {
			return nil, CType{}, err
		}
		if !vt.IsPointer() {
			return nil, CType{}, errf(x.Pos, "dereference of non-pointer %s", vt)
		}
		return lw.bd.Load(v), vt.Elem(), nil
	case "&":
		addr, elemT, err := lw.lvalue(x.X)
		if err != nil {
			return nil, CType{}, err
		}
		return addr, CType{Base: elemT.Base, Ptr: elemT.Ptr + 1}, nil
	}
	return nil, CType{}, errf(x.Pos, "unhandled unary %q", x.Op)
}

var cmpPreds = map[string][2]ir.Pred{
	// integer, float
	"<":  {ir.PredSLT, ir.PredOLT},
	"<=": {ir.PredSLE, ir.PredOLE},
	">":  {ir.PredSGT, ir.PredOGT},
	">=": {ir.PredSGE, ir.PredOGE},
	"==": {ir.PredEQ, ir.PredOEQ},
	"!=": {ir.PredNE, ir.PredONE},
}

var intBinOps = map[string]ir.Opcode{
	"+": ir.OpAdd, "-": ir.OpSub, "*": ir.OpMul, "/": ir.OpSDiv, "%": ir.OpSRem,
	"&": ir.OpAnd, "|": ir.OpOr, "^": ir.OpXor, "<<": ir.OpShl, ">>": ir.OpAShr,
}

var fltBinOps = map[string]ir.Opcode{
	"+": ir.OpFAdd, "-": ir.OpFSub, "*": ir.OpFMul, "/": ir.OpFDiv,
}

func (lw *lowerer) lowerBinary(x *Binary) (ir.Value, CType, error) {
	if x.Op == "&&" || x.Op == "||" {
		return lw.lowerShortCircuit(x)
	}

	l, lt, err := lw.lowerExpr(x.L)
	if err != nil {
		return nil, CType{}, err
	}
	r, rt, err := lw.lowerExpr(x.R)
	if err != nil {
		return nil, CType{}, err
	}

	if preds, isCmp := cmpPreds[x.Op]; isCmp {
		if lt.IsPointer() || rt.IsPointer() {
			if lt != rt || (x.Op != "==" && x.Op != "!=") {
				return nil, CType{}, errf(x.Pos, "invalid pointer comparison %s %s %s", lt, x.Op, rt)
			}
			b := lw.bd.ICmp(preds[0], l, r)
			return lw.boolToInt(b), CType{Base: "int"}, nil
		}
		lc, rc, common, err := lw.promote(l, lt, r, rt, x.Pos)
		if err != nil {
			return nil, CType{}, err
		}
		var b *ir.Instr
		if common.IsFloat() {
			b = lw.bd.FCmp(preds[1], lc, rc)
		} else {
			b = lw.bd.ICmp(preds[0], lc, rc)
		}
		return lw.boolToInt(b), CType{Base: "int"}, nil
	}

	return lw.applyBinOp(x.Op, l, lt, r, rt, x.Pos)
}

// applyBinOp lowers an arithmetic or bitwise operator over already
// evaluated operands (shared by binary expressions and compound
// assignments).
func (lw *lowerer) applyBinOp(op string, l ir.Value, lt CType, r ir.Value, rt CType, pos Pos) (ir.Value, CType, error) {
	// Pointer arithmetic: ptr + int / ptr - int.
	if lt.IsPointer() && rt.IsInt() && (op == "+" || op == "-") {
		off, err := lw.convert(r, rt, CType{Base: "long"}, pos)
		if err != nil {
			return nil, CType{}, err
		}
		if op == "-" {
			off = lw.bd.Sub(ir.ConstInt(lw.mod.Ctx.I64, 0), off)
		}
		return lw.bd.GEP(l, off), lt, nil
	}

	lc, rc, common, err := lw.promote(l, lt, r, rt, pos)
	if err != nil {
		return nil, CType{}, err
	}
	if common.IsFloat() {
		fop, ok := fltBinOps[op]
		if !ok {
			return nil, CType{}, errf(pos, "operator %q not defined on %s", op, common)
		}
		return lw.bd.Binary(fop, lc, rc), common, nil
	}
	if !common.IsInt() {
		return nil, CType{}, errf(pos, "operator %q not defined on %s", op, common)
	}
	iop, ok := intBinOps[op]
	if !ok {
		return nil, CType{}, errf(pos, "unhandled operator %q", op)
	}
	return lw.bd.Binary(iop, lc, rc), common, nil
}

// lowerTernary lowers cond ? a : b with control flow and a phi, so
// only the selected arm evaluates (C semantics).
func (lw *lowerer) lowerTernary(x *Ternary) (ir.Value, CType, error) {
	cond, err := lw.condValue(x.Cond)
	if err != nil {
		return nil, CType{}, err
	}
	thenB := lw.fn.NewBlock("")
	elseB := lw.fn.NewBlock("")
	joinB := lw.fn.NewBlock("")
	lw.bd.CondBr(cond, thenB, elseB)

	lw.bd.SetBlock(thenB)
	tv, tt, err := lw.lowerExpr(x.Then)
	if err != nil {
		return nil, CType{}, err
	}
	thenEnd := lw.bd.Cur // the arm may have opened more blocks

	lw.bd.SetBlock(elseB)
	ev, et, err := lw.lowerExpr(x.Else)
	if err != nil {
		return nil, CType{}, err
	}
	elseEnd := lw.bd.Cur

	var common CType
	switch {
	case tt == et:
		common = tt
	case tt.IsPointer() || et.IsPointer() || tt.IsVoid() || et.IsVoid():
		return nil, CType{}, errf(x.Pos, "ternary arms have incompatible types %s and %s", tt, et)
	case rank(tt) >= rank(et):
		common = tt
	default:
		common = et
	}

	lw.bd.SetBlock(thenEnd)
	tv, err = lw.convert(tv, tt, common, x.Then.P())
	if err != nil {
		return nil, CType{}, err
	}
	lw.bd.Br(joinB)

	lw.bd.SetBlock(elseEnd)
	ev, err = lw.convert(ev, et, common, x.Else.P())
	if err != nil {
		return nil, CType{}, err
	}
	lw.bd.Br(joinB)

	lw.bd.SetBlock(joinB)
	cty, err := lw.irType(common, x.Pos)
	if err != nil {
		return nil, CType{}, err
	}
	phi := lw.bd.Phi(cty)
	phi.AddIncoming(tv, thenEnd)
	phi.AddIncoming(ev, elseEnd)
	return phi, common, nil
}

// lowerShortCircuit lowers && and || with control flow and a phi.
func (lw *lowerer) lowerShortCircuit(x *Binary) (ir.Value, CType, error) {
	c := lw.mod.Ctx
	lcond, err := lw.condValue(x.L)
	if err != nil {
		return nil, CType{}, err
	}
	lblock := lw.bd.Cur
	rhsB := lw.fn.NewBlock("")
	joinB := lw.fn.NewBlock("")
	if x.Op == "&&" {
		lw.bd.CondBr(lcond, rhsB, joinB)
	} else {
		lw.bd.CondBr(lcond, joinB, rhsB)
	}

	lw.bd.SetBlock(rhsB)
	rcond, err := lw.condValue(x.R)
	if err != nil {
		return nil, CType{}, err
	}
	rblock := lw.bd.Cur // condValue may have emitted blocks
	lw.bd.Br(joinB)

	lw.bd.SetBlock(joinB)
	phi := lw.bd.Phi(c.I1)
	phi.AddIncoming(ir.ConstBool(c, x.Op == "||"), lblock)
	phi.AddIncoming(rcond, rblock)
	return lw.boolToInt(phi), CType{Base: "int"}, nil
}
