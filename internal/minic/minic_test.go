package minic

import (
	"strings"
	"testing"

	"f3m/internal/interp"
	"f3m/internal/ir"
)

// compileAndRun compiles src and evaluates fn(args...) as integers.
func compileAndRun(t *testing.T, src, fn string, args ...int64) int64 {
	t.Helper()
	m, err := Compile("test", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	f := m.Func(fn)
	if f == nil {
		t.Fatalf("no function @%s", fn)
	}
	mach := interp.NewMachine(m)
	vals := make([]interp.Val, len(args))
	for i, a := range args {
		if f.Params[i].Ty.IsFloat() {
			vals[i] = interp.FloatVal(f.Params[i].Ty, float64(a))
		} else {
			vals[i] = interp.IntVal(f.Params[i].Ty, a)
		}
	}
	out, err := mach.Call(f, vals...)
	if err != nil {
		t.Fatalf("run @%s%v: %v\n%s", fn, args, err, ir.FuncString(f))
	}
	return out.I
}

func TestArithmetic(t *testing.T) {
	src := `
int calc(int a, int b) {
  return (a + b) * 3 - a % b + (a / b);
}`
	// a=17,b=5: (22)*3 - 2 + 3 = 67
	if got := compileAndRun(t, src, "calc", 17, 5); got != 67 {
		t.Errorf("calc(17,5) = %d, want 67", got)
	}
}

func TestIfElseChain(t *testing.T) {
	src := `
int sign(int x) {
  if (x > 0) { return 1; }
  else if (x < 0) { return -1; }
  else { return 0; }
}`
	for _, tc := range []struct{ in, want int64 }{{5, 1}, {-5, -1}, {0, 0}} {
		if got := compileAndRun(t, src, "sign", tc.in); got != tc.want {
			t.Errorf("sign(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
int sumto(int n) {
  int acc = 0;
  int i = 0;
  while (i < n) {
    acc = acc + i;
    i = i + 1;
  }
  return acc;
}`
	if got := compileAndRun(t, src, "sumto", 10); got != 45 {
		t.Errorf("sumto(10) = %d, want 45", got)
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	src := `
int f(int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    if (i == 7) { break; }
    if (i % 2 == 0) { continue; }
    acc = acc + i;
  }
  return acc;
}`
	// odd i below 7: 1+3+5 = 9
	if got := compileAndRun(t, src, "f", 100); got != 9 {
		t.Errorf("f(100) = %d, want 9", got)
	}
}

func TestRecursionFib(t *testing.T) {
	src := `
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}`
	if got := compileAndRun(t, src, "fib", 10); got != 55 {
		t.Errorf("fib(10) = %d, want 55", got)
	}
}

func TestLocalArrays(t *testing.T) {
	src := `
int f(int n) {
  int buf[8];
  for (int i = 0; i < 8; i = i + 1) {
    buf[i] = i * n;
  }
  int acc = 0;
  for (int i = 0; i < 8; i = i + 1) {
    acc = acc + buf[i];
  }
  return acc;
}`
	// n * (0+..+7) = 28n
	if got := compileAndRun(t, src, "f", 3); got != 84 {
		t.Errorf("f(3) = %d, want 84", got)
	}
}

func TestGlobals(t *testing.T) {
	src := `
int counter = 5;
int tab[4];

int bump(int d) {
  counter = counter + d;
  tab[1] = counter;
  return tab[1];
}`
	if got := compileAndRun(t, src, "bump", 3); got != 8 {
		t.Errorf("bump(3) = %d, want 8", got)
	}
}

func TestPointers(t *testing.T) {
	src := `
int deref(int *p) { return *p; }

void setit(int *p, int v) { *p = v; }

int f(int x) {
  int local = x;
  setit(&local, x * 2);
  return deref(&local) + 1;
}`
	if got := compileAndRun(t, src, "f", 10); got != 21 {
		t.Errorf("f(10) = %d, want 21", got)
	}
}

func TestPointerIndexing(t *testing.T) {
	src := `
int sum(int *p, int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) {
    acc = acc + p[i];
  }
  return acc;
}
int f(void) {
  int buf[5];
  for (int i = 0; i < 5; i = i + 1) { buf[i] = i + 1; }
  return sum(buf, 5);
}`
	if got := compileAndRun(t, src, "f"); got != 15 {
		t.Errorf("f() = %d, want 15", got)
	}
}

func TestShortCircuit(t *testing.T) {
	src := `
int g = 0;
int bump(void) { g = g + 1; return 1; }

int f(int x) {
  if (x > 0 && bump() > 0) { }
  if (x > 100 && bump() > 0) { }
  if (x > 0 || bump() > 0) { }
  return g;
}`
	// x=5: first if evaluates bump (g=1); second short-circuits;
	// third short-circuits. g = 1.
	if got := compileAndRun(t, src, "f", 5); got != 1 {
		t.Errorf("f(5) = %d, want 1", got)
	}
	// x=-5: first and second short-circuit; third evaluates bump.
	if got := compileAndRun(t, src, "f", -5); got != 1 {
		t.Errorf("f(-5) = %d, want 1", got)
	}
}

func TestTypePromotion(t *testing.T) {
	src := `
long widen(int a, long b) {
  return a + b;
}
int narrow(long x) {
  int y = x;
  return y;
}
int f(int a) {
  return narrow(widen(a, 1000000000000));
}`
	// (5 + 10^12) truncated to i32: (10^12+5) mod 2^32 = 3567587333 -> signed -727379963+... compute: 10^12 = 0xE8D4A51000; low 32 bits 0xD4A51005 -> signed -727379963. Plus? widen adds first: 10^12+5 => low32 = 0xD4A51005 (+5 => 0xD4A5100A?) compute in test below.
	got := compileAndRun(t, src, "f", 5)
	wide := int64(1000000000000) + 5
	want := int64(int32(wide)) // truncation to int
	if got != want {
		t.Errorf("f(5) = %d, want %d", got, want)
	}
}

func TestDoubleArithmetic(t *testing.T) {
	src := `
double scale(double x, double y) {
  return x * y + 0.5;
}
int f(int a) {
  double d = scale(a, 2.0);
  return d;
}`
	// a=10: 20.5 -> fptosi -> 20
	if got := compileAndRun(t, src, "f", 10); got != 20 {
		t.Errorf("f(10) = %d, want 20", got)
	}
}

func TestUnaryOps(t *testing.T) {
	src := `
int f(int x) {
  return -x + !x + ~x;
}`
	// x=4: -4 + 0 + (-5) = -9
	if got := compileAndRun(t, src, "f", 4); got != -9 {
		t.Errorf("f(4) = %d, want -9", got)
	}
	// x=0: 0 + 1 + (-1) = 0
	if got := compileAndRun(t, src, "f", 0); got != 0 {
		t.Errorf("f(0) = %d, want 0", got)
	}
}

func TestShiftsAndBitwise(t *testing.T) {
	src := `
int f(int x) {
  return ((x << 3) >> 1) ^ (x & 12) | (x % 3);
}`
	x := int64(13)
	want := ((x << 3) >> 1) ^ (x & 12) | (x % 3)
	if got := compileAndRun(t, src, "f", x); got != want {
		t.Errorf("f(%d) = %d, want %d", x, got, want)
	}
}

func TestCharType(t *testing.T) {
	src := `
int f(char c) {
  char d = c + 1;
  return d;
}`
	if got := compileAndRun(t, src, "f", int64('a')); got != int64('b') {
		t.Errorf("f('a') = %d, want 'b'", got)
	}
	// i8 overflow wraps.
	if got := compileAndRun(t, src, "f", 127); got != -128 {
		t.Errorf("f(127) = %d, want -128", got)
	}
}

func TestPrototypesAndMutualRecursion(t *testing.T) {
	src := `
int isOdd(int n);

int isEven(int n) {
  if (n == 0) { return 1; }
  return isOdd(n - 1);
}
int isOdd(int n) {
  if (n == 0) { return 0; }
  return isEven(n - 1);
}`
	if got := compileAndRun(t, src, "isEven", 10); got != 1 {
		t.Errorf("isEven(10) = %d", got)
	}
	if got := compileAndRun(t, src, "isOdd", 10); got != 0 {
		t.Errorf("isOdd(10) = %d", got)
	}
}

func TestVoidFunction(t *testing.T) {
	src := `
int g = 0;
void set(int v) { g = v; return; }
int f(int x) { set(x * 2); return g; }`
	if got := compileAndRun(t, src, "f", 21); got != 42 {
		t.Errorf("f(21) = %d, want 42", got)
	}
}

func TestSSAFormAfterLowering(t *testing.T) {
	src := `
int f(int n) {
  int acc = 0;
  for (int i = 0; i < n; i = i + 1) { acc = acc + i; }
  return acc;
}`
	m, err := Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("f")
	// Mem2Reg must have removed the scalar slots and built phis.
	hasPhi, hasAlloca := false, false
	f.Instructions(func(in *ir.Instr) {
		if in.Op == ir.OpPhi {
			hasPhi = true
		}
		if in.Op == ir.OpAlloca {
			hasAlloca = true
		}
	})
	if !hasPhi {
		t.Errorf("expected phis after Mem2Reg:\n%s", ir.FuncString(f))
	}
	if hasAlloca {
		t.Errorf("scalar slots survived Mem2Reg:\n%s", ir.FuncString(f))
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`int f() { return x; }`, "undefined variable"},
		{`int f() { return g(); }`, "undefined function"},
		{`int f(int a) { int a = 1; return a; }`, "redeclared"},
		{`int f() { break; }`, "break outside loop"},
		{`int f() { continue; }`, "continue outside loop"},
		{`void f() { return 1; }`, "void function returns a value"},
		{`int f() { return; }`, "returns nothing"},
		{`int f(int x) { 5 = x; }`, "not assignable"},
		{`int f(int *p, double d) { return p + d; }`, "cannot convert"},
		{`int f(double d) { return d % 2.0; }`, "not defined on double"},
		{`int f(int a) { return a +; }`, "unexpected token"},
		{`int f(int a) { if a { return 1; } }`, `expected "("`},
		{`int f(int a`, "expected"},
		{`int f(int x) { int v[4]; v = 1; return 0; }`, "cannot assign to array"},
		{`int f(int x) { return x[3]; }`, "cannot index"},
	}
	for _, tc := range cases {
		_, err := Compile("t", tc.src)
		if err == nil {
			t.Errorf("no error for %q", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("error for %q = %q, want substring %q", tc.src, err, tc.want)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("int f() { return @; }"); err == nil {
		t.Error("expected lex error for @")
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("expected lex error for unterminated comment")
	}
}

func TestComments(t *testing.T) {
	src := `
// line comment
int f(int x) {
  /* block
     comment */
  return x; // trailing
}`
	if got := compileAndRun(t, src, "f", 7); got != 7 {
		t.Errorf("f(7) = %d", got)
	}
}

func TestCharLiteral(t *testing.T) {
	src := `
int f(int x) { return x + 'A'; }`
	if got := compileAndRun(t, src, "f", 1); got != 66 {
		t.Errorf("f(1) = %d, want 66", got)
	}
}
