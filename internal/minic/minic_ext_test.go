package minic

import "testing"

// Tests for the extended surface: compound assignment, ++/--, ternary
// and do-while.

func TestCompoundAssignment(t *testing.T) {
	src := `
int f(int x) {
  int a = x;
  a += 5;
  a *= 2;
  a -= 3;
  a /= 2;
  a %= 100;
  a <<= 1;
  a >>= 1;
  a |= 8;
  a &= 127;
  a ^= 3;
  return a;
}`
	x := int64(10)
	a := x
	a += 5
	a *= 2
	a -= 3
	a /= 2
	a %= 100
	a <<= 1
	a >>= 1
	a |= 8
	a &= 127
	a ^= 3
	if got := compileAndRun(t, src, "f", x); got != a {
		t.Errorf("f(%d) = %d, want %d", x, got, a)
	}
}

func TestCompoundAssignmentOnArrayEvaluatesIndexOnce(t *testing.T) {
	src := `
int calls = 0;
int idx(void) { calls += 1; return 2; }

int f(int x) {
  int buf[4];
  buf[2] = x;
  buf[idx()] += 10;
  return buf[2] * 100 + calls;
}`
	// idx() must run exactly once: result (x+10)*100 + 1.
	if got := compileAndRun(t, src, "f", 5); got != 1501 {
		t.Errorf("f(5) = %d, want 1501", got)
	}
}

func TestIncrementDecrement(t *testing.T) {
	src := `
int f(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) {
    acc++;
    acc++;
  }
  acc--;
  return acc;
}`
	if got := compileAndRun(t, src, "f", 5); got != 9 {
		t.Errorf("f(5) = %d, want 9", got)
	}
}

func TestTernary(t *testing.T) {
	src := `
int max(int a, int b) { return a > b ? a : b; }
int f(int x) {
  return max(x, 10) + (x < 0 ? -1 : 1);
}`
	if got := compileAndRun(t, src, "f", 42); got != 43 {
		t.Errorf("f(42) = %d, want 43", got)
	}
	if got := compileAndRun(t, src, "f", -5); got != 9 {
		t.Errorf("f(-5) = %d, want 9", got)
	}
}

func TestTernaryShortCircuits(t *testing.T) {
	src := `
int g = 0;
int bump(int v) { g += 1; return v; }

int f(int x) {
  int r = x > 0 ? bump(1) : bump(2);
  return r * 10 + g;
}`
	// Only one arm may evaluate: g == 1 either way.
	if got := compileAndRun(t, src, "f", 5); got != 11 {
		t.Errorf("f(5) = %d, want 11", got)
	}
	if got := compileAndRun(t, src, "f", -5); got != 21 {
		t.Errorf("f(-5) = %d, want 21", got)
	}
}

func TestTernaryTypePromotion(t *testing.T) {
	src := `
long f(int x) {
  long big = 5000000000;
  return x > 0 ? big : x;
}`
	if got := compileAndRun(t, src, "f", 1); got != 5000000000 {
		t.Errorf("f(1) = %d", got)
	}
	if got := compileAndRun(t, src, "f", -7); got != -7 {
		t.Errorf("f(-7) = %d", got)
	}
}

func TestDoWhile(t *testing.T) {
	src := `
int f(int n) {
  int acc = 0;
  int i = 0;
  do {
    acc += i;
    i++;
  } while (i < n);
  return acc;
}`
	// Body runs at least once: f(0) = 0 (acc += 0 once).
	if got := compileAndRun(t, src, "f", 0); got != 0 {
		t.Errorf("f(0) = %d, want 0", got)
	}
	if got := compileAndRun(t, src, "f", 5); got != 10 {
		t.Errorf("f(5) = %d, want 10", got)
	}
}

func TestDoWhileBreakContinue(t *testing.T) {
	src := `
int f(int n) {
  int acc = 0;
  int i = 0;
  do {
    i++;
    if (i == 3) { continue; }
    if (i > n) { break; }
    acc += i;
  } while (1);
  return acc;
}`
	// i=1,2 added; 3 skipped; 4,5 added; 6 > 5 breaks => 1+2+4+5 = 12
	if got := compileAndRun(t, src, "f", 5); got != 12 {
		t.Errorf("f(5) = %d, want 12", got)
	}
}

func TestConstantFoldedSource(t *testing.T) {
	// Literal arithmetic must fold away entirely.
	src := `
int f(int x) {
  return x + (3 * 7 + 2 - 1 << 1);
}`
	m, err := Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	f := m.Func("f")
	// Only add + ret should survive.
	if f.NumInstrs() != 2 {
		t.Errorf("instrs = %d, want 2 (const expr folded)", f.NumInstrs())
	}
	if got := compileAndRun(t, src, "f", 1); got != 1+(3*7+2-1)<<1+0 && got != 1+((3*7+2-1)<<1) {
		t.Errorf("f(1) = %d", got)
	}
}
