package minic

import "strconv"

// Parse lexes and parses a translation unit.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	return p.parseFile()
}

type parser struct {
	toks []Token
	pos  int
}

func (p *parser) tok() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(text string) bool {
	t := p.tok()
	return (t.Kind == TokPunct || t.Kind == TokKeyword) && t.Text == text
}

func (p *parser) accept(text string) bool {
	if p.at(text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(text string) error {
	if !p.accept(text) {
		return errf(p.tok().Pos, "expected %q, found %q", text, p.tok().Text)
	}
	return nil
}

func (p *parser) atType() bool {
	t := p.tok()
	if t.Kind != TokKeyword {
		return false
	}
	switch t.Text {
	case "int", "long", "char", "double", "void":
		return true
	}
	return false
}

func (p *parser) parseType() (CType, error) {
	if !p.atType() {
		return CType{}, errf(p.tok().Pos, "expected type, found %q", p.tok().Text)
	}
	ty := CType{Base: p.next().Text}
	for p.accept("*") {
		ty.Ptr++
	}
	return ty, nil
}

func (p *parser) parseFile() (*File, error) {
	f := &File{}
	for p.tok().Kind != TokEOF {
		ty, err := p.parseType()
		if err != nil {
			return nil, err
		}
		nameTok := p.tok()
		if nameTok.Kind != TokIdent {
			return nil, errf(nameTok.Pos, "expected name, found %q", nameTok.Text)
		}
		p.next()
		if p.at("(") {
			fn, err := p.parseFuncRest(ty, nameTok)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
			continue
		}
		g := &GlobalDecl{Pos: nameTok.Pos, Name: nameTok.Text, Type: ty}
		if p.accept("[") {
			lenTok := p.tok()
			if lenTok.Kind != TokInt {
				return nil, errf(lenTok.Pos, "expected array length")
			}
			n, _ := strconv.Atoi(lenTok.Text)
			g.ArrayLen = n
			p.next()
			if err := p.expect("]"); err != nil {
				return nil, err
			}
		} else if p.accept("=") {
			init, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			g.Init = init
		}
		if err := p.expect(";"); err != nil {
			return nil, err
		}
		f.Globals = append(f.Globals, g)
	}
	return f, nil
}

func (p *parser) parseFuncRest(ret CType, nameTok Token) (*FuncDecl, error) {
	fn := &FuncDecl{Pos: nameTok.Pos, Name: nameTok.Text, Ret: ret}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	if p.accept("void") {
		// (void) parameter list
	} else {
		for !p.at(")") {
			if len(fn.Params) > 0 {
				if err := p.expect(","); err != nil {
					return nil, err
				}
			}
			pty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			pn := p.tok()
			if pn.Kind != TokIdent {
				return nil, errf(pn.Pos, "expected parameter name")
			}
			p.next()
			fn.Params = append(fn.Params, Param{Pos: pn.Pos, Name: pn.Text, Type: pty})
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if p.accept(";") {
		return fn, nil // prototype
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*BlockStmt, error) {
	pos := p.tok().Pos
	if err := p.expect("{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: pos}
	for !p.accept("}") {
		if p.tok().Kind == TokEOF {
			return nil, errf(p.tok().Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.tok()
	switch {
	case p.at("{"):
		return p.parseBlock()
	case p.at("if"):
		return p.parseIf()
	case p.at("do"):
		p.next()
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		if err := p.expect("while"); err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &DoWhileStmt{Pos: t.Pos, Body: body, Cond: cond}, p.expect(";")
	case p.at("while"):
		p.next()
		if err := p.expect("("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: t.Pos, Cond: cond, Body: body}, nil
	case p.at("for"):
		return p.parseFor()
	case p.at("return"):
		p.next()
		rs := &ReturnStmt{Pos: t.Pos}
		if !p.at(";") {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			rs.Value = v
		}
		return rs, p.expect(";")
	case p.at("break"):
		p.next()
		return &BreakStmt{Pos: t.Pos}, p.expect(";")
	case p.at("continue"):
		p.next()
		return &ContinueStmt{Pos: t.Pos}, p.expect(";")
	case p.atType():
		return p.parseDecl(true)
	default:
		s, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		return s, p.expect(";")
	}
}

// parseDecl parses "type name [= expr];" or "type name[N];".
func (p *parser) parseDecl(wantSemi bool) (Stmt, error) {
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	nameTok := p.tok()
	if nameTok.Kind != TokIdent {
		return nil, errf(nameTok.Pos, "expected variable name")
	}
	p.next()
	d := &DeclStmt{Pos: nameTok.Pos, Name: nameTok.Text, Type: ty}
	if p.accept("[") {
		lenTok := p.tok()
		if lenTok.Kind != TokInt {
			return nil, errf(lenTok.Pos, "expected array length")
		}
		n, _ := strconv.Atoi(lenTok.Text)
		d.ArrayLen = n
		p.next()
		if err := p.expect("]"); err != nil {
			return nil, err
		}
	} else if p.accept("=") {
		init, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if wantSemi {
		return d, p.expect(";")
	}
	return d, nil
}

// parseSimpleStmt parses an assignment or expression statement (no
// trailing semicolon).
func (p *parser) parseSimpleStmt() (Stmt, error) {
	pos := p.tok().Pos
	lhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept("=") {
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &AssignStmt{Pos: pos, Target: lhs, Value: rhs}, nil
	}
	for _, op := range []string{"+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="} {
		if p.accept(op) {
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: pos, Target: lhs, Op: op[:len(op)-1], Value: rhs}, nil
		}
	}
	if p.accept("++") {
		return &AssignStmt{Pos: pos, Target: lhs, Op: "+",
			Value: &IntLit{exprBase: exprBase{Pos: pos}, Value: 1}}, nil
	}
	if p.accept("--") {
		return &AssignStmt{Pos: pos, Target: lhs, Op: "-",
			Value: &IntLit{exprBase: exprBase{Pos: pos}, Value: 1}}, nil
	}
	return &ExprStmt{Pos: pos, X: lhs}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	pos := p.tok().Pos
	p.next() // if
	if err := p.expect("("); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	then, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	is := &IfStmt{Pos: pos, Cond: cond, Then: then}
	if p.accept("else") {
		if p.at("if") {
			els, err := p.parseIf()
			if err != nil {
				return nil, err
			}
			is.Else = els
		} else {
			els, err := p.parseBlock()
			if err != nil {
				return nil, err
			}
			is.Else = els
		}
	}
	return is, nil
}

func (p *parser) parseFor() (Stmt, error) {
	pos := p.tok().Pos
	p.next() // for
	if err := p.expect("("); err != nil {
		return nil, err
	}
	fs := &ForStmt{Pos: pos}
	if !p.at(";") {
		var err error
		if p.atType() {
			fs.Init, err = p.parseDecl(false)
		} else {
			fs.Init, err = p.parseSimpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.at(";") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		fs.Cond = cond
	}
	if err := p.expect(";"); err != nil {
		return nil, err
	}
	if !p.at(")") {
		post, err := p.parseSimpleStmt()
		if err != nil {
			return nil, err
		}
		fs.Post = post
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

// Operator precedence, lowest first.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6,
	"<": 7, "<=": 7, ">": 7, ">=": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) parseExpr() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if !p.at("?") {
		return cond, nil
	}
	pos := p.tok().Pos
	p.next()
	thenE, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	elseE, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &Ternary{exprBase: exprBase{Pos: pos}, Cond: cond, Then: thenE, Else: elseE}, nil
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.tok()
		if t.Kind != TokPunct {
			return lhs, nil
		}
		prec, ok := precedence[t.Text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{exprBase: exprBase{Pos: t.Pos}, Op: t.Text, L: lhs, R: rhs}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.tok()
	if t.Kind == TokPunct {
		switch t.Text {
		case "-", "!", "~", "*", "&":
			p.next()
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &Unary{exprBase: exprBase{Pos: t.Pos}, Op: t.Text, X: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.at("["):
			pos := p.tok().Pos
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect("]"); err != nil {
				return nil, err
			}
			x = &Index{exprBase: exprBase{Pos: pos}, Arr: x, Idx: idx}
		default:
			return x, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.tok()
	switch t.Kind {
	case TokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad integer literal %q", t.Text)
		}
		return &IntLit{exprBase: exprBase{Pos: t.Pos}, Value: v}, nil
	case TokFloat:
		p.next()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad float literal %q", t.Text)
		}
		return &FloatLit{exprBase: exprBase{Pos: t.Pos}, Value: v}, nil
	case TokIdent:
		p.next()
		if p.at("(") {
			p.next()
			call := &Call{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}
			for !p.at(")") {
				if len(call.Args) > 0 {
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.next() // )
			return call, nil
		}
		return &Ident{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}, nil
	case TokPunct:
		if t.Text == "(" {
			p.next()
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return x, p.expect(")")
		}
	}
	return nil, errf(t.Pos, "unexpected token %q", t.Text)
}
