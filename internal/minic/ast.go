package minic

// CType is a frontend type: a base scalar plus pointer depth.
type CType struct {
	Base string // "int", "long", "char", "double", "void"
	Ptr  int    // pointer indirections
}

// IsVoid reports the void type (with no indirections).
func (t CType) IsVoid() bool { return t.Base == "void" && t.Ptr == 0 }

// IsPointer reports whether the type has pointer indirections.
func (t CType) IsPointer() bool { return t.Ptr > 0 }

// IsFloat reports the double scalar type.
func (t CType) IsFloat() bool { return t.Base == "double" && t.Ptr == 0 }

// IsInt reports integer scalar types.
func (t CType) IsInt() bool {
	return t.Ptr == 0 && (t.Base == "int" || t.Base == "long" || t.Base == "char")
}

// Elem returns the pointee type.
func (t CType) Elem() CType { return CType{Base: t.Base, Ptr: t.Ptr - 1} }

// String renders the type.
func (t CType) String() string {
	s := t.Base
	for i := 0; i < t.Ptr; i++ {
		s += "*"
	}
	return s
}

// File is a parsed translation unit.
type File struct {
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// GlobalDecl is a module-level variable.
type GlobalDecl struct {
	Pos  Pos
	Name string
	Type CType
	// ArrayLen > 0 declares a global array.
	ArrayLen int
	// Init is an optional constant initializer (int/float literal).
	Init Expr
}

// FuncDecl is a function definition or prototype.
type FuncDecl struct {
	Pos    Pos
	Name   string
	Ret    CType
	Params []Param
	// Body is nil for prototypes.
	Body *BlockStmt
}

// Param is a function parameter.
type Param struct {
	Pos  Pos
	Name string
	Type CType
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// BlockStmt is a `{ ... }` statement list with its own scope.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

// DeclStmt declares a local variable, optionally an array, optionally
// initialized.
type DeclStmt struct {
	Pos      Pos
	Name     string
	Type     CType
	ArrayLen int
	Init     Expr
}

// AssignStmt stores Value into the lvalue Target. Op is "" for plain
// assignment or the arithmetic operator of a compound assignment
// ("+=", "<<=", ...), already stripped of the '='.
type AssignStmt struct {
	Pos    Pos
	Target Expr // Ident, Index or Deref
	Op     string
	Value  Expr
}

// IfStmt is if/else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt or nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// DoWhileStmt is a do { } while (cond); loop (body runs at least once).
type DoWhileStmt struct {
	Pos  Pos
	Body *BlockStmt
	Cond Expr
}

// ForStmt is a C-style for loop; Init and Post are optional simple
// statements (decl/assign/expr), Cond is optional.
type ForStmt struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Stmt
	Body *BlockStmt
}

// ReturnStmt returns an optional value.
type ReturnStmt struct {
	Pos   Pos
	Value Expr
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Pos Pos }

// ContinueStmt jumps to the innermost loop's post/condition.
type ContinueStmt struct{ Pos Pos }

// ExprStmt evaluates an expression for effect (calls).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*BlockStmt) stmtNode()    {}
func (*DeclStmt) stmtNode()     {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*DoWhileStmt) stmtNode()  {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}

// Expr is an expression node. Types are filled in by the checker.
type Expr interface {
	exprNode()
	// CT returns the checked type (valid after Check).
	CT() CType
	// P returns the source position.
	P() Pos
}

type exprBase struct {
	Pos Pos
	Ty  CType
}

func (e *exprBase) CT() CType { return e.Ty }
func (e *exprBase) P() Pos    { return e.Pos }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a floating literal.
type FloatLit struct {
	exprBase
	Value float64
}

// Ident references a variable or parameter.
type Ident struct {
	exprBase
	Name string
}

// Unary is -x, !x, ~x, *p (deref) or &x (address-of).
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Binary is a two-operand operator, including comparisons and the
// short-circuit && and ||.
type Binary struct {
	exprBase
	Op   string
	L, R Expr
}

// Call invokes a named function.
type Call struct {
	exprBase
	Name string
	Args []Expr
}

// Index is a[i] over a pointer or local array.
type Index struct {
	exprBase
	Arr Expr
	Idx Expr
}

// Ternary is cond ? then : else, evaluated with short-circuit
// semantics (only the taken arm runs).
type Ternary struct {
	exprBase
	Cond, Then, Else Expr
}

// Cast is an implicit numeric conversion inserted by the checker.
type Cast struct {
	exprBase
	X Expr
}

func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*Ident) exprNode()    {}
func (*Unary) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Call) exprNode()     {}
func (*Index) exprNode()    {}
func (*Ternary) exprNode()  {}
func (*Cast) exprNode()     {}
