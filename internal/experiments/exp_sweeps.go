package experiments

import (
	"fmt"
	"time"

	"f3m/internal/core"
	"f3m/internal/irgen"
	"f3m/internal/obs"
	"f3m/internal/stats"
)

// sweepSuites picks the mid-sized workloads the parameter sweeps
// average over (the paper excludes the three largest).
func sweepSuites(o Options) []irgen.SuiteSpec {
	suites := smallSuitesFor(o, 6000)
	if len(suites) > 6 && o.Quick {
		suites = suites[len(suites)-6:]
	}
	return suites
}

// Fig14 reproduces the similarity-threshold sweep: average change in
// compile time and object size relative to t=0, plus the oracle that
// picks the best threshold per workload.
func Fig14(o Options) *Table {
	thresholds := []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5}
	suites := sweepSuites(o)

	type cell struct {
		compile time.Duration
		size    int
	}
	results := make([][]cell, len(suites)) // [suite][threshold]
	for si, s := range suites {
		results[si] = make([]cell, len(thresholds))
		for ti, th := range thresholds {
			cfg := core.DefaultConfig(core.F3MStatic)
			cfg.Threshold = th
			rep := runStrategyOnSuite(s, o.Seed, cfg)
			results[si][ti] = cell{compile: compileTime(rep), size: rep.SizeAfter}
		}
	}

	t := &Table{
		ID:     "fig14",
		Title:  "Similarity-threshold sweep (averages relative to t=0)",
		Header: []string{"threshold", "compile-time delta", "object-size delta"},
	}
	for ti, th := range thresholds {
		var dtime, dsize []float64
		for si := range suites {
			base := results[si][0]
			cur := results[si][ti]
			dtime = append(dtime, float64(cur.compile-base.compile)/float64(base.compile))
			dsize = append(dsize, float64(cur.size-base.size)/float64(base.size))
		}
		t.AddRow(fmt.Sprintf("%.2f", th), pct(stats.Mean(dtime)), pct(stats.Mean(dsize)))
	}

	// Oracle: per workload, the fastest threshold whose size growth
	// stays under 0.1% (the paper's criterion).
	var oracleTime, oracleSize []float64
	histogram := map[float64]int{}
	for si := range suites {
		base := results[si][0]
		bestTi := 0
		for ti := range thresholds {
			cur := results[si][ti]
			sizeDelta := float64(cur.size-base.size) / float64(base.size)
			if sizeDelta <= 0.001 && cur.compile < results[si][bestTi].compile {
				bestTi = ti
			}
		}
		histogram[thresholds[bestTi]]++
		cur := results[si][bestTi]
		oracleTime = append(oracleTime, float64(cur.compile-base.compile)/float64(base.compile))
		oracleSize = append(oracleSize, float64(cur.size-base.size)/float64(base.size))
	}
	t.AddRow("oracle", pct(stats.Mean(oracleTime)), pct(stats.Mean(oracleSize)))
	t.Notef("oracle threshold histogram: %v (paper: best threshold varies widely per benchmark)", histogram)
	return t
}

// Fig15 reproduces the fingerprint-size and LSH-row sweep: the
// compile-time / code-size trade-off as k shrinks and r grows.
func Fig15(o Options) *Table {
	ks := []int{25, 50, 100, 200}
	rows := []int{1, 2, 4, 8}
	suites := sweepSuites(o)

	t := &Table{
		ID:     "fig15",
		Title:  "Fingerprint size (k) and LSH rows (r) sweep (averages relative to k=200,r=2)",
		Header: []string{"config", "compile-time delta", "object-size delta"},
	}

	run := func(k, r int) (time.Duration, int) {
		var ct time.Duration
		sz := 0
		for _, s := range suites {
			cfg := core.DefaultConfig(core.F3MStatic)
			cfg.K = k
			cfg.Rows = r
			cfg.Bands = k / r
			rep := runStrategyOnSuite(s, o.Seed, cfg)
			ct += compileTime(rep)
			sz += rep.SizeAfter
		}
		return ct, sz
	}
	baseTime, baseSize := run(200, 2)
	for _, r := range rows {
		for _, k := range ks {
			if k < r {
				continue
			}
			ct, sz := run(k, r)
			t.AddRow(fmt.Sprintf("k=%d r=%d b=%d", k, r, k/r),
				pct(float64(ct-baseTime)/float64(baseTime)),
				pct(float64(sz-baseSize)/float64(baseSize)))
		}
	}
	t.Notef("paper: raising r cuts compile time fast but costs size (r=8 loses most reduction); shrinking k is the gentler knob")
	return t
}

// Fig16 reproduces the bucket-cap sweep on the linux-shaped workload:
// capping per-bucket comparisons barely affects code size while
// trimming ranking time, because only a tiny fraction of buckets is
// overpopulated yet they host most comparisons. The bucket accounting
// is read from the observability registry's named metrics
// (lsh.comparisons, lsh.bucket_cap_skips, ...) rather than private
// report fields, so the figure exercises the same export path users of
// `f3m -metrics` see.
func Fig16(o Options) *Table {
	spec := linuxShaped(o)
	caps := []int{2, 10, 50, 100, 1000, -1}
	t := &Table{
		ID:     "fig16",
		Title:  "Bucket search cap sweep (linux-shaped)",
		Header: []string{"cap", "reduction", "comparisons", "cap skips", "merge-pass time"},
	}
	for _, c := range caps {
		cfg := core.DefaultConfig(core.F3MStatic)
		cfg.BucketCap = c
		cfg.Metrics = obs.NewMetrics()
		rep := runStrategyOnSuite(spec, o.Seed, cfg)
		label := fmt.Sprintf("%d", c)
		if c < 0 {
			label = "unlimited"
		}
		t.AddRow(label,
			fmt.Sprintf("%.2f%%", 100*rep.Reduction()),
			fmt.Sprintf("%d", rep.Metrics.CounterValue("lsh.comparisons")),
			fmt.Sprintf("%d", rep.Metrics.CounterValue("lsh.bucket_cap_skips")),
			secs(rep.Times.Total()))
	}
	// Bucket-population shape, as quoted in Section IV-E.
	cfg := core.DefaultConfig(core.F3MStatic)
	cfg.Metrics = obs.NewMetrics()
	rep := runStrategyOnSuite(spec, o.Seed, cfg)
	t.Notef("max bucket load %.0f over %d buckets used (paper: <0.03%% of buckets overpopulated, hosting ~75%% of comparisons)",
		rep.Metrics.GaugeValue("lsh.max_bucket_load"), rep.Metrics.CounterValue("lsh.buckets_used"))
	t.Notef("paper: even cap=2 keeps reduction within noise; cap=100 recovers ~4%% compile time")
	return t
}
