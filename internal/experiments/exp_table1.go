package experiments

import (
	"fmt"

	"f3m/internal/core"
	"f3m/internal/irgen"
)

// Table1 reproduces the paper's workload table: every evaluated
// program with its function count and size. The synthetic suites are
// shaped after the paper's rows (SPEC-sized suites use the paper's
// reported function counts; the linux/chrome rows are scaled down, see
// DESIGN.md).
func Table1(o Options) *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Workloads (synthetic analogues of the paper's Table I)",
		Header: []string{"workload", "functions", "instructions", "size-model cost", "family functions"},
	}
	for _, s := range suitesFor(o) {
		res := irgen.Generate(s.Config(o.Seed))
		m := res.Module
		fam := 0
		for _, inf := range res.Info {
			if inf.Family >= 0 {
				fam++
			}
		}
		t.AddRow(s.Name,
			fmt.Sprintf("%d", len(m.Funcs)),
			fmt.Sprintf("%d", m.NumInstrs()),
			fmt.Sprintf("%d", core.ModuleCost(m)),
			fmt.Sprintf("%d", fam),
		)
	}
	t.Notef("seed %d; quick=%v. Function counts follow Table I; linux/chrome rows scaled (DESIGN.md).", o.Seed, o.Quick)
	return t
}
