// Package experiments regenerates every table and figure of the F3M
// paper's evaluation on the synthetic workload suites. Each experiment
// is a function from Options to a renderable Table; the registry maps
// the paper's table/figure numbers to runners, and cmd/f3m-experiments
// prints them.
//
// Absolute numbers differ from the paper (the substrate is a synthetic
// IR population and an instruction-count cost model, not LLVM on SPEC
// and Chrome), but each experiment reproduces the paper's *shape*: who
// wins, by roughly what factor, and where the trends cross. Paper-vs-
// measured numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"f3m/internal/core"
	"f3m/internal/ir"
	"f3m/internal/irgen"
)

// Options tune experiment scale.
type Options struct {
	// Seed drives workload generation.
	Seed int64

	// Quick shrinks the workloads so the whole registry runs in a few
	// minutes; the full configuration takes tens of minutes (dominated
	// by HyFM's quadratic ranking, which is the point).
	Quick bool

	// Tiny shrinks harder still, for testing.B benchmark iterations.
	Tiny bool

	// Repeats is how many times timed experiments re-run (the paper
	// uses 10 or a three-hour cap); quick mode uses 1.
	Repeats int
}

// DefaultOptions is the full-scale configuration.
func DefaultOptions() Options { return Options{Seed: 20220402, Repeats: 3} }

// QuickOptions is the test/bench configuration.
func QuickOptions() Options { return Options{Seed: 20220402, Quick: true, Repeats: 1} }

func (o Options) repeats() int {
	if o.Repeats <= 0 {
		return 1
	}
	return o.Repeats
}

// Table is a rendered experiment result.
type Table struct {
	ID     string // "table1", "fig11", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Notef appends a formatted note line.
func (t *Table) Notef(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Runner executes one experiment.
type Runner func(Options) *Table

// Registry maps experiment ids to runners, in paper order.
var Registry = []struct {
	ID  string
	Run Runner
}{
	{"table1", Table1},
	{"fig3", Fig3},
	{"fig4", Fig4},
	{"fig6", Fig6},
	{"fig9", Fig9},
	{"fig10", Fig10},
	{"fig11", Fig11},
	{"fig12", Fig12},
	{"fig13", Fig13},
	{"fig14", Fig14},
	{"fig15", Fig15},
	{"fig16", Fig16},
	{"fig17", Fig17},
	{"ext-profile", ExtProfile},
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// --- shared workload helpers ---

// suitesFor returns the benchmark suites sized for the options.
func suitesFor(o Options) []irgen.SuiteSpec {
	if !o.Quick && !o.Tiny {
		return irgen.Suites
	}
	div, cap_ := 8, 1500
	if o.Tiny {
		div, cap_ = 24, 300
	}
	var out []irgen.SuiteSpec
	for _, s := range irgen.Suites {
		s.Funcs /= div
		if s.Funcs < 60 {
			s.Funcs = 60
		}
		if s.Funcs > cap_ {
			s.Funcs = cap_
		}
		out = append(out, s)
	}
	return out
}

// smallSuitesFor filters to pipeline-friendly sizes.
func smallSuitesFor(o Options, maxFuncs int) []irgen.SuiteSpec {
	var out []irgen.SuiteSpec
	for _, s := range suitesFor(o) {
		if s.Funcs <= maxFuncs {
			out = append(out, s)
		}
	}
	return out
}

// moduleCache holds pristine generated modules so the sweeps clone
// instead of regenerating (generation dominates quick-mode runtime).
var moduleCache = map[string]*ir.Module{}

// genSuite returns a fresh (mutable) module for a suite, cloning from
// the cache of pristine generations.
func genSuite(s irgen.SuiteSpec, seed int64) *ir.Module {
	key := fmt.Sprintf("%s/%d/%d", s.Name, s.Funcs, seed)
	pristine, ok := moduleCache[key]
	if !ok {
		pristine = irgen.Generate(s.Config(seed)).Module
		moduleCache[key] = pristine
	}
	return ir.CloneModule(pristine)
}

// linuxShaped returns the mid-size suite used by the Linux-kernel
// figures (4, 6, 9, 10, 16).
func linuxShaped(o Options) irgen.SuiteSpec {
	for _, s := range suitesFor(o) {
		if s.Name == "linux-shaped" {
			return s
		}
	}
	return suitesFor(o)[0]
}

// BackendNsPerCost converts the size model into modelled backend
// compilation time: the paper's compile-time results include all
// post-merge optimization, code generation and linking, whose cost is
// roughly proportional to surviving code size. 100µs per size unit
// models a full -Os backend pipeline (~10k instructions/second through
// optimization + codegen + linking), putting the merge pass and the
// backend in the same proportion as the paper's Figure 12.
const BackendNsPerCost = 100_000

// compileTime models total compilation: the merging pass plus a
// size-proportional backend.
func compileTime(rep *core.Report) time.Duration {
	return rep.Times.Total() + time.Duration(rep.SizeAfter)*BackendNsPerCost
}

// baselineCompileTime models compilation without any merging.
func baselineCompileTime(rep *core.Report) time.Duration {
	return time.Duration(rep.SizeBefore) * BackendNsPerCost
}

// pct formats a ratio as a signed percentage.
func pct(x float64) string { return fmt.Sprintf("%+.1f%%", 100*x) }

// runStrategyOnSuite regenerates the suite module (same seed) and runs
// one strategy, so every strategy sees an identical population.
func runStrategyOnSuite(s irgen.SuiteSpec, seed int64, cfg core.Config) *core.Report {
	m := genSuite(s, seed)
	rep, err := core.Run(m, cfg)
	if err != nil {
		panic(fmt.Sprintf("experiments: %s on %s: %v", cfg.Strategy, s.Name, err))
	}
	return rep
}

// sortedCopy returns a sorted copy of durations in ms.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}

func secs(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

var _ = sort.Ints // sort is used by several experiment files
