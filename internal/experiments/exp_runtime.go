package experiments

import (
	"fmt"

	"f3m/internal/core"
	"f3m/internal/interp"
	"f3m/internal/ir"
	"f3m/internal/irgen"
	"f3m/internal/stats"
)

// Fig17 reproduces the program-performance impact of merged code.
// Merging inserts guards and selects on the function-identifier path,
// so merged functions execute extra dynamic instructions. The paper
// measures SPEC runtimes; here the interpreter counts dynamic
// instructions over a fixed driver workload before and after merging.
func Fig17(o Options) *Table {
	t := &Table{
		ID:     "fig17",
		Title:  "Runtime impact: dynamic-instruction overhead of merged code",
		Header: []string{"workload", "baseline instrs", "HyFM", "F3M", "F3M-adapt"},
	}
	suites := smallSuitesFor(o, 3000)
	if o.Quick && len(suites) > 5 {
		suites = suites[:5]
	}
	var over [3][]float64
	for _, s := range suites {
		base := dynInstrs(s, o.Seed, nil)
		row := []string{s.Name, fmt.Sprintf("%d", base), "", "", ""}
		for si, strat := range sizeStrategies {
			cfg := core.DefaultConfig(strat)
			merged := dynInstrs(s, o.Seed, &cfg)
			ov := float64(merged-base) / float64(base)
			over[si] = append(over[si], ov)
			row[2+si] = pct(ov)
		}
		t.AddRow(row...)
	}
	t.AddRow("AVERAGE", "",
		pct(stats.Mean(over[0])), pct(stats.Mean(over[1])), pct(stats.Mean(over[2])))
	t.Notef("paper: average slowdown 3.9-5%% across affected SPEC benchmarks, mostly below 5%% per benchmark")
	return t
}

// dynInstrs generates the suite, optionally merges it, then interprets
// every driver and returns the total dynamic instruction count.
func dynInstrs(s irgen.SuiteSpec, seed int64, cfg *core.Config) int64 {
	m := genSuite(s, seed)
	drivers := irgen.AddDrivers(m)
	if cfg != nil {
		if _, err := core.Run(m, *cfg); err != nil {
			panic(err)
		}
	}
	mach := interp.NewMachine(m)
	mach.StepLimit = 1 << 62
	for _, d := range drivers {
		if _, err := mach.Call(m.Func(d)); err != nil {
			panic(fmt.Sprintf("experiments: driver %s: %v\n%s", d, err, ir.FuncString(m.Func(d))))
		}
	}
	return mach.Steps
}
