package experiments

import (
	"fmt"
	"math/rand"

	"f3m/internal/align"
	"f3m/internal/fingerprint"
	"f3m/internal/ir"
	"f3m/internal/stats"
)

// correlationData samples random function pairs from the linux-shaped
// suite and computes, for each pair, the alignment ratio (ground
// truth) plus both fingerprint similarities.
type correlationData struct {
	freqSim, mhSim, ratio []float64
}

func sampleCorrelation(o Options) *correlationData {
	spec := linuxShaped(o)
	// The full pair set (the paper evaluates all 800M Linux pairs) is
	// quadratic; sample pairs uniformly instead.
	pairs := 200_000
	if o.Quick {
		pairs = 20_000
	}
	m := genSuite(spec, o.Seed)
	var fns []*ir.Function
	for _, f := range m.Funcs {
		if !f.IsDecl() {
			fns = append(fns, f)
		}
	}
	mhCfg := fingerprint.DefaultConfig()
	type pre struct {
		freq *fingerprint.FreqVector
		mh   fingerprint.MinHash
		enc  []fingerprint.Encoded
	}
	pres := make([]pre, len(fns))
	for i, f := range fns {
		enc := fingerprint.EncodeFunc(f)
		pres[i] = pre{freq: fingerprint.FreqFunc(f), mh: mhCfg.New(enc), enc: enc}
	}

	rng := rand.New(rand.NewSource(o.Seed))
	d := &correlationData{}
	for p := 0; p < pairs; p++ {
		i := rng.Intn(len(fns))
		j := rng.Intn(len(fns))
		if i == j {
			continue
		}
		d.freqSim = append(d.freqSim, pres[i].freq.Similarity(pres[j].freq))
		d.mhSim = append(d.mhSim, pres[i].mh.Jaccard(pres[j].mh))
		d.ratio = append(d.ratio, align.MergeRatio(fns[i], fns[j], 0.5))
	}
	return d
}

var corrCache = map[int64]*correlationData{}

func correlation(o Options) *correlationData {
	key := o.Seed
	if o.Quick {
		key = -o.Seed
	}
	if d, ok := corrCache[key]; ok {
		return d
	}
	d := sampleCorrelation(o)
	corrCache[key] = d
	return d
}

// Fig4 reproduces the heatmap of opcode-frequency fingerprint
// similarity versus alignment ratio on the linux-shaped suite. The
// paper reports R = 0.20: the HyFM metric barely predicts how well two
// functions align.
func Fig4(o Options) *Table {
	d := correlation(o)
	r := stats.Pearson(d.freqSim, d.ratio)
	t := heatmapTable("fig4",
		"Opcode-frequency similarity vs alignment ratio (paper: R=0.20)",
		d.freqSim, d.ratio)
	t.Notef("Pearson R = %.3f over %d sampled pairs", r, len(d.ratio))
	return t
}

// Fig10 is the same heatmap under the MinHash fingerprint. The paper
// reports R = 0.616, about 3x the correlation of the frequency
// fingerprint.
func Fig10(o Options) *Table {
	d := correlation(o)
	rFreq := stats.Pearson(d.freqSim, d.ratio)
	rMH := stats.Pearson(d.mhSim, d.ratio)
	t := heatmapTable("fig10",
		"MinHash similarity vs alignment ratio (paper: R=0.616)",
		d.mhSim, d.ratio)
	t.Notef("Pearson R = %.3f over %d sampled pairs", rMH, len(d.ratio))
	t.Notef("improvement over frequency fingerprint: %.2fx (paper: 3.1x)", ratioOf(rMH, rFreq))
	return t
}

func ratioOf(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// heatmapTable renders a 20x20 density plot of (x=similarity,
// y=alignment ratio).
func heatmapTable(id, title string, xs, ys []float64) *Table {
	hm := stats.NewHeatmap(0, 1, 40, 0, 1, 20)
	for i := range xs {
		hm.Add(xs[i], ys[i])
	}
	t := &Table{ID: id, Title: title, Header: []string{"alignment-ratio(y) x similarity(x) density"}}
	for _, line := range splitLines(hm.Render()) {
		t.AddRow(line)
	}
	t.AddRow(fmt.Sprintf("%-40s", "0 -> similarity -> 1"))
	return t
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
