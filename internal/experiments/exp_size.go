package experiments

import (
	"fmt"

	"f3m/internal/core"
	"f3m/internal/stats"
)

// sizeStrategies are the three compared lines of Figures 11-13.
var sizeStrategies = []core.Strategy{core.HyFM, core.F3MStatic, core.F3MAdaptive}

// Fig11 reproduces the linked-object size reduction per workload for
// HyFM, F3M and adaptive F3M. The paper finds F3M achieves equal or
// better reduction while attempting fewer merges.
func Fig11(o Options) *Table {
	t := &Table{
		ID:     "fig11",
		Title:  "Code-size reduction per workload (higher is better)",
		Header: []string{"workload", "funcs", "HyFM", "F3M", "F3M-adapt", "HyFM merges", "F3M merges"},
	}
	perStrategy := map[core.Strategy][]float64{}
	for _, s := range smallSuitesFor(o, 15000) {
		row := []string{s.Name, "", "", "", "", "", ""}
		var mergesH, mergesF int
		for _, strat := range sizeStrategies {
			rep := runStrategyOnSuite(s, o.Seed, core.DefaultConfig(strat))
			perStrategy[strat] = append(perStrategy[strat], rep.Reduction())
			switch strat {
			case core.HyFM:
				row[1] = fmt.Sprintf("%d", rep.NumFuncs)
				row[2] = fmt.Sprintf("%.2f%%", 100*rep.Reduction())
				mergesH = rep.Merges
			case core.F3MStatic:
				row[3] = fmt.Sprintf("%.2f%%", 100*rep.Reduction())
				mergesF = rep.Merges
			case core.F3MAdaptive:
				row[4] = fmt.Sprintf("%.2f%%", 100*rep.Reduction())
			}
		}
		row[5] = fmt.Sprintf("%d", mergesH)
		row[6] = fmt.Sprintf("%d", mergesF)
		t.AddRow(row...)
	}
	t.AddRow("AVERAGE", "",
		fmt.Sprintf("%.2f%%", 100*stats.Mean(perStrategy[core.HyFM])),
		fmt.Sprintf("%.2f%%", 100*stats.Mean(perStrategy[core.F3MStatic])),
		fmt.Sprintf("%.2f%%", 100*stats.Mean(perStrategy[core.F3MAdaptive])), "", "")
	t.Notef("paper: F3M averages 7.6%% object-size reduction, ~6pp above bug-fixed HyFM on large apps")
	return t
}

// Fig12 reproduces the end-to-end compile-time overhead relative to a
// build without function merging, using the modelled backend cost
// (BackendNsPerCost x surviving size). For small programs all
// strategies cost about the same; for large ones HyFM's ranking blows
// up while F3M approaches (or beats) the no-merging baseline.
func Fig12(o Options) *Table {
	t := &Table{
		ID:     "fig12",
		Title:  "Compile-time overhead vs no-merging baseline (lower is better)",
		Header: []string{"workload", "funcs", "HyFM", "F3M", "F3M-adapt"},
	}
	var rows [][2]float64
	for _, s := range smallSuitesFor(o, 15000) {
		row := []string{s.Name, "", "", "", ""}
		var overheads [3]float64
		for si, strat := range sizeStrategies {
			rep := runStrategyOnSuite(s, o.Seed, core.DefaultConfig(strat))
			base := baselineCompileTime(rep)
			with := compileTime(rep)
			overheads[si] = float64(with-base) / float64(base)
			if si == 0 {
				row[1] = fmt.Sprintf("%d", rep.NumFuncs)
			}
			row[2+si] = pct(overheads[si])
		}
		rows = append(rows, [2]float64{overheads[0], overheads[1]})
		t.AddRow(row...)
	}
	// Count workloads where F3M compiles faster than HyFM.
	faster := 0
	for _, r := range rows {
		if r[1] < r[0] {
			faster++
		}
	}
	t.Notef("F3M compiles faster than HyFM on %d/%d workloads (paper: all programs > 9k functions)", faster, len(rows))
	t.Notef("negative overhead = faster than no merging (merged code shrinks backend work)")
	return t
}
