package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every registered experiment at quick
// scale and sanity-checks the rendered output. This is the smoke test
// that the whole evaluation pipeline holds together.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	o := QuickOptions()
	for _, e := range Registry {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run(o)
			if tab.ID != e.ID {
				t.Errorf("table id %q, want %q", tab.ID, e.ID)
			}
			out := tab.Render()
			if !strings.Contains(out, tab.Title) {
				t.Error("render missing title")
			}
			if len(tab.Rows) == 0 {
				t.Error("no rows")
			}
			t.Log("\n" + out)
		})
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("fig11"); !ok {
		t.Error("fig11 missing from registry")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("bogus id found")
	}
}

func TestSuiteScaling(t *testing.T) {
	full := suitesFor(Options{})
	quick := suitesFor(Options{Quick: true})
	tiny := suitesFor(Options{Tiny: true})
	if len(full) != len(quick) || len(full) != len(tiny) {
		t.Fatal("suite lists differ in length across scales")
	}
	for i := range full {
		if quick[i].Funcs > full[i].Funcs {
			t.Errorf("%s: quick larger than full", full[i].Name)
		}
		if tiny[i].Funcs > 300 {
			t.Errorf("%s: tiny suite has %d functions, cap is 300", tiny[i].Name, tiny[i].Funcs)
		}
		if quick[i].Funcs < 60 || tiny[i].Funcs < 60 {
			t.Errorf("%s: scaled below the 60-function floor", full[i].Name)
		}
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notef("n=%d", 3)
	out := tab.Render()
	for _, want := range []string{"== x: T ==", "a", "bb", "note: n=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
