package experiments

import (
	"fmt"
	"time"

	"f3m/internal/core"
	"f3m/internal/irgen"
)

// breakdownSuites picks the three program sizes Figure 3 plots
// (perlbench-, linux- and chrome-shaped).
func breakdownSuites(o Options) []irgen.SuiteSpec {
	var out []irgen.SuiteSpec
	for _, s := range suitesFor(o) {
		switch s.Name {
		case "400.perlbench", "linux-shaped", "chrome-shaped":
			out = append(out, s)
		}
	}
	return out
}

// Fig3 reproduces the HyFM stage breakdown across program sizes: for
// small programs ranking is a minor cost, while for large ones the
// quadratic ranking dominates everything (the paper's 46-hour Chrome
// run is 99%+ ranking).
func Fig3(o Options) *Table {
	t := &Table{
		ID:     "fig3",
		Title:  "HyFM compilation-stage breakdown by program size",
		Header: []string{"workload", "funcs", "total", "preprocess", "rank-succ", "rank-fail", "align-succ", "align-fail", "codegen-succ", "codegen-fail", "rank share"},
	}
	for _, s := range breakdownSuites(o) {
		rep := runStrategyOnSuite(s, o.Seed, core.DefaultConfig(core.HyFM))
		tt := rep.Times
		total := tt.Total()
		rankShare := float64(tt.RankSuccess+tt.RankFail) / float64(total)
		t.AddRow(s.Name, fmt.Sprintf("%d", rep.NumFuncs), secs(total),
			ms(tt.Preprocess), ms(tt.RankSuccess), ms(tt.RankFail),
			ms(tt.AlignSuccess), ms(tt.AlignFail), ms(tt.CodegenSuccess), ms(tt.CodegenFail),
			fmt.Sprintf("%.1f%%", 100*rankShare))
	}
	t.Notef("paper: ranking is small for 400.perlbench, 80%% of HyFM time on Linux, ~100%% on Chrome")
	return t
}

// Fig13 reproduces the merge-pass stage breakdown per strategy,
// normalized to HyFM's total on the same workload: F3M eliminates most
// of the ranking cost on large programs; on small ones the MinHash
// preprocessing costs slightly more.
func Fig13(o Options) *Table {
	t := &Table{
		ID:     "fig13",
		Title:  "Merge-pass stage breakdown, normalized to HyFM total per workload",
		Header: []string{"workload", "strategy", "preprocess", "ranking", "align", "codegen", "total"},
	}
	suites := smallSuitesFor(o, 15000)
	for _, s := range suites {
		var hyfmTotal time.Duration
		for _, strat := range []core.Strategy{core.HyFM, core.F3MStatic, core.F3MAdaptive} {
			rep := runStrategyOnSuite(s, o.Seed, core.DefaultConfig(strat))
			tt := rep.Times
			if strat == core.HyFM {
				hyfmTotal = tt.Total()
			}
			norm := func(d time.Duration) string {
				if hyfmTotal == 0 {
					return "-"
				}
				return fmt.Sprintf("%.1f%%", 100*float64(d)/float64(hyfmTotal))
			}
			t.AddRow(s.Name, strat.String(),
				norm(tt.Preprocess),
				norm(tt.RankSuccess+tt.RankFail),
				norm(tt.AlignSuccess+tt.AlignFail),
				norm(tt.CodegenSuccess+tt.CodegenFail),
				norm(tt.Total()))
		}
	}
	t.Notef("paper: for larger programs the HyFM bar is dominated by ranking, which the F3M bars eliminate")
	return t
}
