package experiments

import (
	"fmt"

	"f3m/internal/core"
	"f3m/internal/interp"
	"f3m/internal/irgen"
	"f3m/internal/stats"
)

// ExtProfile evaluates the profile-guided extension the paper proposes
// as future work (Section IV-F): "a more performance-aware
// implementation of function merging would use profiling information
// to influence candidate selection towards infrequently used
// functions. This would eliminate all or almost all performance
// overhead." We profile each workload with the interpreter, feed call
// counts into the ranking's candidate selection, and compare the
// dynamic-instruction overhead of plain F3M against profile-guided
// F3M, plus the code-size cost of the steering.
func ExtProfile(o Options) *Table {
	t := &Table{
		ID:     "ext-profile",
		Title:  "Profile-guided candidate selection (paper Sec. IV-F future work)",
		Header: []string{"workload", "F3M overhead", "F3M+profile overhead", "F3M reduction", "F3M+profile reduction"},
	}
	suites := smallSuitesFor(o, 3000)
	if o.Quick && len(suites) > 5 {
		suites = suites[:5]
	}
	var plainOv, profOv, plainRed, profRed []float64
	for _, s := range suites {
		base, counts := profiledRun(s, o.Seed, nil)

		plainCfg := core.DefaultConfig(core.F3MStatic)
		plain, _ := profiledRun(s, o.Seed, &plainCfg)

		profCfg := core.DefaultConfig(core.F3MStatic)
		profCfg.Hotness = func(name string) float64 { return float64(counts[name]) }
		// Skip the hot set: functions called more than 8x the median.
		profCfg.HotSkip = 8 * medianCount(counts)
		prof, _ := profiledRun(s, o.Seed, &profCfg)

		po := float64(plain.steps-base.steps) / float64(base.steps)
		fo := float64(prof.steps-base.steps) / float64(base.steps)
		plainOv = append(plainOv, po)
		profOv = append(profOv, fo)
		plainRed = append(plainRed, plain.reduction)
		profRed = append(profRed, prof.reduction)
		t.AddRow(s.Name, pct(po), pct(fo),
			fmt.Sprintf("%.2f%%", 100*plain.reduction),
			fmt.Sprintf("%.2f%%", 100*prof.reduction))
	}
	t.AddRow("AVERAGE", pct(stats.Mean(plainOv)), pct(stats.Mean(profOv)),
		fmt.Sprintf("%.2f%%", 100*stats.Mean(plainRed)),
		fmt.Sprintf("%.2f%%", 100*stats.Mean(profRed)))
	t.Notef("paper's conjecture: steering selection to cold candidates should remove most runtime overhead at little size cost")
	return t
}

// medianCount returns the median positive call count.
func medianCount(counts map[string]int64) float64 {
	var vals []float64
	for _, c := range counts {
		if c > 0 {
			vals = append(vals, float64(c))
		}
	}
	return stats.Median(vals)
}

type profiledResult struct {
	steps     int64
	reduction float64
}

// profiledRun generates the suite with drivers, optionally merges with
// cfg, interprets all drivers, and returns dynamic instructions plus
// (when merged) the size reduction. It also returns the call-count
// profile of the run.
func profiledRun(s irgen.SuiteSpec, seed int64, cfg *core.Config) (profiledResult, map[string]int64) {
	m := genSuite(s, seed)
	drivers := irgen.AddDrivers(m)
	// Real programs concentrate runtime in a small hot set; plant that
	// skew so the profile carries a signal (1 in 8 functions runs 64x
	// hotter).
	drivers = append(drivers, irgen.AddHotDrivers(m, 8, 64)...)
	var res profiledResult
	if cfg != nil {
		rep, err := core.Run(m, *cfg)
		if err != nil {
			panic(err)
		}
		res.reduction = rep.Reduction()
	}
	mach := interp.NewMachine(m)
	mach.StepLimit = 1 << 62
	for _, d := range drivers {
		if _, err := mach.Call(m.Func(d)); err != nil {
			panic(fmt.Sprintf("experiments: driver %s: %v", d, err))
		}
	}
	res.steps = mach.Steps
	return res, mach.CallCounts
}
