package experiments

import (
	"fmt"
	"time"

	"f3m/internal/core"
	"f3m/internal/stats"
)

// Fig6 reproduces the histogram of fingerprint similarities for the
// pairs HyFM's nearest-neighbour ranking selects, split by whether the
// resulting merge was profitable. The paper's point: selected pairs
// scatter across the whole similarity range, and even low-similarity
// selections are sometimes profitable — so a fast-but-approximate
// search over *frequency* fingerprints would lose real merges.
func Fig6(o Options) *Table {
	spec := linuxShaped(o)
	rep := runStrategyOnSuite(spec, o.Seed, core.DefaultConfig(core.HyFM))

	profitable := stats.NewHistogram(0, 1, 10)
	unprofitable := stats.NewHistogram(0, 1, 10)
	for _, p := range rep.Pairs {
		if !p.Attempted {
			continue
		}
		if p.Profitable {
			profitable.Add(p.Similarity)
		} else {
			unprofitable.Add(p.Similarity)
		}
	}
	t := &Table{
		ID:     "fig6",
		Title:  "HyFM-selected pair similarity histogram (frequency fingerprints)",
		Header: []string{"similarity bin", "profitable", "unprofitable", "success rate"},
	}
	var lowProfit, allProfit int64
	for i := range profitable.Counts {
		p, u := profitable.Counts[i], unprofitable.Counts[i]
		rate := "-"
		if p+u > 0 {
			rate = fmt.Sprintf("%.0f%%", 100*float64(p)/float64(p+u))
		}
		t.AddRow(fmt.Sprintf("%.2f", profitable.BinCenter(i)),
			fmt.Sprintf("%d", p), fmt.Sprintf("%d", u), rate)
		allProfit += p
		if profitable.BinCenter(i) < 0.5 {
			lowProfit += p
		}
	}
	if allProfit > 0 {
		t.Notef("%.0f%% of profitable pairs have similarity < 0.5 (paper: ~10%%)", 100*float64(lowProfit)/float64(allProfit))
	}
	t.Notef("workload %s, %d selected pairs", spec.Name, rep.Attempts)
	return t
}

// Fig9 reproduces the contribution analysis for F3M: code-size
// reduction and merging overhead accumulated by MinHash similarity of
// the selected pair. High-similarity pairs deliver nearly all of the
// reduction; low-similarity pairs consume time for almost none — the
// observation motivating the adaptive threshold.
func Fig9(o Options) *Table {
	spec := linuxShaped(o)
	cfg := core.DefaultConfig(core.F3MStatic)
	cfg.Threshold = 0 // accept everything; the figure shows why not to
	rep := runStrategyOnSuite(spec, o.Seed, cfg)

	const bins = 10
	var saving [bins]int
	var overhead [bins]time.Duration
	var count [bins]int
	var totalSaving int
	var totalOverhead time.Duration
	for _, p := range rep.Pairs {
		if !p.Attempted {
			continue
		}
		b := int(p.Similarity * bins)
		if b >= bins {
			b = bins - 1
		}
		saving[b] += p.Saving
		overhead[b] += p.MergeDur
		count[b]++
		totalSaving += p.Saving
		totalOverhead += p.MergeDur
	}
	t := &Table{
		ID:     "fig9",
		Title:  "F3M: size reduction and merge overhead by pair MinHash similarity",
		Header: []string{"similarity bin", "pairs", "size saving", "saving share", "merge time", "time share"},
	}
	for b := 0; b < bins; b++ {
		sShare, tShare := "-", "-"
		if totalSaving > 0 {
			sShare = fmt.Sprintf("%.1f%%", 100*float64(saving[b])/float64(totalSaving))
		}
		if totalOverhead > 0 {
			tShare = fmt.Sprintf("%.1f%%", 100*float64(overhead[b])/float64(totalOverhead))
		}
		t.AddRow(fmt.Sprintf("%.2f", (float64(b)+0.5)/bins),
			fmt.Sprintf("%d", count[b]),
			fmt.Sprintf("%d", saving[b]), sShare, ms(overhead[b]), tShare)
	}
	t.Notef("paper: low-similarity pairs account for most overhead and almost no reduction")
	t.Notef("workload %s at threshold 0", spec.Name)
	return t
}
