package fingerprint

// Regression tests for the lane-seed lazy-init race: a *Config shared
// across goroutines must be safe whether or not Prepare ran (run with
// `go test -race`, as scripts/check.sh does).

import (
	"reflect"
	"sync"
	"testing"
)

func TestPrepareCachesSeeds(t *testing.T) {
	c := (&Config{K: 50, ShingleSize: 2, Seed: 7}).Prepare()
	if len(c.seeds) != 50 {
		t.Fatalf("Prepare cached %d seeds, want 50", len(c.seeds))
	}
	if !reflect.DeepEqual(c.seeds, Seeds(50, 7)) {
		t.Error("prepared seeds differ from Seeds(k, master)")
	}
	// Constructors must hand out prepared configs.
	if len(DefaultConfig().seeds) != 200 {
		t.Error("DefaultConfig not prepared")
	}
	if got := DefaultConfig().WithK(32); len(got.seeds) != 32 {
		t.Error("WithK not prepared")
	}
}

// TestConfigConcurrentNew hammers one shared config from many
// goroutines — both a prepared one and a raw literal (which must derive
// seeds without caching rather than racing on the write).
func TestConfigConcurrentNew(t *testing.T) {
	seq := make([]Encoded, 64)
	for i := range seq {
		seq[i] = Encoded(i * 2654435761)
	}
	for name, cfg := range map[string]*Config{
		"prepared": (&Config{K: 80, ShingleSize: 2, Seed: 3}).Prepare(),
		"literal":  {K: 80, ShingleSize: 2, Seed: 3},
	} {
		want := cfg.New(seq)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < 50; r++ {
					if got := cfg.New(seq); !reflect.DeepEqual(got, want) {
						t.Errorf("%s: concurrent New diverged", name)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}
