// Package fingerprint implements the two function summaries compared in
// the F3M paper:
//
//   - the opcode-frequency fingerprint used by HyFM and its
//     predecessors: a vector of instruction opcode counts compared with
//     Manhattan distance, and
//   - the MinHash fingerprint introduced by F3M: instructions are
//     encoded into 32-bit integers capturing opcode, result type,
//     operand count and operand types; consecutive pairs (shingles of
//     size K=2) are hashed with FNV-1a under k xor-derived seeds and
//     the per-seed minima form the fingerprint. Fingerprint equality
//     rate estimates the Jaccard similarity of the functions' shingle
//     sets.
//
// The encoding comes in two variants. EncodeInstr/EncodeFunc key type
// codes on dense per-TypeContext IDs — cheap and collision-free inside
// one pipeline run. EncodeInstrStable/EncodeFuncStable (stable.go)
// replace the dense ID with a structural type hash, making the encoding
// a pure function of the instruction so that fingerprints computed from
// separately parsed modules — or restored from a snapshot by another
// process — stay comparable; the serving layer (internal/serve) indexes
// exclusively with the stable variant.
package fingerprint

import "f3m/internal/ir"

// Encoded is the 32-bit instruction encoding fed to shingling. Two
// instructions receive the same encoding exactly when the merger could
// fold them into one instruction without guards: same opcode, same
// result type, same operand count and same operand types. Operand
// *values* are deliberately excluded — they are reconciled by operand
// select/phi insertion during code generation.
type Encoded uint32

// Encoding layout, low to high bits.
const (
	opcodeBits  = 6
	noperBits   = 4
	resTypeBits = 8
	argTypeBits = 32 - opcodeBits - noperBits - resTypeBits // 14

	noperShift   = opcodeBits
	resTypeShift = opcodeBits + noperBits
	argTypeShift = opcodeBits + noperBits + resTypeBits
)

// operandKind classifies an operand's provenance (2 bits).
func operandKind(v ir.Value) uint32 {
	switch v.(type) {
	case *ir.Const:
		return 0
	case *ir.Param:
		return 1
	case *ir.GlobalVar, *ir.Function:
		return 2
	default:
		return 3
	}
}

// typeCode maps an interned type to a small non-zero integer. The IR
// context assigns dense ids in interning order; adding one keeps zero
// free as "no type" so void results do not collide with type id 0.
func typeCode(t *ir.Type) uint32 {
	if t == nil || t.IsVoid() {
		return 0
	}
	return uint32(t.ID()) + 1
}

// EncodeInstr packs the merge-relevant properties of an instruction
// into 32 bits: opcode, operand count, result type, and the product of
// the operand type codes (the paper's scheme for combining all operand
// types into the remaining bits). Comparison predicates are folded into
// the operand-type field so `icmp slt` and `icmp eq` do not alias.
func EncodeInstr(in *ir.Instr) Encoded {
	op := uint32(in.Op) & (1<<opcodeBits - 1)
	nops := uint32(len(in.Operands))
	if nops > 1<<noperBits-1 {
		nops = 1<<noperBits - 1
	}
	res := typeCode(in.Ty) & (1<<resTypeBits - 1)

	// Multiply operand type codes together, as the paper does. The
	// product is commutative, which is harmless: operand counts and
	// opcodes break most of the would-be collisions, and identical
	// multisets of operand types are usually mergeable anyway. Each
	// operand's provenance kind (constant / parameter / instruction /
	// global) folds in as well: real IR distinguishes `add %a, 1` from
	// `add %a, %b` through its much richer type system, which our
	// compact substrate approximates with these two extra bits per
	// operand (see DESIGN.md).
	prod := uint32(1)
	for _, v := range in.Operands {
		if _, isBlock := v.(*ir.Block); isBlock {
			continue // successor labels are structure, not data operands
		}
		code := typeCode(v.Type())*4 + operandKind(v)
		prod *= code*2654435761 | 1
	}
	if in.Op == ir.OpICmp || in.Op == ir.OpFCmp {
		prod *= uint32(in.Predicate)*40503 | 1
	}
	if in.Op == ir.OpAlloca {
		prod *= typeCode(in.AllocTy)*2654435761 | 1
	}
	arg := prod & (1<<argTypeBits - 1)

	return Encoded(op | nops<<noperShift | res<<resTypeShift | arg<<argTypeShift)
}

// EncodeFunc encodes every instruction of f in block order.
func EncodeFunc(f *ir.Function) []Encoded {
	out := make([]Encoded, 0, f.NumInstrs())
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			out = append(out, EncodeInstr(in))
		}
	}
	return out
}

// EncodeBlocks encodes every instruction of the given blocks, in the
// given block order. EncodeFunc is EncodeBlocks over the layout order;
// the CFG-aware strategy calls this with a canonical block order
// instead, making the MinHash fingerprint invariant under block-layout
// permutation (see align.Canonicalize).
func EncodeBlocks(blocks []*ir.Block) []Encoded {
	n := 0
	for _, b := range blocks {
		n += len(b.Instrs)
	}
	out := make([]Encoded, 0, n)
	for _, b := range blocks {
		for _, in := range b.Instrs {
			out = append(out, EncodeInstr(in))
		}
	}
	return out
}

// EncodeBlock encodes the instructions of a single basic block.
func EncodeBlock(b *ir.Block) []Encoded {
	out := make([]Encoded, len(b.Instrs))
	for i, in := range b.Instrs {
		out[i] = EncodeInstr(in)
	}
	return out
}
