package fingerprint

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"f3m/internal/ir"
)

func parseFns(t testing.TB, src string) *ir.Module {
	t.Helper()
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

const twoSimilarFns = `
define i32 @f(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  %y = mul i32 %x, %a
  %z = sub i32 %y, %b
  %c = icmp sgt i32 %z, 0
  br i1 %c, label %pos, label %neg
pos:
  ret i32 %z
neg:
  %n = sub i32 0, %z
  ret i32 %n
}
define i32 @g(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  %y = mul i32 %x, %a
  %z = sub i32 %y, %b
  %c = icmp sgt i32 %z, 0
  br i1 %c, label %pos, label %neg
pos:
  ret i32 %z
neg:
  %n = sub i32 1, %z
  ret i32 %n
}
define double @h(double %a) {
entry:
  %x = fmul double %a, %a
  %y = fadd double %x, 1.0
  ret double %y
}
`

func TestEncodeDistinguishesTypesAndOpcodes(t *testing.T) {
	m := parseFns(t, `
define i32 @a(i32 %x) {
entry:
  %r = add i32 %x, %x
  ret i32 %r
}
define i64 @b(i64 %x) {
entry:
  %r = add i64 %x, %x
  ret i64 %r
}
define i32 @c(i32 %x) {
entry:
  %r = sub i32 %x, %x
  ret i32 %r
}`)
	ea := EncodeFunc(m.Func("a"))
	eb := EncodeFunc(m.Func("b"))
	ec := EncodeFunc(m.Func("c"))
	if ea[0] == eb[0] {
		t.Error("add i32 and add i64 should encode differently")
	}
	if ea[0] == ec[0] {
		t.Error("add and sub should encode differently")
	}
	// ret i32 %r vs ret i64 %r differ in operand type.
	if ea[1] == eb[1] {
		t.Error("ret i32 and ret i64 should encode differently")
	}
}

func TestEncodeIdenticalForMergeableInstrs(t *testing.T) {
	m := parseFns(t, `
define i32 @a(i32 %x, i32 %y) {
entry:
  %r = add i32 %x, %y
  %s = add i32 %r, 7
  ret i32 %s
}
define i32 @b(i32 %p, i32 %q) {
entry:
  %r = add i32 %q, %p
  %s = add i32 %r, 450
  ret i32 %s
}`)
	ea := EncodeFunc(m.Func("a"))
	eb := EncodeFunc(m.Func("b"))
	// Same opcode/types/operand kinds but different operand *values*
	// (different params, different constants): must encode equal.
	for i := range ea {
		if ea[i] != eb[i] {
			t.Errorf("instruction %d: operand values leaked into encoding", i)
		}
	}
	// Operand provenance is part of the encoding: param+param vs
	// param+const differ (see DESIGN.md on the operand-kind bits).
	if ea[0] == ea[1] {
		t.Error("param+param and instr+const adds should encode differently")
	}
}

func TestEncodePredicates(t *testing.T) {
	m := parseFns(t, `
define i1 @a(i32 %x) {
entry:
  %r = icmp slt i32 %x, 0
  ret i1 %r
}
define i1 @b(i32 %x) {
entry:
  %r = icmp eq i32 %x, 0
  ret i1 %r
}`)
	if EncodeFunc(m.Func("a"))[0] == EncodeFunc(m.Func("b"))[0] {
		t.Error("different predicates should encode differently")
	}
}

func TestFreqVector(t *testing.T) {
	m := parseFns(t, twoSimilarFns)
	vf := FreqFunc(m.Func("f"))
	vg := FreqFunc(m.Func("g"))
	vh := FreqFunc(m.Func("h"))
	if vf.Distance(vg) != 0 {
		t.Errorf("f and g have identical opcode mix; distance = %d", vf.Distance(vg))
	}
	if vf.Similarity(vg) != 1 {
		t.Errorf("similarity = %v, want 1", vf.Similarity(vg))
	}
	if s := vf.Similarity(vh); s > 0.5 {
		t.Errorf("dissimilar functions have similarity %v", s)
	}
	if vf.Distance(vh) != vh.Distance(vf) {
		t.Error("distance not symmetric")
	}
}

func TestMinHashBasics(t *testing.T) {
	m := parseFns(t, twoSimilarFns)
	cfg := DefaultConfig()
	mf := cfg.New(EncodeFunc(m.Func("f")))
	mg := cfg.New(EncodeFunc(m.Func("g")))
	mh := cfg.New(EncodeFunc(m.Func("h")))

	if len(mf) != cfg.K {
		t.Fatalf("fingerprint size %d, want %d", len(mf), cfg.K)
	}
	if s := mf.Jaccard(mf); s != 1 {
		t.Errorf("self similarity = %v, want 1", s)
	}
	sfg := mf.Jaccard(mg)
	sfh := mf.Jaccard(mh)
	if sfg <= sfh {
		t.Errorf("near-clone similarity %v should beat unrelated %v", sfg, sfh)
	}
	if sfg < 0.5 {
		t.Errorf("near-clone similarity %v unexpectedly low", sfg)
	}
}

func TestMinHashDeterminism(t *testing.T) {
	m := parseFns(t, twoSimilarFns)
	seq := EncodeFunc(m.Func("f"))
	a := DefaultConfig().New(seq)
	b := DefaultConfig().New(seq)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MinHash not deterministic across configs with same seed")
		}
	}
	other := &Config{K: 200, ShingleSize: 2, Seed: 1}
	c := other.New(seq)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fingerprints")
	}
}

func TestMinHashTinyFunction(t *testing.T) {
	m := parseFns(t, `
define void @empty() {
entry:
  ret void
}
define i32 @one(i32 %x) {
entry:
  ret i32 %x
}`)
	cfg := DefaultConfig()
	me := cfg.New(EncodeFunc(m.Func("empty")))
	mo := cfg.New(EncodeFunc(m.Func("one")))
	if me.Jaccard(mo) == 1 {
		t.Error("ret void and ret i32 should differ")
	}
	if me.Jaccard(me) != 1 {
		t.Error("tiny function not self-similar")
	}
}

// TestMinHashEstimatesJaccard is the core statistical property: the
// lane-match rate approximates the exact shingle-set Jaccard index
// within O(1/sqrt(k)).
func TestMinHashEstimatesJaccard(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := &Config{K: 400, ShingleSize: 2, Seed: 7}
	for trial := 0; trial < 30; trial++ {
		n := 50 + rng.Intn(200)
		a := make([]Encoded, n)
		for i := range a {
			a[i] = Encoded(rng.Intn(40)) // small alphabet => some repeats
		}
		// Derive b by mutating a fraction of a.
		b := append([]Encoded(nil), a...)
		mut := rng.Intn(n)
		for j := 0; j < mut; j++ {
			b[rng.Intn(n)] = Encoded(rng.Intn(40))
		}
		exact := ExactJaccard(a, b, 2)
		est := cfg.New(a).Jaccard(cfg.New(b))
		if math.Abs(est-exact) > 4/math.Sqrt(float64(cfg.K)) {
			t.Errorf("trial %d: estimate %.3f vs exact %.3f (tolerance %.3f)",
				trial, est, exact, 4/math.Sqrt(float64(cfg.K)))
		}
	}
}

func TestMinHashProperties(t *testing.T) {
	cfg := &Config{K: 100, ShingleSize: 2, Seed: 3}
	// Jaccard symmetric and within [0,1] for arbitrary sequences.
	prop := func(xa, xb []uint16) bool {
		a := make([]Encoded, len(xa))
		for i, v := range xa {
			a[i] = Encoded(v)
		}
		b := make([]Encoded, len(xb))
		for i, v := range xb {
			b[i] = Encoded(v)
		}
		ma, mb := cfg.New(a), cfg.New(b)
		s1, s2 := ma.Jaccard(mb), mb.Jaccard(ma)
		return s1 == s2 && s1 >= 0 && s1 <= 1 && ma.Jaccard(ma) == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFreqProperties(t *testing.T) {
	m := parseFns(t, twoSimilarFns)
	fns := m.Funcs
	for _, a := range fns {
		for _, b := range fns {
			va, vb := FreqFunc(a), FreqFunc(b)
			s := va.Similarity(vb)
			if s < 0 || s > 1 {
				t.Errorf("similarity out of range: %v", s)
			}
			if va.Distance(vb) != vb.Distance(va) {
				t.Error("distance not symmetric")
			}
		}
	}
}

func TestSeedsDeterministic(t *testing.T) {
	a := Seeds(16, 99)
	b := Seeds(16, 99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Seeds not deterministic")
		}
	}
	c := Seeds(16, 100)
	diff := false
	for i := range a {
		if a[i] != c[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different master seeds gave identical streams")
	}
}

func TestExactJaccardEdgeCases(t *testing.T) {
	if got := ExactJaccard(nil, nil, 2); got != 1 {
		t.Errorf("empty/empty = %v, want 1", got)
	}
	a := []Encoded{1, 2, 3}
	if got := ExactJaccard(a, a, 2); got != 1 {
		t.Errorf("identical = %v, want 1", got)
	}
	b := []Encoded{9, 8, 7}
	if got := ExactJaccard(a, b, 2); got != 0 {
		t.Errorf("disjoint = %v, want 0", got)
	}
}

func TestEncodeManyOperands(t *testing.T) {
	// Operand counts beyond the 4-bit field must clamp, not wrap.
	m := ir.NewModule("t")
	c := m.Ctx
	params := make([]*ir.Type, 20)
	for i := range params {
		params[i] = c.I32
	}
	callee := m.NewFunc("many", c.Func(c.I32, params...))
	f := m.NewFunc("f", c.Func(c.I32))
	entry := f.NewBlock("entry")
	bd := ir.NewBuilder(entry)
	args := make([]ir.Value, 20)
	for i := range args {
		args[i] = ir.ConstInt(c.I32, int64(i))
	}
	call := bd.Call(callee, args...)
	bd.Ret(call)

	e := EncodeInstr(call)
	if e == 0 {
		t.Error("zero encoding for call")
	}
	// A call with fewer args must encode differently through the count
	// field as long as the count is under the clamp.
	f2 := m.NewFunc("f2", c.Func(c.I32))
	e2b := f2.NewBlock("entry")
	bd2 := ir.NewBuilder(e2b)
	small := m.NewFunc("small", c.Func(c.I32, c.I32))
	c2 := bd2.Call(small, ir.ConstInt(c.I32, 1))
	bd2.Ret(c2)
	if EncodeInstr(c2) == e {
		t.Error("1-arg and 20-arg calls encode identically")
	}
}

func TestEncodeAllocaTypes(t *testing.T) {
	m := ir.NewModule("t")
	c := m.Ctx
	f := m.NewFunc("f", c.Func(c.Void))
	entry := f.NewBlock("entry")
	bd := ir.NewBuilder(entry)
	a1 := bd.Alloca(c.Array(4, c.I32))
	a2 := bd.Alloca(c.Array(8, c.I32))
	a3 := bd.Alloca(c.Array(4, c.I32))
	bd.Ret(nil)
	if EncodeInstr(a1) == EncodeInstr(a2) {
		t.Error("different alloca shapes encode identically")
	}
	if EncodeInstr(a1) != EncodeInstr(a3) {
		t.Error("same alloca shapes encode differently")
	}
}

func BenchmarkMinHash200(b *testing.B) {
	seq := make([]Encoded, 500)
	rng := rand.New(rand.NewSource(1))
	for i := range seq {
		seq[i] = Encoded(rng.Uint32())
	}
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.New(seq)
	}
}

// BenchmarkMinHashXorSeeds quantifies the paper's claim that a single
// FNV-1a pass xor-ed with k seeds is far cheaper than k independent
// full hashes (ablation for the Sec. III-B design choice).
func BenchmarkMinHashXorSeeds(b *testing.B) {
	seq := make([]Encoded, 500)
	rng := rand.New(rand.NewSource(1))
	for i := range seq {
		seq[i] = Encoded(rng.Uint32())
	}
	cfg := DefaultConfig()
	seeds := Seeds(cfg.K, cfg.Seed)

	b.Run("xor-seeds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg.New(seq)
		}
	})
	b.Run("k-independent", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mh := make(MinHash, cfg.K)
			for j := range mh {
				mh[j] = ^uint32(0)
			}
			for at := 0; at+2 <= len(seq); at++ {
				for j, s := range seeds {
					// Simulate an independent hash per lane by folding
					// the seed into the FNV stream.
					h := Hash32([]uint32{s, uint32(seq[at]), uint32(seq[at+1])})
					if h < mh[j] {
						mh[j] = h
					}
				}
			}
		}
	})
}
