package fingerprint

// MinHash generation: shingle the encoded instruction stream, hash each
// shingle once with FNV-1a, then derive k hash lanes by xor-ing the
// base hash with k pseudo-random seeds (the paper's cheap substitute
// for k independent hash functions). Each lane keeps its minimum.

// FNV-1a constants (32-bit variant, as in the paper).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// fnv1a32 hashes a shingle of encoded instructions byte-by-byte.
func fnv1a32(shingle []Encoded) uint32 {
	h := uint32(fnvOffset32)
	for _, e := range shingle {
		v := uint32(e)
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= fnvPrime32
			v >>= 8
		}
	}
	return h
}

// Hash32 exposes the FNV-1a shingle hash for the LSH band hasher.
func Hash32(words []uint32) uint32 {
	h := uint32(fnvOffset32)
	for _, v := range words {
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= fnvPrime32
			v >>= 8
		}
	}
	return h
}

// splitmix64 generates the deterministic seed stream; it passes
// through every 64-bit value and is the standard generator for
// seeding hash families.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
	z = (z ^ z>>27) * 0x94d049bb133111eb
	return z ^ z>>31
}

// Seeds derives k 32-bit xor seeds from a master seed.
func Seeds(k int, master uint64) []uint32 {
	out := make([]uint32, k)
	st := master
	for i := range out {
		out[i] = uint32(splitmix64(&st))
	}
	return out
}

// Config parameterizes MinHash generation.
type Config struct {
	// K is the fingerprint size (number of hash lanes). The paper's
	// default is 200.
	K int

	// ShingleSize is the window length over the encoded instruction
	// stream. The paper fixes it at 2.
	ShingleSize int

	// Seed selects the hash family. All fingerprints that will be
	// compared must share it.
	Seed uint64

	// seeds caches the derived lane seeds.
	seeds []uint32
}

// DefaultConfig returns the paper's defaults: k=200, shingle size 2.
func DefaultConfig() *Config {
	return (&Config{K: 200, ShingleSize: 2, Seed: 0xF3F3F3F3}).Prepare()
}

// WithK returns a copy of the config with a different fingerprint size.
func (c *Config) WithK(k int) *Config {
	return (&Config{K: k, ShingleSize: c.ShingleSize, Seed: c.Seed}).Prepare()
}

// Prepare derives the lane seeds eagerly and returns c. A prepared
// Config is read-only afterwards and therefore safe to share across
// goroutines; the constructors call it, and hand-built literals should
// too before concurrent use.
func (c *Config) Prepare() *Config {
	if len(c.seeds) != c.K {
		c.seeds = Seeds(c.K, c.Seed)
	}
	return c
}

// laneSeeds returns the xor seeds for the config. An unprepared config
// derives them on the fly rather than caching, so that sharing one
// *Config across goroutines never races (Prepare avoids the repeated
// derivation).
func (c *Config) laneSeeds() []uint32 {
	if s := c.seeds; len(s) == c.K {
		return s
	}
	return Seeds(c.K, c.Seed)
}

// MinHash is a MinHash fingerprint: lane i holds the minimum of
// hash_i over all shingles of the function.
type MinHash []uint32

// New builds the MinHash fingerprint of an encoded instruction stream.
// Functions shorter than the shingle size produce a single shingle of
// the whole (padded) sequence so that tiny functions still fingerprint.
func (c *Config) New(seq []Encoded) MinHash {
	k := c.K
	seeds := c.laneSeeds()
	mh := make(MinHash, k)
	for i := range mh {
		mh[i] = ^uint32(0)
	}
	w := c.ShingleSize
	if w <= 0 {
		w = 2
	}
	n := len(seq) - w + 1
	if n < 1 {
		// Pad with zero-valued sentinels to one full window.
		padded := make([]Encoded, w)
		copy(padded, seq)
		h := fnv1a32(padded)
		for i, s := range seeds {
			mh[i] = h ^ s
		}
		return mh
	}
	for at := 0; at < n; at++ {
		h := fnv1a32(seq[at : at+w])
		for i, s := range seeds {
			if hv := h ^ s; hv < mh[i] {
				mh[i] = hv
			}
		}
	}
	return mh
}

// Jaccard estimates the Jaccard similarity of the underlying shingle
// sets as the fraction of matching lanes. The estimate carries
// O(1/sqrt(k)) error.
func (m MinHash) Jaccard(o MinHash) float64 {
	if len(m) != len(o) || len(m) == 0 {
		return 0
	}
	// Four-way unrolled equality count: this comparison is the inner
	// loop of candidate ranking (one call per bucket candidate), and the
	// explicit slicing drops the per-lane bounds checks.
	eq := 0
	i := 0
	for ; i+4 <= len(m); i += 4 {
		a, b := m[i:i+4:i+4], o[i:i+4:i+4]
		if a[0] == b[0] {
			eq++
		}
		if a[1] == b[1] {
			eq++
		}
		if a[2] == b[2] {
			eq++
		}
		if a[3] == b[3] {
			eq++
		}
	}
	for ; i < len(m); i++ {
		if m[i] == o[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(m))
}

// ExactJaccard computes the true Jaccard index of two shingle sets; it
// is the slow ground truth MinHash approximates, used by tests and the
// correlation experiments.
func ExactJaccard(a, b []Encoded, shingleSize int) float64 {
	sa := shingleSet(a, shingleSize)
	sb := shingleSet(b, shingleSize)
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for s := range sa {
		if _, ok := sb[s]; ok {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

func shingleSet(seq []Encoded, w int) map[[8]byte]struct{} {
	if w <= 0 {
		w = 2
	}
	set := make(map[[8]byte]struct{})
	n := len(seq) - w + 1
	if n < 1 {
		padded := make([]Encoded, w)
		copy(padded, seq)
		set[shingleKey(padded)] = struct{}{}
		return set
	}
	for at := 0; at < n; at++ {
		set[shingleKey(seq[at:at+w])] = struct{}{}
	}
	return set
}

// shingleKey packs up to two encoded words into a comparable key;
// longer shingles fold the tail in with FNV.
func shingleKey(sh []Encoded) [8]byte {
	var k [8]byte
	if len(sh) >= 1 {
		v := uint32(sh[0])
		k[0], k[1], k[2], k[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	if len(sh) >= 2 {
		v := uint32(sh[1])
		if len(sh) > 2 {
			v = fnv1a32(sh[1:])
		}
		k[4], k[5], k[6], k[7] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	}
	return k
}
