package fingerprint

import "f3m/internal/ir"

// FreqVector is the opcode-frequency fingerprint used by HyFM: one
// counter per opcode. It carries no structural information, which is
// exactly the weakness Figures 4-6 of the paper quantify.
type FreqVector struct {
	Counts [ir.NumOpcodes]int32
	Total  int32
}

// FreqFunc builds the opcode-frequency fingerprint of a function.
func FreqFunc(f *ir.Function) *FreqVector {
	var v FreqVector
	f.Instructions(func(in *ir.Instr) {
		v.Counts[in.Op]++
		v.Total++
	})
	return &v
}

// FreqBlock builds the opcode-frequency fingerprint of a basic block;
// HyFM's block-level alignment ranks block pairs with these.
func FreqBlock(b *ir.Block) *FreqVector {
	var v FreqVector
	FreqBlockInto(b, &v)
	return &v
}

// FreqBlockInto fills v with the opcode-frequency fingerprint of b,
// overwriting previous contents. Callers that score many blocks use it
// to keep the vectors in a reusable backing array instead of
// allocating one per block.
func FreqBlockInto(b *ir.Block, v *FreqVector) {
	*v = FreqVector{}
	for _, in := range b.Instrs {
		v.Counts[in.Op]++
		v.Total++
	}
}

// Distance is the Manhattan (L1) distance between the two count
// vectors: the number of instructions that cannot possibly be matched
// one-to-one by opcode.
func (v *FreqVector) Distance(o *FreqVector) int {
	d := int32(0)
	for i := range v.Counts {
		x := v.Counts[i] - o.Counts[i]
		if x < 0 {
			x = -x
		}
		d += x
	}
	return int(d)
}

// Similarity is the normalized fingerprint similarity in [0,1] used
// throughout the paper's figures: 1 - distance/(|A|+|B|). Two empty
// functions have similarity 1.
func (v *FreqVector) Similarity(o *FreqVector) float64 {
	tot := v.Total + o.Total
	if tot == 0 {
		return 1
	}
	return 1 - float64(v.Distance(o))/float64(tot)
}
