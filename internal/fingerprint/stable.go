package fingerprint

// Context-independent instruction encoding for the serving layer.
//
// EncodeInstr keys its type codes on the dense per-TypeContext IDs the
// IR interner assigns in interning order, which is the right choice
// inside one pipeline run (cheap, collision-free) but meaningless
// across separately parsed modules: the same structural type can carry
// different IDs in different contexts, so fingerprints computed in two
// contexts are not comparable. The serving daemon (internal/serve)
// fingerprints modules as they arrive, each parsed standalone, and must
// compare those fingerprints against everything submitted before — and
// against fingerprints recorded in a snapshot taken by an earlier
// process. The stable variants below therefore replace the dense ID
// with a structural hash of the type itself, making the encoding a pure
// function of the instruction and its types, independent of any
// context's interning history.

import "f3m/internal/ir"

// stableTypeCode hashes a type structurally with FNV-1a: kind, bit
// width, array length, element type and struct fields recursively, plus
// the variadic flag for function types. Nil and void map to 0 (the "no
// type" sentinel EncodeInstr also reserves); every other type maps to a
// non-zero code, mirroring typeCode's contract.
func stableTypeCode(t *ir.Type) uint32 {
	if t == nil || t.IsVoid() {
		return 0
	}
	h := stableTypeHash(t, uint32(fnvOffset32))
	if h == 0 {
		h = 1
	}
	return h
}

// stableTypeHash folds one type (recursively) into running hash h.
func stableTypeHash(t *ir.Type, h uint32) uint32 {
	if t == nil {
		return h ^ 0xa5a5a5a5
	}
	mix := func(v uint32) {
		for i := 0; i < 4; i++ {
			h ^= v & 0xff
			h *= fnvPrime32
			v >>= 8
		}
	}
	mix(uint32(t.Kind))
	mix(uint32(t.Bits))
	mix(uint32(t.Len))
	if t.Variadic {
		mix(1)
	}
	if t.Elem != nil {
		h = stableTypeHash(t.Elem, h)
	}
	for _, f := range t.Fields {
		h = stableTypeHash(f, h)
	}
	return h
}

// StableTypeCode exposes the structural type hash: a context-independent
// 32-bit code that is equal for structurally identical types from any
// TypeContext, and 0 exactly for nil/void. The summary analysis
// (internal/analysis/summary) records it as the signature hash of each
// summarized function so separately-built modules can compare
// signatures without sharing a type interner.
func StableTypeCode(t *ir.Type) uint32 {
	return stableTypeCode(t)
}

// EncodeInstrStable is EncodeInstr with context-independent type codes:
// the packing (opcode, operand count, result type, operand-type
// product, predicate and alloca folds) is identical, only typeCode is
// replaced by the structural hash. Two structurally identical
// instructions encode equally no matter which TypeContext their
// modules were parsed into.
func EncodeInstrStable(in *ir.Instr) Encoded {
	op := uint32(in.Op) & (1<<opcodeBits - 1)
	nops := uint32(len(in.Operands))
	if nops > 1<<noperBits-1 {
		nops = 1<<noperBits - 1
	}
	res := stableTypeCode(in.Ty) & (1<<resTypeBits - 1)

	prod := uint32(1)
	for _, v := range in.Operands {
		if _, isBlock := v.(*ir.Block); isBlock {
			continue // successor labels are structure, not data operands
		}
		code := stableTypeCode(v.Type())*4 + operandKind(v)
		prod *= code*2654435761 | 1
	}
	if in.Op == ir.OpICmp || in.Op == ir.OpFCmp {
		prod *= uint32(in.Predicate)*40503 | 1
	}
	if in.Op == ir.OpAlloca {
		prod *= stableTypeCode(in.AllocTy)*2654435761 | 1
	}
	arg := prod & (1<<argTypeBits - 1)

	return Encoded(op | nops<<noperShift | res<<resTypeShift | arg<<argTypeShift)
}

// EncodeFuncStable encodes every instruction of f in block order using
// the context-independent encoding. This is the fingerprint input of
// the serving layer; the in-process pipeline keeps using EncodeFunc.
func EncodeFuncStable(f *ir.Function) []Encoded {
	out := make([]Encoded, 0, f.NumInstrs())
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			out = append(out, EncodeInstrStable(in))
		}
	}
	return out
}
