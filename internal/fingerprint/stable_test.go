package fingerprint_test

import (
	"f3m/internal/fingerprint"
	"testing"

	"f3m/internal/ir"
	"f3m/internal/irgen"
)

// stableSrc is a module exercising structs, arrays, pointers, compares
// and allocas — everything the stable type hash must cover.
const stableSrc = `
module "stable"

define i32 @f(i32* %p, i32 %x) {
entry:
  %a = alloca [4 x i32]
  %x64 = sext i32 %x to i64
  %g = getelementptr i32* %p, i64 %x64
  %v = load i32, i32* %g
  %c = icmp sgt i32 %v, 7
  br i1 %c, label %yes, label %no
yes:
  %s = add i32 %v, %x
  br label %done
no:
  br label %done
done:
  %r = phi i32 [%s, %yes], [%v, %no]
  ret i32 %r
}
`

// pollute interns extra types into the module's context, shifting the
// dense type IDs any later interning would receive.
func pollute(m *ir.Module) {
	c := m.Ctx
	c.Struct(c.I64, c.I8, c.Pointer(c.I8))
	c.Array(17, c.I1)
	c.Func(c.I64, c.Pointer(c.I64), c.I64)
}

// TestStableEncodingContextIndependent is the serving layer's base
// property: the stable encoding of a function is identical no matter
// which TypeContext its module was parsed into or what else that
// context interned, while staying instruction-sensitive.
func TestStableEncodingContextIndependent(t *testing.T) {
	m1, err := ir.ParseModule(stableSrc)
	if err != nil {
		t.Fatal(err)
	}
	// Second context with a very different interning history: pollute
	// before parsing so every dense type ID differs from m1's.
	m2, err := ir.ParseModule(stableSrc)
	if err != nil {
		t.Fatal(err)
	}
	pollute(m2)
	m3, err := ir.ParseModule(ir.ModuleString(m2)) // reprint round-trip
	if err != nil {
		t.Fatal(err)
	}

	e1 := fingerprint.EncodeFuncStable(m1.Func("f"))
	e3 := fingerprint.EncodeFuncStable(m3.Func("f"))
	if len(e1) == 0 || len(e1) != len(e3) {
		t.Fatalf("encoding lengths differ: %d vs %d", len(e1), len(e3))
	}
	for i := range e1 {
		if e1[i] != e3[i] {
			t.Fatalf("stable encodings diverge at instruction %d: %08x vs %08x", i, e1[i], e3[i])
		}
	}
}

// TestStableEncodingMatchesGeneratedCorpus cross-checks the stable and
// dense encodings over a generated corpus: within one context both must
// partition instructions identically (equal dense codes ⇔ equal stable
// codes), since they pack the same features and differ only in the
// type-code space.
func TestStableEncodingMatchesGeneratedCorpus(t *testing.T) {
	res := irgen.Generate(irgen.DefaultConfig(11))
	for _, f := range res.Module.Funcs {
		if f.IsDecl() {
			continue
		}
		dense := fingerprint.EncodeFunc(f)
		stable := fingerprint.EncodeFuncStable(f)
		if len(dense) != len(stable) {
			t.Fatalf("%s: length mismatch %d vs %d", f.Name(), len(dense), len(stable))
		}
		denseOf := map[fingerprint.Encoded]fingerprint.Encoded{}
		stableOf := map[fingerprint.Encoded]fingerprint.Encoded{}
		for i := range dense {
			if prev, ok := denseOf[dense[i]]; ok && prev != stable[i] {
				t.Fatalf("%s: equal dense codes map to distinct stable codes at %d", f.Name(), i)
			}
			denseOf[dense[i]] = stable[i]
			if prev, ok := stableOf[stable[i]]; ok && prev != dense[i] {
				// A stable-hash collision merging two dense classes is
				// possible in principle (32-bit structural hash) but
				// must not happen on the shipped corpus.
				t.Fatalf("%s: equal stable codes map to distinct dense codes at %d", f.Name(), i)
			}
			stableOf[stable[i]] = dense[i]
		}
	}
}
