package fingerprint

import (
	"math"
	"testing"
)

// FuzzFingerprintEncode drives the MinHash stack over arbitrary
// sequences and configurations: construction must never panic (short,
// empty and degenerate sequences included), and both the estimated and
// exact Jaccard similarities must be symmetric and confined to [0, 1].
func FuzzFingerprintEncode(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint64(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(7), uint64(42))
	f.Add([]byte("abcabcabcabc"), uint8(64), uint64(0xF3F3F3F3))
	f.Add([]byte{255, 0, 255, 0}, uint8(200), uint64(1))

	f.Fuzz(func(t *testing.T, data []byte, kraw uint8, seed uint64) {
		// Split the payload into two sequences; either may be empty.
		half := len(data) / 2
		a := make([]Encoded, half)
		for i := range a {
			a[i] = Encoded(data[i])
		}
		b := make([]Encoded, len(data)-half)
		for i := range b {
			b[i] = Encoded(data[half+i])
		}

		cfg := (&Config{
			K:           int(kraw%64) + 1,
			ShingleSize: int(kraw%3) + 1,
			Seed:        seed,
		}).Prepare()
		ma, mb := cfg.New(a), cfg.New(b)

		est := ma.Jaccard(mb)
		if est < 0 || est > 1 || math.IsNaN(est) {
			t.Fatalf("Jaccard estimate %v outside [0,1]", est)
		}
		if back := mb.Jaccard(ma); back != est {
			t.Fatalf("Jaccard not symmetric: %v vs %v", est, back)
		}
		if self := ma.Jaccard(ma); len(a) > 0 && self != 1 {
			t.Fatalf("self-similarity = %v, want 1", self)
		}

		ex := ExactJaccard(a, b, cfg.ShingleSize)
		if ex < 0 || ex > 1 || math.IsNaN(ex) {
			t.Fatalf("ExactJaccard %v outside [0,1]", ex)
		}
		if back := ExactJaccard(b, a, cfg.ShingleSize); back != ex {
			t.Fatalf("ExactJaccard not symmetric: %v vs %v", ex, back)
		}
	})
}
