package fingerprint

import "sync"

// Seq is an interned encoded instruction sequence: a stable handle the
// alignment cache keys on, so a lookup compares two 32-bit ids instead
// of copying both sequences into a string. Handles are canonical within
// their Interner — equal sequences intern to the same *Seq — and the id
// is never reused, even across capacity resets, so two live handles
// with equal ids always carry equal sequences.
type Seq struct {
	id  uint32
	enc []Encoded
}

// ID returns the handle's dense identifier.
func (s *Seq) ID() uint32 { return s.id }

// Enc returns the interned sequence. Callers must treat it as
// read-only; it is shared by every holder of the handle.
func (s *Seq) Enc() []Encoded { return s.enc }

// Interner deduplicates encoded sequences. Lookups hash the sequence
// (FNV-1a over the raw words) and verify candidates by full
// element-wise comparison, so a hash collision can never alias two
// different sequences to one handle. Safe for concurrent use.
type Interner struct {
	mu      sync.Mutex
	buckets map[uint64][]*Seq
	count   int
	max     int
	next    uint32
}

// DefaultInternerEntries is the sequence cap NewInterner applies when
// given a non-positive size.
const DefaultInternerEntries = 1 << 15

// NewInterner returns an empty interner holding at most max distinct
// sequences; at the cap the table is cleared wholesale, like the
// alignment cache's eviction. Stale handles stay usable — they keep
// their sequence — they just stop being canonical, which downstream
// cache keys tolerate (a non-canonical handle only costs a miss).
func NewInterner(max int) *Interner {
	if max <= 0 {
		max = DefaultInternerEntries
	}
	return &Interner{buckets: make(map[uint64][]*Seq), max: max}
}

// Intern returns the canonical handle for enc, copying the sequence
// only on first sight. The hit path performs zero allocations.
func (it *Interner) Intern(enc []Encoded) *Seq {
	h := hashSeq(enc)
	it.mu.Lock()
	defer it.mu.Unlock()
	for _, s := range it.buckets[h] {
		if encEqual(s.enc, enc) {
			return s
		}
	}
	if it.count >= it.max {
		it.buckets = make(map[uint64][]*Seq)
		it.count = 0
	}
	s := &Seq{id: it.next, enc: append([]Encoded(nil), enc...)}
	it.next++ // monotonic: ids survive table resets un-aliased
	it.buckets[h] = append(it.buckets[h], s)
	it.count++
	return s
}

// Len returns how many sequences the current table holds.
func (it *Interner) Len() int {
	it.mu.Lock()
	defer it.mu.Unlock()
	return it.count
}

// hashSeq is FNV-1a over the sequence words, byte-for-byte equivalent
// to hashing the little-endian serialization the old string keys used.
func hashSeq(enc []Encoded) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, e := range enc {
		v := uint32(e)
		h = (h ^ uint64(v&0xff)) * prime64
		h = (h ^ uint64(v>>8&0xff)) * prime64
		h = (h ^ uint64(v>>16&0xff)) * prime64
		h = (h ^ uint64(v>>24&0xff)) * prime64
	}
	return h
}

func encEqual(a, b []Encoded) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
