package irgen

import (
	"testing"

	"f3m/internal/align"
	"f3m/internal/fingerprint"
	"f3m/internal/interp"
	"f3m/internal/ir"
)

func TestGenerateVerifies(t *testing.T) {
	res := Generate(DefaultConfig(1))
	if err := ir.VerifyModule(res.Module); err != nil {
		t.Fatalf("generated module invalid: %v", err)
	}
	if len(res.Info) != len(res.Module.Funcs) {
		t.Errorf("info entries %d != functions %d", len(res.Info), len(res.Module.Funcs))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(42))
	b := Generate(DefaultConfig(42))
	sa, sb := ir.ModuleString(a.Module), ir.ModuleString(b.Module)
	if sa != sb {
		t.Fatal("same seed produced different modules")
	}
	c := Generate(DefaultConfig(43))
	if sa == ir.ModuleString(c.Module) {
		t.Fatal("different seeds produced identical modules")
	}
}

func TestFamiliesAreSimilar(t *testing.T) {
	cfg := DefaultConfig(7)
	cfg.Families = 5
	cfg.Singletons = 5
	res := Generate(cfg)
	m := res.Module

	// Variants within a family should align far better with their seed
	// than with unrelated singletons.
	var famRatios, singleRatios []float64
	for fam := 0; fam < cfg.Families; fam++ {
		seed := m.Func(fname(fam, 0))
		if seed == nil {
			continue
		}
		v1 := m.Func(fname(fam, 1))
		if v1 != nil {
			famRatios = append(famRatios, align.FuncRatio(seed, v1))
		}
		if s := m.Func("single0"); s != nil {
			singleRatios = append(singleRatios, align.FuncRatio(seed, s))
		}
	}
	if len(famRatios) == 0 {
		t.Fatal("no family pairs found")
	}
	if avg(famRatios) <= avg(singleRatios) {
		t.Errorf("family alignment %v not better than unrelated %v", avg(famRatios), avg(singleRatios))
	}
	if avg(famRatios) < 0.5 {
		t.Errorf("family alignment %v unexpectedly low", avg(famRatios))
	}
}

func fname(fam, v int) string {
	return "fam" + string(rune('0'+fam)) + "_v" + string(rune('0'+v))
}

func avg(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func TestMutationCountMatters(t *testing.T) {
	// More mutations should mean lower MinHash similarity on average.
	cfg := DefaultConfig(11)
	cfg.Families = 30
	cfg.FamilySizeMin, cfg.FamilySizeMax = 2, 2
	cfg.Singletons = 0
	cfg.Callers = 0
	res := Generate(cfg)
	m := res.Module
	mcfg := fingerprint.DefaultConfig()

	type pt struct {
		muts int
		sim  float64
	}
	var pts []pt
	byName := map[string]FuncInfo{}
	for _, inf := range res.Info {
		byName[inf.Name] = inf
	}
	for fam := 0; fam < cfg.Families; fam++ {
		seedN := fnameN(fam, 0)
		varN := fnameN(fam, 1)
		fs, fv := m.Func(seedN), m.Func(varN)
		if fs == nil || fv == nil {
			continue
		}
		sim := mcfg.New(fingerprint.EncodeFunc(fs)).Jaccard(mcfg.New(fingerprint.EncodeFunc(fv)))
		pts = append(pts, pt{muts: byName[varN].Mutations, sim: sim})
	}
	var lo, hi []float64
	for _, p := range pts {
		if p.muts <= 2 {
			lo = append(lo, p.sim)
		} else if p.muts >= 8 {
			hi = append(hi, p.sim)
		}
	}
	if len(lo) > 2 && len(hi) > 2 && avg(lo) <= avg(hi) {
		t.Errorf("low-mutation sim %v should beat high-mutation %v", avg(lo), avg(hi))
	}
}

func fnameN(fam, v int) string {
	name := "fam"
	for _, d := range itoa(fam) {
		name += string(d)
	}
	name += "_v"
	for _, d := range itoa(v) {
		name += string(d)
	}
	return name
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var out []byte
	for n > 0 {
		out = append([]byte{byte('0' + n%10)}, out...)
		n /= 10
	}
	return string(out)
}

func TestGeneratedFunctionsExecute(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Families = 3
	cfg.Singletons = 3
	cfg.Callers = 2
	res := Generate(cfg)
	m := res.Module
	mach := interp.NewMachine(m)
	mach.StepLimit = 10_000_000
	ran := 0
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		args := make([]interp.Val, len(f.Params))
		for i, p := range f.Params {
			switch {
			case p.Ty.IsFloat():
				args[i] = interp.FloatVal(p.Ty, 2.5)
			default:
				args[i] = interp.IntVal(p.Ty, int64(i+3))
			}
		}
		if _, err := mach.Call(f, args...); err != nil {
			t.Fatalf("@%s: %v\n%s", f.Name(), err, ir.FuncString(f))
		}
		ran++
	}
	if ran < 10 {
		t.Errorf("only %d functions executed", ran)
	}
}

func TestSuiteConfigs(t *testing.T) {
	for _, s := range Suites {
		cfg := s.Config(1)
		if cfg.Families < 1 {
			t.Errorf("%s: families = %d", s.Name, cfg.Families)
		}
	}
	// Generate the two smallest suites fully.
	for _, s := range Suites[:2] {
		res := Generate(s.Config(5))
		if err := ir.VerifyModule(res.Module); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		got := len(res.Module.Funcs)
		if got < s.Funcs*3/4 || got > s.Funcs*5/4 {
			t.Errorf("%s: generated %d functions, want ≈%d", s.Name, got, s.Funcs)
		}
	}
}

func TestGenerateEncoded(t *testing.T) {
	pop := GenerateEncoded(9, 5000, 25, 0.4)
	if len(pop.Seqs) != 5000 {
		t.Fatalf("population = %d, want 5000", len(pop.Seqs))
	}
	fams := 0
	for _, inf := range pop.Info {
		if inf.Family >= 0 {
			fams++
		}
	}
	if fams < 1000 {
		t.Errorf("family members = %d, expected a substantial fraction", fams)
	}
	// Clones should be MinHash-similar to their family seed.
	cfg := fingerprint.DefaultConfig()
	seedIdx := -1
	simSum, simN := 0.0, 0
	for i, inf := range pop.Info {
		if inf.Family == 0 && inf.Mutations == 0 {
			seedIdx = i
		} else if inf.Family == 0 && seedIdx >= 0 {
			s := cfg.New(pop.Seqs[seedIdx]).Jaccard(cfg.New(pop.Seqs[i]))
			simSum += s
			simN++
		}
	}
	if simN > 0 && simSum/float64(simN) < 0.2 {
		t.Errorf("family similarity %v too low", simSum/float64(simN))
	}
}

func BenchmarkGenerateMedium(b *testing.B) {
	cfg := DefaultConfig(1)
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		Generate(cfg)
	}
}
