package irgen

import "f3m/internal/ir"

// AddDrivers appends one variadic driver function per mergeable
// function in the module. Each driver invokes its target with two fixed
// argument tuples and folds the results into an i32. Because variadic
// functions are never merge candidates, drivers survive a merging pass
// unchanged (their call sites are rewritten), providing stable entry
// points for interpreting the module before and after merging — the
// basis of the Figure 17 runtime-impact experiment and of differential
// correctness tests.
func AddDrivers(m *ir.Module) []string {
	c := m.Ctx
	var names []string
	var targets []*ir.Function
	for _, f := range m.Funcs {
		if !f.IsDecl() && !f.Sig.Variadic {
			targets = append(targets, f)
		}
	}
	for _, f := range targets {
		dn := m.UniqueFuncName("drv_" + f.Name())
		d := m.NewFunc(dn, c.VariadicFunc(c.I32))
		entry := d.NewBlock("entry")
		bd := ir.NewBuilder(entry)
		r1 := emitDriverCall(bd, f, 3)
		r2 := emitDriverCall(bd, f, 11)
		bd.Ret(bd.Binary(ir.OpXor, r1, r2))
		names = append(names, dn)
	}
	return names
}

// emitDriverCall calls f with salt-derived constant arguments and
// normalizes the result to i32.
func emitDriverCall(bd *ir.Builder, f *ir.Function, salt int64) ir.Value {
	c := f.Parent.Ctx
	args := make([]ir.Value, len(f.Params))
	for i, p := range f.Params {
		if p.Ty.IsFloat() {
			args[i] = ir.ConstFloat(p.Ty, float64(salt)+0.5)
		} else {
			args[i] = ir.ConstInt(p.Ty, salt+int64(i))
		}
	}
	r := ir.Value(bd.Call(f, args...))
	switch rt := f.ReturnType(); {
	case rt == c.I32:
	case rt.IsFloat():
		r = bd.Cast(ir.OpFPToSI, r, c.I32)
	case rt.IsInt() && rt.Bits > 32:
		r = bd.Cast(ir.OpTrunc, r, c.I32)
	case rt.IsInt():
		r = bd.Cast(ir.OpSExt, r, c.I32)
	default:
		r = ir.ConstInt(c.I32, 0)
	}
	return r
}

// AddHotDrivers plants execution skew: every stride-th mergeable
// function receives a driver that invokes it iters times in a counted
// loop. Real programs concentrate runtime in a small hot set; these
// drivers recreate that shape so profile-guided merging has a signal
// to exploit.
func AddHotDrivers(m *ir.Module, stride, iters int) []string {
	c := m.Ctx
	var names []string
	var targets []*ir.Function
	for _, f := range m.Funcs {
		if !f.IsDecl() && !f.Sig.Variadic {
			targets = append(targets, f)
		}
	}
	for i := 0; i < len(targets); i += stride {
		f := targets[i]
		dn := m.UniqueFuncName("hot_" + f.Name())
		d := m.NewFunc(dn, c.VariadicFunc(c.I32))
		entry := d.NewBlock("entry")
		head := d.NewBlock("head")
		body := d.NewBlock("body")
		exit := d.NewBlock("exit")

		bd := ir.NewBuilder(entry)
		bd.Br(head)

		bd.SetBlock(head)
		iPhi := bd.Phi(c.I32)
		accPhi := bd.Phi(c.I32)
		iPhi.AddIncoming(ir.ConstInt(c.I32, 0), entry)
		accPhi.AddIncoming(ir.ConstInt(c.I32, 0), entry)
		cmp := bd.ICmp(ir.PredSLT, iPhi, ir.ConstInt(c.I32, int64(iters)))
		bd.CondBr(cmp, body, exit)

		bd.SetBlock(body)
		r := emitDriverCall(bd, f, 7)
		acc2 := bd.Binary(ir.OpXor, accPhi, r)
		i2 := bd.Add(iPhi, ir.ConstInt(c.I32, 1))
		bd.Br(head)
		iPhi.AddIncoming(i2, body)
		accPhi.AddIncoming(acc2, body)

		bd.SetBlock(exit)
		bd.Ret(accPhi)
		names = append(names, dn)
	}
	return names
}
