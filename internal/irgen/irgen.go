// Package irgen synthesizes IR modules whose function populations have
// controlled similarity structure, standing in for the paper's
// workloads (SPEC CPU2006/2017, Linux, Chrome — see Table I), which are
// not available to an offline, stdlib-only reproduction.
//
// A module is a mix of function families and singletons. A family is a
// seed function plus variants derived by mutating a configurable
// fraction of its instructions; the mutation distance is recorded as
// ground truth, which the correlation experiments (Figures 4 and 10)
// exploit. Singletons are independently generated functions with no
// planted similarity. Everything is driven by a seed, so every
// experiment is reproducible.
package irgen

import (
	"fmt"
	"math/rand"

	"f3m/internal/ir"
	"f3m/internal/passes"
)

// Config drives module generation.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64

	// Families is the number of function families to plant.
	Families int

	// FamilySizeMin/Max bound the number of functions per family
	// (including the seed function).
	FamilySizeMin, FamilySizeMax int

	// Singletons is the number of unrelated functions.
	Singletons int

	// BlocksMin/Max bound the number of basic blocks per function.
	BlocksMin, BlocksMax int

	// InstrsMin/Max bound the straight-line instructions per block.
	InstrsMin, InstrsMax int

	// MutationMin/Max bound the fraction of instructions mutated when
	// deriving a family variant. Low fractions produce profitable
	// merge pairs; high fractions produce look-alikes that waste
	// merging effort, the population HyFM's fingerprints confuse.
	MutationMin, MutationMax float64

	// Callers adds simple wrapper functions that call random generated
	// functions, so committing merges exercises call-site rewriting.
	Callers int

	// ConfuserFraction is the probability that a family also plants a
	// "frequency twin" of its seed: identical opcode histogram,
	// scrambled structure (see genConfuser). These are the adversarial
	// inputs that expose the weakness of opcode-frequency ranking.
	ConfuserFraction float64

	// PermutedFraction is the probability that a family also plants a
	// block-permuted semantic twin of its seed: same CFG, same dataflow,
	// same instructions, shuffled block layout (see genPermuted). These
	// are the ground truth for CFG-aware alignment: layout-order
	// fingerprints see them as dissimilar, canonical-order fingerprints
	// see them as identical.
	PermutedFraction float64
}

// DefaultConfig returns a medium-sized population with the mix used by
// most tests.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:             seed,
		Families:         20,
		FamilySizeMin:    2,
		FamilySizeMax:    5,
		Singletons:       40,
		BlocksMin:        3,
		BlocksMax:        7,
		InstrsMin:        4,
		InstrsMax:        12,
		MutationMin:      0.0,
		MutationMax:      0.5,
		Callers:          10,
		ConfuserFraction: 0.35,
	}
}

// FuncInfo records the provenance of one generated function.
type FuncInfo struct {
	Name string

	// Family is the family index, or -1 for singletons and callers.
	Family int

	// Mutations is the number of mutation operations applied relative
	// to the family seed (0 for seeds and singletons).
	Mutations int

	// Confuser marks frequency twins: same opcode histogram as the
	// family seed but scrambled structure.
	Confuser bool

	// Permuted marks block-permuted semantic twins of the family seed:
	// identical instructions and behavior, shuffled block layout.
	Permuted bool
}

// Result is a generated module plus its ground truth.
type Result struct {
	Module *ir.Module
	Info   []FuncInfo
}

// Generate builds a module per the config. The result always verifies.
func Generate(cfg Config) *Result {
	g := &generator{
		rng: rand.New(rand.NewSource(cfg.Seed)),
		cfg: cfg,
		mod: ir.NewModule(fmt.Sprintf("synthetic-%d", cfg.Seed)),
	}
	g.run()
	return &Result{Module: g.mod, Info: g.info}
}

type generator struct {
	rng  *rand.Rand
	cfg  Config
	mod  *ir.Module
	info []FuncInfo

	// lib holds small defined helper functions generated code calls,
	// mimicking runtime/library calls in real programs. Distinct
	// callees diversify instruction encodings, which keeps LSH bucket
	// populations realistic.
	lib []*ir.Function

	// curBuf is the current function's scratch array slot, feeding the
	// generated memory operations.
	curBuf ir.Value

	// flavor shapes the instruction mix of the function being
	// generated. Each seed function draws its own flavor, modelling how
	// different subsystems of a real program favour different idioms;
	// this is what gives the population a realistic long-tailed
	// encoding alphabet instead of one dense cluster.
	flavor flavor
}

type flavor struct {
	// opWeights biases opcode choice without changing the palette:
	// every function uses the same opcode vocabulary (so opcode-
	// frequency fingerprints of unrelated functions stay close, as in
	// real -Os code where loads/adds/calls dominate everywhere), while
	// type-level diversity below differentiates the MinHash encodings.
	opWeights []int
	opTotal   int

	bufLen  int      // scratch array length (distinct type => distinct encodings)
	bufElem *ir.Type // scratch element type
	intTy2  *ir.Type // secondary integer width used by ~40% of arithmetic
	wide    bool
	float   bool
	libs    []*ir.Function
}

func (g *generator) pickFlavor() flavor {
	weights := make([]int, len(intOps))
	total := 0
	for i := range weights {
		weights[i] = 4 + g.rng.Intn(2) // near-uniform: real -Os code
		total += weights[i]            // shares one global opcode mix
	}
	libs := append([]*ir.Function(nil), g.lib...)
	g.rng.Shuffle(len(libs), func(i, j int) { libs[i], libs[j] = libs[j], libs[i] })
	c := g.mod.Ctx
	secondary := []*ir.Type{c.I8, c.I16, c.I64, c.I64}
	bufElems := []*ir.Type{c.I32, c.I32, c.I64, c.I16}
	return flavor{
		opWeights: weights,
		opTotal:   total,
		bufLen:    2 + g.rng.Intn(12),
		bufElem:   bufElems[g.rng.Intn(len(bufElems))],
		intTy2:    secondary[g.rng.Intn(len(secondary))],
		wide:      g.rng.Intn(3) == 0,
		float:     g.rng.Intn(4) == 0,
		libs:      libs[:1+g.rng.Intn(3)],
	}
}

// pickOp draws an integer opcode from the flavor's weight vector.
func (g *generator) pickOp() ir.Opcode {
	r := g.rng.Intn(g.flavor.opTotal)
	for i, w := range g.flavor.opWeights {
		if r < w {
			return intOps[i]
		}
		r -= w
	}
	return intOps[len(intOps)-1]
}

// genLib emits a fixed set of tiny helper functions with varied
// signatures.
func (g *generator) genLib() {
	c := g.mod.Ctx
	mk := func(name string, sig *ir.Type, build func(bd *ir.Builder, f *ir.Function)) {
		f := g.mod.NewFunc(name, sig)
		entry := f.NewBlock("entry")
		bd := ir.NewBuilder(entry)
		build(bd, f)
		g.lib = append(g.lib, f)
	}
	mk("lib.mask32", c.Func(c.I32, c.I32), func(bd *ir.Builder, f *ir.Function) {
		v := bd.Binary(ir.OpAnd, f.Params[0], ir.ConstInt(c.I32, 0x7fff))
		bd.Ret(bd.Add(v, ir.ConstInt(c.I32, 3)))
	})
	mk("lib.scale64", c.Func(c.I64, c.I64, c.I64), func(bd *ir.Builder, f *ir.Function) {
		v := bd.Mul(f.Params[0], f.Params[1])
		bd.Ret(bd.Binary(ir.OpAShr, v, ir.ConstInt(c.I64, 4)))
	})
	mk("lib.fmix", c.Func(c.F64, c.F64), func(bd *ir.Builder, f *ir.Function) {
		v := bd.Binary(ir.OpFMul, f.Params[0], ir.ConstFloat(c.F64, 1.5))
		bd.Ret(bd.Binary(ir.OpFAdd, v, ir.ConstFloat(c.F64, 0.25)))
	})
	mk("lib.clamp", c.Func(c.I32, c.I32, c.I32), func(bd *ir.Builder, f *ir.Function) {
		cnd := bd.ICmp(ir.PredSLT, f.Params[0], f.Params[1])
		bd.Ret(bd.Select(cnd, f.Params[0], f.Params[1]))
	})
	mk("lib.widen", c.Func(c.I64, c.I32), func(bd *ir.Builder, f *ir.Function) {
		bd.Ret(bd.Cast(ir.OpSExt, f.Params[0], c.I64))
	})
}

func (g *generator) run() {
	cfg := g.cfg
	g.genLib()
	for _, f := range g.lib {
		g.info = append(g.info, FuncInfo{Name: f.Name(), Family: -1})
	}
	for fam := 0; fam < cfg.Families; fam++ {
		seedName := fmt.Sprintf("fam%d_v0", fam)
		seed := g.genFunc(seedName)
		g.info = append(g.info, FuncInfo{Name: seedName, Family: fam})
		size := g.intIn(cfg.FamilySizeMin, cfg.FamilySizeMax)
		for v := 1; v < size; v++ {
			name := fmt.Sprintf("fam%d_v%d", fam, v)
			clone := ir.CloneFunc(g.mod, seed, name)
			rate := cfg.MutationMin + g.rng.Float64()*(cfg.MutationMax-cfg.MutationMin)
			muts := g.mutate(clone, rate)
			g.info = append(g.info, FuncInfo{Name: name, Family: fam, Mutations: muts})
		}
		if g.rng.Float64() < cfg.ConfuserFraction {
			name := fmt.Sprintf("fam%d_t0", fam)
			g.genConfuser(seed, name)
			g.info = append(g.info, FuncInfo{Name: name, Family: fam, Confuser: true})
		}
		if g.rng.Float64() < cfg.PermutedFraction {
			name := fmt.Sprintf("fam%d_p0", fam)
			g.genPermuted(seed, name)
			g.info = append(g.info, FuncInfo{Name: name, Family: fam, Permuted: true})
		}
	}
	for s := 0; s < cfg.Singletons; s++ {
		name := fmt.Sprintf("single%d", s)
		g.genFunc(name)
		g.info = append(g.info, FuncInfo{Name: name, Family: -1})
	}
	for c := 0; c < cfg.Callers; c++ {
		name := fmt.Sprintf("caller%d", c)
		g.genCaller(name)
		g.info = append(g.info, FuncInfo{Name: name, Family: -1})
	}
}

func (g *generator) intIn(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + g.rng.Intn(hi-lo+1)
}

// scalarTypes are the value types generated functions compute with.
func (g *generator) scalarTypes() []*ir.Type {
	c := g.mod.Ctx
	return []*ir.Type{c.I32, c.I32, c.I32, c.I64, c.F64} // i32-biased, like C code
}

// genFunc synthesizes one verified function with a random CFG: a chain
// of regions, each either straight-line, a diamond, or a loop.
func (g *generator) genFunc(name string) *ir.Function {
	c := g.mod.Ctx
	nParams := g.intIn(1, 4)
	ptys := make([]*ir.Type, nParams)
	for i := range ptys {
		ptys[i] = g.scalarTypes()[g.rng.Intn(len(g.scalarTypes()))]
	}
	// Integer return keeps differential testing simple.
	f := g.mod.NewFunc(name, c.Func(c.I32, ptys...))

	entry := f.NewBlock("entry")
	bd := ir.NewBuilder(entry)

	g.flavor = g.pickFlavor()
	// Scratch array for generated memory traffic; its per-flavor shape
	// gives the function's memory instructions a distinct type.
	g.curBuf = bd.Alloca(c.Array(g.flavor.bufLen, g.flavor.bufElem))

	// The value pool per type feeds operand selection. Seed it from
	// the parameters plus a materialized constant of each type.
	pool := map[*ir.Type][]ir.Value{}
	add := func(v ir.Value) { pool[v.Type()] = append(pool[v.Type()], v) }
	for _, p := range f.Params {
		add(p)
	}

	// A few conversions so different param types interact.
	for _, p := range f.Params {
		switch {
		case p.Ty == c.I64:
			add(bd.Cast(ir.OpTrunc, p, c.I32))
		case p.Ty == c.F64:
			add(bd.Cast(ir.OpFPToSI, p, c.I32))
		}
	}
	if len(pool[c.I32]) == 0 {
		add(ir.ConstInt(c.I32, int64(g.rng.Intn(100))))
	}

	nblocks := g.intIn(g.cfg.BlocksMin, g.cfg.BlocksMax)
	g.fillBlock(bd, pool, c)

	cur := entry
	made := 1
	for made < nblocks {
		switch kind := g.rng.Intn(3); {
		case kind == 0 || nblocks-made < 2: // straight-line extension
			nxt := f.NewBlock("")
			ir.NewBuilder(cur).Br(nxt)
			nbd := ir.NewBuilder(nxt)
			g.fillBlock(nbd, pool, c)
			cur = nxt
			made++
		case kind == 1 && nblocks-made >= 3: // diamond
			tb := f.NewBlock("")
			fb := f.NewBlock("")
			jb := f.NewBlock("")
			cond := g.cond(ir.NewBuilder(cur), pool, c)
			ir.NewBuilder(cur).CondBr(cond, tb, fb)

			tbd := ir.NewBuilder(tb)
			tv := g.arithI32(tbd, pool, c)
			tbd.Br(jb)
			fbd := ir.NewBuilder(fb)
			fv := g.arithI32(fbd, pool, c)
			fbd.Br(jb)

			jbd := ir.NewBuilder(jb)
			phi := jbd.Phi(c.I32)
			phi.AddIncoming(tv, tb)
			phi.AddIncoming(fv, fb)
			pool[c.I32] = append(pool[c.I32], phi)
			g.fillBlock(jbd, pool, c)
			cur = jb
			made += 3
		default: // bounded counting loop
			head := f.NewBlock("")
			body := f.NewBlock("")
			exit := f.NewBlock("")
			ir.NewBuilder(cur).Br(head)

			hbd := ir.NewBuilder(head)
			iPhi := hbd.Phi(c.I32)
			accPhi := hbd.Phi(c.I32)
			iPhi.AddIncoming(ir.ConstInt(c.I32, 0), cur)
			accPhi.AddIncoming(g.pick(pool, c.I32), cur)
			bound := ir.ConstInt(c.I32, int64(2+g.rng.Intn(6)))
			cmp := hbd.ICmp(ir.PredSLT, iPhi, bound)
			hbd.CondBr(cmp, body, exit)

			bbd := ir.NewBuilder(body)
			acc2 := bbd.Add(accPhi, iPhi)
			i2 := bbd.Add(iPhi, ir.ConstInt(c.I32, 1))
			bbd.Br(head)

			// Loop-control instructions carry the protected prefix so
			// mutations never break termination (interpreter-based
			// differential tests require all functions to halt).
			iPhi.Nam = protectedPrefix + iPhi.Nam
			cmp.Nam = protectedPrefix + cmp.Nam
			i2.Nam = protectedPrefix + i2.Nam
			iPhi.AddIncoming(i2, body)
			accPhi.AddIncoming(acc2, body)

			ebd := ir.NewBuilder(exit)
			pool[c.I32] = append(pool[c.I32], accPhi)
			g.fillBlock(ebd, pool, c)
			cur = exit
			made += 3
		}
	}
	// Fold several live values into the return so most of the body
	// survives dead-code elimination, mimicking -Os output where little
	// dead code remains.
	rbd := ir.NewBuilder(cur)
	acc := g.pick(pool, c.I32)
	folds := 3 + g.rng.Intn(4)
	for i := 0; i < folds; i++ {
		ops := []ir.Opcode{ir.OpXor, ir.OpAdd, ir.OpSub}
		acc = rbd.Binary(ops[g.rng.Intn(len(ops))], acc, g.pick(pool, c.I32))
	}
	rbd.Ret(acc)
	passes.DCE(f)

	if err := ir.VerifyFunc(f); err != nil {
		panic(fmt.Sprintf("irgen: generated invalid function %s: %v\n%s", name, err, ir.FuncString(f)))
	}
	return f
}

// fillBlock appends a run of instructions to the current block, mixing
// arithmetic with casts, compare/select idioms, scratch-memory traffic
// and helper calls in proportions loosely matching -Os scalar code.
func (g *generator) fillBlock(bd *ir.Builder, pool map[*ir.Type][]ir.Value, c *ir.TypeContext) {
	n := g.intIn(g.cfg.InstrsMin, g.cfg.InstrsMax)
	for i := 0; i < n; i++ {
		var v ir.Value
		switch r := g.rng.Intn(10); {
		case r < 5:
			v = g.arith(bd, pool, c)
		case r < 6:
			v = g.castChain(bd, pool, c)
		case r < 7:
			v = g.cmpSelect(bd, pool, c)
		case r < 8:
			v = g.memOp(bd, pool, c)
		case r < 9:
			v = g.libCall(bd, pool, c)
		default:
			v = g.arith(bd, pool, c)
		}
		if v != nil {
			pool[v.Type()] = append(pool[v.Type()], v)
		}
	}
}

// castChain emits a width conversion.
func (g *generator) castChain(bd *ir.Builder, pool map[*ir.Type][]ir.Value, c *ir.TypeContext) ir.Value {
	v := g.pick(pool, c.I32)
	switch g.rng.Intn(4) {
	case 0:
		return bd.Cast(ir.OpSExt, v, c.I64)
	case 1:
		return bd.Cast(ir.OpZExt, v, c.I64)
	case 2:
		return bd.Cast(ir.OpTrunc, v, c.I16)
	default:
		return bd.Cast(ir.OpSIToFP, v, c.F64)
	}
}

// cmpSelect emits the compare+select idiom (min/max/abs shapes).
func (g *generator) cmpSelect(bd *ir.Builder, pool map[*ir.Type][]ir.Value, c *ir.TypeContext) ir.Value {
	a := g.pick(pool, c.I32)
	b := g.pick(pool, c.I32)
	cnd := bd.ICmp([]ir.Pred{ir.PredSLT, ir.PredSGT, ir.PredEQ}[g.rng.Intn(3)], a, b)
	return bd.Select(cnd, a, b)
}

// memOp stores into and reloads from the scratch array.
func (g *generator) memOp(bd *ir.Builder, pool map[*ir.Type][]ir.Value, c *ir.TypeContext) ir.Value {
	idx := ir.ConstInt(c.I64, int64(g.rng.Intn(g.flavor.bufLen)))
	p := bd.GEP(g.curBuf, ir.ConstInt(c.I64, 0), idx)
	if g.rng.Intn(2) == 0 {
		bd.Store(g.pick(pool, g.flavor.bufElem), p)
	}
	return bd.Load(p)
}

// libCall invokes a flavor-selected helper with pool-sourced arguments.
func (g *generator) libCall(bd *ir.Builder, pool map[*ir.Type][]ir.Value, c *ir.TypeContext) ir.Value {
	f := g.flavor.libs[g.rng.Intn(len(g.flavor.libs))]
	args := make([]ir.Value, len(f.Params))
	for i, p := range f.Params {
		args[i] = g.pick(pool, p.Ty)
	}
	return bd.Call(f, args...)
}

var intOps = []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpAShr}
var fltOps = []ir.Opcode{ir.OpFAdd, ir.OpFSub, ir.OpFMul}

// arith emits one random arithmetic instruction, returning its value.
func (g *generator) arith(bd *ir.Builder, pool map[*ir.Type][]ir.Value, c *ir.TypeContext) ir.Value {
	// Pick a type with bias toward i32, steered by the flavor. The
	// secondary integer width changes instruction encodings (not the
	// opcode mix), which is what separates unrelated functions in
	// MinHash space while leaving frequency fingerprints untouched.
	ty := c.I32
	if g.rng.Intn(5) < 2 {
		ty = g.flavor.intTy2
	} else if g.flavor.wide && len(pool[c.I64]) > 0 && g.rng.Intn(2) == 0 {
		ty = c.I64
	} else if g.flavor.float && len(pool[c.F64]) > 0 && g.rng.Intn(2) == 0 {
		ty = c.F64
	}
	a := g.pick(pool, ty)
	b := g.pick(pool, ty)
	if ty.IsFloat() {
		return bd.Binary(fltOps[g.rng.Intn(len(fltOps))], a, b)
	}
	op := g.pickOp()
	if op == ir.OpShl || op == ir.OpAShr {
		// Bounded shift amounts keep semantics stable across widths.
		b = ir.ConstInt(ty, int64(g.rng.Intn(8)))
	}
	return bd.Binary(op, a, b)
}

// arithI32 emits one random integer instruction of type i32, for
// positions that require that type (phi arms, return values).
func (g *generator) arithI32(bd *ir.Builder, pool map[*ir.Type][]ir.Value, c *ir.TypeContext) ir.Value {
	a := g.pick(pool, c.I32)
	b := g.pick(pool, c.I32)
	op := intOps[g.rng.Intn(len(intOps))]
	if op == ir.OpShl || op == ir.OpAShr {
		b = ir.ConstInt(c.I32, int64(g.rng.Intn(8)))
	}
	return bd.Binary(op, a, b)
}

// cond emits a comparison over i32 values.
func (g *generator) cond(bd *ir.Builder, pool map[*ir.Type][]ir.Value, c *ir.TypeContext) ir.Value {
	preds := []ir.Pred{ir.PredSLT, ir.PredSGT, ir.PredEQ, ir.PredNE, ir.PredSLE}
	return bd.ICmp(preds[g.rng.Intn(len(preds))], g.pick(pool, c.I32), g.pick(pool, c.I32))
}

// pick selects a random pool value of the type, or materializes a
// constant.
func (g *generator) pick(pool map[*ir.Type][]ir.Value, ty *ir.Type) ir.Value {
	vals := pool[ty]
	// Constants appear with some probability even when values exist,
	// mirroring real code.
	if len(vals) == 0 || g.rng.Intn(5) == 0 {
		if ty.IsFloat() {
			return ir.ConstFloat(ty, float64(g.rng.Intn(64))/4)
		}
		return ir.ConstInt(ty, int64(g.rng.Intn(128)-32))
	}
	return vals[g.rng.Intn(len(vals))]
}

// genCaller emits a wrapper calling a random previously generated
// function with constant arguments.
func (g *generator) genCaller(name string) {
	c := g.mod.Ctx
	if len(g.mod.Funcs) == 0 {
		return
	}
	callee := g.mod.Funcs[g.rng.Intn(len(g.mod.Funcs))]
	f := g.mod.NewFunc(name, c.Func(c.I32))
	entry := f.NewBlock("entry")
	bd := ir.NewBuilder(entry)
	args := make([]ir.Value, len(callee.Params))
	for i, p := range callee.Params {
		if p.Ty.IsFloat() {
			args[i] = ir.ConstFloat(p.Ty, float64(g.rng.Intn(16)))
		} else {
			args[i] = ir.ConstInt(p.Ty, int64(g.rng.Intn(32)))
		}
	}
	r := bd.Call(callee, args...)
	bd.Ret(r)
	if err := ir.VerifyFunc(f); err != nil {
		panic(fmt.Sprintf("irgen: invalid caller %s: %v", name, err))
	}
}
