package irgen

import (
	"fmt"

	"f3m/internal/ir"
)

// genPermuted plants a block-reordered semantic twin of seed: a clone
// whose non-entry blocks are shuffled in the layout list. Layout order
// carries no semantics — the verifier and every pass resolve control
// flow through edges — so the twin behaves identically to the seed,
// but the linearized instruction stream the sequence strategies
// fingerprint and align is scrambled. These twins are the ground truth
// for the CFG-aware strategy: a reorder-tolerant pipeline must rank
// and merge them like the identical copies they semantically are.
//
// The shuffle deliberately leaves instruction content untouched (no
// branch-arm inversion: negating a compare predicate changes that
// instruction's encoding, which would make the twin genuinely
// different under any order-canonical fingerprint, blurring the
// ground truth).
func (g *generator) genPermuted(seed *ir.Function, name string) *ir.Function {
	f := ir.CloneFunc(g.mod, seed, name)

	// Entry must stay first; everything else is order-free. Re-shuffle
	// until the permutation is not the identity, so every planted twin
	// actually exercises reorder tolerance.
	rest := f.Blocks[1:]
	orig := append([]*ir.Block(nil), rest...)
	same := func() bool {
		for i := range rest {
			if rest[i] != orig[i] {
				return false
			}
		}
		return true
	}
	for tries := 0; tries < 32; tries++ {
		g.rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })
		if len(rest) < 2 || !same() {
			break
		}
	}

	if err := ir.VerifyFunc(f); err != nil {
		panic(fmt.Sprintf("irgen: invalid permuted twin %s: %v\n%s", name, err, ir.FuncString(f)))
	}
	return f
}
