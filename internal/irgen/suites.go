package irgen

import (
	"math/rand"

	"f3m/internal/fingerprint"
)

// SuiteSpec describes one benchmark-shaped workload, the analogue of a
// row of the paper's Table I. Function counts follow the paper where
// known; the three giant rows are scaled down (documented in DESIGN.md)
// so a full-IR population still fits in memory, while the
// encoded-stream path (GenerateEncoded) runs at paper scale.
type SuiteSpec struct {
	// Name of the workload the shape mimics.
	Name string

	// Funcs is the number of functions to generate.
	Funcs int

	// AvgInstrs steers function body size.
	AvgInstrs int

	// CloneFraction is the fraction of functions that belong to a
	// family (the rest are singletons). Larger programs carry more
	// near-duplicate code (templates, generated handlers).
	CloneFraction float64
}

// Suites lists the workloads of the evaluation, ordered by function
// count as in the paper's figures. SPEC-sized rows use the paper's
// reported function counts; linux/chrome-shaped rows are scaled ~4x and
// ~24x down respectively.
var Suites = []SuiteSpec{
	{Name: "462.libquantum", Funcs: 115, AvgInstrs: 25, CloneFraction: 0.30},
	{Name: "429.mcf", Funcs: 136, AvgInstrs: 30, CloneFraction: 0.25},
	{Name: "458.sjeng", Funcs: 144, AvgInstrs: 35, CloneFraction: 0.30},
	{Name: "433.milc", Funcs: 235, AvgInstrs: 30, CloneFraction: 0.30},
	{Name: "456.hmmer", Funcs: 538, AvgInstrs: 30, CloneFraction: 0.35},
	{Name: "464.h264ref", Funcs: 590, AvgInstrs: 40, CloneFraction: 0.35},
	{Name: "445.gobmk", Funcs: 2679, AvgInstrs: 25, CloneFraction: 0.35},
	{Name: "400.perlbench", Funcs: 1837, AvgInstrs: 35, CloneFraction: 0.40},
	{Name: "471.omnetpp", Funcs: 2526, AvgInstrs: 25, CloneFraction: 0.45},
	{Name: "403.gcc", Funcs: 5577, AvgInstrs: 30, CloneFraction: 0.40},
	{Name: "620.omnetpp_s", Funcs: 9067, AvgInstrs: 25, CloneFraction: 0.45},
	{Name: "623.xalancbmk_s", Funcs: 13394, AvgInstrs: 25, CloneFraction: 0.50},
	{Name: "linux-shaped", Funcs: 11250, AvgInstrs: 22, CloneFraction: 0.45},
	{Name: "chrome-shaped", Funcs: 50000, AvgInstrs: 18, CloneFraction: 0.50},
}

// SmallSuites returns the profiles small enough for full-pipeline runs
// in tests (sub-second generation, seconds-scale merging).
func SmallSuites() []SuiteSpec {
	var out []SuiteSpec
	for _, s := range Suites {
		if s.Funcs <= 3000 {
			out = append(out, s)
		}
	}
	return out
}

// Config derives a generator config realizing the suite shape.
func (s SuiteSpec) Config(seed int64) Config {
	famFuncs := int(float64(s.Funcs) * s.CloneFraction)
	const famSize = 4 // average family size
	families := famFuncs / famSize
	if families < 1 {
		families = 1
	}
	singles := s.Funcs - families*famSize
	if singles < 0 {
		singles = 0
	}
	blocks := s.AvgInstrs / 8
	if blocks < 2 {
		blocks = 2
	}
	return Config{
		Seed:             seed,
		Families:         families,
		FamilySizeMin:    2,
		FamilySizeMax:    famSize*2 - 2,
		Singletons:       singles,
		BlocksMin:        blocks,
		BlocksMax:        blocks + 3,
		InstrsMin:        3,
		InstrsMax:        s.AvgInstrs / 2,
		MutationMin:      0.0,
		MutationMax:      0.6,
		Callers:          s.Funcs / 50,
		ConfuserFraction: 0.35,
	}
}

// EncodedPopulation is a lightweight stand-in for a function population
// when only ranking is measured: per-function encoded instruction
// streams with the same family/mutation structure as Generate, but no
// IR objects. This is how the scaling experiments reach paper-scale
// function counts (a million functions of real IR would not fit).
type EncodedPopulation struct {
	Seqs []([]fingerprint.Encoded)
	Info []FuncInfo
}

// GenerateEncoded synthesizes an encoded-stream population of n
// functions with the given clone fraction.
func GenerateEncoded(seed int64, n int, avgLen int, cloneFraction float64) *EncodedPopulation {
	rng := rand.New(rand.NewSource(seed))
	pop := &EncodedPopulation{
		Seqs: make([][]fingerprint.Encoded, 0, n),
		Info: make([]FuncInfo, 0, n),
	}
	// Alphabet size approximates the distinct instruction encodings in
	// real programs: dozens of opcodes x a few types.
	const alphabet = 120
	fresh := func() []fingerprint.Encoded {
		ln := avgLen/2 + rng.Intn(avgLen+1)
		if ln < 3 {
			ln = 3
		}
		s := make([]fingerprint.Encoded, ln)
		for i := range s {
			s[i] = fingerprint.Encoded(rng.Intn(alphabet))
		}
		return s
	}
	family := 0
	for len(pop.Seqs) < n {
		if rng.Float64() < cloneFraction {
			// Emit a family of 2-6 variants.
			seed := fresh()
			size := 2 + rng.Intn(5)
			for v := 0; v < size && len(pop.Seqs) < n; v++ {
				s := append([]fingerprint.Encoded(nil), seed...)
				muts := 0
				if v > 0 {
					muts = rng.Intn(len(s)/2 + 1)
					for j := 0; j < muts; j++ {
						s[rng.Intn(len(s))] = fingerprint.Encoded(rng.Intn(alphabet))
					}
				}
				pop.Seqs = append(pop.Seqs, s)
				pop.Info = append(pop.Info, FuncInfo{Family: family, Mutations: muts})
			}
			family++
			continue
		}
		pop.Seqs = append(pop.Seqs, fresh())
		pop.Info = append(pop.Info, FuncInfo{Family: -1})
	}
	return pop
}
