package irgen

import (
	"fmt"
	"strings"

	"f3m/internal/ir"
	"f3m/internal/passes"
)

// protectedPrefix marks instructions that mutations must leave intact
// (loop-control code whose corruption would produce non-terminating
// functions). Clones keep instruction names, so protection survives
// family derivation.
const protectedPrefix = "fix."

// protected reports whether the instruction must not be mutated.
func protected(in *ir.Instr) bool {
	return strings.HasPrefix(in.Nam, protectedPrefix)
}

// mutate applies rate*len(instructions) random mutation operations to a
// cloned function, returning how many were applied. Mutations preserve
// validity: they touch opcodes, predicates, constants and operands, or
// insert fresh instructions, but never break dominance or block
// structure. This models the edit distance between real near-duplicate
// functions (template instantiations, copy-pasted handlers).
func (g *generator) mutate(f *ir.Function, rate float64) int {
	total := f.NumInstrs()
	n := int(rate * float64(total))
	applied := 0
	for i := 0; i < n; i++ {
		switch g.rng.Intn(5) {
		case 0:
			if g.mutTweakConst(f) {
				applied++
			}
		case 1:
			if g.mutSwapOpcode(f) {
				applied++
			}
		case 2:
			if g.mutReplaceOperand(f) {
				applied++
			}
		case 3:
			if g.mutInsert(f) {
				applied++
			}
		case 4:
			if g.mutSwapPred(f) {
				applied++
			}
		}
	}
	// Scrub dead code introduced by unwired insertions so variant sizes
	// stay comparable to post -Os IR.
	passes.DCE(f)
	if err := ir.VerifyFunc(f); err != nil {
		panic(fmt.Sprintf("irgen: mutation broke %s: %v\n%s", f.Name(), err, ir.FuncString(f)))
	}
	return applied
}

// randInstr picks a random instruction satisfying ok.
func (g *generator) randInstr(f *ir.Function, ok func(*ir.Instr) bool) *ir.Instr {
	var cands []*ir.Instr
	f.Instructions(func(in *ir.Instr) {
		if ok(in) {
			cands = append(cands, in)
		}
	})
	if len(cands) == 0 {
		return nil
	}
	return cands[g.rng.Intn(len(cands))]
}

func (g *generator) mutTweakConst(f *ir.Function) bool {
	in := g.randInstr(f, func(in *ir.Instr) bool {
		// GEP constants are structural (indices): tweaking them would
		// move pointers out of bounds.
		if in.Op == ir.OpPhi || in.Op.IsTerminator() || in.Op == ir.OpGEP || protected(in) {
			return false
		}
		for _, op := range in.Operands {
			if c, ok := op.(*ir.Const); ok && c.Ty.IsInt() {
				return true
			}
		}
		return false
	})
	if in == nil {
		return false
	}
	for i, op := range in.Operands {
		if c, ok := op.(*ir.Const); ok && c.Ty.IsInt() {
			in.Operands[i] = ir.ConstInt(c.Ty, c.IntVal+int64(g.rng.Intn(7)-3)+1)
			return true
		}
	}
	return false
}

func (g *generator) mutSwapOpcode(f *ir.Function) bool {
	in := g.randInstr(f, func(in *ir.Instr) bool {
		return !protected(in) && in.Op.IsBinary() && in.Ty.IsInt() &&
			in.Op != ir.OpShl && in.Op != ir.OpLShr && in.Op != ir.OpAShr &&
			in.Op != ir.OpSDiv && in.Op != ir.OpUDiv && in.Op != ir.OpSRem && in.Op != ir.OpURem
	})
	if in == nil {
		return false
	}
	safe := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor}
	in.Op = safe[g.rng.Intn(len(safe))]
	return true
}

func (g *generator) mutSwapPred(f *ir.Function) bool {
	in := g.randInstr(f, func(in *ir.Instr) bool { return in.Op == ir.OpICmp && !protected(in) })
	if in == nil {
		return false
	}
	preds := []ir.Pred{ir.PredSLT, ir.PredSGT, ir.PredEQ, ir.PredNE, ir.PredSLE, ir.PredSGE}
	in.Predicate = preds[g.rng.Intn(len(preds))]
	return true
}

// available returns values usable at (b, idx): parameters plus values
// defined earlier in the same block. (Earlier blocks would need a
// dominance check; same-block-earlier is always safe.)
func available(b *ir.Block, idx int, ty *ir.Type) []ir.Value {
	var out []ir.Value
	for _, p := range b.Parent.Params {
		if p.Ty == ty {
			out = append(out, p)
		}
	}
	for _, in := range b.Instrs[:idx] {
		if in.Ty == ty {
			out = append(out, in)
		}
	}
	return out
}

func (g *generator) mutReplaceOperand(f *ir.Function) bool {
	in := g.randInstr(f, func(in *ir.Instr) bool {
		return !in.Op.IsTerminator() && in.Op != ir.OpPhi && in.Op != ir.OpGEP &&
			in.Op != ir.OpCall && in.Op != ir.OpInvoke && len(in.Operands) > 0 &&
			!protected(in)
	})
	if in == nil {
		return false
	}
	b := in.Parent
	idx := b.IndexOf(in)
	slot := g.rng.Intn(len(in.Operands))
	ty := in.Operands[slot].Type()
	if !ty.IsInt() && !ty.IsFloat() {
		return false
	}
	cands := available(b, idx, ty)
	if len(cands) == 0 {
		return false
	}
	in.Operands[slot] = cands[g.rng.Intn(len(cands))]
	return true
}

// mutInsert inserts a fresh binary instruction; half the time its value
// replaces a same-typed operand of a later instruction in the block, so
// inserted code is not always dead.
func (g *generator) mutInsert(f *ir.Function) bool {
	c := f.Parent.Ctx
	// Pick a block and a position after any phi run, before the
	// terminator.
	b := f.Blocks[g.rng.Intn(len(f.Blocks))]
	lo := b.FirstNonPhi()
	hi := len(b.Instrs) - 1 // before terminator
	if hi < lo {
		return false
	}
	pos := lo + g.rng.Intn(hi-lo+1)

	ty := c.I32
	cands := available(b, pos, ty)
	pickVal := func() ir.Value {
		if len(cands) == 0 || g.rng.Intn(4) == 0 {
			return ir.ConstInt(ty, int64(g.rng.Intn(64)))
		}
		return cands[g.rng.Intn(len(cands))]
	}
	safe := []ir.Opcode{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor}
	ni := &ir.Instr{
		Op:       safe[g.rng.Intn(len(safe))],
		Ty:       ty,
		Nam:      f.FreshName("mut"),
		Operands: []ir.Value{pickVal(), pickVal()},
	}
	b.InsertAt(pos, ni)

	if g.rng.Intn(2) == 0 {
		// Wire the new value into a later non-phi instruction.
		for _, later := range b.Instrs[pos+1:] {
			if later.Op == ir.OpPhi || later.Op.IsTerminator() || later.Op == ir.OpGEP ||
				later.Op == ir.OpCall || later.Op == ir.OpInvoke || protected(later) {
				continue
			}
			for i, op := range later.Operands {
				if op.Type() == ty {
					later.Operands[i] = ni
					return true
				}
			}
		}
	}
	return true
}
