package irgen

import (
	"fmt"

	"f3m/internal/ir"
)

// genConfuser derives a "frequency twin" of the seed function: a
// function with the *exact same opcode histogram* — hence opcode-
// frequency fingerprint distance zero — whose instructions operate on a
// divergent type theme and scrambled data flow. These are the pairs
// from the paper's Figure 5 (perf_trace_destroy vs fat_put_super):
// HyFM's opcode-frequency ranking considers them ideal candidates, yet
// they align poorly and merge unprofitably, while the type-aware
// MinHash encoding sees through them.
//
// Construction: clone the seed, keep its CFG skeleton (phis,
// terminators and protected loop-control code), then replace every
// other body instruction with a freshly generated instruction of the
// SAME OPCODE but re-flavored types and operands. Skeleton operands
// that referenced replaced values are rewired to fresh values of
// matching type.
func (g *generator) genConfuser(seed *ir.Function, name string) *ir.Function {
	f := ir.CloneFunc(g.mod, seed, name)
	c := g.mod.Ctx

	// Divergent type theme: if the seed leaned on i32, the twin leans
	// on i64 (or i16), floats move to f32.
	intTy := c.I64
	if g.rng.Intn(4) == 0 {
		intTy = c.I16
	}
	fltTy := c.F32

	ce := &confEmitter{
		g: g, f: f, c: c,
		intTy: intTy, fltTy: fltTy,
		deleted: make(map[ir.Value]bool),
	}
	for _, b := range f.Blocks {
		ce.rebuildBlock(b)
	}
	ce.rewireSkeleton()

	if err := ir.VerifyFunc(f); err != nil {
		panic(fmt.Sprintf("irgen: confuser broke %s: %v\n%s", name, err, ir.FuncString(f)))
	}
	return f
}

// confEmitter holds the state of one confuser construction.
type confEmitter struct {
	g     *generator
	f     *ir.Function
	c     *ir.TypeContext
	intTy *ir.Type
	fltTy *ir.Type

	// buf is the twin's scratch buffer (set when the alloca is
	// re-emitted); ptrs lists re-emitted GEP results usable by loads.
	buf  ir.Value
	ptrs []ir.Value

	deleted map[ir.Value]bool
}

// rebuildBlock replaces the block's replaceable body with same-opcode,
// re-flavored instructions.
func (ce *confEmitter) rebuildBlock(b *ir.Block) {
	g := ce.g
	// Pointers are block-local: a GEP from a non-dominating block must
	// never feed this block's loads. The generator's memOp always puts
	// a GEP in the same block as its loads/stores, so the per-block
	// opcode multiset keeps this self-sufficient.
	ce.ptrs = nil
	lo := b.FirstNonPhi()
	hi := len(b.Instrs)
	term := b.Term()
	if term != nil {
		hi--
	}
	body := append([]*ir.Instr(nil), b.Instrs[lo:hi]...)

	// Partition: kept (protected) vs replaced opcodes.
	var kept []*ir.Instr
	var ops []ir.Opcode
	for _, in := range body {
		if protected(in) {
			kept = append(kept, in)
			continue
		}
		ops = append(ops, in.Op)
		ce.deleted[in] = true
	}

	// Emission order: allocas first (they define the scratch buffer),
	// then geps (loads need pointers), then everything else shuffled
	// together with the kept instructions.
	var allocas, geps, rest []ir.Opcode
	for _, op := range ops {
		switch op {
		case ir.OpAlloca:
			allocas = append(allocas, op)
		case ir.OpGEP:
			geps = append(geps, op)
		default:
			rest = append(rest, op)
		}
	}
	g.rng.Shuffle(len(rest), func(i, j int) { rest[i], rest[j] = rest[j], rest[i] })

	// Rebuild the instruction list: phis, new body, terminator.
	newInstrs := append([]*ir.Instr(nil), b.Instrs[:lo]...)
	b.Instrs = newInstrs
	bd := ir.NewBuilder(b)

	// Pool: parameters plus this block's phis.
	pool := map[*ir.Type][]ir.Value{}
	add := func(v ir.Value) {
		if v != nil && v.Type().IsFirstClass() {
			pool[v.Type()] = append(pool[v.Type()], v)
		}
	}
	for _, p := range ce.f.Params {
		add(p)
	}
	for _, phi := range b.Phis() {
		add(phi)
	}

	for _, op := range allocas {
		add(ce.emit(bd, op, pool))
	}
	for _, op := range geps {
		add(ce.emit(bd, op, pool))
	}
	keptIdx := 0
	for _, op := range rest {
		// Interleave kept instructions at random points.
		for keptIdx < len(kept) && g.rng.Intn(len(rest)+1) == 0 {
			in := kept[keptIdx]
			in.Parent = b
			b.Instrs = append(b.Instrs, in)
			add(in)
			keptIdx++
		}
		add(ce.emit(bd, op, pool))
	}
	for ; keptIdx < len(kept); keptIdx++ {
		in := kept[keptIdx]
		in.Parent = b
		b.Instrs = append(b.Instrs, in)
	}
	if term != nil {
		b.Instrs = append(b.Instrs, term)
	}
}

// pick returns a pool value of the type or materializes a constant.
func (ce *confEmitter) pick(pool map[*ir.Type][]ir.Value, ty *ir.Type) ir.Value {
	vals := pool[ty]
	if len(vals) == 0 || ce.g.rng.Intn(4) == 0 {
		switch {
		case ty.IsFloat():
			return ir.ConstFloat(ty, float64(ce.g.rng.Intn(32))/2)
		case ty.IsInt():
			return ir.ConstInt(ty, int64(ce.g.rng.Intn(64)))
		default:
			return ir.ConstUndef(ty)
		}
	}
	return vals[ce.g.rng.Intn(len(vals))]
}

// emit generates one instruction of the required opcode under the
// twin's type theme.
func (ce *confEmitter) emit(bd *ir.Builder, op ir.Opcode, pool map[*ir.Type][]ir.Value) ir.Value {
	g, c := ce.g, ce.c
	intTy := ce.intTy
	if g.rng.Intn(5) == 0 {
		intTy = c.I32 // keep a sprinkle of the original theme
	}
	switch {
	case op.IsBinary() && op >= ir.OpFAdd:
		return bd.Binary(op, ce.pick(pool, ce.fltTy), ce.pick(pool, ce.fltTy))
	case op == ir.OpShl || op == ir.OpLShr || op == ir.OpAShr:
		return bd.Binary(op, ce.pick(pool, intTy), ir.ConstInt(intTy, int64(g.rng.Intn(8))))
	case op.IsBinary():
		return bd.Binary(op, ce.pick(pool, intTy), ce.pick(pool, intTy))
	}
	switch op {
	case ir.OpAlloca:
		ce.buf = bd.Alloca(c.Array(2+g.rng.Intn(12), ce.intTy))
		return ce.buf
	case ir.OpGEP:
		if ce.buf == nil {
			ce.buf = bd.Alloca(c.Array(4, ce.intTy))
		}
		n := ce.buf.Type().Elem.Len
		p := bd.GEP(ce.buf, ir.ConstInt(c.I64, 0), ir.ConstInt(c.I64, int64(g.rng.Intn(n))))
		ce.ptrs = append(ce.ptrs, p)
		return p
	case ir.OpLoad:
		p := ce.anyPtr(bd)
		return bd.Load(p)
	case ir.OpStore:
		p := ce.anyPtr(bd)
		bd.Store(ce.pick(pool, p.Type().Elem), p)
		return nil
	case ir.OpICmp:
		preds := []ir.Pred{ir.PredSLT, ir.PredSGT, ir.PredEQ, ir.PredNE, ir.PredSLE}
		return bd.ICmp(preds[g.rng.Intn(len(preds))], ce.pick(pool, intTy), ce.pick(pool, intTy))
	case ir.OpFCmp:
		preds := []ir.Pred{ir.PredOLT, ir.PredOGT, ir.PredOEQ}
		return bd.FCmp(preds[g.rng.Intn(len(preds))], ce.pick(pool, ce.fltTy), ce.pick(pool, ce.fltTy))
	case ir.OpSelect:
		cond := ir.Value(ir.ConstBool(c, g.rng.Intn(2) == 0))
		if vals := pool[c.I1]; len(vals) > 0 {
			cond = vals[g.rng.Intn(len(vals))]
		}
		return bd.Select(cond, ce.pick(pool, intTy), ce.pick(pool, intTy))
	case ir.OpTrunc:
		return bd.Cast(ir.OpTrunc, ce.pick(pool, c.I64), c.I16)
	case ir.OpSExt, ir.OpZExt:
		return bd.Cast(op, ce.pick(pool, c.I16), c.I64)
	case ir.OpSIToFP:
		return bd.Cast(ir.OpSIToFP, ce.pick(pool, intTy), ce.fltTy)
	case ir.OpFPToSI:
		return bd.Cast(ir.OpFPToSI, ce.pick(pool, ce.fltTy), intTy)
	case ir.OpFPExt:
		return bd.Cast(ir.OpFPExt, ce.pick(pool, c.F32), c.F64)
	case ir.OpFPTrunc:
		return bd.Cast(ir.OpFPTrunc, ce.pick(pool, c.F64), c.F32)
	case ir.OpCall:
		f := g.lib[g.rng.Intn(len(g.lib))]
		args := make([]ir.Value, len(f.Params))
		for i, p := range f.Params {
			args[i] = ce.pick(pool, p.Ty)
		}
		return bd.Call(f, args...)
	}
	panic(fmt.Sprintf("irgen: confuser cannot re-emit opcode %s", op))
}

// anyPtr returns a usable pointer, creating a fresh GEP-free fallback
// only if the block had loads/stores but no pointer yet (possible when
// geps sat in another block; the entry alloca dominates everything).
func (ce *confEmitter) anyPtr(bd *ir.Builder) ir.Value {
	if len(ce.ptrs) > 0 {
		return ce.ptrs[ce.g.rng.Intn(len(ce.ptrs))]
	}
	if ce.buf == nil {
		ce.buf = bd.Alloca(ce.c.Array(4, ce.intTy))
	}
	p := bd.GEP(ce.buf, ir.ConstInt(ce.c.I64, 0), ir.ConstInt(ce.c.I64, 0))
	ce.ptrs = append(ce.ptrs, p)
	return p
}

// rewireSkeleton repoints remaining references to deleted values
// (phi edges, return operands, kept-instruction inputs) at fresh values
// of matching type.
func (ce *confEmitter) rewireSkeleton() {
	ce.f.Instructions(func(in *ir.Instr) {
		for i, op := range in.Operands {
			if !ce.deleted[op] {
				continue
			}
			ty := op.Type()
			var repl ir.Value
			// Prefer a same-typed value from the block that must
			// dominate this use.
			home := in.Parent
			if in.Op == ir.OpPhi {
				home = in.IncomingBlocks[i]
			}
			for _, cand := range home.Instrs {
				if cand == in {
					break
				}
				if !ce.deleted[cand] && cand.Type() == ty && !cand.Ty.IsVoid() {
					repl = cand
				}
			}
			if repl == nil {
				switch {
				case ty.IsInt():
					repl = ir.ConstInt(ty, int64(ce.g.rng.Intn(32)))
				case ty.IsFloat():
					repl = ir.ConstFloat(ty, 1)
				default:
					repl = ir.ConstUndef(ty)
				}
			}
			in.Operands[i] = repl
		}
	})
}
