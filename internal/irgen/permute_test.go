package irgen

import (
	"fmt"
	"testing"

	"f3m/internal/interp"
	"f3m/internal/ir"
)

// permutedFixture generates a population where every family plants a
// block-permuted twin of its seed.
func permutedFixture(seed int64) *Result {
	cfg := Config{
		Seed: seed, Families: 10, FamilySizeMin: 1, FamilySizeMax: 1,
		Singletons: 0, BlocksMin: 6, BlocksMax: 10, InstrsMin: 2, InstrsMax: 4,
		Callers: 0, PermutedFraction: 1.0,
	}
	return Generate(cfg)
}

func TestPermutedTwinsVerifyAndDiffer(t *testing.T) {
	res := permutedFixture(17)
	m := res.Module
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("module with permuted twins invalid: %v", err)
	}
	twins := 0
	for _, inf := range res.Info {
		if !inf.Permuted {
			continue
		}
		twins++
		seed := m.Func(fmt.Sprintf("fam%d_v0", inf.Family))
		twin := m.Func(inf.Name)
		if seed == nil || twin == nil {
			t.Fatalf("family %d: missing seed or twin", inf.Family)
		}
		if len(seed.Blocks) != len(twin.Blocks) {
			t.Errorf("%s: %d blocks vs seed's %d", inf.Name, len(twin.Blocks), len(seed.Blocks))
		}
		// The twin must actually be reordered: some layout position holds
		// a block whose instruction count or content position differs.
		// Compare layout-order block sizes as a cheap reorder witness.
		if len(seed.Blocks) > 2 && sameLayoutShape(seed, twin) {
			t.Errorf("%s: layout identical to seed, shuffle was a no-op", inf.Name)
		}
	}
	if twins != 10 {
		t.Fatalf("planted %d permuted twins, want 10", twins)
	}
}

// sameLayoutShape reports whether both functions linearize to the same
// per-position instruction stream (ignoring value names).
func sameLayoutShape(a, b *ir.Function) bool {
	la, lb := a.Linearize(), b.Linearize()
	if len(la) != len(lb) {
		return false
	}
	for i := range la {
		if la[i].Op != lb[i].Op || la[i].Predicate != lb[i].Predicate ||
			len(la[i].Operands) != len(lb[i].Operands) {
			return false
		}
	}
	return true
}

// TestPermutedTwinsSemanticallyEqual drives seed and twin through the
// interpreter on a grid of arguments; a layout shuffle must never
// change observable behavior.
func TestPermutedTwinsSemanticallyEqual(t *testing.T) {
	res := permutedFixture(23)
	m := res.Module
	mach := interp.NewMachine(m)
	mach.StepLimit = 10_000_000
	for _, inf := range res.Info {
		if !inf.Permuted {
			continue
		}
		seed := m.Func(fmt.Sprintf("fam%d_v0", inf.Family))
		twin := m.Func(inf.Name)
		for trial := 0; trial < 4; trial++ {
			args := make([]interp.Val, len(seed.Params))
			for i, p := range seed.Params {
				if p.Ty.IsFloat() {
					args[i] = interp.FloatVal(p.Ty, float64(trial)+0.5)
				} else {
					args[i] = interp.IntVal(p.Ty, int64(i*7+trial-2))
				}
			}
			got, err := mach.Call(twin, args...)
			if err != nil {
				t.Fatalf("@%s: %v", twin.Name(), err)
			}
			want, err := mach.Call(seed, args...)
			if err != nil {
				t.Fatalf("@%s: %v", seed.Name(), err)
			}
			if got != want {
				t.Errorf("@%s(trial %d) = %v, seed returns %v", twin.Name(), trial, got, want)
			}
		}
	}
}
