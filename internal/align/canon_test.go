package align

import (
	"testing"

	"f3m/internal/ir"
)

// canonSrc defines the same function three times: @orig in natural
// layout, @perm with the non-entry blocks listed in a different layout
// order and every label renamed, and @swap with the conditional
// branch's arms listed in the opposite order (content otherwise
// identical to @orig up to label names). @mut mutates one block's body.
const canonSrc = `
define i32 @orig(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %t, label %f
t:
  %p = add i32 %x, 1
  br label %j
f:
  %q = mul i32 %x, 3
  br label %j
j:
  %m = phi i32 [ %p, %t ], [ %q, %f ]
  %r = xor i32 %m, 7
  br label %end
end:
  %s = sub i32 %r, 2
  ret i32 %s
}
define i32 @perm(i32 %x) {
e2:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %b2, label %b3
b5:
  %s = sub i32 %r, 2
  ret i32 %s
b3:
  %q = mul i32 %x, 3
  br label %b4
b4:
  %m = phi i32 [ %p, %b2 ], [ %q, %b3 ]
  %r = xor i32 %m, 7
  br label %b5
b2:
  %p = add i32 %x, 1
  br label %b4
}
define i32 @swap(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %f, label %t
t:
  %p = add i32 %x, 1
  br label %j
f:
  %q = mul i32 %x, 3
  br label %j
j:
  %m = phi i32 [ %p, %t ], [ %q, %f ]
  %r = xor i32 %m, 7
  br label %end
end:
  %s = sub i32 %r, 2
  ret i32 %s
}
define i32 @mut(i32 %x) {
e2:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %b2, label %b3
b5:
  %s = sub i32 %r, 2
  ret i32 %s
b3:
  %q = ashr i32 %x, 3
  %q2 = or i32 %q, 12
  br label %b4
b4:
  %m = phi i32 [ %p, %b2 ], [ %q2, %b3 ]
  %r = xor i32 %m, 7
  br label %b5
b2:
  %p = add i32 %x, 1
  br label %b4
}
`

func parseCanon(t *testing.T) *ir.Module {
	t.Helper()
	m, err := ir.ParseModule(canonSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCanonicalizeLayoutInvariant(t *testing.T) {
	m := parseCanon(t)
	oa := Canonicalize(m.Func("orig"), nil)
	ob := Canonicalize(m.Func("perm"), nil)
	if len(oa.Blocks) != 5 || len(ob.Blocks) != 5 {
		t.Fatalf("canonical lengths %d/%d, want 5/5", len(oa.Blocks), len(ob.Blocks))
	}
	for i := range oa.Fps {
		if oa.Fps[i] != ob.Fps[i] {
			t.Errorf("position %d: fp %x (block %s) vs %x (block %s)",
				i, oa.Fps[i], oa.Blocks[i].Name(), ob.Fps[i], ob.Blocks[i].Name())
		}
	}
	// @perm's canonical order must differ from its scrambled layout:
	// position 1 of the layout is the ret block, which can only be last
	// canonically (it is dominated by everything on its path).
	if ob.Blocks[1] == m.Func("perm").Blocks[1] {
		t.Error("canonical order follows scrambled layout")
	}
}

func TestCanonicalizeArmOrderInvariant(t *testing.T) {
	m := parseCanon(t)
	oa := Canonicalize(m.Func("orig"), nil)
	ob := Canonicalize(m.Func("swap"), nil)
	for i := range oa.Fps {
		if oa.Fps[i] != ob.Fps[i] {
			t.Errorf("position %d: fp %x vs %x — arm listing order leaked into the canonical order",
				i, oa.Fps[i], ob.Fps[i])
		}
	}
}

func TestCanonicalizeDeterministic(t *testing.T) {
	m := parseCanon(t)
	f := m.Func("perm")
	a, b := Canonicalize(f, nil), Canonicalize(f, nil)
	for i := range a.Blocks {
		if a.Blocks[i] != b.Blocks[i] || a.Fps[i] != b.Fps[i] {
			t.Fatalf("position %d differs across runs", i)
		}
	}
	// Passing a caller-owned dominator tree must agree with the
	// transient one.
	dom := ir.NewDomTree(f)
	defer dom.Release()
	c := Canonicalize(f, dom)
	for i := range a.Blocks {
		if a.Blocks[i] != c.Blocks[i] {
			t.Fatalf("position %d differs with cached dom tree", i)
		}
	}
}

func TestMatchBlocksCFGPermuted(t *testing.T) {
	m := parseCanon(t)
	f1, f2 := m.Func("orig"), m.Func("perm")
	for _, cch := range []*Cache{nil, NewCache(0)} {
		pairs, unA, unB, moves := MatchBlocksCFG(f1, f2, 0.5, cch)
		if len(pairs) != 5 || len(unA) != 0 || len(unB) != 0 {
			t.Fatalf("cache=%v: pairs=%d unA=%d unB=%d, want 5/0/0", cch != nil, len(pairs), len(unA), len(unB))
		}
		for _, p := range pairs {
			if p.Ratio != 1 {
				t.Errorf("pair %s/%s ratio = %v, want 1", p.A.Name(), p.B.Name(), p.Ratio)
			}
		}
		if moves == 0 {
			t.Error("permuted layout reported zero block moves")
		}
	}
}

func TestMatchBlocksCFGIdenticalLayoutNoMoves(t *testing.T) {
	m := parseCanon(t)
	f := m.Func("orig")
	pairs, unA, unB, moves := MatchBlocksCFG(f, m.Func("swap"), 0.5, nil)
	if len(pairs) != 5 || len(unA) != 0 || len(unB) != 0 {
		t.Fatalf("pairs=%d unA=%d unB=%d, want 5/0/0", len(pairs), len(unA), len(unB))
	}
	if moves != 0 {
		t.Errorf("same-layout twins reported %d moves", moves)
	}
	// Self-match is the degenerate same-layout case.
	if _, _, _, selfMoves := MatchBlocksCFG(f, f, 0.5, nil); selfMoves != 0 {
		t.Errorf("self match reported %d moves", selfMoves)
	}
}

// TestMatchBlocksCFGFallback: a block whose body was mutated no longer
// matches by canonical fingerprint, but the greedy residue pass still
// pairs it when the bodies align above the ratio floor — the CFG
// matcher is never weaker than the sequence matcher on leftovers.
func TestMatchBlocksCFGFallback(t *testing.T) {
	m := parseCanon(t)
	pairs, unA, unB, _ := MatchBlocksCFG(m.Func("orig"), m.Func("mut"), 0.3, nil)
	if len(unA) != 0 || len(unB) != 0 {
		t.Fatalf("unA=%d unB=%d, want full pairing via greedy fallback", len(unA), len(unB))
	}
	if len(pairs) != 5 {
		t.Fatalf("pairs=%d, want 5", len(pairs))
	}
	exact := 0
	for _, p := range pairs {
		if p.Ratio == 1 {
			exact++
		}
	}
	// Four blocks are untouched; only the mutated arm pairs inexactly.
	if exact != 4 {
		t.Errorf("exact pairs = %d, want 4", exact)
	}
}
