package align

import (
	"math/rand"
	"testing"

	"f3m/internal/fingerprint"
	"f3m/internal/irgen"
)

// fullReference runs the exact O(n·m) DP with a private buffer,
// bypassing the banded fast path entirely.
func fullReference(a, b []fingerprint.Encoded) []Entry {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	var buf dpBuf
	res := nwFull(&buf, a, b)
	out := make([]Entry, len(res))
	copy(out, res)
	return out
}

// TestBandedMatchesFullOnCorpora is the differential gate for the
// banded fast path: over generated modules (every irgen family shape,
// several seeds), the public NeedlemanWunsch — which tries the band
// first — must reproduce the full DP's traceback column for column on
// every within-module function pair. The corpus is exactly the
// distribution the merge pipeline feeds the aligner, including the
// near-identical family members where the band actually engages.
func TestBandedMatchesFullOnCorpora(t *testing.T) {
	for _, seed := range []int64{1, 42, 103} {
		m := irgen.Generate(irgen.DefaultConfig(seed)).Module
		encs := make([][]fingerprint.Encoded, len(m.Funcs))
		for i, f := range m.Funcs {
			encs[i] = fingerprint.EncodeFunc(f)
		}
		pairs, banded := 0, 0
		for i := range encs {
			// Each function against a stride of partners keeps the
			// quadratic pair space affordable while still crossing
			// family boundaries.
			for j := i + 1; j < len(encs); j += 7 {
				got := NeedlemanWunsch(encs[i], encs[j])
				want := fullReference(encs[i], encs[j])
				if !entriesEqual(got, want) {
					t.Fatalf("seed %d: banded alignment of %s vs %s diverges from full DP",
						seed, m.Funcs[i].Name(), m.Funcs[j].Name())
				}
				pairs++
				var buf dpBuf
				if _, ok := nwBanded(&buf, encs[i], encs[j]); ok {
					banded++
				}
			}
		}
		if banded == 0 {
			t.Fatalf("seed %d: banded path never engaged over %d pairs; differential test is vacuous", seed, pairs)
		}
		t.Logf("seed %d: %d pairs, %d banded", seed, pairs, banded)
	}
}

// TestBandedAdversarialLowSimilarity hammers the fast path with the
// inputs it is worst at: long pairs with little in common, where any
// optimal alignment hugs the matrix edges and the band-escape proof
// must correctly force the full-DP fallback. Whatever path runs, the
// traceback must equal the reference.
func TestBandedAdversarialLowSimilarity(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := bandMinLen + r.Intn(80)
		m := bandMinLen + r.Intn(80)
		// Two nearly-disjoint alphabets with a sprinkle of shared
		// symbols: similarity is low but nonzero, so tracebacks have a
		// few scattered matches that tempt a too-narrow band.
		a := make([]fingerprint.Encoded, n)
		b := make([]fingerprint.Encoded, m)
		for i := range a {
			a[i] = fingerprint.Encoded(r.Intn(64))
		}
		for i := range b {
			b[i] = fingerprint.Encoded(64 + r.Intn(64))
		}
		for k := 0; k < 3; k++ {
			sym := fingerprint.Encoded(200 + r.Intn(4))
			a[r.Intn(n)] = sym
			b[r.Intn(m)] = sym
		}
		got := NeedlemanWunsch(a, b)
		want := fullReference(a, b)
		if !entriesEqual(got, want) {
			t.Fatalf("trial %d (n=%d m=%d): alignment diverges from full DP", trial, n, m)
		}
	}
}

// TestBandedShiftedWindows covers the regime in between: identical
// cores at different offsets, which stresses the |n−m| diagonal shift
// handling of the band.
func TestBandedShiftedWindows(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	core := make([]fingerprint.Encoded, 48)
	for i := range core {
		core[i] = fingerprint.Encoded(r.Intn(16))
	}
	for shift := 0; shift <= 12; shift++ {
		a := append([]fingerprint.Encoded(nil), core...)
		b := make([]fingerprint.Encoded, 0, len(core)+shift)
		for i := 0; i < shift; i++ {
			b = append(b, fingerprint.Encoded(1000+i))
		}
		b = append(b, core...)
		got := NeedlemanWunsch(a, b)
		want := fullReference(a, b)
		if !entriesEqual(got, want) {
			t.Fatalf("shift %d: alignment diverges from full DP", shift)
		}
	}
}
