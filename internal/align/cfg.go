package align

import (
	"f3m/internal/fingerprint"
	"f3m/internal/ir"
)

// MatchBlocksCFG pairs the blocks of f1 and f2 CFG-aware: both
// functions are canonicalized into dominator-tree order (see
// Canonicalize), the two canonical block-fingerprint sequences are
// aligned with the same Needleman–Wunsch machinery the instruction
// level uses, and each exactly-matched column is verified by a
// block-body alignment reaching minRatio. Blocks the canonical pass
// leaves unmatched — mutated bodies whose fingerprints differ — fall
// back to the greedy fingerprint-distance matcher of MatchBlocks, so
// the result is never weaker than running the greedy matcher alone on
// those blocks. The (pairs, unA, unB) artifact is exactly what
// MatchBlocksCached produces and feeds the same merged-code generator.
//
// moves counts accepted pairs whose two blocks sit at different layout
// indices in their functions — the reorder the sequence-order pipeline
// would have mis-aligned; it feeds the align.cfg.block_moves histogram.
//
// Both the block-fingerprint alignment and the body verifications are
// routed through cch (nil disables caching). Because the canonical
// sequences are layout-independent, the cache keys are too: a
// speculative worker warming a permuted clone pair produces exactly the
// entries the committer's attempt will ask for (see WarmPairCFG).
func MatchBlocksCFG(f1, f2 *ir.Function, minRatio float64, cch *Cache) (pairs []BlockPair, unA, unB []*ir.Block, moves int) {
	o1 := Canonicalize(f1, nil)
	o2 := Canonicalize(f2, nil)

	var entries []Entry
	if cch != nil {
		entries = cch.NW(o1.Fps, o2.Fps)
	} else {
		entries = NeedlemanWunsch(o1.Fps, o2.Fps)
	}

	takenA := make(map[*ir.Block]bool, len(o1.Blocks))
	takenB := make(map[*ir.Block]bool, len(o2.Blocks))
	for _, e := range entries {
		if !e.Matched() {
			continue
		}
		a, b := o1.Blocks[e.A], o2.Blocks[e.B]
		ea, eb := fingerprint.EncodeBlock(a), fingerprint.EncodeBlock(b)
		var r float64
		if cch != nil {
			r = Ratio(cch.NW(ea, eb), len(ea), len(eb))
		} else {
			r = nwRatio(ea, eb)
		}
		if r < minRatio {
			continue // fingerprint collision or sub-threshold body
		}
		takenA[a], takenB[b] = true, true
		pairs = append(pairs, BlockPair{A: a, B: b, Ratio: r})
	}

	// Residue: blocks the canonical exact-match pass left unpaired, in
	// layout order (the order the merger emits unmatched blocks in).
	var restA, restB []*ir.Block
	for _, b := range f1.Blocks {
		if !takenA[b] {
			restA = append(restA, b)
		}
	}
	for _, b := range f2.Blocks {
		if !takenB[b] {
			restB = append(restB, b)
		}
	}
	pairs, unA, unB = greedyMatch(restA, restB, minRatio, cch, pairs)

	layoutA := make(map[*ir.Block]int, len(f1.Blocks))
	for i, b := range f1.Blocks {
		layoutA[b] = i
	}
	layoutB := make(map[*ir.Block]int, len(f2.Blocks))
	for i, b := range f2.Blocks {
		layoutB[b] = i
	}
	for _, p := range pairs {
		if layoutA[p.A] != layoutB[p.B] {
			moves++
		}
	}
	return pairs, unA, unB, moves
}
