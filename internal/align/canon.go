package align

import (
	"slices"

	"f3m/internal/fingerprint"
	"f3m/internal/ir"
)

// CanonOrder is the canonical block order of a function: a
// linearization that depends only on the CFG shape and the blocks'
// instruction content, never on the layout order of Function.Blocks or
// on label names. Two functions that differ only by a block-layout
// permutation — or by the order a conditional branch lists its arms —
// canonicalize to the same block sequence, which is what makes
// reorder-tolerant fingerprinting and block matching possible (see
// MatchBlocksCFG and DESIGN.md, "CFG-aware alignment"). Content
// changes are reflected, not hidden: negating a compare predicate
// changes that block's fingerprint and hence its canonical position,
// exactly as it changes the instruction stream.
type CanonOrder struct {
	// Blocks is the canonical sequence: a preorder walk of the
	// dominator tree with children visited in canonical-key order,
	// followed by any unreachable blocks in layout order.
	Blocks []*ir.Block

	// Fps holds, aligned with Blocks, each block's 32-bit content
	// fingerprint: a hash of its instruction encodings and successor
	// count. Equal fingerprints mark blocks the block-level aligner may
	// pair exactly.
	Fps []fingerprint.Encoded
}

// canonNode is the per-block state of one canonicalization: the content
// fingerprint, the dominator-subtree fingerprint/size the child sort
// keys on, and the layout index used as the final deterministic
// tie-break.
type canonNode struct {
	fp   uint64 // content fingerprint of the block alone
	sub  uint64 // fingerprint of the whole dominator subtree
	size int32  // block count of the dominator subtree
	idx  int32  // layout index (last-resort tie-break)
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// mix folds one word into an FNV-1a style running hash.
func mix(h, w uint64) uint64 {
	return (h ^ w) * fnvPrime
}

// blockFp hashes a block's merge-relevant content: every instruction's
// 32-bit encoding in order, plus the successor count. Successor
// *identity* is deliberately excluded — it is label-dependent — but the
// terminator's own encoding (opcode, condition type, negated-or-not
// predicate) is included via EncodeInstr, so e.g. `br` and `condbr`
// blocks never collide.
func blockFp(b *ir.Block) uint64 {
	h := uint64(fnvOffset)
	for _, in := range b.Instrs {
		h = mix(h, uint64(fingerprint.EncodeInstr(in)))
	}
	if term := b.Term(); term != nil {
		h = mix(h, uint64(term.NumSuccessors())+0x9e3779b9)
	}
	return h
}

// Canonicalize computes the canonical block order of f. When dom is nil
// a transient dominator tree is built (and released); callers that
// already hold one — the analysis manager caches them — pass it in.
//
// The order is a preorder walk of the dominator tree in which each
// node's children are sorted by (subtree fingerprint, subtree size,
// block fingerprint, layout index). The first three keys are invariant
// under block-layout permutation and under conditional-branch arm swaps
// (the arms are dominator-tree siblings whose content differs, so the
// sort ignores which arm the branch lists first); the layout index only
// decides between structurally identical subtrees, whose relative order
// cannot change the canonical instruction sequence. Unreachable blocks
// carry no dominator information and are appended in layout order.
func Canonicalize(f *ir.Function, dom *ir.DomTree) *CanonOrder {
	nb := len(f.Blocks)
	out := &CanonOrder{
		Blocks: make([]*ir.Block, 0, nb),
		Fps:    make([]fingerprint.Encoded, 0, nb),
	}
	if nb == 0 {
		return out
	}
	if dom == nil {
		dom = ir.NewDomTree(f)
		defer dom.Release()
	}

	nodes := make(map[*ir.Block]*canonNode, nb)
	for i, b := range f.Blocks {
		nodes[b] = &canonNode{fp: blockFp(b), idx: int32(i)}
	}

	// Children in canonical-key order; the sort is stable over the
	// tree's deterministic reverse-postorder child lists, so fully tied
	// (structurally identical) subtrees keep a deterministic order too.
	sortedKids := func(b *ir.Block, buf []*ir.Block) []*ir.Block {
		kids := dom.Children(b, buf)
		slices.SortStableFunc(kids, func(x, y *ir.Block) int {
			nx, ny := nodes[x], nodes[y]
			switch {
			case nx.sub != ny.sub:
				if nx.sub < ny.sub {
					return -1
				}
				return 1
			case nx.size != ny.size:
				return int(nx.size - ny.size)
			case nx.fp != ny.fp:
				if nx.fp < ny.fp {
					return -1
				}
				return 1
			default:
				return int(nx.idx - ny.idx)
			}
		})
		return kids
	}

	// Bottom-up pass: subtree fingerprints and sizes. The explicit
	// stack carries (block, children-expanded) frames; children are
	// resolved unsorted here — the combine below re-sorts them, and by
	// then their own subtree keys are final.
	entry := f.Entry()
	type frame struct {
		b        *ir.Block
		expanded bool
	}
	stack := []frame{{b: entry}}
	kidbuf := make([]*ir.Block, 0, 8)
	for len(stack) > 0 {
		fr := &stack[len(stack)-1]
		if !fr.expanded {
			fr.expanded = true
			for _, c := range dom.Children(fr.b, kidbuf[:0]) {
				stack = append(stack, frame{b: c})
			}
			continue
		}
		n := nodes[fr.b]
		n.sub = mix(fnvOffset, n.fp)
		n.size = 1
		for _, c := range sortedKids(fr.b, kidbuf[:0]) {
			cn := nodes[c]
			n.sub = mix(n.sub, cn.sub)
			n.size += cn.size
		}
		stack = stack[:len(stack)-1]
	}

	// Preorder emit. Children are pushed in reverse canonical order so
	// the stack pops them in canonical order.
	emit := func(b *ir.Block) {
		n := nodes[b]
		out.Blocks = append(out.Blocks, b)
		// Fold 64 -> 32 bits; the 64-bit fp only disambiguates the sort.
		out.Fps = append(out.Fps, fingerprint.Encoded(n.fp^n.fp>>32))
	}
	walk := []*ir.Block{entry}
	for len(walk) > 0 {
		b := walk[len(walk)-1]
		walk = walk[:len(walk)-1]
		emit(b)
		kids := sortedKids(b, kidbuf[:0])
		for i := len(kids) - 1; i >= 0; i-- {
			walk = append(walk, kids[i])
		}
		kidbuf = kids[:0]
	}
	for _, b := range f.Blocks {
		if !dom.Reachable(b) {
			emit(b)
		}
	}
	return out
}
