// Package align implements the sequence-alignment machinery that
// function merging by sequence alignment is built on: Needleman–Wunsch
// global alignment over encoded instruction sequences, and HyFM-style
// basic-block pairing that restricts alignment to pairs of similar
// blocks.
//
// The alignment quality metric (Ratio) is the y-axis of the paper's
// Figures 4 and 10: the fraction of instructions that land in matched
// alignment slots.
package align

import (
	"sort"

	"f3m/internal/fingerprint"
	"f3m/internal/ir"
)

// Entry is one column of an alignment: indices into the two sequences,
// with -1 marking a gap on that side.
type Entry struct {
	A, B int
}

// Matched reports whether the entry aligns an element from each side.
func (e Entry) Matched() bool { return e.A >= 0 && e.B >= 0 }

// Scores for Needleman–Wunsch. Matches are strongly rewarded,
// mismatch columns are never produced (a mismatch is represented as two
// gaps, matching how the merger emits guarded copies).
const (
	matchScore = 2
	gapScore   = -1
)

// NeedlemanWunsch computes a global alignment of two encoded
// instruction sequences. Only identical encodings may occupy a matched
// column. The result covers every index of both inputs in order.
func NeedlemanWunsch(a, b []fingerprint.Encoded) []Entry {
	n, m := len(a), len(b)
	// score[i][j] = best score aligning a[:i] with b[:j].
	score := make([][]int32, n+1)
	for i := range score {
		score[i] = make([]int32, m+1)
	}
	for i := 1; i <= n; i++ {
		score[i][0] = int32(i) * gapScore
	}
	for j := 1; j <= m; j++ {
		score[0][j] = int32(j) * gapScore
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			best := score[i-1][j] + gapScore
			if s := score[i][j-1] + gapScore; s > best {
				best = s
			}
			if a[i-1] == b[j-1] {
				if s := score[i-1][j-1] + matchScore; s > best {
					best = s
				}
			}
			score[i][j] = best
		}
	}
	// Traceback.
	var rev []Entry
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && a[i-1] == b[j-1] && score[i][j] == score[i-1][j-1]+matchScore:
			rev = append(rev, Entry{A: i - 1, B: j - 1})
			i--
			j--
		case i > 0 && score[i][j] == score[i-1][j]+gapScore:
			rev = append(rev, Entry{A: i - 1, B: -1})
			i--
		default:
			rev = append(rev, Entry{A: -1, B: j - 1})
			j--
		}
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

// Matches counts matched columns.
func Matches(entries []Entry) int {
	n := 0
	for _, e := range entries {
		if e.Matched() {
			n++
		}
	}
	return n
}

// Ratio is the alignment-quality metric of Figures 4 and 10: matched
// instructions (counted on both sides) over total instructions.
func Ratio(entries []Entry, lenA, lenB int) float64 {
	if lenA+lenB == 0 {
		return 1
	}
	return float64(2*Matches(entries)) / float64(lenA+lenB)
}

// FuncRatio aligns two whole functions and returns the alignment ratio;
// it is the ground-truth "how well would these merge" signal that the
// fingerprint similarity metrics are judged against.
func FuncRatio(f1, f2 *ir.Function) float64 {
	a := fingerprint.EncodeFunc(f1)
	b := fingerprint.EncodeFunc(f2)
	return Ratio(NeedlemanWunsch(a, b), len(a), len(b))
}

// Segment is a run of alignment columns that are either all matched or
// all gaps; the merger turns matched segments into shared code and gap
// segments into guarded copies.
type Segment struct {
	Matched bool
	// A and B list the instruction indices covered on each side;
	// one may be empty in a gap segment.
	A, B []int
}

// Segments groups alignment columns into maximal matched/unmatched
// runs.
func Segments(entries []Entry) []Segment {
	var segs []Segment
	for _, e := range entries {
		m := e.Matched()
		if len(segs) == 0 || segs[len(segs)-1].Matched != m {
			segs = append(segs, Segment{Matched: m})
		}
		s := &segs[len(segs)-1]
		if e.A >= 0 {
			s.A = append(s.A, e.A)
		}
		if e.B >= 0 {
			s.B = append(s.B, e.B)
		}
	}
	return segs
}

// BlockPair is a pairing of basic blocks across the two functions,
// scored by alignment ratio of the block bodies.
type BlockPair struct {
	A, B  *ir.Block
	Ratio float64
}

// MatchBlocks greedily pairs similar blocks of f1 and f2, HyFM-style:
// candidate pairs are ranked by block fingerprint distance, verified by
// block-level alignment, and accepted when the match ratio reaches
// minRatio. Unpaired blocks are returned separately.
func MatchBlocks(f1, f2 *ir.Function, minRatio float64) (pairs []BlockPair, unA, unB []*ir.Block) {
	type cand struct {
		a, b *ir.Block
		dist int
	}
	fpA := make(map[*ir.Block]*fingerprint.FreqVector, len(f1.Blocks))
	for _, b := range f1.Blocks {
		fpA[b] = fingerprint.FreqBlock(b)
	}
	fpB := make(map[*ir.Block]*fingerprint.FreqVector, len(f2.Blocks))
	for _, b := range f2.Blocks {
		fpB[b] = fingerprint.FreqBlock(b)
	}
	var cands []cand
	for _, a := range f1.Blocks {
		for _, b := range f2.Blocks {
			cands = append(cands, cand{a, b, fpA[a].Distance(fpB[b])})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })

	takenA := make(map[*ir.Block]bool)
	takenB := make(map[*ir.Block]bool)
	for _, c := range cands {
		if takenA[c.a] || takenB[c.b] {
			continue
		}
		ea, eb := fingerprint.EncodeBlock(c.a), fingerprint.EncodeBlock(c.b)
		r := Ratio(NeedlemanWunsch(ea, eb), len(ea), len(eb))
		if r < minRatio {
			continue
		}
		takenA[c.a], takenB[c.b] = true, true
		pairs = append(pairs, BlockPair{A: c.a, B: c.b, Ratio: r})
	}
	for _, b := range f1.Blocks {
		if !takenA[b] {
			unA = append(unA, b)
		}
	}
	for _, b := range f2.Blocks {
		if !takenB[b] {
			unB = append(unB, b)
		}
	}
	return pairs, unA, unB
}

// BlockAlign aligns the bodies of two blocks and returns the segments.
func BlockAlign(a, b *ir.Block) []Segment {
	return Segments(NeedlemanWunsch(fingerprint.EncodeBlock(a), fingerprint.EncodeBlock(b)))
}

// MergeRatio is the block-level alignment-quality metric the paper's
// Figures 4 and 10 plot: pair the functions' blocks HyFM-style, then
// count instructions landing in matched alignment columns of accepted
// block pairs, over all instructions of both functions. Unrelated
// functions, whose blocks fail to pair, score near zero even when a
// whole-function alignment would find coincidental matches.
func MergeRatio(f1, f2 *ir.Function, minRatio float64) float64 {
	pairs, _, _ := MatchBlocks(f1, f2, minRatio)
	matched := 0
	for _, p := range pairs {
		ea, eb := fingerprint.EncodeBlock(p.A), fingerprint.EncodeBlock(p.B)
		matched += Matches(NeedlemanWunsch(ea, eb))
	}
	total := f1.NumInstrs() + f2.NumInstrs()
	if total == 0 {
		return 1
	}
	return float64(2*matched) / float64(total)
}
