// Package align implements the sequence-alignment machinery that
// function merging by sequence alignment is built on: Needleman–Wunsch
// global alignment over encoded instruction sequences, and HyFM-style
// basic-block pairing that restricts alignment to pairs of similar
// blocks.
//
// The alignment quality metric (Ratio) is the y-axis of the paper's
// Figures 4 and 10: the fraction of instructions that land in matched
// alignment slots.
package align

import (
	"sort"
	"sync"

	"f3m/internal/fingerprint"
	"f3m/internal/ir"
)

// Entry is one column of an alignment: indices into the two sequences,
// with -1 marking a gap on that side.
type Entry struct {
	A, B int
}

// Matched reports whether the entry aligns an element from each side.
func (e Entry) Matched() bool { return e.A >= 0 && e.B >= 0 }

// Scores for Needleman–Wunsch. Matches are strongly rewarded,
// mismatch columns are never produced (a mismatch is represented as two
// gaps, matching how the merger emits guarded copies).
const (
	matchScore = 2
	gapScore   = -1
)

// dpBuf is the reusable scratch state of one NeedlemanWunsch call: the
// flat DP matrix and the traceback stack. Pooling it removes the
// per-pair allocation spike the merge stage used to pay (one row slice
// per input instruction); a call now allocates only its result.
type dpBuf struct {
	score []int32
	rev   []Entry
}

var dpPool = sync.Pool{New: func() any { return new(dpBuf) }}

// NeedlemanWunsch computes a global alignment of two encoded
// instruction sequences. Only identical encodings may occupy a matched
// column. The result covers every index of both inputs in order.
//
// The DP matrix and traceback scratch come from a pool shared by all
// goroutines; the returned slice is freshly allocated and safe to
// retain (the alignment cache does).
func NeedlemanWunsch(a, b []fingerprint.Encoded) []Entry {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return nil
	}
	buf := dpPool.Get().(*dpBuf)
	w := m + 1
	need := (n + 1) * w
	if cap(buf.score) < need {
		buf.score = make([]int32, need)
	}
	// score[i*w+j] = best score aligning a[:i] with b[:j]. Every cell
	// is written below, so the recycled buffer needs no clearing.
	score := buf.score[:need]
	score[0] = 0
	for i := 1; i <= n; i++ {
		score[i*w] = int32(i) * gapScore
	}
	for j := 1; j <= m; j++ {
		score[j] = int32(j) * gapScore
	}
	for i := 1; i <= n; i++ {
		row, prev := score[i*w:], score[(i-1)*w:]
		for j := 1; j <= m; j++ {
			best := prev[j] + gapScore
			if s := row[j-1] + gapScore; s > best {
				best = s
			}
			if a[i-1] == b[j-1] {
				if s := prev[j-1] + matchScore; s > best {
					best = s
				}
			}
			row[j] = best
		}
	}
	// Traceback, in the exact tie-break order of the original
	// row-sliced implementation: diagonal match first, then up-gap,
	// else left-gap.
	rev := buf.rev[:0]
	i, j := n, m
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && a[i-1] == b[j-1] && score[i*w+j] == score[(i-1)*w+j-1]+matchScore:
			rev = append(rev, Entry{A: i - 1, B: j - 1})
			i--
			j--
		case i > 0 && score[i*w+j] == score[(i-1)*w+j]+gapScore:
			rev = append(rev, Entry{A: i - 1, B: -1})
			i--
		default:
			rev = append(rev, Entry{A: -1, B: j - 1})
			j--
		}
	}
	out := make([]Entry, len(rev))
	for k, e := range rev {
		out[len(rev)-1-k] = e
	}
	buf.rev = rev
	dpPool.Put(buf)
	return out
}

// Matches counts matched columns.
func Matches(entries []Entry) int {
	n := 0
	for _, e := range entries {
		if e.Matched() {
			n++
		}
	}
	return n
}

// Ratio is the alignment-quality metric of Figures 4 and 10: matched
// instructions (counted on both sides) over total instructions.
func Ratio(entries []Entry, lenA, lenB int) float64 {
	if lenA+lenB == 0 {
		return 1
	}
	return float64(2*Matches(entries)) / float64(lenA+lenB)
}

// FuncRatio aligns two whole functions and returns the alignment ratio;
// it is the ground-truth "how well would these merge" signal that the
// fingerprint similarity metrics are judged against.
func FuncRatio(f1, f2 *ir.Function) float64 {
	a := fingerprint.EncodeFunc(f1)
	b := fingerprint.EncodeFunc(f2)
	return Ratio(NeedlemanWunsch(a, b), len(a), len(b))
}

// Segment is a run of alignment columns that are either all matched or
// all gaps; the merger turns matched segments into shared code and gap
// segments into guarded copies.
type Segment struct {
	Matched bool
	// A and B list the instruction indices covered on each side;
	// one may be empty in a gap segment.
	A, B []int
}

// Segments groups alignment columns into maximal matched/unmatched
// runs.
func Segments(entries []Entry) []Segment {
	var segs []Segment
	for _, e := range entries {
		m := e.Matched()
		if len(segs) == 0 || segs[len(segs)-1].Matched != m {
			segs = append(segs, Segment{Matched: m})
		}
		s := &segs[len(segs)-1]
		if e.A >= 0 {
			s.A = append(s.A, e.A)
		}
		if e.B >= 0 {
			s.B = append(s.B, e.B)
		}
	}
	return segs
}

// BlockPair is a pairing of basic blocks across the two functions,
// scored by alignment ratio of the block bodies.
type BlockPair struct {
	A, B  *ir.Block
	Ratio float64
}

// MatchBlocks greedily pairs similar blocks of f1 and f2, HyFM-style:
// candidate pairs are ranked by block fingerprint distance, verified by
// block-level alignment, and accepted when the match ratio reaches
// minRatio. Unpaired blocks are returned separately.
func MatchBlocks(f1, f2 *ir.Function, minRatio float64) (pairs []BlockPair, unA, unB []*ir.Block) {
	return MatchBlocksCached(f1, f2, minRatio, nil)
}

// MatchBlocksCached is MatchBlocks with the block-level alignments
// routed through c (nil disables caching). The pairing decisions are
// identical either way — the cache is exact — so callers can mix
// cached and uncached invocations freely.
func MatchBlocksCached(f1, f2 *ir.Function, minRatio float64, cch *Cache) (pairs []BlockPair, unA, unB []*ir.Block) {
	type cand struct {
		a, b *ir.Block
		dist int
	}
	fpA := make(map[*ir.Block]*fingerprint.FreqVector, len(f1.Blocks))
	for _, b := range f1.Blocks {
		fpA[b] = fingerprint.FreqBlock(b)
	}
	fpB := make(map[*ir.Block]*fingerprint.FreqVector, len(f2.Blocks))
	for _, b := range f2.Blocks {
		fpB[b] = fingerprint.FreqBlock(b)
	}
	var cands []cand
	for _, a := range f1.Blocks {
		for _, b := range f2.Blocks {
			cands = append(cands, cand{a, b, fpA[a].Distance(fpB[b])})
		}
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].dist < cands[j].dist })

	takenA := make(map[*ir.Block]bool)
	takenB := make(map[*ir.Block]bool)
	for _, c := range cands {
		if takenA[c.a] || takenB[c.b] {
			continue
		}
		ea, eb := fingerprint.EncodeBlock(c.a), fingerprint.EncodeBlock(c.b)
		r := Ratio(cch.NW(ea, eb), len(ea), len(eb))
		if r < minRatio {
			continue
		}
		takenA[c.a], takenB[c.b] = true, true
		pairs = append(pairs, BlockPair{A: c.a, B: c.b, Ratio: r})
	}
	for _, b := range f1.Blocks {
		if !takenA[b] {
			unA = append(unA, b)
		}
	}
	for _, b := range f2.Blocks {
		if !takenB[b] {
			unB = append(unB, b)
		}
	}
	return pairs, unA, unB
}

// BlockAlign aligns the bodies of two blocks and returns the segments.
func BlockAlign(a, b *ir.Block) []Segment {
	return Segments(NeedlemanWunsch(fingerprint.EncodeBlock(a), fingerprint.EncodeBlock(b)))
}

// MergeRatio is the block-level alignment-quality metric the paper's
// Figures 4 and 10 plot: pair the functions' blocks HyFM-style, then
// count instructions landing in matched alignment columns of accepted
// block pairs, over all instructions of both functions. Unrelated
// functions, whose blocks fail to pair, score near zero even when a
// whole-function alignment would find coincidental matches.
func MergeRatio(f1, f2 *ir.Function, minRatio float64) float64 {
	pairs, _, _ := MatchBlocks(f1, f2, minRatio)
	matched := 0
	for _, p := range pairs {
		ea, eb := fingerprint.EncodeBlock(p.A), fingerprint.EncodeBlock(p.B)
		matched += Matches(NeedlemanWunsch(ea, eb))
	}
	total := f1.NumInstrs() + f2.NumInstrs()
	if total == 0 {
		return 1
	}
	return float64(2*matched) / float64(total)
}
