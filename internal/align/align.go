// Package align implements the sequence-alignment machinery that
// function merging by sequence alignment is built on: Needleman–Wunsch
// global alignment over encoded instruction sequences, and HyFM-style
// basic-block pairing that restricts alignment to pairs of similar
// blocks.
//
// The alignment quality metric (Ratio) is the y-axis of the paper's
// Figures 4 and 10: the fraction of instructions that land in matched
// alignment slots.
package align

import (
	"slices"
	"sync"
	"sync/atomic"

	"f3m/internal/fingerprint"
	"f3m/internal/ir"
)

// Entry is one column of an alignment: indices into the two sequences,
// with -1 marking a gap on that side.
type Entry struct {
	A, B int
}

// Matched reports whether the entry aligns an element from each side.
func (e Entry) Matched() bool { return e.A >= 0 && e.B >= 0 }

// Scores for Needleman–Wunsch. Matches are strongly rewarded,
// mismatch columns are never produced (a mismatch is represented as two
// gaps, matching how the merger emits guarded copies).
const (
	matchScore = 2
	gapScore   = -1
)

// Banded fast-path tuning. The band slack grows with the Hamming
// distance between the encoded sequences (the per-position fingerprint
// disagreement), since substitution-style edits keep the optimal path
// near the diagonal while insertions shift everything after them — the
// latter blow the Hamming count up and deterministically disqualify the
// band, so the full DP runs directly with no wasted banded attempt.
const (
	bandMinLen    = 24 // below this the full DP is already trivial
	bandBaseSlack = 4
)

// dpBuf is the reusable scratch state of one NeedlemanWunsch call: the
// flat DP matrix and the backward-filled traceback buffer. Pooling both
// removes the per-pair allocation spike the merge stage used to pay;
// internal callers that only need a ratio borrow the traceback view and
// allocate nothing at all.
type dpBuf struct {
	score []int32
	out   []Entry
}

var dpPool = sync.Pool{New: func() any { return new(dpBuf) }}

// grow readies the buffer for a DP of cells matrix cells and up to
// entries traceback columns.
func (buf *dpBuf) grow(cells, entries int) {
	if cap(buf.score) < cells {
		buf.score = make([]int32, cells)
	}
	buf.score = buf.score[:cells]
	if cap(buf.out) < entries {
		buf.out = make([]Entry, entries)
	}
	buf.out = buf.out[:entries]
}

// NeedlemanWunsch computes a global alignment of two encoded
// instruction sequences. Only identical encodings may occupy a matched
// column. The result covers every index of both inputs in order.
//
// The DP matrix and traceback scratch come from a pool shared by all
// goroutines; the returned slice is freshly allocated and safe to
// retain (the alignment cache does). High-similarity pairs take a
// banded fast path that provably reproduces the full DP's traceback
// (see nwBanded); the result is identical either way.
func NeedlemanWunsch(a, b []fingerprint.Encoded) []Entry {
	n, m := len(a), len(b)
	if n == 0 && m == 0 {
		return nil
	}
	buf := dpPool.Get().(*dpBuf)
	res := nwInto(buf, a, b)
	out := make([]Entry, len(res))
	copy(out, res)
	dpPool.Put(buf)
	return out
}

// bandedHits counts alignments served by the banded fast path; see
// BandedHits.
var bandedHits atomic.Uint64

// BandedHits reports the process-wide number of alignments the banded
// fast path served (monotonic, never reset). Integration tests compare
// it across a pipeline run to prove realistic corpora actually
// exercise the band rather than always falling back to the full DP.
func BandedHits() uint64 { return bandedHits.Load() }

// nwInto computes the alignment into buf and returns a view into
// buf.out, valid only until buf is reused. The banded path is tried
// first; it declines (deterministically, as a pure function of the
// inputs) whenever it cannot prove its answer equals the full DP's.
func nwInto(buf *dpBuf, a, b []fingerprint.Encoded) []Entry {
	if res, ok := nwBanded(buf, a, b); ok {
		bandedHits.Add(1)
		return res
	}
	return nwFull(buf, a, b)
}

// nwRatio computes the alignment ratio without retaining entries: the
// traceback stays in the pooled buffer, so the call allocates nothing.
func nwRatio(a, b []fingerprint.Encoded) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	buf := dpPool.Get().(*dpBuf)
	r := Ratio(nwInto(buf, a, b), len(a), len(b))
	dpPool.Put(buf)
	return r
}

// nwMatches counts matched columns without retaining entries.
func nwMatches(a, b []fingerprint.Encoded) int {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	buf := dpPool.Get().(*dpBuf)
	n := Matches(nwInto(buf, a, b))
	dpPool.Put(buf)
	return n
}

// nwFull is the exact O(n·m) DP with pooled scratch.
func nwFull(buf *dpBuf, a, b []fingerprint.Encoded) []Entry {
	n, m := len(a), len(b)
	w := m + 1
	buf.grow((n+1)*w, n+m)
	// score[i*w+j] = best score aligning a[:i] with b[:j]. Every cell
	// is written below, so the recycled buffer needs no clearing.
	score := buf.score
	score[0] = 0
	for i := 1; i <= n; i++ {
		score[i*w] = int32(i) * gapScore
	}
	for j := 1; j <= m; j++ {
		score[j] = int32(j) * gapScore
	}
	for i := 1; i <= n; i++ {
		row, prev := score[i*w:], score[(i-1)*w:]
		for j := 1; j <= m; j++ {
			best := prev[j] + gapScore
			if s := row[j-1] + gapScore; s > best {
				best = s
			}
			if a[i-1] == b[j-1] {
				if s := prev[j-1] + matchScore; s > best {
					best = s
				}
			}
			row[j] = best
		}
	}
	// Traceback, filled back-to-front into the pooled buffer, in the
	// exact tie-break order of the original row-sliced implementation:
	// diagonal match first, then up-gap, else left-gap.
	out := buf.out
	pos := len(out)
	i, j := n, m
	for i > 0 || j > 0 {
		pos--
		switch {
		case i > 0 && j > 0 && a[i-1] == b[j-1] && score[i*w+j] == score[(i-1)*w+j-1]+matchScore:
			out[pos] = Entry{A: i - 1, B: j - 1}
			i--
			j--
		case i > 0 && score[i*w+j] == score[(i-1)*w+j]+gapScore:
			out[pos] = Entry{A: i - 1, B: -1}
			i--
		default:
			out[pos] = Entry{A: -1, B: j - 1}
			j--
		}
	}
	return out[pos:]
}

// nwBanded runs the DP restricted to the diagonal band
// δ = j−i ∈ [lo, hi], with lo = min(0, m−n) − s and hi = max(0, m−n) + s
// for a slack s derived from the sequences' positional Hamming
// distance. It reports ok only when the result is provably identical —
// entries and tie-breaks, not just score — to the full DP's:
//
// Any alignment path that leaves the band must spend at least
// |m−n| + 2s + 2 gap columns, bounding its score by
// S_out = (n+m) − 2(|m−n| + 2s + 2). If the banded score strictly
// beats S_out, every full-DP-optimal path lies inside the band, and an
// induction along the traceback shows each banded cell value on such a
// path equals the full value and each tie-break test decides
// identically (an out-of-band neighbour can never be the equal-score
// branch the full traceback takes, because that would put an optimal
// path outside the band). When the margin fails — the banded optimum
// is pressed against the band edge — nwBanded declines and the caller
// falls back to the full DP.
func nwBanded(buf *dpBuf, a, b []fingerprint.Encoded) ([]Entry, bool) {
	n, m := len(a), len(b)
	if n < bandMinLen || m < bandMinLen {
		return nil, false
	}
	minNM, d := n, m-n
	if m < n {
		minNM = m
	}
	// Positional fingerprint (Hamming) distance over the common prefix,
	// with an early bail once the implied band stops being narrow.
	maxMis := minNM / 8
	mismatch := 0
	for i := 0; i < minNM; i++ {
		if a[i] != b[i] {
			if mismatch++; mismatch > maxMis {
				return nil, false
			}
		}
	}
	s := bandBaseSlack + 2*mismatch
	lo, hi := -s, s
	if d < 0 {
		lo = d - s
	} else {
		hi = d + s
	}
	w := hi - lo + 1 // band width
	if 2*w > m {
		return nil, false // band covers most of the matrix: no savings
	}
	const ninf = int32(-1) << 28
	buf.grow((n+1)*w, n+m)
	score := buf.score
	for i := 0; i <= n; i++ {
		jlo, jhi := i+lo, i+hi
		if jlo < 0 {
			jlo = 0
		}
		if jhi > m {
			jhi = m
		}
		row := score[i*w:]
		for j := jlo; j <= jhi; j++ {
			off := j - i - lo
			if i == 0 && j == 0 {
				row[off] = 0
				continue
			}
			best := ninf
			if i > 0 && off+1 < w { // up-gap: (i-1, j)
				best = score[(i-1)*w+off+1] + gapScore
			}
			if j > 0 && off > 0 { // left-gap: (i, j-1)
				if v := row[off-1] + gapScore; v > best {
					best = v
				}
			}
			if i > 0 && j > 0 && a[i-1] == b[j-1] { // diagonal match
				if v := score[(i-1)*w+off] + matchScore; v > best {
					best = v
				}
			}
			row[off] = best
		}
	}
	abs := d
	if abs < 0 {
		abs = -abs
	}
	bandScore := score[n*w+(m-n-lo)]
	if bandScore <= int32(n+m)-2*int32(abs+2*s+2) {
		return nil, false // a band-escaping path could tie or win
	}
	// Traceback, identical tie-break order to nwFull.
	out := buf.out
	pos := len(out)
	i, j := n, m
	for i > 0 || j > 0 {
		off := j - i - lo
		cur := score[i*w+off]
		pos--
		switch {
		case i > 0 && j > 0 && a[i-1] == b[j-1] && cur == score[(i-1)*w+off]+matchScore:
			out[pos] = Entry{A: i - 1, B: j - 1}
			i--
			j--
		case i > 0 && off+1 < w && cur == score[(i-1)*w+off+1]+gapScore:
			out[pos] = Entry{A: i - 1, B: -1}
			i--
		case j > 0 && off > 0 && cur == score[i*w+off-1]+gapScore:
			out[pos] = Entry{A: -1, B: j - 1}
			j--
		default:
			// Unreachable when the margin held; decline defensively.
			return nil, false
		}
	}
	return out[pos:], true
}

// Matches counts matched columns.
func Matches(entries []Entry) int {
	n := 0
	for _, e := range entries {
		if e.Matched() {
			n++
		}
	}
	return n
}

// Ratio is the alignment-quality metric of Figures 4 and 10: matched
// instructions (counted on both sides) over total instructions.
func Ratio(entries []Entry, lenA, lenB int) float64 {
	if lenA+lenB == 0 {
		return 1
	}
	return float64(2*Matches(entries)) / float64(lenA+lenB)
}

// FuncRatio aligns two whole functions and returns the alignment ratio;
// it is the ground-truth "how well would these merge" signal that the
// fingerprint similarity metrics are judged against.
func FuncRatio(f1, f2 *ir.Function) float64 {
	a := fingerprint.EncodeFunc(f1)
	b := fingerprint.EncodeFunc(f2)
	return nwRatio(a, b)
}

// Segment is a run of alignment columns that are either all matched or
// all gaps; the merger turns matched segments into shared code and gap
// segments into guarded copies.
type Segment struct {
	Matched bool
	// A and B list the instruction indices covered on each side;
	// one may be empty in a gap segment.
	A, B []int
}

// Segments groups alignment columns into maximal matched/unmatched
// runs.
func Segments(entries []Entry) []Segment {
	var segs []Segment
	for _, e := range entries {
		m := e.Matched()
		if len(segs) == 0 || segs[len(segs)-1].Matched != m {
			segs = append(segs, Segment{Matched: m})
		}
		s := &segs[len(segs)-1]
		if e.A >= 0 {
			s.A = append(s.A, e.A)
		}
		if e.B >= 0 {
			s.B = append(s.B, e.B)
		}
	}
	return segs
}

// BlockPair is a pairing of basic blocks across the two functions,
// scored by alignment ratio of the block bodies.
type BlockPair struct {
	A, B  *ir.Block
	Ratio float64
}

// matchCand is a candidate block pairing, ranked by fingerprint
// distance.
type matchCand struct {
	a, b int
	dist int
}

// matchScratch pools MatchBlocksCached's per-call state — the pass
// runs once per merge attempt, so per-block fingerprint and flag
// storage is recycled rather than reallocated.
type matchScratch struct {
	fpA, fpB       []fingerprint.FreqVector
	cands          []matchCand
	encA, encB     [][]fingerprint.Encoded
	takenA, takenB []bool
}

var matchPool = sync.Pool{New: func() any { return new(matchScratch) }}

func (s *matchScratch) release() {
	// Encoded slices alias pooled encode storage; drop them so the pool
	// pins nothing between uses.
	for i := range s.encA {
		s.encA[i] = nil
	}
	for i := range s.encB {
		s.encB[i] = nil
	}
	matchPool.Put(s)
}

// growZero resizes *sp to n zeroed elements, reusing capacity.
func growZero[T any](sp *[]T, n int) []T {
	s := *sp
	if cap(s) < n {
		s = make([]T, n)
	} else {
		s = s[:n]
		var zero T
		for i := range s {
			s[i] = zero
		}
	}
	*sp = s
	return s
}

// MatchBlocks greedily pairs similar blocks of f1 and f2, HyFM-style:
// candidate pairs are ranked by block fingerprint distance, verified by
// block-level alignment, and accepted when the match ratio reaches
// minRatio. Unpaired blocks are returned separately.
func MatchBlocks(f1, f2 *ir.Function, minRatio float64) (pairs []BlockPair, unA, unB []*ir.Block) {
	return MatchBlocksCached(f1, f2, minRatio, nil)
}

// MatchBlocksCached is MatchBlocks with the block-level alignments
// routed through c (nil disables caching). The pairing decisions are
// identical either way — the cache is exact — so callers can mix
// cached and uncached invocations freely. Per-block fingerprints and
// encodings are computed once up front, not once per candidate pair.
func MatchBlocksCached(f1, f2 *ir.Function, minRatio float64, cch *Cache) (pairs []BlockPair, unA, unB []*ir.Block) {
	return greedyMatch(f1.Blocks, f2.Blocks, minRatio, cch, nil)
}

// greedyMatch is the HyFM-style greedy pairing over two block slices:
// candidates ranked by frequency-fingerprint distance, verified by
// block alignment, accepted at minRatio. It appends to pairs (the
// CFG-aware matcher seeds it with the exact matches it already
// accepted) and returns the blocks of each side left unpaired, in
// slice order.
func greedyMatch(blocksA, blocksB []*ir.Block, minRatio float64, cch *Cache, pairs []BlockPair) (outPairs []BlockPair, unA, unB []*ir.Block) {
	nA, nB := len(blocksA), len(blocksB)
	s := matchPool.Get().(*matchScratch)
	defer s.release()
	fpA := growZero(&s.fpA, nA)
	for i, b := range blocksA {
		fingerprint.FreqBlockInto(b, &fpA[i])
	}
	fpB := growZero(&s.fpB, nB)
	for i, b := range blocksB {
		fingerprint.FreqBlockInto(b, &fpB[i])
	}
	cands := s.cands[:0]
	for i := range blocksA {
		for j := range blocksB {
			cands = append(cands, matchCand{i, j, fpA[i].Distance(&fpB[j])})
		}
	}
	s.cands = cands
	slices.SortStableFunc(cands, func(a, b matchCand) int { return a.dist - b.dist })

	encA := growZero(&s.encA, nA)
	encB := growZero(&s.encB, nB)
	takenA := growZero(&s.takenA, nA)
	takenB := growZero(&s.takenB, nB)
	for _, c := range cands {
		if takenA[c.a] || takenB[c.b] {
			continue
		}
		if encA[c.a] == nil {
			encA[c.a] = fingerprint.EncodeBlock(blocksA[c.a])
		}
		if encB[c.b] == nil {
			encB[c.b] = fingerprint.EncodeBlock(blocksB[c.b])
		}
		ea, eb := encA[c.a], encB[c.b]
		var r float64
		if cch != nil {
			r = Ratio(cch.NW(ea, eb), len(ea), len(eb))
		} else {
			r = nwRatio(ea, eb)
		}
		if r < minRatio {
			continue
		}
		takenA[c.a], takenB[c.b] = true, true
		pairs = append(pairs, BlockPair{A: blocksA[c.a], B: blocksB[c.b], Ratio: r})
	}
	for i, b := range blocksA {
		if !takenA[i] {
			unA = append(unA, b)
		}
	}
	for i, b := range blocksB {
		if !takenB[i] {
			unB = append(unB, b)
		}
	}
	return pairs, unA, unB
}

// BlockAlign aligns the bodies of two blocks and returns the segments.
func BlockAlign(a, b *ir.Block) []Segment {
	ea, eb := fingerprint.EncodeBlock(a), fingerprint.EncodeBlock(b)
	if len(ea) == 0 && len(eb) == 0 {
		return nil
	}
	buf := dpPool.Get().(*dpBuf)
	segs := Segments(nwInto(buf, ea, eb))
	dpPool.Put(buf)
	return segs
}

// MergeRatio is the block-level alignment-quality metric the paper's
// Figures 4 and 10 plot: pair the functions' blocks HyFM-style, then
// count instructions landing in matched alignment columns of accepted
// block pairs, over all instructions of both functions. Unrelated
// functions, whose blocks fail to pair, score near zero even when a
// whole-function alignment would find coincidental matches.
func MergeRatio(f1, f2 *ir.Function, minRatio float64) float64 {
	pairs, _, _ := MatchBlocks(f1, f2, minRatio)
	matched := 0
	for _, p := range pairs {
		matched += nwMatches(fingerprint.EncodeBlock(p.A), fingerprint.EncodeBlock(p.B))
	}
	total := f1.NumInstrs() + f2.NumInstrs()
	if total == 0 {
		return 1
	}
	return float64(2*matched) / float64(total)
}
