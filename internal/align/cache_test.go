package align

import (
	"math/rand"
	"sync"
	"testing"

	"f3m/internal/fingerprint"
)

func randSeq(r *rand.Rand, n int) []fingerprint.Encoded {
	out := make([]fingerprint.Encoded, n)
	for i := range out {
		// Small alphabet so random pairs still share matches.
		out[i] = fingerprint.Encoded(r.Intn(12))
	}
	return out
}

// TestNWPooledAllocs pins the DP buffer pooling: after warmup, an
// alignment must cost only the result slice, not a fresh score matrix
// and traceback per call. This is the merge-stage allocation spike the
// pool exists to kill.
func TestNWPooledAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a, b := randSeq(r, 64), randSeq(r, 60)
	NeedlemanWunsch(a, b) // warm the pool
	allocs := testing.AllocsPerRun(50, func() {
		NeedlemanWunsch(a, b)
	})
	// One alloc for the returned entries plus pool slack; a naive
	// implementation costs one allocation per DP row (60+).
	if allocs > 8 {
		t.Errorf("NeedlemanWunsch allocs/op = %v, want <= 8", allocs)
	}
}

// TestCacheHitIdentical: a cached alignment must be exactly what a
// fresh computation returns, and count as a hit.
func TestCacheHitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	c := NewCache(0)
	for i := 0; i < 20; i++ {
		a, b := randSeq(r, 5+r.Intn(40)), randSeq(r, 5+r.Intn(40))
		want := NeedlemanWunsch(a, b)
		first := c.NW(a, b)
		second := c.NW(a, b)
		if !entriesEqual(first, want) || !entriesEqual(second, want) {
			t.Fatalf("pair %d: cached alignment differs from direct computation", i)
		}
	}
	st := c.Stats()
	if st.Hits != 20 || st.Misses != 20 {
		t.Errorf("stats = %+v, want 20 hits / 20 misses", st)
	}
}

// TestCacheOrderIndependence: both orientations of a pair share one
// entry, and each orientation returns its own correct alignment (the
// swapped direction is NOT the mirror of the forward one in general,
// so the slots are separate).
func TestCacheOrderIndependence(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	c := NewCache(0)
	a, b := randSeq(r, 30), randSeq(r, 25)
	fwd := c.NW(a, b)
	rev := c.NW(b, a)
	if !entriesEqual(fwd, NeedlemanWunsch(a, b)) {
		t.Error("forward orientation wrong")
	}
	if !entriesEqual(rev, NeedlemanWunsch(b, a)) {
		t.Error("swapped orientation wrong")
	}
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1 (canonical pair key)", st.Entries)
	}
	if !validEntries(fwd, a, b) || !validEntries(rev, b, a) {
		t.Error("served alignments fail validation")
	}
	// Second lookups in both orientations must both hit.
	c.NW(a, b)
	c.NW(b, a)
	if st := c.Stats(); st.Hits != 2 {
		t.Errorf("hits = %d, want 2", st.Hits)
	}
}

// TestCacheValidationRejects: an ill-formed poisoned entry must be
// rejected and transparently recomputed.
func TestCacheValidationRejects(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	c := NewCache(0)
	a, b := randSeq(r, 20), randSeq(r, 22)
	want := NeedlemanWunsch(a, b)

	c.CorruptNextForTest(1, true)
	got := c.NW(a, b)
	if !entriesEqual(got, want) {
		t.Error("poisoned lookup not recomputed correctly")
	}
	st := c.Stats()
	if st.Rejects != 1 {
		t.Errorf("rejects = %d, want 1", st.Rejects)
	}
	// The poisoned slot must have been overwritten with the good value.
	if got := c.NW(a, b); !entriesEqual(got, want) {
		t.Error("slot still poisoned after recompute")
	}
}

// TestCacheWellFormedPoisonPassesValidation documents the boundary of
// the validation layer: a legal-but-suboptimal alignment of the right
// sequences cannot be distinguished from a correct one here — that is
// the merger's downstream re-verification's job (see the core
// package's TestCachePoisonWellFormed).
func TestCacheWellFormedPoisonPassesValidation(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	c := NewCache(0)
	a, b := randSeq(r, 10), randSeq(r, 12)
	c.CorruptNextForTest(1, false)
	got := c.NW(a, b)
	if !validEntries(got, a, b) {
		t.Fatal("fabricated all-gap alignment should be structurally legal")
	}
	for _, e := range got {
		if e.A >= 0 && e.B >= 0 {
			t.Fatal("all-gap fabrication contains a match")
		}
	}
	if st := c.Stats(); st.Hits != 1 || st.Rejects != 0 {
		t.Errorf("stats = %+v, want the poison served as a hit", st)
	}
}

// TestCacheEviction: exceeding the entry cap clears a generation and
// keeps serving correct results.
func TestCacheEviction(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	c := NewCache(8)
	for i := 0; i < 40; i++ {
		a, b := randSeq(r, 10), randSeq(r, 10)
		if !validEntries(c.NW(a, b), a, b) {
			t.Fatalf("round %d: invalid alignment", i)
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Errorf("stats = %+v, want evictions after 40 inserts into cap 8", st)
	}
	if st.Entries > 8 {
		t.Errorf("entries = %d exceeds cap 8", st.Entries)
	}
}

// TestCacheConcurrent hammers one cache from many goroutines over a
// small pair population (run under -race by scripts/check.sh).
func TestCacheConcurrent(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	pairs := make([][2][]fingerprint.Encoded, 16)
	want := make([][]Entry, len(pairs))
	for i := range pairs {
		pairs[i] = [2][]fingerprint.Encoded{randSeq(r, 5+r.Intn(30)), randSeq(r, 5+r.Intn(30))}
		want[i] = NeedlemanWunsch(pairs[i][0], pairs[i][1])
	}
	c := NewCache(0)
	var wg sync.WaitGroup
	errs := make(chan int, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				i := (g*13 + it*7) % len(pairs)
				a, b := pairs[i][0], pairs[i][1]
				if g%2 == 1 {
					a, b = b, a
				}
				got := c.NW(a, b)
				if !validEntries(got, a, b) {
					errs <- i
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for i := range errs {
		t.Errorf("concurrent lookup for pair %d returned invalid alignment", i)
	}
}

func entriesEqual(a, b []Entry) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCacheHitAllocs pins the NW hot path's allocation contract: with
// the pair already cached, a lookup must allocate nothing — interning
// is a map hit, the pair key is a value type, and the cached slice is
// shared, not copied. This is the regression test for the old
// fmt.Sprintf-style pair keying that allocated on every probe.
func TestCacheHitAllocs(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	a, b := randSeq(r, 40), randSeq(r, 44)
	c := NewCache(0)
	c.NW(a, b) // miss: compute and populate
	c.NW(b, a) // reversed orientation cached too
	for _, pair := range [][2][]fingerprint.Encoded{{a, b}, {b, a}} {
		pair := pair
		allocs := testing.AllocsPerRun(100, func() {
			c.NW(pair[0], pair[1])
		})
		if allocs != 0 {
			t.Errorf("cache-hit NW allocs/op = %v, want 0", allocs)
		}
	}
}
