package align

import (
	"f3m/internal/fingerprint"
	"f3m/internal/ir"
)

// EncodeBody encodes a block's instructions minus its terminator — the
// sequence the merger's paired-block code generator aligns (the
// terminator pair is handled structurally, not by alignment).
func EncodeBody(b *ir.Block) []fingerprint.Encoded {
	n := len(b.Instrs)
	if n == 0 {
		return nil
	}
	body := b.Instrs
	if body[n-1].IsTerminator() {
		body = body[:n-1]
	}
	out := make([]fingerprint.Encoded, len(body))
	for i, in := range body {
		out[i] = fingerprint.EncodeInstr(in)
	}
	return out
}

// WarmPair runs the exact alignment workload a merge attempt of f1 and
// f2 would perform — block pairing, then body alignment of each
// accepted pair — against the cache, so a later real attempt on
// functions with identical encodings hits on every DP. f1 and f2 are
// expected to be phi-free working copies (post RegToMem), matching
// what the merger aligns. Pure reads of the functions; the only writes
// go into the cache.
func WarmPair(c *Cache, f1, f2 *ir.Function, minRatio float64) {
	pairs, _, _ := MatchBlocksCached(f1, f2, minRatio, c)
	warmBodies(c, pairs)
}

// WarmPairCFG is WarmPair for the CFG-aware strategy: it replays
// MatchBlocksCFG — the canonical block-fingerprint alignment, the body
// verifications and the greedy residue pass — against the cache, then
// warms the paired-body alignments, so a committer attempt under
// Options.CFGAlign hits on every DP.
func WarmPairCFG(c *Cache, f1, f2 *ir.Function, minRatio float64) {
	pairs, _, _, _ := MatchBlocksCFG(f1, f2, minRatio, c)
	warmBodies(c, pairs)
}

// warmBodies pre-aligns the body (terminator-stripped) sequences of
// every accepted pair, the DPs the paired-block code generator runs.
func warmBodies(c *Cache, pairs []BlockPair) {
	for _, p := range pairs {
		encA, encB := EncodeBody(p.A), EncodeBody(p.B)
		if len(encA) == 0 && len(encB) == 0 {
			continue
		}
		c.NW(encA, encB)
	}
}
