package align

import (
	"math/rand"
	"testing"
	"testing/quick"

	"f3m/internal/fingerprint"
	"f3m/internal/ir"
)

func enc(vals ...uint32) []fingerprint.Encoded {
	out := make([]fingerprint.Encoded, len(vals))
	for i, v := range vals {
		out[i] = fingerprint.Encoded(v)
	}
	return out
}

func TestNWIdentical(t *testing.T) {
	a := enc(1, 2, 3, 4)
	es := NeedlemanWunsch(a, a)
	if len(es) != 4 || Matches(es) != 4 {
		t.Fatalf("identical alignment = %v", es)
	}
	if Ratio(es, 4, 4) != 1 {
		t.Errorf("ratio = %v, want 1", Ratio(es, 4, 4))
	}
}

func TestNWDisjoint(t *testing.T) {
	a := enc(1, 2, 3)
	b := enc(7, 8, 9)
	es := NeedlemanWunsch(a, b)
	if Matches(es) != 0 {
		t.Fatalf("disjoint sequences matched: %v", es)
	}
	if Ratio(es, 3, 3) != 0 {
		t.Errorf("ratio = %v, want 0", Ratio(es, 3, 3))
	}
}

func TestNWInsertionGap(t *testing.T) {
	a := enc(1, 2, 3, 4, 5)
	b := enc(1, 2, 9, 9, 3, 4, 5)
	es := NeedlemanWunsch(a, b)
	if got := Matches(es); got != 5 {
		t.Fatalf("matches = %d, want 5 (%v)", got, es)
	}
}

func TestNWEmpty(t *testing.T) {
	es := NeedlemanWunsch(nil, enc(1, 2))
	if len(es) != 2 || Matches(es) != 0 {
		t.Fatalf("empty-vs-seq alignment = %v", es)
	}
	if len(NeedlemanWunsch(nil, nil)) != 0 {
		t.Fatal("empty-vs-empty should be empty")
	}
	if Ratio(nil, 0, 0) != 1 {
		t.Error("empty ratio should be 1")
	}
}

// TestNWCoversAllIndices: every index of both sequences appears exactly
// once, in order.
func TestNWCoversAllIndices(t *testing.T) {
	prop := func(xa, xb []byte) bool {
		a := make([]fingerprint.Encoded, len(xa))
		for i, v := range xa {
			a[i] = fingerprint.Encoded(v % 8)
		}
		b := make([]fingerprint.Encoded, len(xb))
		for i, v := range xb {
			b[i] = fingerprint.Encoded(v % 8)
		}
		es := NeedlemanWunsch(a, b)
		nextA, nextB := 0, 0
		for _, e := range es {
			if e.A >= 0 {
				if e.A != nextA {
					return false
				}
				nextA++
			}
			if e.B >= 0 {
				if e.B != nextB {
					return false
				}
				nextB++
			}
			if e.Matched() && a[e.A] != b[e.B] {
				return false // matched column with unequal encodings
			}
		}
		return nextA == len(a) && nextB == len(b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNWOptimalOnKnownCase(t *testing.T) {
	// a: X A B C, b: A B C Y -> 3 matches.
	a := enc(99, 1, 2, 3)
	b := enc(1, 2, 3, 77)
	if got := Matches(NeedlemanWunsch(a, b)); got != 3 {
		t.Errorf("matches = %d, want 3", got)
	}
}

func TestSegments(t *testing.T) {
	a := enc(1, 2, 9, 4)
	b := enc(1, 2, 8, 8, 4)
	segs := Segments(NeedlemanWunsch(a, b))
	// matched [0,1], gap {2}/{2,3}, matched [3]/[4]
	if len(segs) != 3 {
		t.Fatalf("segments = %+v", segs)
	}
	if !segs[0].Matched || segs[1].Matched || !segs[2].Matched {
		t.Fatalf("segment kinds wrong: %+v", segs)
	}
	if len(segs[0].A) != 2 || len(segs[1].A) != 1 || len(segs[1].B) != 2 || len(segs[2].A) != 1 {
		t.Fatalf("segment contents wrong: %+v", segs)
	}
}

const blockSrc = `
define i32 @f(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %pos, label %neg
pos:
  %y = mul i32 %x, 2
  ret i32 %y
neg:
  ret i32 0
}
define i32 @g(i32 %a, i32 %b) {
entry:
  %x = add i32 %a, %b
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %pos, label %neg
pos:
  %y = mul i32 %x, 3
  ret i32 %y
neg:
  ret i32 1
}
define double @h(double %p) {
entry:
  %q = fadd double %p, 1.0
  ret double %q
}
`

func TestFuncRatio(t *testing.T) {
	m, err := ir.ParseModule(blockSrc)
	if err != nil {
		t.Fatal(err)
	}
	rSame := FuncRatio(m.Func("f"), m.Func("f"))
	if rSame != 1 {
		t.Errorf("self ratio = %v, want 1", rSame)
	}
	rClone := FuncRatio(m.Func("f"), m.Func("g"))
	rOther := FuncRatio(m.Func("f"), m.Func("h"))
	if rClone <= rOther {
		t.Errorf("clone ratio %v should beat unrelated %v", rClone, rOther)
	}
	if rClone != 1 {
		// f and g differ only in constant values, which the encoding
		// ignores: all instructions align.
		t.Errorf("clone ratio = %v, want 1", rClone)
	}
}

func TestMatchBlocks(t *testing.T) {
	m, err := ir.ParseModule(blockSrc)
	if err != nil {
		t.Fatal(err)
	}
	pairs, unA, unB := MatchBlocks(m.Func("f"), m.Func("g"), 0.5)
	if len(pairs) != 3 || len(unA) != 0 || len(unB) != 0 {
		t.Fatalf("pairs=%d unA=%d unB=%d, want 3/0/0", len(pairs), len(unA), len(unB))
	}
	// Blocks should pair by name here (identical structure).
	for _, p := range pairs {
		if p.A.Name() != p.B.Name() {
			t.Errorf("paired %s with %s", p.A.Name(), p.B.Name())
		}
		if p.Ratio != 1 {
			t.Errorf("pair %s ratio = %v, want 1", p.A.Name(), p.Ratio)
		}
	}
}

func TestMatchBlocksRejectsDissimilar(t *testing.T) {
	m, err := ir.ParseModule(blockSrc)
	if err != nil {
		t.Fatal(err)
	}
	pairs, unA, unB := MatchBlocks(m.Func("f"), m.Func("h"), 0.5)
	// h's single block is float code; no block of f should pair with it.
	if len(pairs) != 0 {
		t.Fatalf("unexpected pairs: %+v", pairs)
	}
	if len(unA) != 3 || len(unB) != 1 {
		t.Fatalf("unA=%d unB=%d", len(unA), len(unB))
	}
}

func TestMatchBlocksDisjointPairs(t *testing.T) {
	m, err := ir.ParseModule(blockSrc)
	if err != nil {
		t.Fatal(err)
	}
	pairs, _, _ := MatchBlocks(m.Func("f"), m.Func("g"), 0.0)
	seenA := map[*ir.Block]bool{}
	seenB := map[*ir.Block]bool{}
	for _, p := range pairs {
		if seenA[p.A] || seenB[p.B] {
			t.Fatal("block used in two pairs")
		}
		seenA[p.A], seenB[p.B] = true, true
	}
}

// lcs computes the longest-common-subsequence length by naive
// recursion — an independent oracle for the aligner.
func lcs(a, b []fingerprint.Encoded) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if a[0] == b[0] {
		return 1 + lcs(a[1:], b[1:])
	}
	l1 := lcs(a[1:], b)
	l2 := lcs(a, b[1:])
	if l1 > l2 {
		return l1
	}
	return l2
}

// TestNWMatchesAreOptimal: with match=+2 and gap=-1, the NW score is
// 4*matches - (lenA+lenB), so the aligner must find exactly the LCS
// number of matches.
func TestNWMatchesAreOptimal(t *testing.T) {
	prop := func(xa, xb []byte) bool {
		if len(xa) > 9 {
			xa = xa[:9]
		}
		if len(xb) > 9 {
			xb = xb[:9]
		}
		a := make([]fingerprint.Encoded, len(xa))
		for i, v := range xa {
			a[i] = fingerprint.Encoded(v % 4)
		}
		b := make([]fingerprint.Encoded, len(xb))
		for i, v := range xb {
			b[i] = fingerprint.Encoded(v % 4)
		}
		return Matches(NeedlemanWunsch(a, b)) == lcs(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMergeRatio(t *testing.T) {
	m, err := ir.ParseModule(blockSrc)
	if err != nil {
		t.Fatal(err)
	}
	f, g, h := m.Func("f"), m.Func("g"), m.Func("h")
	if r := MergeRatio(f, f, 0.5); r != 1 {
		t.Errorf("self merge ratio = %v, want 1", r)
	}
	rClone := MergeRatio(f, g, 0.5)
	rOther := MergeRatio(f, h, 0.5)
	if rClone != 1 {
		t.Errorf("clone merge ratio = %v, want 1", rClone)
	}
	if rOther != 0 {
		t.Errorf("unrelated merge ratio = %v, want 0 (no block pairs)", rOther)
	}
}

func TestMergeRatioBounds(t *testing.T) {
	m, err := ir.ParseModule(blockSrc)
	if err != nil {
		t.Fatal(err)
	}
	fns := m.Funcs
	for _, a := range fns {
		for _, b := range fns {
			r := MergeRatio(a, b, 0.5)
			if r < 0 || r > 1 {
				t.Fatalf("MergeRatio(%s,%s) = %v out of [0,1]", a.Name(), b.Name(), r)
			}
		}
	}
}

func BenchmarkNW100x100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]fingerprint.Encoded, 100)
	y := make([]fingerprint.Encoded, 100)
	for i := range x {
		x[i] = fingerprint.Encoded(rng.Intn(30))
		y[i] = fingerprint.Encoded(rng.Intn(30))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NeedlemanWunsch(x, y)
	}
}
