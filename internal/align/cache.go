package align

import (
	"sync"
	"sync/atomic"

	"f3m/internal/fingerprint"
)

// Cache memoizes Needleman–Wunsch alignments across the merge stage,
// so a sequence pair is aligned at most once per run no matter how
// often ranking (or speculation) revisits it.
//
// Correctness is unconditional, not probabilistic. Sequences are
// interned (collision-checked by full comparison, see
// fingerprint.Interner) and the cache is keyed on the pair of interned
// handle ids — two 32-bit integers — so a lookup no longer copies both
// sequences into a fresh string. The pair is stored under its canonical
// (smaller handle id first) orientation, with separate value slots for
// the forward and swapped directions, because an optimal alignment of
// (a,b) is not in general the mirror of an optimal alignment of (b,a)
// under the tie-break order. Which orientation is canonical can differ
// between runs (intern order is first-come), but the *entries served*
// are a pure function of the queried sequences, so Reports stay
// byte-identical; only hit/miss accounting is schedule-dependent, and
// those counters are exported as volatile metrics.
//
// Returned slices are shared: callers must treat them as read-only.
// Every hit is re-validated against the querying sequences before it
// is served (see validEntries); an entry that does not describe a
// legal alignment of exactly those sequences — which would require an
// interner malfunction or a stale handle surviving an interner reset —
// is rejected, counted, and recomputed. All methods are safe for
// concurrent use; a nil *Cache disables caching and computes directly.
type Cache struct {
	mu       sync.Mutex
	entries  map[pairID]*cacheEntry
	interner *fingerprint.Interner
	max      int

	hits, misses, rejects, evictions atomic.Int64

	// corruptNext, when positive, makes the next lookups fabricate a
	// wrong cached value instead of consulting the map — the seeded
	// "cache collision" fault used by tests to prove the validation
	// and downstream re-verification layers hold. See
	// CorruptNextForTest.
	corruptNext    atomic.Int32
	corruptIllForm bool
}

// pairID is the cache key: the interned handle ids of the canonical
// pair orientation (lo <= hi).
type pairID struct {
	lo, hi uint32
}

// cacheEntry holds the two directional alignments of one canonical
// sequence pair. The has flags disambiguate "computed, empty
// alignment" from "not computed".
type cacheEntry struct {
	fwd, rev       []Entry
	hasFwd, hasRev bool
}

// DefaultCacheEntries is the entry cap NewCache applies when given a
// non-positive size.
const DefaultCacheEntries = 1 << 14

// NewCache returns an empty cache holding at most max entries; when
// the cap is reached the cache is cleared wholesale (generation-style
// eviction — cheap, and eviction only ever costs recomputation). The
// interner is sized to the same cap: a pair key needs at most two
// fresh sequences.
func NewCache(max int) *Cache {
	if max <= 0 {
		max = DefaultCacheEntries
	}
	return &Cache{
		entries:  make(map[pairID]*cacheEntry),
		interner: fingerprint.NewInterner(2 * max),
		max:      max,
	}
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits, Misses, Rejects, Evictions int64
	Entries                          int
}

// Stats reads the counters; all-zero on a nil cache.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Rejects:   c.rejects.Load(),
		Evictions: c.evictions.Load(),
		Entries:   n,
	}
}

// CorruptNextForTest arms the seeded-fault hook: the next n NW lookups
// return a fabricated cached value instead of a real one. With
// illFormed set the fabrication is structurally broken (it cannot
// describe any alignment) and must be caught by validation; otherwise
// it is a legal but deliberately unhelpful all-gap alignment that
// passes validation, exercising the merger's downstream
// re-verification instead.
func (c *Cache) CorruptNextForTest(n int, illFormed bool) {
	c.corruptIllForm = illFormed
	c.corruptNext.Store(int32(n))
}

// NW returns the Needleman–Wunsch alignment of a and b, serving a
// shared cached slice when the pair (in either order) was aligned
// before. On a nil cache it simply computes. The hit path performs no
// allocations: interning both sequences and probing the map are
// allocation-free.
func (c *Cache) NW(a, b []fingerprint.Encoded) []Entry {
	if c == nil {
		return NeedlemanWunsch(a, b)
	}
	sa := c.interner.Intern(a)
	sb := c.interner.Intern(b)
	swapped := sb.ID() < sa.ID()
	key := pairID{lo: sa.ID(), hi: sb.ID()}
	if swapped {
		key.lo, key.hi = key.hi, key.lo
	}

	got, ok := c.lookup(key, swapped)
	if n := c.corruptNext.Load(); n > 0 && c.corruptNext.CompareAndSwap(n, n-1) {
		got, ok = fabricateWrong(a, b, c.corruptIllForm), true
	}
	if ok {
		if validEntries(got, a, b) {
			c.hits.Add(1)
			return got
		}
		// A cached value that is not an alignment of these sequences:
		// reject it, recompute, and overwrite the poisoned slot.
		c.rejects.Add(1)
	} else {
		c.misses.Add(1)
	}

	out := NeedlemanWunsch(a, b)
	c.store(key, swapped, out)
	return out
}

func (c *Cache) lookup(key pairID, swapped bool) ([]Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		return nil, false
	}
	if swapped {
		return e.rev, e.hasRev
	}
	return e.fwd, e.hasFwd
}

func (c *Cache) store(key pairID, swapped bool, val []Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entries[key]
	if e == nil {
		if len(c.entries) >= c.max {
			c.entries = make(map[pairID]*cacheEntry)
			c.evictions.Add(1)
		}
		e = &cacheEntry{}
		c.entries[key] = e
	}
	if swapped {
		e.rev, e.hasRev = val, true
	} else {
		e.fwd, e.hasFwd = val, true
	}
}

// validEntries checks that es is a legal global alignment of exactly a
// and b: both index sets covered completely and in order, and matched
// columns only on equal encodings. O(len) — trivial next to the DP it
// guards.
func validEntries(es []Entry, a, b []fingerprint.Encoded) bool {
	ia, ib := 0, 0
	for _, e := range es {
		switch {
		case e.A == ia && e.B == ib && ia < len(a) && ib < len(b) && a[ia] == b[ib]:
			ia++
			ib++
		case e.A == ia && e.B == -1 && ia < len(a):
			ia++
		case e.A == -1 && e.B == ib && ib < len(b):
			ib++
		default:
			return false
		}
	}
	return ia == len(a) && ib == len(b)
}

// fabricateWrong builds the seeded-fault payloads: a structurally
// impossible entry list (illFormed), or the legal-but-suboptimal
// all-gap alignment.
func fabricateWrong(a, b []fingerprint.Encoded, illFormed bool) []Entry {
	if illFormed {
		return []Entry{{A: -1, B: -1}}
	}
	out := make([]Entry, 0, len(a)+len(b))
	for i := range a {
		out = append(out, Entry{A: i, B: -1})
	}
	for j := range b {
		out = append(out, Entry{A: -1, B: j})
	}
	return out
}
