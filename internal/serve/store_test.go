package serve

import (
	"fmt"
	"sync"
	"testing"

	"f3m/internal/fingerprint"
)

// testSigs builds n distinct signatures plus a fingerprint config
// matching the given store config, so probe signatures are comparable
// with stored ones.
func testSigs(t *testing.T, cfg StoreConfig, n int) []fingerprint.MinHash {
	t.Helper()
	cfg = cfg.withDefaults()
	mh := (&fingerprint.Config{K: cfg.K, ShingleSize: cfg.ShingleSize, Seed: cfg.Seed}).Prepare()
	sigs := make([]fingerprint.MinHash, n)
	for i := range sigs {
		seq := make([]fingerprint.Encoded, 40)
		for j := range seq {
			seq[j] = fingerprint.Encoded(i*1000 + j)
		}
		sigs[i] = mh.New(seq)
	}
	return sigs
}

func TestStoreInsertQueryRemove(t *testing.T) {
	cfg := StoreConfig{Shards: 4}
	st := NewStore(cfg)
	sigs := testSigs(t, cfg, 3)

	// Two copies of sig 0 under different names, one distinct function.
	a := st.Insert("m1", "f_a", sigs[0])
	b := st.Insert("m2", "f_b", sigs[0])
	st.Insert("m2", "f_c", sigs[1])

	got := st.Query(sigs[0], 0.99, 10, a.ID)
	if len(got) != 1 || got[0].Module != "m2" || got[0].Func != "f_b" {
		t.Fatalf("query for sig0 excluding a: got %+v, want exactly m2.f_b", got)
	}
	if got[0].Similarity != 1 {
		t.Fatalf("identical signature similarity = %v, want 1", got[0].Similarity)
	}

	// Without exclusion both copies come back, deterministically ordered
	// by (module, func) at equal similarity.
	got = st.Query(sigs[0], 0.99, 10, -1)
	if len(got) != 2 || got[0].Module != "m1" || got[1].Module != "m2" {
		t.Fatalf("query without exclusion: got %+v", got)
	}

	// k truncates after the global sort.
	if got := st.Query(sigs[0], 0.99, 1, -1); len(got) != 1 || got[0].Module != "m1" {
		t.Fatalf("k=1 query: got %+v", got)
	}

	// Removal unindexes.
	st.Remove(b)
	if got := st.Query(sigs[0], 0.99, 10, a.ID); len(got) != 0 {
		t.Fatalf("query after removing b: got %+v, want none", got)
	}
	// Double-remove is a no-op.
	st.Remove(b)
	if st.Stats().Funcs != 2 {
		t.Fatalf("live funcs = %d, want 2", st.Stats().Funcs)
	}
}

func TestStoreEpochAdvances(t *testing.T) {
	st := NewStore(StoreConfig{})
	sigs := testSigs(t, StoreConfig{}, 1)
	e0 := st.Epoch()
	rec := st.Insert("m", "f", sigs[0])
	if st.Epoch() <= e0 {
		t.Fatal("epoch did not advance on insert")
	}
	e1 := st.Epoch()
	st.Remove(rec)
	if st.Epoch() <= e1 {
		t.Fatal("epoch did not advance on remove")
	}
}

// TestStoreConcurrent hammers one store from many goroutines mixing
// inserts, queries and removals; run with -race this is the lock
// discipline check for the per-shard RWMutex design.
func TestStoreConcurrent(t *testing.T) {
	cfg := StoreConfig{Shards: 4}
	st := NewStore(cfg)
	sigs := testSigs(t, cfg, 8)

	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sig := sigs[w]
			for i := 0; i < rounds; i++ {
				rec := st.Insert(fmt.Sprintf("m%d", w), fmt.Sprintf("f%d", i), sig)
				st.Query(sig, 0.5, 4, -1)
				st.Stats()
				if i%2 == 0 {
					st.Remove(rec)
				}
			}
		}(w)
	}
	wg.Wait()

	want := workers * rounds / 2
	if got := st.Stats().Funcs; got != want {
		t.Fatalf("live funcs after concurrent traffic = %d, want %d", got, want)
	}
	// Every surviving record must be findable.
	for w := 0; w < workers; w++ {
		got := st.Query(sigs[w], 0.99, 0, -1)
		if len(got) != rounds/2 {
			t.Fatalf("worker %d: %d matches, want %d", w, len(got), rounds/2)
		}
	}
}
