package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// buildCorpus submits n synthetic modules sequentially (sequential
// submission pins the store's insertion order, which is what makes the
// re-snapshot byte-identity assertion below meaningful).
func buildCorpus(t *testing.T, srv *Server, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		src := genModule(int64(10+i), fmt.Sprintf("m%d_", i))
		if _, err := srv.SubmitModule(fmt.Sprintf("mod-%02d", i), src); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
}

// TestSnapshotRoundTrip is the round-trip property: snapshot → restore
// into a fresh server must reproduce the module registry, the query
// behavior and — on re-snapshot — the exact snapshot bytes.
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.snap")

	orig := NewServer(DefaultConfig())
	buildCorpus(t, orig, 4)
	info, err := orig.Snapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Modules != 4 || info.Funcs == 0 {
		t.Fatalf("snapshot info %+v", info)
	}
	data1, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	fresh := NewServer(DefaultConfig())
	rinfo, err := fresh.Restore(path)
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Modules != 4 || rinfo.Funcs != info.Funcs {
		t.Fatalf("restore info %+v, want to match snapshot %+v", rinfo, info)
	}

	// Registry views agree exactly.
	if !reflect.DeepEqual(orig.Modules(), fresh.Modules()) {
		t.Fatalf("module registries differ:\n%+v\nvs\n%+v", orig.Modules(), fresh.Modules())
	}

	// Every stored function queries identically in both servers.
	for _, mi := range orig.Modules() {
		for _, fn := range mi.Funcs {
			a, err := orig.QueryStored(mi.Name, fn, 0.3, 20)
			if err != nil {
				t.Fatal(err)
			}
			b, err := fresh.QueryStored(mi.Name, fn, 0.3, 20)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("query %s.%s differs after restore:\n%+v\nvs\n%+v", mi.Name, fn, a, b)
			}
		}
	}

	// Re-snapshot from the restored server: byte-identical file.
	path2 := filepath.Join(dir, "b.snap")
	if _, err := fresh.Snapshot(path2); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data1, data2) {
		t.Fatalf("re-snapshot is not byte-identical (%d vs %d bytes)", len(data1), len(data2))
	}

	// Both servers merge to the same report key.
	s1, err := orig.Merge()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := fresh.Merge()
	if err != nil {
		t.Fatal(err)
	}
	if s1.ReportKey != s2.ReportKey {
		t.Fatalf("merge report keys differ after restore: %s vs %s", s1.ReportKey, s2.ReportKey)
	}
}

// TestRestoreCorruptSnapshot seeds deterministic single-byte faults all
// over a valid snapshot and asserts every corrupted variant is refused
// with a clean error while the server state stays untouched.
func TestRestoreCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "good.snap")
	orig := NewServer(DefaultConfig())
	buildCorpus(t, orig, 2)
	if _, err := orig.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	srv := NewServer(DefaultConfig())
	buildCorpus(t, srv, 1)
	before := srv.Modules()

	rng := rand.New(rand.NewSource(7))
	bad := filepath.Join(dir, "bad.snap")
	for trial := 0; trial < 64; trial++ {
		data := append([]byte(nil), good...)
		pos := rng.Intn(len(data))
		data[pos] ^= byte(1 + rng.Intn(255))
		if err := os.WriteFile(bad, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Restore(bad); err == nil {
			t.Fatalf("trial %d: flipped byte at %d, restore succeeded", trial, pos)
		}
		if !reflect.DeepEqual(srv.Modules(), before) {
			t.Fatalf("trial %d: failed restore mutated server state", trial)
		}
	}

	// Truncations at every quartile are refused too.
	for _, frac := range []int{0, 1, 2, 3} {
		n := len(good) * frac / 4
		if err := os.WriteFile(bad, good[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := srv.Restore(bad); err == nil {
			t.Fatalf("restore of %d-byte truncation succeeded", n)
		}
	}
	if !reflect.DeepEqual(srv.Modules(), before) {
		t.Fatal("failed restores mutated server state")
	}
}

// TestRestoreConfigMismatch refuses snapshots from differently
// parameterized stores: their fingerprints would be incomparable.
func TestRestoreConfigMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "k64.snap")
	cfg := DefaultConfig()
	cfg.Store.K = 64
	orig := NewServer(cfg)
	buildCorpus(t, orig, 1)
	if _, err := orig.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(DefaultConfig()) // default K=200
	if _, err := srv.Restore(path); err == nil {
		t.Fatal("restore across store configs succeeded, want config-mismatch error")
	}
}

// TestSnapshotNoPath exercises the unconfigured-path error.
func TestSnapshotNoPath(t *testing.T) {
	srv := NewServer(DefaultConfig())
	if _, err := srv.Snapshot(""); err == nil {
		t.Fatal("snapshot with no path succeeded")
	}
	if _, err := srv.Restore(""); err == nil {
		t.Fatal("restore with no path succeeded")
	}
}
