package serve

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"f3m/internal/core"
	"f3m/internal/fingerprint"
	"f3m/internal/ir"
)

// Snapshot format v1 (all integers little-endian):
//
//	magic    [8]byte  "F3MSNAP1"
//	version  u32      1
//	config   u32 shards, u32 k, u32 shingle, u64 seed,
//	         u32 rows, u32 bands, i64 bucketCap
//	nmods    u32      module count (modules sorted by name)
//	module*  str name, str canonicalIR,
//	         u32 nfuncs, (i64 id, str func, u32 nlanes, u32* lanes)*
//	crc      u32      IEEE CRC-32 of everything above
//
// str = u32 length + raw bytes. The encoding is deterministic: the
// same server state always serializes to the same bytes, so repeated
// snapshots of a quiescent server are byte-identical (the round-trip
// property test holds the format to this).

// snapshotMagic identifies a v1 snapshot file.
const snapshotMagic = "F3MSNAP1"

// snapshotVersion is the current format version.
const snapshotVersion = 1

// SnapshotInfo describes a written snapshot.
type SnapshotInfo struct {
	// Path is the file the snapshot was written to.
	Path string `json:"path"`

	// Bytes is the file size.
	Bytes int `json:"bytes"`

	// Modules and Funcs count the captured state; Epoch is the store
	// epoch at capture time.
	Modules int    `json:"modules"`
	Funcs   int    `json:"funcs"`
	Epoch   uint64 `json:"epoch"`
}

// RestoreInfo describes a completed restore.
type RestoreInfo struct {
	// Path is the snapshot file state was loaded from.
	Path string `json:"path"`

	// Modules and Funcs count the restored state.
	Modules int `json:"modules"`
	Funcs   int `json:"funcs"`
}

// snapEnc builds the deterministic byte stream.
type snapEnc struct{ buf bytes.Buffer }

func (e *snapEnc) u32(v uint32) { _ = binary.Write(&e.buf, binary.LittleEndian, v) }
func (e *snapEnc) u64(v uint64) { _ = binary.Write(&e.buf, binary.LittleEndian, v) }
func (e *snapEnc) i64(v int64)  { _ = binary.Write(&e.buf, binary.LittleEndian, v) }
func (e *snapEnc) str(s string) { e.u32(uint32(len(s))); e.buf.WriteString(s) }

// snapDec reads it back, tracking the first error.
type snapDec struct {
	data []byte
	off  int
	err  error
}

func (d *snapDec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("serve: corrupt snapshot: truncated %s at offset %d", what, d.off)
	}
}

func (d *snapDec) bytes(n int, what string) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.data) {
		d.fail(what)
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

func (d *snapDec) u32(what string) uint32 {
	b := d.bytes(4, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *snapDec) u64(what string) uint64 {
	b := d.bytes(8, what)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *snapDec) i64(what string) int64 { return int64(d.u64(what)) }

func (d *snapDec) str(what string) string {
	n := d.u32(what + " length")
	return string(d.bytes(int(n), what))
}

// snapRecord is one decoded function record during restore.
type snapRecord struct {
	id     int64
	module string
	fn     string
	sig    fingerprint.MinHash
}

// resolvePath applies the configured default snapshot path.
func (s *Server) resolvePath(path string) (string, error) {
	if path == "" {
		path = s.cfg.SnapshotPath
	}
	if path == "" {
		return "", fmt.Errorf("serve: no snapshot path (pass \"path\" or start with -snapshot)")
	}
	return path, nil
}

// Snapshot serializes the live state — store configuration, every
// module's canonical IR and every indexed function record — to path
// (empty path = the configured default), writing a temp file in the
// destination directory and renaming it into place so a crash mid-write
// never leaves a half-written snapshot behind.
func (s *Server) Snapshot(path string) (SnapshotInfo, error) {
	path, err := s.resolvePath(path)
	if err != nil {
		return SnapshotInfo{}, err
	}

	st := s.Store()
	cfg := st.Config()

	// Capture a consistent registry view. Entries and their records are
	// immutable after submission, so the read lock over the map copy is
	// the only synchronization needed.
	s.mu.RLock()
	epoch := st.Epoch()
	entries := make([]*moduleEntry, 0, len(s.modules))
	for _, e := range s.modules { // lintmap:ignore collected then sorted by name below
		entries = append(entries, e)
	}
	s.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	var enc snapEnc
	enc.buf.WriteString(snapshotMagic)
	enc.u32(snapshotVersion)
	enc.u32(uint32(cfg.Shards))
	enc.u32(uint32(cfg.K))
	enc.u32(uint32(cfg.ShingleSize))
	enc.u64(cfg.Seed)
	enc.u32(uint32(cfg.Rows))
	enc.u32(uint32(cfg.Bands))
	enc.i64(int64(cfg.BucketCap))
	enc.u32(uint32(len(entries)))
	nfuncs := 0
	for _, e := range entries {
		enc.str(e.name)
		enc.str(e.src)
		enc.u32(uint32(len(e.recs)))
		for _, r := range e.recs {
			enc.i64(r.ID)
			enc.str(r.Func)
			enc.u32(uint32(len(r.Sig)))
			for _, lane := range r.Sig {
				enc.u32(lane)
			}
			nfuncs++
		}
	}
	enc.u32(crc32.ChecksumIEEE(enc.buf.Bytes()))

	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".f3msnap-*")
	if err != nil {
		return SnapshotInfo{}, fmt.Errorf("serve: snapshot: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(enc.buf.Bytes()); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return SnapshotInfo{}, fmt.Errorf("serve: snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return SnapshotInfo{}, fmt.Errorf("serve: snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return SnapshotInfo{}, fmt.Errorf("serve: snapshot: %w", err)
	}

	s.mx.Counter("serve.snapshots").Inc()
	return SnapshotInfo{
		Path:    path,
		Bytes:   enc.buf.Len(),
		Modules: len(entries),
		Funcs:   nfuncs,
		Epoch:   epoch,
	}, nil
}

// Restore replaces the server's entire state — module registry and
// similarity store — with the contents of a snapshot file. The restore
// is all-or-nothing: the snapshot is fully decoded, CRC-checked,
// re-parsed, re-verified and re-fingerprinted into a fresh store before
// the live state is swapped, so a corrupt or tampered file leaves the
// server untouched. The snapshot's store configuration must match the
// server's (fingerprints under different parameters are incomparable).
func (s *Server) Restore(path string) (RestoreInfo, error) {
	path, err := s.resolvePath(path)
	if err != nil {
		return RestoreInfo{}, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return RestoreInfo{}, fmt.Errorf("serve: restore: %w", err)
	}

	modules, records, err := decodeSnapshot(data, s.Store().Config())
	if err != nil {
		return RestoreInfo{}, err
	}

	// Build the replacement store off-line, replaying records in
	// ascending id order so shard state is rebuilt deterministically.
	// The decoded moduleEntry.recs carry identical field values, so they
	// remain valid handles for later removal.
	fresh := NewStore(s.Store().Config())
	sort.Slice(records, func(i, j int) bool { return records[i].id < records[j].id })
	var maxID int64 = -1
	for _, r := range records {
		fresh.insertAt(r.id, r.module, r.fn, r.sig)
		if r.id > maxID {
			maxID = r.id
		}
	}
	fresh.nextID.Store(maxID + 1)

	s.mu.Lock()
	s.modules = make(map[string]*moduleEntry, len(modules))
	for _, e := range modules {
		s.modules[e.name] = e
	}
	s.store.Store(fresh)
	nmod := len(s.modules)
	s.mu.Unlock()

	s.mx.Counter("serve.restores").Inc()
	s.mx.Gauge("serve.modules").Set(float64(nmod))
	s.publishFuncGauge()
	return RestoreInfo{Path: path, Modules: nmod, Funcs: len(records)}, nil
}

// decodeSnapshot parses, CRC-checks and integrity-verifies snapshot
// bytes against the given store configuration. Each module's canonical
// IR is re-parsed and verified, and every recorded signature is
// recomputed from the parsed function and compared lane-for-lane — a
// snapshot whose signatures disagree with its own IR is rejected, not
// silently trusted.
func decodeSnapshot(data []byte, want StoreConfig) ([]*moduleEntry, []snapRecord, error) {
	if len(data) < len(snapshotMagic)+8 {
		return nil, nil, fmt.Errorf("serve: corrupt snapshot: too short (%d bytes)", len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, nil, fmt.Errorf("serve: corrupt snapshot: bad magic %q", data[:len(snapshotMagic)])
	}
	body, footer := data[:len(data)-4], data[len(data)-4:]
	if got, wantCRC := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(footer); got != wantCRC {
		return nil, nil, fmt.Errorf("serve: corrupt snapshot: CRC mismatch (file %08x, computed %08x)", wantCRC, got)
	}

	d := &snapDec{data: body, off: len(snapshotMagic)}
	if v := d.u32("version"); d.err == nil && v != snapshotVersion {
		return nil, nil, fmt.Errorf("serve: unsupported snapshot version %d (want %d)", v, snapshotVersion)
	}
	got := StoreConfig{
		Shards:      int(d.u32("shards")),
		K:           int(d.u32("k")),
		ShingleSize: int(d.u32("shingle size")),
		Seed:        d.u64("seed"),
		Rows:        int(d.u32("rows")),
		Bands:       int(d.u32("bands")),
		BucketCap:   int(d.i64("bucket cap")),
	}
	if d.err == nil && got != want {
		return nil, nil, fmt.Errorf("serve: snapshot store config %+v does not match server config %+v", got, want)
	}

	mh := (&fingerprint.Config{K: want.K, ShingleSize: want.ShingleSize, Seed: want.Seed}).Prepare()

	nmods := int(d.u32("module count"))
	var (
		modules []*moduleEntry
		records []snapRecord
		seenMod = map[string]bool{}
		seenID  = map[int64]bool{}
	)
	for i := 0; i < nmods && d.err == nil; i++ {
		name := d.str("module name")
		src := d.str("module IR")
		if d.err != nil {
			break
		}
		if name == "" || seenMod[name] {
			return nil, nil, fmt.Errorf("serve: corrupt snapshot: duplicate or empty module name %q", name)
		}
		seenMod[name] = true

		mod, err := ir.ParseModule(src)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: corrupt snapshot: module %q does not parse: %w", name, err)
		}
		if err := ir.VerifyModule(mod); err != nil {
			return nil, nil, fmt.Errorf("serve: corrupt snapshot: module %q does not verify: %w", name, err)
		}

		entry := &moduleEntry{name: name, src: src, cost: core.ModuleCost(mod)}
		nfuncs := int(d.u32("function count"))
		for j := 0; j < nfuncs && d.err == nil; j++ {
			id := d.i64("function id")
			fn := d.str("function name")
			nlanes := int(d.u32("signature length"))
			sig := make(fingerprint.MinHash, 0, nlanes)
			for l := 0; l < nlanes && d.err == nil; l++ {
				sig = append(sig, d.u32("signature lane"))
			}
			if d.err != nil {
				break
			}
			if id < 0 || seenID[id] {
				return nil, nil, fmt.Errorf("serve: corrupt snapshot: duplicate or negative function id %d", id)
			}
			seenID[id] = true
			f := mod.Func(fn)
			if f == nil || !mergeable(f) {
				return nil, nil, fmt.Errorf("serve: corrupt snapshot: record for %s.%s names no mergeable function", name, fn)
			}
			fresh := mh.New(fingerprint.EncodeFuncStable(f))
			if !sigEqual(fresh, sig) {
				return nil, nil, fmt.Errorf("serve: corrupt snapshot: signature of %s.%s does not match its IR", name, fn)
			}
			entry.recs = append(entry.recs, &FuncRecord{ID: id, Module: name, Func: fn, Sig: sig})
			records = append(records, snapRecord{id: id, module: name, fn: fn, sig: sig})
		}
		modules = append(modules, entry)
	}
	if d.err != nil {
		return nil, nil, d.err
	}
	if d.off != len(body) {
		return nil, nil, fmt.Errorf("serve: corrupt snapshot: %d trailing bytes", len(body)-d.off)
	}
	return modules, records, nil
}

// sigEqual compares two signatures lane-for-lane.
func sigEqual(a, b fingerprint.MinHash) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
