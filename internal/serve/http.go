package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"f3m/internal/analysis/summary"
)

// Route describes one API endpoint: the smoke gate drives every route
// and the docs-drift check asserts SERVING.md documents each one.
type Route struct {
	// Method and Pattern form the ServeMux registration (Go 1.22
	// method patterns; Pattern may contain {name} wildcards).
	Method, Pattern string

	// Name is the metrics/span identifier (serve.endpoint.<Name>.*).
	Name string

	// Doc is a one-line summary, echoed by the API index endpoint.
	Doc string
}

// Routes lists every endpoint the server registers, in documentation
// order. The slice is freshly allocated per call.
func Routes() []Route {
	return []Route{
		{"GET", "/v1/healthz", "healthz", "liveness plus module/function/epoch counters"},
		{"GET", "/v1/modules", "modules.list", "list live modules (sorted by name)"},
		{"POST", "/v1/modules", "modules.submit", "submit a module: {\"name\", \"ir\"}"},
		{"GET", "/v1/modules/{name}", "modules.get", "one module's info"},
		{"DELETE", "/v1/modules/{name}", "modules.remove", "remove a module and unindex its functions"},
		{"GET", "/v1/summaries", "summaries", "per-function merge summaries of every live module (cross-module planning input)"},
		{"POST", "/v1/query", "query", "find near-duplicates of a stored or inline function"},
		{"POST", "/v1/merge", "merge", "incrementally re-merge the live corpus"},
		{"GET", "/v1/report", "report", "last merge report (summary, pairs, diagnostics)"},
		{"GET", "/v1/merged", "merged", "textual IR of the last merged module"},
		{"GET", "/v1/metrics", "metrics", "metrics registry (JSON; ?format=text for funnel+text)"},
		{"POST", "/v1/snapshot", "snapshot", "write a snapshot: {\"path\"?}"},
		{"POST", "/v1/restore", "restore", "replace state from a snapshot: {\"path\"?}"},
		{"POST", "/v1/shutdown", "shutdown", "begin graceful shutdown (when enabled)"},
	}
}

// apiError is the JSON error envelope: {"error": {"code", "message"}}.
type apiError struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// httpStatus maps server errors onto status codes and API error codes.
func httpStatus(err error) (int, string) {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound, "not_found"
	case errors.Is(err, ErrModuleExists):
		return http.StatusConflict, "conflict"
	case errors.Is(err, ErrNoModules):
		return http.StatusConflict, "no_modules"
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable, "unavailable"
	default:
		return http.StatusBadRequest, "invalid_request"
	}
}

// writeJSON emits v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError emits the JSON error envelope for err.
func writeError(w http.ResponseWriter, err error) {
	status, code := httpStatus(err)
	var e apiError
	e.Error.Code = code
	e.Error.Message = err.Error()
	writeJSON(w, status, e)
}

// latencyBounds buckets request latencies in milliseconds.
var latencyBounds = []float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000}

// handle wraps an endpoint with the request lifecycle: shutdown
// refusal, in-flight tracking (what Close drains), per-endpoint and
// aggregate metrics, and a request span.
func (s *Server) handle(name string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := s.begin(); err != nil {
			s.mx.Counter("serve.rejected").Inc()
			writeError(w, err)
			return
		}
		defer s.inflight.Done()
		start := time.Now()
		sp := s.cfg.Tracer.StartSpan("http." + name)
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		s.mx.Counter("serve.requests").Inc()
		s.mx.Counter("serve.endpoint." + name + ".requests").Inc()
		fn(w, r)
		sp.End()
		ms := float64(time.Since(start)) / float64(time.Millisecond)
		s.mx.VolatileHistogram("serve.latency_ms", latencyBounds).Observe(ms)
	}
}

// fail records an endpoint error and writes the error envelope.
func (s *Server) fail(w http.ResponseWriter, name string, err error) {
	s.mx.Counter("serve.errors").Inc()
	s.mx.Counter("serve.endpoint." + name + ".errors").Inc()
	writeError(w, err)
}

// decodeBody decodes a JSON request body into v, rejecting unknown
// fields so typos in client payloads surface as errors rather than
// silently ignored options. An empty body decodes as all-defaults when
// allowEmpty is set (Decode returns io.EOF verbatim on an empty body).
func decodeBody(r *http.Request, v any, allowEmpty bool) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if allowEmpty && errors.Is(err, io.EOF) {
			return nil
		}
		return fmt.Errorf("invalid request body: %w", err)
	}
	return nil
}

// Handler builds the HTTP API. The returned handler is safe for
// concurrent use and may be wrapped (httptest, custom servers).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handlers := map[string]http.HandlerFunc{
		"healthz":        s.handleHealthz,
		"modules.list":   s.handleModulesList,
		"modules.submit": s.handleModulesSubmit,
		"modules.get":    s.handleModulesGet,
		"modules.remove": s.handleModulesRemove,
		"summaries":      s.handleSummaries,
		"query":          s.handleQuery,
		"merge":          s.handleMerge,
		"report":         s.handleReport,
		"merged":         s.handleMerged,
		"metrics":        s.handleMetrics,
		"snapshot":       s.handleSnapshot,
		"restore":        s.handleRestore,
		"shutdown":       s.handleShutdown,
	}
	for _, rt := range Routes() {
		fn, ok := handlers[rt.Name]
		if !ok {
			panic("serve: route without handler: " + rt.Name)
		}
		mux.HandleFunc(rt.Method+" "+rt.Pattern, s.handle(rt.Name, fn))
	}
	// API index: handy for humans poking the service with curl.
	mux.HandleFunc("GET /v1/{$}", s.handle("index", func(w http.ResponseWriter, r *http.Request) {
		type entry struct {
			Method  string `json:"method"`
			Pattern string `json:"pattern"`
			Doc     string `json:"doc"`
		}
		var out []entry
		for _, rt := range Routes() {
			out = append(out, entry{rt.Method, rt.Pattern, rt.Doc})
		}
		writeJSON(w, http.StatusOK, map[string]any{"endpoints": out})
	}))
	return mux
}

// handleHealthz serves GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Healthz())
}

// handleModulesList serves GET /v1/modules.
func (s *Server) handleModulesList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"modules": s.Modules()})
}

// handleModulesSubmit serves POST /v1/modules.
func (s *Server) handleModulesSubmit(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
		IR   string `json:"ir"`
	}
	if err := decodeBody(r, &req, false); err != nil {
		s.fail(w, "modules.submit", err)
		return
	}
	info, err := s.SubmitModule(req.Name, req.IR)
	if err != nil {
		s.fail(w, "modules.submit", err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

// handleModulesGet serves GET /v1/modules/{name}.
func (s *Server) handleModulesGet(w http.ResponseWriter, r *http.Request) {
	info, err := s.Module(r.PathValue("name"))
	if err != nil {
		s.fail(w, "modules.get", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleModulesRemove serves DELETE /v1/modules/{name}.
func (s *Server) handleModulesRemove(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := s.RemoveModule(name); err != nil {
		s.fail(w, "modules.remove", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"removed": name})
}

// handleSummaries serves GET /v1/summaries: the live corpus as
// versioned per-function merge summaries, the planning input of the
// cross-module workflow (see DESIGN.md, "Cross-module merging").
func (s *Server) handleSummaries(w http.ResponseWriter, r *http.Request) {
	sums, err := s.Summaries()
	if err != nil {
		s.fail(w, "summaries", err)
		return
	}
	if sums == nil {
		sums = []*summary.ModuleSummary{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":   s.Store().Epoch(),
		"modules": sums,
	})
}

// handleQuery serves POST /v1/query.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Module        string  `json:"module"`
		Func          string  `json:"func"`
		IR            string  `json:"ir"`
		MinSimilarity float64 `json:"min_similarity"`
		K             int     `json:"k"`
	}
	if err := decodeBody(r, &req, false); err != nil {
		s.fail(w, "query", err)
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	var (
		matches []Match
		err     error
	)
	switch {
	case req.IR != "" && req.Module != "":
		err = fmt.Errorf("pass either \"ir\" (inline probe) or \"module\" (stored probe), not both")
	case req.IR != "":
		matches, err = s.QueryIR(req.IR, req.Func, req.MinSimilarity, req.K)
	case req.Module != "":
		matches, err = s.QueryStored(req.Module, req.Func, req.MinSimilarity, req.K)
	default:
		err = fmt.Errorf("pass \"ir\" (inline probe) or \"module\"+\"func\" (stored probe)")
	}
	if err != nil {
		s.fail(w, "query", err)
		return
	}
	if matches == nil {
		matches = []Match{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":   s.Store().Epoch(),
		"matches": matches,
	})
}

// handleMerge serves POST /v1/merge.
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	sum, err := s.Merge()
	if err != nil {
		s.fail(w, "merge", err)
		return
	}
	writeJSON(w, http.StatusOK, sum)
}

// handleReport serves GET /v1/report.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	sum, pairs, diags, ok := s.LastMerge()
	if !ok {
		s.fail(w, "report", fmt.Errorf("%w: no merge has run", ErrNotFound))
		return
	}
	if pairs == nil {
		pairs = []PairInfo{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"summary":     sum,
		"pairs":       pairs,
		"diagnostics": diags,
	})
}

// handleMerged serves GET /v1/merged.
func (s *Server) handleMerged(w http.ResponseWriter, r *http.Request) {
	text, ok := s.MergedIR()
	if !ok {
		s.fail(w, "merged", fmt.Errorf("%w: no merge has run", ErrNotFound))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte(text))
}

// handleMetrics serves GET /v1/metrics. The default is the
// deterministic JSON export; ?format=text renders the funnel plus the
// full text dump (including volatile counters).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.mx == nil {
		s.fail(w, "metrics", fmt.Errorf("%w: metrics are disabled", ErrNotFound))
		return
	}
	if r.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.mx.WriteFunnel(w)
		fmt.Fprintln(w)
		s.mx.WriteText(w)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.mx.WriteJSON(w)
}

// handleSnapshot serves POST /v1/snapshot.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Path string `json:"path"`
	}
	if err := decodeBody(r, &req, true); err != nil {
		s.fail(w, "snapshot", err)
		return
	}
	info, err := s.Snapshot(req.Path)
	if err != nil {
		s.fail(w, "snapshot", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleRestore serves POST /v1/restore.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Path string `json:"path"`
	}
	if err := decodeBody(r, &req, true); err != nil {
		s.fail(w, "restore", err)
		return
	}
	info, err := s.Restore(req.Path)
	if err != nil {
		s.fail(w, "restore", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleShutdown serves POST /v1/shutdown.
func (s *Server) handleShutdown(w http.ResponseWriter, r *http.Request) {
	if !s.cfg.EnableShutdown {
		s.fail(w, "shutdown", fmt.Errorf("%w: shutdown endpoint disabled", ErrNotFound))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "shutting down"})
	s.requestShutdown()
}
