package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"f3m/internal/ir"
	"f3m/internal/irgen"
	"f3m/internal/obs"
)

// genModule renders a synthetic module with prefixed function names.
func genModule(seed int64, prefix string) string {
	gcfg := irgen.DefaultConfig(seed)
	gcfg.Families = 2
	gcfg.FamilySizeMin, gcfg.FamilySizeMax = 2, 2
	gcfg.Singletons = 1
	gcfg.Callers = 1
	res := irgen.Generate(gcfg)
	for _, f := range res.Module.Funcs {
		res.Module.RenameFunc(f, prefix+f.Name())
	}
	return ir.ModuleString(res.Module)
}

// newTestServer builds a server with metrics plus its HTTP test host.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Metrics = obs.NewMetrics()
	cfg.SnapshotPath = filepath.Join(t.TempDir(), "state.snap")
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

// call issues one JSON request and returns status plus decoded body.
func call(t *testing.T, ts *httptest.Server, method, path string, body any) (int, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		out = nil
	}
	return resp.StatusCode, out
}

// errCode digs the API error code out of a decoded error envelope.
func errCode(body map[string]any) string {
	e, _ := body["error"].(map[string]any)
	c, _ := e["code"].(string)
	return c
}

func TestEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t)
	src := genModule(1, "a_")

	// Merge with an empty corpus.
	if st, body := call(t, ts, "POST", "/v1/merge", nil); st != http.StatusConflict || errCode(body) != "no_modules" {
		t.Fatalf("empty merge: status %d code %q", st, errCode(body))
	}
	// Malformed JSON body.
	resp, err := http.Post(ts.URL+"/v1/modules", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}
	// Unknown request field.
	if st, _ := call(t, ts, "POST", "/v1/modules", map[string]string{"name": "a", "irx": src}); st != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", st)
	}
	// Invalid IR.
	if st, _ := call(t, ts, "POST", "/v1/modules", map[string]string{"name": "a", "ir": "junk"}); st != http.StatusBadRequest {
		t.Fatalf("invalid IR: status %d, want 400", st)
	}
	// Valid submit, then duplicate.
	if st, _ := call(t, ts, "POST", "/v1/modules", map[string]string{"name": "a", "ir": src}); st != http.StatusCreated {
		t.Fatalf("submit: status %d, want 201", st)
	}
	if st, body := call(t, ts, "POST", "/v1/modules", map[string]string{"name": "a", "ir": src}); st != http.StatusConflict || errCode(body) != "conflict" {
		t.Fatalf("duplicate submit: status %d code %q", st, errCode(body))
	}
	// Missing module / function.
	if st, body := call(t, ts, "GET", "/v1/modules/zzz", nil); st != http.StatusNotFound || errCode(body) != "not_found" {
		t.Fatalf("missing module: status %d code %q", st, errCode(body))
	}
	if st, _ := call(t, ts, "DELETE", "/v1/modules/zzz", nil); st != http.StatusNotFound {
		t.Fatalf("missing delete: status %d, want 404", st)
	}
	if st, _ := call(t, ts, "POST", "/v1/query", map[string]any{"module": "a", "func": "no_such"}); st != http.StatusNotFound {
		t.Fatalf("missing probe func: status %d, want 404", st)
	}
	// Report before any merge.
	if st, _ := call(t, ts, "GET", "/v1/report", nil); st != http.StatusNotFound {
		t.Fatalf("report before merge: status %d, want 404", st)
	}
}

func TestShutdownDrainRefuses503(t *testing.T) {
	srv, ts := newTestServer(t)
	if err := srv.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, body := call(t, ts, "GET", "/v1/healthz", nil)
	if st != http.StatusServiceUnavailable || errCode(body) != "unavailable" {
		t.Fatalf("after close: status %d code %q, want 503 unavailable", st, errCode(body))
	}
}

func TestShutdownEndpointDisabled(t *testing.T) {
	cfg := DefaultConfig()
	cfg.EnableShutdown = false
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if st, _ := call(t, ts, "POST", "/v1/shutdown", nil); st != http.StatusNotFound {
		t.Fatalf("disabled shutdown: status %d, want 404", st)
	}
}

func TestMetricsExposeRequestCounters(t *testing.T) {
	srv, ts := newTestServer(t)
	call(t, ts, "GET", "/v1/healthz", nil)
	call(t, ts, "GET", "/v1/modules", nil)
	mx := srv.cfg.Metrics
	if got := mx.CounterValue("serve.requests"); got != 2 {
		t.Fatalf("serve.requests = %d, want 2", got)
	}
	if got := mx.CounterValue("serve.endpoint.healthz.requests"); got != 1 {
		t.Fatalf("serve.endpoint.healthz.requests = %d, want 1", got)
	}
	// The metrics endpoint itself serves the registry as JSON.
	st, body := call(t, ts, "GET", "/v1/metrics", nil)
	if st != http.StatusOK {
		t.Fatalf("metrics: status %d", st)
	}
	counters, _ := body["counters"].(map[string]any)
	if _, ok := counters["serve.requests"]; !ok {
		t.Fatalf("metrics JSON missing serve.requests: %v", body)
	}
}

func TestQueryStoredAndInline(t *testing.T) {
	_, ts := newTestServer(t)
	src := genModule(3, "q_")
	st, body := call(t, ts, "POST", "/v1/modules", map[string]string{"name": "m", "ir": src})
	if st != http.StatusCreated {
		t.Fatalf("submit: status %d", st)
	}
	funcs := body["funcs"].([]any)
	probe := funcs[0].(string)

	// Stored probe never matches itself.
	st, body = call(t, ts, "POST", "/v1/query", map[string]any{"module": "m", "func": probe, "k": 50})
	if st != http.StatusOK {
		t.Fatalf("stored query: status %d", st)
	}
	for _, m := range body["matches"].([]any) {
		mm := m.(map[string]any)
		if mm["module"] == "m" && mm["func"] == probe {
			t.Fatalf("stored probe matched itself: %v", mm)
		}
	}

	// Inline probe of the same function must find the stored copy at
	// similarity 1 — the stable encoding makes separately parsed
	// modules comparable.
	st, body = call(t, ts, "POST", "/v1/query", map[string]any{"ir": src, "func": probe, "min_similarity": 0.99})
	if st != http.StatusOK {
		t.Fatalf("inline query: status %d", st)
	}
	matches := body["matches"].([]any)
	if len(matches) == 0 {
		t.Fatal("inline self-probe found nothing; stable encoding broken?")
	}
	top := matches[0].(map[string]any)
	if top["func"] != probe || top["similarity"].(float64) < 0.999 {
		t.Fatalf("inline self-probe top match %v, want %s at sim 1", top, probe)
	}
}

// TestServingDocCoversRoutes is the docs-drift unit check: every
// registered route must appear verbatim ("METHOD /pattern") in
// SERVING.md. The smoke gate re-runs the same check from check.sh.
func TestServingDocCoversRoutes(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "SERVING.md"))
	if err != nil {
		t.Fatalf("SERVING.md unreadable: %v", err)
	}
	for _, rt := range Routes() {
		needle := fmt.Sprintf("%s %s", rt.Method, rt.Pattern)
		if !bytes.Contains(doc, []byte(needle)) {
			t.Errorf("SERVING.md does not document %q", needle)
		}
	}
}

func TestSelfCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("selfcheck boots a real listener")
	}
	var out bytes.Buffer
	if err := SelfCheck(&out, filepath.Join("..", "..", "SERVING.md")); err != nil {
		t.Fatalf("selfcheck failed: %v\n%s", err, out.String())
	}
}
