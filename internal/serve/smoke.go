package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"f3m/internal/analysis/summary"
	"f3m/internal/ir"
	"f3m/internal/irgen"
	"f3m/internal/obs"
)

// SelfCheck boots a real loopback HTTP server around a fresh Server
// and drives every route in Routes() end to end: submit synthetic
// modules, query stored and inline probes, merge, snapshot, remove a
// module, restore, and re-merge — asserting the post-restore merge
// reproduces the pre-snapshot report key byte-for-byte — then begins
// graceful shutdown and confirms new requests are refused with 503.
//
// When servingDoc names a readable file (normally SERVING.md), the
// check also fails if any route's "METHOD PATTERN" line is missing
// from it — the docs-drift gate scripts/check.sh runs in CI.
//
// Progress lines go to w. A nil error means every check passed.
func SelfCheck(w io.Writer, servingDoc string) error {
	if w == nil {
		w = io.Discard
	}
	tmp, err := os.MkdirTemp("", "f3m-selfcheck-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	snapPath := filepath.Join(tmp, "state.snap")

	cfg := DefaultConfig()
	cfg.Metrics = obs.NewMetrics()
	cfg.SnapshotPath = snapPath
	srv := NewServer(cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(w, "selfcheck: listening on %s\n", base)

	c := &smokeClient{base: base, hit: map[string]bool{}}

	// Synthetic corpus: two small modules with disjoint function names.
	srcA := smokeModule(1, "a_")
	srcB := smokeModule(2, "b_")

	// healthz (empty).
	var h Health
	if err := c.do("GET", "/v1/healthz", "healthz", nil, http.StatusOK, &h); err != nil {
		return err
	}
	if h.Status != "ok" || h.Modules != 0 {
		return fmt.Errorf("selfcheck: unexpected empty health %+v", h)
	}

	// Submit both modules; re-submitting must 409.
	var info ModuleInfo
	if err := c.do("POST", "/v1/modules", "modules.submit", map[string]string{"name": "a", "ir": srcA}, http.StatusCreated, &info); err != nil {
		return err
	}
	if err := c.do("POST", "/v1/modules", "modules.submit", map[string]string{"name": "b", "ir": srcB}, http.StatusCreated, nil); err != nil {
		return err
	}
	if err := c.do("POST", "/v1/modules", "modules.submit", map[string]string{"name": "a", "ir": srcA}, http.StatusConflict, nil); err != nil {
		return err
	}
	fmt.Fprintf(w, "selfcheck: submitted 2 modules (%d funcs in a)\n", len(info.Funcs))

	// List and get.
	var list struct {
		Modules []ModuleInfo `json:"modules"`
	}
	if err := c.do("GET", "/v1/modules", "modules.list", nil, http.StatusOK, &list); err != nil {
		return err
	}
	if len(list.Modules) != 2 {
		return fmt.Errorf("selfcheck: want 2 modules, got %d", len(list.Modules))
	}
	if err := c.do("GET", "/v1/modules/a", "modules.get", nil, http.StatusOK, &info); err != nil {
		return err
	}
	if err := c.do("GET", "/v1/modules/nope", "modules.get", nil, http.StatusNotFound, nil); err != nil {
		return err
	}

	// Query: stored probe and inline probe.
	var q struct {
		Matches []Match `json:"matches"`
	}
	stored := map[string]any{"module": "a", "func": info.Funcs[0], "min_similarity": 0.0, "k": 5}
	if err := c.do("POST", "/v1/query", "query", stored, http.StatusOK, &q); err != nil {
		return err
	}
	inline := map[string]any{"ir": srcA, "func": info.Funcs[0], "min_similarity": 0.5}
	if err := c.do("POST", "/v1/query", "query", inline, http.StatusOK, &q); err != nil {
		return err
	}
	// The inline probe is function info.Funcs[0] itself, still indexed:
	// it must come back as a similarity-1 match.
	if len(q.Matches) == 0 || q.Matches[0].Similarity < 0.999 {
		return fmt.Errorf("selfcheck: inline self-query found no exact match: %+v", q.Matches)
	}
	fmt.Fprintf(w, "selfcheck: queries ok (%d matches for inline self-probe)\n", len(q.Matches))

	// Summaries: the exported set must cover both modules and ingest
	// cleanly into a cross-module planning index (version, params and
	// one-definition checks all pass).
	var sums struct {
		Modules []*summary.ModuleSummary `json:"modules"`
	}
	if err := c.do("GET", "/v1/summaries", "summaries", nil, http.StatusOK, &sums); err != nil {
		return err
	}
	if len(sums.Modules) != 2 {
		return fmt.Errorf("selfcheck: want 2 module summaries, got %d", len(sums.Modules))
	}
	six := summary.NewIndex()
	for _, ms := range sums.Modules {
		if err := six.Add(ms); err != nil {
			return fmt.Errorf("selfcheck: exported summaries do not ingest: %w", err)
		}
	}
	fmt.Fprintf(w, "selfcheck: summaries ok (%d modules, %d funcs in %s)\n",
		len(sums.Modules), len(sums.Modules[0].Funcs), sums.Modules[0].Module)

	// Merge, report, merged IR.
	var sum MergeSummary
	if err := c.do("POST", "/v1/merge", "merge", nil, http.StatusOK, &sum); err != nil {
		return err
	}
	if sum.ReportKey == "" {
		return fmt.Errorf("selfcheck: merge returned empty report key")
	}
	var rep struct {
		Summary MergeSummary `json:"summary"`
		Pairs   []PairInfo   `json:"pairs"`
	}
	if err := c.do("GET", "/v1/report", "report", nil, http.StatusOK, &rep); err != nil {
		return err
	}
	if rep.Summary.ReportKey != sum.ReportKey {
		return fmt.Errorf("selfcheck: report key drifted between merge and report")
	}
	merged, err := c.raw("GET", "/v1/merged", "merged", nil, http.StatusOK)
	if err != nil {
		return err
	}
	if _, err := ir.ParseModule(string(merged)); err != nil {
		return fmt.Errorf("selfcheck: merged IR does not re-parse: %w", err)
	}
	fmt.Fprintf(w, "selfcheck: merge ok (attempts=%d merges=%d key=%s)\n", sum.Attempts, sum.Merges, sum.ReportKey[:12])

	// Metrics, JSON and text.
	if _, err := c.raw("GET", "/v1/metrics", "metrics", nil, http.StatusOK); err != nil {
		return err
	}
	if _, err := c.raw("GET", "/v1/metrics?format=text", "metrics", nil, http.StatusOK); err != nil {
		return err
	}

	// Snapshot, mutate (remove module b), restore, re-merge: the
	// restored corpus must reproduce the pre-snapshot report key.
	var snap SnapshotInfo
	if err := c.do("POST", "/v1/snapshot", "snapshot", nil, http.StatusOK, &snap); err != nil {
		return err
	}
	if err := c.do("DELETE", "/v1/modules/b", "modules.remove", nil, http.StatusOK, nil); err != nil {
		return err
	}
	var sumA MergeSummary
	if err := c.do("POST", "/v1/merge", "merge", nil, http.StatusOK, &sumA); err != nil {
		return err
	}
	if sumA.ReportKey == sum.ReportKey {
		return fmt.Errorf("selfcheck: report key unchanged after removing a module")
	}
	var rest RestoreInfo
	if err := c.do("POST", "/v1/restore", "restore", nil, http.StatusOK, &rest); err != nil {
		return err
	}
	if rest.Modules != 2 {
		return fmt.Errorf("selfcheck: restore recovered %d modules, want 2", rest.Modules)
	}
	var sum2 MergeSummary
	if err := c.do("POST", "/v1/merge", "merge", nil, http.StatusOK, &sum2); err != nil {
		return err
	}
	if sum2.ReportKey != sum.ReportKey {
		return fmt.Errorf("selfcheck: post-restore merge report key %s != pre-snapshot %s", sum2.ReportKey, sum.ReportKey)
	}
	fmt.Fprintf(w, "selfcheck: snapshot/restore ok (%d bytes, report key reproduced)\n", snap.Bytes)

	// Shutdown: accepted once, then every request is refused with 503.
	if err := c.do("POST", "/v1/shutdown", "shutdown", nil, http.StatusOK, nil); err != nil {
		return err
	}
	select {
	case <-srv.ShutdownRequested():
	case <-time.After(5 * time.Second):
		return fmt.Errorf("selfcheck: shutdown endpoint did not trip ShutdownRequested")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		return fmt.Errorf("selfcheck: drain: %w", err)
	}
	if err := c.do("GET", "/v1/healthz", "healthz", nil, http.StatusServiceUnavailable, nil); err != nil {
		return err
	}
	fmt.Fprintf(w, "selfcheck: graceful shutdown ok (new requests refused)\n")

	// Route coverage: every registered route must have been driven.
	for _, rt := range Routes() {
		if !c.hit[rt.Name] {
			return fmt.Errorf("selfcheck: route %s %s (%s) was never exercised", rt.Method, rt.Pattern, rt.Name)
		}
	}

	// Docs drift: every route must appear in the serving reference.
	if servingDoc != "" {
		doc, err := os.ReadFile(servingDoc)
		if err != nil {
			return fmt.Errorf("selfcheck: serving doc: %w", err)
		}
		for _, rt := range Routes() {
			needle := rt.Method + " " + rt.Pattern
			if !strings.Contains(string(doc), needle) {
				return fmt.Errorf("selfcheck: %s does not document %q", servingDoc, needle)
			}
		}
		fmt.Fprintf(w, "selfcheck: %s documents all %d routes\n", servingDoc, len(Routes()))
	}

	fmt.Fprintf(w, "selfcheck: PASS\n")
	return nil
}

// smokeModule renders a small synthetic module whose function names
// carry the given prefix, so several can be linked without collisions.
func smokeModule(seed int64, prefix string) string {
	gcfg := irgen.DefaultConfig(seed)
	gcfg.Families = 2
	gcfg.FamilySizeMin, gcfg.FamilySizeMax = 2, 2
	gcfg.Singletons = 2
	gcfg.Callers = 1
	res := irgen.Generate(gcfg)
	for _, f := range res.Module.Funcs {
		res.Module.RenameFunc(f, prefix+f.Name())
	}
	return ir.ModuleString(res.Module)
}

// smokeClient is a minimal JSON client that records route coverage.
type smokeClient struct {
	base string
	hit  map[string]bool
}

// raw issues one request, asserts the status, returns the body.
func (c *smokeClient) raw(method, path, route string, body any, wantStatus int) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != wantStatus {
		return nil, fmt.Errorf("selfcheck: %s %s: status %d, want %d (body: %.200s)", method, path, resp.StatusCode, wantStatus, out)
	}
	c.hit[route] = true
	return out, nil
}

// do is raw plus JSON-decoding the response into out (when non-nil).
func (c *smokeClient) do(method, path, route string, body any, wantStatus int, out any) error {
	b, err := c.raw(method, path, route, body, wantStatus)
	if err != nil {
		return err
	}
	if out != nil {
		if err := json.Unmarshal(b, out); err != nil {
			return fmt.Errorf("selfcheck: %s %s: bad response JSON: %w", method, path, err)
		}
	}
	return nil
}
