package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"testing"

	"f3m/internal/core"
	"f3m/internal/ir"
)

// TestLoadByteIdenticalReports is the service's central contract test:
// N concurrent clients drive submit/query/remove/merge traffic, and the
// final merge report must be byte-identical — same CanonicalReport,
// same SHA-256 key — to a one-shot core.Run over the same module set,
// regardless of client count, interleaving, mid-run merges or the
// persistent alignment cache. Run with -race this doubles as the
// serving layer's lock-discipline test.
func TestLoadByteIdenticalReports(t *testing.T) {
	for _, clients := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("clients=%d", clients), func(t *testing.T) {
			runLoad(t, clients)
		})
	}
}

// runLoad drives one load round and checks the identity.
func runLoad(t *testing.T, clients int) {
	srv, ts := newTestServer(t)

	// Each client owns two permanent modules plus one temporary module
	// it submits and removes mid-run, so the final corpus is fixed while
	// the traffic history is not.
	type mod struct{ name, src string }
	perm := make(map[string]string)
	work := make([][]mod, clients)
	for c := 0; c < clients; c++ {
		a := mod{fmt.Sprintf("mod-%02d-a", c), genModule(int64(100+2*c), fmt.Sprintf("c%da_", c))}
		b := mod{fmt.Sprintf("mod-%02d-b", c), genModule(int64(101+2*c), fmt.Sprintf("c%db_", c))}
		tmp := mod{fmt.Sprintf("tmp-%02d", c), genModule(int64(500+c), fmt.Sprintf("t%d_", c))}
		work[c] = []mod{a, b, tmp}
		perm[a.name] = a.src
		perm[b.name] = b.src
	}

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			a, b, tmp := work[c][0], work[c][1], work[c][2]
			step := func(st int, want int, what string) bool {
				if st != want {
					errs <- fmt.Errorf("client %d: %s: status %d, want %d", c, what, st, want)
					return false
				}
				return true
			}
			st, _ := call(t, ts, "POST", "/v1/modules", map[string]string{"name": a.name, "ir": a.src})
			if !step(st, http.StatusCreated, "submit a") {
				return
			}
			st, _ = call(t, ts, "POST", "/v1/query", map[string]any{"ir": a.src, "min_similarity": 0.9, "k": 3, "func": firstFunc(t, a.src)})
			if !step(st, http.StatusOK, "inline query") {
				return
			}
			st, _ = call(t, ts, "POST", "/v1/modules", map[string]string{"name": tmp.name, "ir": tmp.src})
			if !step(st, http.StatusCreated, "submit tmp") {
				return
			}
			// Mid-run merge: result is schedule-dependent traffic, only
			// the final quiescent merge is asserted on.
			st, _ = call(t, ts, "POST", "/v1/merge", nil)
			if !step(st, http.StatusOK, "mid merge") {
				return
			}
			st, _ = call(t, ts, "GET", "/v1/modules/"+a.name, nil)
			if !step(st, http.StatusOK, "get a") {
				return
			}
			st, _ = call(t, ts, "DELETE", "/v1/modules/"+tmp.name, nil)
			if !step(st, http.StatusOK, "remove tmp") {
				return
			}
			st, _ = call(t, ts, "POST", "/v1/modules", map[string]string{"name": b.name, "ir": b.src})
			if !step(st, http.StatusCreated, "submit b") {
				return
			}
			st, _ = call(t, ts, "GET", "/v1/healthz", nil)
			step(st, http.StatusOK, "healthz")
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiescent final merge through the API.
	st, body := call(t, ts, "POST", "/v1/merge", nil)
	if st != http.StatusOK {
		t.Fatalf("final merge: status %d", st)
	}
	gotKey, _ := body["report_key"].(string)
	if gotKey == "" {
		t.Fatal("final merge returned no report key")
	}
	if int(body["modules"].(float64)) != len(perm) {
		t.Fatalf("final merge saw %v modules, want %d", body["modules"], len(perm))
	}

	// One-shot equivalent: canonicalize and link the same module set in
	// name order, run the pipeline with a different worker schedule and
	// no alignment-cache history, and compare canonical reports.
	names := make([]string, 0, len(perm))
	for n := range perm {
		names = append(names, n)
	}
	sort.Strings(names)
	mods := make([]*ir.Module, len(names))
	for i, n := range names {
		m, err := ir.ParseModule(canonicalIR(t, perm[n]))
		if err != nil {
			t.Fatalf("reparse %s: %v", n, err)
		}
		mods[i] = m
	}
	linked, err := ir.LinkModules("service", mods...)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(core.F3MStatic)
	cfg.Workers = 1      // service merged with Workers=0 (parallel)
	cfg.MergeWorkers = 1 // sequential merge loop
	rep, err := core.Run(linked, cfg)
	if err != nil {
		t.Fatal(err)
	}
	canon := CanonicalReport(rep)
	sum := sha256.Sum256([]byte(canon))
	wantKey := hex.EncodeToString(sum[:])
	if gotKey != wantKey {
		t.Fatalf("service report key %s != one-shot key %s\none-shot canonical report:\n%s", gotKey, wantKey, canon)
	}

	// The service's stored report agrees with what it returned.
	sumSrv, _, _, ok := srv.LastMerge()
	if !ok || sumSrv.ReportKey != gotKey {
		t.Fatalf("LastMerge key %s, want %s", sumSrv.ReportKey, gotKey)
	}
}

// canonicalIR round-trips src through the parser/printer, mirroring
// what SubmitModule stores.
func canonicalIR(t *testing.T, src string) string {
	t.Helper()
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	return ir.ModuleString(m)
}

// firstFunc names some mergeable function of src for probe traffic.
func firstFunc(t *testing.T, src string) string {
	t.Helper()
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range m.Funcs {
		if mergeable(f) {
			return f.Name()
		}
	}
	t.Fatal("no mergeable function in generated module")
	return ""
}
