package serve

import (
	"fmt"
	"sort"

	"f3m/internal/analysis/summary"
	"f3m/internal/ir"
)

// Summaries extracts the per-function merge summaries of every live
// module, sorted by submission name — the serving side of the
// cross-module workflow. A client can pull these instead of the module
// texts, plan merges offline over the summaries alone (summary.Index),
// and only fetch IR for the modules a plan actually links. Parameters
// come from the store config, so exported summaries are comparable
// with each other and with `f3m summary` output under the same
// parameters; the summaries ingest cleanly into one summary.Index
// because submission names are unique and module texts are verified on
// submit.
func (s *Server) Summaries() ([]*summary.ModuleSummary, error) {
	type nameSrc struct{ name, src string }
	s.mu.RLock()
	mods := make([]nameSrc, 0, len(s.modules))
	for _, e := range s.modules { // lintmap:ignore collected then sorted by name below
		mods = append(mods, nameSrc{name: e.name, src: e.src})
	}
	s.mu.RUnlock()
	sort.Slice(mods, func(i, j int) bool { return mods[i].name < mods[j].name })

	sc := s.Store().Config()
	params := summary.Params{
		K:           sc.K,
		ShingleSize: sc.ShingleSize,
		Seed:        sc.Seed,
		Rows:        sc.Rows,
		Bands:       sc.Bands,
		BucketCap:   sc.BucketCap,
	}
	out := make([]*summary.ModuleSummary, 0, len(mods))
	for _, m := range mods {
		// Entries hold canonical printed sources (SubmitModule pins
		// them), so the re-parse cannot fail on live state; treat a
		// failure as the internal error it would be.
		mod, err := ir.ParseModule(m.src)
		if err != nil {
			return nil, fmt.Errorf("serve: reparse %s: %w", m.name, err)
		}
		ms := summary.Extract(mod, params, nil, s.mx)
		// The registry name is the identity clients address modules by;
		// the parsed module name is whatever the submitted text carried.
		ms.Module = m.name
		out = append(out, ms)
	}
	return out, nil
}
