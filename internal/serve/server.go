package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"f3m/internal/align"
	"f3m/internal/core"
	"f3m/internal/ir"
	"f3m/internal/obs"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrModuleExists rejects a submission under an already-live name.
	ErrModuleExists = errors.New("serve: module already submitted (remove it first)")

	// ErrNotFound marks lookups of modules or functions the server
	// does not hold.
	ErrNotFound = errors.New("serve: not found")

	// ErrNoModules rejects a merge of an empty corpus.
	ErrNoModules = errors.New("serve: no modules submitted")

	// ErrClosed rejects requests once graceful shutdown has begun.
	ErrClosed = errors.New("serve: server is shutting down")
)

// Config parameterizes a Server.
type Config struct {
	// Store shapes the similarity store (shards, fingerprint and
	// banding parameters).
	Store StoreConfig

	// Strategy, Threshold, K, Workers, MergeWorkers and Check are the
	// pipeline parameters applied by every Merge, exactly as the
	// equivalent one-shot core.Config would be built by cmd/f3m.
	Strategy     core.Strategy
	Threshold    float64
	K            int
	Workers      int
	MergeWorkers int
	Check        core.CheckMode

	// SnapshotPath is the default snapshot file used by the snapshot
	// and restore endpoints when the request does not name one.
	SnapshotPath string

	// EnableShutdown allows the POST /v1/shutdown endpoint. The CLI
	// daemon enables it; embedded test servers may prefer to disable
	// remote shutdown and call Close directly.
	EnableShutdown bool

	// Metrics receives request- and merge-level counters; nil disables
	// metric collection (NewServer does not allocate a registry on its
	// own, mirroring core.Config).
	Metrics *obs.Metrics

	// Tracer, when set, records one span per request plus the pipeline
	// spans of each merge.
	Tracer *obs.Tracer
}

// DefaultConfig returns the serving defaults: F3M-static ranking with
// the strategy-default threshold, sequential pipeline stages, checks
// off, shutdown endpoint enabled.
func DefaultConfig() Config {
	return Config{Strategy: core.F3MStatic, Threshold: -1, EnableShutdown: true}
}

// moduleEntry is one live submission: the canonical printed source the
// merge stage re-parses from, plus the store records of its indexed
// functions.
type moduleEntry struct {
	name string
	src  string
	cost int
	recs []*FuncRecord
}

// ModuleInfo describes one live module to API clients.
type ModuleInfo struct {
	// Name is the submission name (unique across live modules).
	Name string `json:"name"`

	// Funcs lists the indexed (mergeable) function names in module
	// order.
	Funcs []string `json:"funcs"`

	// SizeCost is the size-model cost of the module (core.ModuleCost).
	SizeCost int `json:"size_cost"`
}

// MergeSummary is the schedule-independent result of one Merge, as
// returned by the merge and report endpoints.
type MergeSummary struct {
	// Epoch is the store epoch the merged corpus was snapshotted at.
	Epoch uint64 `json:"epoch"`

	// Modules and NumFuncs size the merged corpus.
	Modules  int `json:"modules"`
	NumFuncs int `json:"num_funcs"`

	// Strategy echoes the ranking strategy name.
	Strategy string `json:"strategy"`

	// Attempts and Merges count ranked pairs and committed merges.
	Attempts int `json:"attempts"`
	Merges   int `json:"merges"`

	// SizeBefore/SizeAfter/Reduction are the size-model outcome.
	SizeBefore int     `json:"size_before"`
	SizeAfter  int     `json:"size_after"`
	Reduction  float64 `json:"reduction"`

	// Threshold, K and Bands record the effective parameters.
	Threshold float64 `json:"threshold"`
	K         int     `json:"k"`
	Bands     int     `json:"bands"`

	// Diagnostics counts findings of the configured check mode.
	Diagnostics int `json:"diagnostics"`

	// ReportKey is the SHA-256 of the canonical report rendering
	// (CanonicalReport): two merges over the same module set produce
	// the same key, whatever the worker counts or traffic history —
	// the service's byte-identity contract with the one-shot pipeline.
	ReportKey string `json:"report_key"`
}

// PairInfo is one ranked pair of the last merge report.
type PairInfo struct {
	// A and B name the pair (B empty when ranking found no candidate).
	A string `json:"a"`
	B string `json:"b,omitempty"`

	// Similarity is the fingerprint similarity of the pair.
	Similarity float64 `json:"similarity"`

	// Attempted and Profitable record the funnel outcome.
	Attempted  bool `json:"attempted"`
	Profitable bool `json:"profitable"`

	// Saving is the committed size-model saving (0 unless profitable).
	Saving int `json:"saving"`
}

// Server is the merge-as-a-service daemon state: the similarity store,
// the live module registry, the last merge result and the lifecycle
// flags. All exported methods are safe for concurrent use.
type Server struct {
	cfg Config
	mx  *obs.Metrics

	// store is swapped wholesale by Restore; loads are atomic so
	// queries racing a restore see either the old or the new index,
	// never a torn one.
	store atomic.Pointer[Store]

	mu      sync.RWMutex
	modules map[string]*moduleEntry

	// mergeMu serializes merges (one authoritative merge at a time;
	// queries and submissions proceed concurrently).
	mergeMu    sync.Mutex
	alignCache *align.Cache

	// last merge state, guarded by mu.
	lastSummary *MergeSummary
	lastPairs   []PairInfo
	lastDiags   string
	lastMerged  string

	merges atomic.Int64

	closed   atomic.Bool
	inflight sync.WaitGroup

	shutdownOnce sync.Once
	shutdownCh   chan struct{}
}

// NewServer returns a ready (not yet listening) server.
func NewServer(cfg Config) *Server {
	s := &Server{
		cfg:        cfg,
		mx:         cfg.Metrics,
		modules:    make(map[string]*moduleEntry),
		alignCache: align.NewCache(0),
		shutdownCh: make(chan struct{}),
	}
	s.store.Store(NewStore(cfg.Store))
	return s
}

// Store exposes the underlying similarity store (read-mostly; used by
// tests and embedders). The pointer is only replaced by Restore, so
// callers may hold it across several reads at the cost of possibly
// observing pre-restore state.
func (s *Server) Store() *Store { return s.store.Load() }

// ShutdownRequested is closed when a client calls the shutdown
// endpoint; the daemon loop selects on it next to OS signals.
func (s *Server) ShutdownRequested() <-chan struct{} { return s.shutdownCh }

// requestShutdown trips ShutdownRequested (idempotent).
func (s *Server) requestShutdown() {
	s.shutdownOnce.Do(func() { close(s.shutdownCh) })
}

// Close begins graceful shutdown: new requests are refused with 503
// while every in-flight request — including a running merge — drains.
// Returns ctx.Err if draining outlives the context.
func (s *Server) Close(ctx context.Context) error {
	s.closed.Store(true)
	s.requestShutdown()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// begin registers an in-flight request, refusing once shutdown began.
// Callers must pair a nil error with a deferred s.inflight.Done().
func (s *Server) begin() error {
	if s.closed.Load() {
		return ErrClosed
	}
	s.inflight.Add(1)
	// Re-check after registering so a concurrent Close cannot miss us:
	// either it saw our Add and waits, or we see closed and back out.
	if s.closed.Load() {
		s.inflight.Done()
		return ErrClosed
	}
	return nil
}

// mergeable mirrors the pipeline's candidate filter: definitions only,
// no variadics.
func mergeable(f *ir.Function) bool {
	return !f.IsDecl() && !f.Sig.Variadic
}

// SubmitModule parses, verifies, canonicalizes and indexes a module
// under the given name. The returned info lists the indexed functions.
// Fails with ErrModuleExists when the name is live.
func (s *Server) SubmitModule(name, src string) (ModuleInfo, error) {
	if name == "" {
		return ModuleInfo{}, fmt.Errorf("serve: empty module name")
	}
	mod, err := ir.ParseModule(src)
	if err != nil {
		return ModuleInfo{}, err
	}
	if err := ir.VerifyModule(mod); err != nil {
		return ModuleInfo{}, err
	}
	// Canonical source: the merge stage re-parses this, and snapshots
	// record it, so formatting quirks of the submitted text never leak
	// into downstream state.
	canon := ir.ModuleString(mod)

	// Fingerprint outside the registry lock (pure function work).
	type fp struct {
		fn  string
		sig []uint32
	}
	var fps []fp
	for _, f := range mod.Funcs {
		if mergeable(f) {
			fps = append(fps, fp{fn: f.Name(), sig: s.Store().Fingerprint(f)})
		}
	}

	entry := &moduleEntry{name: name, src: canon, cost: core.ModuleCost(mod)}
	info := ModuleInfo{Name: name, SizeCost: entry.cost}

	s.mu.Lock()
	if _, dup := s.modules[name]; dup {
		s.mu.Unlock()
		return ModuleInfo{}, ErrModuleExists
	}
	for _, p := range fps {
		rec := s.Store().Insert(name, p.fn, p.sig)
		entry.recs = append(entry.recs, rec)
		info.Funcs = append(info.Funcs, p.fn)
	}
	s.modules[name] = entry
	nmod := len(s.modules)
	s.mu.Unlock()

	s.mx.Counter("serve.modules_submitted").Inc()
	s.mx.Counter("serve.funcs_indexed").Add(int64(len(entry.recs)))
	s.mx.Gauge("serve.modules").Set(float64(nmod))
	s.publishFuncGauge()
	return info, nil
}

// RemoveModule unindexes every function of the named module and drops
// it from the registry.
func (s *Server) RemoveModule(name string) error {
	s.mu.Lock()
	entry, ok := s.modules[name]
	if ok {
		delete(s.modules, name)
	}
	nmod := len(s.modules)
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: module %q", ErrNotFound, name)
	}
	for _, rec := range entry.recs {
		s.Store().Remove(rec)
	}
	s.mx.Counter("serve.modules_removed").Inc()
	s.mx.Gauge("serve.modules").Set(float64(nmod))
	s.publishFuncGauge()
	return nil
}

// publishFuncGauge refreshes the indexed-function gauge.
func (s *Server) publishFuncGauge() {
	if s.mx == nil {
		return
	}
	s.mx.Gauge("serve.funcs").Set(float64(s.Store().Stats().Funcs))
}

// Modules lists the live modules sorted by name.
func (s *Server) Modules() []ModuleInfo {
	s.mu.RLock()
	out := make([]ModuleInfo, 0, len(s.modules))
	for _, e := range s.modules { // lintmap:ignore collected then sorted by name below
		out = append(out, s.infoLocked(e))
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// infoLocked renders one entry (caller holds mu).
func (s *Server) infoLocked(e *moduleEntry) ModuleInfo {
	info := ModuleInfo{Name: e.name, SizeCost: e.cost}
	for _, r := range e.recs {
		info.Funcs = append(info.Funcs, r.Func)
	}
	return info
}

// Module returns one live module's info.
func (s *Server) Module(name string) (ModuleInfo, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.modules[name]
	if !ok {
		return ModuleInfo{}, fmt.Errorf("%w: module %q", ErrNotFound, name)
	}
	return s.infoLocked(e), nil
}

// QueryStored finds near-duplicates of an already-indexed function,
// excluding the function itself.
func (s *Server) QueryStored(module, fn string, minSim float64, k int) ([]Match, error) {
	s.mu.RLock()
	e, ok := s.modules[module]
	var rec *FuncRecord
	if ok {
		for _, r := range e.recs {
			if r.Func == fn {
				rec = r
				break
			}
		}
	}
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: module %q", ErrNotFound, module)
	}
	if rec == nil {
		return nil, fmt.Errorf("%w: function %q in module %q", ErrNotFound, fn, module)
	}
	return s.Store().Query(rec.Sig, minSim, k, rec.ID), nil
}

// QueryIR finds near-duplicates of a function inside a submitted-inline
// module text that is never stored: the probe is parsed, verified,
// fingerprinted with the same stable encoding, and matched against the
// live index. fn selects the probe function; empty fn is allowed when
// the module defines exactly one mergeable function.
func (s *Server) QueryIR(src, fn string, minSim float64, k int) ([]Match, error) {
	mod, err := ir.ParseModule(src)
	if err != nil {
		return nil, err
	}
	if err := ir.VerifyModule(mod); err != nil {
		return nil, err
	}
	var probe *ir.Function
	if fn == "" {
		for _, f := range mod.Funcs {
			if !mergeable(f) {
				continue
			}
			if probe != nil {
				return nil, fmt.Errorf("serve: module defines several functions; name one with \"func\"")
			}
			probe = f
		}
	} else {
		probe = mod.Func(fn)
	}
	if probe == nil || !mergeable(probe) {
		return nil, fmt.Errorf("%w: no mergeable probe function %q", ErrNotFound, fn)
	}
	return s.Store().Query(s.Store().Fingerprint(probe), minSim, k, -1), nil
}

// Merge links a name-ordered snapshot of the live modules and runs the
// configured merging pipeline over it, exactly as a one-shot `f3m` run
// over the same files would. The validated alignment cache persists
// across merges, so repeat merges after incremental submissions reuse
// prior alignments; the cache is outcome-neutral by construction
// (exact, revalidated on every hit), which is what keeps the summary's
// ReportKey — and the underlying report — byte-identical to the
// one-shot pipeline regardless of service history.
func (s *Server) Merge() (MergeSummary, error) {
	s.mergeMu.Lock()
	defer s.mergeMu.Unlock()

	// Snapshot the corpus in deterministic (name) order. Entries are
	// immutable once submitted, so only the map read needs the lock.
	s.mu.RLock()
	epoch := s.Store().Epoch()
	names := make([]string, 0, len(s.modules))
	for n := range s.modules { // lintmap:ignore collected then sorted just below
		names = append(names, n)
	}
	sort.Strings(names)
	srcs := make([]string, len(names))
	for i, n := range names {
		srcs[i] = s.modules[n].src
	}
	s.mu.RUnlock()
	if len(srcs) == 0 {
		return MergeSummary{}, ErrNoModules
	}

	// Re-parse every module fresh so type-context state from earlier
	// merges can never leak into instruction encodings (dense type IDs
	// follow interning order; a fresh parse per merge pins them to the
	// module texts alone — the same IDs the one-shot run assigns).
	mods := make([]*ir.Module, len(srcs))
	for i, src := range srcs {
		m, err := ir.ParseModule(src)
		if err != nil {
			return MergeSummary{}, fmt.Errorf("serve: reparse %s: %w", names[i], err)
		}
		mods[i] = m
	}
	linked, err := ir.LinkModules("service", mods...)
	if err != nil {
		return MergeSummary{}, fmt.Errorf("serve: link: %w", err)
	}

	cfg := core.DefaultConfig(s.cfg.Strategy)
	// A zero Threshold in a hand-built Config means "strategy default"
	// (matching DefaultConfig); an explicit 0 threshold is spelled -1
	// resolving to 0 under F3M-static anyway.
	cfg.Threshold = s.cfg.Threshold
	if s.cfg.Threshold == 0 {
		cfg.Threshold = -1
	}
	cfg.K = s.cfg.K
	cfg.Workers = s.cfg.Workers
	cfg.MergeWorkers = s.cfg.MergeWorkers
	cfg.Check = s.cfg.Check
	cfg.Metrics = s.mx
	cfg.Tracer = s.cfg.Tracer
	cfg.MergeOpts.AlignCache = s.alignCache

	rep, err := core.Run(linked, cfg)
	if err != nil {
		return MergeSummary{}, err
	}
	if err := ir.VerifyModule(linked); err != nil {
		return MergeSummary{}, fmt.Errorf("serve: merged module invalid: %w", err)
	}

	canon := CanonicalReport(rep)
	sum := sha256.Sum256([]byte(canon))
	summary := MergeSummary{
		Epoch:       epoch,
		Modules:     len(srcs),
		NumFuncs:    rep.NumFuncs,
		Strategy:    rep.Strategy.String(),
		Attempts:    rep.Attempts,
		Merges:      rep.Merges,
		SizeBefore:  rep.SizeBefore,
		SizeAfter:   rep.SizeAfter,
		Reduction:   rep.Reduction(),
		Threshold:   rep.Threshold,
		K:           rep.K,
		Bands:       rep.Bands,
		Diagnostics: len(rep.Diagnostics),
		ReportKey:   hex.EncodeToString(sum[:]),
	}
	pairs := make([]PairInfo, 0, len(rep.Pairs))
	for _, p := range rep.Pairs {
		pairs = append(pairs, PairInfo{
			A: p.A, B: p.B, Similarity: p.Similarity,
			Attempted: p.Attempted, Profitable: p.Profitable, Saving: p.Saving,
		})
	}
	var diags strings.Builder
	if len(rep.Diagnostics) > 0 {
		_ = rep.Diagnostics.Render(&diags)
	}

	s.mu.Lock()
	s.lastSummary = &summary
	s.lastPairs = pairs
	s.lastDiags = diags.String()
	s.lastMerged = ir.ModuleString(linked)
	s.mu.Unlock()

	s.merges.Add(1)
	s.mx.Counter("serve.merges").Inc()
	return summary, nil
}

// LastMerge returns the most recent merge summary, its pair log and
// the rendered diagnostics; ok is false before the first merge.
func (s *Server) LastMerge() (sum MergeSummary, pairs []PairInfo, diags string, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.lastSummary == nil {
		return MergeSummary{}, nil, "", false
	}
	return *s.lastSummary, s.lastPairs, s.lastDiags, true
}

// MergedIR returns the textual IR of the last merged module; ok is
// false before the first merge.
func (s *Server) MergedIR() (string, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lastMerged, s.lastMerged != ""
}

// Health is the healthz payload.
type Health struct {
	// Status is "ok" while the server accepts requests.
	Status string `json:"status"`

	// Modules and Funcs count live state; Epoch is the store epoch and
	// Merges the number of completed merges.
	Modules int    `json:"modules"`
	Funcs   int    `json:"funcs"`
	Epoch   uint64 `json:"epoch"`
	Merges  int64  `json:"merges"`
}

// Healthz reports liveness and coarse state counters.
func (s *Server) Healthz() Health {
	s.mu.RLock()
	nmod := len(s.modules)
	s.mu.RUnlock()
	st := s.Store().Stats()
	return Health{
		Status:  "ok",
		Modules: nmod,
		Funcs:   st.Funcs,
		Epoch:   st.Epoch,
		Merges:  s.merges.Load(),
	}
}

// CanonicalReport renders every schedule-independent field of a report
// — strategy, corpus size, funnel totals, effective parameters, LSH
// counters, the full pair log and the canonically rendered diagnostics
// — into one string. Wall clocks are excluded. Two runs over the same
// module set must render identically for any Workers/MergeWorkers
// setting and any service history; the load tests and the smoke gate
// hold the service to exactly this.
func CanonicalReport(rep *core.Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "strategy=%v funcs=%d attempts=%d merges=%d size=%d->%d\n",
		rep.Strategy, rep.NumFuncs, rep.Attempts, rep.Merges, rep.SizeBefore, rep.SizeAfter)
	fmt.Fprintf(&sb, "t=%v b=%d k=%d lsh=%+v\n", rep.Threshold, rep.Bands, rep.K, rep.LSHStats)
	for _, p := range rep.Pairs {
		fmt.Fprintf(&sb, "pair %s + %s sim=%v attempted=%v profitable=%v saving=%d\n",
			p.A, p.B, p.Similarity, p.Attempted, p.Profitable, p.Saving)
	}
	_ = rep.Diagnostics.Render(&sb)
	return sb.String()
}
