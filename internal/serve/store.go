package serve

import (
	"sort"
	"sync"
	"sync/atomic"

	"f3m/internal/fingerprint"
	"f3m/internal/ir"
	"f3m/internal/lsh"
)

// StoreConfig fixes the similarity store's shape: the shard count and
// the fingerprint/banding parameters shared by every function it will
// ever hold (fingerprints from different parameter sets are not
// comparable, so these are immutable for the store's lifetime and are
// recorded in snapshots).
type StoreConfig struct {
	// Shards is the number of independently locked index shards.
	// Zero means DefaultShards.
	Shards int

	// K is the MinHash fingerprint size (0 = 200, the paper default).
	K int

	// ShingleSize is the encoding window (0 = 2).
	ShingleSize int

	// Seed selects the MinHash hash family (0 = the pipeline default).
	Seed uint64

	// Rows and Bands are the LSH banding shape (0 = r=2, b=K/r).
	Rows, Bands int

	// BucketCap caps per-bucket comparisons per query; 0 = the LSH
	// default, negative = unlimited.
	BucketCap int
}

// DefaultShards is the shard count used when StoreConfig.Shards is 0.
const DefaultShards = 8

// withDefaults resolves zero fields to their defaults.
func (c StoreConfig) withDefaults() StoreConfig {
	if c.Shards <= 0 {
		c.Shards = DefaultShards
	}
	if c.K == 0 {
		c.K = 200
	}
	if c.ShingleSize == 0 {
		c.ShingleSize = 2
	}
	if c.Seed == 0 {
		c.Seed = 0xF3F3F3F3
	}
	if c.Rows == 0 {
		c.Rows = 2
	}
	if c.Bands == 0 {
		c.Bands = c.K / c.Rows
	}
	return c
}

// FuncRecord is one indexed function: its global id, owning module,
// function name and MinHash signature (over the stable encoding).
type FuncRecord struct {
	ID           int64
	Module, Func string
	Sig          fingerprint.MinHash
}

// Match is one query result.
type Match struct {
	// Module and Func name the matching indexed function.
	Module string `json:"module"`
	Func   string `json:"func"`

	// Similarity is the MinHash Jaccard estimate against the probe.
	Similarity float64 `json:"similarity"`
}

// StoreStats is a point-in-time aggregate over all shards.
type StoreStats struct {
	// Funcs is the number of live indexed functions.
	Funcs int

	// Epoch is the mutation counter (see Store.Epoch).
	Epoch uint64

	// LSH sums the per-shard index counters.
	LSH lsh.IndexStats
}

// shard is one lock domain: an LSH index plus the records inserted
// into it, keyed by shard-local id. Writers (insert, remove) hold mu
// exclusively; readers query through lsh.PeekCandidates, which is
// documented safe for any number of concurrent calls as long as no
// mutation runs — exactly what the RLock guarantees.
type shard struct {
	mu   sync.RWMutex
	ix   *lsh.Index
	recs map[int64]*FuncRecord
}

// Store is the sharded, concurrently readable similarity store: the
// long-lived "LSH database" the serving layer exposes. Function ids are
// allocated from one atomic counter; id i lives in shard i%S under
// shard-local id i/S, so each shard's dense LSH id space stays compact.
//
// Concurrency contract: Query may run from any number of goroutines
// concurrently with itself and with Insert/Remove (per-shard RWMutexes
// serialize conflicting access; non-conflicting shards proceed in
// parallel). Cross-shard queries are not a consistent snapshot — a
// concurrent insert may be visible in one shard and not yet in another
// — which is the documented eventual-consistency model of the service.
type Store struct {
	cfg    StoreConfig
	mh     *fingerprint.Config
	shards []*shard
	nextID atomic.Int64
	epoch  atomic.Uint64
}

// NewStore returns an empty store with the given configuration
// (zero fields resolve to defaults).
func NewStore(cfg StoreConfig) *Store {
	cfg = cfg.withDefaults()
	s := &Store{
		cfg: cfg,
		mh:  (&fingerprint.Config{K: cfg.K, ShingleSize: cfg.ShingleSize, Seed: cfg.Seed}).Prepare(),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.shards = append(s.shards, &shard{
			ix:   lsh.NewIndex(lsh.Params{Rows: cfg.Rows, Bands: cfg.Bands, BucketCap: cfg.BucketCap}),
			recs: make(map[int64]*FuncRecord),
		})
	}
	return s
}

// Config returns the resolved store configuration.
func (s *Store) Config() StoreConfig { return s.cfg }

// Fingerprint computes f's MinHash signature over the stable
// (context-independent) instruction encoding. Pure; needs no lock.
func (s *Store) Fingerprint(f *ir.Function) fingerprint.MinHash {
	return s.mh.New(fingerprint.EncodeFuncStable(f))
}

// shardOf maps a global id to its shard and shard-local id.
func (s *Store) shardOf(id int64) (*shard, int64) {
	n := int64(len(s.shards))
	return s.shards[id%n], id / n
}

// Insert indexes sig under a freshly allocated id and returns the
// record. Safe for concurrent use.
func (s *Store) Insert(module, fn string, sig fingerprint.MinHash) *FuncRecord {
	return s.insertAt(s.nextID.Add(1)-1, module, fn, sig)
}

// insertAt indexes sig under an explicit global id — the restore path,
// which replays a snapshot's records in ascending id order so shard
// state is rebuilt deterministically. Callers other than restore must
// go through Insert.
func (s *Store) insertAt(id int64, module, fn string, sig fingerprint.MinHash) *FuncRecord {
	rec := &FuncRecord{ID: id, Module: module, Func: fn, Sig: sig}
	sh, local := s.shardOf(id)
	sh.mu.Lock()
	sh.ix.Insert(int(local), sig)
	sh.recs[local] = rec
	sh.mu.Unlock()
	s.epoch.Add(1)
	return rec
}

// Remove unindexes a previously inserted record. Safe for concurrent
// use; removing a record twice is a no-op for the index but must be
// avoided (the LSH index removes by id+signature).
func (s *Store) Remove(rec *FuncRecord) {
	sh, local := s.shardOf(rec.ID)
	sh.mu.Lock()
	if _, live := sh.recs[local]; live {
		sh.ix.Remove(int(local), rec.Sig)
		delete(sh.recs, local)
	}
	sh.mu.Unlock()
	s.epoch.Add(1)
}

// Query returns up to k indexed functions whose signature shares at
// least one LSH bucket with sig and whose similarity reaches minSim,
// ordered by similarity (descending) with ties broken by module then
// function name, so results do not depend on insertion order.
// excludeID removes one record (typically the probe itself) from the
// results; pass a negative id to exclude nothing. k <= 0 means
// unlimited. Safe for any number of concurrent callers.
func (s *Store) Query(sig fingerprint.MinHash, minSim float64, k int, excludeID int64) []Match {
	var out []Match
	for _, sh := range s.shards {
		sh.mu.RLock()
		accept := func(local int) bool {
			rec := sh.recs[int64(local)]
			return rec != nil && rec.ID != excludeID
		}
		// Per-shard k: the global cut happens after the sort below.
		cands := sh.ix.PeekCandidates(-1, sig, minSim, accept, k)
		for _, c := range cands {
			rec := sh.recs[int64(c.ID)]
			if rec == nil {
				continue
			}
			out = append(out, Match{Module: rec.Module, Func: rec.Func, Similarity: c.Similarity})
		}
		sh.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Similarity != b.Similarity {
			return a.Similarity > b.Similarity
		}
		if a.Module != b.Module {
			return a.Module < b.Module
		}
		return a.Func < b.Func
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Epoch returns the store's mutation counter: it increments on every
// insert and removal, so two equal epochs observed around a read prove
// the read saw a quiescent store. Advisory — cross-shard reads are
// still only eventually consistent while mutations are in flight.
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// Stats aggregates live-function counts and LSH counters across
// shards. It takes each shard's read lock in turn, so the totals are
// per-shard consistent but not a cross-shard snapshot.
func (s *Store) Stats() StoreStats {
	var st StoreStats
	st.Epoch = s.Epoch()
	for _, sh := range s.shards {
		sh.mu.RLock()
		st.Funcs += len(sh.recs)
		ls := sh.ix.Stats()
		sh.mu.RUnlock()
		st.LSH.Inserted += ls.Inserted
		st.LSH.BucketsUsed += ls.BucketsUsed
		if ls.MaxBucketLoad > st.LSH.MaxBucketLoad {
			st.LSH.MaxBucketLoad = ls.MaxBucketLoad
		}
		st.LSH.Comparisons += ls.Comparisons
		st.LSH.CapSkips += ls.CapSkips
		st.LSH.CandidatesFound += ls.CandidatesFound
	}
	return st
}
