// Package serve turns the one-shot merging pipeline into a long-lived
// merge-as-a-service daemon: a sharded, concurrently readable
// similarity store over the LSH index plus an HTTP/JSON API (stdlib
// only) for streaming module submissions, removals, near-duplicate
// queries, incremental re-merges and index snapshot/restore.
//
// The layering is deliberate:
//
//   - Store (store.go) is the concurrent substrate: function
//     fingerprints and per-shard lsh.Index instances behind per-shard
//     RWMutexes. Readers use the index's read-only PeekCandidates
//     entry point, so any number of queries proceed in parallel with
//     each other; inserts and removals take one shard's write lock.
//     Fingerprints use the context-independent stable encoding
//     (fingerprint.EncodeFuncStable) so modules parsed at different
//     times — or restored from a snapshot written by an earlier
//     process — stay comparable.
//   - Server (server.go) owns the module registry, the merge state and
//     the lifecycle: submissions are verified, canonicalized and
//     fingerprinted into the store; Merge links a name-ordered
//     snapshot of the live modules and replays the authoritative
//     core.Run pipeline over it, reusing the validated alignment
//     cache across merges so repeat merges get cheaper while reports
//     stay byte-identical to a one-shot run over the same module set
//     (see DESIGN.md "Serving").
//   - The HTTP layer (http.go) maps the API onto Server methods, with
//     per-endpoint obs counters, the serve.requests/serve.latency_ms
//     aggregates, request spans, and graceful-shutdown draining: once
//     Close begins, new requests get 503 while in-flight ones —
//     including a running merge — complete.
//
// Snapshots (snapshot.go) are a versioned, CRC-guarded, deterministic
// binary encoding of the server state; SERVING.md documents the format
// and every endpoint. SelfCheck (smoke.go) drives a real loopback
// server through every route and doubles as the docs-drift gate.
package serve
