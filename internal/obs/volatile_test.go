package obs

import (
	"strings"
	"testing"
)

// TestVolatileCounterExcludedFromDeterministicExport: schedule-
// dependent counters (speculation work, cache hits) must vanish from
// Snapshot(false) and WriteJSON but stay visible — marked — in the
// text export and the full snapshot.
func TestVolatileCounterExcludedFromDeterministicExport(t *testing.T) {
	m := NewMetrics()
	m.Counter("merge.incompatible").Add(3)
	m.VolatileCounter("merge.speculated").Add(99)

	det := m.Snapshot(false)
	if _, ok := det.Counters["merge.speculated"]; ok {
		t.Error("volatile counter leaked into the deterministic snapshot")
	}
	if det.Counters["merge.incompatible"] != 3 {
		t.Error("plain counter missing from the deterministic snapshot")
	}

	full := m.Snapshot(true)
	if full.Counters["merge.speculated"] != 99 {
		t.Error("volatile counter missing from the full snapshot")
	}

	var js strings.Builder
	if err := m.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(js.String(), "merge.speculated") {
		t.Error("volatile counter leaked into WriteJSON")
	}

	var txt strings.Builder
	if err := m.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "merge.speculated") {
		t.Error("volatile counter missing from WriteText")
	}
	line := ""
	for _, l := range strings.Split(txt.String(), "\n") {
		if strings.Contains(l, "merge.speculated") {
			line = l
		}
	}
	if !strings.Contains(line, "(volatile)") {
		t.Errorf("volatile counter line %q lacks the (volatile) mark", line)
	}
}

// TestVolatileCounterFixedByFirstCreator: like VolatileGauge, the
// volatility of a counter name is decided by whichever lookup creates
// it; later lookups of either flavor share the same handle.
func TestVolatileCounterFixedByFirstCreator(t *testing.T) {
	m := NewMetrics()
	a := m.VolatileCounter("x")
	b := m.Counter("x")
	if a != b {
		t.Fatal("same name returned distinct counters")
	}
	a.Add(2)
	if _, ok := m.Snapshot(false).Counters["x"]; ok {
		t.Error("name created volatile became deterministic via later Counter lookup")
	}

	m2 := NewMetrics()
	c := m2.Counter("y")
	if d := m2.VolatileCounter("y"); c != d {
		t.Fatal("same name returned distinct counters")
	}
	if v, ok := m2.Snapshot(false).Counters["y"]; !ok || v != 0 {
		t.Error("name created deterministic became volatile via later VolatileCounter lookup")
	}
}

// TestVolatileCounterNilSafety mirrors the registry-wide nil contract.
func TestVolatileCounterNilSafety(t *testing.T) {
	var m *Metrics
	c := m.VolatileCounter("anything")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil handle accumulated a value")
	}
}
