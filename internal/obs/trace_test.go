package obs

import (
	"strings"
	"testing"
)

// TestNilTracerIsNoop: the disabled tracer and every span chained off
// it must be callable and inert.
func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	sp := tr.StartSpan("run")
	child := sp.Child("stage")
	child.SetAttr("k", "v")
	child.End()
	sp.End()
	if tr.NumSpans() != 0 {
		t.Errorf("nil tracer recorded %d spans", tr.NumSpans())
	}
	var sb strings.Builder
	if err := tr.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "disabled") {
		t.Errorf("nil tracer text = %q", sb.String())
	}
}

// TestSpanNesting checks depth propagation, attributes and rendering.
func TestSpanNesting(t *testing.T) {
	tr := NewTracer()
	run := tr.StartSpan("run")
	pre := run.Child("preprocess")
	fp := pre.Child("fingerprint")
	fp.End()
	pre.End()
	at := run.Child("attempt")
	at.SetAttr("a", "foo")
	at.SetAttr("saving", 7)
	at.End()
	run.End()

	if got := tr.NumSpans(); got != 4 {
		t.Fatalf("NumSpans = %d, want 4", got)
	}
	var sb strings.Builder
	if err := tr.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"run", "preprocess", "fingerprint", "attempt", "a=foo", "saving=7"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace text missing %q:\n%s", want, out)
		}
	}
	// fingerprint is depth 2: three levels of indent (depth+1).
	if !strings.Contains(out, "      fingerprint") {
		t.Errorf("fingerprint not indented to depth 2:\n%s", out)
	}
	if strings.Contains(out, "unfinished") {
		t.Errorf("all spans ended, none should be unfinished:\n%s", out)
	}
}

// TestOpenSpanRenders: an un-ended span must render as unfinished
// rather than panic or report a bogus duration.
func TestOpenSpanRenders(t *testing.T) {
	tr := NewTracer()
	tr.StartSpan("open")
	var sb strings.Builder
	if err := tr.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "unfinished") {
		t.Errorf("open span not marked unfinished:\n%s", sb.String())
	}
}

// TestDoubleEndKeepsFirst: ending a span twice must not move its end.
func TestDoubleEndKeepsFirst(t *testing.T) {
	tr := NewTracer()
	sp := tr.StartSpan("s")
	sp.End()
	end1 := tr.spans[0].end
	sp.End()
	if tr.spans[0].end != end1 {
		t.Error("second End moved the span end time")
	}
}
