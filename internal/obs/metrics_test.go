package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestNilRegistryIsNoop: every handle chained off a nil *Metrics must
// be callable and inert — this is the disabled-observability contract
// the pipeline's hot path relies on.
func TestNilRegistryIsNoop(t *testing.T) {
	var m *Metrics
	m.Counter("x").Add(5)
	m.Counter("x").Inc()
	m.Gauge("g").Set(1)
	m.VolatileGauge("v").Add(2)
	m.Histogram("h", []float64{1, 2}).Observe(1.5)
	if got := m.CounterValue("x"); got != 0 {
		t.Errorf("nil registry counter = %d, want 0", got)
	}
	if got := m.GaugeValue("g"); got != 0 {
		t.Errorf("nil registry gauge = %v, want 0", got)
	}
	if s := m.Snapshot(true); s.Counters != nil || s.Gauges != nil || s.Histograms != nil {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	if m.String() != "{}" {
		t.Errorf("nil registry String() = %q, want {}", m.String())
	}
	var sb strings.Builder
	if err := m.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "disabled") {
		t.Errorf("nil registry text = %q", sb.String())
	}
}

// TestCounterGaugeBasics pins handle identity and read-back semantics.
func TestCounterGaugeBasics(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("funnel.committed")
	c.Add(2)
	c.Inc()
	if m.Counter("funnel.committed") != c {
		t.Error("Counter lookup did not return the same handle")
	}
	if got := m.CounterValue("funnel.committed"); got != 3 {
		t.Errorf("counter = %d, want 3", got)
	}
	if got := m.CounterValue("absent"); got != 0 {
		t.Errorf("absent counter = %d, want 0", got)
	}

	g := m.Gauge("core.threshold")
	g.Set(0.25)
	g.Add(0.25)
	if got := m.GaugeValue("core.threshold"); got != 0.5 {
		t.Errorf("gauge = %v, want 0.5", got)
	}
}

// TestHistogramBuckets checks bucket edges: values equal to a bound
// land in that bound's bucket, larger values overflow to +Inf.
func TestHistogramBuckets(t *testing.T) {
	m := NewMetrics()
	h := m.Histogram("align.score", []float64{0.25, 0.5, 0.75})
	for _, v := range []float64{0.1, 0.25, 0.3, 0.75, 0.9, 2} {
		h.Observe(v)
	}
	s := m.Snapshot(false)
	hs := s.Histograms["align.score"]
	want := []int64{2, 1, 1, 2}
	for i, w := range want {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (all: %v)", i, hs.Counts[i], w, hs.Counts)
		}
	}
	if hs.Count != 6 {
		t.Errorf("count = %d, want 6", hs.Count)
	}
	if hs.Sum != 0.1+0.25+0.3+0.75+0.9+2 {
		t.Errorf("sum = %v", hs.Sum)
	}
}

// TestVolatileExcludedFromJSON: volatile gauges appear in the full
// snapshot and text export but never in the deterministic JSON.
func TestVolatileExcludedFromJSON(t *testing.T) {
	m := NewMetrics()
	m.Gauge("size.before").Set(100)
	m.VolatileGauge("time.total_ns").Set(12345)

	det := m.Snapshot(false)
	if _, ok := det.Gauges["time.total_ns"]; ok {
		t.Error("volatile gauge leaked into deterministic snapshot")
	}
	if _, ok := det.Gauges["size.before"]; !ok {
		t.Error("non-volatile gauge missing from deterministic snapshot")
	}
	full := m.Snapshot(true)
	if _, ok := full.Gauges["time.total_ns"]; !ok {
		t.Error("volatile gauge missing from full snapshot")
	}

	var sb strings.Builder
	if err := m.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "time.total_ns") {
		t.Error("volatile gauge leaked into WriteJSON output")
	}
}

// TestConcurrentUpdatesAggregate drives one counter and one histogram
// from many goroutines; integer totals must be schedule-independent.
// Run under -race by scripts/check.sh.
func TestConcurrentUpdatesAggregate(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("funnel.compared")
	h := m.Histogram("fingerprint.encoded_len", []float64{8, 64})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(float64(i % 100))
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	// Sum of exact integers is order-independent in float64.
	wantSum := float64(workers) * float64(per/100) * (99 * 100 / 2)
	if got := h.Sum(); got != wantSum {
		t.Errorf("histogram sum = %v, want %v", got, wantSum)
	}
}

// TestHistogramBoundsFixedByFirstCreation: a second Histogram call
// with different bounds returns the original handle unchanged.
func TestHistogramBoundsFixedByFirstCreation(t *testing.T) {
	m := NewMetrics()
	h1 := m.Histogram("h", []float64{1, 2})
	h2 := m.Histogram("h", []float64{10})
	if h1 != h2 {
		t.Error("expected the same handle for the same name")
	}
	if len(h1.bounds) != 2 {
		t.Errorf("bounds changed: %v", h1.bounds)
	}
}
