package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Canonical names of the candidate-funnel counters, in pipeline order.
// Each stage counts items surviving to that point of the merge
// pipeline: functions fingerprinted, signatures inserted into the LSH
// index, fingerprint comparisons performed, candidates at or above the
// similarity threshold, pairs reaching alignment, profitable merges,
// and merges actually committed to the module.
const (
	FunnelFingerprinted  = "funnel.fingerprinted"
	FunnelBucketed       = "funnel.bucketed"
	FunnelCompared       = "funnel.compared"
	FunnelAboveThreshold = "funnel.above_threshold"
	FunnelAligned        = "funnel.aligned"
	FunnelProfitable     = "funnel.profitable"
	FunnelCommitted      = "funnel.committed"
)

// FunnelStages lists the funnel counter names in pipeline order, for
// renderers that want to draw the funnel top to bottom.
var FunnelStages = []string{
	FunnelFingerprinted,
	FunnelBucketed,
	FunnelCompared,
	FunnelAboveThreshold,
	FunnelAligned,
	FunnelProfitable,
	FunnelCommitted,
}

// Metrics is a registry of named counters, gauges and histograms.
// A nil *Metrics is the disabled registry: every lookup returns a nil
// handle whose methods are no-ops, so instrumentation sites pay one
// nil check and zero allocations when observability is off.
//
// Handle lookups (Counter, Gauge, Histogram) are get-or-create and
// safe for concurrent use; the returned handles update atomically.
// Integer counters and histogram bucket counts aggregate
// order-independently, which is what keeps the deterministic export
// (WriteJSON) byte-identical across worker schedules.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewMetrics returns an empty, enabled registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed. Returns
// nil (a no-op handle) when m is nil.
func (m *Metrics) Counter(name string) *Counter {
	return m.counter(name, false)
}

// VolatileCounter is Counter for counts that legitimately differ
// between runs or configurations — speculative work performed, cache
// hits, requeues: anything whose value depends on goroutine scheduling.
// Volatile counters are excluded from the deterministic JSON export
// (WriteJSON) and shown only by WriteText and String, mirroring
// VolatileGauge. The volatility of a name is fixed by whichever call
// creates it first.
func (m *Metrics) VolatileCounter(name string) *Counter {
	return m.counter(name, true)
}

func (m *Metrics) counter(name string, volatile bool) *Counter {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{volatile: volatile}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed. Returns nil (a
// no-op handle) when m is nil.
func (m *Metrics) Gauge(name string) *Gauge {
	return m.gauge(name, false)
}

// VolatileGauge is Gauge for values that legitimately differ between
// runs or configurations — wall-clock times, worker counts, pool
// utilization. Volatile metrics are excluded from the deterministic
// JSON export (WriteJSON) and shown only by WriteText and String.
// The volatility of a name is fixed by whichever call creates it
// first.
func (m *Metrics) VolatileGauge(name string) *Gauge {
	return m.gauge(name, true)
}

func (m *Metrics) gauge(name string, volatile bool) *Gauge {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{volatile: volatile}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// upper bucket bounds (ascending; an implicit +Inf bucket is always
// appended). The bounds of a name are fixed by whichever call creates
// it first. Returns nil (a no-op handle) when m is nil.
func (m *Metrics) Histogram(name string, bounds []float64) *Histogram {
	return m.histogram(name, bounds, false)
}

// VolatileHistogram is Histogram for distributions that legitimately
// differ between runs — latencies and other wall-clock measurements.
// Volatile histograms are excluded from the deterministic JSON export
// (WriteJSON) and shown only by WriteText and String, mirroring
// VolatileCounter and VolatileGauge. The volatility of a name is fixed
// by whichever call creates it first.
func (m *Metrics) VolatileHistogram(name string, bounds []float64) *Histogram {
	return m.histogram(name, bounds, true)
}

func (m *Metrics) histogram(name string, bounds []float64, volatile bool) *Histogram {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[name]
	if !ok {
		h = &Histogram{
			bounds:   append([]float64(nil), bounds...),
			counts:   make([]atomic.Int64, len(bounds)+1),
			volatile: volatile,
		}
		m.histograms[name] = h
	}
	return h
}

// CounterValue reads the named counter, 0 when absent or m is nil.
func (m *Metrics) CounterValue(name string) int64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	c := m.counters[name]
	m.mu.Unlock()
	return c.Value()
}

// GaugeValue reads the named gauge, 0 when absent or m is nil.
func (m *Metrics) GaugeValue(name string) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	g := m.gauges[name]
	m.mu.Unlock()
	return g.Value()
}

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use; a nil *Counter is a no-op handle.
type Counter struct {
	v        atomic.Int64
	volatile bool
}

// Add increments the counter by d. No-op on a nil handle.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one. No-op on a nil handle.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter; 0 on a nil handle.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float metric (last write wins; Add accumulates).
// A nil *Gauge is a no-op handle.
type Gauge struct {
	bits     atomic.Uint64
	volatile bool
}

// Set stores v. No-op on a nil handle.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds v to the gauge (used by worker pools summing
// per-worker contributions). No-op on a nil handle.
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Value reads the gauge; 0 on a nil handle.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets: counts[i] is the
// number of observations v <= bounds[i], and the final bucket catches
// everything larger. A nil *Histogram is a no-op handle.
//
// Bucket counts are integer atomics and aggregate
// schedule-independently. Sum is a float accumulator: observations
// recorded from parallel code must be integer-valued (exactly
// representable) for the deterministic export to stay byte-identical;
// fractional values (e.g. alignment scores) must be recorded from
// sequential code. The pipeline follows that rule.
type Histogram struct {
	bounds   []float64
	counts   []atomic.Int64 // len(bounds)+1; last bucket is +Inf
	count    atomic.Int64
	sum      Gauge
	volatile bool
}

// Observe records one value. No-op on a nil handle.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count is the total number of observations; 0 on a nil handle.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum is the running total of observed values; 0 on a nil handle.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}
