package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Snapshot is a point-in-time copy of a registry, the unit all
// exporters serialize. Map keys are metric names; encoding/json sorts
// them, so the serialized forms are canonical.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// HistogramSnapshot is the exported state of one histogram: Counts[i]
// holds observations <= Bounds[i], with a final overflow bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the registry. Volatile metrics (wall-clock times,
// worker counts, utilization gauges; speculation and cache counters)
// are included only when includeVolatile is set; leaving them out
// makes the snapshot deterministic for a given workload and
// configuration, independent of scheduling. A nil registry snapshots
// as empty.
func (m *Metrics) Snapshot(includeVolatile bool) Snapshot {
	var s Snapshot
	if m == nil {
		return s
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for name, c := range m.counters {
		if c.volatile && !includeVolatile {
			continue
		}
		if s.Counters == nil {
			s.Counters = make(map[string]int64, len(m.counters))
		}
		s.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		if g.volatile && !includeVolatile {
			continue
		}
		if s.Gauges == nil {
			s.Gauges = make(map[string]float64, len(m.gauges))
		}
		s.Gauges[name] = g.Value()
	}
	for name, h := range m.histograms {
		if h.volatile && !includeVolatile {
			continue
		}
		if s.Histograms == nil {
			s.Histograms = make(map[string]HistogramSnapshot, len(m.histograms))
		}
		hs := HistogramSnapshot{
			Bounds: append([]float64(nil), h.bounds...),
			Counts: make([]int64, len(h.counts)),
			Count:  h.Count(),
			Sum:    h.Sum(),
		}
		for i := range h.counts {
			hs.Counts[i] = h.counts[i].Load()
		}
		s.Histograms[name] = hs
	}
	return s
}

// WriteJSON emits the machine-diffable export: the non-volatile
// snapshot as indented JSON with sorted keys and a trailing newline.
// For a fixed workload and configuration the output is byte-identical
// at every Workers setting — bench harnesses diff it directly.
func (m *Metrics) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(m.Snapshot(false), "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// String renders the full snapshot (volatile metrics included) as
// compact JSON. It satisfies the expvar.Var interface, so an enabled
// registry can be published in-process with
// expvar.Publish("f3m", metrics). A nil registry prints "{}".
func (m *Metrics) String() string {
	data, err := json.Marshal(m.Snapshot(true))
	if err != nil {
		return "{}"
	}
	return string(data)
}

// WriteText renders a human-readable summary of every metric,
// volatile ones marked. Histograms print one bucket per line.
func (m *Metrics) WriteText(w io.Writer) error {
	if m == nil {
		_, err := fmt.Fprintln(w, "metrics: disabled")
		return err
	}
	s := m.Snapshot(true)

	m.mu.Lock()
	volatileNames := make(map[string]bool)
	for name, g := range m.gauges {
		if g.volatile {
			volatileNames[name] = true
		}
	}
	for name, c := range m.counters {
		if c.volatile {
			volatileNames[name] = true
		}
	}
	for name, h := range m.histograms {
		if h.volatile {
			volatileNames[name] = true
		}
	}
	m.mu.Unlock()

	var b strings.Builder
	if len(s.Counters) > 0 {
		b.WriteString("counters:\n")
		for _, name := range sortedKeys(s.Counters) {
			mark := ""
			if volatileNames[name] {
				mark = "  (volatile)"
			}
			fmt.Fprintf(&b, "  %-32s %d%s\n", name, s.Counters[name], mark)
		}
	}
	if len(s.Gauges) > 0 {
		b.WriteString("gauges:\n")
		for _, name := range sortedKeys(s.Gauges) {
			mark := ""
			if volatileNames[name] {
				mark = "  (volatile)"
			}
			fmt.Fprintf(&b, "  %-32s %s%s\n", name, formatFloat(s.Gauges[name]), mark)
		}
	}
	if len(s.Histograms) > 0 {
		b.WriteString("histograms:\n")
		for _, name := range sortedKeys(s.Histograms) {
			h := s.Histograms[name]
			mark := ""
			if volatileNames[name] {
				mark = "  (volatile)"
			}
			fmt.Fprintf(&b, "  %-32s count=%d sum=%s%s\n", name, h.Count, formatFloat(h.Sum), mark)
			for i, c := range h.Counts {
				bound := "+Inf"
				if i < len(h.Bounds) {
					bound = "<=" + formatFloat(h.Bounds[i])
				}
				fmt.Fprintf(&b, "    %-10s %d\n", bound, c)
			}
		}
	}
	if b.Len() == 0 {
		b.WriteString("metrics: empty\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteFunnel renders the candidate-funnel counters in pipeline order,
// skipping stages never recorded (e.g. LSH stages under HyFM). The
// committed line equals core's Report.Merges by construction.
func (m *Metrics) WriteFunnel(w io.Writer) error {
	if m == nil {
		_, err := fmt.Fprintln(w, "candidate funnel: disabled")
		return err
	}
	var b strings.Builder
	b.WriteString("candidate funnel:\n")
	present := 0
	m.mu.Lock()
	counters := make(map[string]int64, len(FunnelStages))
	for _, name := range FunnelStages {
		if c, ok := m.counters[name]; ok {
			counters[name] = c.Value()
			present++
		}
	}
	m.mu.Unlock()
	for _, name := range FunnelStages {
		v, ok := counters[name]
		if !ok {
			continue
		}
		stage := strings.TrimPrefix(name, "funnel.")
		fmt.Fprintf(&b, "  %-18s %d\n", stage, v)
	}
	if present == 0 {
		b.WriteString("  (no funnel counters recorded)\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat prints integers without a decimal point and everything
// else with %g, keeping the text export stable and readable.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// sortedKeys returns the sorted key set of a string-keyed map.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
