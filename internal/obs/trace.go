package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer records a tree of timed spans — one per pipeline stage and
// one per merge attempt. A nil *Tracer is the disabled tracer:
// StartSpan returns a nil *Span whose methods are all no-ops, so the
// hot path pays a single nil check when tracing is off.
//
// Spans nest through Span.Child, and span recording is
// mutex-protected, so stage-level spans may be started and ended from
// different goroutines; the pipeline only creates spans from
// sequential code.
type Tracer struct {
	mu    sync.Mutex
	base  time.Time
	spans []spanRecord
}

// spanRecord is one started (and possibly ended) span, in start order.
type spanRecord struct {
	name  string
	depth int
	start time.Duration // offset from Tracer start
	end   time.Duration // -1 while the span is open
	attrs []spanAttr
}

// spanAttr is one key=value annotation, formatted at SetAttr time.
type spanAttr struct {
	key, val string
}

// NewTracer returns an enabled tracer whose span offsets are relative
// to now.
func NewTracer() *Tracer {
	return &Tracer{base: time.Now()}
}

// Enabled reports whether the tracer records spans (i.e. is non-nil).
func (t *Tracer) Enabled() bool { return t != nil }

// StartSpan opens a root-level span. Returns a nil (no-op) span when
// the tracer is disabled.
func (t *Tracer) StartSpan(name string) *Span {
	return t.startSpan(name, 0)
}

func (t *Tracer) startSpan(name string, depth int) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	idx := len(t.spans)
	t.spans = append(t.spans, spanRecord{
		name:  name,
		depth: depth,
		start: time.Since(t.base),
		end:   -1,
	})
	t.mu.Unlock()
	return &Span{t: t, idx: idx, depth: depth}
}

// Span is one live (or ended) span handle. A nil *Span is the no-op
// handle returned by a disabled tracer.
type Span struct {
	t     *Tracer
	idx   int
	depth int
}

// Child opens a span nested under s. On a nil handle it returns nil,
// so whole instrumentation subtrees disappear when tracing is off.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.startSpan(name, s.depth+1)
}

// SetAttr annotates the span with a key=value pair (value formatted
// with fmt.Sprint). No-op on a nil handle.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	rec := &s.t.spans[s.idx]
	rec.attrs = append(rec.attrs, spanAttr{key: key, val: fmt.Sprint(value)})
	s.t.mu.Unlock()
}

// End closes the span. No-op on a nil handle; ending twice keeps the
// first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	rec := &s.t.spans[s.idx]
	if rec.end < 0 {
		rec.end = time.Since(s.t.base)
	}
	s.t.mu.Unlock()
}

// NumSpans returns how many spans have been started; 0 when disabled.
func (t *Tracer) NumSpans() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// WriteText renders the span tree in start order, one line per span:
// indentation shows nesting, followed by the span duration, its
// [start..end] offsets from tracer start, and any attributes. Open
// spans render as "unfinished". Writing on a nil tracer emits a
// "tracing disabled" line so callers need not special-case it.
func (t *Tracer) WriteText(w io.Writer) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "trace: tracing disabled")
		return err
	}
	t.mu.Lock()
	spans := make([]spanRecord, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	if _, err := fmt.Fprintf(w, "trace: %d spans\n", len(spans)); err != nil {
		return err
	}
	for _, rec := range spans {
		for i := 0; i < rec.depth+1; i++ {
			if _, err := io.WriteString(w, "  "); err != nil {
				return err
			}
		}
		dur := "unfinished"
		endAt := "..."
		if rec.end >= 0 {
			dur = (rec.end - rec.start).Round(time.Microsecond).String()
			endAt = rec.end.Round(time.Microsecond).String()
		}
		line := fmt.Sprintf("%-24s %10s  [%v .. %v]", rec.name, dur,
			rec.start.Round(time.Microsecond), endAt)
		for _, a := range rec.attrs {
			line += fmt.Sprintf("  %s=%s", a.key, a.val)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}
