package obs

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the exporter golden files")

// goldenRegistry builds the fixed registry both exporter goldens
// serialize: one of each metric kind, including a volatile gauge and a
// volatile counter that must appear in the text export but not the
// JSON one.
func goldenRegistry() *Metrics {
	m := NewMetrics()
	m.Counter(FunnelFingerprinted).Add(12)
	m.VolatileCounter("merge.speculated").Add(7)
	m.Counter(FunnelBucketed).Add(12)
	m.Counter(FunnelCompared).Add(34)
	m.Counter(FunnelAboveThreshold).Add(10)
	m.Counter(FunnelAligned).Add(8)
	m.Counter(FunnelProfitable).Add(3)
	m.Counter(FunnelCommitted).Add(3)
	m.Counter("lsh.bucket_cap_skips").Add(5)
	m.Gauge("core.threshold").Set(0.05)
	m.Gauge("size.before").Set(400)
	m.Gauge("size.after").Set(350)
	m.VolatileGauge("time.total_ns").Set(123456789)
	h := m.Histogram("align.score", []float64{0.25, 0.5, 0.75})
	for _, v := range []float64{0.1, 0.6, 0.6, 0.8, 1} {
		h.Observe(v)
	}
	return m
}

// checkGolden compares got against the named golden file, rewriting it
// under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to create)", err)
	}
	if got != string(want) {
		t.Errorf("%s mismatch:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestTextExporterGolden pins the human-readable export byte for byte.
func TestTextExporterGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.txt", sb.String())
}

// TestJSONExporterGolden pins the machine-diffable export byte for
// byte; this is the format the determinism tests and bench harnesses
// diff across worker counts.
func TestJSONExporterGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.json", sb.String())
}

// TestFunnelGolden pins the funnel summary rendering.
func TestFunnelGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WriteFunnel(&sb); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "funnel.txt", sb.String())
}

// TestJSONDeterministicAcrossInsertionOrder: building the same logical
// registry in a different order must serialize identically.
func TestJSONDeterministicAcrossInsertionOrder(t *testing.T) {
	a := goldenRegistry()

	b := NewMetrics()
	h := b.Histogram("align.score", []float64{0.25, 0.5, 0.75})
	for _, v := range []float64{0.1, 0.6, 0.6, 0.8, 1} {
		h.Observe(v)
	}
	b.Gauge("size.after").Set(350)
	b.Gauge("size.before").Set(400)
	b.Gauge("core.threshold").Set(0.05)
	b.VolatileGauge("time.total_ns").Set(99)     // differs; must not matter
	b.VolatileCounter("merge.speculated").Add(1) // differs; must not matter
	b.Counter("lsh.bucket_cap_skips").Add(5)
	for name, n := range map[string]int64{
		FunnelCommitted: 3, FunnelProfitable: 3, FunnelAligned: 8,
		FunnelAboveThreshold: 10, FunnelCompared: 34,
		FunnelBucketed: 12, FunnelFingerprinted: 12,
	} {
		b.Counter(name).Add(n)
	}

	var ja, jb strings.Builder
	if err := a.WriteJSON(&ja); err != nil {
		t.Fatal(err)
	}
	if err := b.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	if ja.String() != jb.String() {
		t.Errorf("JSON differs across insertion order:\n%s\nvs\n%s", ja.String(), jb.String())
	}
}
