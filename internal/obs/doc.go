// Package obs is the pipeline observability layer: structured span
// tracing, a metrics registry of counters/gauges/histograms, and
// exporters (human-readable text, machine-diffable JSON, an in-process
// expvar-style snapshot).
//
// The package is designed around two constraints of the merge pipeline
// it instruments (internal/core):
//
//   - Disabled must be (nearly) free. Every handle — *Tracer, *Span,
//     *Metrics, *Counter, *Gauge, *Histogram — is nil-safe, so an
//     uninstrumented run pays exactly one nil check per hook and
//     allocates nothing. Instrumentation sites never need to guard
//     with `if m != nil`.
//
//   - Determinism must survive parallelism. The pipeline's contract
//     (see DESIGN.md) is that any core.Config.Workers setting produces
//     the identical Report. Metrics extend that contract: counters are
//     integer atomics whose totals are schedule-independent, histogram
//     bucket counts likewise, and anything wall-clock- or
//     configuration-dependent (stage times, pool utilization, worker
//     counts) is registered as *volatile* and excluded from the
//     deterministic JSON export. WriteJSON output is therefore
//     byte-identical for any worker count; WriteText shows everything.
//
// Naming convention: dotted lower_snake paths, `<subsystem>.<metric>`
// — e.g. "lsh.bucket_cap_skips", "funnel.committed", "align.score".
// The candidate-funnel stage names are exported as constants
// (FunnelFingerprinted .. FunnelCommitted) so producers and consumers
// (the CLI funnel summary, the Fig. 16 experiment) cannot drift apart.
package obs
