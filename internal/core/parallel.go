package core

// Parallel execution of the embarrassingly parallel pass stages. The
// paper's observation (Figures 3 and 13) is that once LSH removes the
// quadratic ranking cost, preprocessing — MinHash fingerprinting, one
// independent computation per function — dominates the merge stage.
// Both it and HyFM's baseline nearest-neighbour scan split cleanly
// across workers.
//
// The contract is strict determinism: for any Config.Workers setting
// the pass must produce the identical Report (same pairs, same merges,
// same stats; only wall-clock stage times differ). That is why commits
// are only ever applied by the sequential committer loop (speculative
// merge workers, when Config.MergeWorkers enables them, only warm the
// alignment cache — see speculate.go), the LSH build is sharded by
// band (lsh.BatchInsert), and the parallel nearest-neighbour reduction
// breaks distance ties toward the lowest index exactly as the
// sequential first-minimum scan does.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"f3m/internal/fingerprint"
	"f3m/internal/obs"
)

// resolveWorkers maps the Config.Workers knob to a pool size: 0 (or
// negative) means GOMAXPROCS, 1 forces the sequential path.
func resolveWorkers(w int) int {
	if w == 1 {
		return 1
	}
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// parallelFor runs fn(i) for every i in [0, n), distributing indices
// over workers goroutines in contiguous chunks claimed from a shared
// counter. fn must be safe to call concurrently for distinct i. With
// workers <= 1 it degenerates to a plain loop.
func parallelFor(n, workers int, fn func(i int)) {
	parallelForPool(n, workers, nil, fn)
}

// parallelForPool is parallelFor with worker-pool observability: when
// busy is non-nil, each worker adds its active wall time (in
// nanoseconds) to the gauge, so busy/(workers*stage wall clock) is the
// pool utilization. The timing is two clock reads per worker, not per
// item, and is skipped entirely when busy is nil.
func parallelForPool(n, workers int, busy *obs.Gauge, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		var t0 time.Time
		if busy != nil {
			t0 = time.Now()
		}
		for i := 0; i < n; i++ {
			fn(i)
		}
		if busy != nil {
			busy.Add(float64(time.Since(t0)))
		}
		return
	}
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			var t0 time.Time
			if busy != nil {
				t0 = time.Now()
				defer func() { busy.Add(float64(time.Since(t0))) }()
			}
			for {
				hi := int(next.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// poolRun is the instrumented entry the pipeline stages use: it runs
// fn over [0, n) like parallelFor and, when metrics are enabled,
// records the stage's pool counters — items processed (deterministic)
// plus the volatile worker count and summed busy time.
func poolRun(n, workers int, mx *obs.Metrics, stage string, fn func(i int)) {
	var busy *obs.Gauge
	if mx != nil {
		mx.Counter("pool." + stage + ".items").Add(int64(n))
		mx.VolatileGauge("pool." + stage + ".workers").Set(float64(workers))
		busy = mx.VolatileGauge("pool." + stage + ".busy_ns")
	}
	parallelForPool(n, workers, busy, fn)
}

// parallelScanMin is the population size below which the HyFM inner
// scan is not worth fanning out (goroutine startup would dominate the
// O(n) distance work). Purely a performance threshold: results are
// identical either way.
const parallelScanMin = 512

// nearestNeighbour finds, among the unmerged fingerprints, the index
// nearest to fps[i] by Manhattan distance, splitting the O(n) scan
// across workers. Each worker keeps the first minimum of its contiguous
// range; ranges are then reduced in ascending order with a strict
// less-than, so the overall winner is the first index attaining the
// minimal distance — exactly what the sequential scan selects. The
// third result counts the distance computations performed (the
// candidate-funnel "compared" stage); it depends only on the merged
// set, not the worker split.
func nearestNeighbour(fps []*fingerprint.FreqVector, i int, merged []bool, workers int) (best, bestDist int, compared int64) {
	n := len(fps)
	scan := func(lo, hi int) (int, int, int64) {
		b, bd := -1, int(^uint(0)>>1)
		cmp := int64(0)
		for j := lo; j < hi; j++ {
			if j == i || merged[j] {
				continue
			}
			cmp++
			if d := fps[i].Distance(fps[j]); d < bd {
				b, bd = j, d
			}
		}
		return b, bd, cmp
	}
	if workers <= 1 || n < parallelScanMin {
		return scan(0, n)
	}
	type hit struct {
		b, d int
		cmp  int64
	}
	hits := make([]hit, workers)
	per := (n + workers - 1) / workers
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			lo := w * per
			hi := lo + per
			if hi > n {
				hi = n
			}
			if lo > n {
				lo = n
			}
			hits[w].b, hits[w].d, hits[w].cmp = scan(lo, hi)
		}(w)
	}
	wg.Wait()
	best, bestDist = -1, int(^uint(0)>>1)
	for _, h := range hits {
		compared += h.cmp
		if h.b >= 0 && h.d < bestDist {
			best, bestDist = h.b, h.d
		}
	}
	return best, bestDist, compared
}
