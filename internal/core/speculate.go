package core

// Speculative parallel merge stage. The merge/commit loop itself must
// stay sequential — commits mutate the module and the order of commits
// is the determinism contract — but the expensive part of each
// iteration is pure: cloning the two functions, demoting them to
// phi-free form and running the Needleman–Wunsch alignments. A pool of
// speculative workers runs exactly that workload ahead of the
// committer for the top-k ranked candidates of each upcoming victim,
// against per-worker scratch modules, filling the shared alignment
// cache (align.Cache). The committer then replays the authoritative
// sequential algorithm unchanged; when its attempt aligns a pair a
// speculator already warmed, every DP is a cache hit.
//
// Why the Report cannot change: speculation results never feed the
// Report. The committer performs the same LSH queries (Query and
// BestWhereN mutate index statistics, so only the committer calls
// them; workers use the read-only PeekCandidates), the same attempts
// in the same victim order, and the same commits. The cache is exact —
// keyed by the full encoded sequence pair, validated on every hit — so
// a hit returns precisely what the committer would have computed (see
// align.Cache). The remaining sharing hazards are closed structurally:
//
//   - Module mutation: commits rewrite call sites (operand slices) and
//     thunk originals (Blocks replaced) of functions a worker may be
//     cloning. The committer takes the engine's write lock around
//     merge.Commit and the LSH removals; workers peek and clone under
//     the read lock, so every clone sees a consistent module.
//   - Type-ID determinism: encodings embed type IDs, and IDs are
//     assigned in interning order. prewarmTypes interns, for every
//     MergeWorkers setting, everything a worker could otherwise intern
//     lazily, and the committer interns each merged function's pointer
//     type inside its commit critical section — so workers never
//     allocate a type ID and encodings are identical across settings.
//   - Statistics: speculative work counts (merge.speculated,
//     merge.requeued, cache hit rates) are schedule-dependent, so they
//     are registered as volatile metrics, excluded from the
//     deterministic export.
//
// After each commit the engine invalidates speculations whose operands
// were consumed (merged away) or rewritten (call sites of the merged
// pair) and re-queues those victims in batches — the requeue channel
// is the batched "re-query after commit" path, replacing per-commit
// synchronous re-speculation. Invalidation is a performance
// optimization, not a correctness requirement: a stale speculation
// merely warms cache entries nobody will ask for.

import (
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"f3m/internal/align"
	"f3m/internal/fingerprint"
	"f3m/internal/ir"
	"f3m/internal/lsh"
	"f3m/internal/obs"
	"f3m/internal/passes"
)

const (
	// specBatch is how many victims a worker claims per scheduling
	// round; small enough that workers drain promptly on shutdown.
	specBatch = 8

	// specTopK is how many ranked candidates are pre-aligned per
	// victim. The committer attempts only the best accepted candidate,
	// but by the time it reaches a victim earlier commits may have
	// consumed the front-runners, so a small prefix is warmed.
	specTopK = 4
)

// specEngine coordinates the speculative workers with the sequential
// committer. All exported-to-pipeline methods are nil-safe, so the
// sequential path (MergeWorkers <= 1) runs with a nil engine and zero
// overhead beyond the nil checks.
type specEngine struct {
	funcs     []*ir.Function
	sigs      []fingerprint.MinHash
	byFunc    map[*ir.Function]int32
	ix        *lsh.Index
	cache     *align.Cache
	ctx       *ir.TypeContext
	minRatio  float64
	threshold float64

	// cfgAlign mirrors Options.CFGAlign: workers must warm the cache
	// with the same matcher the committer's attempts will run, or the
	// canonical block-fingerprint alignments would all miss.
	cfgAlign bool

	// mu orders module/index mutation (committer, write side) against
	// peek+clone (workers, read side).
	mu sync.RWMutex

	// merged mirrors the committer's merged[] flags for worker-side
	// filtering; stale reads only cost wasted speculation.
	merged []atomic.Bool

	// frontier is the highest victim index the committer has passed;
	// speculating at or below it is pointless.
	frontier atomic.Int64

	// cursor hands out fresh victim indices to workers.
	cursor atomic.Int64

	// specCand[v] records the candidate ID the last speculation for
	// victim v pre-aligned against (-1 when none), so invalidation can
	// tell whether a commit consumed v's predicted partner.
	specCand []atomic.Int32

	// gen[v] counts how many times victim v's speculation has been
	// invalidated. Workers snapshot it when they claim v and compare
	// before cloning: a mismatch means a commit already invalidated (and
	// re-queued) this claim, so the clone work would be thrown away —
	// the fresh requeue entry carries the new generation.
	gen []atomic.Uint32

	// queued[v] guards against duplicate requeue entries per victim.
	queued  []atomic.Bool
	requeue chan int32

	quit     chan struct{}
	wg       sync.WaitGroup
	stopOnce sync.Once

	speculated *obs.Counter
	requeued   *obs.Counter
	staleSkips *obs.Counter
	busy       *obs.Gauge
}

// specTask is one claimed unit of speculative work: a victim plus the
// invalidation generation observed at claim time.
type specTask struct {
	v   int32
	gen uint32
}

// newSpecEngine starts workers speculative goroutines over the ranked
// function set and returns the engine the committer coordinates with.
func newSpecEngine(m *ir.Module, funcs []*ir.Function, sigs []fingerprint.MinHash, ix *lsh.Index, cache *align.Cache, minRatio, threshold float64, cfgAlign bool, workers int, mx *obs.Metrics) *specEngine {
	e := &specEngine{
		funcs:     funcs,
		sigs:      sigs,
		byFunc:    make(map[*ir.Function]int32, len(funcs)),
		ix:        ix,
		cache:     cache,
		ctx:       m.Ctx,
		minRatio:  minRatio,
		threshold: threshold,
		cfgAlign:  cfgAlign,
		merged:    make([]atomic.Bool, len(funcs)),
		specCand:  make([]atomic.Int32, len(funcs)),
		gen:       make([]atomic.Uint32, len(funcs)),
		queued:    make([]atomic.Bool, len(funcs)),
		requeue:   make(chan int32, len(funcs)),
		quit:      make(chan struct{}),
	}
	for i, f := range funcs {
		e.byFunc[f] = int32(i)
	}
	for i := range e.specCand {
		e.specCand[i].Store(-1)
	}
	e.frontier.Store(-1)
	e.speculated = mx.VolatileCounter("merge.speculated")
	e.requeued = mx.VolatileCounter("merge.requeued")
	e.staleSkips = mx.VolatileCounter("merge.speculate_stale_skips")
	e.busy = mx.VolatileGauge("pool.speculate.busy_ns")
	mx.VolatileGauge("pool.speculate.workers").Set(float64(workers))
	e.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go e.worker(w)
	}
	return e
}

// stop shuts the worker pool down and waits for it; idempotent and
// nil-safe so the pipeline can defer it unconditionally.
func (e *specEngine) stop() {
	if e == nil {
		return
	}
	e.stopOnce.Do(func() {
		close(e.quit)
		e.wg.Wait()
	})
}

// lockCommit/unlockCommit bracket the committer's mutations (commit,
// call-site rewrites, LSH removals). Nil-safe.
func (e *specEngine) lockCommit() {
	if e != nil {
		e.mu.Lock()
	}
}

func (e *specEngine) unlockCommit() {
	if e != nil {
		e.mu.Unlock()
	}
}

// afterCommit is called by the committer once per committed merge, with
// the victim index a, its partner b, and the functions whose call sites
// the commit rewrote. It advances the frontier, marks the pair merged,
// and invalidates + re-queues (batched) every pending speculation whose
// operands the commit touched. Nil-safe.
func (e *specEngine) afterCommit(a, b int, touched []*ir.Function) {
	if e == nil {
		return
	}
	e.merged[a].Store(true)
	e.merged[b].Store(true)
	e.frontier.Store(int64(a))
	stale := make(map[int32]bool, 2+len(touched))
	stale[int32(a)] = true
	stale[int32(b)] = true
	for _, f := range touched {
		if id, ok := e.byFunc[f]; ok {
			stale[id] = true
		}
	}
	for v := int32(a) + 1; v < int32(len(e.funcs)); v++ {
		if e.merged[v].Load() {
			continue
		}
		c := e.specCand[v].Load()
		if !stale[v] && (c < 0 || !stale[c]) {
			continue
		}
		e.specCand[v].Store(-1)
		e.gen[v].Add(1) // outstanding claims for v are now stale
		if !e.queued[v].CompareAndSwap(false, true) {
			continue // already awaiting re-speculation
		}
		select {
		case e.requeue <- v:
			e.requeued.Inc()
		default:
			// Channel full (cannot happen while queued[] holds, but do
			// not block the committer on it).
			e.queued[v].Store(false)
		}
	}
}

// worker is one speculative goroutine: it claims batches of victims —
// invalidated re-queues first, then fresh indices — and pre-aligns each
// against its top-ranked candidates in a private scratch module. The
// scratch module and clone arena live for the worker's whole run:
// clones draw their blocks and instructions from the arena's freelists
// and return them after each attempt, and the module's name tables are
// Reset between batches, so steady-state speculation allocates almost
// nothing per attempt.
func (e *specEngine) worker(wid int) {
	defer e.wg.Done()
	scratch := ir.NewModuleInCtx("spec.w"+strconv.Itoa(wid), e.ctx)
	arena := ir.NewCloneArena()
	for {
		select {
		case <-e.quit:
			return
		default:
		}
		batch := e.nextBatch()
		if batch == nil {
			return
		}
		t0 := time.Now()
		for _, task := range batch {
			e.speculate(scratch, arena, task)
		}
		scratch.Reset()
		e.busy.Add(float64(time.Since(t0)))
	}
}

// nextBatch assembles up to specBatch victims, preferring invalidated
// re-queues over fresh cursor work, and blocks when neither is
// available. Each claim snapshots the victim's invalidation generation
// (after clearing queued[], so a concurrent invalidation either bumps
// the generation we read or lands in the requeue channel). A nil return
// means shutdown.
func (e *specEngine) nextBatch() []specTask {
	batch := make([]specTask, 0, specBatch)
	claim := func(v int32) {
		e.queued[v].Store(false)
		batch = append(batch, specTask{v: v, gen: e.gen[v].Load()})
	}
drain:
	for len(batch) < specBatch {
		select {
		case v := <-e.requeue:
			claim(v)
		default:
			break drain
		}
	}
	n := int64(len(e.funcs))
	for len(batch) < specBatch {
		v := e.cursor.Add(1) - 1
		if v >= n {
			break
		}
		batch = append(batch, specTask{v: int32(v), gen: e.gen[v].Load()})
	}
	if len(batch) > 0 {
		return batch
	}
	select {
	case v := <-e.requeue:
		claim(v)
		return batch
	case <-e.quit:
		return nil
	}
}

// speculate pre-aligns the task's victim against its current top-k
// candidates: peek the index and clone the functions under the read
// lock, then do the expensive pure work — RegToMem plus the merge
// attempt's exact alignment workload — outside it, filling the shared
// cache. A claim whose generation a commit has since invalidated is
// dropped before any cloning happens — the requeue entry that the
// invalidation enqueued carries the work instead.
func (e *specEngine) speculate(scratch *ir.Module, arena *ir.CloneArena, task specTask) {
	v := task.v
	if e.gen[v].Load() != task.gen {
		e.staleSkips.Inc()
		return
	}
	if int64(v) <= e.frontier.Load() || e.merged[v].Load() {
		return
	}
	e.mu.RLock()
	if e.merged[v].Load() {
		e.mu.RUnlock()
		return
	}
	if e.gen[v].Load() != task.gen {
		// Invalidated between the lock-free check and lock acquisition.
		e.mu.RUnlock()
		e.staleSkips.Inc()
		return
	}
	accept := func(id int) bool { return !e.merged[id].Load() }
	cands := e.ix.PeekCandidates(int(v), e.sigs[v], e.threshold, accept, specTopK)
	if len(cands) == 0 {
		e.mu.RUnlock()
		return
	}
	e.specCand[v].Store(int32(cands[0].ID))
	cv := arena.CloneFunc(scratch, e.funcs[v], scratch.UniqueFuncName("spec.v"))
	ccs := make([]*ir.Function, len(cands))
	for i, c := range cands {
		ccs[i] = arena.CloneFunc(scratch, e.funcs[c.ID], scratch.UniqueFuncName("spec.c"))
	}
	e.mu.RUnlock()

	passes.RegToMemIn(cv, arena)
	for _, cc := range ccs {
		passes.RegToMemIn(cc, arena)
		if e.cfgAlign {
			align.WarmPairCFG(e.cache, cv, cc, e.minRatio)
		} else {
			align.WarmPair(e.cache, cv, cc, e.minRatio)
		}
		scratch.RemoveFunc(cc)
		arena.Recycle(cc)
		e.speculated.Inc()
	}
	scratch.RemoveFunc(cv)
	arena.Recycle(cv)
}

// prewarmTypes interns, in one deterministic sweep, every derived type
// the speculative workers could otherwise be first to intern: the
// pointer-to-signature type of every function (EncodeInstr consults it
// for callee operands) and the pointer type of every parameter and
// instruction result in the mergeable set (RegToMem demotion allocates
// these). It runs unconditionally — for every MergeWorkers setting —
// because type IDs feed the instruction encodings and must therefore
// be assigned identically whether or not workers exist. After this
// sweep the only new types a run creates are each merged function's
// signature and its pointer, both interned by the committer inside the
// commit critical section.
func prewarmTypes(m *ir.Module, funcs []*ir.Function) {
	ctx := m.Ctx
	for _, f := range m.Funcs {
		ctx.Pointer(f.Sig)
	}
	for _, f := range funcs {
		for _, p := range f.Params {
			ctx.Pointer(p.Ty)
		}
		f.Instructions(func(in *ir.Instr) {
			if t := in.Type(); t != nil && !t.IsVoid() {
				ctx.Pointer(t)
			}
		})
	}
}

// publishCacheMetrics exports the alignment-cache counters. Hit and
// miss counts depend on how much speculative warming happened, which is
// schedule-dependent, so all four are volatile.
func publishCacheMetrics(mx *obs.Metrics, c *align.Cache) {
	if mx == nil || c == nil {
		return
	}
	st := c.Stats()
	mx.VolatileCounter("merge.cache_hit").Add(st.Hits)
	mx.VolatileCounter("merge.cache_miss").Add(st.Misses)
	mx.VolatileCounter("merge.cache_reject").Add(st.Rejects)
	mx.VolatileCounter("merge.cache_evict").Add(st.Evictions)
}
