package core

import (
	"fmt"
	"strings"
	"testing"

	"f3m/internal/analysis/summary"
	"f3m/internal/ir"
	"f3m/internal/irgen"
	"f3m/internal/merge"
	"f3m/internal/obs"
)

// splitAndIndex splits m into n separately-parsed modules, extracts a
// summary from each, and ingests them into a fresh index.
func splitAndIndex(t *testing.T, m *ir.Module, n int) ([]*ir.Module, *summary.Index) {
	t.Helper()
	parts, err := ir.SplitModule(m, n)
	if err != nil {
		t.Fatal(err)
	}
	ix := summary.NewIndex()
	for _, p := range parts {
		if err := ix.Add(summary.Extract(p, summary.Params{}, nil, nil)); err != nil {
			t.Fatal(err)
		}
	}
	return parts, ix
}

// summaryReportKey extends reportKey with the partition-independent
// cross-module accounting. CrossModulePlanned/CrossModuleMerges are
// deliberately excluded: which pairs span a module boundary is a
// property of the partitioning, not of the program, so those two are
// compared separately (fixed split, varying workers) in the
// determinism test.
func summaryReportKey(t *testing.T, sr *SummaryReport) string {
	t.Helper()
	return fmt.Sprintf("planned=%d validated=%d stale=%d missp=%d\n%s",
		sr.Planned, sr.Validated, sr.Stale, sr.Misspeculated,
		reportKey(t, sr.Report))
}

func runSummaryMerge(t *testing.T, m *ir.Module, n, workers, mergeWorkers int) (*SummaryReport, *ir.Module) {
	t.Helper()
	parts, ix := splitAndIndex(t, m, n)
	cfg := DefaultConfig(F3MStatic)
	cfg.Workers = workers
	cfg.MergeWorkers = mergeWorkers
	cfg.Metrics = obs.NewMetrics()
	sr, linked, err := RunSummaryMerge("linked", parts, ix, cfg)
	if err != nil {
		t.Fatalf("split=%d w=%d mw=%d: %v", n, workers, mergeWorkers, err)
	}
	if err := ir.VerifyModule(linked); err != nil {
		t.Fatalf("split=%d w=%d mw=%d: merged module invalid: %v", n, workers, mergeWorkers, err)
	}
	return sr, linked
}

// TestSummaryMergeDeterminism is the cross-module determinism
// contract: the same program partitioned into 2, 4 or 8 separately
// parsed modules, merged at any Workers/MergeWorkers setting, produces
// the identical report — pair log, counters, accounting, diagnostics.
func TestSummaryMergeDeterminism(t *testing.T) {
	withParallelism(t, 8)
	m := irgen.Generate(irgen.DefaultConfig(61)).Module

	var baseKey string
	var baseText string
	for _, n := range []int{2, 4, 8} {
		crossBase := -1
		for _, w := range []int{1, 2, 8} {
			sr, linked := runSummaryMerge(t, m, n, w, w)
			if sr.Misspeculated != 0 || sr.Replays != 0 {
				t.Fatalf("split=%d w=%d: misspeculation on clean inputs: %+v", n, w, sr)
			}
			if sr.Diagnostics.Count(0) != 0 {
				t.Fatalf("split=%d w=%d: diagnostics on clean inputs:\n%s", n, w, sr.Diagnostics.RenderString())
			}
			// Within one partitioning, the cross-module accounting must
			// not depend on the worker count either.
			if crossBase < 0 {
				crossBase = sr.CrossModuleMerges
				if sr.CrossModuleMerges == 0 || sr.CrossModulePlanned == 0 {
					t.Fatalf("split=%d: no cross-module pairs; test is vacuous", n)
				}
			} else if sr.CrossModuleMerges != crossBase {
				t.Errorf("split=%d w=%d: cross-module merges %d != %d", n, w, sr.CrossModuleMerges, crossBase)
			}
			key := summaryReportKey(t, sr)
			text := ir.ModuleString(linked)
			if baseKey == "" {
				baseKey, baseText = key, text
				if sr.Merges == 0 {
					t.Fatal("baseline merged nothing; test is vacuous")
				}
				continue
			}
			if key != baseKey {
				t.Errorf("report differs at split=%d w=%d:\n--- base ---\n%s\n--- got ---\n%s", n, w, baseKey, key)
			}
			if text != baseText {
				t.Errorf("merged module differs at split=%d w=%d", n, w)
			}
		}
	}
}

// TestSummaryMergeDifferential proves the point of the whole scheme:
// pairs that round-robin splitting placed in different modules cannot
// be merged by any per-module run, but the summary-driven global run
// commits them. The corpus plants two-member families — round-robin
// splitting into two modules separates every adjacent pair, so the
// per-module runs provably cannot reach the family merges the global
// plan finds.
func TestSummaryMergeDifferential(t *testing.T) {
	gcfg := irgen.DefaultConfig(61)
	gcfg.Families = 12
	gcfg.FamilySizeMin, gcfg.FamilySizeMax = 2, 2
	gcfg.Singletons = 10
	gcfg.MutationMax = 0.1
	gcfg.Callers = 5
	gcfg.ConfuserFraction = 0
	m := irgen.Generate(gcfg).Module
	parts, ix := splitAndIndex(t, m, 2)

	// Per-module baseline: the best any summary-free run can do.
	perModule := 0
	for _, p := range parts {
		// Run mutates its module; per-module runs get private copies.
		cp, err := ir.ParseModule(ir.ModuleString(p))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(F3MStatic)
		cfg.Check = CheckValidate
		rep, err := Run(cp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		perModule += rep.Merges
	}

	cfg := DefaultConfig(F3MStatic)
	cfg.Metrics = obs.NewMetrics()
	sr, linked, err := RunSummaryMerge("linked", parts, ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(linked); err != nil {
		t.Fatal(err)
	}
	if sr.CrossModuleMerges == 0 {
		t.Fatal("no cross-module merges committed")
	}
	if sr.Merges <= perModule {
		t.Errorf("summary run committed %d merges, per-module runs %d — no cross-module win", sr.Merges, perModule)
	}
	if sr.Misspeculated != 0 {
		t.Errorf("misspeculated=%d on clean inputs", sr.Misspeculated)
	}
	if got := cfg.Metrics.CounterValue("summary.validated"); got != int64(sr.Validated) {
		t.Errorf("summary.validated counter=%d, want %d", got, sr.Validated)
	}
	if sr.Validated != sr.Merges {
		t.Errorf("validated=%d != merges=%d", sr.Validated, sr.Merges)
	}
}

// TestSummaryMergeStaleSummary corrupts one summary's staleness facts
// (sequence digest, then signature hash) and proves the optimistic
// merge degrades to a skipped pair: no merge of the lying summary, no
// replay, clean diagnostics, valid module.
func TestSummaryMergeStaleSummary(t *testing.T) {
	m := irgen.Generate(irgen.DefaultConfig(61)).Module

	// Learn a committed pair from a clean run.
	cleanSr, _ := runSummaryMerge(t, m, 2, 1, 1)
	var victim string
	for _, p := range cleanSr.Pairs {
		if p.Profitable {
			victim = p.A
			break
		}
	}
	if victim == "" {
		t.Fatal("clean run committed nothing")
	}

	corruptions := []struct {
		name    string
		corrupt func(fs *summary.FuncSummary)
	}{
		{"seq_digest", func(fs *summary.FuncSummary) { fs.SeqDigest ^= 0xdead }},
		{"sig_hash", func(fs *summary.FuncSummary) { fs.SigHash ^= 0xbeef }},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			parts, ix := splitAndIndex(t, m, 2)
			found := false
			for _, ms := range ix.Modules() {
				for _, fs := range ms.Funcs {
					if fs.Name == victim {
						tc.corrupt(fs)
						found = true
					}
				}
			}
			if !found {
				t.Fatalf("victim %s not in any summary", victim)
			}
			cfg := DefaultConfig(F3MStatic)
			cfg.Metrics = obs.NewMetrics()
			sr, linked, err := RunSummaryMerge("linked", parts, ix, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := ir.VerifyModule(linked); err != nil {
				t.Fatalf("merged module invalid: %v", err)
			}
			if sr.Stale == 0 {
				t.Error("corrupted summary not detected as stale")
			}
			if sr.Misspeculated != 0 || sr.Replays != 0 {
				t.Errorf("staleness should not need a replay: %+v", sr)
			}
			if got := cfg.Metrics.CounterValue("summary.stale"); got != int64(sr.Stale) {
				t.Errorf("summary.stale counter=%d, want %d", got, sr.Stale)
			}
			if sr.Diagnostics.Count(0) != 0 {
				t.Errorf("diagnostics after stale skip:\n%s", sr.Diagnostics.RenderString())
			}
			for _, p := range sr.Pairs {
				if (p.A == victim || p.B == victim) && p.Attempted {
					t.Errorf("pair %s + %s attempted despite corrupt summary", p.A, p.B)
				}
			}
		})
	}
}

// TestSummaryMergeMisspeculation injects a fault past the staleness
// check: the summaries are honest but the merge itself is corrupted
// before commit, so only the translation validator can catch it. The
// run must detect the refuted commit, replay without the pair, and end
// with a clean report and a valid module — and summary.misspeculated
// must say it happened.
func TestSummaryMergeMisspeculation(t *testing.T) {
	m := irgen.Generate(irgen.DefaultConfig(61)).Module
	parts, ix := splitAndIndex(t, m, 2)

	orig := mergePair
	defer func() { mergePair = orig }()
	sabotaged := false
	mergePair = func(mod *ir.Module, fa, fb *ir.Function, opts merge.Options) (*merge.Result, error) {
		res, err := orig(mod, fa, fb, opts)
		if err == nil && !sabotaged && res.Profitable && len(res.Merged.Params) > 0 {
			// Swap the sides of the first select on the discriminator:
			// the merged body now computes B's value on A's path. Only
			// the validator sees it.
			fid := ir.Value(res.Merged.Params[0])
			res.Merged.Instructions(func(in *ir.Instr) {
				if !sabotaged && in.Op == ir.OpSelect && in.Operands[0] == fid {
					in.Operands[1], in.Operands[2] = in.Operands[2], in.Operands[1]
					sabotaged = true
				}
			})
		}
		return res, err
	}

	cfg := DefaultConfig(F3MStatic)
	cfg.Metrics = obs.NewMetrics()
	sr, linked, err := RunSummaryMerge("linked", parts, ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sabotaged {
		t.Fatal("sabotage never fired; test is vacuous")
	}
	if err := ir.VerifyModule(linked); err != nil {
		t.Fatalf("merged module invalid after replay: %v", err)
	}
	if sr.Misspeculated != 1 || sr.Replays != 1 {
		t.Errorf("misspeculated=%d replays=%d, want 1/1", sr.Misspeculated, sr.Replays)
	}
	if got := cfg.Metrics.CounterValue("summary.misspeculated"); got != 1 {
		t.Errorf("summary.misspeculated counter=%d, want 1", got)
	}
	// The final (replayed) report must be clean: the refuted commit was
	// rolled back with the tainted module, not shipped.
	if sr.Diagnostics.Count(0) != 0 {
		t.Errorf("diagnostics survived the replay:\n%s", sr.Diagnostics.RenderString())
	}
	if sr.Validated != sr.Merges {
		t.Errorf("validated=%d != merges=%d", sr.Validated, sr.Merges)
	}
	// The blacklisted pair appears as an unattempted outcome.
	unattempted := 0
	for _, p := range sr.Pairs {
		if !p.Attempted && p.B != "" {
			unattempted++
		}
	}
	if unattempted == 0 {
		t.Error("blacklisted pair not recorded in the final report")
	}
}

// TestSummaryMergeEmptyAndTiny covers the degenerate ends: one module,
// and modules with nothing mergeable.
func TestSummaryMergeSingleModule(t *testing.T) {
	m := irgen.Generate(irgen.DefaultConfig(61)).Module
	parts, ix := splitAndIndex(t, m, 1)
	cfg := DefaultConfig(F3MStatic)
	sr, linked, err := RunSummaryMerge("linked", parts, ix, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(linked); err != nil {
		t.Fatal(err)
	}
	if sr.CrossModulePlanned != 0 || sr.CrossModuleMerges != 0 {
		t.Errorf("cross-module accounting nonzero for one module: %+v", sr)
	}
	if sr.Merges == 0 {
		t.Error("single-module summary run merged nothing")
	}
	if !strings.Contains(linked.Name, "linked") {
		t.Errorf("linked module name %q", linked.Name)
	}
}
