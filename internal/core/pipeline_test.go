package core

import (
	"fmt"
	"testing"

	"f3m/internal/interp"
	"f3m/internal/ir"
	"f3m/internal/irgen"
)

// addDrivers appends one variadic driver per mergeable function; each
// driver calls its target with two fixed argument tuples and folds the
// results. Variadic functions are never merge candidates, so drivers
// survive the pass while their call sites get rewritten — giving the
// tests stable entry points for before/after differential checks.
func addDrivers(m *ir.Module) []string {
	c := m.Ctx
	var names []string
	for _, f := range candidates(m) {
		dn := "drv_" + f.Name()
		d := m.NewFunc(dn, c.VariadicFunc(c.I32))
		entry := d.NewBlock("entry")
		bd := ir.NewBuilder(entry)
		mk := func(salt int64) ir.Value {
			args := make([]ir.Value, len(f.Params))
			for i, p := range f.Params {
				if p.Ty.IsFloat() {
					args[i] = ir.ConstFloat(p.Ty, float64(salt)+0.5)
				} else {
					args[i] = ir.ConstInt(p.Ty, salt+int64(i))
				}
			}
			r := ir.Value(bd.Call(f, args...))
			switch rt := f.ReturnType(); {
			case rt == c.I32:
			case rt.IsFloat():
				r = bd.Cast(ir.OpFPToSI, r, c.I32)
			case rt.IsInt() && rt.Bits > 32:
				r = bd.Cast(ir.OpTrunc, r, c.I32)
			case rt.IsInt():
				r = bd.Cast(ir.OpSExt, r, c.I32)
			default:
				r = ir.ConstInt(c.I32, 0)
			}
			return r
		}
		r1 := mk(3)
		r2 := mk(11)
		sum := bd.Binary(ir.OpXor, r1, r2)
		bd.Ret(sum)
		names = append(names, dn)
	}
	return names
}

func runDriver(t *testing.T, m *ir.Module, name string) int64 {
	t.Helper()
	mach := interp.NewMachine(m)
	mach.StepLimit = 20_000_000
	out, err := mach.Call(m.Func(name))
	if err != nil {
		t.Fatalf("driver %s: %v", name, err)
	}
	return out.I
}

// checkStrategy generates a module, snapshots behavior, runs the
// strategy, and verifies semantics and structural invariants.
func checkStrategy(t *testing.T, strat Strategy, seed int64) *Report {
	t.Helper()
	cfg := irgen.DefaultConfig(seed)
	cfg.Callers = 0
	gen := irgen.Generate(cfg)
	work := gen.Module
	drivers := addDrivers(work)

	// Reference behaviour from an identical module.
	ref := irgen.Generate(cfg).Module
	addDrivers(ref)

	want := make(map[string]int64, len(drivers))
	for _, d := range drivers {
		want[d] = runDriver(t, ref, d)
	}

	rep, err := Run(work, DefaultConfig(strat))
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(work); err != nil {
		t.Fatalf("%v: module invalid after pass: %v", strat, err)
	}
	for _, d := range drivers {
		if got := runDriver(t, work, d); got != want[d] {
			t.Errorf("%v: %s = %d, want %d", strat, d, got, want[d])
		}
	}
	if rep.SizeAfter != ModuleCost(work) {
		t.Errorf("SizeAfter = %d, module cost = %d", rep.SizeAfter, ModuleCost(work))
	}
	return rep
}

func TestHyFMPreservesSemantics(t *testing.T) {
	rep := checkStrategy(t, HyFM, 101)
	if rep.Merges == 0 {
		t.Error("HyFM merged nothing on a family-rich module")
	}
	if rep.Reduction() <= 0 {
		t.Errorf("HyFM reduction = %v, want > 0", rep.Reduction())
	}
}

func TestF3MStaticPreservesSemantics(t *testing.T) {
	rep := checkStrategy(t, F3MStatic, 102)
	if rep.Merges == 0 {
		t.Error("F3M merged nothing on a family-rich module")
	}
	if rep.Reduction() <= 0 {
		t.Errorf("F3M reduction = %v, want > 0", rep.Reduction())
	}
	if rep.K != 200 || rep.Bands != 100 {
		t.Errorf("static params k=%d b=%d, want 200/100", rep.K, rep.Bands)
	}
}

func TestF3MAdaptivePreservesSemantics(t *testing.T) {
	rep := checkStrategy(t, F3MAdaptive, 103)
	if rep.Merges == 0 {
		t.Error("F3M-adapt merged nothing on a family-rich module")
	}
	// Small module: adaptive should pick the conservative threshold.
	if rep.Threshold != 0.05 {
		t.Errorf("adaptive threshold = %v, want 0.05", rep.Threshold)
	}
	if rep.Bands != 100 {
		t.Errorf("adaptive bands = %d, want 100 for small programs", rep.Bands)
	}
}

// TestF3MFindsPlantedClones: functions from the same family should
// dominate the committed pairs.
func TestF3MFindsPlantedClones(t *testing.T) {
	cfg := irgen.DefaultConfig(55)
	cfg.Families = 15
	cfg.FamilySizeMin, cfg.FamilySizeMax = 2, 2
	cfg.MutationMin, cfg.MutationMax = 0, 0.1 // near-identical clones
	cfg.Singletons = 30
	cfg.Callers = 0
	gen := irgen.Generate(cfg)

	rep, err := Run(gen.Module, DefaultConfig(F3MStatic))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Merges < 10 {
		t.Errorf("merged %d pairs, want >= 10 of 15 planted", rep.Merges)
	}
	fam := func(name string) string {
		for i := 0; i < len(name); i++ {
			if name[i] == '_' {
				return name[:i]
			}
		}
		return name
	}
	sameFamily := 0
	for _, p := range rep.Pairs {
		if p.Profitable && fam(p.A) == fam(p.B) && fam(p.A) != p.A {
			sameFamily++
		}
	}
	// Cross-family merges can be legitimately profitable (singletons
	// that happen to match), so require a clear majority rather than
	// exclusivity.
	if sameFamily*5 < rep.Merges*3 {
		t.Errorf("only %d/%d committed pairs were intra-family", sameFamily, rep.Merges)
	}
}

// TestRankingCostScaling: F3M's LSH must perform far fewer fingerprint
// comparisons than HyFM's exhaustive scan on the same population.
func TestRankingComparisonsScale(t *testing.T) {
	cfg := irgen.DefaultConfig(77)
	cfg.Families = 200
	cfg.Singletons = 500
	cfg.Callers = 0
	gen := irgen.Generate(cfg)
	n := len(candidates(gen.Module))

	rep, err := Run(gen.Module, DefaultConfig(F3MStatic))
	if err != nil {
		t.Fatal(err)
	}
	// HyFM's ranking scans all other functions for every query, so the
	// exhaustive baseline is n(n-1) fingerprint comparisons.
	exhaustive := int64(n) * int64(n-1)
	if rep.LSHStats.Comparisons >= exhaustive/3 {
		t.Errorf("LSH comparisons %d not clearly below exhaustive %d (n=%d)", rep.LSHStats.Comparisons, exhaustive, n)
	}
}

func TestReportBookkeeping(t *testing.T) {
	cfg := irgen.DefaultConfig(9)
	cfg.Callers = 0
	gen := irgen.Generate(cfg)
	rep, err := Run(gen.Module, DefaultConfig(F3MStatic))
	if err != nil {
		t.Fatal(err)
	}
	if rep.NumFuncs == 0 || len(rep.Pairs) == 0 {
		t.Fatal("empty report")
	}
	if rep.Attempts < rep.Merges {
		t.Errorf("attempts %d < merges %d", rep.Attempts, rep.Merges)
	}
	if rep.Times.Total() <= 0 {
		t.Error("no time recorded")
	}
	commits := 0
	for _, p := range rep.Pairs {
		if p.Profitable {
			commits++
		}
	}
	if commits != rep.Merges {
		t.Errorf("pair log commits %d != merges %d", commits, rep.Merges)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{HyFM: "HyFM", F3MStatic: "F3M", F3MAdaptive: "F3M-adapt"} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestHyFMvsF3MQuality(t *testing.T) {
	// On the same module, F3M's committed merges should achieve at
	// least comparable total saving to HyFM (the paper's Fig. 11 shows
	// F3M matching or beating HyFM).
	mkModule := func() *ir.Module {
		cfg := irgen.DefaultConfig(31)
		cfg.Families = 30
		cfg.Singletons = 40
		cfg.Callers = 0
		return irgen.Generate(cfg).Module
	}
	repH, err := Run(mkModule(), DefaultConfig(HyFM))
	if err != nil {
		t.Fatal(err)
	}
	repF, err := Run(mkModule(), DefaultConfig(F3MStatic))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("HyFM: merges=%d reduction=%.3f; F3M: merges=%d reduction=%.3f",
		repH.Merges, repH.Reduction(), repF.Merges, repF.Reduction())
	if repF.Reduction() < repH.Reduction()*0.7 {
		t.Errorf("F3M reduction %.3f far below HyFM %.3f", repF.Reduction(), repH.Reduction())
	}
}

// TestRunIsIdempotent: a second pass over an already-merged module
// must keep the module valid and never increase its size.
func TestRunIsIdempotent(t *testing.T) {
	cfg := irgen.DefaultConfig(21)
	cfg.Callers = 0
	m := irgen.Generate(cfg).Module
	rep1, err := Run(m, DefaultConfig(F3MStatic))
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Run(m, DefaultConfig(F3MStatic))
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	if rep2.SizeAfter > rep2.SizeBefore {
		t.Errorf("second pass grew the module: %d -> %d", rep2.SizeBefore, rep2.SizeAfter)
	}
	if rep2.Merges > rep1.Merges {
		t.Errorf("second pass merged more (%d) than the first (%d)", rep2.Merges, rep1.Merges)
	}
}

// TestSeedsSweep runs the full pipeline over several seeds as a
// robustness net for generator corner cases.
func TestSeedsSweep(t *testing.T) {
	for seed := int64(200); seed < 205; seed++ {
		cfg := irgen.DefaultConfig(seed)
		cfg.Families, cfg.Singletons, cfg.Callers = 10, 10, 5
		m := irgen.Generate(cfg).Module
		rep, err := Run(m, DefaultConfig(F3MAdaptive))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := ir.VerifyModule(m); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rep.SizeAfter > rep.SizeBefore {
			t.Errorf("seed %d: module grew", seed)
		}
	}
}

// TestProfileGuidedSelection: with a hotness profile, an identical
// triplet must merge its two cold members and leave the hot one alone.
func TestProfileGuidedSelection(t *testing.T) {
	src := `
define i32 @cold1(i32 %x) {
entry:
  %a = add i32 %x, 3
  %b = mul i32 %a, 7
  %c = xor i32 %b, 11
  ret i32 %c
}
define i32 @hot(i32 %x) {
entry:
  %a = add i32 %x, 3
  %b = mul i32 %a, 7
  %c = xor i32 %b, 11
  ret i32 %c
}
define i32 @cold2(i32 %x) {
entry:
  %a = add i32 %x, 3
  %b = mul i32 %a, 7
  %c = xor i32 %b, 11
  ret i32 %c
}`
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(F3MStatic)
	cfg.Hotness = func(name string) float64 {
		if name == "hot" {
			return 1000
		}
		return 1
	}
	cfg.HotSkip = 100
	rep, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Merges != 1 {
		t.Fatalf("merges = %d, want 1", rep.Merges)
	}
	if m.Func("hot") == nil {
		t.Error("hot function was merged away despite HotSkip")
	}
	for _, p := range rep.Pairs {
		if p.Profitable && (p.A == "hot" || p.B == "hot") {
			t.Errorf("hot function participated in pair %s+%s", p.A, p.B)
		}
	}
}

func ExampleRun() {
	gen := irgen.Generate(irgen.Config{
		Seed: 1, Families: 5, FamilySizeMin: 2, FamilySizeMax: 3,
		Singletons: 5, BlocksMin: 2, BlocksMax: 4, InstrsMin: 3, InstrsMax: 8,
		MutationMin: 0, MutationMax: 0.2,
	})
	rep, _ := Run(gen.Module, DefaultConfig(F3MStatic))
	fmt.Println(rep.Merges > 0, rep.Reduction() > 0)
	// Output: true true
}
