package core

import (
	"math"
	"testing"
)

// TestReduction covers the normal ratio and the degenerate size
// accounting Reduction must tolerate (zero or negative sizes cannot
// come out of a real run, but a hand-built Report is API surface).
func TestReduction(t *testing.T) {
	cases := []struct {
		name          string
		before, after int
		want          float64
	}{
		{"normal", 100, 80, 0.2},
		{"growth", 100, 120, -0.2},
		{"no-change", 50, 50, 0},
		{"zero-before", 0, 10, 0},
		{"negative-before", -5, 10, 0},
		{"negative-after", 100, -1, 0},
		{"all-merged-away", 100, 0, 1},
	}
	for _, c := range cases {
		rep := &Report{SizeBefore: c.before, SizeAfter: c.after}
		if got := rep.Reduction(); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: Reduction() with before=%d after=%d = %v, want %v",
				c.name, c.before, c.after, got, c.want)
		}
	}
}
