package core

import (
	"testing"

	"f3m/internal/interp"
	"f3m/internal/ir"
	"f3m/internal/irgen"
	"f3m/internal/merge"
)

// TestPairwiseMergeDifferential merges random generated function pairs
// and checks, via the interpreter, that the merged function reproduces
// both originals exactly — the strongest correctness statement the
// repository makes about the code generator.
func TestPairwiseMergeDifferential(t *testing.T) {
	cfg := irgen.Config{
		Seed: 2024, Families: 6, FamilySizeMin: 2, FamilySizeMax: 3,
		Singletons: 6, BlocksMin: 2, BlocksMax: 6, InstrsMin: 3, InstrsMax: 10,
		MutationMin: 0, MutationMax: 0.6,
	}
	ref := irgen.Generate(cfg).Module
	fns := candidates(ref)
	limit := 10
	if len(fns) < limit {
		limit = len(fns)
	}

	argTuples := [][]int64{{0, 0, 0, 0}, {3, 4, 5, 6}, {-9, 2, 0, 1}, {100, -100, 50, 7}}

	for i := 0; i < limit; i++ {
		for j := i + 1; j < limit; j++ {
			// Fresh module per pair: merging mutates it.
			work := irgen.Generate(cfg).Module
			wa, wb := work.Func(fns[i].Name()), work.Func(fns[j].Name())
			res, err := merge.Pair(work, wa, wb, merge.DefaultOptions())
			if err != nil {
				continue // incompatible pair
			}
			for side := 0; side < 2; side++ {
				id := side == 0
				orig := ref.Func(fns[i].Name())
				if !id {
					orig = ref.Func(fns[j].Name())
				}
				for _, tuple := range argTuples {
					checkSame(t, ref, work, orig, res, id, tuple)
				}
			}
			merge.Discard(work, res)
		}
	}
}

// checkSame runs orig (in its module) and the merged function (in the
// work module) on one argument tuple and compares results.
func checkSame(t *testing.T, refM, workM *ir.Module, orig *ir.Function, res *merge.Result, id bool, tuple []int64) {
	t.Helper()
	mkArgs := func(f *ir.Function) []interp.Val {
		args := make([]interp.Val, len(f.Params))
		for k, p := range f.Params {
			if p.Ty.IsFloat() {
				args[k] = interp.FloatVal(p.Ty, float64(tuple[k%len(tuple)])+0.5)
			} else {
				args[k] = interp.IntVal(p.Ty, tuple[k%len(tuple)])
			}
		}
		return args
	}
	m1 := interp.NewMachine(refM)
	m1.StepLimit = 5_000_000
	want, err1 := m1.Call(orig, mkArgs(orig)...)

	worig := workM.Func(orig.Name())
	oargs := mkArgs(worig)
	margs := make([]interp.Val, len(res.Merged.Params))
	margs[0] = interp.IntVal(workM.Ctx.I1, boolToI(id))
	pm := res.ParamMapForTest(id)
	for mi := 1; mi < len(res.Merged.Params); mi++ {
		pt := res.Merged.Params[mi].Ty
		if oi, ok := pm[mi]; ok {
			margs[mi] = oargs[oi]
		} else if pt.IsFloat() {
			margs[mi] = interp.FloatVal(pt, 0)
		} else {
			margs[mi] = interp.IntVal(pt, 0)
		}
	}
	m2 := interp.NewMachine(workM)
	m2.StepLimit = 5_000_000
	got, err2 := m2.Call(res.Merged, margs...)

	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("%s (id=%v) args %v: errors differ: %v vs %v\nmerged:\n%s",
			orig.Name(), id, tuple, err1, err2, ir.FuncString(res.Merged))
	}
	if err1 == nil && (want.I != got.I || want.F != got.F) {
		t.Fatalf("%s (id=%v) args %v: want %v, got %v\nmerged:\n%s",
			orig.Name(), id, tuple, want, got, ir.FuncString(res.Merged))
	}
}

func boolToI(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
