package core

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"f3m/internal/align"
	"f3m/internal/ir"
	"f3m/internal/irgen"
	"f3m/internal/merge"
	"f3m/internal/obs"
)

// withParallelism raises GOMAXPROCS for the duration of a test so the
// pipeline's spare-CPU cap (see Config.MergeWorkers) does not silently
// skip the speculative pool on single-CPU hosts — these tests must
// exercise the engine's concurrency wherever they run.
func withParallelism(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// reportKey renders every schedule-independent field of a report into
// one comparable string: the pair log (without wall-clock durations),
// the aggregate counters, the effective parameters, the LSH statistics
// and the canonically rendered diagnostics. Two runs that differ only
// in scheduling must produce identical keys.
func reportKey(t *testing.T, rep *Report) string {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "strategy=%v funcs=%d attempts=%d merges=%d size=%d->%d\n",
		rep.Strategy, rep.NumFuncs, rep.Attempts, rep.Merges, rep.SizeBefore, rep.SizeAfter)
	fmt.Fprintf(&sb, "t=%v b=%d k=%d lsh=%+v\n", rep.Threshold, rep.Bands, rep.K, rep.LSHStats)
	for _, p := range rep.Pairs {
		fmt.Fprintf(&sb, "pair %s + %s sim=%v attempted=%v profitable=%v saving=%d\n",
			p.A, p.B, p.Similarity, p.Attempted, p.Profitable, p.Saving)
	}
	if err := rep.Diagnostics.Render(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// metricsJSON serializes the deterministic metrics export.
func metricsJSON(t *testing.T, mx *obs.Metrics) string {
	t.Helper()
	var sb strings.Builder
	if err := mx.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// detGenConfigs returns the corpora the determinism tests sweep: the
// default population plus a long-straightline variant whose blocks
// clear the banded aligner's minimum length, so the byte-identical
// contract is proven through the fast path as well as the full DP.
func detGenConfigs(seed int64) []irgen.Config {
	long := irgen.DefaultConfig(seed)
	long.Families = 8
	long.Singletons = 10
	long.BlocksMin, long.BlocksMax = 2, 4
	long.InstrsMin, long.InstrsMax = 30, 60
	long.MutationMax = 0.2
	long.Callers = 4
	return []irgen.Config{irgen.DefaultConfig(seed), long}
}

// runDetRun executes one pipeline run on a freshly generated module
// with strict checks and a metrics registry.
func runDetRun(t *testing.T, strat Strategy, gen irgen.Config, mergeWorkers int) (*Report, string) {
	t.Helper()
	m := irgen.Generate(gen).Module
	cfg := DefaultConfig(strat)
	cfg.MergeWorkers = mergeWorkers
	cfg.Check = CheckStrict
	cfg.Metrics = obs.NewMetrics()
	rep, err := Run(m, cfg)
	if err != nil {
		t.Fatalf("%v mw=%d: %v", strat, mergeWorkers, err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatalf("%v mw=%d: module invalid: %v", strat, mergeWorkers, err)
	}
	return rep, metricsJSON(t, cfg.Metrics)
}

// TestMergeWorkersDeterminism is the hard requirement of the
// speculative merge stage: the Report — pair log, counters, LSH
// statistics, strict-mode Diagnostics — and the deterministic metrics
// export must be byte-identical for every MergeWorkers setting.
func TestMergeWorkersDeterminism(t *testing.T) {
	withParallelism(t, 8)
	bandedBefore := align.BandedHits()
	for _, strat := range []Strategy{F3MStatic, F3MAdaptive} {
		for _, seed := range []int64{42, 103} {
			for gi, gen := range detGenConfigs(seed) {
				rep1, json1 := runDetRun(t, strat, gen, 1)
				key1 := reportKey(t, rep1)
				if rep1.Merges == 0 {
					t.Fatalf("%v seed %d gen %d: baseline merged nothing; test is vacuous", strat, seed, gi)
				}
				for _, mw := range []int{2, 8} {
					rep, json := runDetRun(t, strat, gen, mw)
					if key := reportKey(t, rep); key != key1 {
						t.Errorf("%v seed %d gen %d: report differs at MergeWorkers=%d:\n--- mw=1 ---\n%s\n--- mw=%d ---\n%s",
							strat, seed, gi, mw, key1, mw, key)
					}
					if json != json1 {
						t.Errorf("%v seed %d gen %d: deterministic metrics JSON differs at MergeWorkers=%d", strat, seed, gi, mw)
					}
				}
			}
		}
	}
	// The determinism contract must hold *through* the banded aligner,
	// not around it: if the fast path never fired over this corpus the
	// byte-identical comparison above proved nothing about it.
	if align.BandedHits() == bandedBefore {
		t.Error("banded fast path never engaged across the determinism corpus; banded coverage is vacuous")
	}
}

// addTupleDrivers is addDrivers over a caller-supplied salt corpus: one
// variadic driver per (candidate, salt), so the differential check
// exercises each merged function on several argument tuples.
func addTupleDrivers(m *ir.Module, salts []int64) []string {
	c := m.Ctx
	var names []string
	for _, f := range candidates(m) {
		for si, salt := range salts {
			dn := fmt.Sprintf("tdrv_%s_%d", f.Name(), si)
			d := m.NewFunc(dn, c.VariadicFunc(c.I32))
			bd := ir.NewBuilder(d.NewBlock("entry"))
			args := make([]ir.Value, len(f.Params))
			for i, p := range f.Params {
				if p.Ty.IsFloat() {
					args[i] = ir.ConstFloat(p.Ty, float64(salt)+0.5)
				} else {
					args[i] = ir.ConstInt(p.Ty, salt+int64(i))
				}
			}
			r := ir.Value(bd.Call(f, args...))
			switch rt := f.ReturnType(); {
			case rt == c.I32:
			case rt.IsFloat():
				r = bd.Cast(ir.OpFPToSI, r, c.I32)
			case rt.IsInt() && rt.Bits > 32:
				r = bd.Cast(ir.OpTrunc, r, c.I32)
			case rt.IsInt():
				r = bd.Cast(ir.OpSExt, r, c.I32)
			default:
				r = ir.ConstInt(c.I32, 0)
			}
			bd.Ret(r)
			names = append(names, dn)
		}
	}
	return names
}

// TestSpeculativeDifferential is the pipeline-level differential sweep:
// run the full pass under speculation at 1, 2 and 8 merge workers and
// check, through the interpreter, that every driver — calling the
// original functions on an argument-tuple corpus through their possibly
// rewritten call sites — still computes what the unmerged reference
// module computes.
func TestSpeculativeDifferential(t *testing.T) {
	withParallelism(t, 8)
	salts := []int64{0, 5, -7, 95}
	gcfg := irgen.DefaultConfig(7)
	gcfg.Callers = 0

	ref := irgen.Generate(gcfg).Module
	drivers := addTupleDrivers(ref, salts)
	want := make(map[string]int64, len(drivers))
	for _, d := range drivers {
		want[d] = runDriver(t, ref, d)
	}

	for _, mw := range []int{1, 2, 8} {
		work := irgen.Generate(gcfg).Module
		addTupleDrivers(work, salts)
		cfg := DefaultConfig(F3MStatic)
		cfg.MergeWorkers = mw
		cfg.Check = CheckStrict
		rep, err := Run(work, cfg)
		if err != nil {
			t.Fatalf("mw=%d: %v", mw, err)
		}
		if rep.Merges == 0 {
			t.Fatalf("mw=%d: no merges; differential is vacuous", mw)
		}
		if len(rep.Diagnostics) != 0 {
			t.Fatalf("mw=%d: strict diagnostics: %v", mw, rep.Diagnostics)
		}
		for _, d := range drivers {
			if got := runDriver(t, work, d); got != want[d] {
				t.Errorf("mw=%d: %s = %d, want %d", mw, d, got, want[d])
			}
		}
	}
}

// staleFixture builds a module with two identical mergeable functions.
func staleFixture(t *testing.T) (*ir.Module, *ir.Function, *ir.Function) {
	t.Helper()
	src := `
define i32 @left(i32 %x) {
entry:
  %a = add i32 %x, 3
  %b = mul i32 %a, 7
  %c = xor i32 %b, 11
  %d = add i32 %c, 5
  ret i32 %d
}
define i32 @right(i32 %x) {
entry:
  %a = add i32 %x, 3
  %b = mul i32 %a, 7
  %c = xor i32 %b, 11
  %d = add i32 %c, 5
  ret i32 %d
}`
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	return m, m.Func("left"), m.Func("right")
}

// TestStaleOperandRevalidation: attemptMerge must refuse a pair whose
// operand is no longer a live module member, before any alignment work.
func TestStaleOperandRevalidation(t *testing.T) {
	m, fa, fb := staleFixture(t)
	m.RemoveFunc(fb)

	cfg := DefaultConfig(F3MStatic)
	cfg.Metrics = obs.NewMetrics()
	rep := &Report{}
	ok, mergedFn, err := attemptMerge(m, fa, fb, cfg, rep, nil, 0, 1, nil, nil)
	if err != nil || ok || mergedFn != nil {
		t.Fatalf("attemptMerge on stale operand = (%v, %v, %v), want rejection", ok, mergedFn, err)
	}
	if got := cfg.Metrics.CounterValue("merge.stale_operand"); got != 1 {
		t.Errorf("merge.stale_operand = %d, want 1", got)
	}
	if rep.Merges != 0 || rep.Attempts != 1 {
		t.Errorf("report merges=%d attempts=%d, want 0/1", rep.Merges, rep.Attempts)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Errorf("module invalid after rejection: %v", err)
	}
}

// TestStaleCommitFault seeds the race the commit-time re-validation
// guards against: the merge hook consumes an operand between alignment
// and commit. The committer must detect it, discard the merged
// function, and leave the module valid.
func TestStaleCommitFault(t *testing.T) {
	m, fa, fb := staleFixture(t)

	orig := mergePair
	mergePair = func(mm *ir.Module, a, b *ir.Function, opts merge.Options) (*merge.Result, error) {
		res, err := orig(mm, a, b, opts)
		if err == nil {
			mm.RemoveFunc(b) // the seeded fault
		}
		return res, err
	}
	defer func() { mergePair = orig }()

	cfg := DefaultConfig(F3MStatic)
	cfg.Metrics = obs.NewMetrics()
	rep := &Report{}
	ok, mergedFn, err := attemptMerge(m, fa, fb, cfg, rep, nil, 0, 1, nil, nil)
	if err != nil || ok || mergedFn != nil {
		t.Fatalf("attemptMerge with consumed operand = (%v, %v, %v), want discard", ok, mergedFn, err)
	}
	if got := cfg.Metrics.CounterValue("merge.stale_commit"); got != 1 {
		t.Errorf("merge.stale_commit = %d, want 1", got)
	}
	if rep.Merges != 0 {
		t.Errorf("report shows %d merges, want 0", rep.Merges)
	}
	if m.Func("left") != fa {
		t.Error("surviving operand was disturbed")
	}
	if strings.Contains(moduleFuncNames(m), "merged.") {
		t.Error("discarded merged function still in module")
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Errorf("module invalid after discard: %v", err)
	}
}

func moduleFuncNames(m *ir.Module) string {
	var names []string
	for _, f := range m.Funcs {
		names = append(names, f.Name())
	}
	return strings.Join(names, ",")
}

// TestSpecInvalidationRequeue drives the engine's commit-invalidation
// bookkeeping deterministically (no workers): a commit must invalidate
// and re-queue exactly the pending speculations whose predicted
// candidate was consumed or whose own body was rewritten.
func TestSpecInvalidationRequeue(t *testing.T) {
	gcfg := irgen.DefaultConfig(5)
	gcfg.Callers = 0
	m := irgen.Generate(gcfg).Module
	funcs := candidates(m)
	if len(funcs) < 6 {
		t.Fatalf("fixture too small: %d candidates", len(funcs))
	}
	e := newSpecEngine(m, funcs, nil, nil, nil, 0.5, 0, false, 0, nil)
	defer e.stop()

	// Victim 3 speculated against candidate 1; victims 4 and 5 against
	// untouched partners.
	e.specCand[3].Store(1)
	e.specCand[4].Store(2)
	e.specCand[5].Store(2)

	// Commit merges (0, 1) and rewrites call sites inside funcs[4].
	e.afterCommit(0, 1, []*ir.Function{funcs[4]})

	if !e.merged[0].Load() || !e.merged[1].Load() {
		t.Error("committed pair not marked merged")
	}
	if e.frontier.Load() != 0 {
		t.Errorf("frontier = %d, want 0", e.frontier.Load())
	}
	got := map[int32]bool{}
	for len(e.requeue) > 0 {
		got[<-e.requeue] = true
	}
	// 3's candidate was consumed; 4's body was rewritten. 5's victim and
	// candidate are both untouched — its speculation stays valid.
	if !got[3] || !got[4] || len(got) != 2 {
		t.Errorf("requeued = %v, want exactly {3, 4}", got)
	}
	if e.specCand[3].Load() != -1 || e.specCand[4].Load() != -1 {
		t.Error("invalidated speculations not cleared")
	}
	if e.specCand[5].Load() != 2 {
		t.Error("valid speculation was clobbered")
	}
}

// TestCachePoisonIllFormed injects structurally broken cache entries
// into every merge attempt of a full pipeline run. Validation must
// reject each one and recompute, leaving the report byte-identical to
// a clean run and the strict checks silent.
func TestCachePoisonIllFormed(t *testing.T) {
	withParallelism(t, 8)
	cleanRep, _ := runDetRun(t, F3MStatic, irgen.DefaultConfig(42), 1)
	cleanKey := reportKey(t, cleanRep)

	m := irgen.Generate(irgen.DefaultConfig(42)).Module
	cch := align.NewCache(0)
	cfg := DefaultConfig(F3MStatic)
	cfg.Check = CheckStrict
	cfg.Metrics = obs.NewMetrics()
	cfg.MergeOpts.AlignCache = cch

	orig := mergePair
	mergePair = func(mm *ir.Module, a, b *ir.Function, opts merge.Options) (*merge.Result, error) {
		cch.CorruptNextForTest(1, true)
		return orig(mm, a, b, opts)
	}
	defer func() { mergePair = orig }()

	rep, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if key := reportKey(t, rep); key != cleanKey {
		t.Errorf("poisoned-cache report differs from clean run:\n--- clean ---\n%s\n--- poisoned ---\n%s", cleanKey, key)
	}
	if st := cch.Stats(); st.Rejects == 0 {
		t.Error("no cache rejects recorded; the fault never fired")
	}
	if len(rep.Diagnostics) != 0 {
		t.Errorf("strict diagnostics under cache poisoning: %v", rep.Diagnostics)
	}
}

// TestCachePoisonWellFormed injects legal-but-wrong (all-gap) cache
// entries, which pass validation by construction. Merge decisions may
// shift, but the merger's own operand re-verification must keep the
// module valid and semantics intact.
func TestCachePoisonWellFormed(t *testing.T) {
	withParallelism(t, 8)
	gcfg := irgen.DefaultConfig(42)
	gcfg.Callers = 0
	ref := irgen.Generate(gcfg).Module
	drivers := addDrivers(ref)
	want := make(map[string]int64, len(drivers))
	for _, d := range drivers {
		want[d] = runDriver(t, ref, d)
	}

	work := irgen.Generate(gcfg).Module
	addDrivers(work)
	cch := align.NewCache(0)
	cfg := DefaultConfig(F3MStatic)
	cfg.Check = CheckStrict
	cfg.MergeOpts.AlignCache = cch

	orig := mergePair
	mergePair = func(mm *ir.Module, a, b *ir.Function, opts merge.Options) (*merge.Result, error) {
		cch.CorruptNextForTest(1, false)
		return orig(mm, a, b, opts)
	}
	defer func() { mergePair = orig }()

	rep, err := Run(work, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diagnostics) != 0 {
		t.Errorf("strict diagnostics under well-formed poisoning: %v", rep.Diagnostics)
	}
	if err := ir.VerifyModule(work); err != nil {
		t.Fatalf("module invalid: %v", err)
	}
	for _, d := range drivers {
		if got := runDriver(t, work, d); got != want[d] {
			t.Errorf("%s = %d, want %d", d, got, want[d])
		}
	}
}

// TestSpeculationWarmsCache: with merge workers enabled on a clone-rich
// module, the committer's attempts should find pre-warmed entries — the
// whole point of the stage. Hit counts are schedule-dependent, so only
// the committer's own deterministic re-alignment hits are guaranteed;
// this asserts the cache is live and consistent rather than a specific
// speculation count.
func TestSpeculationWarmsCache(t *testing.T) {
	withParallelism(t, 8)
	m := irgen.Generate(irgen.DefaultConfig(42)).Module
	cch := align.NewCache(0)
	cfg := DefaultConfig(F3MStatic)
	cfg.MergeWorkers = 4
	cfg.Metrics = obs.NewMetrics()
	cfg.MergeOpts.AlignCache = cch
	rep, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Merges == 0 {
		t.Fatal("no merges; cache test is vacuous")
	}
	st := cch.Stats()
	if st.Hits == 0 {
		t.Errorf("cache stats %+v: no hits despite merges", st)
	}
	if st.Rejects != 0 {
		t.Errorf("cache stats %+v: spurious validation rejects", st)
	}
}

// TestSpeculateStaleSkip pins the cheap-out added for invalidated
// claims: a task whose generation snapshot no longer matches the
// victim's current generation must be dropped before any cloning or
// alignment work, counted under merge.speculate_stale_skips.
func TestSpeculateStaleSkip(t *testing.T) {
	m, fa, fb := staleFixture(t)
	mx := obs.NewMetrics()
	e := newSpecEngine(m, []*ir.Function{fa, fb}, nil, nil, nil, 0, 0.5, false, 0, mx)
	defer e.stop()

	scratch := ir.NewModuleInCtx("spec.test", m.Ctx)
	arena := ir.NewCloneArena()

	// A commit invalidated victim 0 after the claim snapshotted gen 0.
	e.gen[0].Store(1)
	e.speculate(scratch, arena, specTask{v: 0, gen: 0})

	if got := mx.CounterValue("merge.speculate_stale_skips"); got != 1 {
		t.Errorf("merge.speculate_stale_skips = %d, want 1", got)
	}
	if got := mx.CounterValue("merge.speculated"); got != 0 {
		t.Errorf("merge.speculated = %d, want 0: stale task must not reach the alignment stage", got)
	}

	// A current-generation claim for an already-merged victim is not a
	// stale skip — that cheap-out predates the generation check and has
	// its own accounting (none).
	e.merged[1].Store(true)
	e.speculate(scratch, arena, specTask{v: 1, gen: 0})
	if got := mx.CounterValue("merge.speculate_stale_skips"); got != 1 {
		t.Errorf("merged-victim skip miscounted as stale: counter = %d, want 1", got)
	}
}
