package core

import (
	"fmt"

	"f3m/internal/analysis"
	"f3m/internal/analysis/tv"
	"f3m/internal/ir"
)

// CheckMode selects how much static analysis a run performs.
type CheckMode int

// Check modes, from cheapest to most thorough.
const (
	// CheckOff runs no analysis.
	CheckOff CheckMode = iota

	// CheckFast audits every committed merge as it lands: thunk
	// signatures and argument forwarding, discriminator channeling,
	// call-site rewrites and dangling references. Cost is proportional
	// to merges, not module size.
	CheckFast

	// CheckStrict is CheckFast plus full-module analysis before and
	// after the pipeline (strict IR verification, module symbol and
	// reference checks) and a lint sweep over the surviving merged
	// functions.
	CheckStrict

	// CheckValidate is CheckStrict plus per-commit translation
	// validation: every committed merge is specialized at each
	// discriminator value and proven bisimilar to a snapshot of the
	// original it replaced (checker `tv`). The most thorough — and most
	// expensive — tier.
	CheckValidate
)

// String renders the mode as accepted by ParseCheckMode.
func (c CheckMode) String() string {
	switch c {
	case CheckOff:
		return "off"
	case CheckFast:
		return "fast"
	case CheckStrict:
		return "strict"
	case CheckValidate:
		return "validate"
	}
	return fmt.Sprintf("checkmode(%d)", int(c))
}

// ParseCheckMode parses the -check flag values off, fast, strict and
// validate.
func ParseCheckMode(s string) (CheckMode, error) {
	switch s {
	case "off":
		return CheckOff, nil
	case "fast":
		return CheckFast, nil
	case "strict":
		return CheckStrict, nil
	case "validate":
		return CheckValidate, nil
	}
	return CheckOff, fmt.Errorf("core: unknown check mode %q (want off, fast, strict or validate)", s)
}

// startChecks builds the analysis engine for the configured mode and,
// under CheckStrict, runs the pre-pipeline module verification. Returns
// nil under CheckOff; the pipeline's per-commit hook is then one nil
// check.
func startChecks(m *ir.Module, cfg Config) *analysis.Engine {
	if cfg.Check == CheckOff {
		return nil
	}
	eng := analysis.NewEngine(cfg.Metrics)
	if cfg.Check >= CheckValidate {
		eng.Validator = tv.NewValidator(cfg.Metrics)
	}
	if cfg.Check >= CheckStrict {
		eng.StrictModule(m)
	}
	return eng
}

// finishChecks runs the post-pipeline analyses (strict mode only: the
// lint sweep over surviving merged functions, then full re-verification
// of the mutated module) and publishes the accumulated diagnostics on
// the report.
func finishChecks(m *ir.Module, cfg Config, eng *analysis.Engine, rep *Report) {
	if eng == nil {
		return
	}
	if cfg.Check >= CheckStrict {
		eng.LintMerged(m)
		eng.StrictModule(m)
	}
	rep.Diagnostics = eng.All
}
