package core

import (
	"testing"

	"f3m/internal/analysis"
	"f3m/internal/ir"
	"f3m/internal/irgen"
	"f3m/internal/merge"
)

func TestParseCheckMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want CheckMode
	}{
		{"off", CheckOff}, {"fast", CheckFast}, {"strict", CheckStrict},
		{"validate", CheckValidate},
	} {
		got, err := ParseCheckMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseCheckMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if got.String() != tc.in {
			t.Errorf("CheckMode(%v).String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseCheckMode("pedantic"); err == nil {
		t.Error("ParseCheckMode accepted an unknown mode")
	}
}

// TestStrictCheckCleanAndDeterministic is the property test of the
// determinism contract extended to diagnostics: random irgen modules
// pass -check=strict before and after the full pipeline, and the
// rendered diagnostic stream is byte-identical for Workers 1, 2 and 8
// (here: identically empty, plus identical merge/attempt counts as a
// proxy for the pipeline itself being unperturbed by the checkers).
func TestStrictCheckCleanAndDeterministic(t *testing.T) {
	for _, strat := range []Strategy{HyFM, F3MStatic} {
		for _, seed := range []int64{13, 47} {
			type outcome struct {
				render   string
				merges   int
				attempts int
			}
			var base *outcome
			for _, workers := range []int{1, 2, 8} {
				gcfg := irgen.DefaultConfig(seed)
				m := irgen.Generate(gcfg).Module

				cfg := DefaultConfig(strat)
				cfg.Workers = workers
				cfg.Check = CheckStrict
				rep, err := Run(m, cfg)
				if err != nil {
					t.Fatalf("%v seed %d workers %d: %v", strat, seed, workers, err)
				}
				got := &outcome{rep.Diagnostics.RenderString(), rep.Merges, rep.Attempts}
				if got.render != "" {
					t.Fatalf("%v seed %d workers %d: strict check found diagnostics:\n%s",
						strat, seed, workers, got.render)
				}
				if rep.Merges == 0 {
					t.Fatalf("%v seed %d: no merges; the audit path was never exercised", strat, seed)
				}
				if base == nil {
					base = got
					continue
				}
				if *got != *base {
					t.Errorf("%v seed %d workers %d: outcome %+v differs from workers=1 %+v",
						strat, seed, workers, got, base)
				}
			}
		}
	}
}

// TestValidateCheckCleanAndDeterministic extends the determinism
// property test to the translation validator: random irgen modules run
// -check=validate at Workers/MergeWorkers 1, 2 and 8, every committed
// merge must validate clean, and the rendered diagnostic stream plus
// merge/attempt counts must be identical at every parallelism setting.
func TestValidateCheckCleanAndDeterministic(t *testing.T) {
	for _, strat := range []Strategy{HyFM, F3MStatic} {
		for _, seed := range []int64{13, 47} {
			type outcome struct {
				render   string
				merges   int
				attempts int
			}
			var base *outcome
			for _, workers := range []int{1, 2, 8} {
				gcfg := irgen.DefaultConfig(seed)
				m := irgen.Generate(gcfg).Module

				cfg := DefaultConfig(strat)
				cfg.Workers = workers
				cfg.MergeWorkers = workers
				cfg.Check = CheckValidate
				rep, err := Run(m, cfg)
				if err != nil {
					t.Fatalf("%v seed %d workers %d: %v", strat, seed, workers, err)
				}
				got := &outcome{rep.Diagnostics.RenderString(), rep.Merges, rep.Attempts}
				if got.render != "" {
					t.Fatalf("%v seed %d workers %d: validate check found diagnostics:\n%s",
						strat, seed, workers, got.render)
				}
				if rep.Merges == 0 {
					t.Fatalf("%v seed %d: no merges; the validator was never exercised", strat, seed)
				}
				if base == nil {
					base = got
					continue
				}
				if *got != *base {
					t.Errorf("%v seed %d workers %d: outcome %+v differs from workers=1 %+v",
						strat, seed, workers, got, base)
				}
			}
		}
	}
}

// runValidateWithSabotage runs -check=validate over an irgen module
// with mergePair wrapped by corrupt, which may mutate the merged
// function of a profitable result before it is committed. It returns
// the report and whether the corruption fired.
func runValidateWithSabotage(t *testing.T, corrupt func(mod *ir.Module, res *merge.Result) bool) (*Report, bool) {
	t.Helper()
	gcfg := irgen.DefaultConfig(23)
	m := irgen.Generate(gcfg).Module

	orig := mergePair
	defer func() { mergePair = orig }()
	sabotaged := false
	mergePair = func(mod *ir.Module, fa, fb *ir.Function, opts merge.Options) (*merge.Result, error) {
		res, err := orig(mod, fa, fb, opts)
		if err == nil && !sabotaged && res.Profitable {
			sabotaged = corrupt(mod, res)
		}
		return res, err
	}

	cfg := DefaultConfig(F3MStatic)
	cfg.Check = CheckValidate
	rep, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep, sabotaged
}

// tvDiagnostics filters a report down to the validator's findings.
func tvDiagnostics(rep *Report) analysis.Diagnostics {
	var ds analysis.Diagnostics
	for _, d := range rep.Diagnostics {
		if d.Checker == analysis.CheckerTV {
			ds = append(ds, d)
		}
	}
	return ds
}

// TestValidateCatchesSwappedDiscriminatorArms seeds the fault the
// validator exists for: a select keyed on the discriminator has its
// arms swapped, so each specialization computes the other original's
// value. The IR still verifies and the audit passes; only tv objects.
func TestValidateCatchesSwappedDiscriminatorArms(t *testing.T) {
	rep, sabotaged := runValidateWithSabotage(t, func(mod *ir.Module, res *merge.Result) bool {
		g := res.Merged
		if len(g.Params) == 0 {
			return false
		}
		fid := ir.Value(g.Params[0])
		done := false
		g.Instructions(func(in *ir.Instr) {
			if !done && in.Op == ir.OpSelect && in.Operands[0] == fid {
				in.Operands[1], in.Operands[2] = in.Operands[2], in.Operands[1]
				done = true
			}
		})
		return done
	})
	if !sabotaged {
		t.Fatal("sabotage never triggered; no profitable merge selects on the discriminator")
	}
	if len(tvDiagnostics(rep)) == 0 {
		t.Errorf("validator missed the swapped discriminator select; got:\n%s", rep.Diagnostics.RenderString())
	}
}

// TestValidateCatchesDroppedPhiInput replaces one phi incoming of the
// merged function with undef — the canonical "merge lost a value on one
// path" miscompile.
func TestValidateCatchesDroppedPhiInput(t *testing.T) {
	rep, sabotaged := runValidateWithSabotage(t, func(mod *ir.Module, res *merge.Result) bool {
		done := false
		res.Merged.Instructions(func(in *ir.Instr) {
			if done || in.Op != ir.OpPhi || len(in.Operands) < 2 {
				return
			}
			for i, op := range in.Operands {
				if _, isInstr := op.(*ir.Instr); isInstr {
					in.Operands[i] = ir.ConstUndef(in.Ty)
					done = true
					return
				}
			}
		})
		return done
	})
	if !sabotaged {
		t.Fatal("sabotage never triggered; no profitable merge with a phi over instruction values")
	}
	if len(tvDiagnostics(rep)) == 0 {
		t.Errorf("validator missed the dropped phi input; got:\n%s", rep.Diagnostics.RenderString())
	}
}

// TestValidateCatchesSwappedOperands swaps the operands of a
// non-commutative binary instruction in the merged body.
func TestValidateCatchesSwappedOperands(t *testing.T) {
	rep, sabotaged := runValidateWithSabotage(t, func(mod *ir.Module, res *merge.Result) bool {
		done := false
		res.Merged.Instructions(func(in *ir.Instr) {
			if done || (in.Op != ir.OpSub && in.Op != ir.OpShl && in.Op != ir.OpSDiv) {
				return
			}
			if in.Operands[0] != in.Operands[1] {
				in.Operands[0], in.Operands[1] = in.Operands[1], in.Operands[0]
				done = true
			}
		})
		return done
	})
	if !sabotaged {
		t.Fatal("sabotage never triggered; no profitable merge with a non-commutative binary")
	}
	if len(tvDiagnostics(rep)) == 0 {
		t.Errorf("validator missed the swapped operands; got:\n%s", rep.Diagnostics.RenderString())
	}
}

// TestFastCheckSurfacesSeededFault proves the per-commit audit hook is
// live: a merge committed through the pipeline whose thunk is then
// corrupted is caught when the auditor replays the commit record.
func TestFastCheckSurfacesSeededFault(t *testing.T) {
	gcfg := irgen.DefaultConfig(23)
	m := irgen.Generate(gcfg).Module

	cfg := DefaultConfig(F3MStatic)
	cfg.Check = CheckFast
	rep, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Merges == 0 {
		t.Fatal("no merges committed")
	}
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("fast check flagged healthy commits:\n%s", rep.Diagnostics.RenderString())
	}
}

// TestAuditHookRunsPerCommit covers the engine plumbing end to end by
// injecting a corrupting mergePair wrapper: the committed module lies
// about a call-site rewrite, and Run's report carries the audit
// diagnostic.
func TestAuditHookRunsPerCommit(t *testing.T) {
	gcfg := irgen.DefaultConfig(23)
	m := irgen.Generate(gcfg).Module

	orig := mergePair
	defer func() { mergePair = orig }()
	sabotaged := false
	mergePair = func(mod *ir.Module, fa, fb *ir.Function, opts merge.Options) (*merge.Result, error) {
		res, err := orig(mod, fa, fb, opts)
		if err == nil && !sabotaged && res.Profitable && len(res.Merged.Params) > 1 {
			// Corrupt the merged body before commit: leak the
			// discriminator into arithmetic. The base verifier accepts
			// this; only the auditor objects.
			g := res.Merged
			leak := &ir.Instr{Op: ir.OpZExt, Ty: mod.Ctx.I32, Operands: []ir.Value{g.Params[0]}, Nam: "fid.leak"}
			entry := g.Blocks[0]
			entry.Instrs = append([]*ir.Instr{leak}, entry.Instrs...)
			sabotaged = true
		}
		return res, err
	}

	cfg := DefaultConfig(F3MStatic)
	cfg.Check = CheckFast
	rep, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !sabotaged {
		t.Fatal("sabotage never triggered; no profitable merge with params")
	}
	found := false
	for _, d := range rep.Diagnostics {
		if d.Checker == analysis.CheckerMergeAudit && d.Instr == "fid.leak" {
			found = true
		}
	}
	if !found {
		t.Errorf("auditor missed the seeded discriminator leak; got:\n%s", rep.Diagnostics.RenderString())
	}
}
