package core

// Optimistic cross-module merging (ROADMAP: summary-based link-time
// merging, after the Optimistic Global Function Merger). The flow is
// two-phase:
//
//  1. Modular analysis (internal/analysis/summary): each module is
//     reduced — separately, possibly by another process — to
//     per-function summaries, and a global summary.Index plans merges
//     over the summaries alone.
//  2. Optimistic link-time merging (this file): the modules are linked
//     (ir.LinkModules) and the plan's pairs are attempted in order by
//     the standard merge machinery. The plan is advice computed from
//     data that may be stale, so nothing from it is trusted: each
//     pair's summaries are re-checked against the linked bodies
//     (FuncSummary.Matches) before alignment, and every commit is
//     re-proved by the merge auditor and the translation validator
//     (RunSummaryMerge forces -check=validate). A summary that lied —
//     corrupted, out of date, or a digest collision — is caught either
//     by the staleness check (pair skipped, no replay needed) or by
//     the validator (commit refuted: the linked module is discarded,
//     the pair blacklisted, and the link+merge replayed from the
//     pristine inputs, which LinkModules never mutates).
//
// Replays make misspeculation costly but safe: the final module has
// only validated merges, and the final report is as clean as a run
// that never planned the bad pair.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"f3m/internal/align"
	"f3m/internal/analysis"
	"f3m/internal/analysis/summary"
	"f3m/internal/ir"
	"f3m/internal/passes"
)

// SummaryReport extends the standard Report with the cross-module
// accounting of one RunSummaryMerge.
type SummaryReport struct {
	*Report

	// Modules is the number of input modules linked.
	Modules int

	// Planned is the number of pairs the summary plan proposed;
	// CrossModulePlanned the subset spanning two modules.
	Planned            int
	CrossModulePlanned int

	// CrossModuleMerges counts committed merges whose functions were
	// defined in different input modules — the wins no per-module run
	// can reach.
	CrossModuleMerges int

	// Validated counts committed merges proven by the validator in the
	// final (accepted) run.
	Validated int

	// Stale counts planned pairs rejected by the summary staleness
	// check before any merge work.
	Stale int

	// Misspeculated counts commits the validator refuted; each one
	// forced a replay. Zero on clean inputs.
	Misspeculated int

	// Replays is the number of times the link+merge phase re-ran.
	Replays int
}

// planKey names a planned pair for the skip set.
func planKey(p summary.PlanPair) string { return p.A.Name + "\x00" + p.B.Name }

// RunSummaryMerge links the modules and merges optimistically along
// the index's plan, returning the report and the merged linked module.
// The inputs are never mutated (LinkModules clones), which is what
// makes replay after a refuted commit possible. The check level is
// forced to at least CheckValidate: optimism without the validator
// would let a colliding summary miscompile.
//
// The report is identical for every Workers/MergeWorkers setting, and
// — because planning runs over the name-sorted global function list —
// for every partitioning of the same program into modules.
func RunSummaryMerge(name string, mods []*ir.Module, ix *summary.Index, cfg Config) (*SummaryReport, *ir.Module, error) {
	if cfg.Check < CheckValidate {
		cfg.Check = CheckValidate
	}
	// The call index and cache are per linked module; a caller-supplied
	// index would describe the wrong module. The align cache is the one
	// carry-over that is safe and profitable across replays: linked
	// modules share mods[0].Ctx, so encodings — the cache keys — are
	// stable, and the cache is exact and outcome-neutral.
	cfg.MergeOpts.Index = nil
	cfg.MergeOpts.CallSiteCount = nil
	if cfg.MergeOpts.AlignCache == nil {
		cfg.MergeOpts.AlignCache = align.NewCache(0)
	}

	threshold := cfg.Threshold
	if threshold < 0 {
		threshold = 0
	}
	workers := resolveWorkers(cfg.Workers)
	mx := cfg.Metrics

	sr := &SummaryReport{Modules: len(mods)}
	plan := ix.Plan(threshold, workers, mx)
	sr.Planned = len(plan.Pairs)
	sr.CrossModulePlanned = plan.CrossModule

	skip := make(map[string]bool)
	for {
		linked, err := ir.LinkModules(name, mods...)
		if err != nil {
			return nil, nil, err
		}
		rep, stats, badKey, err := runPlan(linked, plan, skip, cfg)
		if err != nil {
			return nil, nil, err
		}
		sr.Stale += stats.stale
		if badKey != "" {
			// A committed merge failed validation: the linked module is
			// tainted. Blacklist the pair and replay from the pristine
			// inputs.
			skip[badKey] = true
			sr.Misspeculated++
			sr.Replays++
			mx.Counter("summary.misspeculated").Inc()
			continue
		}
		sr.Report = rep
		sr.Validated = stats.validated
		sr.CrossModuleMerges = stats.cross
		mx.Counter("summary.validated").Add(int64(stats.validated))
		return sr, linked, nil
	}
}

// planRunStats is one runPlan execution's accounting.
type planRunStats struct {
	validated int // committed merges with no new error diagnostics
	cross     int // validated subset spanning two input modules
	stale     int // pairs newly rejected by the staleness check
}

// runPlan executes the plan's pairs against one freshly linked module.
// It returns the run's report and, when a committed merge produced an
// error-severity diagnostic (merge audit or translation validation),
// the offending pair's key — the module is then tainted and the caller
// must replay. Pairs in skip are recorded as unattempted outcomes so
// the final report still accounts for every planned pair.
func runPlan(m *ir.Module, plan *summary.Plan, skip map[string]bool, cfg Config) (*Report, planRunStats, string, error) {
	var stats planRunStats
	rep := &Report{Strategy: cfg.Strategy}
	rep.SizeBefore = ModuleCost(m)
	rep.NumFuncs = plan.NumFuncs
	rep.Threshold, rep.Bands, rep.K = plan.Threshold, plan.Params.Bands, plan.Params.K
	rep.LSHStats = plan.LSHStats
	cfg = withCallIndex(m, cfg)
	mx := cfg.Metrics
	eng := startChecks(m, cfg)

	run := cfg.Tracer.StartSpan("summary-merge")
	run.SetAttr("pairs", len(plan.Pairs))
	defer run.End()

	start := time.Now()
	// Types must be interned in one deterministic sweep before any
	// parallel cloning (the warm pool below) touches the shared
	// context; see prewarmTypes. It runs for every MergeWorkers
	// setting so type-ID assignment never depends on the worker count.
	prewarmTypes(m, candidates(m))
	mergeWorkers := cfg.MergeWorkers
	if spare := runtime.GOMAXPROCS(0) - 1; mergeWorkers-1 > spare {
		mergeWorkers = spare + 1
	}
	if mergeWorkers > 1 {
		warmPlanPairs(m, plan, skip, cfg.MergeOpts.AlignCache, cfg.MergeOpts.MinBlockRatio, mergeWorkers-1)
	}
	rep.Times.Preprocess = time.Since(start)

	loop := run.Child("merge-loop")
	defer loop.End()
	for _, pr := range plan.Pairs {
		key := planKey(pr)
		if skip[key] {
			rep.Pairs = append(rep.Pairs, PairOutcome{A: pr.A.Name, B: pr.B.Name, Similarity: pr.Similarity})
			continue
		}
		fa, fb := m.Func(pr.A.Name), m.Func(pr.B.Name)
		// The optimism check: the summaries were computed from module
		// state we never saw. Re-derive the cheap facts from the linked
		// bodies and skip the pair on any mismatch — a stale summary
		// must degrade to a missed merge, not reach the merger.
		if !pr.A.Matches(fa) || !pr.B.Matches(fb) {
			skip[key] = true
			stats.stale++
			mx.Counter("summary.stale").Inc()
			rep.Pairs = append(rep.Pairs, PairOutcome{A: pr.A.Name, B: pr.B.Name, Similarity: pr.Similarity})
			continue
		}
		before := len(eng.All)
		ok, _, err := attemptMerge(m, fa, fb, cfg, rep, eng, 0, pr.Similarity, loop, nil)
		if err != nil {
			return nil, stats, "", err
		}
		if !ok {
			continue
		}
		if hasNewError(eng, before) {
			// The validator (or auditor) refuted a commit that is
			// already applied to m: taint.
			return rep, stats, key, nil
		}
		stats.validated++
		if pr.CrossModule() {
			stats.cross++
		}
	}
	rep.SizeAfter = ModuleCost(m)
	finishChecks(m, cfg, eng, rep)
	publishCacheMetrics(mx, cfg.MergeOpts.AlignCache)
	publishRunMetrics(rep, cfg, resolveWorkers(cfg.Workers))
	return rep, stats, "", nil
}

// hasNewError reports whether the engine accumulated an error-severity
// diagnostic past index from.
func hasNewError(eng *analysis.Engine, from int) bool {
	for _, d := range eng.All[from:] {
		if d.Sev >= analysis.Error {
			return true
		}
	}
	return false
}

// warmPlanPairs pre-aligns the plan's surviving pairs into the shared
// alignment cache with a worker pool, so the sequential committer's
// DPs become cache hits. Unlike the in-process speculative engine this
// runs entirely before the merge loop — the plan already names every
// pair, so there is nothing to predict — and therefore needs no
// locking against commits: the module is read-only throughout. Warming
// is outcome-neutral (the cache is exact and validated on every hit),
// so the Report is byte-identical whether or not this ran.
func warmPlanPairs(m *ir.Module, plan *summary.Plan, skip map[string]bool, cache *align.Cache, minRatio float64, workers int) {
	if cache == nil {
		return
	}
	type warmPair struct{ a, b *ir.Function }
	var pairs []warmPair
	for _, pr := range plan.Pairs {
		if skip[planKey(pr)] {
			continue
		}
		fa, fb := m.Func(pr.A.Name), m.Func(pr.B.Name)
		if fa == nil || fb == nil || fa.IsDecl() || fb.IsDecl() {
			continue
		}
		pairs = append(pairs, warmPair{fa, fb})
	}
	if len(pairs) == 0 {
		return
	}
	if workers > len(pairs) {
		workers = len(pairs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := ir.NewModuleInCtx("summary.warm", m.Ctx)
			arena := ir.NewCloneArena()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				ca := arena.CloneFunc(scratch, pairs[i].a, scratch.UniqueFuncName("warm.a"))
				cb := arena.CloneFunc(scratch, pairs[i].b, scratch.UniqueFuncName("warm.b"))
				passes.RegToMemIn(ca, arena)
				passes.RegToMemIn(cb, arena)
				align.WarmPair(cache, ca, cb, minRatio)
				scratch.RemoveFunc(cb)
				arena.Recycle(cb)
				scratch.RemoveFunc(ca)
				arena.Recycle(ca)
			}
		}()
	}
	wg.Wait()
}
