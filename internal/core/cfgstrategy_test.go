package core

import (
	"fmt"
	"strings"
	"testing"

	"f3m/internal/analysis"
	"f3m/internal/ir"
	"f3m/internal/irgen"
	"f3m/internal/obs"
)

// permutedTwinCfg generates a population where every family is a seed
// plus one block-permuted semantic twin: many small blocks, so the
// layout shuffle scrambles a large share of the cross-block shingles.
// At seed 5 the layout-order MinHash similarity of every twin pair
// stays below 0.88 while the canonical-order similarity is exactly 1.0
// (the canonicalizer fully undoes the shuffle), so a 0.95 threshold
// cleanly separates the two strategies; the same seed keeps all twelve
// twin merges profitable under the size model.
func permutedTwinCfg(seed int64) irgen.Config {
	return irgen.Config{
		Seed: seed, Families: 12, FamilySizeMin: 1, FamilySizeMax: 1,
		Singletons: 0, BlocksMin: 10, BlocksMax: 16, InstrsMin: 1, InstrsMax: 2,
		Callers: 0, PermutedFraction: 1.0,
	}
}

const permutedThreshold = 0.95

// TestCFGStrategyPermutedDifferential is the ground-truth experiment
// for CFG-aware alignment: on block-permuted twins the sequence
// strategy's layout-order fingerprints fall below the threshold and it
// commits zero merges, while f3m-cfg's canonical-order fingerprints
// see identical functions and merge every twin — with every commit
// re-proved by the translation validator.
func TestCFGStrategyPermutedDifferential(t *testing.T) {
	gcfg := permutedTwinCfg(5)

	// Sequence strategy: every twin pair ranks below the threshold.
	mSeq := irgen.Generate(gcfg).Module
	cSeq := DefaultConfig(F3MStatic)
	cSeq.Threshold = permutedThreshold
	cSeq.Check = CheckValidate
	repSeq, err := Run(mSeq, cSeq)
	if err != nil {
		t.Fatal(err)
	}
	if repSeq.Merges != 0 {
		t.Errorf("sequence strategy committed %d merges on permuted twins, want 0", repSeq.Merges)
	}

	// CFG strategy: every twin pair ranks at 1.0 and merges.
	res := irgen.Generate(gcfg)
	mCfg := res.Module
	cCfg := DefaultConfig(F3MCFG)
	cCfg.Threshold = permutedThreshold
	cCfg.Metrics = obs.NewMetrics()
	repCfg, err := Run(mCfg, cCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(mCfg); err != nil {
		t.Fatalf("module invalid after f3m-cfg: %v", err)
	}

	merged := map[string]bool{}
	for _, p := range repCfg.Pairs {
		if p.Profitable {
			merged[p.A], merged[p.B] = true, true
		}
	}
	twins := 0
	for _, inf := range res.Info {
		if !inf.Permuted {
			continue
		}
		twins++
		if !merged[inf.Name] {
			t.Errorf("f3m-cfg did not merge permuted twin %s", inf.Name)
		}
	}
	if twins != gcfg.Families {
		t.Fatalf("fixture planted %d twins, want %d", twins, gcfg.Families)
	}
	if repCfg.Merges < twins {
		t.Errorf("f3m-cfg merges = %d, want at least %d", repCfg.Merges, twins)
	}

	// f3m-cfg forces -check=validate; every commit must have been
	// proved, with no errors surfacing.
	if nerr := repCfg.Diagnostics.Count(analysis.Error); nerr != 0 {
		t.Errorf("f3m-cfg run produced %d check errors", nerr)
	}
	if got := repCfg.Metrics.CounterValue("analysis.tv.commits"); got < int64(twins) {
		t.Errorf("validator proved %d commits, want at least %d", got, twins)
	}

	// The reorder histograms must have fired: every twin pair has moved
	// blocks, so the moves histogram records at least one nonzero entry.
	moves := repCfg.Metrics.Histogram("align.cfg.block_moves", blockMoveBounds)
	if moves.Count() < int64(twins) {
		t.Errorf("align.cfg.block_moves observed %d attempts, want at least %d", moves.Count(), twins)
	}
	if moves.Sum() == 0 {
		t.Error("align.cfg.block_moves sum is zero: no reordering was detected")
	}
	if sc := repCfg.Metrics.Histogram("align.cfg.score", decileBounds); sc.Count() == 0 {
		t.Error("align.cfg.score histogram never observed")
	}
}

// TestCFGStrategyValidateFloor: the f3m-cfg strategy must refuse to
// run below -check=validate (the CFG aligner reorders the artifact the
// merger consumes, so every commit is re-proved).
func TestCFGStrategyValidateFloor(t *testing.T) {
	m := irgen.Generate(permutedTwinCfg(5)).Module
	cfg := DefaultConfig(F3MCFG)
	cfg.Threshold = permutedThreshold
	cfg.Check = CheckOff
	cfg.Metrics = obs.NewMetrics()
	rep, err := Run(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Merges == 0 {
		t.Fatal("fixture produced no merges; floor check is vacuous")
	}
	if nerr := rep.Diagnostics.Count(analysis.Error); nerr != 0 {
		t.Errorf("forced-validate run produced %d errors", nerr)
	}
	if got := rep.Metrics.CounterValue("analysis.tv.commits"); got < int64(rep.Merges) {
		t.Errorf("validator ran on %d of %d commits despite -check=off; f3m-cfg must force validate", got, rep.Merges)
	}
}

// TestCFGStrategyDeterminism pins byte-identical merge decisions for
// f3m-cfg across worker counts, including the speculative merge path.
func TestCFGStrategyDeterminism(t *testing.T) {
	gcfg := permutedTwinCfg(7)
	gcfg.Families = 10
	gcfg.FamilySizeMax = 3 // mutated variants too, not just exact twins
	gcfg.Singletons = 8
	gcfg.Callers = 4

	run := func(workers, mergeWorkers int) *Report {
		t.Helper()
		m := irgen.Generate(gcfg).Module
		cfg := DefaultConfig(F3MCFG)
		cfg.Threshold = 0.8
		cfg.Workers = workers
		cfg.MergeWorkers = mergeWorkers
		rep, err := Run(m, cfg)
		if err != nil {
			t.Fatalf("workers=%d merge-workers=%d: %v", workers, mergeWorkers, err)
		}
		if err := ir.VerifyModule(m); err != nil {
			t.Fatalf("workers=%d merge-workers=%d: invalid module: %v", workers, mergeWorkers, err)
		}
		return rep
	}

	ref := run(1, 1)
	if ref.Merges == 0 {
		t.Fatal("fixture merged nothing; determinism check is vacuous")
	}
	for _, w := range []int{2, 8} {
		rep := run(w, w)
		checkSameDecisions(t, fmt.Sprintf("f3m-cfg w=%d", w), ref, rep)
	}
}

// TestParseStrategy pins the CLI strategy-name surface: every
// published name round-trips, and the unknown-name error enumerates
// the supported set.
func TestParseStrategy(t *testing.T) {
	want := map[string]Strategy{
		"hyfm":      HyFM,
		"f3m":       F3MStatic,
		"f3m-adapt": F3MAdaptive,
		"f3m-cfg":   F3MCFG,
	}
	names := StrategyNames()
	if len(names) != len(want) {
		t.Fatalf("StrategyNames() = %v, want %d entries", names, len(want))
	}
	for _, n := range names {
		s, err := ParseStrategy(n)
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", n, err)
		}
		if s != want[n] {
			t.Errorf("ParseStrategy(%q) = %v, want %v", n, s, want[n])
		}
	}
	_, err := ParseStrategy("bogus")
	if err == nil {
		t.Fatal("ParseStrategy(bogus) succeeded")
	}
	for _, n := range names {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("error %q does not mention supported strategy %q", err, n)
		}
	}
}
