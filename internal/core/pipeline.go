// Package core assembles the paper's systems into whole-module
// function-merging passes:
//
//   - HyFM, the state-of-the-art baseline (Section II): opcode-frequency
//     fingerprints ranked by exhaustive nearest-neighbour search;
//   - F3M static (Section III): MinHash fingerprints ranked through an
//     LSH index with fixed k=200, r=2, b=100;
//   - F3M adaptive (Section III-D): threshold and band count derived
//     from the function count via Equations 3 and 4.
//
// A Run reports the same stage breakdown the paper's Figures 3 and 13
// plot (preprocessing, ranking, alignment and code generation, each
// split by whether the attempted merge succeeded) plus the pair log the
// distribution figures are built from.
//
// Run is the authoritative entry point for batch (one-shot) use and for
// the merge-as-a-service daemon alike: internal/serve replays Run over
// its live module set on every incremental re-merge, passing a
// persistent alignment cache through Config.MergeOpts. Because the
// cache is outcome-neutral and the Report is identical for every
// Workers/MergeWorkers value, the daemon's reports stay byte-identical
// to a one-shot run over the same modules (DESIGN.md, "Serving").
package core

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"time"

	"f3m/internal/align"
	"f3m/internal/analysis"
	"f3m/internal/fingerprint"
	"f3m/internal/ir"
	"f3m/internal/lsh"
	"f3m/internal/merge"
	"f3m/internal/obs"
)

// Strategy selects the ranking mechanism.
type Strategy int

// Available strategies.
const (
	// HyFM: opcode-frequency fingerprints, exhaustive O(n^2) ranking.
	HyFM Strategy = iota
	// F3MStatic: MinHash + LSH with the paper's fixed defaults.
	F3MStatic
	// F3MAdaptive: MinHash + LSH with Equations 3 and 4 choosing the
	// threshold, band count and fingerprint size.
	F3MAdaptive
	// F3MCFG: F3M static parameters with CFG-aware alignment: MinHash
	// fingerprints are computed over the canonical dominator-tree block
	// order (align.Canonicalize) instead of the layout order, and the
	// merger pairs blocks with the reorder-tolerant canonical matcher
	// (align.MatchBlocksCFG). Block-permuted semantic twins, which the
	// sequence strategies rank near zero, rank at their true similarity.
	// Every commit is gated through the translation validator: the run
	// forces at least CheckValidate.
	F3MCFG
)

// String names the strategy as in the paper's legends.
func (s Strategy) String() string {
	switch s {
	case HyFM:
		return "HyFM"
	case F3MStatic:
		return "F3M"
	case F3MAdaptive:
		return "F3M-adapt"
	case F3MCFG:
		return "F3M-cfg"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// StrategyNames lists the accepted -strategy spellings, in menu order.
func StrategyNames() []string {
	return []string{"hyfm", "f3m", "f3m-adapt", "f3m-cfg"}
}

// ParseStrategy maps a CLI -strategy spelling to its Strategy value;
// the error enumerates the supported spellings.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "hyfm":
		return HyFM, nil
	case "f3m":
		return F3MStatic, nil
	case "f3m-adapt":
		return F3MAdaptive, nil
	case "f3m-cfg":
		return F3MCFG, nil
	}
	return 0, fmt.Errorf("unknown strategy %q (supported: %s)",
		name, strings.Join(StrategyNames(), ", "))
}

// Config parameterizes a pass run.
type Config struct {
	Strategy Strategy

	// K is the MinHash fingerprint size (F3M only). Zero means the
	// static default 200, or the adaptive choice under F3MAdaptive.
	K int

	// Rows and Bands are the LSH shape (F3M only). Zero means r=2 and
	// b=K/r.
	Rows, Bands int

	// Threshold is the minimum MinHash similarity for a candidate to
	// be attempted (F3M only). Under F3MAdaptive it is derived from
	// the function count unless explicitly set non-negative here.
	// Use a negative value to request the default.
	Threshold float64

	// BucketCap caps per-bucket comparisons (F3M only); 0 = paper
	// default 100; negative = unlimited.
	BucketCap int

	// Seed selects the MinHash hash family.
	Seed uint64

	// Workers is the degree of parallelism for the preprocessing and
	// ranking stages: 0 (the default) uses GOMAXPROCS, 1 forces the
	// sequential path, any other value sets the pool size. Every
	// setting produces the identical Report — same pairs, merges and
	// counters; only the StageTimes wall clocks differ. Commits are
	// always applied by the single sequential committer loop, so module
	// mutation semantics do not depend on Workers.
	Workers int

	// MergeWorkers enables the speculative merge stage (F3M only):
	// values above 1 start MergeWorkers-1 speculative workers that
	// pre-align upcoming ranked pairs into the shared alignment cache
	// while the sequential committer replays the authoritative
	// algorithm (see internal/core/speculate.go). 0 or 1 — the default
	// — keeps the merge stage fully sequential. The pool is capped to
	// the CPUs left over beyond the committer (GOMAXPROCS-1): workers
	// beyond that only time-slice the committer and slow it down,
	// so on a single-CPU process every setting runs sequentially.
	// Every setting produces
	// the byte-identical Report and deterministic metrics export; only
	// wall clocks and volatile counters (speculation and cache
	// statistics) differ.
	MergeWorkers int

	// Hotness, when set, enables the profile-guided extension the
	// paper sketches as future work (Section IV-F): among candidates
	// of nearly equal similarity, the ranking prefers the least
	// frequently executed one, steering merge overhead away from hot
	// code. The value is a per-function execution weight (e.g. call
	// counts from the interpreter).
	Hotness func(name string) float64

	// HotnessSlack is the similarity band treated as "equally good"
	// when Hotness is set (default 0.05).
	HotnessSlack float64

	// HotSkip, when positive and Hotness is set, excludes functions
	// with hotness >= HotSkip from merging altogether: guard and
	// select overhead never lands on the hot set, trading a little
	// code-size reduction for (nearly) zero runtime overhead — the
	// full version of the paper's Section IV-F conjecture.
	HotSkip float64

	// MergeOpts tune code generation and profitability.
	MergeOpts merge.Options

	// Tracer, when set, receives a span per pipeline stage and per
	// merge attempt (see internal/obs). Nil — the default — disables
	// tracing; the pipeline then pays one nil check per hook.
	Tracer *obs.Tracer

	// Metrics, when set, receives the candidate-funnel counters, LSH
	// occupancy statistics, alignment-score histograms and pool
	// utilization (see internal/obs). The deterministic subset of the
	// registry — everything but wall-clock and worker-count gauges —
	// is identical for every Workers setting, extending the
	// determinism contract to the metrics export. Nil disables
	// metrics collection.
	Metrics *obs.Metrics

	// Check selects the static-analysis level (see internal/analysis):
	// CheckOff disables it, CheckFast audits each committed merge, and
	// CheckStrict adds full-module verification before and after the
	// pipeline plus a lint sweep over the merged functions. All
	// checkers run from the sequential phases of the pipeline, so
	// Report.Diagnostics is identical for every Workers setting.
	Check CheckMode
}

// DefaultConfig returns the configuration for a strategy with the
// paper's defaults.
func DefaultConfig(s Strategy) Config {
	return Config{
		Strategy:  s,
		Threshold: -1,
		Seed:      0xF3F3F3F3,
		MergeOpts: merge.DefaultOptions(),
	}
}

// StageTimes is the cost breakdown of one run, mirroring the stage
// split of Figures 3 and 13. Ranking time is attributed to Success or
// Fail according to the outcome of the merge attempt it led to (no
// candidate counts as Fail).
type StageTimes struct {
	Preprocess     time.Duration
	RankSuccess    time.Duration
	RankFail       time.Duration
	AlignSuccess   time.Duration
	AlignFail      time.Duration
	CodegenSuccess time.Duration
	CodegenFail    time.Duration
}

// Total sums all stages.
func (t StageTimes) Total() time.Duration {
	return t.Preprocess + t.RankSuccess + t.RankFail +
		t.AlignSuccess + t.AlignFail + t.CodegenSuccess + t.CodegenFail
}

// PairOutcome logs one ranking decision and its merge outcome; the
// distribution figures (6 and 9) are drawn from these.
type PairOutcome struct {
	A, B string

	// Similarity is the fingerprint similarity under the strategy's
	// metric (normalized frequency similarity for HyFM, MinHash
	// Jaccard estimate for F3M).
	Similarity float64

	// Attempted is false when ranking produced no candidate.
	Attempted bool

	// Profitable reports whether the merge was committed.
	Profitable bool

	// Saving is the size-model reduction achieved (0 when not
	// committed).
	Saving int

	// MergeDur is the align+codegen time spent on the attempt.
	MergeDur time.Duration
}

// Report summarizes a pass run.
type Report struct {
	Strategy              Strategy
	NumFuncs              int
	Attempts              int
	Merges                int
	SizeBefore, SizeAfter int
	Times                 StageTimes
	Pairs                 []PairOutcome

	// Threshold/Bands/K record the effective parameters (interesting
	// under F3MAdaptive).
	Threshold float64
	Bands, K  int

	// LSHStats carries bucket counters (F3M only).
	LSHStats lsh.IndexStats

	// Metrics echoes Config.Metrics after the run has published into
	// it, so callers that handed a registry to Run can read the named
	// counters straight off the report (the experiments harness does).
	// Nil when metrics were disabled.
	Metrics *obs.Metrics

	// Diagnostics collects the findings of the configured Check mode,
	// in emission order (Render sorts canonically). Empty when checks
	// were off or everything passed.
	Diagnostics analysis.Diagnostics
}

// Reduction is the fractional code-size reduction achieved. Degenerate
// size accounting — a non-positive starting size or a negative final
// size, neither of which a real run produces — reports 0 rather than a
// nonsensical (or infinite) ratio.
func (r *Report) Reduction() float64 {
	if r.SizeBefore <= 0 || r.SizeAfter < 0 {
		return 0
	}
	return 1 - float64(r.SizeAfter)/float64(r.SizeBefore)
}

// ModuleCost is the size model applied to a whole module.
func ModuleCost(m *ir.Module) int {
	c := 0
	for _, f := range m.Funcs {
		c += merge.Cost(f)
	}
	return c
}

// Run applies the configured function-merging pass to the module,
// mutating it in place, and returns the report.
func Run(m *ir.Module, cfg Config) (*Report, error) {
	switch cfg.Strategy {
	case HyFM:
		return runHyFM(m, cfg)
	case F3MStatic, F3MAdaptive, F3MCFG:
		return runF3M(m, cfg)
	}
	return nil, fmt.Errorf("core: unknown strategy %d", cfg.Strategy)
}

// withCallIndex builds the live call-site index the merger uses for
// profitability and for rewriting call sites without whole-module
// walks (one walk here instead of two per commit).
func withCallIndex(m *ir.Module, cfg Config) Config {
	if cfg.MergeOpts.Index == nil && cfg.MergeOpts.CallSiteCount == nil {
		cfg.MergeOpts.Index = merge.NewCallIndex(m)
	}
	// The translation validator compares every commit against the
	// pre-merge bodies, which only exist if Commit snapshots them.
	if cfg.Check >= CheckValidate {
		cfg.MergeOpts.SnapshotOriginals = true
	}
	return cfg
}

// candidates snapshots the mergeable function definitions.
func candidates(m *ir.Module) []*ir.Function {
	var out []*ir.Function
	for _, f := range m.Funcs {
		if !f.IsDecl() && !f.Sig.Variadic {
			out = append(out, f)
		}
	}
	return out
}

// mergePair is the merge entry point, indirected so tests can inject
// failures into the error-propagation path.
var mergePair = merge.Pair

// Histogram bounds for the run-level metrics. Similarity and alignment
// scores live in [0,1], so deciles; savings are integer size-model
// units with a long tail, so powers of two; encoded lengths likewise.
var (
	decileBounds     = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	savingBounds     = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
	encodedLenBounds = []float64{4, 8, 16, 32, 64, 128, 256, 512}
	blockMoveBounds  = []float64{0, 1, 2, 4, 8, 16, 32}
)

// attemptMerge runs align+codegen+profitability for one ranked pair and
// commits on success, updating the report stages, the funnel counters
// and the attempt span (a child of parent, which is nil when tracing
// is off). Unexpected merge errors (anything but ErrIncompatible) are
// returned to the caller rather than panicking, so Run surfaces them
// through its error result.
// liveInModule reports whether f is still the module's definition under
// its name — false once a commit deleted it (thunked originals remain
// live: their body changed but the object did not).
func liveInModule(m *ir.Module, f *ir.Function) bool {
	return m.Func(f.Name()) == f
}

func attemptMerge(m *ir.Module, fa, fb *ir.Function, cfg Config, rep *Report, eng *analysis.Engine, rankDur time.Duration, sim float64, parent *obs.Span, spec *specEngine) (bool, *ir.Function, error) {
	sp := parent.Child("attempt")
	sp.SetAttr("a", fa.Name())
	sp.SetAttr("b", fb.Name())
	defer sp.End()
	mx := cfg.Metrics
	outcome := PairOutcome{A: fa.Name(), B: fb.Name(), Similarity: sim, Attempted: true}

	// Re-validate the operands before aligning: both functions must
	// still be live module members. The sequential algorithm's merged[]
	// flags make this vacuous in a healthy run; it is the backstop
	// against stale pairs reaching the merger (exercised by the
	// seeded-fault tests).
	if !liveInModule(m, fa) || !liveInModule(m, fb) {
		rep.Times.RankFail += rankDur
		rep.Pairs = append(rep.Pairs, outcome)
		rep.Attempts++
		mx.Counter("merge.stale_operand").Inc()
		sp.SetAttr("outcome", "stale-operand")
		return false, nil, nil
	}
	mx.Histogram("rank.similarity", decileBounds).Observe(sim)

	res, err := mergePair(m, fa, fb, cfg.MergeOpts)
	if err != nil {
		if !errors.Is(err, merge.ErrIncompatible) {
			return false, nil, fmt.Errorf("core: merging %s + %s: %w", fa.Name(), fb.Name(), err)
		}
		// Incompatible pairs cost ranking plus a trivial align check.
		rep.Times.RankFail += rankDur
		rep.Pairs = append(rep.Pairs, outcome)
		rep.Attempts++
		mx.Counter("merge.incompatible").Inc()
		sp.SetAttr("outcome", "incompatible")
		return false, nil, nil
	}
	rep.Attempts++
	outcome.MergeDur = res.AlignDur + res.CodegenDur
	mx.Counter(obs.FunnelAligned).Inc()
	mx.Histogram("align.score", decileBounds).Observe(res.AlignScore)
	if res.BlockMoves >= 0 {
		// CFG-aware attempt: record how much block reordering the
		// canonical matcher absorbed and the score it reached. Both are
		// observed only from the sequential committer, so the histograms
		// stay deterministic for every Workers/MergeWorkers setting.
		mx.Histogram("align.cfg.block_moves", blockMoveBounds).Observe(float64(res.BlockMoves))
		mx.Histogram("align.cfg.score", decileBounds).Observe(res.AlignScore)
	}
	if res.Profitable {
		// Re-validate before committing: if anything consumed an
		// operand between alignment and commit (a misbehaving merge
		// hook, a seeded fault), committing would rewrite call sites of
		// a function no longer in the module. Discard instead.
		if !liveInModule(m, fa) || !liveInModule(m, fb) {
			merge.Discard(m, res)
			rep.Times.RankFail += rankDur
			rep.Times.AlignFail += res.AlignDur
			rep.Times.CodegenFail += res.CodegenDur
			rep.Pairs = append(rep.Pairs, outcome)
			mx.Counter("merge.stale_commit").Inc()
			sp.SetAttr("outcome", "stale-commit")
			return false, nil, nil
		}
		spec.lockCommit()
		info := merge.Commit(m, res)
		// Intern the merged function's value type while still inside
		// the critical section, so its type ID is assigned by the
		// committer at a deterministic point — never racing a
		// speculative worker that encodes a rewritten call site.
		_ = res.Merged.Type()
		spec.unlockCommit()
		if eng != nil {
			eng.AuditCommit(m, info)
		}
		rep.Merges++
		rep.Times.RankSuccess += rankDur
		rep.Times.AlignSuccess += res.AlignDur
		rep.Times.CodegenSuccess += res.CodegenDur
		outcome.Profitable = true
		outcome.Saving = res.SizeSaving()
		rep.Pairs = append(rep.Pairs, outcome)
		mx.Counter(obs.FunnelProfitable).Inc()
		mx.Counter(obs.FunnelCommitted).Inc()
		mx.Histogram("merge.saving", savingBounds).Observe(float64(outcome.Saving))
		sp.SetAttr("outcome", "committed")
		sp.SetAttr("saving", outcome.Saving)
		return true, res.Merged, nil
	}
	merge.Discard(m, res)
	rep.Times.RankFail += rankDur
	rep.Times.AlignFail += res.AlignDur
	rep.Times.CodegenFail += res.CodegenDur
	rep.Pairs = append(rep.Pairs, outcome)
	mx.Counter("merge.unprofitable").Inc()
	sp.SetAttr("outcome", "unprofitable")
	return false, nil, nil
}

// publishRunMetrics records the run-level results into the registry
// once a pass finishes: module sizes and effective parameters as
// deterministic gauges, stage wall clocks and the worker count as
// volatile ones (they differ across machines and Workers settings, so
// the deterministic JSON export excludes them). It also echoes the
// registry on the report. No-op when metrics are disabled.
func publishRunMetrics(rep *Report, cfg Config, workers int) {
	mx := cfg.Metrics
	rep.Metrics = mx
	if mx == nil {
		return
	}
	mx.Gauge("core.funcs").Set(float64(rep.NumFuncs))
	mx.Gauge("size.before").Set(float64(rep.SizeBefore))
	mx.Gauge("size.after").Set(float64(rep.SizeAfter))
	mx.Gauge("core.threshold").Set(rep.Threshold)
	mx.Gauge("core.bands").Set(float64(rep.Bands))
	mx.Gauge("core.k").Set(float64(rep.K))
	mx.VolatileGauge("core.workers").Set(float64(workers))
	t := rep.Times
	mx.VolatileGauge("time.preprocess_ns").Set(float64(t.Preprocess))
	mx.VolatileGauge("time.rank_ns").Set(float64(t.RankSuccess + t.RankFail))
	mx.VolatileGauge("time.align_ns").Set(float64(t.AlignSuccess + t.AlignFail))
	mx.VolatileGauge("time.codegen_ns").Set(float64(t.CodegenSuccess + t.CodegenFail))
	mx.VolatileGauge("time.total_ns").Set(float64(t.Total()))
}

// runHyFM is the baseline: exhaustive nearest-neighbour ranking over
// opcode-frequency fingerprints.
func runHyFM(m *ir.Module, cfg Config) (*Report, error) {
	rep := &Report{Strategy: HyFM}
	rep.SizeBefore = ModuleCost(m)
	cfg = withCallIndex(m, cfg)
	if cfg.MergeOpts.AlignCache == nil {
		cfg.MergeOpts.AlignCache = align.NewCache(0)
	}
	mx := cfg.Metrics
	eng := startChecks(m, cfg)

	run := cfg.Tracer.StartSpan("run")
	run.SetAttr("strategy", HyFM)
	defer run.End()

	workers := resolveWorkers(cfg.Workers)
	start := time.Now()
	pre := run.Child("preprocess")
	funcs := candidates(m)
	rep.NumFuncs = len(funcs)
	fps := make([]*fingerprint.FreqVector, len(funcs))
	poolRun(len(funcs), workers, mx, "fingerprint", func(i int) {
		fps[i] = fingerprint.FreqFunc(funcs[i])
	})
	mx.Counter(obs.FunnelFingerprinted).Add(int64(len(funcs)))
	pre.End()
	rep.Times.Preprocess = time.Since(start)

	// The outer loop mutates merged[] and the module after each commit,
	// so it stays sequential; each O(n) scan fans out across workers.
	loop := run.Child("merge-loop")
	merged := make([]bool, len(funcs))
	for i := range funcs {
		if merged[i] {
			continue
		}
		rankStart := time.Now()
		best, _, compared := nearestNeighbour(fps, i, merged, workers)
		rankDur := time.Since(rankStart)
		mx.Counter(obs.FunnelCompared).Add(compared)
		if best < 0 {
			rep.Times.RankFail += rankDur
			rep.Pairs = append(rep.Pairs, PairOutcome{A: funcs[i].Name()})
			continue
		}
		mx.Counter(obs.FunnelAboveThreshold).Inc()
		sim := fps[i].Similarity(fps[best])
		ok, _, err := attemptMerge(m, funcs[i], funcs[best], cfg, rep, eng, rankDur, sim, loop, nil)
		if err != nil {
			return nil, err
		}
		if ok {
			merged[i], merged[best] = true, true
		}
	}
	loop.End()
	rep.SizeAfter = ModuleCost(m)
	finishChecks(m, cfg, eng, rep)
	publishCacheMetrics(mx, cfg.MergeOpts.AlignCache)
	publishRunMetrics(rep, cfg, workers)
	return rep, nil
}

// runF3M ranks with MinHash + LSH, with static or adaptive parameters;
// F3MCFG additionally canonicalizes block order before fingerprinting
// and merges with the reorder-tolerant block matcher.
func runF3M(m *ir.Module, cfg Config) (*Report, error) {
	rep := &Report{Strategy: cfg.Strategy}
	rep.SizeBefore = ModuleCost(m)
	if cfg.Strategy == F3MCFG {
		// CFG-aware merging commits pairs the sequence pipeline never
		// sees (reordered twins), so every commit is proven by the
		// translation validator; a caller asking for a weaker check mode
		// is upgraded, mirroring RunSummaryMerge.
		cfg.MergeOpts.CFGAlign = true
		if cfg.Check < CheckValidate {
			cfg.Check = CheckValidate
		}
	}
	cfg = withCallIndex(m, cfg)
	if cfg.MergeOpts.AlignCache == nil {
		cfg.MergeOpts.AlignCache = align.NewCache(0)
	}
	mx := cfg.Metrics
	eng := startChecks(m, cfg)

	run := cfg.Tracer.StartSpan("run")
	run.SetAttr("strategy", cfg.Strategy)
	defer run.End()

	start := time.Now()
	pre := run.Child("preprocess")
	funcs := candidates(m)
	rep.NumFuncs = len(funcs)

	// Resolve parameters.
	k, rows, bands := cfg.K, cfg.Rows, cfg.Bands
	threshold := cfg.Threshold
	if cfg.Strategy == F3MAdaptive {
		at, params, ak := lsh.AdaptiveParams(len(funcs))
		if threshold < 0 {
			threshold = at
		}
		if k == 0 {
			k = ak
		}
		if rows == 0 {
			rows = params.Rows
		}
		if bands == 0 {
			bands = params.Bands
		}
	} else {
		if threshold < 0 {
			threshold = 0
		}
		if k == 0 {
			k = 200
		}
		if rows == 0 {
			rows = 2
		}
		if bands == 0 {
			bands = k / rows
		}
	}
	rep.Threshold, rep.Bands, rep.K = threshold, bands, k

	// Fingerprinting is embarrassingly parallel per function (the
	// prepared config is read-only), and the LSH build is sharded by
	// band; both yield the same index state as the sequential path.
	// The encoded-length histogram records integers from parallel
	// code, which keeps its float sum schedule-independent.
	workers := resolveWorkers(cfg.Workers)
	mhCfg := (&fingerprint.Config{K: k, ShingleSize: 2, Seed: cfg.Seed}).Prepare()
	sigs := make([]fingerprint.MinHash, len(funcs))

	// Under F3MCFG the MinHash input is the canonical dominator-tree
	// block order, so reordered twins produce (near-)identical shingle
	// sets and rank at their true similarity. The orders are computed
	// sequentially through the analysis manager — the engine's cache, so
	// the post-commit checkers reuse the same dominator trees — before
	// the parallel encode fan-out (the manager is not concurrency-safe).
	var canonOrd []*align.CanonOrder
	if cfg.Strategy == F3MCFG {
		cn := pre.Child("canonicalize")
		canonOrd = make([]*align.CanonOrder, len(funcs))
		for i, f := range funcs {
			if eng != nil {
				canonOrd[i] = eng.Manager().Canon(f)
			} else {
				canonOrd[i] = align.Canonicalize(f, nil)
			}
		}
		cn.End()
	}
	fp := pre.Child("fingerprint")
	encLen := mx.Histogram("fingerprint.encoded_len", encodedLenBounds)
	poolRun(len(funcs), workers, mx, "fingerprint", func(i int) {
		var enc []fingerprint.Encoded
		if canonOrd != nil {
			enc = fingerprint.EncodeBlocks(canonOrd[i].Blocks)
		} else {
			enc = fingerprint.EncodeFunc(funcs[i])
		}
		encLen.Observe(float64(len(enc)))
		sigs[i] = mhCfg.New(enc)
	})
	mx.Counter(obs.FunnelFingerprinted).Add(int64(len(funcs)))
	fp.End()
	lb := pre.Child("lsh-build")
	ix := lsh.NewIndex(lsh.Params{Rows: rows, Bands: bands, BucketCap: cfg.BucketCap})
	ix.BatchInsert(0, sigs, workers)
	mx.Counter(obs.FunnelBucketed).Add(int64(ix.Stats().Inserted))
	lb.End()
	pre.End()
	rep.Times.Preprocess = time.Since(start)

	hotSkip := func(i int) bool {
		return cfg.Hotness != nil && cfg.HotSkip > 0 && cfg.Hotness(funcs[i].Name()) >= cfg.HotSkip
	}

	// Speculative merge stage. The type pre-warm runs for every
	// MergeWorkers setting so type-ID assignment — and with it the
	// instruction encodings — cannot depend on whether workers exist.
	// It must come after fingerprinting so the fingerprint-stage
	// encodings keep their historical lazily-assigned IDs. Speculation
	// itself needs the plain similarity ranking (profile-guided
	// selection queries differently) and the live call index (for
	// invalidation), and is pointless below two functions.
	prewarmTypes(m, funcs)
	mergeWorkers := cfg.MergeWorkers
	// Speculation exists to use CPUs the sequential committer leaves
	// idle; the committer replays every alignment either way. With no
	// spare parallelism the workers only time-slice the committer's
	// CPU — cloning and demoting pairs whose cached alignments arrive
	// no sooner — so the pool is capped to the spare Ps. Capping never
	// affects the Report (speculation is outcome-neutral by
	// construction), only wall clock and volatile cache counters.
	if spare := runtime.GOMAXPROCS(0) - 1; mergeWorkers-1 > spare {
		mergeWorkers = spare + 1
	}
	var spec *specEngine
	if mergeWorkers > 1 && cfg.Hotness == nil && cfg.MergeOpts.Index != nil && len(funcs) > 1 {
		spec = newSpecEngine(m, funcs, sigs, ix, cfg.MergeOpts.AlignCache,
			cfg.MergeOpts.MinBlockRatio, threshold, cfg.MergeOpts.CFGAlign, mergeWorkers-1, mx)
	}
	defer spec.stop()

	loop := run.Child("merge-loop")
	merged := make([]bool, len(funcs))
	for i := range funcs {
		if merged[i] || hotSkip(i) {
			continue
		}
		rankStart := time.Now()
		accept := func(id int) bool { return !merged[id] && !hotSkip(id) }
		var best lsh.Candidate
		var found bool
		if cfg.Hotness == nil {
			best, found = ix.BestWhereN(i, sigs[i], threshold, accept, workers)
		} else {
			// Profile-guided selection needs the candidate list: among
			// candidates within the similarity slack of the best, pick
			// the coldest.
			cands := ix.Query(i, sigs[i], threshold)
			for _, c := range cands {
				if accept(c.ID) {
					best = c
					found = true
					break
				}
			}
			if found {
				slack := cfg.HotnessSlack
				if slack == 0 {
					slack = 0.05
				}
				coldest := cfg.Hotness(funcs[best.ID].Name())
				for _, c := range cands {
					if !accept(c.ID) || c.Similarity < best.Similarity-slack {
						continue
					}
					if h := cfg.Hotness(funcs[c.ID].Name()); h < coldest {
						coldest = h
						best = c
					}
				}
			}
		}
		rankDur := time.Since(rankStart)
		if !found {
			rep.Times.RankFail += rankDur
			rep.Pairs = append(rep.Pairs, PairOutcome{A: funcs[i].Name()})
			continue
		}
		ok, mergedFn, err := attemptMerge(m, funcs[i], funcs[best.ID], cfg, rep, eng, rankDur, best.Similarity, loop, spec)
		if err != nil {
			return nil, err
		}
		if ok {
			merged[i], merged[best.ID] = true, true
			spec.lockCommit()
			ix.Remove(i, sigs[i])
			ix.Remove(best.ID, sigs[best.ID])
			spec.unlockCommit()
			var touched []*ir.Function
			if spec != nil && mergedFn != nil {
				touched = cfg.MergeOpts.Index.CallerFuncs(mergedFn)
			}
			spec.afterCommit(i, best.ID, touched)
		}
	}
	loop.End()
	spec.stop()
	rep.LSHStats = ix.Stats()
	rep.SizeAfter = ModuleCost(m)
	finishChecks(m, cfg, eng, rep)
	// The index accumulates comparison and candidate counts across the
	// whole loop; fold them into the funnel and publish the occupancy
	// distributions now that querying is done.
	ix.PublishMetrics(mx)
	mx.Counter(obs.FunnelCompared).Add(rep.LSHStats.Comparisons)
	mx.Counter(obs.FunnelAboveThreshold).Add(rep.LSHStats.CandidatesFound)
	publishCacheMetrics(mx, cfg.MergeOpts.AlignCache)
	publishRunMetrics(rep, cfg, workers)
	return rep, nil
}
