package core

import (
	"errors"
	"math/rand"
	"os"
	"testing"

	"f3m/internal/fingerprint"
	"f3m/internal/ir"
	"f3m/internal/irgen"
	"f3m/internal/merge"
	"f3m/internal/minic"
)

// normalizePairs strips the wall-clock field so pair logs can be
// compared across runs (StageTimes and MergeDur are the only report
// fields allowed to differ between worker counts).
func normalizePairs(ps []PairOutcome) []PairOutcome {
	out := make([]PairOutcome, len(ps))
	for i, p := range ps {
		p.MergeDur = 0
		out[i] = p
	}
	return out
}

// checkSameDecisions asserts two reports made identical merge
// decisions.
func checkSameDecisions(t *testing.T, label string, a, b *Report) {
	t.Helper()
	if a.Merges != b.Merges {
		t.Errorf("%s: merges %d vs %d", label, a.Merges, b.Merges)
	}
	if a.Attempts != b.Attempts {
		t.Errorf("%s: attempts %d vs %d", label, a.Attempts, b.Attempts)
	}
	if a.SizeAfter != b.SizeAfter {
		t.Errorf("%s: size-after %d vs %d", label, a.SizeAfter, b.SizeAfter)
	}
	if a.LSHStats != b.LSHStats {
		t.Errorf("%s: LSH stats differ: %+v vs %+v", label, a.LSHStats, b.LSHStats)
	}
	pa, pb := normalizePairs(a.Pairs), normalizePairs(b.Pairs)
	if len(pa) != len(pb) {
		t.Errorf("%s: pair log length %d vs %d", label, len(pa), len(pb))
		return
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Errorf("%s: pair %d differs: %+v vs %+v", label, i, pa[i], pb[i])
		}
	}
}

// TestParallelDeterminism: every Workers setting must produce the
// byte-identical report (and final module size) the sequential path
// produces, for every strategy.
func TestParallelDeterminism(t *testing.T) {
	gencfg := irgen.DefaultConfig(404)
	gencfg.Callers = 0
	for _, strat := range []Strategy{HyFM, F3MStatic, F3MAdaptive} {
		m1 := irgen.Generate(gencfg).Module
		c1 := DefaultConfig(strat)
		c1.Workers = 1
		rep1, err := Run(m1, c1)
		if err != nil {
			t.Fatalf("%v workers=1: %v", strat, err)
		}
		for _, w := range []int{0, 2, 4, 7} {
			mw := irgen.Generate(gencfg).Module
			cw := DefaultConfig(strat)
			cw.Workers = w
			repw, err := Run(mw, cw)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", strat, w, err)
			}
			if err := ir.VerifyModule(mw); err != nil {
				t.Fatalf("%v workers=%d: invalid module: %v", strat, w, err)
			}
			checkSameDecisions(t, strat.String(), rep1, repw)
		}
	}
}

// TestParallelDeterminismTestdata runs the same check on the checked-in
// mini-C module.
func TestParallelDeterminismTestdata(t *testing.T) {
	src, err := os.ReadFile("../../testdata/handlers.c")
	if err != nil {
		t.Fatal(err)
	}
	compile := func() *ir.Module {
		m, err := minic.Compile("handlers.c", string(src))
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	m1 := compile()
	c1 := DefaultConfig(F3MStatic)
	c1.Workers = 1
	rep1, err := Run(m1, c1)
	if err != nil {
		t.Fatal(err)
	}
	m4 := compile()
	c4 := DefaultConfig(F3MStatic)
	c4.Workers = 4
	rep4, err := Run(m4, c4)
	if err != nil {
		t.Fatal(err)
	}
	checkSameDecisions(t, "handlers.c", rep1, rep4)
	if rep1.Merges == 0 {
		t.Error("testdata module merged nothing; determinism check is vacuous")
	}
}

// TestParallelSemanticsPreserved exercises the parallel path under the
// full differential harness (and, under -race, guards the worker pool).
func TestParallelSemanticsPreserved(t *testing.T) {
	for _, strat := range []Strategy{HyFM, F3MStatic} {
		cfg := irgen.DefaultConfig(505)
		cfg.Callers = 0
		gen := irgen.Generate(cfg)
		work := gen.Module
		drivers := addDrivers(work)

		ref := irgen.Generate(cfg).Module
		addDrivers(ref)
		want := make(map[string]int64, len(drivers))
		for _, d := range drivers {
			want[d] = runDriver(t, ref, d)
		}

		rcfg := DefaultConfig(strat)
		rcfg.Workers = 4
		if _, err := Run(work, rcfg); err != nil {
			t.Fatal(err)
		}
		if err := ir.VerifyModule(work); err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		for _, d := range drivers {
			if got := runDriver(t, work, d); got != want[d] {
				t.Errorf("%v workers=4: %s = %d, want %d", strat, d, got, want[d])
			}
		}
	}
}

// TestMergeErrorPropagates: an unexpected merge failure must surface
// through Run's error return, not crash the caller's process.
func TestMergeErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	old := mergePair
	mergePair = func(m *ir.Module, fa, fb *ir.Function, o merge.Options) (*merge.Result, error) {
		return nil, boom
	}
	defer func() { mergePair = old }()

	gencfg := irgen.DefaultConfig(606)
	gencfg.Callers = 0
	for _, strat := range []Strategy{HyFM, F3MStatic} {
		m := irgen.Generate(gencfg).Module
		_, err := Run(m, DefaultConfig(strat))
		if !errors.Is(err, boom) {
			t.Errorf("%v: Run error = %v, want wrapped boom", strat, err)
		}
	}
}

// TestResolveWorkers pins the knob semantics: 0 = GOMAXPROCS, 1 =
// sequential, N = N.
func TestResolveWorkers(t *testing.T) {
	if got := resolveWorkers(1); got != 1 {
		t.Errorf("resolveWorkers(1) = %d", got)
	}
	if got := resolveWorkers(6); got != 6 {
		t.Errorf("resolveWorkers(6) = %d", got)
	}
	if got := resolveWorkers(0); got < 1 {
		t.Errorf("resolveWorkers(0) = %d", got)
	}
	if got := resolveWorkers(-3); got < 1 {
		t.Errorf("resolveWorkers(-3) = %d", got)
	}
}

// TestNearestNeighbourParallel drives the fanned-out HyFM scan above
// the parallelScanMin threshold (the module tests stay below it) on a
// population dense with duplicate fingerprints, so range-boundary
// tie-breaks are exercised: every worker count must return the
// sequential first-minimum answer.
func TestNearestNeighbourParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 2 * parallelScanMin
	fps := make([]*fingerprint.FreqVector, n)
	merged := make([]bool, n)
	for i := range fps {
		var v fingerprint.FreqVector
		// Tiny alphabet and counts: lots of exact-distance ties.
		for op := 0; op < 4; op++ {
			c := int32(rng.Intn(3))
			v.Counts[op] = c
			v.Total += c
		}
		fps[i] = &v
		merged[i] = rng.Intn(4) == 0
	}
	for _, i := range []int{0, 1, 7, n / 2, n - 1} {
		wantB, wantD, wantC := nearestNeighbour(fps, i, merged, 1)
		for _, w := range []int{2, 3, 4, 16} {
			gotB, gotD, gotC := nearestNeighbour(fps, i, merged, w)
			if gotB != wantB || gotD != wantD || gotC != wantC {
				t.Errorf("i=%d workers=%d: (%d,%d,%d), want (%d,%d,%d)",
					i, w, gotB, gotD, gotC, wantB, wantD, wantC)
			}
		}
	}
}

// TestParallelFor covers the chunked scheduler against a plain loop.
func TestParallelFor(t *testing.T) {
	for _, n := range []int{0, 1, 5, 1000} {
		for _, w := range []int{1, 2, 4, 16} {
			got := make([]int, n)
			parallelFor(n, w, func(i int) { got[i] = i + 1 })
			for i, v := range got {
				if v != i+1 {
					t.Fatalf("n=%d w=%d: index %d not visited (got %d)", n, w, i, v)
				}
			}
		}
	}
}
