package core

import (
	"bytes"
	"testing"

	"f3m/internal/irgen"
	"f3m/internal/obs"
)

// runWithObs runs a freshly generated module with tracing and metrics
// enabled at the given worker count.
func runWithObs(t *testing.T, strat Strategy, workers int) (*Report, *obs.Tracer) {
	t.Helper()
	gencfg := irgen.DefaultConfig(606)
	gencfg.Callers = 0
	m := irgen.Generate(gencfg).Module
	cfg := DefaultConfig(strat)
	cfg.Workers = workers
	cfg.Tracer = obs.NewTracer()
	cfg.Metrics = obs.NewMetrics()
	rep, err := Run(m, cfg)
	if err != nil {
		t.Fatalf("%v workers=%d: %v", strat, workers, err)
	}
	return rep, cfg.Tracer
}

// TestMetricsDeterministicAcrossWorkers is the observability acceptance
// criterion: the deterministic JSON export must be byte-identical for
// every Workers setting, extending the PR-1 determinism contract to
// the metrics registry. Volatile gauges (wall clocks, worker counts,
// pool busy time) are excluded from this export by construction.
func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	for _, strat := range []Strategy{HyFM, F3MStatic, F3MAdaptive} {
		var want []byte
		for _, w := range []int{1, 2, 8} {
			rep, _ := runWithObs(t, strat, w)
			var buf bytes.Buffer
			if err := rep.Metrics.WriteJSON(&buf); err != nil {
				t.Fatalf("%v workers=%d: WriteJSON: %v", strat, w, err)
			}
			if want == nil {
				want = buf.Bytes()
				continue
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%v: workers=%d JSON metrics differ from workers=1:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
					strat, w, want, w, buf.Bytes())
			}
		}
	}
}

// TestFunnelMatchesReport ties the funnel counters to the report fields
// they must agree with: committed == Merges, fingerprinted == NumFuncs,
// and (for F3M) compared == LSHStats.Comparisons.
func TestFunnelMatchesReport(t *testing.T) {
	for _, strat := range []Strategy{HyFM, F3MStatic, F3MAdaptive} {
		rep, _ := runWithObs(t, strat, 1)
		mx := rep.Metrics
		if mx == nil {
			t.Fatalf("%v: Report.Metrics not echoed", strat)
		}
		if got := mx.CounterValue(obs.FunnelCommitted); got != int64(rep.Merges) {
			t.Errorf("%v: funnel.committed = %d, want Merges = %d", strat, got, rep.Merges)
		}
		if got := mx.CounterValue(obs.FunnelFingerprinted); got != int64(rep.NumFuncs) {
			t.Errorf("%v: funnel.fingerprinted = %d, want NumFuncs = %d", strat, got, rep.NumFuncs)
		}
		if got := mx.CounterValue(obs.FunnelProfitable); got != int64(rep.Merges) {
			t.Errorf("%v: funnel.profitable = %d, want %d", strat, got, rep.Merges)
		}
		if rep.Merges == 0 {
			t.Errorf("%v: run merged nothing; funnel check is vacuous", strat)
		}
		if strat == HyFM {
			continue
		}
		if got := mx.CounterValue(obs.FunnelCompared); got != rep.LSHStats.Comparisons {
			t.Errorf("%v: funnel.compared = %d, want LSHStats.Comparisons = %d",
				strat, got, rep.LSHStats.Comparisons)
		}
		if got := mx.CounterValue(obs.FunnelBucketed); got != int64(rep.LSHStats.Inserted) {
			t.Errorf("%v: funnel.bucketed = %d, want LSHStats.Inserted = %d",
				strat, got, rep.LSHStats.Inserted)
		}
		if got := mx.CounterValue("lsh.comparisons"); got != rep.LSHStats.Comparisons {
			t.Errorf("%v: lsh.comparisons = %d, want %d", strat, got, rep.LSHStats.Comparisons)
		}
	}
}

// TestTracerRecordsPipelineSpans checks the stage spans a traced run
// produces: the run/preprocess/merge-loop skeleton plus one attempt
// span per ranked pair, all closed.
func TestTracerRecordsPipelineSpans(t *testing.T) {
	for _, strat := range []Strategy{HyFM, F3MStatic} {
		rep, tr := runWithObs(t, strat, 1)
		if tr.NumSpans() < 3+rep.Attempts {
			t.Errorf("%v: %d spans recorded, want at least %d (run+preprocess+merge-loop+%d attempts)",
				strat, tr.NumSpans(), 3+rep.Attempts, rep.Attempts)
		}
		var buf bytes.Buffer
		tr.WriteText(&buf)
		out := buf.String()
		for _, name := range []string{"run", "preprocess", "merge-loop", "attempt"} {
			if !bytes.Contains(buf.Bytes(), []byte(name)) {
				t.Errorf("%v: trace output missing span %q:\n%s", strat, name, out)
			}
		}
		if bytes.Contains(buf.Bytes(), []byte("unfinished")) {
			t.Errorf("%v: trace has unfinished spans:\n%s", strat, out)
		}
	}
}

// TestObsDisabledByDefault: with no Tracer/Metrics configured the run
// must not materialize a registry on the report.
func TestObsDisabledByDefault(t *testing.T) {
	gencfg := irgen.DefaultConfig(606)
	gencfg.Callers = 0
	m := irgen.Generate(gencfg).Module
	rep, err := Run(m, DefaultConfig(F3MStatic))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics != nil {
		t.Errorf("Report.Metrics = %v, want nil when metrics are disabled", rep.Metrics)
	}
}
