package tv

import (
	"fmt"

	"f3m/internal/ir"
	"f3m/internal/merge"
)

// mismatch is the first divergence bisimulate found, located on the
// specialized (merged-side) function.
type mismatch struct {
	block, instr, msg string
}

// bisimulate checks that spec and ref — both canonicalized — are the
// same program up to value renaming. Blocks are paired by a breadth-
// first walk of the CFGs from the entries (terminator successor lists
// must correspond positionally), non-phi non-alloca instructions are
// paired positionally within paired blocks, and phis and allocas are
// paired lazily through a bijective value correspondence driven by the
// operands that use them — which also makes semantically dead leftovers
// (a phi or alloca nothing reachable reads) irrelevant to the verdict.
//
// Two merge artifacts need special rules: a call of the merged function
// inside spec (a rewritten recursive or cross call) corresponds to a
// call of the side selected by its constant discriminator argument with
// the arguments remapped through that side's parameter map, and a
// surviving use of a shared merged parameter corresponds to the
// original parameter the map assigns it.
//
// Everything walks slices in program order, so the first mismatch — and
// therefore the diagnostic — is deterministic.
func bisimulate(spec, ref *ir.Function, info *merge.CommitInfo, side *merge.CommitSide, d bool) *mismatch {
	b := &bisim{
		spec: spec, ref: ref, info: info, side: side,
		blockMap: make(map[*ir.Block]*ir.Block),
		blockRev: make(map[*ir.Block]*ir.Block),
		valMap:   make(map[*ir.Instr]*ir.Instr),
		valRev:   make(map[*ir.Instr]*ir.Instr),
	}
	if len(spec.Blocks) == 0 || len(ref.Blocks) == 0 {
		if len(spec.Blocks) != len(ref.Blocks) {
			return &mismatch{msg: "one side has no body"}
		}
		return nil
	}
	if mis := b.pairBlocks(spec.Entry(), ref.Entry(), nil); mis != nil {
		return mis
	}
	for len(b.blockQueue) > 0 {
		pair := b.blockQueue[0]
		b.blockQueue = b.blockQueue[1:]
		if mis := b.checkBlock(pair[0], pair[1]); mis != nil {
			return mis
		}
	}
	for len(b.valQueue) > 0 {
		vp := b.valQueue[0]
		b.valQueue = b.valQueue[1:]
		if mis := b.checkValues(vp); mis != nil {
			return mis
		}
	}
	return nil
}

// valPair is one pending value-correspondence obligation; at locates
// the spec instruction that created it, for diagnostics.
type valPair struct {
	sv, rv ir.Value
	at     *ir.Instr
}

// bisim is the in-flight bisimulation state.
type bisim struct {
	spec, ref *ir.Function
	info      *merge.CommitInfo
	side      *merge.CommitSide

	blockMap, blockRev map[*ir.Block]*ir.Block
	valMap, valRev     map[*ir.Instr]*ir.Instr
	blockQueue         [][2]*ir.Block
	valQueue           []valPair
}

// at renders a mismatch located on a spec instruction.
func (b *bisim) at(in *ir.Instr, format string, args ...any) *mismatch {
	m := &mismatch{msg: fmt.Sprintf(format, args...)}
	if in != nil {
		if in.Parent != nil {
			m.block = in.Parent.Nam
		}
		m.instr = in.Nam
	}
	return m
}

// pairBlocks records (or verifies) the correspondence spec block sb ↔
// ref block rb and schedules the pair for instruction checking on
// first sight.
func (b *bisim) pairBlocks(sb, rb *ir.Block, from *ir.Instr) *mismatch {
	if got, ok := b.blockMap[sb]; ok {
		if got != rb {
			return b.at(from, "control flow diverges: block %%%s corresponds to both %%%s and %%%s",
				sb.Nam, got.Nam, rb.Nam)
		}
		return nil
	}
	if got, ok := b.blockRev[rb]; ok {
		return b.at(from, "control flow diverges: original block %%%s corresponds to both %%%s and %%%s",
			rb.Nam, got.Nam, sb.Nam)
	}
	b.blockMap[sb] = rb
	b.blockRev[rb] = sb
	b.blockQueue = append(b.blockQueue, [2]*ir.Block{sb, rb})
	return nil
}

// compared reports whether an instruction participates in positional
// pairing; phis and allocas are paired lazily by use instead (merged
// codegen hoists allocas and phi placement order is arbitrary).
func compared(in *ir.Instr) bool {
	return in.Op != ir.OpPhi && in.Op != ir.OpAlloca
}

// checkBlock pairs the positional instructions of one block pair.
func (b *bisim) checkBlock(sb, rb *ir.Block) *mismatch {
	var ss, rs []*ir.Instr
	for _, in := range sb.Instrs {
		if compared(in) {
			ss = append(ss, in)
		}
	}
	for _, in := range rb.Instrs {
		if compared(in) {
			rs = append(rs, in)
		}
	}
	if len(ss) != len(rs) {
		return b.at(sb.Term(), "block %%%s has %d instructions, original %%%s has %d",
			sb.Nam, len(ss), rb.Nam, len(rs))
	}
	for i, is := range ss {
		if mis := b.checkInstr(is, rs[i]); mis != nil {
			return mis
		}
	}
	return nil
}

// checkInstr verifies one positionally paired instruction pair and
// schedules the value obligations its operands impose.
func (b *bisim) checkInstr(is, ri *ir.Instr) *mismatch {
	if is.Op != ri.Op {
		return b.at(is, "opcode %s, original has %s", is.Op, ri.Op)
	}
	if is.Ty != ri.Ty {
		return b.at(is, "result type %s, original has %s", is.Ty, ri.Ty)
	}
	if is.Predicate != ri.Predicate {
		return b.at(is, "predicate %v, original has %v", is.Predicate, ri.Predicate)
	}
	b.recordInstr(is, ri)

	if is.Op == ir.OpCall || is.Op == ir.OpInvoke {
		if scallee, ok := is.Operands[0].(*ir.Function); ok {
			rcallee, ok := ri.Operands[0].(*ir.Function)
			if !ok {
				return b.at(is, "direct call, original call is indirect")
			}
			if mis := b.checkCall(is, ri, scallee, rcallee); mis != nil {
				return mis
			}
			return b.checkSuccessors(is, ri)
		}
	}

	if len(is.Operands) != len(ri.Operands) {
		return b.at(is, "%d operands, original has %d", len(is.Operands), len(ri.Operands))
	}
	for i, sop := range is.Operands {
		rop := ri.Operands[i]
		sblk, sIsBlk := sop.(*ir.Block)
		rblk, rIsBlk := rop.(*ir.Block)
		if sIsBlk != rIsBlk {
			return b.at(is, "operand %d kind differs from original", i)
		}
		if sIsBlk {
			if mis := b.pairBlocks(sblk, rblk, is); mis != nil {
				return mis
			}
			continue
		}
		b.valQueue = append(b.valQueue, valPair{sop, rop, is})
	}
	return nil
}

// recordInstr stores the positional correspondence so later operand
// references resolve to it.
func (b *bisim) recordInstr(is, ri *ir.Instr) {
	b.valMap[is] = ri
	b.valRev[ri] = is
}

// checkSuccessors pairs the successor blocks of an invoke positionally.
func (b *bisim) checkSuccessors(is, ri *ir.Instr) *mismatch {
	ssucc, rsucc := is.Successors(), ri.Successors()
	if len(ssucc) != len(rsucc) {
		return b.at(is, "%d successors, original has %d", len(ssucc), len(rsucc))
	}
	for i := range ssucc {
		if mis := b.pairBlocks(ssucc[i], rsucc[i], is); mis != nil {
			return mis
		}
	}
	return nil
}

// checkCall verifies a direct call pair. A spec call of the merged
// function is a rewritten call site: its constant discriminator selects
// which original the reference must call, and its arguments correspond
// through that side's parameter map (undef in unshared slots). Any
// other direct call must target the same function object with
// positionally corresponding arguments.
func (b *bisim) checkCall(is, ri *ir.Instr, scallee, rcallee *ir.Function) *mismatch {
	sargs, rargs := is.CallArgs(), ri.CallArgs()
	if scallee != b.info.Merged {
		if scallee != rcallee {
			return b.at(is, "calls @%s, original calls @%s", scallee.Name(), rcallee.Name())
		}
		if len(sargs) != len(rargs) {
			return b.at(is, "%d call arguments, original has %d", len(sargs), len(rargs))
		}
		for i := range sargs {
			b.valQueue = append(b.valQueue, valPair{sargs[i], rargs[i], is})
		}
		return nil
	}

	// Rewritten call site.
	if len(sargs) != len(b.info.Merged.Params) {
		return b.at(is, "rewritten call passes %d arguments, merged function has %d parameters",
			len(sargs), len(b.info.Merged.Params))
	}
	dc, ok := sargs[0].(*ir.Const)
	if !ok || dc.Undef || dc.Null {
		return b.at(is, "rewritten call discriminator is not a literal constant")
	}
	want := &b.info.B
	if dc.IntVal&1 != 0 {
		want = &b.info.A
	}
	if rcallee != want.Fn {
		return b.at(is, "rewritten call resolves to @%s, original calls @%s",
			want.Name, rcallee.Name())
	}
	if len(rargs) != len(want.Fn.Params) {
		return b.at(is, "original call passes %d arguments, callee has %d parameters",
			len(rargs), len(want.Fn.Params))
	}
	covered := make([]bool, len(rargs))
	for i := 1; i < len(sargs); i++ {
		oi, mapped := want.ParamMap[i]
		if !mapped {
			if c, isC := sargs[i].(*ir.Const); !isC || !c.Undef {
				return b.at(is, "rewritten call passes a live value in unshared parameter slot %d", i)
			}
			continue
		}
		if oi < 0 || oi >= len(rargs) {
			return b.at(is, "parameter map slot %d is out of range (%d)", i, oi)
		}
		if covered[oi] {
			return b.at(is, "original argument %d forwarded twice", oi)
		}
		covered[oi] = true
		b.valQueue = append(b.valQueue, valPair{sargs[i], rargs[oi], is})
	}
	for oi, c := range covered {
		if !c {
			return b.at(is, "original argument %d is not forwarded by the rewritten call", oi)
		}
	}
	return nil
}

// checkValues discharges one value-correspondence obligation.
func (b *bisim) checkValues(vp valPair) *mismatch {
	if vp.sv == vp.rv {
		// Same object: globals and (thunked) function references.
		return nil
	}
	switch sv := vp.sv.(type) {
	case *ir.Const:
		rc, ok := vp.rv.(*ir.Const)
		if !ok {
			return b.at(vp.at, "constant %s, original has a non-constant", sv.Ident())
		}
		if !ir.ConstEqual(sv, rc) {
			return b.at(vp.at, "constant %s, original has %s", sv.Ident(), rc.Ident())
		}
		return nil
	case *ir.Param:
		return b.checkParam(vp, sv)
	case *ir.Instr:
		ri, ok := vp.rv.(*ir.Instr)
		if !ok {
			return b.at(vp.at, "instruction result where original has %s", vp.rv.Ident())
		}
		return b.checkInstrPair(vp, sv, ri)
	}
	return b.at(vp.at, "values %s and %s do not correspond", vp.sv.Ident(), vp.rv.Ident())
}

// checkParam verifies a surviving use of a merged parameter: slot 0 is
// the discriminator (specialization must have eliminated every use),
// and a shared slot corresponds to the original parameter assigned by
// the side's parameter map.
func (b *bisim) checkParam(vp valPair, sp *ir.Param) *mismatch {
	idx := -1
	for i, p := range b.spec.Params {
		if p == sp {
			idx = i
			break
		}
	}
	if idx < 0 {
		// A ref param used as a spec operand, or a stray param object.
		return b.at(vp.at, "parameter use does not belong to the specialized function")
	}
	if idx == 0 {
		return b.at(vp.at, "discriminator parameter escaped specialization")
	}
	oi, mapped := b.side.ParamMap[idx]
	if !mapped {
		return b.at(vp.at, "use of merged parameter %d, which is unshared on this side", idx)
	}
	rp, ok := vp.rv.(*ir.Param)
	if !ok || oi < 0 || oi >= len(b.ref.Params) || b.ref.Params[oi] != rp {
		return b.at(vp.at, "merged parameter %d should correspond to original parameter %d", idx, oi)
	}
	return nil
}

// checkInstrPair verifies (or records) the lazy correspondence of two
// instruction results: positional pairs must already agree, and phis
// and allocas are admitted here on first use.
func (b *bisim) checkInstrPair(vp valPair, si, ri *ir.Instr) *mismatch {
	if got, ok := b.valMap[si]; ok {
		if got != ri {
			return b.at(vp.at, "value %%%s corresponds to both %%%s and %%%s", si.Nam, got.Nam, ri.Nam)
		}
		return nil
	}
	if got, ok := b.valRev[ri]; ok {
		return b.at(vp.at, "original value %%%s corresponds to both %%%s and %%%s", ri.Nam, got.Nam, si.Nam)
	}
	if si.Op != ri.Op {
		return b.at(vp.at, "value %%%s is a %s, original %%%s is a %s", si.Nam, si.Op, ri.Nam, ri.Op)
	}
	switch si.Op {
	case ir.OpAlloca:
		if si.AllocTy != ri.AllocTy {
			return b.at(vp.at, "alloca of %s, original allocates %s", si.AllocTy, ri.AllocTy)
		}
		b.recordInstr(si, ri)
		return nil
	case ir.OpPhi:
		rb, ok := b.blockMap[si.Parent]
		if !ok || rb != ri.Parent {
			return b.at(vp.at, "phi %%%s lives in an uncorresponding block", si.Nam)
		}
		if si.Ty != ri.Ty {
			return b.at(vp.at, "phi %%%s has type %s, original has %s", si.Nam, si.Ty, ri.Ty)
		}
		if len(si.Operands) != len(ri.Operands) {
			return b.at(vp.at, "phi %%%s has %d incoming edges, original has %d",
				si.Nam, len(si.Operands), len(ri.Operands))
		}
		b.recordInstr(si, ri)
		for i, sin := range si.Operands {
			sp := si.IncomingBlocks[i]
			rp, ok := b.blockMap[sp]
			if !ok {
				return b.at(si, "phi %%%s has an incoming edge from uncorresponding block %%%s", si.Nam, sp.Nam)
			}
			rin := ri.PhiIncoming(rp)
			if rin == nil {
				return b.at(si, "phi %%%s incoming from %%%s has no counterpart", si.Nam, sp.Nam)
			}
			b.valQueue = append(b.valQueue, valPair{sin, rin, si})
		}
		return nil
	}
	// A non-phi, non-alloca instruction unseen by positional pairing:
	// its block was never paired, so the data flow routes through
	// control flow the original does not have.
	return b.at(vp.at, "value %%%s has no positional counterpart", si.Nam)
}
