// Package tv is the per-commit translation validator behind
// `-check=validate`: for every committed merge it proves, statically,
// that the merged function specialized at each discriminator value is
// behaviourally equivalent to the original function it replaced.
//
// The proof strategy is specialize-then-bisimulate. For side A (and
// symmetrically B): clone the merged function into a scratch module,
// pin the discriminator parameter to its constant via sparse
// conditional constant propagation, prune the branches and selects the
// constant decides, and canonicalize the result with the same pass
// pipeline applied to a clone of the pre-merge snapshot. If the merge
// was semantics-preserving, the two canonical functions are the same
// program up to value naming — which a CFG bisimulation with lazy value
// correspondence checks exactly. Any divergence yields a deterministic
// `tv` error diagnostic locating the first mismatching instruction.
//
// Everything runs on the committer goroutine against detached scratch
// modules, so speculative pipeline workers never observe validation
// state; only type-context interning is shared, and the pipeline
// pre-warms the types validation needs.
package tv

import (
	"fmt"
	"time"

	"f3m/internal/analysis"
	"f3m/internal/analysis/dataflow"
	"f3m/internal/ir"
	"f3m/internal/merge"
	"f3m/internal/obs"
	"f3m/internal/passes"
)

// Validator implements analysis.CommitValidator. One Validator serves
// one pipeline run; it is not safe for concurrent use (the pipeline
// calls it only from the sequential commit loop).
type Validator struct {
	met *obs.Metrics
}

// NewValidator returns a validator publishing through met (which may be
// nil; obs metrics are nil-safe).
func NewValidator(met *obs.Metrics) *Validator {
	return &Validator{met: met}
}

// validateLatencyBounds bucket the per-commit validation latency
// histogram, in milliseconds.
var validateLatencyBounds = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}

// ValidateCommit proves one commit semantics-preserving: both sides are
// specialized, canonicalized and bisimulated against their pre-merge
// snapshots. It returns one error diagnostic per diverging side (the
// first mismatch found, deterministically) and publishes the
// `analysis.tv.*` counters plus a volatile latency histogram.
func (v *Validator) ValidateCommit(m *ir.Module, info *merge.CommitInfo) analysis.Diagnostics {
	start := time.Now()
	v.met.Counter("analysis.tv.commits").Inc()

	var ds analysis.Diagnostics
	ds = append(ds, v.validateSide(m, info, &info.A, true)...)
	ds = append(ds, v.validateSide(m, info, &info.B, false)...)

	if n := len(ds); n > 0 {
		v.met.Counter("analysis.tv.mismatches").Add(int64(n))
	}
	v.met.VolatileHistogram("analysis.tv.validate_ms", validateLatencyBounds).
		Observe(float64(time.Since(start).Microseconds()) / 1000)
	return ds
}

// validateSide checks one original against the merged function
// specialized at that side's discriminator value.
func (v *Validator) validateSide(m *ir.Module, info *merge.CommitInfo, side *merge.CommitSide, d bool) analysis.Diagnostics {
	v.met.Counter("analysis.tv.sides").Inc()
	errd := func(block, instr, format string, args ...any) analysis.Diagnostics {
		return analysis.Diagnostics{{
			Checker: "tv", Sev: analysis.Error,
			Func: info.Merged.Name(), Block: block, Instr: instr,
			Msg: fmt.Sprintf("side %s (@%s): ", sideName(d), side.Name) + fmt.Sprintf(format, args...),
		}}
	}
	if side.Snapshot == nil {
		return errd("", "", "commit carries no pre-merge snapshot (merge.Options.SnapshotOriginals unset)")
	}
	if len(info.Merged.Params) == 0 {
		return errd("", "", "merged function has no discriminator parameter")
	}

	// Both comparands are clones in a detached scratch module: the
	// canonicalization passes may rewrite them freely without the real
	// module (or the pristine snapshot) ever changing.
	scratch := ir.NewModuleInCtx("tv.scratch", m.Ctx)
	spec := ir.CloneFunc(scratch, info.Merged, "tv.spec")
	ref := ir.CloneFunc(scratch, side.Snapshot, "tv.ref")

	assume := map[ir.Value]*ir.Const{
		ir.Value(spec.Params[0]): ir.ConstBool(m.Ctx, d),
	}
	canonicalize(spec, assume)
	canonicalize(ref, nil)

	if mis := bisimulate(spec, ref, info, side, d); mis != nil {
		return errd(mis.block, mis.instr, "%s", mis.msg)
	}
	return nil
}

// sideName renders the discriminator value as the side letter the
// commit metadata uses.
func sideName(d bool) string {
	if d {
		return "A"
	}
	return "B"
}

// canonicalize rewrites f into the normal form both comparands share:
// constants (including the assumed discriminator) folded and propagated
// through branches via SCCP, identity simplifications the merge
// pipeline also performs (ConstFold, notably select-with-equal-arms)
// applied, decided control flow pruned, then a
// RegToMem/Mem2Reg round trip to re-derive phi placement purely from
// the dominance structure, and a final cleanup fixpoint. Two functions
// that are the same program up to value naming canonicalize to
// structurally identical IR.
func canonicalize(f *ir.Function, assume map[ir.Value]*ir.Const) {
	for {
		n := sccpFold(f, assume)
		n += passes.ConstFold(f)
		n += passes.SimplifyCFG(f)
		n += passes.DCE(f)
		if n == 0 {
			break
		}
	}
	passes.RegToMem(f)
	passes.Mem2Reg(f)
	for {
		n := passes.ConstFold(f)
		n += passes.SimplifyCFG(f)
		n += passes.DCE(f)
		if n == 0 {
			break
		}
	}
}

// sccpFold applies one SCCP fixpoint to f: uses of values proven
// constant are replaced by the constant, selects with decided
// conditions forward the chosen arm, and branches with decided
// conditions become unconditional (dropping the abandoned edges from
// successor phis). Unreachable code is left for SimplifyCFG. Returns
// the number of rewrites.
func sccpFold(f *ir.Function, assume map[ir.Value]*ir.Const) int {
	res := dataflow.SCCP(f, assume)
	n := 0
	for _, b := range f.Blocks {
		if !res.Reachable(b) {
			continue
		}
		for _, in := range b.Instrs {
			for i, op := range in.Operands {
				if !dataflow.Trackable(op) {
					continue
				}
				if lat := res.Lookup(op); lat.Kind == dataflow.Constant && op != ir.Value(lat.Const) {
					in.Operands[i] = lat.Const
					n++
				}
			}
		}
	}
	// Selects whose condition is decided forward one arm even when the
	// arm itself is not constant.
	for _, b := range f.Blocks {
		if !res.Reachable(b) {
			continue
		}
		for _, in := range b.Instrs {
			if in.Op != ir.OpSelect {
				continue
			}
			cond, ok := in.Operands[0].(*ir.Const)
			if !ok || cond.Undef || cond.Null {
				continue
			}
			arm := in.Operands[2]
			if cond.IntVal&1 != 0 {
				arm = in.Operands[1]
			}
			replaceAllUses(f, in, arm)
			n++
		}
	}
	for _, b := range f.Blocks {
		if !res.Reachable(b) {
			continue
		}
		n += foldDecidedTerminator(f, b)
	}
	return n
}

// foldDecidedTerminator rewrites a condbr/switch whose scrutinee is now
// a literal constant into an unconditional branch, removing the
// abandoned edges from successor phis.
func foldDecidedTerminator(f *ir.Function, b *ir.Block) int {
	t := b.Term()
	if t == nil {
		return 0
	}
	var dst *ir.Block
	switch t.Op {
	case ir.OpCondBr:
		cond, ok := t.Operands[0].(*ir.Const)
		if !ok || cond.Undef || cond.Null {
			return 0
		}
		if cond.IntVal&1 != 0 {
			dst = t.Operands[1].(*ir.Block)
		} else {
			dst = t.Operands[2].(*ir.Block)
		}
	case ir.OpSwitch:
		scrut, ok := t.Operands[0].(*ir.Const)
		if !ok || scrut.Undef || scrut.Null {
			return 0
		}
		dst = t.Operands[1].(*ir.Block) // default
		for i := 2; i+1 < len(t.Operands); i += 2 {
			if c, ok := t.Operands[i].(*ir.Const); ok && ir.ConstEqual(c, scrut) {
				dst = t.Operands[i+1].(*ir.Block)
				break
			}
		}
	default:
		return 0
	}
	abandoned := make(map[*ir.Block]bool)
	for _, s := range t.Successors() {
		if s != dst {
			abandoned[s] = true
		}
	}
	br := &ir.Instr{Op: ir.OpBr, Ty: f.Parent.Ctx.Void, Operands: []ir.Value{dst}, Parent: b}
	b.Instrs[len(b.Instrs)-1] = br
	for s := range abandoned {
		dropPhiEdges(s, b)
	}
	return 1
}

// dropPhiEdges removes the incoming edge from pred out of every phi of
// b (pred stopped branching here).
func dropPhiEdges(b, pred *ir.Block) {
	for _, phi := range b.Phis() {
		for i := 0; i < len(phi.IncomingBlocks); {
			if phi.IncomingBlocks[i] == pred {
				phi.Operands = append(phi.Operands[:i], phi.Operands[i+1:]...)
				phi.IncomingBlocks = append(phi.IncomingBlocks[:i], phi.IncomingBlocks[i+1:]...)
				continue
			}
			i++
		}
	}
}

// replaceAllUses substitutes new for old in every instruction of f.
func replaceAllUses(f *ir.Function, old, new ir.Value) {
	f.Instructions(func(in *ir.Instr) {
		in.ReplaceUsesOfWith(old, new)
	})
}
