package analysis

import (
	"f3m/internal/ir"
	"f3m/internal/merge"
	"f3m/internal/obs"
)

// CheckerTV names the translation validator in diagnostics.
const CheckerTV = "tv"

// CommitValidator is the hook the `-check=validate` tier installs: a
// per-commit semantic check run right after the structural audit. The
// concrete implementation lives in analysis/tv (it needs the passes
// package, which must not import analysis).
type CommitValidator interface {
	// ValidateCommit proves one commit semantics-preserving or returns
	// error diagnostics pinpointing the first divergence per side.
	ValidateCommit(m *ir.Module, info *merge.CommitInfo) Diagnostics
}

// Engine runs the checkers, accumulates their findings, and publishes
// observability counters. One Engine serves one pipeline run; like the
// Manager it is not safe for concurrent use — the pipeline invokes it
// only from the sequential commit loop and the pre/post phases, so its
// output is deterministic for every Workers setting.
type Engine struct {
	mgr *Manager
	met *obs.Metrics

	// Validator, when non-nil, runs on every commit after the merge
	// audit (set by the pipeline at -check=validate).
	Validator CommitValidator

	// merged records every committed merged function so the linter can
	// sweep them after the pipeline finishes (by then they have been
	// through the full cleanup sequence, and may themselves have been
	// consumed by later merges).
	merged []*ir.Function

	// All accumulates every diagnostic the engine produced, in emission
	// order. Render sorts, so accumulation order does not leak into
	// output.
	All Diagnostics
}

// NewEngine returns an engine publishing through met (which may be nil;
// obs metrics are nil-safe).
func NewEngine(met *obs.Metrics) *Engine {
	return &Engine{mgr: NewManager(), met: met}
}

// Manager exposes the engine's fact cache.
func (e *Engine) Manager() *Manager { return e.mgr }

// StrictModule runs the strict verifier over the whole module.
func (e *Engine) StrictModule(m *ir.Module) Diagnostics {
	return e.record(CheckerStrictVerify, StrictVerify(e.mgr, m))
}

// AuditCommit audits one committed merge and remembers the merged
// function for the post-run lint sweep. Under -check=validate it then
// runs the translation validator on the same commit.
func (e *Engine) AuditCommit(m *ir.Module, info *merge.CommitInfo) Diagnostics {
	e.merged = append(e.merged, info.Merged)
	ds := e.record(CheckerMergeAudit, AuditCommit(e.mgr, m, info))
	if e.Validator != nil {
		ds = append(ds, e.record(CheckerTV, e.Validator.ValidateCommit(m, info))...)
	}
	return ds
}

// LintMerged lints every recorded merged function still present in the
// module (later merges may have replaced earlier merged functions, and
// a thunked replacement is no longer cleanup-shaped IR).
func (e *Engine) LintMerged(m *ir.Module) Diagnostics {
	var ds Diagnostics
	for _, g := range e.merged {
		if m.Func(g.Name()) != g {
			continue
		}
		ds = append(ds, LintFunc(e.mgr, g)...)
	}
	return e.record(CheckerLint, ds)
}

// record accumulates ds and publishes the metrics for one checker run:
// the global check counter and severity totals, per-checker run and
// finding counters, and the findings-per-check histogram.
func (e *Engine) record(checker string, ds Diagnostics) Diagnostics {
	e.All = append(e.All, ds...)

	e.met.Counter("analysis.checks").Inc()
	e.met.Counter("analysis.checker." + checker + ".runs").Inc()
	if n := len(ds); n > 0 {
		e.met.Counter("analysis.checker." + checker + ".diags").Add(int64(n))
		e.met.Counter("analysis.diagnostics.error").Add(int64(ds.Count(Error)))
		e.met.Counter("analysis.diagnostics.warning").Add(int64(ds.Count(Warning) - ds.Count(Error)))
		e.met.Counter("analysis.diagnostics.info").Add(int64(len(ds) - ds.Count(Warning)))
	}
	e.met.Histogram("analysis.diags_per_check", []float64{0, 1, 2, 4, 8, 16, 32}).
		Observe(float64(len(ds)))
	return ds
}
