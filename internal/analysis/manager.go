package analysis

import (
	"f3m/internal/align"
	"f3m/internal/analysis/dataflow"
	"f3m/internal/ir"
)

// FuncFacts bundles the per-function analyses the checkers consume.
// Facts describe the function at the time they were computed; the
// Manager caches them until the function is invalidated.
type FuncFacts struct {
	Fn *ir.Function

	// Preds is the CFG predecessor map.
	Preds map[*ir.Block][]*ir.Block

	// Dom is the dominator tree (Reachable doubles as the
	// reachable-block set).
	Dom *ir.DomTree

	// Uses counts, for every instruction result in the function, how
	// many operand slots reference it.
	Uses map[*ir.Instr]int

	// LiveIn and LiveOut are the per-block liveness sets over
	// instruction results and parameters: a value is live-in when some
	// path from the block start reaches a use before any redefinition
	// (SSA values have none, so this is plain upward-exposed-use
	// dataflow). Computed by dataflow.Liveness.
	LiveIn, LiveOut map[*ir.Block]map[ir.Value]bool

	// reach, slotLive and sccp are the lazily computed dataflow results
	// behind Manager.Reaching, Manager.SlotLiveness and Manager.SCCP.
	reach    *dataflow.ReachResult
	slotLive *dataflow.SlotLivenessResult
	sccp     *dataflow.SCCPResult

	// canon is the lazily computed canonical block order behind
	// Manager.Canon.
	canon *align.CanonOrder
}

// CallGraph is the module's direct-call structure plus address-taken
// information, built in one walk.
type CallGraph struct {
	// Callees lists, without duplicates, the functions each definition
	// calls directly.
	Callees map[*ir.Function][]*ir.Function

	// Callers is the reverse edge set.
	Callers map[*ir.Function][]*ir.Function

	// AddressTaken marks functions referenced outside a callee slot.
	AddressTaken map[*ir.Function]bool

	// Present is the membership set of the module's function list, the
	// reference the dangling checks compare against.
	Present map[*ir.Function]bool
}

// Manager computes and caches analysis facts. It is not safe for
// concurrent use; the pipeline runs checkers from its sequential
// commit loop and the pre/post phases, which keeps diagnostic output
// deterministic for every Workers setting.
type Manager struct {
	funcs map[*ir.Function]*FuncFacts
	cg    *CallGraph
	cgMod *ir.Module
}

// NewManager returns an empty fact cache.
func NewManager() *Manager {
	return &Manager{funcs: make(map[*ir.Function]*FuncFacts)}
}

// Facts returns the cached facts for f, computing them on first use.
func (mgr *Manager) Facts(f *ir.Function) *FuncFacts {
	if ff, ok := mgr.funcs[f]; ok {
		return ff
	}
	ff := computeFuncFacts(f)
	mgr.funcs[f] = ff
	return ff
}

// Reaching returns the cached reaching-definitions fixpoint of f,
// computing it on first use; Invalidate drops it with the other facts.
func (mgr *Manager) Reaching(f *ir.Function) *dataflow.ReachResult {
	ff := mgr.Facts(f)
	if ff.reach == nil {
		ff.reach = dataflow.ReachingDefs(f)
	}
	return ff.reach
}

// SlotLiveness returns the cached slot-liveness fixpoint of f (dead
// stores into tracked allocas), computing it on first use.
func (mgr *Manager) SlotLiveness(f *ir.Function) *dataflow.SlotLivenessResult {
	ff := mgr.Facts(f)
	if ff.slotLive == nil {
		ff.slotLive = dataflow.SlotLiveness(f)
	}
	return ff.slotLive
}

// SCCP returns the cached assumption-free sparse-conditional-constant
// fixpoint of f, computing it on first use. Specialization under an
// assume map (the translation validator's use) is not cacheable and
// calls dataflow.SCCP directly.
func (mgr *Manager) SCCP(f *ir.Function) *dataflow.SCCPResult {
	ff := mgr.Facts(f)
	if ff.sccp == nil {
		ff.sccp = dataflow.SCCP(f, nil)
	}
	return ff.sccp
}

// Canon returns the cached canonical block order of f (see
// align.Canonicalize), computed on first use from the cached dominator
// tree so CFG-aware fingerprinting and the post-commit checkers share
// one tree per function. Invalidate drops it with the other facts.
func (mgr *Manager) Canon(f *ir.Function) *align.CanonOrder {
	ff := mgr.Facts(f)
	if ff.canon == nil {
		ff.canon = align.Canonicalize(f, ff.Dom)
	}
	return ff.canon
}

// Invalidate drops the cached facts of f (call after mutating it).
func (mgr *Manager) Invalidate(f *ir.Function) {
	delete(mgr.funcs, f)
}

// CallGraphOf returns the module call graph, cached until
// InvalidateModule. Switching modules invalidates implicitly.
func (mgr *Manager) CallGraphOf(m *ir.Module) *CallGraph {
	if mgr.cg != nil && mgr.cgMod == m {
		return mgr.cg
	}
	mgr.cg = buildCallGraph(m)
	mgr.cgMod = m
	return mgr.cg
}

// InvalidateModule drops the call graph and every per-function fact;
// the merge auditor calls it after each commit, which rewrites call
// sites in arbitrary functions.
func (mgr *Manager) InvalidateModule() {
	mgr.cg = nil
	mgr.cgMod = nil
	clear(mgr.funcs)
}

func computeFuncFacts(f *ir.Function) *FuncFacts {
	ff := &FuncFacts{
		Fn:      f,
		Preds:   f.Preds(),
		Dom:     ir.NewDomTree(f),
		Uses:    make(map[*ir.Instr]int),
		LiveIn:  make(map[*ir.Block]map[ir.Value]bool),
		LiveOut: make(map[*ir.Block]map[ir.Value]bool),
	}
	f.Instructions(func(in *ir.Instr) {
		for _, op := range in.Operands {
			if def, ok := op.(*ir.Instr); ok {
				ff.Uses[def]++
			}
		}
	})
	live := dataflow.Liveness(f)
	for _, b := range f.Blocks {
		ff.LiveIn[b] = live.In[b]
		ff.LiveOut[b] = live.Out[b]
	}
	return ff
}

func buildCallGraph(m *ir.Module) *CallGraph {
	cg := &CallGraph{
		Callees:      make(map[*ir.Function][]*ir.Function),
		Callers:      make(map[*ir.Function][]*ir.Function),
		AddressTaken: make(map[*ir.Function]bool),
		Present:      make(map[*ir.Function]bool, len(m.Funcs)),
	}
	for _, f := range m.Funcs {
		cg.Present[f] = true
	}
	for _, f := range m.Funcs {
		seen := make(map[*ir.Function]bool)
		f.Instructions(func(in *ir.Instr) {
			for i, op := range in.Operands {
				callee, ok := op.(*ir.Function)
				if !ok {
					continue
				}
				if (in.Op == ir.OpCall || in.Op == ir.OpInvoke) && i == 0 {
					if !seen[callee] {
						seen[callee] = true
						cg.Callees[f] = append(cg.Callees[f], callee)
						cg.Callers[callee] = append(cg.Callers[callee], f)
					}
				} else {
					cg.AddressTaken[callee] = true
				}
			}
		})
	}
	return cg
}
