package analysis

import (
	"f3m/internal/ir"
)

// FuncFacts bundles the per-function analyses the checkers consume.
// Facts describe the function at the time they were computed; the
// Manager caches them until the function is invalidated.
type FuncFacts struct {
	Fn *ir.Function

	// Preds is the CFG predecessor map.
	Preds map[*ir.Block][]*ir.Block

	// Dom is the dominator tree (Reachable doubles as the
	// reachable-block set).
	Dom *ir.DomTree

	// Uses counts, for every instruction result in the function, how
	// many operand slots reference it.
	Uses map[*ir.Instr]int

	// LiveIn and LiveOut are the per-block liveness sets over
	// instruction results and parameters: a value is live-in when some
	// path from the block start reaches a use before any redefinition
	// (SSA values have none, so this is plain upward-exposed-use
	// dataflow).
	LiveIn, LiveOut map[*ir.Block]map[ir.Value]bool
}

// CallGraph is the module's direct-call structure plus address-taken
// information, built in one walk.
type CallGraph struct {
	// Callees lists, without duplicates, the functions each definition
	// calls directly.
	Callees map[*ir.Function][]*ir.Function

	// Callers is the reverse edge set.
	Callers map[*ir.Function][]*ir.Function

	// AddressTaken marks functions referenced outside a callee slot.
	AddressTaken map[*ir.Function]bool

	// Present is the membership set of the module's function list, the
	// reference the dangling checks compare against.
	Present map[*ir.Function]bool
}

// Manager computes and caches analysis facts. It is not safe for
// concurrent use; the pipeline runs checkers from its sequential
// commit loop and the pre/post phases, which keeps diagnostic output
// deterministic for every Workers setting.
type Manager struct {
	funcs map[*ir.Function]*FuncFacts
	cg    *CallGraph
	cgMod *ir.Module
}

// NewManager returns an empty fact cache.
func NewManager() *Manager {
	return &Manager{funcs: make(map[*ir.Function]*FuncFacts)}
}

// Facts returns the cached facts for f, computing them on first use.
func (mgr *Manager) Facts(f *ir.Function) *FuncFacts {
	if ff, ok := mgr.funcs[f]; ok {
		return ff
	}
	ff := computeFuncFacts(f)
	mgr.funcs[f] = ff
	return ff
}

// Invalidate drops the cached facts of f (call after mutating it).
func (mgr *Manager) Invalidate(f *ir.Function) {
	delete(mgr.funcs, f)
}

// CallGraphOf returns the module call graph, cached until
// InvalidateModule. Switching modules invalidates implicitly.
func (mgr *Manager) CallGraphOf(m *ir.Module) *CallGraph {
	if mgr.cg != nil && mgr.cgMod == m {
		return mgr.cg
	}
	mgr.cg = buildCallGraph(m)
	mgr.cgMod = m
	return mgr.cg
}

// InvalidateModule drops the call graph and every per-function fact;
// the merge auditor calls it after each commit, which rewrites call
// sites in arbitrary functions.
func (mgr *Manager) InvalidateModule() {
	mgr.cg = nil
	mgr.cgMod = nil
	clear(mgr.funcs)
}

func computeFuncFacts(f *ir.Function) *FuncFacts {
	ff := &FuncFacts{
		Fn:      f,
		Preds:   f.Preds(),
		Dom:     ir.NewDomTree(f),
		Uses:    make(map[*ir.Instr]int),
		LiveIn:  make(map[*ir.Block]map[ir.Value]bool),
		LiveOut: make(map[*ir.Block]map[ir.Value]bool),
	}
	f.Instructions(func(in *ir.Instr) {
		for _, op := range in.Operands {
			if def, ok := op.(*ir.Instr); ok {
				ff.Uses[def]++
			}
		}
	})
	computeLiveness(f, ff)
	return ff
}

// trackable reports whether a value participates in liveness (locals:
// instruction results and parameters; constants and globals do not).
func trackable(v ir.Value) bool {
	switch v.(type) {
	case *ir.Instr, *ir.Param:
		return true
	}
	return false
}

// computeLiveness runs the standard backward dataflow over the CFG:
//
//	LiveOut(b) = union over successors s of LiveIn(s)
//	LiveIn(b)  = upwardExposed(b) ∪ (LiveOut(b) − defs(b))
//
// Phi uses are charged to the incoming edge's predecessor (the value
// must be live at the end of that predecessor, not at the phi itself),
// matching the dominance rule DominatesInstr applies.
func computeLiveness(f *ir.Function, ff *FuncFacts) {
	// Per-block upward-exposed uses and defs.
	exposed := make(map[*ir.Block]map[ir.Value]bool, len(f.Blocks))
	defs := make(map[*ir.Block]map[ir.Value]bool, len(f.Blocks))
	// phiIn[b] collects values phi instructions pull in along the edge
	// from b, which become extra live-out entries of b.
	phiIn := make(map[*ir.Block]map[ir.Value]bool)
	for _, b := range f.Blocks {
		exp := make(map[ir.Value]bool)
		def := make(map[ir.Value]bool)
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				for i, v := range in.Operands {
					if trackable(v) {
						p := in.IncomingBlocks[i]
						if phiIn[p] == nil {
							phiIn[p] = make(map[ir.Value]bool)
						}
						phiIn[p][v] = true
					}
				}
				def[in] = true
				continue
			}
			for _, v := range in.Operands {
				if trackable(v) && !def[v] {
					exp[v] = true
				}
			}
			if !in.Ty.IsVoid() {
				def[in] = true
			}
		}
		exposed[b] = exp
		defs[b] = def
		ff.LiveIn[b] = make(map[ir.Value]bool)
		ff.LiveOut[b] = make(map[ir.Value]bool)
	}

	for changed := true; changed; {
		changed = false
		// Backward over the block list; iteration repeats to a fixed
		// point so visit order only affects pass count.
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := ff.LiveOut[b]
			for _, s := range b.Succs() {
				for v := range ff.LiveIn[s] {
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			for v := range phiIn[b] {
				if !out[v] {
					out[v] = true
					changed = true
				}
			}
			in := ff.LiveIn[b]
			for v := range exposed[b] {
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out {
				if !defs[b][v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
}

func buildCallGraph(m *ir.Module) *CallGraph {
	cg := &CallGraph{
		Callees:      make(map[*ir.Function][]*ir.Function),
		Callers:      make(map[*ir.Function][]*ir.Function),
		AddressTaken: make(map[*ir.Function]bool),
		Present:      make(map[*ir.Function]bool, len(m.Funcs)),
	}
	for _, f := range m.Funcs {
		cg.Present[f] = true
	}
	for _, f := range m.Funcs {
		seen := make(map[*ir.Function]bool)
		f.Instructions(func(in *ir.Instr) {
			for i, op := range in.Operands {
				callee, ok := op.(*ir.Function)
				if !ok {
					continue
				}
				if (in.Op == ir.OpCall || in.Op == ir.OpInvoke) && i == 0 {
					if !seen[callee] {
						seen[callee] = true
						cg.Callees[f] = append(cg.Callees[f], callee)
						cg.Callers[callee] = append(cg.Callers[callee], f)
					}
				} else {
					cg.AddressTaken[callee] = true
				}
			}
		})
	}
	return cg
}
