package dataflow

import (
	"f3m/internal/interp"
	"f3m/internal/ir"
)

// LatKind is the three-point SCCP value lattice.
type LatKind int

// Lattice levels, from optimistic to pessimistic.
const (
	// Unknown (top): no evidence yet; the value may still turn out
	// constant.
	Unknown LatKind = iota

	// Constant: the value is the single constant Lat.Const on every
	// executable path.
	Constant

	// Varying (bottom): the value takes more than one value, or one the
	// analysis cannot model.
	Varying
)

// Lat is one lattice element; Const is set iff Kind == Constant.
type Lat struct {
	// Kind is the lattice level.
	Kind LatKind

	// Const is the proven constant when Kind == Constant.
	Const *ir.Const
}

// varying is the bottom element.
var varying = Lat{Kind: Varying}

// SCCPResult carries the sparse-conditional-constant-propagation
// fixpoint of one function: a lattice value per SSA definition and the
// set of blocks proven executable under the analysis' assumptions.
type SCCPResult struct {
	values    map[*ir.Instr]Lat
	params    map[*ir.Param]Lat
	reachable map[*ir.Block]bool
	edgeExec  map[[2]*ir.Block]bool
}

// Lookup returns the lattice value of v: constants map to themselves
// (undef and null conservatively to Varying), parameters to their
// assumed value or Varying, instructions to the fixpoint value.
func (r *SCCPResult) Lookup(v ir.Value) Lat {
	switch x := v.(type) {
	case *ir.Const:
		if x.Undef || x.Null {
			return varying
		}
		return Lat{Kind: Constant, Const: x}
	case *ir.Param:
		if l, ok := r.params[x]; ok {
			return l
		}
		return varying
	case *ir.Instr:
		return r.values[x]
	}
	return varying
}

// Reachable reports whether the analysis proved b executable; blocks
// pruned by constant branch conditions report false.
func (r *SCCPResult) Reachable(b *ir.Block) bool { return r.reachable[b] }

// EdgeExecutable reports whether the CFG edge from→to was proven
// executable.
func (r *SCCPResult) EdgeExecutable(from, to *ir.Block) bool {
	return r.edgeExec[[2]*ir.Block{from, to}]
}

// SCCP runs Wegman–Zadeck sparse conditional constant propagation over
// f. The assume map, which may be nil, pins parameters (or any other
// value) to a constant before propagation — the translation validator
// uses it to specialize a merged function at one discriminator value.
// Unlike the dense solver instances, SCCP propagates sparsely along SSA
// edges and CFG edges simultaneously, so constants flow through
// branches that only the assumed values decide; both worklists are FIFO
// queues seeded in program order, keeping the fixpoint — and every
// rewrite derived from it — deterministic.
func SCCP(f *ir.Function, assume map[ir.Value]*ir.Const) *SCCPResult {
	s := &sccpState{
		res: &SCCPResult{
			values:    make(map[*ir.Instr]Lat),
			params:    make(map[*ir.Param]Lat),
			reachable: make(map[*ir.Block]bool),
			edgeExec:  make(map[[2]*ir.Block]bool),
		},
		users: make(map[ir.Value][]*ir.Instr),
		ctx:   f.Parent.Ctx,
	}
	for _, p := range f.Params {
		if c, ok := assume[p]; ok {
			s.res.params[p] = Lat{Kind: Constant, Const: c}
		} else {
			s.res.params[p] = varying
		}
	}
	f.Instructions(func(in *ir.Instr) {
		if c, ok := assume[ir.Value(in)]; ok {
			s.res.values[in] = Lat{Kind: Constant, Const: c}
			s.assumed = append(s.assumed, in)
		}
		for _, op := range in.Operands {
			if Trackable(op) {
				s.users[op] = append(s.users[op], in)
			}
		}
	})
	if len(f.Blocks) == 0 {
		return s.res
	}
	s.flow = append(s.flow, flowEdge{nil, f.Entry()})
	for len(s.flow) > 0 || len(s.ssa) > 0 {
		for len(s.flow) > 0 {
			e := s.flow[0]
			s.flow = s.flow[1:]
			s.runFlowEdge(e)
		}
		for len(s.ssa) > 0 {
			in := s.ssa[0]
			s.ssa = s.ssa[1:]
			if s.res.reachable[in.Parent] {
				s.visitInstr(in)
			}
		}
	}
	return s.res
}

// flowEdge is one CFG edge on the flow worklist; from is nil for the
// synthetic entry edge.
type flowEdge struct {
	from, to *ir.Block
}

// sccpState is the in-flight propagation state.
type sccpState struct {
	res     *SCCPResult
	users   map[ir.Value][]*ir.Instr
	ctx     *ir.TypeContext
	flow    []flowEdge
	ssa     []*ir.Instr
	assumed []*ir.Instr
}

// runFlowEdge marks one edge executable and evaluates its target: phis
// always re-evaluate (a new incoming edge changes their meet); the rest
// of the block only on first arrival.
func (s *sccpState) runFlowEdge(e flowEdge) {
	if e.from != nil {
		key := [2]*ir.Block{e.from, e.to}
		if s.res.edgeExec[key] {
			return
		}
		s.res.edgeExec[key] = true
	}
	first := !s.res.reachable[e.to]
	s.res.reachable[e.to] = true
	for _, in := range e.to.Instrs {
		if in.Op == ir.OpPhi {
			s.visitInstr(in)
		} else if first {
			s.visitInstr(in)
		}
	}
}

// visitInstr (re)evaluates one instruction, lowering its lattice value
// and scheduling its SSA users and feasible CFG successors.
func (s *sccpState) visitInstr(in *ir.Instr) {
	if in.IsTerminator() {
		s.visitTerminator(in)
		if in.Op != ir.OpInvoke {
			return
		}
	}
	if in.Ty.IsVoid() {
		return
	}
	for _, a := range s.assumed {
		if a == in {
			return // pinned by an assumption; never lower it
		}
	}
	nl := s.evaluate(in)
	old := s.res.values[in]
	if !lower(old, nl) {
		return
	}
	s.res.values[in] = nl
	for _, u := range s.users[in] {
		s.ssa = append(s.ssa, u)
	}
}

// lower reports whether nl is strictly below old in the lattice (the
// only legal movement; anything else is ignored to keep monotonicity).
func lower(old, nl Lat) bool {
	if nl.Kind == old.Kind {
		return false
	}
	return nl.Kind > old.Kind
}

// meet combines two lattice values (⊓ toward Varying).
func meet(a, b Lat) Lat {
	switch {
	case a.Kind == Unknown:
		return b
	case b.Kind == Unknown:
		return a
	case a.Kind == Constant && b.Kind == Constant && ir.ConstEqual(a.Const, b.Const):
		return a
	}
	return varying
}

// evaluate computes the lattice value of a non-void instruction from
// its operands, mirroring the interpreter's folding semantics.
func (s *sccpState) evaluate(in *ir.Instr) Lat {
	switch {
	case in.Op == ir.OpPhi:
		cur := Lat{}
		for i, op := range in.Operands {
			from := in.IncomingBlocks[i]
			if !s.res.edgeExec[[2]*ir.Block{from, in.Parent}] {
				continue
			}
			cur = meet(cur, s.res.Lookup(op))
			if cur.Kind == Varying {
				break
			}
		}
		return cur
	case in.Op.IsBinary():
		a, b := s.res.Lookup(in.Operands[0]), s.res.Lookup(in.Operands[1])
		if a.Kind == Varying || b.Kind == Varying {
			return varying
		}
		if a.Kind == Constant && b.Kind == Constant {
			if c, ok := interp.FoldBinary(in.Op, in.Ty, a.Const, b.Const); ok {
				return Lat{Kind: Constant, Const: c}
			}
			return varying
		}
		return Lat{}
	case in.Op.IsCast():
		v := s.res.Lookup(in.Operands[0])
		if v.Kind == Constant {
			if c, ok := interp.FoldCast(in.Op, in.Ty, v.Const); ok {
				return Lat{Kind: Constant, Const: c}
			}
			return varying
		}
		return Lat{Kind: v.Kind}
	case in.Op == ir.OpICmp || in.Op == ir.OpFCmp:
		a, b := s.res.Lookup(in.Operands[0]), s.res.Lookup(in.Operands[1])
		if a.Kind == Varying || b.Kind == Varying {
			return varying
		}
		if a.Kind == Constant && b.Kind == Constant {
			if c, ok := interp.FoldCmp(s.ctx, in.Op, in.Predicate, a.Const, b.Const); ok {
				return Lat{Kind: Constant, Const: c}
			}
			return varying
		}
		return Lat{}
	case in.Op == ir.OpSelect:
		cond := s.res.Lookup(in.Operands[0])
		switch cond.Kind {
		case Unknown:
			return Lat{}
		case Constant:
			if cond.Const.IntVal&1 != 0 {
				return s.res.Lookup(in.Operands[1])
			}
			return s.res.Lookup(in.Operands[2])
		}
		return meet(s.res.Lookup(in.Operands[1]), s.res.Lookup(in.Operands[2]))
	}
	// Loads, calls, invokes, allocas, GEPs: not modeled.
	return varying
}

// visitTerminator schedules the feasible outgoing edges of a block
// terminator given the current lattice value of its condition.
func (s *sccpState) visitTerminator(in *ir.Instr) {
	b := in.Parent
	addEdge := func(to *ir.Block) { s.flow = append(s.flow, flowEdge{b, to}) }
	switch in.Op {
	case ir.OpBr:
		addEdge(in.Operands[0].(*ir.Block))
	case ir.OpCondBr:
		cond := s.res.Lookup(in.Operands[0])
		switch cond.Kind {
		case Constant:
			if cond.Const.IntVal&1 != 0 {
				addEdge(in.Operands[1].(*ir.Block))
			} else {
				addEdge(in.Operands[2].(*ir.Block))
			}
		case Varying:
			addEdge(in.Operands[1].(*ir.Block))
			addEdge(in.Operands[2].(*ir.Block))
		}
	case ir.OpSwitch:
		scrut := s.res.Lookup(in.Operands[0])
		switch scrut.Kind {
		case Constant:
			for i := 2; i+1 < len(in.Operands); i += 2 {
				if c, ok := in.Operands[i].(*ir.Const); ok && ir.ConstEqual(c, scrut.Const) {
					addEdge(in.Operands[i+1].(*ir.Block))
					return
				}
			}
			addEdge(in.Operands[1].(*ir.Block))
		case Varying:
			addEdge(in.Operands[1].(*ir.Block))
			for i := 3; i < len(in.Operands); i += 2 {
				addEdge(in.Operands[i].(*ir.Block))
			}
		}
	case ir.OpInvoke:
		for _, succ := range in.Successors() {
			addEdge(succ)
		}
	}
	// ret and unreachable have no outgoing edges.
}
