// Package dataflow is the generic dataflow engine the static-analysis
// layer builds on: a forward/backward worklist fixpoint solver over
// ir.Function CFGs with deterministic reverse-postorder iteration, plus
// the concrete analyses the checkers and the translation validator
// consume — liveness, reaching definitions (with an uninitialized-slot
// pseudo-definition), slot liveness for dead-store detection, and
// sparse conditional constant propagation.
//
// Everything here is deterministic by construction: block visit order
// derives from the CFG's successor lists (never from map iteration),
// and the SCCP worklists are FIFO queues seeded in program order. That
// property is load-bearing — diagnostics and the translation validator
// feed the pipeline's byte-identical-Report contract.
package dataflow

import (
	"f3m/internal/ir"
)

// Direction orients an analysis along or against the CFG edges.
type Direction int

// The two dataflow directions.
const (
	// Forward propagates facts from the entry toward the exits
	// (e.g. reaching definitions).
	Forward Direction = iota

	// Backward propagates facts from the exits toward the entry
	// (e.g. liveness).
	Backward
)

// Problem is the lattice-plus-transfer description of one dataflow
// analysis. S is the per-block state (typically a set); the solver
// never interprets S beyond calling these methods, so analyses are free
// to pick any representation.
//
// The lattice contract: Init is the optimistic starting state,
// Boundary the state imposed at the CFG boundary (the entry's in-state
// for forward problems, each exit's out-state for backward ones), and
// Join must be monotone and report whether it changed its first
// argument — the solver iterates until no Join reports change.
type Problem[S any] interface {
	// Direction orients the analysis.
	Direction() Direction

	// Boundary returns the state at the CFG boundary.
	Boundary() S

	// Init returns the optimistic interior state every block starts
	// from. Must allocate a fresh value per call.
	Init() S

	// Transfer pushes a state through block b: it receives the
	// in-state (forward) or out-state (backward) and returns the state
	// at the block's other end. It must not mutate its argument.
	Transfer(b *ir.Block, s S) S

	// Join folds src into dst and reports whether dst changed. The
	// returned state replaces dst (allowing map reuse or rebuilds).
	Join(dst, src S) (S, bool)
}

// EdgeProblem is an optional Problem extension for analyses whose
// facts are edge-sensitive — liveness charges phi uses to the incoming
// edge's predecessor, for example. When implemented, the solver routes
// every propagated state through FlowEdge(from, to, s) before joining.
type EdgeProblem[S any] interface {
	// FlowEdge adapts a state crossing the CFG edge from→to. It must
	// not mutate s; returning s unchanged is the identity flow.
	FlowEdge(from, to *ir.Block, s S) S
}

// Result carries the per-block fixpoint states of one Solve call.
type Result[S any] struct {
	// In is the state at each block's start.
	In map[*ir.Block]S

	// Out is the state at each block's end.
	Out map[*ir.Block]S
}

// RPO returns the blocks of f in reverse postorder from the entry;
// blocks unreachable from the entry are appended afterwards in block
// list order. The order is a pure function of the CFG (successor lists
// and block order), which is what makes every solver run — and every
// diagnostic derived from one — deterministic.
func RPO(f *ir.Function) []*ir.Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	seen := make(map[*ir.Block]bool, len(f.Blocks))
	post := make([]*ir.Block, 0, len(f.Blocks))
	var dfs func(*ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	out := make([]*ir.Block, 0, len(f.Blocks))
	for i := len(post) - 1; i >= 0; i-- {
		out = append(out, post[i])
	}
	for _, b := range f.Blocks {
		if !seen[b] {
			out = append(out, b)
		}
	}
	return out
}

// Solve runs the worklist fixpoint iteration of p over f's CFG and
// returns the per-block in/out states. Forward problems sweep in
// reverse postorder, backward ones in postorder; only blocks whose
// inputs changed are re-evaluated, and the sweep repeats until a full
// pass is quiet. For a monotone Problem over a finite lattice this
// terminates at the least fixpoint.
func Solve[S any](f *ir.Function, p Problem[S]) *Result[S] {
	res := &Result[S]{
		In:  make(map[*ir.Block]S, len(f.Blocks)),
		Out: make(map[*ir.Block]S, len(f.Blocks)),
	}
	if len(f.Blocks) == 0 {
		return res
	}
	order := RPO(f)
	if p.Direction() == Backward {
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	}
	for _, b := range f.Blocks {
		res.In[b] = p.Init()
		res.Out[b] = p.Init()
	}
	edge, edgeOK := any(p).(EdgeProblem[S])
	flow := func(from, to *ir.Block, s S) S {
		if edgeOK {
			return edge.FlowEdge(from, to, s)
		}
		return s
	}

	preds := f.Preds()
	entry := f.Entry()
	dirty := make(map[*ir.Block]bool, len(order))
	for _, b := range order {
		dirty[b] = true
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if !dirty[b] {
				continue
			}
			dirty[b] = false
			if p.Direction() == Forward {
				in := p.Init()
				if b == entry {
					in, _ = p.Join(in, p.Boundary())
				}
				for _, pr := range preds[b] {
					in, _ = p.Join(in, flow(pr, b, res.Out[pr]))
				}
				res.In[b] = in
				out, ch := p.Join(res.Out[b], p.Transfer(b, in))
				res.Out[b] = out
				if ch {
					changed = true
					for _, s := range b.Succs() {
						dirty[s] = true
					}
				}
				continue
			}
			out := p.Init()
			succs := b.Succs()
			if len(succs) == 0 {
				out, _ = p.Join(out, p.Boundary())
			}
			for _, s := range succs {
				out, _ = p.Join(out, flow(b, s, res.In[s]))
			}
			res.Out[b] = out
			in, ch := p.Join(res.In[b], p.Transfer(b, out))
			res.In[b] = in
			if ch {
				changed = true
				for _, pr := range preds[b] {
					dirty[pr] = true
				}
			}
		}
	}
	return res
}

// ValueSet is the common set-of-values state the may-analyses here use.
// Join is set union.
type ValueSet map[ir.Value]bool

// joinValueSets unions src into dst, reporting growth.
func joinValueSets(dst, src ValueSet) (ValueSet, bool) {
	changed := false
	for v := range src {
		if !dst[v] {
			dst[v] = true
			changed = true
		}
	}
	return dst, changed
}
