package dataflow

import (
	"testing"

	"f3m/internal/ir"
)

func mustParse(t testing.TB, src string) *ir.Module {
	t.Helper()
	m, err := ir.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := ir.VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	return m
}

func block(t testing.TB, f *ir.Function, name string) *ir.Block {
	t.Helper()
	for _, b := range f.Blocks {
		if b.Nam == name {
			return b
		}
	}
	t.Fatalf("no block %%%s in @%s", name, f.Name())
	return nil
}

func instr(t testing.TB, f *ir.Function, name string) *ir.Instr {
	t.Helper()
	var found *ir.Instr
	f.Instructions(func(in *ir.Instr) {
		if in.Nam == name {
			found = in
		}
	})
	if found == nil {
		t.Fatalf("no instr %%%s in @%s", name, f.Name())
	}
	return found
}

const loopSrc = `
define i32 @sumto(i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [0, %entry], [%i2, %body]
  %acc = phi i32 [0, %entry], [%acc2, %body]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  br label %head
exit:
  ret i32 %acc
}`

func TestRPODeterministicAndComplete(t *testing.T) {
	m := mustParse(t, loopSrc)
	f := m.Func("sumto")
	order := RPO(f)
	if len(order) != len(f.Blocks) {
		t.Fatalf("RPO covers %d blocks, want %d", len(order), len(f.Blocks))
	}
	if order[0] != f.Entry() {
		t.Fatal("RPO must start at the entry")
	}
	again := RPO(f)
	for i := range order {
		if order[i] != again[i] {
			t.Fatalf("RPO not deterministic at %d: %s vs %s", i, order[i].Nam, again[i].Nam)
		}
	}
}

func TestLivenessLoop(t *testing.T) {
	m := mustParse(t, loopSrc)
	f := m.Func("sumto")
	res := Liveness(f)

	n := ir.Value(f.Params[0])
	head := block(t, f, "head")
	body := block(t, f, "body")
	exit := block(t, f, "exit")
	i := ir.Value(instr(t, f, "i"))
	acc := ir.Value(instr(t, f, "acc"))

	// %n is compared in head every iteration: live into head and body.
	if !res.In[head][n] || !res.In[body][n] {
		t.Errorf("param %%n should be live into head and body: head=%v body=%v",
			res.In[head][n], res.In[body][n])
	}
	// The phis are defined in head and used in body (and %acc in exit).
	if !res.In[body][i] || !res.In[body][acc] {
		t.Error("%i and %acc should be live into body")
	}
	if !res.In[exit][acc] {
		t.Error("%acc should be live into exit")
	}
	if res.In[exit][i] || res.In[exit][n] {
		t.Error("%i and %n must be dead in exit")
	}
	// Phi uses charge the incoming edge: %i2/%acc2 live out of body
	// (their defining block feeds the back edge) but the phis' entry
	// operands are constants, so nothing is live into entry.
	i2 := ir.Value(instr(t, f, "i2"))
	if !res.Out[body][i2] {
		t.Error("%i2 should be live out of body (phi use on back edge)")
	}
	if len(res.In[f.Entry()]) != 1 || !res.In[f.Entry()][n] {
		t.Errorf("live-in of entry = %v, want just %%n", res.In[f.Entry()])
	}
}

const slotSrc = `
define i32 @slots(i32 %x, i1 %c) {
entry:
  %p = alloca i32
  %q = alloca i32
  store i32 %x, i32* %p
  store i32 1, i32* %q
  br i1 %c, label %a, label %b
a:
  store i32 2, i32* %p
  br label %join
b:
  %v1 = load i32, i32* %p
  br label %join
join:
  %v2 = load i32, i32* %p
  ret i32 %v2
}`

func TestTrackedSlots(t *testing.T) {
	m := mustParse(t, slotSrc)
	f := m.Func("slots")
	tracked := TrackedSlots(f)
	p := instr(t, f, "p")
	q := instr(t, f, "q")
	if !tracked[p] || !tracked[q] {
		t.Fatalf("both slots should be tracked: p=%v q=%v", tracked[p], tracked[q])
	}

	esc := mustParse(t, `
declare void @sink(i32* %p)
define void @escapes() {
entry:
  %p = alloca i32
  call void @sink(i32* %p)
  ret void
}`)
	ef := esc.Func("escapes")
	if tr := TrackedSlots(ef); tr[instr(t, ef, "p")] {
		t.Error("escaping slot must not be tracked")
	}
}

func TestSlotLivenessDeadStore(t *testing.T) {
	m := mustParse(t, slotSrc)
	f := m.Func("slots")
	res := SlotLiveness(f)

	entry := block(t, f, "entry")
	la := res.LiveAfter(entry)
	var storeP, storeQ *ir.Instr
	for _, in := range entry.Instrs {
		if in.Op == ir.OpStore {
			if in.Operands[1] == ir.Value(instr(t, f, "p")) {
				storeP = in
			} else {
				storeQ = in
			}
		}
	}
	// store %x -> %p: loaded in b and join before any kill on those
	// paths, so live; but overwritten on path a — still live (may).
	if !la[storeP] {
		t.Error("store to slot p in entry should be live (loaded on the b path)")
	}
	// store 1 -> %q is never loaded anywhere: dead.
	if la[storeQ] {
		t.Error("store to slot q is never loaded: must be dead")
	}
	// store 2 -> %p in a reaches the load in join: live.
	a := block(t, f, "a")
	laA := res.LiveAfter(a)
	for _, in := range a.Instrs {
		if in.Op == ir.OpStore && !laA[in] {
			t.Error("store in a reaches the join load: must be live")
		}
	}
}

const uninitSrc = `
define i32 @uninit(i1 %c) {
entry:
  %p = alloca i32
  br i1 %c, label %init, label %skip
init:
  store i32 7, i32* %p
  br label %join
skip:
  br label %join
join:
  %v = load i32, i32* %p
  ret i32 %v
}`

func TestReachingDefsUninit(t *testing.T) {
	m := mustParse(t, uninitSrc)
	f := m.Func("uninit")
	res := ReachingDefs(f)
	p := instr(t, f, "p")
	join := block(t, f, "join")

	// The alloca pseudo-def survives along the skip path: the load may
	// observe an uninitialized slot.
	defs := res.DefsAt(join, join.IndexOf(instr(t, f, "v")))
	if !defs[p] {
		t.Error("uninitialized pseudo-def should reach the join load")
	}

	// After an unconditional store the pseudo-def must be killed.
	m2 := mustParse(t, `
define i32 @ok() {
entry:
  %p = alloca i32
  store i32 7, i32* %p
  %v = load i32, i32* %p
  ret i32 %v
}`)
	f2 := m2.Func("ok")
	res2 := ReachingDefs(f2)
	e2 := f2.Entry()
	defs2 := res2.DefsAt(e2, e2.IndexOf(instr(t, f2, "v")))
	if defs2[instr(t, f2, "p")] {
		t.Error("pseudo-def must be killed by the dominating store")
	}
}

const diamondSrc = `
define i32 @f(i1 %c, i32 %x) {
entry:
  br i1 %c, label %big, label %small
big:
  %b = mul i32 %x, 2
  br label %join
small:
  %s = add i32 %x, 100
  br label %join
join:
  %r = phi i32 [%b, %big], [%s, %small]
  ret i32 %r
}`

func TestSCCPPrunesAssumedBranch(t *testing.T) {
	m := mustParse(t, diamondSrc)
	f := m.Func("f")
	c := f.Params[0]

	res := SCCP(f, map[ir.Value]*ir.Const{c: ir.ConstBool(m.Ctx, true)})
	if !res.Reachable(block(t, f, "big")) {
		t.Error("big must be reachable under c=true")
	}
	if res.Reachable(block(t, f, "small")) {
		t.Error("small must be pruned under c=true")
	}
	// The join phi sees only the big edge, so it equals %b (varying).
	r := instr(t, f, "r")
	if got := res.Lookup(r); got.Kind != Varying {
		t.Errorf("phi over single varying incoming: got kind %d", got.Kind)
	}
	if !res.EdgeExecutable(block(t, f, "big"), block(t, f, "join")) {
		t.Error("big->join must be executable")
	}
	if res.EdgeExecutable(block(t, f, "small"), block(t, f, "join")) {
		t.Error("small->join must not be executable")
	}

	// Without the assumption both arms are live.
	free := SCCP(f, nil)
	if !free.Reachable(block(t, f, "small")) || !free.Reachable(block(t, f, "big")) {
		t.Error("both arms reachable without assumptions")
	}
}

func TestSCCPFoldsConstants(t *testing.T) {
	m := mustParse(t, `
define i32 @g(i1 %c) {
entry:
  %a = add i32 2, 3
  %b = mul i32 %a, 4
  %cmp = icmp eq i32 %b, 20
  br i1 %cmp, label %yes, label %no
yes:
  %s = select i1 %c, i32 %b, i32 %b
  ret i32 %s
no:
  ret i32 0
}`)
	f := m.Func("g")
	res := SCCP(f, nil)
	b := instr(t, f, "b")
	if got := res.Lookup(b); got.Kind != Constant || got.Const.IntVal != 20 {
		t.Fatalf("%%b should fold to 20, got %+v", got)
	}
	if res.Reachable(block(t, f, "no")) {
		t.Error("block no is infeasible: cmp folds to true")
	}
	// select with varying cond but equal constant arms folds by meet.
	s := instr(t, f, "s")
	if got := res.Lookup(s); got.Kind != Constant || got.Const.IntVal != 20 {
		t.Errorf("select over equal constants should stay constant, got %+v", got)
	}
}

func TestSCCPLoopPhiMeet(t *testing.T) {
	m := mustParse(t, loopSrc)
	f := m.Func("sumto")
	res := SCCP(f, nil)
	// %i meets 0 with %i2 = %i+1: must settle at Varying, and every
	// block stays reachable.
	if got := res.Lookup(instr(t, f, "i")); got.Kind != Varying {
		t.Errorf("loop induction phi must be varying, got kind %d", got.Kind)
	}
	for _, b := range f.Blocks {
		if !res.Reachable(b) {
			t.Errorf("block %%%s should be reachable", b.Nam)
		}
	}
	// With %n pinned to 0 the loop body is infeasible: %c = 0<0 = false.
	pin := SCCP(f, map[ir.Value]*ir.Const{f.Params[0]: ir.ConstInt(m.Ctx.I32, 0)})
	if pin.Reachable(block(t, f, "body")) {
		t.Error("body infeasible when n=0")
	}
	if got := pin.Lookup(instr(t, f, "acc")); got.Kind != Constant || got.Const.IntVal != 0 {
		t.Errorf("acc must fold to 0 when n=0, got %+v", got)
	}
}

func TestSolverUnreachableBlocks(t *testing.T) {
	// Unreachable blocks still get states (appended after the RPO) so
	// checkers can query them without nil checks.
	m := mustParse(t, `
define i32 @u(i32 %x) {
entry:
  ret i32 %x
dead:
  %d = add i32 %x, 1
  br label %dead2
dead2:
  ret i32 %d
}`)
	f := m.Func("u")
	res := Liveness(f)
	for _, b := range f.Blocks {
		if res.In[b] == nil || res.Out[b] == nil {
			t.Fatalf("missing state for block %%%s", b.Nam)
		}
	}
	if !res.In[block(t, f, "dead")][ir.Value(f.Params[0])] {
		t.Error("param x is upward-exposed in dead")
	}
}
